package darnet

// Streaming chaos integration test: the full agent → controller → classify
// pipeline under injected transport faults WHILE the classify stage is
// saturated. A deliberately slow ticker caps classify throughput far below
// the agent's offered rate, so the bounded queue sheds and admission credits
// collapse; meanwhile the transport hard-partitions twice and then duplicates
// frames, turning delivered batches into replays. The invariants: every
// buffer stays bounded (queue depth ≤ cap, agent spill ≤ MaxSpill), data is
// shed — not accumulated — under overload, and the alert state machine never
// emits duplicate transitions (two raises without an intervening clear)
// despite retransmitted batches, reconnects, and shed evidence.

import (
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"darnet/internal/collect"
	"darnet/internal/core"
	"darnet/internal/fault"
	"darnet/internal/imu"
	"darnet/internal/stream"
	"darnet/internal/tsdb"
	"darnet/internal/wire"
)

// slowTicker is a classify stage with a hard throughput ceiling: every IMU
// sample costs delay, and the distracted score is read straight off the
// sample's first accelerometer axis. No training needed — the test is about
// flow control, not model quality.
type slowTicker struct {
	delay time.Duration
}

func (s *slowTicker) Tick(sample *imu.Sample, frame []float64, skipFrame bool) (*core.Classification, bool, error) {
	if sample == nil {
		return nil, false, nil // frame-only inputs carry no evidence here
	}
	time.Sleep(s.delay)
	d := sample.Accel[0]
	cls := &core.Classification{
		Class:      0,
		Probs:      []float64{1 - d, d},
		Confidence: 1 - d,
		Mode:       core.ModeFused,
	}
	if d > 0.5 {
		cls.Class = 1
		cls.Confidence = d
	}
	return cls, true, nil
}

func TestStreamingSurvivesChaosWhileSaturated(t *testing.T) {
	if testing.Short() {
		t.Skip("streaming chaos integration test skipped in -short mode")
	}
	const (
		queueCap = 16
		maxSpill = 500
	)

	// --- Alert transition log ----------------------------------------------
	var (
		evMu   sync.Mutex
		events []core.AlertEvent
	)
	countEv := func(want core.AlertEvent) int {
		evMu.Lock()
		defer evMu.Unlock()
		n := 0
		for _, ev := range events {
			if ev == want {
				n++
			}
		}
		return n
	}

	// --- Saturable streaming mux -------------------------------------------
	mux, err := stream.NewMux(stream.Config{
		QueueCap:     queueCap,
		FrameSkipMax: 2,
		Alert:        stream.AlertConfig{NormalClass: 0, Dwell: 50 * time.Millisecond},
		OnAlert: func(agentID string, ev core.AlertEvent, cls *core.Classification) {
			evMu.Lock()
			events = append(events, ev)
			evMu.Unlock()
		},
	}, func() (stream.Ticker, error) { return &slowTicker{delay: 2 * time.Millisecond}, nil })
	if err != nil {
		t.Fatal(err)
	}
	defer mux.Shutdown()

	// --- Controller over loopback TCP --------------------------------------
	db := tsdb.New()
	ctrl := collect.NewController(db, func() int64 { return time.Now().UnixMilli() })
	ctrl.SetStreamSink(mux)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				//lint:ignore errdrop chaos sessions end in injected faults
				ctrl.ServeConn(wire.NewConn(conn))
			}()
		}
	}()

	// --- Fault schedule: two hard partitions, then duplicated frames --------
	var dials atomic.Int64
	dialer := func() (*wire.Conn, error) {
		raw, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			return nil, err
		}
		n := dials.Add(1)
		cfg := fault.Config{Seed: 900 + n}
		if n <= 2 {
			cfg.PartitionAfterWrites = []int{20}
		} else {
			cfg.DupRate = 0.3
		}
		return wire.NewConn(fault.NewTransport(raw, cfg)), nil
	}

	// --- Agent: pre-fused IMU channel whose first axis scripts the phases ---
	// distracted is flipped by the test; the sensor emits a 13-wide pre-fused
	// sample the stream assembler accepts directly.
	var distracted atomic.Bool
	distracted.Store(true)
	sensors := []collect.Sensor{collect.SensorFunc{SensorName: "imu", ReadFunc: func() []float64 {
		v := make([]float64, imu.FeatureDim)
		if distracted.Load() {
			v[0] = 0.9
		} else {
			v[0] = 0.1
		}
		return v
	}}}
	conn, err := dialer()
	if err != nil {
		t.Fatal(err)
	}
	clock := collect.NewDriftClock(func() int64 { return time.Now().UnixMilli() }, 0)
	agent, err := collect.NewAgent(collect.AgentConfig{
		ID: "sat-chaos", Modality: "imu", PollPeriodMS: 1,
		AckTimeout: 300 * time.Millisecond, MaxSpill: maxSpill,
	}, clock, sensors, conn)
	if err != nil {
		t.Fatal(err)
	}
	runner, err := collect.StartRunnerConfig(agent, collect.RunnerConfig{
		FlushEvery:  5 * time.Millisecond,
		Dialer:      dialer,
		BackoffBase: 2 * time.Millisecond,
		BackoffMax:  30 * time.Millisecond,
		MaxAttempts: -1,
		Seed:        13,
	})
	if err != nil {
		t.Fatal(err)
	}

	// --- Phase script, event-driven: raise → clear → raise ------------------
	waitEv := func(what string, cond func() bool) {
		t.Helper()
		deadline := time.After(20 * time.Second)
		for !cond() {
			select {
			case <-deadline:
				evMu.Lock()
				got := append([]core.AlertEvent(nil), events...)
				evMu.Unlock()
				t.Fatalf("%s never happened (events=%v stats=%+v reconnects=%d err=%v)",
					what, got, mux.Stats(), runner.Reconnects(), runner.Err())
			case <-time.After(5 * time.Millisecond):
			}
		}
	}
	waitEv("first alert raise under saturation", func() bool { return countEv(core.AlertRaised) >= 1 })
	distracted.Store(false)
	waitEv("alert clear after evidence subsides", func() bool { return countEv(core.AlertCleared) >= 1 })
	distracted.Store(true)
	waitEv("re-raise after recovery", func() bool { return countEv(core.AlertRaised) >= 2 })
	// Both scheduled partitions must have fired while the stream was running.
	waitEv("both partitions survived", func() bool { return runner.Reconnects() >= 2 })

	if err := runner.Shutdown(); err != nil {
		t.Fatalf("shutdown after chaos: %v", err)
	}
	mux.Shutdown()

	// --- Bounded memory under overload --------------------------------------
	s := mux.Stats()
	if s.MaxDepth > queueCap {
		t.Fatalf("classify queue depth reached %d, cap %d: admission bound broken", s.MaxDepth, queueCap)
	}
	if shed := s.ShedReadings + agent.SpillDropped(); shed <= 0 {
		t.Fatalf("nothing shed at either valve (queue shed=%d spill=%d): the run never saturated", s.ShedReadings, agent.SpillDropped())
	}
	if got := agent.Buffered(); got > maxSpill {
		t.Fatalf("agent retains %d readings, spill bound %d", got, maxSpill)
	}

	// --- Zero duplicate alerts ----------------------------------------------
	// Retransmitted batches, duplicated frames, and watchdog-restarted
	// workers must never produce two raises without an intervening clear.
	evMu.Lock()
	defer evMu.Unlock()
	if len(events) == 0 {
		t.Fatal("no alert transitions at all")
	}
	if events[0] != core.AlertRaised {
		t.Fatalf("first transition = %v, want raised", events[0])
	}
	for i := 1; i < len(events); i++ {
		if events[i] == events[i-1] {
			t.Fatalf("duplicate alert transition at %d: %v (full log %v)", i, events[i], events)
		}
	}
}

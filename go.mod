module darnet

go 1.24

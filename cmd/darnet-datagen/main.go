// Command darnet-datagen generates the synthetic driving datasets and
// inspects them: per-class counts, IMU channel statistics, and optional
// sample-frame dumps.
//
//	darnet-datagen -set table1 -scale 0.04
//	darnet-datagen -set 18class -per-class 60
//	darnet-datagen -set table1 -dump-frames 3 -out ./frames
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"path/filepath"

	"darnet"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("darnet-datagen: ")

	var (
		set        = flag.String("set", "table1", "dataset: table1|18class")
		scale      = flag.Float64("scale", 0.04, "table1 scale factor")
		perClass   = flag.Int("per-class", 110, "18class frames per class")
		seed       = flag.Int64("seed", 1, "generation seed")
		imgSize    = flag.Int("size", 32, "frame width/height in pixels")
		dumpFrames = flag.Int("dump-frames", 0, "PNG sample frames to write per class")
		outDir     = flag.String("out", "frames", "output directory for dumped frames")
		savePath   = flag.String("save", "", "write the generated dataset to this gob file")
	)
	flag.Parse()

	if err := run(*set, *scale, *perClass, *seed, *imgSize, *dumpFrames, *outDir, *savePath); err != nil {
		log.Fatal(err)
	}
}

func run(set string, scale float64, perClass int, seed int64, imgSize, dumpFrames int, outDir, savePath string) error {
	var (
		ds  *darnet.Dataset
		err error
	)
	switch set {
	case "table1":
		cfg := darnet.DefaultDatasetConfig()
		cfg.Scale = scale
		cfg.Seed = seed
		cfg.ImgW, cfg.ImgH = imgSize, imgSize
		ds, err = darnet.GenerateDataset(cfg)
	case "18class":
		cfg := darnet.DefaultDataset18Config()
		cfg.PerClass = perClass
		cfg.Seed = seed
		cfg.ImgW, cfg.ImgH = imgSize, imgSize
		ds, err = darnet.Generate18ClassDataset(cfg)
	default:
		return fmt.Errorf("unknown dataset %q", set)
	}
	if err != nil {
		return err
	}

	fmt.Printf("dataset %q: %d samples, %d classes, %dx%d frames\n", set, ds.Len(), ds.Classes, ds.ImgW, ds.ImgH)
	counts := ds.ClassCounts()
	for c, n := range counts {
		name := fmt.Sprintf("class %d", c)
		if ds.Classes == darnet.NumClasses {
			name = darnet.Class(c).String()
		}
		fmt.Printf("  %-17s %6d\n", name, n)
	}

	if set == "table1" {
		printIMUStats(ds)
	}
	if savePath != "" {
		f, err := os.Create(savePath)
		if err != nil {
			return fmt.Errorf("create %s: %w", savePath, err)
		}
		err = ds.Save(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("save dataset: %w", err)
		}
		info, err := os.Stat(savePath)
		if err != nil {
			return err
		}
		fmt.Printf("saved dataset to %s (%d bytes)\n", savePath, info.Size())
	}
	if dumpFrames > 0 {
		return dump(ds, dumpFrames, outDir)
	}
	return nil
}

// printIMUStats summarizes the IMU channel per IMU class: mean gravity
// magnitude and accelerometer energy, a quick sanity check of the generator.
func printIMUStats(ds *darnet.Dataset) {
	type agg struct {
		n       int
		gravMag float64
		accVar  float64
	}
	aggs := make([]agg, darnet.NumIMUClasses)
	for _, s := range ds.Samples {
		k := s.Class.IMUClass()
		for _, smp := range s.Window.Samples {
			g := math.Sqrt(smp.Gravity[0]*smp.Gravity[0] + smp.Gravity[1]*smp.Gravity[1] + smp.Gravity[2]*smp.Gravity[2])
			a := smp.Accel[0]*smp.Accel[0] + smp.Accel[1]*smp.Accel[1] + smp.Accel[2]*smp.Accel[2]
			aggs[k].gravMag += g
			aggs[k].accVar += a
			aggs[k].n++
		}
	}
	fmt.Println("IMU channel summary (per IMU class):")
	names := []string{"normal", "talking", "texting"}
	for k, a := range aggs {
		if a.n == 0 {
			continue
		}
		fmt.Printf("  %-8s steps %7d  mean|gravity| %6.2f  mean|accel|^2 %7.2f\n",
			names[k], a.n, a.gravMag/float64(a.n), a.accVar/float64(a.n))
	}
}

func dump(ds *darnet.Dataset, perClass int, outDir string) error {
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return fmt.Errorf("create %s: %w", outDir, err)
	}
	written := make(map[int]int)
	for i, s := range ds.Samples {
		c := int(s.Class)
		if written[c] >= perClass {
			continue
		}
		written[c]++
		name := fmt.Sprintf("class%02d-%d.png", c, written[c])
		path := filepath.Join(outDir, name)
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		err = s.Frame.WritePNG(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("write %s: %w", path, err)
		}
		_ = i
	}
	total := 0
	for _, n := range written {
		total += n
	}
	fmt.Printf("wrote %d frames to %s\n", total, outDir)
	return nil
}

package main

import (
	"strconv"
	"strings"
	"testing"

	"darnet/internal/lint"
)

// fixtureDirs are lint-fixture packages (addressed directly: the ... walk
// deliberately skips testdata) that are known to produce findings.
var fixtureDirs = []string{
	"internal/lint/testdata/src/ctxprop",
	"internal/lint/testdata/src/goleak",
	"internal/lint/testdata/src/hotalloc",
	"internal/lint/testdata/src/lockorder",
}

// TestDriverOutputDeterministic runs the driver pipeline twice over the same
// fixture tree in both -ipa scopes and asserts all three output formats are
// byte-identical: the contract CI relies on to diff lint results across
// commits.
func TestDriverOutputDeterministic(t *testing.T) {
	for _, ipa := range []string{"pkg", "module"} {
		t.Run(ipa, func(t *testing.T) {
			analyzers := registryFor(ipa)
			var text, jsonOut, sarif [2]string
			for i := 0; i < 2; i++ {
				diags, _, spent, phases, err := run(fixtureDirs, analyzers, ipa)
				if err != nil {
					t.Fatalf("run %d: %v", i, err)
				}
				if len(diags) == 0 {
					t.Fatalf("run %d: fixture packages produced no findings", i)
				}
				for _, a := range analyzers {
					if _, ok := spent[a.Name]; !ok {
						t.Fatalf("run %d: no timing recorded for %s", i, a.Name)
					}
				}
				if ipa == "module" && len(phases) != 4 {
					t.Fatalf("run %d: module mode reported %d phases, want 4 (load/ir/analyze/link)", i, len(phases))
				}
				if ipa == "pkg" && phases != nil {
					t.Fatalf("run %d: pkg mode reported phases %v", i, phases)
				}
				text[i] = renderText(diags)
				if jsonOut[i], err = renderJSON(diags); err != nil {
					t.Fatalf("run %d: render json: %v", i, err)
				}
				if sarif[i], err = renderSARIF(diags, analyzers); err != nil {
					t.Fatalf("run %d: render sarif: %v", i, err)
				}
			}
			if text[0] != text[1] {
				t.Errorf("text output differs between runs:\n--- first\n%s\n--- second\n%s", text[0], text[1])
			}
			if jsonOut[0] != jsonOut[1] {
				t.Errorf("json output differs between runs")
			}
			if sarif[0] != sarif[1] {
				t.Errorf("sarif output differs between runs")
			}

			// Spot-check the sort contract on the text form: lines must be
			// ordered by (file, numeric line, numeric column) — plain string
			// comparison would mis-order line 139 before line 36.
			lines := strings.Split(strings.TrimSuffix(text[0], "\n"), "\n")
			for i := 1; i < len(lines); i++ {
				if positionLess(lines[i], lines[i-1]) {
					t.Fatalf("text output not sorted: %q precedes %q", lines[i-1], lines[i])
				}
			}
			if !strings.Contains(sarif[0], `"version": "2.1.0"`) {
				t.Fatalf("sarif output missing version marker:\n%s", sarif[0])
			}
		})
	}
}

func TestSelectAnalyzers(t *testing.T) {
	all := lint.All()

	got, err := selectAnalyzers("", "", "pkg")
	if err != nil || len(got) != len(all) {
		t.Fatalf("default selection: got %d analyzers, err %v; want all %d", len(got), err, len(all))
	}

	got, err = selectAnalyzers("", "", "module")
	if err != nil || len(got) != len(lint.AllModule()) {
		t.Fatalf("module selection: got %d analyzers, err %v; want all %d", len(got), err, len(lint.AllModule()))
	}

	got, err = selectAnalyzers("goleak,ctxprop", "", "pkg")
	if err != nil {
		t.Fatalf("-only: %v", err)
	}
	if len(got) != 2 || got[0].Name != "goleak" || got[1].Name != "ctxprop" {
		t.Fatalf("-only goleak,ctxprop: got %v", names(got))
	}

	got, err = selectAnalyzers("", "goleak,lockorder,hotalloc,ctxprop", "pkg")
	if err != nil {
		t.Fatalf("-skip: %v", err)
	}
	if len(got) != len(all)-4 {
		t.Fatalf("-skip four: got %v", names(got))
	}
	for _, a := range got {
		switch a.Name {
		case "goleak", "lockorder", "hotalloc", "ctxprop":
			t.Fatalf("-skip left %s selected", a.Name)
		}
	}

	if _, err := selectAnalyzers("nosuch", "", "pkg"); err == nil {
		t.Fatal("-only with unknown analyzer must error")
	}
	if _, err := selectAnalyzers("", "nosuch", "pkg"); err == nil {
		t.Fatal("-skip with unknown analyzer must error")
	}
	if _, err := selectAnalyzers("goleak", "goleak", "pkg"); err == nil {
		t.Fatal("empty selection must error")
	}
}

// TestSelectAnalyzersDiagnostics pins the error texts the driver relies on:
// a near-miss suggests the intended name, and asking for a module-scope
// analyzer under -ipa=pkg explains the scope requirement instead of calling
// the name unknown.
func TestSelectAnalyzersDiagnostics(t *testing.T) {
	_, err := selectAnalyzers("shapeflw", "", "module")
	if err == nil || !strings.Contains(err.Error(), `did you mean "shapeflow"`) {
		t.Fatalf("typo suggestion missing: %v", err)
	}

	_, err = selectAnalyzers("shapeflow", "", "pkg")
	if err == nil || !strings.Contains(err.Error(), "requires -ipa=module") {
		t.Fatalf("module-only hint missing: %v", err)
	}

	if got, err := selectAnalyzers("shapeflow", "", "module"); err != nil || len(got) != 1 || got[0].Name != "shapeflow" {
		t.Fatalf("-only shapeflow under module scope: got %v, err %v", names(got), err)
	}

	_, err = selectAnalyzers("zzzzzzzz", "", "pkg")
	if err == nil || strings.Contains(err.Error(), "did you mean") {
		t.Fatalf("distant typo must not get a suggestion: %v", err)
	}
}

func names(as []*lint.Analyzer) []string {
	out := make([]string, len(as))
	for i, a := range as {
		out[i] = a.Name
	}
	return out
}

// positionLess orders rendered "file:line:col: message" lines the way the
// driver sorts diagnostics: by file, then numeric line and column, then the
// remaining text.
func positionLess(a, b string) bool {
	af, al, ac, am := splitPos(a)
	bf, bl, bc, bm := splitPos(b)
	if af != bf {
		return af < bf
	}
	if al != bl {
		return al < bl
	}
	if ac != bc {
		return ac < bc
	}
	return am < bm
}

// splitPos parses "file:line:col: rest"; unparsable lines sort by raw text.
func splitPos(s string) (file string, line, col int, rest string) {
	parts := strings.SplitN(s, ":", 4)
	if len(parts) < 4 {
		return s, 0, 0, ""
	}
	l, err1 := strconv.Atoi(parts[1])
	c, err2 := strconv.Atoi(parts[2])
	if err1 != nil || err2 != nil {
		return s, 0, 0, ""
	}
	return parts[0], l, c, parts[3]
}

// Output rendering for darnet-lint. All three formats print findings in the
// same (file, line, column, rule) order the lint package sorts into, so any
// two runs over the same tree produce byte-identical output.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"darnet/internal/lint"
)

// renderText prints one finding per line in file:line:col: [rule] message
// form with paths relative to the working directory.
func renderText(diags []lint.Diagnostic) string {
	var b strings.Builder
	for _, d := range diags {
		fmt.Fprintf(&b, "%s:%d:%d: [%s] %s\n", relPath(d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Rule, d.Message)
	}
	return b.String()
}

type jsonFinding struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
}

func renderJSON(diags []lint.Diagnostic) (string, error) {
	out := make([]jsonFinding, 0, len(diags))
	for _, d := range diags {
		out = append(out, jsonFinding{
			File: relPath(d.Pos.Filename), Line: d.Pos.Line, Col: d.Pos.Column,
			Rule: d.Rule, Message: d.Message,
		})
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return "", err
	}
	return string(data) + "\n", nil
}

// Minimal SARIF 2.1.0 structures: one run, one result per finding, the rule
// metadata taken from the analyzers that actually ran.
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

func renderSARIF(diags []lint.Diagnostic, analyzers []*lint.Analyzer) (string, error) {
	rules := make([]sarifRule, 0, len(analyzers))
	for _, a := range analyzers {
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifMessage{Text: a.Doc}})
	}
	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		results = append(results, sarifResult{
			RuleID:  d.Rule,
			Level:   "warning",
			Message: sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: filepath.ToSlash(relPath(d.Pos.Filename))},
					Region:           sarifRegion{StartLine: d.Pos.Line, StartColumn: d.Pos.Column},
				},
			}},
		})
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "darnet-lint", Rules: rules}},
			Results: results,
		}},
	}
	data, err := json.MarshalIndent(log, "", "  ")
	if err != nil {
		return "", err
	}
	return string(data) + "\n", nil
}

// renderTimings reports aggregated per-analyzer wall time in the registry's
// analyzer order, preceded by the pipeline phase times when the module
// analysis supplied them.
func renderTimings(analyzers []*lint.Analyzer, spent map[string]int64, phases []lint.Timing) string {
	var b strings.Builder
	if len(phases) > 0 {
		b.WriteString("phase timings:\n")
		for _, p := range phases {
			b.WriteString(fmt.Sprintf("  %-12s %v\n", p.Analyzer, p.Elapsed.Round(10*time.Microsecond)))
		}
	}
	b.WriteString("analyzer timings (wall time summed across packages):\n")
	for _, a := range analyzers {
		b.WriteString(fmt.Sprintf("  %-12s %v\n", a.Name, time.Duration(spent[a.Name]).Round(10*time.Microsecond)))
	}
	return b.String()
}

func relPath(path string) string {
	cwd, err := os.Getwd()
	if err != nil {
		return path
	}
	rel, err := filepath.Rel(cwd, path)
	if err != nil {
		return path
	}
	return rel
}

// Command darnet-lint runs DarNet's project-specific static analyzers over
// the module and exits non-zero on findings.
//
//	darnet-lint [-json|-sarif] [-list] [-only rules] [-skip rules] [-timings] [packages...]
//
// Packages default to ./... (the whole module); "dir/..." subtree patterns
// and plain directory paths are also accepted. Each finding is reported as
//
//	file:line:col: [rule] message
//
// or, with -json, as a JSON array of {file, line, col, rule, message}
// objects, or, with -sarif, as a SARIF 2.1.0 log — all three sorted by
// (file, line, column, rule) so CI can diff lint results across commits.
//
// -only and -skip take comma-separated analyzer names (see -list) and
// select a subset of the registry; naming an unknown analyzer is an error,
// not a silent no-op. -timings reports per-analyzer wall time (aggregated
// across packages) on stderr.
//
// Suppress a finding with a justified directive on the offending line or
// the line above:
//
//	//lint:ignore <rule> <reason>
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"darnet/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as JSON")
	sarifOut := flag.Bool("sarif", false, "emit findings as SARIF 2.1.0")
	list := flag.Bool("list", false, "list registered analyzers and exit")
	only := flag.String("only", "", "comma-separated analyzers to run (default: all)")
	skip := flag.String("skip", "", "comma-separated analyzers to exclude")
	timings := flag.Bool("timings", false, "report per-analyzer wall time on stderr")
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *jsonOut && *sarifOut {
		fmt.Fprintln(os.Stderr, "darnet-lint: -json and -sarif are mutually exclusive")
		os.Exit(2)
	}

	analyzers, err := selectAnalyzers(*only, *skip)
	if err != nil {
		fmt.Fprintf(os.Stderr, "darnet-lint: %v\n", err)
		os.Exit(2)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	diags, spent, err := run(patterns, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "darnet-lint: %v\n", err)
		os.Exit(2)
	}

	var out string
	switch {
	case *jsonOut:
		out, err = renderJSON(diags)
	case *sarifOut:
		out, err = renderSARIF(diags, analyzers)
	default:
		out = renderText(diags)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "darnet-lint: %v\n", err)
		os.Exit(2)
	}
	fmt.Print(out)

	if *timings {
		fmt.Fprint(os.Stderr, renderTimings(analyzers, spent))
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

// selectAnalyzers resolves -only/-skip against the registry. Unknown names
// are errors: a typo must not silently disable a check.
func selectAnalyzers(only, skip string) ([]*lint.Analyzer, error) {
	byName := make(map[string]*lint.Analyzer)
	for _, a := range lint.All() {
		byName[a.Name] = a
	}
	parse := func(flagName, csv string) (map[string]bool, error) {
		if csv == "" {
			return nil, nil
		}
		set := make(map[string]bool)
		for _, name := range strings.Split(csv, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			if _, ok := byName[name]; !ok {
				return nil, fmt.Errorf("-%s: unknown analyzer %q (see -list)", flagName, name)
			}
			set[name] = true
		}
		return set, nil
	}
	onlySet, err := parse("only", only)
	if err != nil {
		return nil, err
	}
	skipSet, err := parse("skip", skip)
	if err != nil {
		return nil, err
	}
	var out []*lint.Analyzer
	for _, a := range lint.All() {
		if onlySet != nil && !onlySet[a.Name] {
			continue
		}
		if skipSet[a.Name] {
			continue
		}
		out = append(out, a)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("selection leaves no analyzers to run")
	}
	return out, nil
}

// run loads every package matching the patterns, applies the analyzers, and
// returns the globally sorted findings plus per-analyzer wall time (in
// nanoseconds) summed across packages.
func run(patterns []string, analyzers []*lint.Analyzer) ([]lint.Diagnostic, map[string]int64, error) {
	cwd, err := os.Getwd()
	if err != nil {
		return nil, nil, err
	}
	loader, err := lint.NewLoader(cwd)
	if err != nil {
		return nil, nil, err
	}
	spent := make(map[string]int64)
	var diags []lint.Diagnostic
	for _, pattern := range patterns {
		pkgs, err := loader.ModulePackages(pattern)
		if err != nil {
			return nil, nil, err
		}
		if len(pkgs) == 0 {
			return nil, nil, fmt.Errorf("no packages match %q", pattern)
		}
		for _, p := range pkgs {
			pkg, err := loader.LoadDir(p[0], p[1])
			if err != nil {
				return nil, nil, err
			}
			got, timings := lint.RunTimed(pkg, analyzers)
			diags = append(diags, got...)
			for _, tm := range timings {
				spent[tm.Analyzer] += tm.Elapsed.Nanoseconds()
			}
		}
	}
	lint.SortDiagnostics(diags)
	return diags, spent, nil
}

// Command darnet-lint runs DarNet's project-specific static analyzers over
// the module and exits non-zero on findings.
//
//	darnet-lint [-json] [-list] [packages...]
//
// Packages default to ./... (the whole module); "dir/..." subtree patterns
// and plain directory paths are also accepted. Each finding is reported as
//
//	file:line:col: [rule] message
//
// or, with -json, as a JSON array of {file, line, col, rule, message}
// objects so CI can diff lint results across commits. Suppress a finding
// with a justified directive on the offending line or the line above:
//
//	//lint:ignore <rule> <reason>
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"darnet/internal/lint"
)

type jsonFinding struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
}

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as JSON")
	list := flag.Bool("list", false, "list registered analyzers and exit")
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	diags, err := run(patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "darnet-lint: %v\n", err)
		os.Exit(2)
	}

	if *jsonOut {
		out := make([]jsonFinding, 0, len(diags))
		for _, d := range diags {
			out = append(out, jsonFinding{
				File: relPath(d.Pos.Filename), Line: d.Pos.Line, Col: d.Pos.Column,
				Rule: d.Rule, Message: d.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(os.Stderr, "darnet-lint: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Printf("%s:%d:%d: [%s] %s\n", relPath(d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Rule, d.Message)
		}
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

func run(patterns []string) ([]lint.Diagnostic, error) {
	cwd, err := os.Getwd()
	if err != nil {
		return nil, err
	}
	loader, err := lint.NewLoader(cwd)
	if err != nil {
		return nil, err
	}
	analyzers := lint.All()
	var diags []lint.Diagnostic
	for _, pattern := range patterns {
		pkgs, err := loader.ModulePackages(pattern)
		if err != nil {
			return nil, err
		}
		if len(pkgs) == 0 {
			return nil, fmt.Errorf("no packages match %q", pattern)
		}
		for _, p := range pkgs {
			pkg, err := loader.LoadDir(p[0], p[1])
			if err != nil {
				return nil, err
			}
			diags = append(diags, lint.Run(pkg, analyzers)...)
		}
	}
	return diags, nil
}

func relPath(path string) string {
	cwd, err := os.Getwd()
	if err != nil {
		return path
	}
	rel, err := filepath.Rel(cwd, path)
	if err != nil {
		return path
	}
	return rel
}

// Command darnet-lint runs DarNet's project-specific static analyzers over
// the module and exits non-zero on findings.
//
//	darnet-lint [-json|-sarif] [-list] [-only rules] [-skip rules] [-ipa pkg|module] [-timings] [-unused-ignores] [packages...]
//
// Packages default to ./... (the whole module); "dir/..." subtree patterns
// and plain directory paths are also accepted. Each finding is reported as
//
//	file:line:col: [rule] message
//
// or, with -json, as a JSON array of {file, line, col, rule, message}
// objects, or, with -sarif, as a SARIF 2.1.0 log — all three sorted by
// (file, line, column, rule) so CI can diff lint results across commits.
//
// -ipa selects the interprocedural scope. The default, "module", analyzes
// the matched packages as one linked unit in dependency order: each package
// folds the serialized function summaries of its already-analyzed
// dependencies into its own, so goleak/lockorder/hotalloc/ctxprop follow
// calls across package boundaries and the module-scope shapeflow analyzer
// runs. "pkg" restores the per-package engine: faster, no cross-package
// facts, module-only analyzers unavailable.
//
// -only and -skip take comma-separated analyzer names (see -list) and
// select a subset of the registry; naming an unknown analyzer is an error,
// not a silent no-op. -timings reports per-analyzer wall time (aggregated
// across packages) on stderr, plus per-phase load/ir/analyze/link times in
// module mode.
//
// Suppress a finding with a justified directive on the offending line or
// the line above:
//
//	//lint:ignore <rule> <reason>
//
// -unused-ignores additionally reports (as [unused-ignore] findings)
// every such directive that suppressed nothing — neither an analyzer
// finding nor a summary-export site. It requires -ipa=module: whether a
// suppression is consumed by a dependent package is a whole-module
// question. Unused reporting is relative to the analyzers that ran, so a
// directive for a -skip'd analyzer is dormant, not stale.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"darnet/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as JSON")
	sarifOut := flag.Bool("sarif", false, "emit findings as SARIF 2.1.0")
	list := flag.Bool("list", false, "list registered analyzers and exit")
	only := flag.String("only", "", "comma-separated analyzers to run (default: all)")
	skip := flag.String("skip", "", "comma-separated analyzers to exclude")
	ipa := flag.String("ipa", "module", "interprocedural scope: module (cross-package linking) or pkg")
	timings := flag.Bool("timings", false, "report per-analyzer wall time on stderr")
	unusedIgnores := flag.Bool("unused-ignores", false, "also report //lint:ignore directives that suppressed nothing (requires -ipa=module)")
	flag.Parse()

	if *list {
		moduleOnly := make(map[string]bool)
		for _, a := range lint.Module() {
			moduleOnly[a.Name] = true
		}
		for _, a := range lint.AllModule() {
			scope := ""
			if moduleOnly[a.Name] {
				scope = " (module scope only)"
			}
			fmt.Printf("%-12s %s%s\n", a.Name, a.Doc, scope)
		}
		return
	}
	if *jsonOut && *sarifOut {
		fmt.Fprintln(os.Stderr, "darnet-lint: -json and -sarif are mutually exclusive")
		os.Exit(2)
	}
	if *ipa != "pkg" && *ipa != "module" {
		fmt.Fprintf(os.Stderr, "darnet-lint: -ipa must be \"pkg\" or \"module\", got %q\n", *ipa)
		os.Exit(2)
	}
	if *unusedIgnores && *ipa != "module" {
		fmt.Fprintln(os.Stderr, "darnet-lint: -unused-ignores requires -ipa=module (usage is resolved against the whole linked module)")
		os.Exit(2)
	}

	analyzers, err := selectAnalyzers(*only, *skip, *ipa)
	if err != nil {
		fmt.Fprintf(os.Stderr, "darnet-lint: %v\n", err)
		os.Exit(2)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	diags, unused, spent, phases, err := run(patterns, analyzers, *ipa)
	if err != nil {
		fmt.Fprintf(os.Stderr, "darnet-lint: %v\n", err)
		os.Exit(2)
	}
	if *unusedIgnores {
		diags = append(diags, unused...)
		lint.SortDiagnostics(diags)
	}

	var out string
	switch {
	case *jsonOut:
		out, err = renderJSON(diags)
	case *sarifOut:
		out, err = renderSARIF(diags, analyzers)
	default:
		out = renderText(diags)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "darnet-lint: %v\n", err)
		os.Exit(2)
	}
	fmt.Print(out)

	if *timings {
		fmt.Fprint(os.Stderr, renderTimings(analyzers, spent, phases))
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

// registryFor returns the analyzers available at the given -ipa scope.
func registryFor(ipa string) []*lint.Analyzer {
	if ipa == "module" {
		return lint.AllModule()
	}
	return lint.All()
}

// selectAnalyzers resolves -only/-skip against the registry of the chosen
// scope. Unknown names are errors — a typo must not silently disable a
// check — and come with a nearest-name suggestion when one is close.
func selectAnalyzers(only, skip, ipa string) ([]*lint.Analyzer, error) {
	registry := registryFor(ipa)
	byName := make(map[string]*lint.Analyzer)
	for _, a := range registry {
		byName[a.Name] = a
	}
	moduleOnly := make(map[string]bool)
	for _, a := range lint.Module() {
		moduleOnly[a.Name] = true
	}
	parse := func(flagName, csv string) (map[string]bool, error) {
		if csv == "" {
			return nil, nil
		}
		set := make(map[string]bool)
		for _, name := range strings.Split(csv, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			if _, ok := byName[name]; !ok {
				if ipa != "module" && moduleOnly[name] {
					return nil, fmt.Errorf("-%s: analyzer %q requires -ipa=module (it links cross-package summaries)", flagName, name)
				}
				if s := nearestName(name, registry); s != "" {
					return nil, fmt.Errorf("-%s: unknown analyzer %q (did you mean %q? see -list)", flagName, name, s)
				}
				return nil, fmt.Errorf("-%s: unknown analyzer %q (see -list)", flagName, name)
			}
			set[name] = true
		}
		return set, nil
	}
	onlySet, err := parse("only", only)
	if err != nil {
		return nil, err
	}
	skipSet, err := parse("skip", skip)
	if err != nil {
		return nil, err
	}
	var out []*lint.Analyzer
	for _, a := range registry {
		if onlySet != nil && !onlySet[a.Name] {
			continue
		}
		if skipSet[a.Name] {
			continue
		}
		out = append(out, a)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("selection leaves no analyzers to run")
	}
	return out, nil
}

// nearestName returns the registered analyzer name within edit distance 2 of
// the typo, or "".
func nearestName(typo string, registry []*lint.Analyzer) string {
	best, bestDist := "", 3
	for _, a := range registry {
		if d := editDistance(typo, a.Name); d < bestDist {
			best, bestDist = a.Name, d
		}
	}
	return best
}

// editDistance is the Levenshtein distance between two short names.
func editDistance(a, b string) int {
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur[j] = min(min(cur[j-1]+1, prev[j]+1), prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

// run loads every package matching the patterns and applies the analyzers —
// as one linked module in dependency order when ipa is "module", or each
// package in isolation when "pkg" — returning the globally sorted findings,
// the unused //lint:ignore directives (module mode only), per-analyzer wall
// time (nanoseconds, summed across packages), and the pipeline phase
// timings (module mode only).
func run(patterns []string, analyzers []*lint.Analyzer, ipa string) ([]lint.Diagnostic, []lint.Diagnostic, map[string]int64, []lint.Timing, error) {
	cwd, err := os.Getwd()
	if err != nil {
		return nil, nil, nil, nil, err
	}
	loader, err := lint.NewLoader(cwd)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	var pkgs [][2]string
	seen := make(map[string]bool)
	for _, pattern := range patterns {
		matched, err := loader.ModulePackages(pattern)
		if err != nil {
			return nil, nil, nil, nil, err
		}
		if len(matched) == 0 {
			return nil, nil, nil, nil, fmt.Errorf("no packages match %q", pattern)
		}
		for _, p := range matched {
			if !seen[p[1]] {
				seen[p[1]] = true
				pkgs = append(pkgs, p)
			}
		}
	}

	if ipa == "module" {
		res, err := lint.AnalyzeModule(loader, pkgs, analyzers)
		if err != nil {
			return nil, nil, nil, nil, err
		}
		return res.Diags, res.Unused, res.Spent, res.Phases, nil
	}

	spent := make(map[string]int64)
	var diags []lint.Diagnostic
	for _, p := range pkgs {
		pkg, err := loader.LoadDir(p[0], p[1])
		if err != nil {
			return nil, nil, nil, nil, err
		}
		got, timings := lint.RunTimed(pkg, analyzers)
		diags = append(diags, got...)
		for _, tm := range timings {
			spent[tm.Analyzer] += tm.Elapsed.Nanoseconds()
		}
	}
	lint.SortDiagnostics(diags)
	return diags, nil, spent, nil, nil
}

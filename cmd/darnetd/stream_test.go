package main

import (
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"

	"darnet/internal/collect"
	"darnet/internal/core"
	"darnet/internal/imu"
	"darnet/internal/synth"
	"darnet/internal/telemetry"
	"darnet/internal/tsdb"
	"darnet/internal/wire"
)

func TestStreamOptionsValidate(t *testing.T) {
	good := streamOptions{queueCap: 64, skipMax: 4, dwell: 2 * time.Second}
	if err := good.validate(); err != nil {
		t.Fatalf("default-shaped options rejected: %v", err)
	}
	// Streaming disabled (no engine path) still validates the knobs: a typo'd
	// -stream-queue=0 must fail fast even before anyone passes -stream-engine.
	cases := []struct {
		name string
		mut  func(*streamOptions)
	}{
		{"zero queue", func(o *streamOptions) { o.queueCap = 0 }},
		{"negative queue", func(o *streamOptions) { o.queueCap = -8 }},
		{"zero frame skip", func(o *streamOptions) { o.skipMax = 0 }},
		{"negative frame skip", func(o *streamOptions) { o.skipMax = -1 }},
		{"zero dwell", func(o *streamOptions) { o.dwell = 0 }},
		{"negative dwell", func(o *streamOptions) { o.dwell = -time.Second }},
	}
	for _, tc := range cases {
		o := good
		tc.mut(&o)
		if err := o.validate(); err == nil {
			t.Errorf("%s: validate accepted %+v", tc.name, o)
		}
	}
}

func TestSetupStreamingDisabledAndErrors(t *testing.T) {
	ctrl := collect.NewController(tsdb.New(), wallMillis)
	base := streamOptions{queueCap: 8, skipMax: 2, dwell: 50 * time.Millisecond}

	if mux, err := setupStreaming(ctrl, base, io.Discard); err != nil || mux != nil {
		t.Fatalf("no engine path: got mux=%v err=%v, want nil/nil", mux, err)
	}

	missing := base
	missing.enginePath = filepath.Join(t.TempDir(), "nope.engine")
	if _, err := setupStreaming(ctrl, missing, io.Discard); err == nil {
		t.Fatal("missing snapshot accepted")
	}

	garbagePath := filepath.Join(t.TempDir(), "garbage.engine")
	if err := os.WriteFile(garbagePath, []byte("not a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	garbage := base
	garbage.enginePath = garbagePath
	if _, err := setupStreaming(ctrl, garbage, io.Discard); err == nil {
		t.Fatal("garbage snapshot accepted")
	}
}

// tinyEngineSnapshot trains a minimal engine and saves it where the
// -stream-engine flag would point.
func tinyEngineSnapshot(t *testing.T) string {
	t.Helper()
	dsCfg := synth.DefaultConfig()
	dsCfg.Scale = 0.01
	ds, err := synth.GenerateTable1(dsCfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultTrainConfig()
	cfg.CNNEpochs = 1
	cfg.RNNHidden = 4
	cfg.RNNLayers = 1
	cfg.RNNEpochs = 1
	cfg.SVMEpochs = 2
	cfg.BatchSize = 8
	eng, err := core.Train(ds.CoreData(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "tiny.engine")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Save(f, cfg.CNN, cfg.RNNHidden, cfg.RNNLayers); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestStreamingControllerIntegration boots a controller with -stream-engine
// wiring (snapshot → mux → sink → health source) and drives one agent over
// TCP: the hello ack must grant admission credits, batches must keep flowing,
// and /healthz must reflect the mux verdict.
func TestStreamingControllerIntegration(t *testing.T) {
	const queueCap = 8
	sOpts := streamOptions{
		enginePath: tinyEngineSnapshot(t),
		queueCap:   queueCap,
		skipMax:    2,
		dwell:      50 * time.Millisecond,
	}
	if err := sOpts.validate(); err != nil {
		t.Fatal(err)
	}

	ln := listenLoopback(t)
	opsLn := listenLoopback(t)
	db := tsdb.New()
	ctrl := collect.NewController(db, wallMillis)
	mux, err := setupStreaming(ctrl, sOpts, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if mux == nil {
		t.Fatal("setupStreaming returned no mux for a valid snapshot")
	}
	defer func() {
		telemetry.SetHealthSource(nil)
		mux.Shutdown()
	}()

	stop := make(chan struct{})
	served := make(chan struct{})
	go func() {
		defer close(served)
		serveController(ctrl, db, ln, opsLn, nil, stop, io.Discard)
	}()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	wc := wire.NewConn(conn)
	if err := wc.Send(&wire.Hello{AgentID: "stream-1", Modality: "imu", PeriodMillis: 25}); err != nil {
		t.Fatal(err)
	}
	msg, err := wc.Recv()
	if err != nil {
		t.Fatal(err)
	}
	ack, ok := msg.(*wire.Ack)
	if !ok {
		t.Fatalf("handshake reply = %T, want *wire.Ack", msg)
	}
	if n, ok := wire.DecodeCredits(ack.Credits); !ok || n != queueCap {
		t.Fatalf("hello ack credits = (%d, %v), want (%d, true)", n, ok, queueCap)
	}

	// One pre-fused IMU reading plus one frame per batch: both assembler fast
	// paths feed the classify queue through the controller's sink offer.
	frame := make([]float64, synth.DefaultConfig().ImgW*synth.DefaultConfig().ImgH)
	var seq uint64
	// At least imu.WindowSize pre-fused samples, so the engine completes an
	// IMU window and the frame ticks can fuse into real decisions.
	for i := 0; i < imu.WindowSize+5; i++ {
		seq++
		batch := &wire.SampleBatch{AgentID: "stream-1", Seq: seq, Readings: []wire.Reading{
			{TimestampMillis: int64(1000 + 25*i), Sensor: "imu", Values: make([]float64, imu.FeatureDim)},
			{TimestampMillis: int64(1000 + 25*i), Sensor: collect.FrameSensorName, Values: frame},
		}}
		if err := wc.Send(batch); err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
		for {
			if msg, err = wc.Recv(); err != nil {
				t.Fatalf("batch %d reply: %v", i, err)
			}
			if sync, ok := msg.(*wire.ClockSync); ok {
				if err := wc.Send(&wire.ClockAck{AgentID: "stream-1", AgentMillis: sync.MasterMillis}); err != nil {
					t.Fatal(err)
				}
				continue
			}
			break
		}
		ack, ok = msg.(*wire.Ack)
		if !ok {
			t.Fatalf("batch %d reply = %T, want *wire.Ack", i, msg)
		}
		if _, ok := wire.DecodeCredits(ack.Credits); !ok {
			t.Fatalf("batch %d ack carries no admission grant", i)
		}
	}

	if !waitUntil(5*time.Second, func() bool { return mux.Stats().Decisions > 0 }) {
		t.Fatalf("streaming mux produced no decisions: %+v", mux.Stats())
	}

	base := "http://" + opsLn.Addr().String()
	if code, body := httpGet(t, base+"/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz = %d %q, want 200 from the mux health source", code, body)
	}

	close(stop)
	select {
	case <-served:
	case <-time.After(5 * time.Second):
		t.Fatal("serveController did not return after stop")
	}
}

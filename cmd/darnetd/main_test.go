package main

import (
	"encoding/json"
	"io"
	"net"
	"net/http"
	"runtime"
	"strings"
	"testing"
	"time"

	"darnet/internal/collect"
	"darnet/internal/telemetry"
	"darnet/internal/tsdb"
	"darnet/internal/wire"
)

func counterValue(s telemetry.Snapshot, name string) int64 {
	for _, c := range s.Counters {
		if c.Name == name {
			return c.Value
		}
	}
	return 0
}

func histogramCount(s telemetry.Snapshot, name string) int64 {
	for _, h := range s.Histograms {
		if h.Name == name {
			return h.Count
		}
	}
	return 0
}

func listenLoopback(t *testing.T) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return ln
}

func httpGet(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read body: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

// waitUntil polls cond until it returns true or the deadline passes.
func waitUntil(timeout time.Duration, cond func() bool) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return true
		}
		time.Sleep(2 * time.Millisecond)
	}
	return cond()
}

// TestControllerOpsIntegration drives a real agent stream over TCP through
// serveController and asserts the full observability surface: ingest
// counters, the tsdb insert histogram, a complete multi-stage trace on
// /tracez, and the /healthz + /metrics + pprof endpoints.
func TestControllerOpsIntegration(t *testing.T) {
	ln := listenLoopback(t)
	opsLn := listenLoopback(t)
	db := tsdb.New()
	ctrl := collect.NewController(db, wallMillis)
	ctrl.SetSyncPeriod(0) // every batch piggybacks a clock sync

	stop := make(chan struct{})
	served := make(chan struct{})
	go func() {
		defer close(served)
		serveController(ctrl, db, ln, opsLn, nil, stop, io.Discard)
	}()

	before := telemetry.Default.Snapshot()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	wc := wire.NewConn(conn)
	if err := wc.Send(&wire.Hello{AgentID: "it-1", Modality: "imu", PeriodMillis: 25}); err != nil {
		t.Fatal(err)
	}
	if msg, err := wc.Recv(); err != nil {
		t.Fatal(err)
	} else if _, ok := msg.(*wire.Ack); !ok {
		t.Fatalf("handshake reply = %T, want *wire.Ack", msg)
	}

	// More batches than the tracer's 1-in-64 sampling period, so at least
	// one complete darnet_ingest_batch trace is guaranteed to be captured.
	const batches = 65
	for i := 0; i < batches; i++ {
		batch := &wire.SampleBatch{AgentID: "it-1", Readings: []wire.Reading{
			{TimestampMillis: int64(1000 + i), Sensor: "accel", Values: []float64{0.1, 0.2, 9.8}},
			{TimestampMillis: int64(1000 + i), Sensor: collect.FrameSensorName, Values: make([]float64, 16)},
		}}
		if err := wc.Send(batch); err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
		msg, err := wc.Recv()
		if err != nil {
			t.Fatalf("batch %d reply: %v", i, err)
		}
		if sync, ok := msg.(*wire.ClockSync); ok {
			if err := wc.Send(&wire.ClockAck{AgentID: "it-1", AgentMillis: sync.MasterMillis}); err != nil {
				t.Fatalf("batch %d clock ack: %v", i, err)
			}
			if msg, err = wc.Recv(); err != nil {
				t.Fatalf("batch %d post-sync reply: %v", i, err)
			}
		}
		ack, ok := msg.(*wire.Ack)
		if !ok {
			t.Fatalf("batch %d reply = %T, want *wire.Ack", i, msg)
		}
		if ack.Count != 2 {
			t.Fatalf("batch %d ack count = %d, want 2", i, ack.Count)
		}
	}

	after := telemetry.Default.Snapshot()
	for name, wantDelta := range map[string]int64{
		"darnet_collect_batches_total":      batches,
		"darnet_collect_readings_total":     2 * batches,
		"darnet_collect_frames_total":       batches,
		"darnet_collect_clock_syncs_total":  batches,
		"darnet_tsdb_points_inserted_total": 3 * batches, // 3 accel axes per batch
	} {
		if got := counterValue(after, name) - counterValue(before, name); got < wantDelta {
			t.Errorf("%s increased by %d, want >= %d", name, got, wantDelta)
		}
	}
	if got := histogramCount(after, "darnet_tsdb_insert_seconds") - histogramCount(before, "darnet_tsdb_insert_seconds"); got < 3*batches {
		t.Errorf("darnet_tsdb_insert_seconds count increased by %d, want >= %d", got, 3*batches)
	}
	if got := histogramCount(after, "darnet_collect_ingest_seconds") - histogramCount(before, "darnet_collect_ingest_seconds"); got < batches {
		t.Errorf("darnet_collect_ingest_seconds count increased by %d, want >= %d", got, batches)
	}

	base := "http://" + opsLn.Addr().String()
	if code, body := httpGet(t, base+"/healthz"); code != http.StatusOK || body != "ok\n" {
		t.Fatalf("/healthz = %d %q", code, body)
	}
	_, metrics := httpGet(t, base+"/metrics")
	for _, want := range []string{
		"darnet_collect_batches_total",
		"darnet_tsdb_insert_seconds_count",
		"darnet_wire_messages_received_total",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if code, body := httpGet(t, base+"/debug/pprof/"); code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/ = %d", code)
	}

	// The sampled trace of the last in-flight batch may still be closing
	// when the final ack arrives; poll briefly.
	var ingest *telemetry.TraceNode
	waitUntil(2*time.Second, func() bool {
		var traces struct {
			Traces []*telemetry.TraceNode `json:"traces"`
		}
		_, body := httpGet(t, base+"/tracez")
		if err := json.Unmarshal([]byte(body), &traces); err != nil {
			t.Fatalf("/tracez JSON: %v", err)
		}
		for _, tr := range traces.Traces {
			if tr.Name == "darnet_ingest_batch" && len(tr.Children) >= 3 {
				ingest = tr
				return true
			}
		}
		return false
	})
	if ingest == nil {
		t.Fatal("/tracez never served a complete darnet_ingest_batch trace")
	}
	stages := make(map[string]bool)
	for _, c := range ingest.Children {
		stages[c.Name] = true
	}
	for _, want := range []string{"darnet_stage_agent_read", "darnet_stage_store", "darnet_stage_ack"} {
		if !stages[want] {
			t.Errorf("ingest trace missing stage %s (have %v)", want, stages)
		}
	}

	close(stop)
	select {
	case <-served:
	case <-time.After(5 * time.Second):
		t.Fatal("serveController did not return after stop")
	}
}

// TestControllerShutdownNoLeak interrupts a controller that still has an
// agent blocked mid-stream and verifies both listeners close, the serve
// loop returns, and no goroutines are left behind.
func TestControllerShutdownNoLeak(t *testing.T) {
	baseline := runtime.NumGoroutine()

	ln := listenLoopback(t)
	opsLn := listenLoopback(t)
	db := tsdb.New()
	ctrl := collect.NewController(db, wallMillis)
	stop := make(chan struct{})
	served := make(chan struct{})
	go func() {
		defer close(served)
		serveController(ctrl, db, ln, opsLn, nil, stop, io.Discard)
	}()

	// Register an agent and leave it idle: the server sits blocked in Recv
	// and must be unblocked by shutdown closing the connection.
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	wc := wire.NewConn(conn)
	if err := wc.Send(&wire.Hello{AgentID: "idle-1", Modality: "imu", PeriodMillis: 25}); err != nil {
		t.Fatal(err)
	}
	if _, err := wc.Recv(); err != nil {
		t.Fatal(err)
	}

	close(stop)
	select {
	case <-served:
	case <-time.After(5 * time.Second):
		t.Fatal("serveController did not return after stop with a blocked agent")
	}

	// Both listeners must be closed: new connections are refused.
	for _, addr := range []string{ln.Addr().String(), opsLn.Addr().String()} {
		if c, err := net.DialTimeout("tcp", addr, 200*time.Millisecond); err == nil {
			//lint:ignore errdrop test cleanup of an unexpected success
			c.Close()
			t.Errorf("listener %s still accepting after shutdown", addr)
		}
	}

	if !waitUntil(5*time.Second, func() bool { return runtime.NumGoroutine() <= baseline }) {
		t.Errorf("goroutines leaked: baseline %d, now %d", baseline, runtime.NumGoroutine())
	}
}

package main

import (
	"bytes"
	"encoding/json"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"darnet/internal/collect"
	"darnet/internal/imu"
	"darnet/internal/synth"
	"darnet/internal/telemetry"
	"darnet/internal/wire"
)

func TestObsOptionsValidate(t *testing.T) {
	good := obsOptions{scrapeInterval: time.Second, retention: time.Hour, alertP99: 0.5}
	if err := good.validate(); err != nil {
		t.Fatalf("default-shaped options rejected: %v", err)
	}
	disabled := good
	disabled.scrapeInterval = 0
	if err := disabled.validate(); err != nil {
		t.Fatalf("disabled bridge rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*obsOptions)
	}{
		{"negative interval", func(o *obsOptions) { o.scrapeInterval = -time.Second }},
		{"zero retention", func(o *obsOptions) { o.retention = 0 }},
		{"zero slo threshold", func(o *obsOptions) { o.alertP99 = 0 }},
		{"negative slo threshold", func(o *obsOptions) { o.alertP99 = -1 }},
	}
	for _, tc := range cases {
		o := good
		tc.mut(&o)
		if err := o.validate(); err == nil {
			t.Errorf("%s: validate accepted %+v", tc.name, o)
		}
	}
}

// syncWriter serializes the controller's statusf output: the serve goroutines
// write concurrently, and the tests read the buffer after shutdown.
type syncWriter struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (w *syncWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.Write(p)
}

func (w *syncWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.String()
}

// obsClient is a hand-rolled wire agent for the observability integration
// tests: it speaks the handshake, answers clock syncs, and can stamp batches
// with trace context exactly the way collect.Agent's flush does.
type obsClient struct {
	t   *testing.T
	wc  *wire.Conn
	id  string
	seq uint64
}

func dialObsClient(t *testing.T, addr, id string) *obsClient {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		//lint:ignore errdrop test cleanup; the close error leaves nothing to act on
		conn.Close()
	})
	wc := wire.NewConn(conn)
	if err := wc.Send(&wire.Hello{AgentID: id, Modality: "imu", PeriodMillis: 25}); err != nil {
		t.Fatal(err)
	}
	if msg, err := wc.Recv(); err != nil {
		t.Fatal(err)
	} else if _, ok := msg.(*wire.Ack); !ok {
		t.Fatalf("handshake reply = %T, want *wire.Ack", msg)
	}
	return &obsClient{t: t, wc: wc, id: id}
}

// sendBatch sends one batch (with the given trace context, zero for a legacy
// v3-style peer) and consumes replies until the ack, answering any clock sync
// on the way.
func (c *obsClient) sendBatch(readings []wire.Reading, trace telemetry.SpanContext) *wire.Ack {
	c.t.Helper()
	c.seq++
	batch := &wire.SampleBatch{AgentID: c.id, Seq: c.seq, Readings: readings, Trace: trace}
	if err := c.wc.Send(batch); err != nil {
		c.t.Fatalf("batch %d: %v", c.seq, err)
	}
	for {
		msg, err := c.wc.Recv()
		if err != nil {
			c.t.Fatalf("batch %d reply: %v", c.seq, err)
		}
		switch m := msg.(type) {
		case *wire.ClockSync:
			if err := c.wc.Send(&wire.ClockAck{AgentID: c.id, AgentMillis: m.MasterMillis}); err != nil {
				c.t.Fatal(err)
			}
		case *wire.Ack:
			return m
		default:
			c.t.Fatalf("batch %d reply = %T, want *wire.Ack", c.seq, msg)
		}
	}
}

// tracedFlush mirrors collect.Agent's instrumented flush: a root span whose
// context rides the batch, stamped with the send instant for the controller's
// wire-transit segment.
func (c *obsClient) tracedFlush(readings []wire.Reading) {
	root := telemetry.DefaultTracer.StartRoot("darnet_agent_flush_batch")
	trace := root.Context()
	trace.SentUnixNano = time.Now().UnixNano()
	c.sendBatch(readings, trace)
	root.End()
}

// parseShutdownSummary finds and decodes the shutdown-summary line.
func parseShutdownSummary(t *testing.T, out string) shutdownSummary {
	t.Helper()
	for _, line := range strings.Split(out, "\n") {
		rest, ok := strings.CutPrefix(line, "shutdown-summary ")
		if !ok {
			continue
		}
		var sum shutdownSummary
		if err := json.Unmarshal([]byte(rest), &sum); err != nil {
			t.Fatalf("shutdown-summary line is not valid JSON: %v\n%s", err, line)
		}
		return sum
	}
	t.Fatalf("no shutdown-summary line in output:\n%s", out)
	return shutdownSummary{}
}

// TestControllerShutdownFlushesFinalScrape runs the full controller lifecycle
// on ephemeral ports with an hour-long scrape interval: the only way history
// can exist at exit is the shutdown flush, and the summary line must report
// it after the flush happened.
func TestControllerShutdownFlushesFinalScrape(t *testing.T) {
	ln := listenLoopback(t)
	opsLn := listenLoopback(t)
	sOpts := streamOptions{queueCap: 8, skipMax: 2, dwell: 50 * time.Millisecond}
	oOpts := obsOptions{scrapeInterval: time.Hour, retention: time.Hour, alertP99: 0.5}
	out := &syncWriter{}
	stop := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- runControllerWith(ln, opsLn, 0, sOpts, oOpts, durOptions{fsync: "interval"}, stop, out)
	}()

	c := dialObsClient(t, ln.Addr().String(), "sum-1")
	c.sendBatch([]wire.Reading{
		{TimestampMillis: 1000, Sensor: "accel", Values: []float64{0.1, 0.2, 9.8}},
	}, telemetry.SpanContext{})

	// The history route is mounted (and empty-legal) before any scrape ran.
	base := "http://" + opsLn.Addr().String()
	if code, _ := httpGet(t, base+"/metrics/history"); code != http.StatusOK {
		t.Fatalf("/metrics/history listing = %d, want 200", code)
	}

	close(stop)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("runControllerWith: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("runControllerWith did not return after stop")
	}

	sum := parseShutdownSummary(t, out.String())
	if sum.Scrapes < 1 {
		t.Errorf("summary scrapes = %d, want >= 1 from the shutdown flush", sum.Scrapes)
	}
	if sum.HistorySeries == 0 {
		t.Error("summary reports no history series after the final flush")
	}
	if sum.Agents != 1 {
		t.Errorf("summary agents = %d, want 1", sum.Agents)
	}
	if sum.SLOStatus == "" || sum.SLOStatus == "disabled" {
		t.Errorf("summary slo_status = %q, want an evaluator verdict", sum.SLOStatus)
	}
}

// traceStageNames flattens a merged trace tree into its span-name set.
func traceStageNames(tr *telemetry.TraceNode, into map[string]bool) {
	into[tr.Name] = true
	for _, c := range tr.Children {
		traceStageNames(c, into)
	}
}

// TestMergedTraceAcrossWire is the end-to-end distributed-tracing check: a
// traced peer streams IMU+frame batches into a streaming controller over
// loopback TCP, and /tracez must serve at least one MERGED trace rooted at
// the agent's flush span and spanning wire transit, queue dwell, classify,
// and alert — while a legacy v3-style peer (no trace field) keeps
// interoperating on the same controller.
func TestMergedTraceAcrossWire(t *testing.T) {
	ln := listenLoopback(t)
	opsLn := listenLoopback(t)
	sOpts := streamOptions{
		enginePath: tinyEngineSnapshot(t),
		queueCap:   64,
		skipMax:    4,
		dwell:      50 * time.Millisecond,
	}
	oOpts := obsOptions{scrapeInterval: 50 * time.Millisecond, retention: time.Hour, alertP99: 0.5}
	out := &syncWriter{}
	stop := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- runControllerWith(ln, opsLn, 0, sOpts, oOpts, durOptions{fsync: "interval"}, stop, out)
	}()

	cfg := synth.DefaultConfig()
	frame := make([]float64, cfg.ImgW*cfg.ImgH)
	// Each batch carries one camera frame plus a FULL recurrent window of
	// pre-fused IMU samples, so every single flush completes a window and
	// produces a decision — whichever flush the 1-in-64 sampler picks, its
	// merged trace includes the alert stage.
	readingsAt := func(i int) []wire.Reading {
		rs := []wire.Reading{
			{TimestampMillis: int64(1000 + 1000*i), Sensor: collect.FrameSensorName, Values: frame},
		}
		for s := 0; s < imu.WindowSize; s++ {
			rs = append(rs, wire.Reading{
				TimestampMillis: int64(1000 + 1000*i + 25*s),
				Sensor:          "imu",
				Values:          make([]float64, imu.FeatureDim),
			})
		}
		return rs
	}

	c := dialObsClient(t, ln.Addr().String(), "traced-1")
	// Prime the CNN distribution so fused decisions are possible from the
	// first traced flush.
	c.sendBatch(readingsAt(0), telemetry.SpanContext{})
	// More traced flushes than the tracer's 1-in-64 sampling period: at least
	// one is sampled end to end (flush → ingest → tick fragments).
	for i := 0; i < 70; i++ {
		c.tracedFlush(readingsAt(1 + i))
	}

	// A legacy peer on the same controller: its traceless v4 frames are
	// byte-identical to v3 and must keep flowing.
	legacy := dialObsClient(t, ln.Addr().String(), "legacy-1")
	for i := 0; i < 3; i++ {
		ack := legacy.sendBatch([]wire.Reading{
			{TimestampMillis: int64(2000 + i), Sensor: "accel", Values: []float64{0.1, 0.2, 9.8}},
		}, telemetry.SpanContext{})
		if ack.Count != 1 {
			t.Fatalf("legacy batch %d ack count = %d, want 1", i, ack.Count)
		}
	}

	base := "http://" + opsLn.Addr().String()

	// The merged agent→controller trace: flush root, remote-joined ingest,
	// and the four required stage spans. Fragments end asynchronously (the
	// stream tick closes in the worker), so poll.
	wantStages := []string{
		"darnet_ingest_batch",
		"darnet_stage_wire_transit",
		"darnet_stage_queue_dwell",
		"darnet_stage_classify_tick",
		"darnet_stage_alert",
	}
	var lastStages map[string]bool
	merged := waitUntil(10*time.Second, func() bool {
		var traces struct {
			Traces []*telemetry.TraceNode `json:"traces"`
		}
		_, body := httpGet(t, base+"/tracez")
		if err := json.Unmarshal([]byte(body), &traces); err != nil {
			t.Fatalf("/tracez JSON: %v", err)
		}
		for _, tr := range traces.Traces {
			if tr.Name != "darnet_agent_flush_batch" {
				continue
			}
			stages := make(map[string]bool)
			traceStageNames(tr, stages)
			lastStages = stages
			ok := true
			for _, want := range wantStages {
				if !stages[want] {
					ok = false
				}
			}
			if ok {
				return true
			}
		}
		return false
	})
	if !merged {
		t.Fatalf("/tracez never served a merged flush→ingest→tick trace; best candidate had stages %v", lastStages)
	}

	// The background scraper feeds /metrics/history while the run is live.
	if !waitUntil(5*time.Second, func() bool {
		code, body := httpGet(t, base+"/metrics/history?series=darnet_collect_batches_total")
		return code == http.StatusOK && strings.Contains(body, "points")
	}) {
		t.Fatal("/metrics/history never served the scraped ingest counter")
	}

	// The SLO evaluator drives /healthz; a healthy run answers 200.
	if code, body := httpGet(t, base+"/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz = %d %q", code, body)
	}

	// pprof goroutine labels: the connection serve goroutines and the stream
	// workers must be attributable by stage and agent.
	_, prof := httpGet(t, base+"/debug/pprof/goroutine?debug=1")
	for _, want := range []string{"controller_conn", "stream_worker", "darnet_stage"} {
		if !strings.Contains(prof, want) {
			t.Errorf("goroutine profile missing label %q", want)
		}
	}

	close(stop)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("runControllerWith: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("runControllerWith did not return after stop")
	}

	sum := parseShutdownSummary(t, out.String())
	if sum.StreamDecisions == 0 {
		t.Error("summary reports no stream decisions after a classified run")
	}
	if sum.Scrapes < 2 {
		t.Errorf("summary scrapes = %d, want >= 2 (background + final flush)", sum.Scrapes)
	}
}

// Command darnetd runs DarNet's collection middleware over TCP.
//
// Controller mode (default) accepts agent connections, aggregates readings
// into the time-series store, and acts as the clock-sync master:
//
//	darnetd -listen 127.0.0.1:7700
//
// Agent mode simulates an in-vehicle device streaming synthetic IMU data to
// a running controller:
//
//	darnetd -agent -connect 127.0.0.1:7700 -id imu-1 -duration 5s
//
// Either server mode can additionally expose the telemetry ops endpoint
// (/metrics, /healthz, /tracez, /debug/pprof) with -ops:
//
//	darnetd -listen 127.0.0.1:7700 -ops 127.0.0.1:7701
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"time"

	"darnet/internal/collect"
	"darnet/internal/core"
	"darnet/internal/imu"
	"darnet/internal/stream"
	"darnet/internal/synth"
	"darnet/internal/telemetry"
	"darnet/internal/tsdb"
	"darnet/internal/wire"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("darnetd: ")

	var (
		listen     = flag.String("listen", "127.0.0.1:7700", "controller listen address")
		ops        = flag.String("ops", "", "also serve the ops endpoint (/metrics, /healthz, /tracez, /debug/pprof) on this address")
		agentMode  = flag.Bool("agent", false, "run as a simulated agent instead of the controller")
		connect    = flag.String("connect", "127.0.0.1:7700", "controller address (agent mode)")
		agentID    = flag.String("id", "imu-1", "agent identifier (agent mode)")
		duration   = flag.Duration("duration", 5*time.Second, "how long the agent streams (agent mode)")
		drift      = flag.Float64("drift", 0.002, "simulated clock drift of the agent (fraction)")
		enginePath = flag.String("engine", "", "serve remote classification from this engine snapshot instead of collecting")
		idleT      = flag.Duration("idle-timeout", 0, "reap agent connections silent for this long (controller mode; 0 disables)")
		reconnect  = flag.Bool("reconnect", true, "redial the controller with exponential backoff after transport failures (agent mode)")
		ackTimeout = flag.Duration("ack-timeout", 5*time.Second, "bound each wait for a controller ack (agent mode; 0 waits forever)")

		streamEngine = flag.String("stream-engine", "", "classify stored readings online through this engine snapshot (controller mode)")
		streamQueue  = flag.Int("stream-queue", 64, "per-agent bounded classify queue capacity (streaming)")
		frameSkipMax = flag.Int("frame-skip-max", 4, "max consecutive frames reusing the last CNN result under overload (streaming)")
		alertDwell   = flag.Duration("alert-dwell", 2*time.Second, "evidence must persist this long before an alert raises or clears (streaming)")
	)
	flag.Parse()

	sOpts := streamOptions{
		enginePath: *streamEngine,
		queueCap:   *streamQueue,
		skipMax:    *frameSkipMax,
		dwell:      *alertDwell,
	}
	if err := sOpts.validate(); err != nil {
		log.Fatal(err)
	}

	var err error
	switch {
	case *agentMode:
		err = runAgent(*connect, *agentID, *duration, *drift, *reconnect, *ackTimeout)
	case *enginePath != "":
		err = runEngineServer(*listen, *ops, *enginePath)
	default:
		err = runController(*listen, *ops, *idleT, sOpts)
	}
	if err != nil {
		log.Fatal(err)
	}
}

// streamOptions bundle the streaming-classification flags; validation runs
// at startup in every mode so a typo'd unit (say -stream-queue=0) fails fast
// instead of surfacing when the pipeline is first needed.
type streamOptions struct {
	enginePath string
	queueCap   int
	skipMax    int
	dwell      time.Duration
}

func (o streamOptions) validate() error {
	if o.queueCap <= 0 {
		return fmt.Errorf("-stream-queue must be positive, got %d", o.queueCap)
	}
	if o.skipMax <= 0 {
		return fmt.Errorf("-frame-skip-max must be positive, got %d", o.skipMax)
	}
	if o.dwell <= 0 {
		return fmt.Errorf("-alert-dwell must be positive, got %v", o.dwell)
	}
	return nil
}

// setupStreaming loads the engine snapshot and attaches a streaming mux to
// the controller: stored readings flow into per-agent classify pipelines,
// admission credits flow back through the acks, and the mux takes over the
// /healthz verdict (ok / degraded / overloaded). Returns nil when streaming
// is not requested.
func setupStreaming(ctrl *collect.Controller, o streamOptions, out io.Writer) (*stream.Mux, error) {
	if o.enginePath == "" {
		return nil, nil
	}
	f, err := os.Open(o.enginePath)
	if err != nil {
		return nil, fmt.Errorf("open stream engine snapshot: %w", err)
	}
	eng, err := core.LoadEngine(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return nil, fmt.Errorf("load stream engine: %w", err)
	}
	mux, err := stream.NewMux(stream.Config{
		QueueCap:     o.queueCap,
		FrameSkipMax: o.skipMax,
		Alert:        stream.AlertConfig{Dwell: o.dwell},
		OnAlert: func(agentID string, ev core.AlertEvent, cls *core.Classification) {
			log.Printf("alert %v agent=%s class=%d confidence=%.2f mode=%v", ev, agentID, cls.Class, cls.Confidence, cls.Mode)
		},
	}, stream.EngineTickerFactory(eng))
	if err != nil {
		return nil, fmt.Errorf("stream mux: %w", err)
	}
	ctrl.SetStreamSink(mux)
	telemetry.SetHealthSource(mux.Health)
	statusf(out, "streaming classification on (%d classes, queue %d, frame-skip %d, alert dwell %v)\n",
		eng.Classes, o.queueCap, o.skipMax, o.dwell)
	return mux, nil
}

// notifyInterrupt returns a channel that closes on the first SIGINT and a
// release function that unregisters the handler and lets the signal
// goroutine exit. (An earlier version leaked that goroutine forever when the
// accept loop ended for any reason other than a signal.)
func notifyInterrupt() (<-chan struct{}, func()) {
	stop := make(chan struct{})
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	done := make(chan struct{})
	go func() {
		defer signal.Stop(sig)
		select {
		case <-sig:
			close(stop)
		case <-done:
		}
	}()
	return stop, func() { close(done) }
}

// listenPair opens the service listener and, when opsAddr is non-empty, the
// ops listener.
func listenPair(addr, opsAddr string) (ln, opsLn net.Listener, err error) {
	ln, err = net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, fmt.Errorf("listen: %w", err)
	}
	if opsAddr != "" {
		opsLn, err = net.Listen("tcp", opsAddr)
		if err != nil {
			//lint:ignore errdrop already failing; the close error adds nothing
			ln.Close()
			return nil, nil, fmt.Errorf("ops listen: %w", err)
		}
	}
	return ln, opsLn, nil
}

// statusf writes operator status output. out is stdout in deployment and a
// discard sink in tests; a failed status write leaves nothing to act on.
func statusf(out io.Writer, format string, args ...any) {
	//lint:ignore errdrop status output; a failed write leaves nothing to act on
	fmt.Fprintf(out, format, args...)
}

// connTracker remembers accepted connections so shutdown can unblock their
// serve goroutines by closing them.
type connTracker struct {
	mu    sync.Mutex
	conns map[net.Conn]struct{}
}

func newConnTracker() *connTracker {
	return &connTracker{conns: make(map[net.Conn]struct{})}
}

func (t *connTracker) add(c net.Conn) {
	t.mu.Lock()
	t.conns[c] = struct{}{}
	t.mu.Unlock()
}

// remove closes c and stops tracking it.
func (t *connTracker) remove(c net.Conn) {
	t.mu.Lock()
	delete(t.conns, c)
	t.mu.Unlock()
	//lint:ignore errdrop connection teardown; the close error leaves nothing to act on
	c.Close()
}

func (t *connTracker) closeAll() {
	t.mu.Lock()
	defer t.mu.Unlock()
	for c := range t.conns {
		//lint:ignore errdrop shutdown path; the close error leaves nothing to act on
		c.Close()
	}
}

// startOps serves the telemetry ops endpoint on ln (nil disables it). The
// returned server must be Closed to release its listener and goroutine.
func startOps(ln net.Listener, out io.Writer) *http.Server {
	if ln == nil {
		return nil
	}
	srv := &http.Server{Handler: telemetry.NewOpsHandler(telemetry.Default, telemetry.DefaultTracer)}
	go func() {
		if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Printf("ops: %v", err)
		}
	}()
	statusf(out, "ops endpoint on http://%s/metrics\n", ln.Addr())
	return srv
}

// acceptLoop accepts connections on ln and hands each to handle on its own
// goroutine until stop closes or the listener fails. When opsLn is non-nil
// the ops endpoint serves on it for the duration. On return both listeners
// and every tracked connection are closed and all spawned goroutines have
// exited.
func acceptLoop(ln, opsLn net.Listener, stop <-chan struct{}, out io.Writer, handle func(net.Conn)) {
	opsSrv := startOps(opsLn, out)
	tracker := newConnTracker()
	done := make(chan struct{})
	var watch sync.WaitGroup
	watch.Add(1)
	go func() {
		defer watch.Done()
		select {
		case <-stop:
			statusf(out, "\nshutting down\n")
		case <-done:
		}
		//lint:ignore errdrop shutdown path; the close error leaves nothing to act on
		ln.Close()
		tracker.closeAll()
	}()

	var wg sync.WaitGroup
	for {
		conn, err := ln.Accept()
		if err != nil {
			break // listener closed
		}
		tracker.add(conn)
		wg.Add(1)
		go func(conn net.Conn) {
			defer wg.Done()
			defer tracker.remove(conn)
			handle(conn)
		}(conn)
	}
	close(done)
	watch.Wait()
	wg.Wait()
	if opsSrv != nil {
		//lint:ignore errdrop shutdown path; the close error leaves nothing to act on
		opsSrv.Close()
	}
}

func wallMillis() int64 { return time.Now().UnixMilli() }

func runController(listen, opsAddr string, idleTimeout time.Duration, sOpts streamOptions) error {
	ln, opsLn, err := listenPair(listen, opsAddr)
	if err != nil {
		return err
	}
	fmt.Printf("controller listening on %s (clock re-sync every %d ms)\n", ln.Addr(), collect.SyncPeriodMillis)
	db := tsdb.New()
	ctrl := collect.NewController(db, wallMillis)
	if idleTimeout > 0 {
		ctrl.SetIdleTimeout(idleTimeout)
		fmt.Printf("reaping connections silent for %v\n", idleTimeout)
	}
	mux, err := setupStreaming(ctrl, sOpts, os.Stdout)
	if err != nil {
		//lint:ignore errdrop already failing; the close error adds nothing
		ln.Close()
		if opsLn != nil {
			//lint:ignore errdrop already failing; the close error adds nothing
			opsLn.Close()
		}
		return err
	}
	if mux != nil {
		defer func() {
			telemetry.SetHealthSource(nil)
			mux.Shutdown()
			s := mux.Stats()
			fmt.Printf("stream: decisions=%d shed=%d skipped=%d restarts=%d alerts=%d/%d max-depth=%d\n",
				s.Decisions, s.ShedReadings, s.FramesSkipped, s.Restarts, s.AlertsRaised, s.AlertsCleared, s.MaxDepth)
		}()
	}
	stop, release := notifyInterrupt()
	defer release()
	serveController(ctrl, db, ln, opsLn, stop, os.Stdout)
	return nil
}

// serveController runs the controller accept loop until stop closes, then
// prints the session summary. Split from runController so tests can drive it
// with ephemeral listeners and a controllable stop channel.
func serveController(ctrl *collect.Controller, db *tsdb.DB, ln, opsLn net.Listener, stop <-chan struct{}, out io.Writer) {
	acceptLoop(ln, opsLn, stop, out, func(conn net.Conn) {
		remote := conn.RemoteAddr()
		err := ctrl.ServeConn(wire.NewConn(conn))
		switch {
		case err == nil:
			statusf(out, "agent %v disconnected\n", remote)
		case errors.Is(err, net.ErrClosed):
			// Shutdown closed the connection under a blocked read; not an
			// agent fault, nothing to report.
		default:
			log.Printf("agent %v: %v", remote, err)
		}
	})

	// Session summary.
	for _, id := range ctrl.AgentIDs() {
		st, _ := ctrl.AgentStats(id)
		statusf(out, "agent %-10s modality=%-7s batches=%d readings=%d last-skew=%dms rtt=%dms\n",
			id, st.Modality, st.Batches, st.Readings, st.LastSkewMill, st.LastRTTMillis)
	}
	for _, s := range db.Series() {
		first, last, ok := db.Bounds(s)
		if ok {
			statusf(out, "series %-24s %6d points over %d ms\n", s, db.Len(s), last-first)
		}
	}
}

// runEngineServer runs the paper's remote configuration: a server holding
// the trained analytics engine, answering classify requests over the wire
// protocol.
func runEngineServer(listen, opsAddr, enginePath string) error {
	f, err := os.Open(enginePath)
	if err != nil {
		return fmt.Errorf("open engine snapshot: %w", err)
	}
	eng, err := core.LoadEngine(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("load engine: %w", err)
	}
	ln, opsLn, err := listenPair(listen, opsAddr)
	if err != nil {
		return err
	}
	fmt.Printf("analytics engine (%d classes, %dx%d frames) serving on %s\n",
		eng.Classes, eng.ImgW, eng.ImgH, ln.Addr())
	stop, release := notifyInterrupt()
	defer release()
	serveEngine(eng, ln, opsLn, stop, os.Stdout)
	return nil
}

// serveEngine runs the classify accept loop until stop closes. The stop
// channel is bridged into a context so per-connection serving loops (and the
// span contexts they derive) observe server shutdown.
func serveEngine(eng *core.Engine, ln, opsLn net.Listener, stop <-chan struct{}, out io.Writer) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		select {
		case <-stop:
		case <-ctx.Done():
		}
		cancel()
	}()
	acceptLoop(ln, opsLn, stop, out, func(conn net.Conn) {
		err := eng.ServeClassifyCtx(ctx, wire.NewConn(conn))
		if err != nil && !errors.Is(err, net.ErrClosed) && !errors.Is(err, context.Canceled) {
			log.Printf("client %v: %v", conn.RemoteAddr(), err)
		}
	})
}

func runAgent(addr, id string, duration time.Duration, drift float64, reconnect bool, ackTimeout time.Duration) error {
	dial := func() (*wire.Conn, error) {
		c, err := net.Dial("tcp", addr)
		if err != nil {
			return nil, fmt.Errorf("connect: %w", err)
		}
		return wire.NewConn(c), nil
	}
	conn, err := dial()
	if err != nil {
		return err
	}
	defer func() {
		//lint:ignore errdrop session teardown; the close error leaves nothing to act on
		conn.Close()
	}()

	clock := collect.NewDriftClock(wallMillis, drift)
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	// Stream a talking-class IMU signature, replaying the generator window
	// by window.
	window := synth.GenerateWindow(rng, synth.Talking, synth.DefaultIMUGen())
	step := 0
	next := func() imu.Sample {
		s := window.Samples[step%len(window.Samples)]
		step++
		if step%len(window.Samples) == 0 {
			window = synth.GenerateWindow(rng, synth.Talking, synth.DefaultIMUGen())
		}
		return s
	}
	current := next()
	sensors := collect.IMUSensors(func() imu.Sample { return current })
	agent, err := collect.NewAgent(collect.AgentConfig{
		ID: id, Modality: "imu", PollPeriodMS: 25, LatencyComp: 2, AckTimeout: ackTimeout,
	}, clock, sensors, conn)
	if err != nil {
		return err
	}
	rcfg := collect.RunnerConfig{FlushEvery: 500 * time.Millisecond, OnPoll: func() { current = next() }}
	if reconnect {
		rcfg.Dialer = dial
		rcfg.Seed = time.Now().UnixNano() // decorrelate fleet backoff jitter
	}
	runner, err := collect.StartRunnerConfig(agent, rcfg)
	if err != nil {
		return err
	}
	fmt.Printf("agent %s streaming to %s for %v (drift %.3f%%, reconnect=%v)\n", id, addr, duration, drift*100, reconnect)
	time.Sleep(duration)
	if err := runner.Shutdown(); err != nil {
		return err
	}
	fmt.Printf("agent %s done, final clock skew %d ms, survived %d outages, spill-dropped %d readings\n",
		id, agent.ClockSkewMillis(), runner.Reconnects(), agent.SpillDropped())
	return nil
}

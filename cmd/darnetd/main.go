// Command darnetd runs DarNet's collection middleware over TCP.
//
// Controller mode (default) accepts agent connections, aggregates readings
// into the time-series store, and acts as the clock-sync master:
//
//	darnetd -listen 127.0.0.1:7700
//
// Agent mode simulates an in-vehicle device streaming synthetic IMU data to
// a running controller:
//
//	darnetd -agent -connect 127.0.0.1:7700 -id imu-1 -duration 5s
//
// Either server mode can additionally expose the telemetry ops endpoint
// (/metrics, /healthz, /tracez, /debug/pprof) with -ops:
//
//	darnetd -listen 127.0.0.1:7700 -ops 127.0.0.1:7701
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime/pprof"
	"sync"
	"time"

	"darnet/internal/collect"
	"darnet/internal/core"
	"darnet/internal/durable"
	"darnet/internal/imu"
	"darnet/internal/obs"
	"darnet/internal/stream"
	"darnet/internal/synth"
	"darnet/internal/telemetry"
	"darnet/internal/tsdb"
	"darnet/internal/wire"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("darnetd: ")

	var (
		listen     = flag.String("listen", "127.0.0.1:7700", "controller listen address")
		ops        = flag.String("ops", "", "also serve the ops endpoint (/metrics, /healthz, /tracez, /debug/pprof) on this address")
		agentMode  = flag.Bool("agent", false, "run as a simulated agent instead of the controller")
		connect    = flag.String("connect", "127.0.0.1:7700", "controller address (agent mode)")
		agentID    = flag.String("id", "imu-1", "agent identifier (agent mode)")
		duration   = flag.Duration("duration", 5*time.Second, "how long the agent streams (agent mode)")
		drift      = flag.Float64("drift", 0.002, "simulated clock drift of the agent (fraction)")
		enginePath = flag.String("engine", "", "serve remote classification from this engine snapshot instead of collecting")
		idleT      = flag.Duration("idle-timeout", 0, "reap agent connections silent for this long (controller mode; 0 disables)")
		reconnect  = flag.Bool("reconnect", true, "redial the controller with exponential backoff after transport failures (agent mode)")
		ackTimeout = flag.Duration("ack-timeout", 5*time.Second, "bound each wait for a controller ack (agent mode; 0 waits forever)")

		streamEngine = flag.String("stream-engine", "", "classify stored readings online through this engine snapshot (controller mode)")
		streamQueue  = flag.Int("stream-queue", 64, "per-agent bounded classify queue capacity (streaming)")
		frameSkipMax = flag.Int("frame-skip-max", 4, "max consecutive frames reusing the last CNN result under overload (streaming)")
		alertDwell   = flag.Duration("alert-dwell", 2*time.Second, "evidence must persist this long before an alert raises or clears (streaming)")

		dataDir = flag.String("data-dir", "", "persist the controller's store in this directory (WAL + checkpoints; empty disables durability)")
		fsyncP  = flag.String("fsync", "interval", "WAL fsync policy: always (sync every commit), interval (group commit on a timer), never")
		ckptI   = flag.Duration("checkpoint-interval", durable.DefaultCheckpointEvery, "how often to checkpoint the store and rotate the WAL (0 checkpoints only at startup/shutdown)")

		scrapeI   = flag.Duration("scrape-interval", obs.DefaultScrapeInterval, "telemetry→history scrape cadence (controller mode; 0 disables the bridge)")
		retention = flag.Duration("history-retention", obs.DefaultRetention, "how much scraped metric history /metrics/history keeps")
		sloP99    = flag.Float64("slo-alert-p99", 0.5, "alert-latency p99 SLO threshold in seconds; burn rates over it drive /healthz")
	)
	flag.Parse()

	sOpts := streamOptions{
		enginePath: *streamEngine,
		queueCap:   *streamQueue,
		skipMax:    *frameSkipMax,
		dwell:      *alertDwell,
	}
	if err := sOpts.validate(); err != nil {
		log.Fatal(err)
	}
	oOpts := obsOptions{
		scrapeInterval: *scrapeI,
		retention:      *retention,
		alertP99:       *sloP99,
	}
	if err := oOpts.validate(); err != nil {
		log.Fatal(err)
	}
	dOpts := durOptions{
		dataDir:   *dataDir,
		fsync:     *fsyncP,
		ckptEvery: *ckptI,
	}
	if err := dOpts.validate(); err != nil {
		log.Fatal(err)
	}

	var err error
	switch {
	case *agentMode:
		err = runAgent(*connect, *agentID, *duration, *drift, *reconnect, *ackTimeout)
	case *enginePath != "":
		err = runEngineServer(*listen, *ops, *enginePath)
	default:
		err = runController(*listen, *ops, *idleT, sOpts, oOpts, dOpts)
	}
	if err != nil {
		log.Fatal(err)
	}
}

// streamOptions bundle the streaming-classification flags; validation runs
// at startup in every mode so a typo'd unit (say -stream-queue=0) fails fast
// instead of surfacing when the pipeline is first needed.
type streamOptions struct {
	enginePath string
	queueCap   int
	skipMax    int
	dwell      time.Duration
}

func (o streamOptions) validate() error {
	if o.queueCap <= 0 {
		return fmt.Errorf("-stream-queue must be positive, got %d", o.queueCap)
	}
	if o.skipMax <= 0 {
		return fmt.Errorf("-frame-skip-max must be positive, got %d", o.skipMax)
	}
	if o.dwell <= 0 {
		return fmt.Errorf("-alert-dwell must be positive, got %v", o.dwell)
	}
	return nil
}

// obsOptions bundle the observability-bridge flags (controller mode).
type obsOptions struct {
	scrapeInterval time.Duration // 0 disables the bridge entirely
	retention      time.Duration
	alertP99       float64
}

func (o obsOptions) validate() error {
	if o.scrapeInterval < 0 {
		return fmt.Errorf("-scrape-interval must be non-negative, got %v", o.scrapeInterval)
	}
	if o.scrapeInterval > 0 && o.retention <= 0 {
		return fmt.Errorf("-history-retention must be positive, got %v", o.retention)
	}
	if o.alertP99 <= 0 {
		return fmt.Errorf("-slo-alert-p99 must be positive, got %g", o.alertP99)
	}
	return nil
}

// durOptions bundle the durability flags (controller mode). An empty data
// directory turns the whole subsystem off; the fsync policy still parses so a
// typo fails at startup, not when -data-dir is finally added.
type durOptions struct {
	dataDir   string
	fsync     string
	ckptEvery time.Duration
}

func (o durOptions) validate() error {
	if _, err := durable.ParsePolicy(o.fsync); err != nil {
		return fmt.Errorf("-fsync: %w", err)
	}
	if o.ckptEvery < 0 {
		return fmt.Errorf("-checkpoint-interval must be non-negative, got %v", o.ckptEvery)
	}
	return nil
}

// setupDurability opens (or creates) the write-ahead log and checkpoint state
// under the data directory, recovering whatever a previous process left
// behind, and reports the recovery outcome to the operator. Returns nils when
// durability is off.
func setupDurability(db *tsdb.DB, o durOptions, out io.Writer) (*durable.Manager, *durable.Recovery, error) {
	if o.dataDir == "" {
		return nil, nil, nil
	}
	policy, err := durable.ParsePolicy(o.fsync)
	if err != nil {
		return nil, nil, err
	}
	fs, err := durable.NewDirFS(o.dataDir)
	if err != nil {
		return nil, nil, fmt.Errorf("open data dir: %w", err)
	}
	ckptEvery := o.ckptEvery
	if ckptEvery == 0 {
		ckptEvery = -1 // manager convention: non-positive disables the ticker
	}
	man, rec, err := durable.Open(db, durable.Options{
		FS:              fs,
		Policy:          policy,
		CheckpointEvery: ckptEvery,
		Logf:            log.Printf,
	})
	if err != nil {
		return nil, nil, fmt.Errorf("durability: %w", err)
	}
	statusf(out, "durability on (data-dir %s, fsync %s, checkpoint every %v)\n", o.dataDir, policy, o.ckptEvery)
	statusf(out, "recovery: sessions=%d series=%d frames=%d replayed=%d discarded=%d torn=%dB lost=%dB degraded=%v\n",
		len(rec.Sessions), rec.SeriesLoaded, rec.FramesLoaded+rec.ReplayedFrames, rec.ReplayedInserts, rec.DiscardedInserts, rec.TornBytes, rec.LostBytes, rec.Degraded)
	if rec.Note != "" {
		statusf(out, "recovery: %s\n", rec.Note)
	}
	return man, rec, nil
}

// obsBridge owns the controller's observability background work: the
// telemetry→tsdb scraper feeding /metrics/history and the SLO evaluator
// driving /healthz from burn rates. A nil bridge (the -scrape-interval=0
// case) degrades every method to the pre-bridge behavior.
type obsBridge struct {
	scraper *obs.Scraper
	ev      *obs.Evaluator
	stop    chan struct{}
	wg      sync.WaitGroup
}

// setupObservability starts the scraper and SLO evaluator and installs the
// combined health source (stream mux verdict worst-cased with SLO burn rates
// and the durability manager's degradation latch). streamHealth and durHealth
// are nil when their subsystems are off.
func setupObservability(o obsOptions, streamHealth, durHealth func() telemetry.Health, out io.Writer) (*obsBridge, error) {
	if o.scrapeInterval == 0 {
		return nil, nil
	}
	scraper, err := obs.NewScraper(obs.ScrapeConfig{
		Interval:  o.scrapeInterval,
		Retention: o.retention,
	})
	if err != nil {
		return nil, err
	}
	db := scraper.DB()
	ev, err := obs.NewEvaluator(obs.EvaluatorConfig{},
		obs.LatencyObjective("darnet_slo_alert_latency", 0.1,
			"darnet_stream_alert_latency_seconds.p99", o.alertP99, db),
		obs.RatioObjective("darnet_slo_shed_ratio", 0.05,
			"darnet_stream_readings_shed_total", "darnet_collect_stream_forwarded_total", db),
		obs.RateObjective("darnet_slo_reconnect_rate", 1,
			"darnet_collect_reconnects_total", 0.2, db),
	)
	if err != nil {
		return nil, err
	}
	b := &obsBridge{scraper: scraper, ev: ev, stop: make(chan struct{})}
	scraper.Start()
	b.wg.Add(1)
	go func() {
		defer b.wg.Done()
		ev.Run(o.scrapeInterval, b.stop)
	}()
	telemetry.SetHealthSource(obs.CombineHealth(streamHealth, durHealth, ev.Health))
	statusf(out, "observability bridge on (scrape every %v, retention %v, alert p99 SLO %.2fs)\n",
		o.scrapeInterval, o.retention, o.alertP99)
	return b, nil
}

// handler composes the ops endpoint: the base telemetry handler plus the
// /metrics/history query route over the scraped partition.
func (b *obsBridge) handler() http.Handler {
	base := telemetry.NewOpsHandler(telemetry.Default, telemetry.DefaultTracer)
	if b == nil {
		return base
	}
	m := http.NewServeMux()
	m.Handle("/", base)
	m.Handle("/metrics/history", obs.NewHistoryHandler(b.scraper.DB()))
	return m
}

// shutdown stops the evaluator loop and the scraper; Scraper.Stop takes the
// final flush so the last pre-exit metric values are part of the history.
func (b *obsBridge) shutdown() {
	if b == nil {
		return
	}
	close(b.stop)
	b.wg.Wait()
	b.scraper.Stop()
}

// setupStreaming loads the engine snapshot and attaches a streaming mux to
// the controller: stored readings flow into per-agent classify pipelines,
// admission credits flow back through the acks, and the mux takes over the
// /healthz verdict (ok / degraded / overloaded). Returns nil when streaming
// is not requested.
func setupStreaming(ctrl *collect.Controller, o streamOptions, out io.Writer) (*stream.Mux, error) {
	if o.enginePath == "" {
		return nil, nil
	}
	f, err := os.Open(o.enginePath)
	if err != nil {
		return nil, fmt.Errorf("open stream engine snapshot: %w", err)
	}
	eng, err := core.LoadEngine(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return nil, fmt.Errorf("load stream engine: %w", err)
	}
	mux, err := stream.NewMux(stream.Config{
		QueueCap:     o.queueCap,
		FrameSkipMax: o.skipMax,
		Alert:        stream.AlertConfig{Dwell: o.dwell},
		OnAlert: func(agentID string, ev core.AlertEvent, cls *core.Classification) {
			log.Printf("alert %v agent=%s class=%d confidence=%.2f mode=%v", ev, agentID, cls.Class, cls.Confidence, cls.Mode)
		},
	}, stream.EngineTickerFactory(eng))
	if err != nil {
		return nil, fmt.Errorf("stream mux: %w", err)
	}
	ctrl.SetStreamSink(mux)
	telemetry.SetHealthSource(mux.Health)
	statusf(out, "streaming classification on (%d classes, queue %d, frame-skip %d, alert dwell %v)\n",
		eng.Classes, o.queueCap, o.skipMax, o.dwell)
	return mux, nil
}

// notifyInterrupt returns a channel that closes on the first SIGINT and a
// release function that unregisters the handler and lets the signal
// goroutine exit. (An earlier version leaked that goroutine forever when the
// accept loop ended for any reason other than a signal.)
func notifyInterrupt() (<-chan struct{}, func()) {
	stop := make(chan struct{})
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	done := make(chan struct{})
	go func() {
		defer signal.Stop(sig)
		select {
		case <-sig:
			close(stop)
		case <-done:
		}
	}()
	return stop, func() { close(done) }
}

// listenPair opens the service listener and, when opsAddr is non-empty, the
// ops listener.
func listenPair(addr, opsAddr string) (ln, opsLn net.Listener, err error) {
	ln, err = net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, fmt.Errorf("listen: %w", err)
	}
	if opsAddr != "" {
		opsLn, err = net.Listen("tcp", opsAddr)
		if err != nil {
			//lint:ignore errdrop already failing; the close error adds nothing
			ln.Close()
			return nil, nil, fmt.Errorf("ops listen: %w", err)
		}
	}
	return ln, opsLn, nil
}

// statusf writes operator status output. out is stdout in deployment and a
// discard sink in tests; a failed status write leaves nothing to act on.
func statusf(out io.Writer, format string, args ...any) {
	//lint:ignore errdrop status output; a failed write leaves nothing to act on
	fmt.Fprintf(out, format, args...)
}

// connTracker remembers accepted connections so shutdown can unblock their
// serve goroutines by closing them.
type connTracker struct {
	mu    sync.Mutex
	conns map[net.Conn]struct{}
}

func newConnTracker() *connTracker {
	return &connTracker{conns: make(map[net.Conn]struct{})}
}

func (t *connTracker) add(c net.Conn) {
	t.mu.Lock()
	t.conns[c] = struct{}{}
	t.mu.Unlock()
}

// remove closes c and stops tracking it.
func (t *connTracker) remove(c net.Conn) {
	t.mu.Lock()
	delete(t.conns, c)
	t.mu.Unlock()
	//lint:ignore errdrop connection teardown; the close error leaves nothing to act on
	c.Close()
}

func (t *connTracker) closeAll() {
	t.mu.Lock()
	defer t.mu.Unlock()
	for c := range t.conns {
		//lint:ignore errdrop shutdown path; the close error leaves nothing to act on
		c.Close()
	}
}

// startOps serves the ops endpoint on ln (nil disables it). A nil handler
// falls back to the plain telemetry handler; the controller passes the
// obsBridge composition so /metrics/history is mounted too. The returned
// server must be Closed to release its listener and goroutine.
func startOps(ln net.Listener, h http.Handler, out io.Writer) *http.Server {
	if ln == nil {
		return nil
	}
	if h == nil {
		h = telemetry.NewOpsHandler(telemetry.Default, telemetry.DefaultTracer)
	}
	srv := &http.Server{Handler: h}
	go func() {
		if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Printf("ops: %v", err)
		}
	}()
	statusf(out, "ops endpoint on http://%s/metrics\n", ln.Addr())
	return srv
}

// acceptLoop accepts connections on ln and hands each to handle on its own
// goroutine until stop closes or the listener fails. When opsLn is non-nil
// the ops endpoint serves on it for the duration. On return both listeners
// and every tracked connection are closed and all spawned goroutines have
// exited.
func acceptLoop(ln, opsLn net.Listener, opsH http.Handler, stop <-chan struct{}, out io.Writer, handle func(net.Conn)) {
	opsSrv := startOps(opsLn, opsH, out)
	tracker := newConnTracker()
	done := make(chan struct{})
	var watch sync.WaitGroup
	watch.Add(1)
	go func() {
		defer watch.Done()
		select {
		case <-stop:
			statusf(out, "\nshutting down\n")
		case <-done:
		}
		//lint:ignore errdrop shutdown path; the close error leaves nothing to act on
		ln.Close()
		tracker.closeAll()
	}()

	var wg sync.WaitGroup
	for {
		conn, err := ln.Accept()
		if err != nil {
			break // listener closed
		}
		tracker.add(conn)
		wg.Add(1)
		go func(conn net.Conn) {
			defer wg.Done()
			defer tracker.remove(conn)
			handle(conn)
		}(conn)
	}
	close(done)
	watch.Wait()
	wg.Wait()
	if opsSrv != nil {
		//lint:ignore errdrop shutdown path; the close error leaves nothing to act on
		opsSrv.Close()
	}
}

func wallMillis() int64 { return time.Now().UnixMilli() }

func runController(listen, opsAddr string, idleTimeout time.Duration, sOpts streamOptions, oOpts obsOptions, dOpts durOptions) error {
	ln, opsLn, err := listenPair(listen, opsAddr)
	if err != nil {
		return err
	}
	fmt.Printf("controller listening on %s (clock re-sync every %d ms)\n", ln.Addr(), collect.SyncPeriodMillis)
	stop, release := notifyInterrupt()
	defer release()
	return runControllerWith(ln, opsLn, idleTimeout, sOpts, oOpts, dOpts, stop, os.Stdout)
}

// runControllerWith is the controller lifecycle behind runController: recover
// durable state, wire up streaming and the observability bridge, serve until
// stop closes, then tear down in summary order — stream drain, final
// telemetry scrape, final checkpoint + WAL close, and the parseable
// shutdown-summary line last. Split out so tests can drive it with ephemeral
// listeners and a controllable stop channel.
func runControllerWith(ln, opsLn net.Listener, idleTimeout time.Duration, sOpts streamOptions, oOpts obsOptions, dOpts durOptions, stop <-chan struct{}, out io.Writer) error {
	closeAll := func() {
		//lint:ignore errdrop already failing; the close error adds nothing
		ln.Close()
		if opsLn != nil {
			//lint:ignore errdrop already failing; the close error adds nothing
			opsLn.Close()
		}
	}
	db := tsdb.New()
	man, rec, err := setupDurability(db, dOpts, out)
	if err != nil {
		closeAll()
		return err
	}
	ctrl := collect.NewController(db, wallMillis)
	var durHealth func() telemetry.Health
	if man != nil {
		// Order matters: sessions restore before the listener accepts (so the
		// first resumed agent already hits the recovered dedupe marks), and the
		// commit log attaches before the session source so every mark the
		// checkpointer snapshots was also appended.
		ctrl.RestoreSessions(rec.Sessions)
		ctrl.RestoreFrames(rec.Frames)
		ctrl.SetCommitLog(man)
		man.SetSessionSource(ctrl.SessionSnapshot)
		man.SetFrameSource(ctrl.FrameSnapshot)
		man.Start()
		durHealth = man.Health
	}
	if idleTimeout > 0 {
		ctrl.SetIdleTimeout(idleTimeout)
		statusf(out, "reaping connections silent for %v\n", idleTimeout)
	}
	mux, err := setupStreaming(ctrl, sOpts, out)
	if err != nil {
		closeAll()
		if man != nil {
			//lint:ignore errdrop already failing; the close error adds nothing
			man.Close()
		}
		return err
	}
	var streamHealth func() telemetry.Health
	if mux != nil {
		streamHealth = mux.Health
	}
	bridge, err := setupObservability(oOpts, streamHealth, durHealth, out)
	if err != nil {
		closeAll()
		if mux != nil {
			telemetry.SetHealthSource(nil)
			mux.Shutdown()
		}
		if man != nil {
			//lint:ignore errdrop already failing; the close error adds nothing
			man.Close()
		}
		return err
	}
	if bridge == nil && durHealth != nil {
		// No SLO evaluator to compose with: /healthz still reports durability
		// degradation (worst-cased with the stream verdict when present).
		telemetry.SetHealthSource(obs.CombineHealth(streamHealth, durHealth))
	}

	serveController(ctrl, db, ln, opsLn, bridge.handler(), stop, out)

	// Shutdown: detach the health source, drain the stream pipelines, flush
	// the final telemetry scrape, close out durability (final checkpoint, WAL
	// sync and close — after the scrape so its counters include the last
	// flush), then emit the machine-parseable summary as the last line so
	// operators and scripts read the same post-flush state.
	telemetry.SetHealthSource(nil)
	var streamStats *stream.Stats
	if mux != nil {
		mux.Shutdown()
		s := mux.Stats()
		streamStats = &s
		statusf(out, "stream: decisions=%d shed=%d skipped=%d restarts=%d alerts=%d/%d max-depth=%d\n",
			s.Decisions, s.ShedReadings, s.FramesSkipped, s.Restarts, s.AlertsRaised, s.AlertsCleared, s.MaxDepth)
	}
	bridge.shutdown()
	var durStats *durable.ManagerStats
	if man != nil {
		if err := man.Close(); err != nil {
			log.Printf("durability close: %v", err)
		}
		s := man.Stats()
		durStats = &s
		statusf(out, "durability: checkpoint gen=%d lsn=%d wal-bytes=%d synced=%d fsync=%s\n",
			s.CheckpointGen, s.CheckpointLSN, s.WALBytes, s.WALSynced, s.Policy)
	}
	printShutdownSummary(out, ctrl, bridge, streamStats, durStats)
	return nil
}

// shutdownSummary is the parseable final line of a controller run, emitted
// after the observability bridge's final scrape so the counts include it.
type shutdownSummary struct {
	Agents          int    `json:"agents"`
	StoredSeries    int    `json:"stored_series"`
	Scrapes         int64  `json:"scrapes"`
	HistorySeries   int    `json:"history_series"`
	SLOStatus       string `json:"slo_status"`
	StreamDecisions int64  `json:"stream_decisions"`
	StreamShed      int64  `json:"stream_shed"`
	AlertsRaised    int64  `json:"alerts_raised"`
	FsyncPolicy     string `json:"fsync_policy"`
	CheckpointGen   uint64 `json:"checkpoint_gen"`
	CheckpointLSN   uint64 `json:"checkpoint_lsn"`
	WALBytes        uint64 `json:"wal_bytes"`
}

func printShutdownSummary(out io.Writer, ctrl *collect.Controller, bridge *obsBridge, streamStats *stream.Stats, durStats *durable.ManagerStats) {
	sum := shutdownSummary{
		Agents:      len(ctrl.AgentIDs()),
		SLOStatus:   "disabled",
		FsyncPolicy: "disabled",
	}
	if bridge != nil {
		sum.Scrapes = bridge.scraper.Scrapes()
		sum.HistorySeries = len(bridge.scraper.DB().Series())
		sum.SLOStatus = bridge.ev.Health().Status
	}
	if streamStats != nil {
		sum.StreamDecisions = streamStats.Decisions
		sum.StreamShed = streamStats.ShedReadings
		sum.AlertsRaised = streamStats.AlertsRaised
	}
	if durStats != nil {
		sum.FsyncPolicy = durStats.Policy
		sum.CheckpointGen = durStats.CheckpointGen
		sum.CheckpointLSN = durStats.CheckpointLSN
		sum.WALBytes = durStats.WALBytes
	}
	data, err := json.Marshal(sum)
	if err != nil {
		log.Printf("shutdown summary: %v", err)
		return
	}
	statusf(out, "shutdown-summary %s\n", data)
}

// serveController runs the controller accept loop until stop closes, then
// prints the per-agent session summary. Each connection's serve goroutine
// carries pprof labels (stage, peer) so goroutine profiles taken from the ops
// endpoint attribute blocked reads to the agent connection holding them.
func serveController(ctrl *collect.Controller, db *tsdb.DB, ln, opsLn net.Listener, opsH http.Handler, stop <-chan struct{}, out io.Writer) {
	acceptLoop(ln, opsLn, opsH, stop, out, func(conn net.Conn) {
		remote := conn.RemoteAddr()
		labels := pprof.Labels("darnet_stage", "controller_conn", "darnet_peer", remote.String())
		pprof.Do(context.Background(), labels, func(context.Context) {
			err := ctrl.ServeConn(wire.NewConn(conn))
			switch {
			case err == nil:
				statusf(out, "agent %v disconnected\n", remote)
			case errors.Is(err, net.ErrClosed):
				// Shutdown closed the connection under a blocked read; not an
				// agent fault, nothing to report.
			default:
				log.Printf("agent %v: %v", remote, err)
			}
		})
	})

	// Session summary.
	for _, id := range ctrl.AgentIDs() {
		st, _ := ctrl.AgentStats(id)
		statusf(out, "agent %-10s modality=%-7s batches=%d readings=%d last-skew=%dms rtt=%dms\n",
			id, st.Modality, st.Batches, st.Readings, st.LastSkewMill, st.LastRTTMillis)
	}
	for _, s := range db.Series() {
		first, last, ok := db.Bounds(s)
		if ok {
			statusf(out, "series %-24s %6d points over %d ms\n", s, db.Len(s), last-first)
		}
	}
}

// runEngineServer runs the paper's remote configuration: a server holding
// the trained analytics engine, answering classify requests over the wire
// protocol.
func runEngineServer(listen, opsAddr, enginePath string) error {
	f, err := os.Open(enginePath)
	if err != nil {
		return fmt.Errorf("open engine snapshot: %w", err)
	}
	eng, err := core.LoadEngine(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("load engine: %w", err)
	}
	ln, opsLn, err := listenPair(listen, opsAddr)
	if err != nil {
		return err
	}
	fmt.Printf("analytics engine (%d classes, %dx%d frames) serving on %s\n",
		eng.Classes, eng.ImgW, eng.ImgH, ln.Addr())
	stop, release := notifyInterrupt()
	defer release()
	serveEngine(eng, ln, opsLn, stop, os.Stdout)
	return nil
}

// serveEngine runs the classify accept loop until stop closes. The stop
// channel is bridged into a context so per-connection serving loops (and the
// span contexts they derive) observe server shutdown.
func serveEngine(eng *core.Engine, ln, opsLn net.Listener, stop <-chan struct{}, out io.Writer) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		select {
		case <-stop:
		case <-ctx.Done():
		}
		cancel()
	}()
	acceptLoop(ln, opsLn, nil, stop, out, func(conn net.Conn) {
		err := eng.ServeClassifyCtx(ctx, wire.NewConn(conn))
		if err != nil && !errors.Is(err, net.ErrClosed) && !errors.Is(err, context.Canceled) {
			log.Printf("client %v: %v", conn.RemoteAddr(), err)
		}
	})
}

func runAgent(addr, id string, duration time.Duration, drift float64, reconnect bool, ackTimeout time.Duration) error {
	dial := func() (*wire.Conn, error) {
		c, err := net.Dial("tcp", addr)
		if err != nil {
			return nil, fmt.Errorf("connect: %w", err)
		}
		return wire.NewConn(c), nil
	}
	conn, err := dial()
	if err != nil {
		return err
	}
	defer func() {
		//lint:ignore errdrop session teardown; the close error leaves nothing to act on
		conn.Close()
	}()

	clock := collect.NewDriftClock(wallMillis, drift)
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	// Stream a talking-class IMU signature, replaying the generator window
	// by window.
	window := synth.GenerateWindow(rng, synth.Talking, synth.DefaultIMUGen())
	step := 0
	next := func() imu.Sample {
		s := window.Samples[step%len(window.Samples)]
		step++
		if step%len(window.Samples) == 0 {
			window = synth.GenerateWindow(rng, synth.Talking, synth.DefaultIMUGen())
		}
		return s
	}
	current := next()
	sensors := collect.IMUSensors(func() imu.Sample { return current })
	agent, err := collect.NewAgent(collect.AgentConfig{
		ID: id, Modality: "imu", PollPeriodMS: 25, LatencyComp: 2, AckTimeout: ackTimeout,
	}, clock, sensors, conn)
	if err != nil {
		return err
	}
	rcfg := collect.RunnerConfig{FlushEvery: 500 * time.Millisecond, OnPoll: func() { current = next() }}
	if reconnect {
		rcfg.Dialer = dial
		rcfg.Seed = time.Now().UnixNano() // decorrelate fleet backoff jitter
	}
	runner, err := collect.StartRunnerConfig(agent, rcfg)
	if err != nil {
		return err
	}
	fmt.Printf("agent %s streaming to %s for %v (drift %.3f%%, reconnect=%v)\n", id, addr, duration, drift*100, reconnect)
	time.Sleep(duration)
	if err := runner.Shutdown(); err != nil {
		return err
	}
	fmt.Printf("agent %s done, final clock skew %d ms, survived %d outages, spill-dropped %d readings\n",
		id, agent.ClockSkewMillis(), runner.Reconnects(), agent.SpillDropped())
	return nil
}

// Command darnetd runs DarNet's collection middleware over TCP.
//
// Controller mode (default) accepts agent connections, aggregates readings
// into the time-series store, and acts as the clock-sync master:
//
//	darnetd -listen 127.0.0.1:7700
//
// Agent mode simulates an in-vehicle device streaming synthetic IMU data to
// a running controller:
//
//	darnetd -agent -connect 127.0.0.1:7700 -id imu-1 -duration 5s
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net"
	"os"
	"os/signal"
	"sync"
	"time"

	"darnet/internal/collect"
	"darnet/internal/core"
	"darnet/internal/imu"
	"darnet/internal/synth"
	"darnet/internal/tsdb"
	"darnet/internal/wire"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("darnetd: ")

	var (
		listen     = flag.String("listen", "127.0.0.1:7700", "controller listen address")
		agentMode  = flag.Bool("agent", false, "run as a simulated agent instead of the controller")
		connect    = flag.String("connect", "127.0.0.1:7700", "controller address (agent mode)")
		agentID    = flag.String("id", "imu-1", "agent identifier (agent mode)")
		duration   = flag.Duration("duration", 5*time.Second, "how long the agent streams (agent mode)")
		drift      = flag.Float64("drift", 0.002, "simulated clock drift of the agent (fraction)")
		enginePath = flag.String("engine", "", "serve remote classification from this engine snapshot instead of collecting")
	)
	flag.Parse()

	var err error
	switch {
	case *agentMode:
		err = runAgent(*connect, *agentID, *duration, *drift)
	case *enginePath != "":
		err = runEngineServer(*listen, *enginePath)
	default:
		err = runController(*listen)
	}
	if err != nil {
		log.Fatal(err)
	}
}

// runEngineServer runs the paper's remote configuration: a server holding
// the trained analytics engine, answering classify requests over the wire
// protocol.
func runEngineServer(listen, enginePath string) error {
	f, err := os.Open(enginePath)
	if err != nil {
		return fmt.Errorf("open engine snapshot: %w", err)
	}
	eng, err := core.LoadEngine(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("load engine: %w", err)
	}
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return fmt.Errorf("listen: %w", err)
	}
	fmt.Printf("analytics engine (%d classes, %dx%d frames) serving on %s\n",
		eng.Classes, eng.ImgW, eng.ImgH, ln.Addr())

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt)
	var wg sync.WaitGroup
	go func() {
		<-stop
		fmt.Println("\nshutting down")
		//lint:ignore errdrop shutdown path; the close error leaves nothing to act on
		ln.Close()
	}()
	for {
		conn, err := ln.Accept()
		if err != nil {
			break
		}
		wg.Add(1)
		go func(conn net.Conn) {
			defer wg.Done()
			defer conn.Close()
			if err := eng.ServeClassify(wire.NewConn(conn)); err != nil {
				log.Printf("client %v: %v", conn.RemoteAddr(), err)
			}
		}(conn)
	}
	wg.Wait()
	return nil
}

func wallMillis() int64 { return time.Now().UnixMilli() }

func runController(listen string) error {
	db := tsdb.New()
	ctrl := collect.NewController(db, wallMillis)
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return fmt.Errorf("listen: %w", err)
	}
	fmt.Printf("controller listening on %s (clock re-sync every %d ms)\n", ln.Addr(), collect.SyncPeriodMillis)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt)
	var wg sync.WaitGroup
	go func() {
		<-stop
		fmt.Println("\nshutting down")
		//lint:ignore errdrop shutdown path; the close error leaves nothing to act on
		ln.Close()
	}()

	for {
		conn, err := ln.Accept()
		if err != nil {
			break // listener closed
		}
		wg.Add(1)
		go func(conn net.Conn) {
			defer wg.Done()
			defer conn.Close()
			remote := conn.RemoteAddr()
			if err := ctrl.ServeConn(wire.NewConn(conn)); err != nil {
				log.Printf("agent %v: %v", remote, err)
				return
			}
			fmt.Printf("agent %v disconnected\n", remote)
		}(conn)
	}
	wg.Wait()

	// Session summary.
	for _, id := range ctrl.AgentIDs() {
		st, _ := ctrl.AgentStats(id)
		fmt.Printf("agent %-10s modality=%-7s batches=%d readings=%d last-skew=%dms rtt=%dms\n",
			id, st.Modality, st.Batches, st.Readings, st.LastSkewMill, st.LastRTTMillis)
	}
	for _, s := range db.Series() {
		first, last, ok := db.Bounds(s)
		if ok {
			fmt.Printf("series %-24s %6d points over %d ms\n", s, db.Len(s), last-first)
		}
	}
	return nil
}

func runAgent(addr, id string, duration time.Duration, drift float64) error {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return fmt.Errorf("connect: %w", err)
	}
	defer conn.Close()

	clock := collect.NewDriftClock(wallMillis, drift)
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	// Stream a talking-class IMU signature, replaying the generator window
	// by window.
	window := synth.GenerateWindow(rng, synth.Talking, synth.DefaultIMUGen())
	step := 0
	next := func() imu.Sample {
		s := window.Samples[step%len(window.Samples)]
		step++
		if step%len(window.Samples) == 0 {
			window = synth.GenerateWindow(rng, synth.Talking, synth.DefaultIMUGen())
		}
		return s
	}
	current := next()
	sensors := collect.IMUSensors(func() imu.Sample { return current })
	agent, err := collect.NewAgent(collect.AgentConfig{
		ID: id, Modality: "imu", PollPeriodMS: 25, LatencyComp: 2,
	}, clock, sensors, wire.NewConn(conn))
	if err != nil {
		return err
	}
	runner, err := collect.StartRunner(agent, 500*time.Millisecond, func() { current = next() })
	if err != nil {
		return err
	}
	fmt.Printf("agent %s streaming to %s for %v (drift %.3f%%)\n", id, addr, duration, drift*100)
	time.Sleep(duration)
	if err := runner.Shutdown(); err != nil {
		return err
	}
	fmt.Printf("agent %s done, final clock skew %d ms\n", id, agent.ClockSkewMillis())
	return nil
}

package main

import (
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"darnet/internal/telemetry"
	"darnet/internal/wire"
)

func TestDurOptionsValidate(t *testing.T) {
	cases := []struct {
		name string
		o    durOptions
		ok   bool
	}{
		{"defaults-off", durOptions{fsync: "interval"}, true},
		{"on-always", durOptions{dataDir: "/tmp/x", fsync: "always", ckptEvery: time.Minute}, true},
		{"on-never-no-ticker", durOptions{dataDir: "/tmp/x", fsync: "never"}, true},
		{"bad-policy", durOptions{fsync: "sometimes"}, false},
		{"negative-interval", durOptions{fsync: "interval", ckptEvery: -time.Second}, false},
	}
	for _, tc := range cases {
		err := tc.o.validate()
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: validation passed, want error", tc.name)
		}
	}
}

// runDurableController drives one runControllerWith generation against the
// given data directory and returns everything it printed.
func runDurableController(t *testing.T, dir string, fn func(addr string)) string {
	t.Helper()
	ln := listenLoopback(t)
	sOpts := streamOptions{queueCap: 8, skipMax: 2, dwell: 50 * time.Millisecond}
	oOpts := obsOptions{retention: time.Hour, alertP99: 0.5} // bridge off
	dOpts := durOptions{dataDir: dir, fsync: "always", ckptEvery: time.Hour}
	out := &syncWriter{}
	stop := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- runControllerWith(ln, nil, 0, sOpts, oOpts, dOpts, stop, out)
	}()
	fn(ln.Addr().String())
	close(stop)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("runControllerWith: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("runControllerWith did not return after stop")
	}
	return out.String()
}

// storedPoints pulls the point count of one series out of the controller's
// session-summary output.
func storedPoints(t *testing.T, out, series string) int {
	t.Helper()
	re := regexp.MustCompile(`series ` + regexp.QuoteMeta(series) + `\s+(\d+) points`)
	m := re.FindStringSubmatch(out)
	if m == nil {
		t.Fatalf("series %s not in summary output:\n%s", series, out)
	}
	n, err := strconv.Atoi(m[1])
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// TestControllerRestartRecoversSessions is the darnetd-level restart check:
// generation 1 stores batches under -data-dir and checkpoints on shutdown;
// generation 2 recovers the sessions, dedupes retransmitted pre-restart
// batches, and reports durability state in its shutdown summary.
func TestControllerRestartRecoversSessions(t *testing.T) {
	dir := t.TempDir()

	out1 := runDurableController(t, dir, func(addr string) {
		c := dialObsClient(t, addr, "car-1")
		c.sendBatch([]wire.Reading{{TimestampMillis: 10, Sensor: "s", Values: []float64{1}}}, telemetry.SpanContext{})
		c.sendBatch([]wire.Reading{{TimestampMillis: 20, Sensor: "s", Values: []float64{2}}}, telemetry.SpanContext{})
	})
	if !strings.Contains(out1, "durability on (data-dir ") {
		t.Fatalf("generation 1 never announced durability:\n%s", out1)
	}
	sum1 := parseShutdownSummary(t, out1)
	if sum1.FsyncPolicy != "always" || sum1.CheckpointGen == 0 || sum1.WALBytes == 0 {
		t.Fatalf("generation 1 summary lacks durability state: %+v", sum1)
	}
	if got := storedPoints(t, out1, "car-1/s[0]"); got != 2 {
		t.Fatalf("generation 1 stored %d points, want 2", got)
	}

	out2 := runDurableController(t, dir, func(addr string) {
		c := dialObsClient(t, addr, "car-1")
		// Client sequence numbers restart at 1: both sends retransmit
		// pre-restart batches the recovered marks must dedupe, the third is
		// genuinely new.
		c.sendBatch([]wire.Reading{{TimestampMillis: 10, Sensor: "s", Values: []float64{-1}}}, telemetry.SpanContext{})
		c.sendBatch([]wire.Reading{{TimestampMillis: 20, Sensor: "s", Values: []float64{-2}}}, telemetry.SpanContext{})
		c.sendBatch([]wire.Reading{{TimestampMillis: 30, Sensor: "s", Values: []float64{3}}}, telemetry.SpanContext{})
	})
	if !strings.Contains(out2, "recovery: sessions=1") {
		t.Fatalf("generation 2 did not recover the session:\n%s", out2)
	}
	sum2 := parseShutdownSummary(t, out2)
	if sum2.Agents != 1 {
		t.Fatalf("generation 2 summary agents = %d, want 1", sum2.Agents)
	}
	if sum2.CheckpointGen <= sum1.CheckpointGen {
		t.Fatalf("checkpoint generation did not advance across restart: %d -> %d", sum1.CheckpointGen, sum2.CheckpointGen)
	}
	// 2 recovered + 1 new; the two retransmissions must not have stored.
	if got := storedPoints(t, out2, "car-1/s[0]"); got != 3 {
		t.Fatalf("generation 2 holds %d points, want 3 (2 recovered + 1 new, replays deduped)", got)
	}
}

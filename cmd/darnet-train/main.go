// Command darnet-train trains the full DarNet analytics engine on a
// synthetic dataset and writes a loadable snapshot:
//
//	darnet-train -scale 0.04 -out darnet-engine.gob
//
// The snapshot contains the frame CNN, the IMU BiLSTM and SVM, both fitted
// Bayesian Network combiners, and the IMU normalization statistics; it is
// consumed by darnetd and the example applications.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"time"

	"darnet"
	"darnet/internal/metrics"
	"darnet/internal/telemetry"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("darnet-train: ")

	var (
		scale     = flag.Float64("scale", 0.04, "fraction of the paper's Table 1 frame counts")
		seed      = flag.Int64("seed", 42, "random seed")
		cnnEpochs = flag.Int("cnn-epochs", 16, "frame CNN epochs")
		rnnEpochs = flag.Int("rnn-epochs", 12, "IMU RNN epochs")
		out       = flag.String("out", "darnet-engine.gob", "snapshot output path")
		dataPath  = flag.String("data", "", "load a saved dataset (darnet-datagen -save) instead of generating")
		quiet     = flag.Bool("q", false, "suppress training progress")
		telem     = flag.Bool("telemetry", false, "probe per-sample inference latency and print stage histograms plus the most recent trace")
	)
	flag.Parse()

	if err := run(*scale, *seed, *cnnEpochs, *rnnEpochs, *out, *dataPath, *quiet, *telem); err != nil {
		log.Fatal(err)
	}
}

func run(scale float64, seed int64, cnnEpochs, rnnEpochs int, out, dataPath string, quiet, telem bool) error {
	var ds *darnet.Dataset
	if dataPath != "" {
		f, err := os.Open(dataPath)
		if err != nil {
			return fmt.Errorf("open dataset: %w", err)
		}
		ds, err = darnet.LoadDataset(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("load dataset: %w", err)
		}
	} else {
		cfg := darnet.DefaultDatasetConfig()
		cfg.Scale = scale
		var err error
		ds, err = darnet.GenerateDataset(cfg)
		if err != nil {
			return err
		}
	}
	rng := rand.New(rand.NewSource(seed))
	train, test, err := ds.Split(rng, 0.2)
	if err != nil {
		return err
	}
	fmt.Printf("dataset: %d train / %d test samples\n", train.Len(), test.Len())

	tc := darnet.DefaultEngineTrainConfig()
	tc.Seed = seed
	tc.CNNEpochs = cnnEpochs
	tc.RNNEpochs = rnnEpochs
	start := time.Now()
	if !quiet {
		tc.Progress = func(stage string, epoch int, loss float64) {
			fmt.Printf("  [%s] epoch %d loss %.4f (%v)\n", stage, epoch, loss, time.Since(start).Round(time.Second))
		}
	}
	eng, err := darnet.TrainEngine(train, tc)
	if err != nil {
		return err
	}

	ev, err := darnet.EvaluateEngine(eng, test)
	if err != nil {
		return err
	}
	fmt.Printf("test Top-1: CNN+RNN %s, CNN+SVM %s, CNN %s\n",
		metrics.FormatPercent(ev.CNNRNN), metrics.FormatPercent(ev.CNNSVM), metrics.FormatPercent(ev.CNN))

	if telem {
		// Fill the darnet_core_* stage histograms by running held-out samples
		// through the per-sample serving path before printing the report.
		ctx := context.Background()
		for _, s := range test.Samples[:min(64, test.Len())] {
			if _, err := eng.ClassifyCtx(ctx, s.Frame.Pix, s.Window); err != nil {
				return fmt.Errorf("telemetry probe: %w", err)
			}
		}
		if err := telemetry.WriteReport(os.Stdout, telemetry.Default.Snapshot(), telemetry.DefaultTracer); err != nil {
			return err
		}
	}

	f, err := os.Create(out)
	if err != nil {
		return fmt.Errorf("create snapshot: %w", err)
	}
	err = eng.Save(f, tc.CNN, tc.RNNHidden, tc.RNNLayers)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("write snapshot: %w", err)
	}
	info, err := os.Stat(out)
	if err != nil {
		return err
	}
	fmt.Printf("wrote engine snapshot %s (%d bytes) in %v\n", out, info.Size(), time.Since(start).Round(time.Second))
	return nil
}

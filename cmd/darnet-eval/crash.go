package main

// The crash experiment measures what durability costs and what it buys: WAL
// insert overhead against the no-WAL baseline per fsync policy, recovery wall
// time and replayed records for a large un-checkpointed log, the measured
// data-loss bound of each policy after a simulated power cut, and a
// crash-injection matrix (torn tail, bit flip, fsync failure) proving the
// recovery decision table end to end. It is the durability counterpart of the
// -exp chaos transport-fault probe.

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"darnet/internal/durable"
	"darnet/internal/fault"
	"darnet/internal/tsdb"
)

// crashCommitEvery is how many readings form one committed batch: the WAL
// sees one commit mark (and, under fsync=always, one fsync) per batch.
const crashCommitEvery = 1000

// crashPolicyResult is one fsync policy's measured cost and loss bound.
type crashPolicyResult struct {
	Policy        string  `json:"policy"`
	InsertNsPerOp float64 `json:"insert_ns_per_op"`
	OverheadPct   float64 `json:"overhead_pct"`

	// Power-cut accounting (in-memory crash FS, deterministic sync points):
	// readings acked as committed before the cut, committed readings the
	// recovered store was missing, the policy's documented worst-case loss,
	// and whether the measurement respects it.
	CommittedReadings int  `json:"committed_readings"`
	LostReadings      int  `json:"lost_readings"`
	LossBound         int  `json:"loss_bound"`
	LossBoundOK       bool `json:"loss_bound_ok"`
}

// crashBenchReport is the BENCH_PR10.json schema.
type crashBenchReport struct {
	PR         int     `json:"pr"`
	Experiment string  `json:"experiment"`
	Seed       int64   `json:"seed"`
	Readings   int     `json:"readings"`
	DurationMS float64 `json:"duration_ms"`

	// BaselineNsPerOp is tsdb.Insert with no WAL attached — the denominator
	// of every policy's overhead_pct (the BENCH_PR3 insert path).
	BaselineNsPerOp float64             `json:"baseline_ns_per_op"`
	Policies        []crashPolicyResult `json:"policies"`

	// Recovery of a real on-disk WAL holding every reading above, without the
	// benefit of a shutdown checkpoint.
	RecoveryMS       float64 `json:"recovery_ms"`
	RecoveredInserts int     `json:"recovered_inserts"`
	RecoveredPoints  int     `json:"recovered_points"`

	// FaultMatrix records the crash-injection outcomes: every key must be
	// true for the recovery contract to hold.
	FaultMatrix map[string]bool `json:"fault_matrix"`
}

// crashBench runs the durability benchmark: readings scales with the shared
// -scale flag so the committed artifact measures recovery at 10^6 readings
// (scale 1) while smoke runs stay fast.
func crashBench(scale float64, seed int64, quiet bool, outPath string) error {
	start := time.Now()
	readings := int(1_000_000 * scale)
	if readings < 10_000 {
		readings = 10_000
	}
	report := crashBenchReport{
		PR:         10,
		Experiment: "crash",
		Seed:       seed,
		Readings:   readings,
		Policies:   make([]crashPolicyResult, 0, 3),
	}

	// Baseline: the bare insert path, no logger attached.
	base := tsdb.New()
	baseStart := time.Now()
	crashInsert(base, nil, readings)
	report.BaselineNsPerOp = float64(time.Since(baseStart).Nanoseconds()) / float64(readings)

	dir, err := os.MkdirTemp("", "darnet-crash-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	for _, policy := range []durable.Policy{durable.PolicyAlways, durable.PolicyInterval, durable.PolicyNever} {
		res, err := crashMeasurePolicy(dir, policy, readings, report.BaselineNsPerOp)
		if err != nil {
			return fmt.Errorf("crash: policy %v: %w", policy, err)
		}
		report.Policies = append(report.Policies, res)
		if !quiet {
			fmt.Printf("fsync=%-8s %7.0f ns/insert (%+.1f%%), power-cut lost %d/%d committed readings (bound %d)\n",
				res.Policy, res.InsertNsPerOp, res.OverheadPct, res.LostReadings, res.CommittedReadings, res.LossBound)
		}
	}

	recMS, recInserts, recPoints, err := crashMeasureRecovery(readings)
	if err != nil {
		return fmt.Errorf("crash: recovery: %w", err)
	}
	report.RecoveryMS, report.RecoveredInserts, report.RecoveredPoints = recMS, recInserts, recPoints
	if !quiet {
		fmt.Printf("recovery: replayed %d inserts (%d points restored) in %.1f ms\n", recInserts, recPoints, recMS)
	}

	report.FaultMatrix = crashFaultMatrix(seed)
	report.DurationMS = float64(time.Since(start).Milliseconds())

	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(outPath, buf, 0o644); err != nil {
		return fmt.Errorf("write crash benchmark: %w", err)
	}
	if !quiet {
		for name, ok := range report.FaultMatrix {
			fmt.Printf("fault %-12s recovery contract held: %v\n", name, ok)
		}
	}
	fmt.Printf("wrote %s\n\n", outPath)
	return nil
}

// crashCommit appends a batch's commit mark and runs the pre-ack group
// commit, mirroring the controller's two-step commit discipline (append
// inside the store critical section, fsync outside it before the ack).
func crashCommit(man *durable.Manager, agentID string, seq uint64) error {
	if err := man.AppendCommit(agentID, seq); err != nil {
		return err
	}
	return man.SyncCommits()
}

// crashInsert streams readings into db as committed batches; a nil manager
// stores without marks (the baseline).
func crashInsert(db *tsdb.DB, man *durable.Manager, readings int) {
	for i := 0; i < readings; i++ {
		db.Insert("car-1/acc[0]", tsdb.Point{TimestampMillis: int64(i), Value: float64(i)})
		if man != nil && (i+1)%crashCommitEvery == 0 {
			//lint:ignore errdrop benchmark load loop; degradation shows up in the numbers
			crashCommit(man, "car-1", uint64((i+1)/crashCommitEvery))
		}
	}
}

// crashMeasurePolicy times the WAL-attached insert path on a real directory
// FS for one policy, then replays a deterministic power cut on the in-memory
// crash FS to measure that policy's committed-data loss against its
// documented bound.
func crashMeasurePolicy(dir string, policy durable.Policy, readings int, baselineNs float64) (crashPolicyResult, error) {
	res := crashPolicyResult{Policy: policy.String()}

	sub, err := os.MkdirTemp(dir, policy.String()+"-*")
	if err != nil {
		return res, err
	}
	fs, err := durable.NewDirFS(sub)
	if err != nil {
		return res, err
	}
	db := tsdb.New()
	man, _, err := durable.Open(db, durable.Options{FS: fs, Policy: policy, CheckpointEvery: -1, Logf: func(string, ...any) {}})
	if err != nil {
		return res, err
	}
	if policy == durable.PolicyInterval {
		man.Start() // the 200ms group-commit ticker is part of this policy's cost
	}
	insStart := time.Now()
	crashInsert(db, man, readings)
	res.InsertNsPerOp = float64(time.Since(insStart).Nanoseconds()) / float64(readings)
	res.OverheadPct = (res.InsertNsPerOp - baselineNs) / baselineNs * 100
	if err := man.Close(); err != nil {
		return res, err
	}

	// Power cut: 25 committed batches of 100 readings on the crash FS. Sync
	// points are explicit so the measured loss is exact: always syncs every
	// commit (bound 0), interval group-commits every 10th batch (bound = one
	// window), never relies on checkpoints alone (bound = everything).
	const batches, per, window = 25, 100, 10
	mem := durable.NewMemFS()
	cdb := tsdb.New()
	cman, _, err := durable.Open(cdb, durable.Options{FS: mem, Policy: policy, CheckpointEvery: -1, Logf: func(string, ...any) {}})
	if err != nil {
		return res, err
	}
	for b := 1; b <= batches; b++ {
		for i := 0; i < per; i++ {
			cdb.Insert("car-1/acc[0]", tsdb.Point{TimestampMillis: int64((b-1)*per + i), Value: 1})
		}
		if err := crashCommit(cman, "car-1", uint64(b)); err != nil {
			return res, err
		}
		if policy == durable.PolicyInterval && b%window == 0 {
			if err := cman.Sync(); err != nil {
				return res, err
			}
		}
	}
	res.CommittedReadings = batches * per
	mem.Crash()

	rdb := tsdb.New()
	rman, _, err := durable.Open(rdb, durable.Options{FS: mem, Policy: policy, CheckpointEvery: -1, Logf: func(string, ...any) {}})
	if err != nil {
		return res, err
	}
	//lint:ignore errdrop measurement FS is discarded after the loss count
	rman.Close()
	res.LostReadings = res.CommittedReadings - rdb.Len("car-1/acc[0]")
	switch policy {
	case durable.PolicyAlways:
		res.LossBound = 0
	case durable.PolicyInterval:
		res.LossBound = (batches % window) * per // the unsynced tail window
	default:
		res.LossBound = res.CommittedReadings
	}
	res.LossBoundOK = res.LostReadings >= 0 && res.LostReadings <= res.LossBound
	return res, nil
}

// crashMeasureRecovery writes an on-disk WAL holding every reading with no
// shutdown checkpoint (the process "crashed"), then times a full recovery.
func crashMeasureRecovery(readings int) (ms float64, inserts, points int, err error) {
	dir, err := os.MkdirTemp("", "darnet-crash-recover-*")
	if err != nil {
		return 0, 0, 0, err
	}
	defer os.RemoveAll(dir)
	fs, err := durable.NewDirFS(dir)
	if err != nil {
		return 0, 0, 0, err
	}
	db := tsdb.New()
	man, _, err := durable.Open(db, durable.Options{FS: fs, Policy: durable.PolicyNever, CheckpointEvery: -1, Logf: func(string, ...any) {}})
	if err != nil {
		return 0, 0, 0, err
	}
	crashInsert(db, man, readings)
	if err := man.Sync(); err != nil { // the data reached disk; the checkpoint did not
		return 0, 0, 0, err
	}
	// No Close: the WAL is abandoned mid-generation, exactly like a crash.

	rdb := tsdb.New()
	recStart := time.Now()
	_, rec, err := durable.Open(rdb, durable.Options{FS: fs, Policy: durable.PolicyNever, CheckpointEvery: -1, Logf: func(string, ...any) {}})
	if err != nil {
		return 0, 0, 0, err
	}
	ms = float64(time.Since(recStart).Microseconds()) / 1000
	return ms, rec.ReplayedInserts, rdb.Len("car-1/acc[0]"), nil
}

// crashFaultMatrix drives recovery through the injected-fault schedules and
// reports whether each upheld its contract: a torn tail truncates and
// recovers clean, a bit flip degrades with a loss bound instead of storing
// corrupt data, and an fsync failure latches degradation while serving.
func crashFaultMatrix(seed int64) map[string]bool {
	out := map[string]bool{"torn_tail": false, "bit_flip": false, "sync_error": false}
	quiet := func(string, ...any) {}
	walGen1 := fmt.Sprintf("wal-%016x.wal", 1)

	// Torn tail: tear the active WAL mid-record, crash, recover clean.
	{
		mem := durable.NewMemFS()
		fs := fault.NewFS(mem, func(name string) *fault.FileConfig {
			if name == walGen1 {
				return &fault.FileConfig{Seed: seed, TornAtByte: 300}
			}
			return nil
		})
		db := tsdb.New()
		man, _, err := durable.Open(db, durable.Options{FS: fs, Policy: durable.PolicyAlways, CheckpointEvery: -1, Logf: quiet})
		if err == nil {
			committed := 0
			for b := 1; b <= 40; b++ {
				db.Insert("car-1/acc[0]", tsdb.Point{TimestampMillis: int64(b), Value: float64(b)})
				if crashCommit(man, "car-1", uint64(b)) != nil {
					break
				}
				committed = b
			}
			// No Crash() truncation here: the torn tail models bytes the disk
			// retained from a half-finished append, so recovery must see them.
			rdb := tsdb.New()
			_, rec, err := durable.Open(rdb, durable.Options{FS: mem, Policy: durable.PolicyAlways, CheckpointEvery: -1, Logf: quiet})
			out["torn_tail"] = err == nil && !rec.Degraded && rec.TornBytes > 0 &&
				committed > 0 && rdb.Len("car-1/acc[0]") >= committed
		}
	}

	// Bit flip: corrupt one byte inside an early record; recovery must stop
	// there, report a loss bound, and keep only value-consistent rows.
	{
		mem := durable.NewMemFS()
		fs := fault.NewFS(mem, func(name string) *fault.FileConfig {
			if name == walGen1 {
				return &fault.FileConfig{Seed: seed, FlipAtByte: 60}
			}
			return nil
		})
		db := tsdb.New()
		man, _, err := durable.Open(db, durable.Options{FS: fs, Policy: durable.PolicyAlways, CheckpointEvery: -1, Logf: quiet})
		if err == nil {
			for b := 1; b <= 10; b++ {
				db.Insert("car-1/acc[0]", tsdb.Point{TimestampMillis: int64(b), Value: float64(b)})
				if crashCommit(man, "car-1", uint64(b)) != nil {
					break
				}
			}
			mem.Crash()
			rdb := tsdb.New()
			_, rec, err := durable.Open(rdb, durable.Options{FS: mem, Policy: durable.PolicyAlways, CheckpointEvery: -1, Logf: quiet})
			clean := true
			for _, p := range rdb.Range("car-1/acc[0]", 0, 1<<40) {
				//lint:ignore floatcmp values are exact small-integer float64s; any inequality is surviving corruption, not rounding
				if p.Value != float64(p.TimestampMillis) {
					clean = false
				}
			}
			out["bit_flip"] = err == nil && rec.Degraded && rec.LostBytes > 0 && clean
		}
	}

	// Fsync failure: the first sync fails; the manager must latch degradation
	// (commit errors) while the store keeps accepting inserts.
	{
		mem := durable.NewMemFS()
		fs := fault.NewFS(mem, func(name string) *fault.FileConfig {
			if name == walGen1 {
				return &fault.FileConfig{Seed: seed, FailSyncFrom: 1}
			}
			return nil
		})
		db := tsdb.New()
		man, _, err := durable.Open(db, durable.Options{FS: fs, Policy: durable.PolicyAlways, CheckpointEvery: -1, Logf: quiet})
		if err == nil {
			db.Insert("car-1/acc[0]", tsdb.Point{TimestampMillis: 1, Value: 1})
			commitErr := crashCommit(man, "car-1", 1)
			db.Insert("car-1/acc[0]", tsdb.Point{TimestampMillis: 2, Value: 2})
			h := man.Health()
			out["sync_error"] = commitErr != nil && h.OK && db.Len("car-1/acc[0]") == 2
		}
	}
	return out
}

// checkCrashBench validates a crash benchmark file (the -check-bench branch
// for experiment "crash").
func checkCrashBench(path string, buf []byte) error {
	var report crashBenchReport
	if err := json.Unmarshal(buf, &report); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if report.PR <= 0 || report.Experiment != "crash" {
		return fmt.Errorf("%s: missing provenance (pr=%d experiment=%q)", path, report.PR, report.Experiment)
	}
	if report.Readings <= 0 || report.BaselineNsPerOp <= 0 {
		return fmt.Errorf("%s: no insert workload recorded (readings=%d baseline=%v)", path, report.Readings, report.BaselineNsPerOp)
	}
	if len(report.Policies) != 3 {
		return fmt.Errorf("%s: %d fsync policies measured, want 3", path, len(report.Policies))
	}
	for _, p := range report.Policies {
		if p.InsertNsPerOp <= 0 {
			return fmt.Errorf("%s: policy %q has no insert cost", path, p.Policy)
		}
		if !p.LossBoundOK {
			return fmt.Errorf("%s: policy %q lost %d committed readings, over its bound %d",
				path, p.Policy, p.LostReadings, p.LossBound)
		}
	}
	if report.RecoveryMS <= 0 || report.RecoveredInserts <= 0 || report.RecoveredPoints < report.RecoveredInserts {
		return fmt.Errorf("%s: recovery not measured (ms=%v inserts=%d points=%d)",
			path, report.RecoveryMS, report.RecoveredInserts, report.RecoveredPoints)
	}
	for name, ok := range report.FaultMatrix {
		if !ok {
			return fmt.Errorf("%s: fault %q broke the recovery contract", path, name)
		}
	}
	if len(report.FaultMatrix) < 3 {
		return fmt.Errorf("%s: fault matrix covers %d faults, want >= 3", path, len(report.FaultMatrix))
	}
	fmt.Printf("%s ok: recovery of %d inserts in %.1f ms, %d fsync policies within loss bounds, %d faults held\n",
		path, report.RecoveredInserts, report.RecoveryMS, len(report.Policies), len(report.FaultMatrix))
	return nil
}

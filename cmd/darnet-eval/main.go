// Command darnet-eval regenerates every table and figure of the paper's
// evaluation section on the synthetic datasets:
//
//	darnet-eval -exp table1              # Table 1: class inventory
//	darnet-eval -exp table2              # Table 2: ensemble Top-1 + IMU-only
//	darnet-eval -exp figure5             # Figure 5: confusion matrices
//	darnet-eval -exp figure4 -out ./fig4 # Figure 4: down-sampled frames
//	darnet-eval -exp table3              # Table 3: dCNN Top-1
//	darnet-eval -exp ablations           # design-choice comparisons
//	darnet-eval -exp driver-split        # leave-one-driver-out protocol
//	darnet-eval -exp all -out ./figures  # every paper table and figure
//
// Paper reference values are printed beside each measured number.
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"time"

	"darnet"
	"darnet/internal/core"
	"darnet/internal/imu"
	"darnet/internal/metrics"
	"darnet/internal/nn"
	"darnet/internal/rnn"
	"darnet/internal/synth"
	"darnet/internal/telemetry"
	"darnet/internal/tensor"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("darnet-eval: ")

	var (
		exp        = flag.String("exp", "all", "experiment: table1|table2|figure5|figure4|table3|ablations|driver-split|kfold|bench|chaos|stream|obs|all")
		scale      = flag.Float64("scale", 0.04, "fraction of the paper's Table 1 frame counts to generate")
		seed       = flag.Int64("seed", 42, "train/eval random seed")
		outDir     = flag.String("out", "figures", "output directory for figure artifacts")
		cnnEpochs  = flag.Int("cnn-epochs", 16, "frame CNN training epochs")
		rnnEpochs  = flag.Int("rnn-epochs", 12, "IMU RNN training epochs")
		quiet      = flag.Bool("q", false, "suppress training progress")
		dataPath   = flag.String("data", "", "load a saved 6-class dataset (darnet-datagen -save) instead of generating")
		telem      = flag.Bool("telemetry", false, "print stage latency histograms and the most recent trace after the experiment")
		benchOut   = flag.String("bench-out", "BENCH_PR3.json", "output path for the machine-readable benchmark (-exp bench)")
		checkBench = flag.String("check-bench", "", "validate a benchmark JSON file and exit")
	)
	flag.Parse()

	if *checkBench != "" {
		if err := checkBenchFile(*checkBench); err != nil {
			log.Fatal(err)
		}
		return
	}
	if err := run(*exp, *scale, *seed, *outDir, *cnnEpochs, *rnnEpochs, *quiet, *dataPath, *benchOut); err != nil {
		log.Fatal(err)
	}
	if *telem {
		if err := telemetry.WriteReport(os.Stdout, telemetry.Default.Snapshot(), telemetry.DefaultTracer); err != nil {
			log.Fatal(err)
		}
	}
}

// loadOrGenerate returns the 6-class dataset from dataPath, or generates one
// at the given scale.
func loadOrGenerate(dataPath string, scale float64) (*darnet.Dataset, error) {
	if dataPath == "" {
		cfg := darnet.DefaultDatasetConfig()
		cfg.Scale = scale
		return darnet.GenerateDataset(cfg)
	}
	f, err := os.Open(dataPath)
	if err != nil {
		return nil, fmt.Errorf("open dataset: %w", err)
	}
	defer f.Close()
	return darnet.LoadDataset(f)
}

func run(exp string, scale float64, seed int64, outDir string, cnnEpochs, rnnEpochs int, quiet bool, dataPath, benchOut string) error {
	switch exp {
	case "table1":
		return table1(scale)
	case "table2", "figure5":
		_, _, ev, err := trainAndEvaluate(dataPath, scale, seed, cnnEpochs, rnnEpochs, quiet)
		if err != nil {
			return err
		}
		if exp == "table2" {
			printTable2(ev)
		} else {
			printFigure5(ev)
		}
		return nil
	case "figure4":
		return figure4(outDir)
	case "ablations":
		return ablations(scale, seed, cnnEpochs, rnnEpochs, quiet)
	case "driver-split":
		return driverSplit(scale, seed, cnnEpochs, rnnEpochs, quiet)
	case "kfold":
		return kfold(dataPath, scale, seed, cnnEpochs, rnnEpochs, quiet)
	case "table3":
		return table3(seed, cnnEpochs, quiet)
	case "bench":
		return bench(dataPath, scale, seed, cnnEpochs, rnnEpochs, quiet, benchOut)
	case "crash":
		if benchOut == "BENCH_PR3.json" { // the -bench-out default belongs to -exp bench
			benchOut = "BENCH_PR10.json"
		}
		return crashBench(scale, seed, quiet, benchOut)
	case "chaos":
		if benchOut == "BENCH_PR3.json" { // the -bench-out default belongs to -exp bench
			benchOut = "BENCH_PR5.json"
		}
		return chaosBench(seed, quiet, benchOut)
	case "stream":
		if benchOut == "BENCH_PR3.json" { // the -bench-out default belongs to -exp bench
			benchOut = "BENCH_PR7.json"
		}
		return streamBench(scale, seed, cnnEpochs, rnnEpochs, quiet, benchOut)
	case "obs":
		if benchOut == "BENCH_PR3.json" { // the -bench-out default belongs to -exp bench
			benchOut = "BENCH_PR8.json"
		}
		return obsBench(scale, seed, cnnEpochs, rnnEpochs, quiet, benchOut)
	case "all":
		if err := table1(scale); err != nil {
			return err
		}
		if err := figure4(outDir); err != nil {
			return err
		}
		_, _, ev, err := trainAndEvaluate(dataPath, scale, seed, cnnEpochs, rnnEpochs, quiet)
		if err != nil {
			return err
		}
		printTable2(ev)
		printFigure5(ev)
		return table3(seed, cnnEpochs, quiet)
	default:
		return fmt.Errorf("unknown experiment %q", exp)
	}
}

// table1 prints the dataset inventory in the style of the paper's Table 1.
func table1(scale float64) error {
	cfg := darnet.DefaultDatasetConfig()
	cfg.Scale = scale
	ds, err := darnet.GenerateDataset(cfg)
	if err != nil {
		return err
	}
	counts := ds.ClassCounts()
	fmt.Println("== Table 1: driver behaviour classes ==")
	fmt.Printf("%-3s %-17s %-12s %-12s %s\n", "#", "Class", "Data Types", "Paper Count", "Generated")
	for c := 0; c < darnet.NumClasses; c++ {
		types := "Image, IMU"
		if !synth.Table1HasIMU[c] {
			types = "Image, —"
		}
		fmt.Printf("%-3d %-17s %-12s %-12d %d\n", c+1, darnet.Class(c), types, synth.Table1Counts[c], counts[c])
	}
	fmt.Printf("total: paper 57080, generated %d (scale %.3f)\n\n", ds.Len(), scale)
	return nil
}

// trainAndEvaluate runs the full Table 2 / Figure 5 experiment, returning
// the trained engine and the held-out test set alongside the evaluation so
// follow-up probes (the bench experiment) can reuse them.
func trainAndEvaluate(dataPath string, scale float64, seed int64, cnnEpochs, rnnEpochs int, quiet bool) (*darnet.Engine, *darnet.Dataset, *darnet.Evaluation, error) {
	ds, err := loadOrGenerate(dataPath, scale)
	if err != nil {
		return nil, nil, nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	train, test, err := ds.Split(rng, 0.2) // the paper's 80/20 partition
	if err != nil {
		return nil, nil, nil, err
	}

	tc := darnet.DefaultEngineTrainConfig()
	tc.Seed = seed
	tc.CNNEpochs = cnnEpochs
	tc.RNNEpochs = rnnEpochs
	start := time.Now()
	if !quiet {
		tc.Progress = func(stage string, epoch int, loss float64) {
			fmt.Printf("  [%s] epoch %d loss %.4f (%v)\n", stage, epoch, loss, time.Since(start).Round(time.Second))
		}
	}
	eng, err := darnet.TrainEngine(train, tc)
	if err != nil {
		return nil, nil, nil, err
	}
	ev, err := darnet.EvaluateEngine(eng, test)
	if err != nil {
		return nil, nil, nil, err
	}
	return eng, test, ev, nil
}

// kfold evaluates the three architectures under 5-fold cross-validation,
// reporting mean ± standard deviation across folds — the variance estimate a
// single 80/20 split (the paper's protocol) cannot provide.
func kfold(dataPath string, scale float64, seed int64, cnnEpochs, rnnEpochs int, quiet bool) error {
	ds, err := loadOrGenerate(dataPath, scale)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(seed))
	const k = 5
	folds, err := ds.KFold(rng, k)
	if err != nil {
		return err
	}
	fmt.Printf("== %d-fold cross-validation (%d samples) ==\n", k, ds.Len())
	start := time.Now()
	var cnnRnn, cnnSvm, cnn []float64
	for i, fold := range folds {
		tc := darnet.DefaultEngineTrainConfig()
		tc.Seed = seed + int64(i)
		tc.CNNEpochs = cnnEpochs
		tc.RNNEpochs = rnnEpochs
		eng, err := darnet.TrainEngine(fold[0], tc)
		if err != nil {
			return err
		}
		ev, err := darnet.EvaluateEngine(eng, fold[1])
		if err != nil {
			return err
		}
		cnnRnn = append(cnnRnn, ev.CNNRNN)
		cnnSvm = append(cnnSvm, ev.CNNSVM)
		cnn = append(cnn, ev.CNN)
		if !quiet {
			fmt.Printf("  fold %d: CNN+RNN %s, CNN+SVM %s, CNN %s (%v)\n", i+1,
				metrics.FormatPercent(ev.CNNRNN), metrics.FormatPercent(ev.CNNSVM),
				metrics.FormatPercent(ev.CNN), time.Since(start).Round(time.Second))
		}
	}
	report := func(name string, vals []float64) {
		mean := 0.0
		for _, v := range vals {
			mean += v
		}
		mean /= float64(len(vals))
		variance := 0.0
		for _, v := range vals {
			variance += (v - mean) * (v - mean)
		}
		std := math.Sqrt(variance / float64(len(vals)))
		fmt.Printf("%-9s %s ± %.2f\n", name, metrics.FormatPercent(mean), std*100)
	}
	report("CNN+RNN", cnnRnn)
	report("CNN+SVM", cnnSvm)
	report("CNN", cnn)
	fmt.Println()
	return nil
}

// driverSplit evaluates the ensemble under leave-one-driver-out — the
// cross-driver generalization protocol the paper's 80/20 random split does
// not measure (every driver appears on both sides of a random split).
func driverSplit(scale float64, seed int64, cnnEpochs, rnnEpochs int, quiet bool) error {
	cfg := darnet.DefaultDatasetConfig()
	cfg.Scale = scale
	ds, err := darnet.GenerateDataset(cfg)
	if err != nil {
		return err
	}
	drivers := ds.Drivers()
	heldOut := drivers[0]
	train, test, err := ds.SplitByDriver(heldOut)
	if err != nil {
		return err
	}
	fmt.Printf("== Leave-one-driver-out (driver %d held out: %d train / %d test) ==\n",
		heldOut, train.Len(), test.Len())

	tc := darnet.DefaultEngineTrainConfig()
	tc.Seed = seed
	tc.CNNEpochs = cnnEpochs
	tc.RNNEpochs = rnnEpochs
	start := time.Now()
	if !quiet {
		tc.Progress = func(stage string, epoch int, loss float64) {
			fmt.Printf("  [%s] epoch %d loss %.4f (%v)\n", stage, epoch, loss, time.Since(start).Round(time.Second))
		}
	}
	eng, err := darnet.TrainEngine(train, tc)
	if err != nil {
		return err
	}
	ev, err := darnet.EvaluateEngine(eng, test)
	if err != nil {
		return err
	}
	fmt.Printf("%-9s %s\n", "CNN+RNN", metrics.FormatPercent(ev.CNNRNN))
	fmt.Printf("%-9s %s\n", "CNN+SVM", metrics.FormatPercent(ev.CNNSVM))
	fmt.Printf("%-9s %s\n", "CNN", metrics.FormatPercent(ev.CNN))
	fmt.Printf("(random-split reference: see -exp table2)\n\n")
	return nil
}

// ablations runs the design-choice comparisons DESIGN.md calls out at full
// experiment scale: BN vs naive combiners, bidirectional vs unidirectional
// LSTM, and inception vs plain CNN at a comparable parameter budget.
func ablations(scale float64, seed int64, cnnEpochs, rnnEpochs int, quiet bool) error {
	cfg := darnet.DefaultDatasetConfig()
	cfg.Scale = scale
	ds, err := darnet.GenerateDataset(cfg)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(seed))
	train, test, err := ds.Split(rng, 0.2)
	if err != nil {
		return err
	}
	start := time.Now()
	progress := func(stage string) func(epoch int, loss float64) {
		if quiet {
			return nil
		}
		return func(epoch int, loss float64) {
			fmt.Printf("  [%s] epoch %d loss %.4f (%v)\n", stage, epoch, loss, time.Since(start).Round(time.Second))
		}
	}

	// 1. Combiner ablation: the engine evaluation already carries the naive
	// product/average fusions next to the Bayesian Network.
	tc := darnet.DefaultEngineTrainConfig()
	tc.Seed = seed
	tc.CNNEpochs = cnnEpochs
	tc.RNNEpochs = rnnEpochs
	if !quiet {
		tc.Progress = func(stage string, epoch int, loss float64) {
			fmt.Printf("  [%s] epoch %d loss %.4f (%v)\n", stage, epoch, loss, time.Since(start).Round(time.Second))
		}
	}
	eng, err := darnet.TrainEngine(train, tc)
	if err != nil {
		return err
	}
	ev, err := darnet.EvaluateEngine(eng, test)
	if err != nil {
		return err
	}
	fmt.Println("== Ablation 1: ensemble combiner (CNN+RNN) ==")
	fmt.Printf("%-22s %s\n", "Bayesian Network", metrics.FormatPercent(ev.CNNRNN))
	fmt.Printf("%-22s %s\n", "product fusion", metrics.FormatPercent(ev.ProductCombine))
	fmt.Printf("%-22s %s\n", "average fusion", metrics.FormatPercent(ev.AverageCombine))
	fmt.Println()

	// 2. Recurrent architecture ablation on the IMU task.
	stats, err := imu.FitStats(train.IMUWindows())
	if err != nil {
		return err
	}
	norm := func(d *darnet.Dataset) []*tensor.Tensor {
		out := make([]*tensor.Tensor, d.Len())
		for i, w := range d.IMUWindows() {
			out[i] = stats.Normalize(w)
		}
		return out
	}
	trainSeqs, testSeqs := norm(train), norm(test)
	fmt.Println("== Ablation 2: bidirectional vs unidirectional LSTM ==")
	for _, unidir := range []bool{false, true} {
		cls, err := rnn.NewClassifier("abl", rng, rnn.Config{
			Input: imu.FeatureDim, Hidden: 64, Layers: 2,
			Classes: darnet.NumIMUClasses, Unidirectional: unidir,
		})
		if err != nil {
			return err
		}
		if _, err := cls.Train(nn.NewAdam(0.003), rng, trainSeqs, train.IMULabels(), rnn.TrainConfig{
			Epochs: rnnEpochs, BatchSize: 16, ClipNorm: 5,
		}); err != nil {
			return err
		}
		acc, err := cls.Evaluate(testSeqs, test.IMULabels())
		if err != nil {
			return err
		}
		name := "BiLSTM (paper)"
		if unidir {
			name = "unidirectional LSTM"
		}
		fmt.Printf("%-22s %s (%d params)\n", name, metrics.FormatPercent(acc), cls.NumParams())
	}
	fmt.Println()

	// 3. Frame architecture ablation.
	fmt.Println("== Ablation 3: inception modules vs plain conv stack ==")
	for _, plain := range []bool{false, true} {
		var net *darnet.Network
		var err error
		if plain {
			net, err = core.BuildPlainCNN(rng, cfg.ImgW, cfg.ImgH, darnet.NumClasses, darnet.DefaultCNNConfig())
		} else {
			net, err = darnet.BuildFrameCNN(rng, cfg.ImgW, cfg.ImgH, darnet.NumClasses, darnet.DefaultCNNConfig())
		}
		if err != nil {
			return err
		}
		label := "MicroInception"
		if plain {
			label = "plain conv stack"
		}
		if err := trainFramesNet(net, train, cnnEpochs, seed, progress(label)); err != nil {
			return err
		}
		acc, err := darnet.EvaluateNetwork(net, test, darnet.DistortNone, darnet.CompactDistortionRatios())
		if err != nil {
			return err
		}
		fmt.Printf("%-22s %s (%d params)\n", label, metrics.FormatPercent(acc), net.NumParams())
	}
	fmt.Println()
	return nil
}

func trainFramesNet(net *darnet.Network, train *darnet.Dataset, epochs int, seed int64, progress func(int, float64)) error {
	return darnet.TrainNetwork(net, train, epochs, seed, progress)
}

func printTable2(ev *darnet.Evaluation) {
	fmt.Println("== Table 2: ensemble Top-1 classification ==")
	fmt.Printf("%-9s %-9s %s\n", "Model", "Hit@1", "Paper")
	fmt.Printf("%-9s %-9s %s\n", "CNN+RNN", metrics.FormatPercent(ev.CNNRNN), "87.02%")
	fmt.Printf("%-9s %-9s %s\n", "CNN+SVM", metrics.FormatPercent(ev.CNNSVM), "86.23%")
	fmt.Printf("%-9s %-9s %s\n", "CNN", metrics.FormatPercent(ev.CNN), "73.88%")
	fmt.Println()
	fmt.Println("== §5.2: IMU-sequence-only Top-1 ==")
	fmt.Printf("%-9s %-9s %s\n", "RNN", metrics.FormatPercent(ev.RNNOnly), "97.44%")
	fmt.Printf("%-9s %-9s %s\n", "SVM", metrics.FormatPercent(ev.SVMOnly), "95.37%")
	fmt.Println()
	fmt.Println("== Ablation: Bayesian Network vs naive combiners (CNN+RNN) ==")
	fmt.Printf("%-9s %s\n", "BN", metrics.FormatPercent(ev.CNNRNN))
	fmt.Printf("%-9s %s\n", "product", metrics.FormatPercent(ev.ProductCombine))
	fmt.Printf("%-9s %s\n", "average", metrics.FormatPercent(ev.AverageCombine))
	fmt.Printf("calibration (ECE, 10 bins): CNN %.3f, fused %.3f\n\n", ev.CNNECE, ev.FusedECE)
}

func printFigure5(ev *darnet.Evaluation) {
	fmt.Println("== Figure 5(a): CNN+RNN (DarNet) confusion matrix ==")
	fmt.Println(ev.ConfusionCNNRNN)
	fmt.Println("== Figure 5(b): CNN+SVM confusion matrix ==")
	fmt.Println(ev.ConfusionCNNSVM)
	fmt.Println("== Figure 5(c): CNN (frame data only) confusion matrix ==")
	fmt.Println(ev.ConfusionCNN)
	tex := int(darnet.Texting)
	fmt.Printf("texting recall: CNN %s -> CNN+RNN %s (paper: 36.0%% -> 87.0%%)\n",
		metrics.FormatPercent(ev.ConfusionCNN.Rate(tex, tex)),
		metrics.FormatPercent(ev.ConfusionCNNRNN.Rate(tex, tex)))
	// §5.2: "all three models output a high number of false positives when
	// predicting normal driving".
	norm := int(darnet.NormalDriving)
	fmt.Printf("normal-driving false positives: CNN %d (precision %s), CNN+RNN %d (precision %s)\n\n",
		ev.ConfusionCNN.FalsePositives(norm), metrics.FormatPercent(ev.ConfusionCNN.Precision(norm)),
		ev.ConfusionCNNRNN.FalsePositives(norm), metrics.FormatPercent(ev.ConfusionCNNRNN.Precision(norm)))
}

// figure4 renders one scene at the paper's 300×300 resolution and writes the
// undistorted and 100×100 / 50×50 / 25×25 versions (paper Figure 4).
func figure4(outDir string) error {
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return fmt.Errorf("create %s: %w", outDir, err)
	}
	rng := rand.New(rand.NewSource(4))
	driver := synth.NewDriverProfile(rng)
	amb := synth.DefaultAmbiguity()
	amb.NoiseSigma = 0.03
	frame := synth.RenderScene(rng, 300, 300, darnet.Talking, driver, amb)

	fmt.Println("== Figure 4: privacy down-sampling levels ==")
	write := func(name string, img *darnet.Image) error {
		path := filepath.Join(outDir, name)
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		if strings.HasSuffix(name, ".png") {
			err = img.WritePNG(f)
		} else {
			err = img.WritePGM(f)
		}
		if err != nil {
			return err
		}
		fmt.Printf("  wrote %s (%dx%d)\n", path, img.W, img.H)
		return nil
	}
	if err := write("figure4-original-300x300.png", frame); err != nil {
		return err
	}
	for _, lv := range []struct {
		level darnet.DistortionLevel
		size  int
	}{
		{darnet.DistortLow, 100},
		{darnet.DistortMedium, 50},
		{darnet.DistortHigh, 25},
	} {
		small, err := frame.DownsampleNearest(lv.size, lv.size)
		if err != nil {
			return err
		}
		if err := write(fmt.Sprintf("figure4-%s-%dx%d.png", lv.level, lv.size, lv.size), small); err != nil {
			return err
		}
	}
	fmt.Println()
	return nil
}

// table3 reproduces the dCNN privacy evaluation on the 18-class dataset.
func table3(seed int64, teacherEpochs int, quiet bool) error {
	cfg := darnet.DefaultDataset18Config()
	ds, err := darnet.Generate18ClassDataset(cfg)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(seed))
	train, test, err := ds.Split(rng, 0.2)
	if err != nil {
		return err
	}

	// Extra unlabeled frames for distillation: the dCNN methodology is
	// fully unsupervised (paper §4.3 — "allows for new data to be
	// incorporated into the system"), so additional unlabeled capture time
	// costs nothing and closes most of the distillation gap.
	extraCfg := cfg
	extraCfg.Seed = cfg.Seed + 1000
	extra, err := darnet.Generate18ClassDataset(extraCfg)
	if err != nil {
		return err
	}
	distillFrames := concatFrames(train, extra)

	cnnCfg := darnet.DefaultCNNConfig()
	teacher, err := darnet.BuildFrameCNN(rng, cfg.ImgW, cfg.ImgH, 18, cnnCfg)
	if err != nil {
		return err
	}
	start := time.Now()
	if err := trainTeacher(teacher, train, teacherEpochs, seed, quiet, start); err != nil {
		return err
	}
	teacherAcc, err := darnet.EvaluateNetwork(teacher, test, darnet.DistortNone, darnet.CompactDistortionRatios())
	if err != nil {
		return err
	}

	fmt.Println("== Table 3: CNN and dCNN Top-1 on the 18-class dataset ==")
	fmt.Printf("%-8s %-9s %s\n", "Model", "Hit@1", "Paper")
	fmt.Printf("%-8s %-9s %s\n", "CNN", metrics.FormatPercent(teacherAcc), "78.87%")

	build := func(rng *rand.Rand) (*darnet.Network, error) {
		return darnet.BuildFrameCNN(rng, cfg.ImgW, cfg.ImgH, 18, cnnCfg)
	}
	papers := map[darnet.DistortionLevel]string{
		darnet.DistortLow:    "80.00%",
		darnet.DistortMedium: "77.78%",
		darnet.DistortHigh:   "63.13%",
	}
	names := map[darnet.DistortionLevel]string{
		darnet.DistortLow:    "dCNN-L",
		darnet.DistortMedium: "dCNN-M",
		darnet.DistortHigh:   "dCNN-H",
	}
	for _, level := range []darnet.DistortionLevel{darnet.DistortLow, darnet.DistortMedium, darnet.DistortHigh} {
		dc := darnet.DefaultDistillConfig()
		dc.Epochs = 18
		dc.LR = 0.0015
		if !quiet {
			dc.Progress = func(epoch int, loss float64) {
				fmt.Printf("  [%s] epoch %d L2 %.4f (%v)\n", names[level], epoch, loss, time.Since(start).Round(time.Second))
			}
		}
		student, err := darnet.Distill(teacher, build, distillFrames, level, darnet.CompactDistortionRatios(), rng, dc)
		if err != nil {
			return err
		}
		acc, err := darnet.EvaluateNetwork(student, test, level, darnet.CompactDistortionRatios())
		if err != nil {
			return err
		}
		fmt.Printf("%-8s %-9s %s\n", names[level], metrics.FormatPercent(acc), papers[level])
	}
	fmt.Println()
	return nil
}

// concatFrames builds one image-only dataset from the frames of several.
func concatFrames(sets ...*darnet.Dataset) *darnet.Dataset {
	out := &darnet.Dataset{ImgW: sets[0].ImgW, ImgH: sets[0].ImgH, Classes: sets[0].Classes}
	for _, ds := range sets {
		out.Samples = append(out.Samples, ds.Samples...)
	}
	return out
}

func trainTeacher(teacher *darnet.Network, train *darnet.Dataset, epochs int, seed int64, quiet bool, start time.Time) error {
	var progress func(epoch int, loss float64)
	if !quiet {
		progress = func(epoch int, loss float64) {
			fmt.Printf("  [teacher] epoch %d loss %.4f (%v)\n", epoch, loss, time.Since(start).Round(time.Second))
		}
	}
	return darnet.TrainNetwork(teacher, train, epochs, seed, progress)
}

package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"

	"darnet/internal/metrics"
	"darnet/internal/telemetry"
)

// benchSamples is how many held-out samples the latency probe pushes through
// the serving path (Engine.ClassifyCtx) — enough for stable p90 estimates
// and to guarantee at least one sampled trace at the tracer's 1-in-64 rate.
const benchSamples = 64

// benchStageNames are the per-stage latency histograms the benchmark
// reports, in pipeline order.
var benchStageNames = []string{
	"darnet_core_classify_seconds",
	"darnet_core_cnn_forward_seconds",
	"darnet_core_rnn_forward_seconds",
	"darnet_core_bn_combine_seconds",
}

// benchStage is one histogram in the machine-readable benchmark.
type benchStage struct {
	Name   string  `json:"name"`
	Count  int64   `json:"count"`
	MeanMS float64 `json:"mean_ms"`
	P50MS  float64 `json:"p50_ms"`
	P90MS  float64 `json:"p90_ms"`
	P99MS  float64 `json:"p99_ms"`
}

// benchReport is the BENCH_PR3.json schema: experiment provenance, the
// measured Top-1 accuracy of the three architectures, and per-stage
// inference latency from the telemetry histograms.
type benchReport struct {
	PR         int                `json:"pr"`
	Experiment string             `json:"experiment"`
	Scale      float64            `json:"scale"`
	Seed       int64              `json:"seed"`
	Samples    int                `json:"samples"`
	Accuracy   map[string]float64 `json:"accuracy"`
	Stages     []benchStage       `json:"stages"`
}

// bench trains and evaluates the engine like -exp table2, then runs the
// latency probe over the serving path and writes the machine-readable
// benchmark to outPath.
func bench(dataPath string, scale float64, seed int64, cnnEpochs, rnnEpochs int, quiet bool, outPath string) error {
	eng, test, ev, err := trainAndEvaluate(dataPath, scale, seed, cnnEpochs, rnnEpochs, quiet)
	if err != nil {
		return err
	}

	// The latency probe exercises per-sample fused inference — the path a
	// deployed controller serves — rather than the batched evaluation above,
	// so the stage histograms reflect serving latency.
	n := min(benchSamples, test.Len())
	ctx := context.Background()
	for _, s := range test.Samples[:n] {
		if _, err := eng.ClassifyCtx(ctx, s.Frame.Pix, s.Window); err != nil {
			return fmt.Errorf("latency probe: %w", err)
		}
	}

	report := benchReport{
		PR:         3,
		Experiment: "bench",
		Scale:      scale,
		Seed:       seed,
		Samples:    n,
		Accuracy: map[string]float64{
			"cnn_rnn": ev.CNNRNN,
			"cnn_svm": ev.CNNSVM,
			"cnn":     ev.CNN,
		},
	}
	snap := telemetry.Default.Snapshot()
	for _, name := range benchStageNames {
		for _, h := range snap.Histograms {
			if h.Name != name {
				continue
			}
			report.Stages = append(report.Stages, benchStage{
				Name:   h.Name,
				Count:  h.Count,
				MeanMS: h.Mean * 1000,
				P50MS:  h.P50 * 1000,
				P90MS:  h.P90 * 1000,
				P99MS:  h.P99 * 1000,
			})
		}
	}

	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(outPath, buf, 0o644); err != nil {
		return fmt.Errorf("write benchmark: %w", err)
	}
	fmt.Printf("== bench: %d-sample serving-path latency probe ==\n", n)
	fmt.Printf("accuracy: CNN+RNN %s, CNN+SVM %s, CNN %s\n",
		metrics.FormatPercent(ev.CNNRNN), metrics.FormatPercent(ev.CNNSVM), metrics.FormatPercent(ev.CNN))
	for _, st := range report.Stages {
		fmt.Printf("%-36s count=%d mean=%.3fms p50=%.3fms p90=%.3fms p99=%.3fms\n",
			st.Name, st.Count, st.MeanMS, st.P50MS, st.P90MS, st.P99MS)
	}
	fmt.Printf("wrote %s\n\n", outPath)
	return nil
}

// checkBenchFile validates a benchmark JSON file: schema fields present,
// accuracies in [0,1], and every reported stage non-empty with ordered
// quantiles. It is the -check-bench mode make bench-smoke gates on. Chaos
// benchmarks (experiment "chaos") carry a different schema and dispatch to
// checkChaosBench.
func checkBenchFile(path string) error {
	buf, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var probe struct {
		Experiment string `json:"experiment"`
	}
	if err := json.Unmarshal(buf, &probe); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if probe.Experiment == "crash" {
		return checkCrashBench(path, buf)
	}
	if probe.Experiment == "chaos" {
		return checkChaosBench(path, buf)
	}
	if probe.Experiment == "stream" {
		return checkStreamBench(path, buf)
	}
	if probe.Experiment == "obs" {
		return checkObsBench(path, buf)
	}
	var report benchReport
	if err := json.Unmarshal(buf, &report); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if report.PR <= 0 || report.Experiment == "" || report.Samples <= 0 {
		return fmt.Errorf("%s: missing provenance (pr=%d experiment=%q samples=%d)",
			path, report.PR, report.Experiment, report.Samples)
	}
	for _, key := range []string{"cnn_rnn", "cnn_svm", "cnn"} {
		acc, ok := report.Accuracy[key]
		if !ok {
			return fmt.Errorf("%s: missing accuracy %q", path, key)
		}
		if acc < 0 || acc > 1 {
			return fmt.Errorf("%s: accuracy %q = %v out of [0,1]", path, key, acc)
		}
	}
	if len(report.Stages) == 0 {
		return fmt.Errorf("%s: no latency stages", path)
	}
	for _, st := range report.Stages {
		if !telemetry.ValidName(st.Name) {
			return fmt.Errorf("%s: stage %q is not a valid metric name", path, st.Name)
		}
		if st.Count <= 0 {
			return fmt.Errorf("%s: stage %s has no observations", path, st.Name)
		}
		if st.P50MS > st.P90MS || st.P90MS > st.P99MS {
			return fmt.Errorf("%s: stage %s has unordered quantiles p50=%v p90=%v p99=%v",
				path, st.Name, st.P50MS, st.P90MS, st.P99MS)
		}
		if st.MeanMS < 0 {
			return fmt.Errorf("%s: stage %s has negative mean %v", path, st.Name, st.MeanMS)
		}
	}
	fmt.Printf("%s ok: %d samples, %d stages, CNN+RNN %s\n",
		path, report.Samples, len(report.Stages), metrics.FormatPercent(report.Accuracy["cnn_rnn"]))
	return nil
}

package main

// The obs experiment measures the observability tax: the saturating stream
// workload of -exp stream runs in two arms — a baseline with agent-side trace
// propagation off and no scraper, and an instrumented arm with distributed
// tracing on and the telemetry→tsdb scraper sampling at a tight interval.
// The arms alternate (baseline, instrumented, baseline, ...) so drift in host
// load hits both equally, and each arm keeps its best run. The acceptance bar
// checked by -check-bench: the instrumented arm's processed-readings
// throughput within 5% of baseline.

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"darnet/internal/obs"
	"darnet/internal/telemetry"
)

const (
	obsRunFor         = 2 * time.Second
	obsRunsPerArm     = 3
	obsScrapeInterval = 100 * time.Millisecond
)

// obsArm is one side of the overhead comparison: the best (highest
// processed/sec) of its runs.
type obsArm struct {
	Runs            int     `json:"runs"`
	ProcessedPerSec float64 `json:"processed_per_sec"`
	DecisionsPerSec float64 `json:"decisions_per_sec"`
	Processed       int64   `json:"processed_readings"`
	Decisions       int64   `json:"decisions"`
	ShedReadings    int64   `json:"shed_readings"`
	MaxDepth        int64   `json:"max_depth"`
}

// record folds one run into the arm, keeping the best throughput.
func (a *obsArm) record(res *satResult) {
	a.Runs++
	pps := float64(res.processed) / res.elapsed.Seconds()
	if pps <= a.ProcessedPerSec {
		return
	}
	a.ProcessedPerSec = pps
	a.DecisionsPerSec = float64(res.stats.Decisions) / res.elapsed.Seconds()
	a.Processed = res.processed
	a.Decisions = res.stats.Decisions
	a.ShedReadings = res.stats.ShedReadings
	a.MaxDepth = res.stats.MaxDepth
}

// obsReport is the BENCH_PR8.json schema: provenance, both arms, the
// throughput overhead, and the evidence that the instrumented arm really
// traced and scraped (merged flush traces retained, history series written).
type obsReport struct {
	PR               int     `json:"pr"`
	Experiment       string  `json:"experiment"`
	Seed             int64   `json:"seed"`
	RunForMS         float64 `json:"run_for_ms"`
	ScrapeIntervalMS float64 `json:"scrape_interval_ms"`
	QueueCap         int     `json:"queue_cap"`

	Baseline     obsArm `json:"baseline"`
	Instrumented obsArm `json:"instrumented"`

	// OverheadPct is the baseline→instrumented throughput loss in percent
	// (negative when the instrumented arm measured faster — noise).
	OverheadPct   float64 `json:"overhead_pct"`
	Scrapes       int64   `json:"scrapes"`
	HistorySeries int     `json:"history_series"`
	FlushTraces   int     `json:"flush_traces"`
}

// obsBench trains one engine, alternates baseline and instrumented
// saturating runs over it, and writes the machine-readable overhead report.
func obsBench(scale float64, seed int64, cnnEpochs, rnnEpochs int, quiet bool, outPath string) error {
	eng, ds, err := trainStreamEngine(scale, seed, cnnEpochs, rnnEpochs, quiet)
	if err != nil {
		return err
	}

	var base, instr obsArm
	var scrapes int64
	historySeries := 0
	for i := 0; i < obsRunsPerArm; i++ {
		runSeed := seed + int64(i)
		res, err := saturatingRun(eng, ds, runSeed, obsRunFor, true)
		if err != nil {
			return fmt.Errorf("baseline run %d: %w", i+1, err)
		}
		base.record(res)

		// The scraper lives exactly as long as the instrumented run, so its
		// sampling cost lands inside the measured window; Stop's final flush
		// is part of the arm, matching darnetd's shutdown behavior.
		scraper, err := obs.NewScraper(obs.ScrapeConfig{Interval: obsScrapeInterval})
		if err != nil {
			return err
		}
		scraper.Start()
		res, err = saturatingRun(eng, ds, runSeed, obsRunFor, false)
		scraper.Stop()
		if err != nil {
			return fmt.Errorf("instrumented run %d: %w", i+1, err)
		}
		instr.record(res)
		scrapes += scraper.Scrapes()
		if n := len(scraper.DB().Series()); n > historySeries {
			historySeries = n
		}
	}

	// Only traced (instrumented) flushes produce merged trees rooted at the
	// agent-side flush span; baseline ingest roots stay controller-local.
	flushTraces := 0
	for _, tr := range telemetry.DefaultTracer.MergedTraces() {
		if tr.Name == "darnet_agent_flush_batch" {
			flushTraces++
		}
	}

	report := obsReport{
		PR:               8,
		Experiment:       "obs",
		Seed:             seed,
		RunForMS:         float64(obsRunFor.Milliseconds()),
		ScrapeIntervalMS: float64(obsScrapeInterval.Milliseconds()),
		QueueCap:         streamQueueCap,
		Baseline:         base,
		Instrumented:     instr,
		OverheadPct:      (1 - instr.ProcessedPerSec/base.ProcessedPerSec) * 100,
		Scrapes:          scrapes,
		HistorySeries:    historySeries,
		FlushTraces:      flushTraces,
	}

	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(outPath, buf, 0o644); err != nil {
		return fmt.Errorf("write obs benchmark: %w", err)
	}
	if !quiet {
		fmt.Printf("== obs: tracing+scraping overhead on the saturating stream workload ==\n")
		fmt.Printf("baseline      %.0f readings/s (%.0f decisions/s, best of %d runs)\n",
			base.ProcessedPerSec, base.DecisionsPerSec, base.Runs)
		fmt.Printf("instrumented  %.0f readings/s (%.0f decisions/s, best of %d runs)\n",
			instr.ProcessedPerSec, instr.DecisionsPerSec, instr.Runs)
		fmt.Printf("overhead %.2f%%; %d scrapes into %d history series, %d merged flush traces retained\n",
			report.OverheadPct, scrapes, historySeries, flushTraces)
	}
	fmt.Printf("wrote %s\n\n", outPath)
	return nil
}

// checkObsBench validates an obs benchmark file (the -check-bench branch for
// experiment "obs"): both arms ran saturated with bounded queues, the
// instrumented arm demonstrably traced and scraped, and the overhead is
// within the 5% budget.
func checkObsBench(path string, buf []byte) error {
	var report obsReport
	if err := json.Unmarshal(buf, &report); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if report.PR <= 0 || report.Experiment != "obs" {
		return fmt.Errorf("%s: missing provenance (pr=%d experiment=%q)", path, report.PR, report.Experiment)
	}
	for name, arm := range map[string]obsArm{"baseline": report.Baseline, "instrumented": report.Instrumented} {
		if arm.Runs <= 0 || arm.Processed <= 0 || arm.ProcessedPerSec <= 0 {
			return fmt.Errorf("%s: %s arm never processed anything (%+v)", path, name, arm)
		}
		if arm.Decisions <= 0 {
			return fmt.Errorf("%s: %s arm produced no classifications", path, name)
		}
		if report.QueueCap <= 0 || arm.MaxDepth > int64(report.QueueCap) {
			return fmt.Errorf("%s: %s arm queue bound violated (max_depth=%d cap=%d)",
				path, name, arm.MaxDepth, report.QueueCap)
		}
	}
	if report.Scrapes <= 0 || report.HistorySeries <= 0 {
		return fmt.Errorf("%s: instrumented arm never scraped (scrapes=%d series=%d)",
			path, report.Scrapes, report.HistorySeries)
	}
	if report.FlushTraces <= 0 {
		return fmt.Errorf("%s: no merged agent→controller traces retained — tracing was not live", path)
	}
	if report.OverheadPct > 5 {
		return fmt.Errorf("%s: tracing+scraping overhead %.2f%% exceeds the 5%% budget", path, report.OverheadPct)
	}
	fmt.Printf("%s ok: overhead %.2f%% (baseline %.0f/s → instrumented %.0f/s), %d scrapes, %d history series, %d flush traces\n",
		path, report.OverheadPct, report.Baseline.ProcessedPerSec, report.Instrumented.ProcessedPerSec,
		report.Scrapes, report.HistorySeries, report.FlushTraces)
	return nil
}

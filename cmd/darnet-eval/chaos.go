package main

// The chaos experiment measures the collection middleware's resilience under
// a fixed fault schedule: an agent streams over loopback TCP through a
// fault.Transport that hard-partitions the first two connections and
// duplicates frames afterwards, and the report records ingest throughput,
// per-partition recovery time, and the dedupe/spill accounting. It is the
// robustness counterpart of the -exp bench latency probe.

import (
	"encoding/json"
	"fmt"
	"net"
	"os"
	"sync"
	"time"

	"darnet/internal/collect"
	"darnet/internal/fault"
	"darnet/internal/tsdb"
	"darnet/internal/wire"
)

// Fixed fault schedule for the chaos experiment: two scheduled partitions,
// then duplicated frames for the rest of the run.
const (
	chaosPartitionAfter = 40  // writes before each scheduled partition
	chaosDupRate        = 0.3 // duplicate-delivery probability after the partitions
	chaosRunFor         = 3 * time.Second
)

// chaosReport is the BENCH_PR5.json schema: provenance, ingest throughput
// under faults, recovery time for every injected partition, and the
// resilience accounting (reconnects, deduped replays, spilled readings).
type chaosReport struct {
	PR         int     `json:"pr"`
	Experiment string  `json:"experiment"`
	Seed       int64   `json:"seed"`
	DurationMS float64 `json:"duration_ms"`

	ReadingsStored int     `json:"readings_stored"`
	ThroughputRPS  float64 `json:"throughput_rps"`

	Partitions    int       `json:"partitions"`
	Reconnects    int       `json:"reconnects"`
	Deduped       int       `json:"deduped"`
	SpillDropped  int64     `json:"spill_dropped"`
	RecoveryMS    []float64 `json:"recovery_ms"`
	RecoveryMaxMS float64   `json:"recovery_max_ms"`
}

// chaosBench runs the fixed fault schedule and writes the machine-readable
// resilience benchmark to outPath.
func chaosBench(seed int64, quiet bool, outPath string) error {
	db := tsdb.New()
	ctrl := collect.NewController(db, func() int64 { return time.Now().UnixMilli() })
	ctrl.SetIdleTimeout(2 * time.Second)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				//lint:ignore errdrop chaos sessions end in injected faults by design
				ctrl.ServeConn(wire.NewConn(conn))
			}()
		}
	}()

	// Partition timestamps feed the recovery-time measurement below.
	var mu sync.Mutex
	var partitionAt []time.Time
	var dials int64
	dialer := func() (*wire.Conn, error) {
		raw, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			return nil, err
		}
		mu.Lock()
		dials++
		n := dials
		mu.Unlock()
		cfg := fault.Config{Seed: seed + n}
		if n <= 2 {
			cfg.PartitionAfterWrites = []int{chaosPartitionAfter}
			cfg.OnEvent = func(e fault.Event) {
				if e.Kind == fault.EventPartition {
					mu.Lock()
					partitionAt = append(partitionAt, time.Now())
					mu.Unlock()
				}
			}
		} else {
			cfg.DupRate = chaosDupRate
		}
		return wire.NewConn(fault.NewTransport(raw, cfg)), nil
	}

	conn, err := dialer()
	if err != nil {
		return err
	}
	clock := collect.NewDriftClock(func() int64 { return time.Now().UnixMilli() }, 0)
	var tick int64
	sensors := []collect.Sensor{collect.SensorFunc{SensorName: "s", ReadFunc: func() []float64 {
		tick++
		return []float64{float64(tick)}
	}}}
	agent, err := collect.NewAgent(collect.AgentConfig{
		ID: "chaos", Modality: "imu", PollPeriodMS: 2,
		AckTimeout: time.Second, MaxSpill: 100_000,
	}, clock, sensors, conn)
	if err != nil {
		return err
	}
	start := time.Now()
	runner, err := collect.StartRunnerConfig(agent, collect.RunnerConfig{
		FlushEvery:  10 * time.Millisecond,
		Dialer:      dialer,
		BackoffBase: 2 * time.Millisecond,
		BackoffMax:  50 * time.Millisecond,
		MaxAttempts: -1,
		Seed:        seed,
	})
	if err != nil {
		return err
	}

	// Recovery time of partition k: from the injected fault to the first new
	// reading stored afterwards — the span during which ingest was down.
	series := collect.SeriesName("chaos", "s") + "[0]"
	var recoveredAt []time.Time
	lastLen := 0
	for time.Since(start) < chaosRunFor {
		time.Sleep(time.Millisecond)
		if n := db.Len(series); n > lastLen {
			lastLen = n
			mu.Lock()
			if len(recoveredAt) < len(partitionAt) {
				recoveredAt = append(recoveredAt, time.Now())
			}
			mu.Unlock()
		}
	}
	if err := runner.Shutdown(); err != nil {
		return fmt.Errorf("chaos runner: %w", err)
	}
	elapsed := time.Since(start)

	st, ok := ctrl.AgentStats("chaos")
	if !ok {
		return fmt.Errorf("chaos agent never registered")
	}
	stored := db.Len(series)
	if stored == 0 {
		return fmt.Errorf("chaos run stored no readings")
	}
	if got := runner.Reconnects(); got < 2 {
		return fmt.Errorf("chaos run survived only %d partitions, want 2", got)
	}

	report := chaosReport{
		PR:             5,
		Experiment:     "chaos",
		Seed:           seed,
		DurationMS:     float64(elapsed.Milliseconds()),
		ReadingsStored: stored,
		ThroughputRPS:  float64(stored) / elapsed.Seconds(),
		Partitions:     len(partitionAt),
		Reconnects:     runner.Reconnects(),
		Deduped:        st.Deduped,
		SpillDropped:   agent.SpillDropped(),
	}
	for i, p := range partitionAt {
		if i < len(recoveredAt) {
			ms := float64(recoveredAt[i].Sub(p).Microseconds()) / 1000
			report.RecoveryMS = append(report.RecoveryMS, ms)
			if ms > report.RecoveryMaxMS {
				report.RecoveryMaxMS = ms
			}
		}
	}

	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(outPath, buf, 0o644); err != nil {
		return fmt.Errorf("write chaos benchmark: %w", err)
	}
	if !quiet {
		fmt.Printf("== chaos: %v fault-schedule run ==\n", chaosRunFor)
		fmt.Printf("stored %d readings (%.0f/s), survived %d partitions with %d reconnects\n",
			stored, report.ThroughputRPS, report.Partitions, report.Reconnects)
		fmt.Printf("deduped %d replayed batches, spill-dropped %d readings\n", report.Deduped, report.SpillDropped)
		for i, ms := range report.RecoveryMS {
			fmt.Printf("partition %d recovered in %.1f ms\n", i+1, ms)
		}
	}
	fmt.Printf("wrote %s\n\n", outPath)
	return nil
}

// checkChaosBench validates a chaos benchmark file (the -check-bench branch
// for experiment "chaos").
func checkChaosBench(path string, buf []byte) error {
	var report chaosReport
	if err := json.Unmarshal(buf, &report); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if report.PR <= 0 || report.Experiment != "chaos" {
		return fmt.Errorf("%s: missing provenance (pr=%d experiment=%q)", path, report.PR, report.Experiment)
	}
	if report.ReadingsStored <= 0 || report.ThroughputRPS <= 0 {
		return fmt.Errorf("%s: no ingest recorded (stored=%d throughput=%v)", path, report.ReadingsStored, report.ThroughputRPS)
	}
	if report.Partitions < 2 {
		return fmt.Errorf("%s: only %d partitions injected, schedule promises 2", path, report.Partitions)
	}
	if report.Reconnects < report.Partitions {
		return fmt.Errorf("%s: %d reconnects for %d partitions — an outage was not survived", path, report.Reconnects, report.Partitions)
	}
	if len(report.RecoveryMS) == 0 {
		return fmt.Errorf("%s: no recovery times recorded", path)
	}
	for i, ms := range report.RecoveryMS {
		if ms <= 0 || ms > report.RecoveryMaxMS {
			return fmt.Errorf("%s: recovery_ms[%d] = %v inconsistent with max %v", path, i, ms, report.RecoveryMaxMS)
		}
	}
	fmt.Printf("%s ok: %.0f readings/s under faults, %d partitions survived, worst recovery %.1f ms\n",
		path, report.ThroughputRPS, report.Partitions, report.RecoveryMaxMS)
	return nil
}

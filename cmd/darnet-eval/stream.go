package main

// The stream experiment measures the streaming classification pipeline under
// deliberate saturation: a hot-loop agent (no wall-clock pacing) floods a
// loopback controller with IMU samples and camera frames far faster than the
// classify stage can drain them, and the report records what the robustness
// machinery did about it — sustained decision throughput, alert-latency
// percentiles, frames skipped, readings shed at the bounded queue, flushes
// deferred under zero credits — plus the bounded-memory evidence (max queue
// depth never above the cap). It is the overload counterpart of -exp chaos.

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"os"
	"time"

	"darnet"
	"darnet/internal/collect"
	"darnet/internal/imu"
	"darnet/internal/stream"
	"darnet/internal/synth"
	"darnet/internal/telemetry"
	"darnet/internal/tsdb"
	"darnet/internal/wire"
)

// Saturation parameters: a small queue saturates fast, a hot loop with
// several polls per flush keeps the offered rate far above classify
// capacity on any host.
const (
	streamRunFor        = 3 * time.Second
	streamQueueCap      = 64
	streamFrameSkipMax  = 4
	streamPollsPerFlush = 128
	streamPollStepMS    = 25 // simulated sensor clock step per poll
	streamAlertDwellMS  = 100
)

// streamReport is the BENCH_PR7.json schema: provenance, the offered /
// processed / shed accounting that proves saturation with bounded memory,
// decision throughput, alert-latency percentiles, and the degradation
// counters (frames skipped, flushes deferred, watchdog restarts).
type streamReport struct {
	PR         int     `json:"pr"`
	Experiment string  `json:"experiment"`
	Seed       int64   `json:"seed"`
	DurationMS float64 `json:"duration_ms"`

	QueueCap          int     `json:"queue_cap"`
	GeneratedReadings int64   `json:"generated_readings"` // polled by the agent (incl. spill-dropped)
	OfferedReadings   int64   `json:"offered_readings"`   // delivered to the controller and stored
	ShedReadings      int64   `json:"shed_readings"`      // dropped at the full classify queue
	SpillDropped      int64   `json:"spill_dropped"`      // dropped oldest-first at the agent spill valve
	ProcessedReadings int64   `json:"processed_readings"`
	SaturationRatio   float64 `json:"saturation_ratio"` // generated / processed, ≥ 2 proves overload
	MaxDepth          int64   `json:"max_depth"`        // must stay ≤ queue_cap

	Decisions       int64   `json:"decisions"`
	DecisionsPerSec float64 `json:"decisions_per_sec"`
	Frames          int64   `json:"frames"`
	FramesSkipped   int64   `json:"frames_skipped"`
	Restarts        int64   `json:"restarts"`
	AlertsRaised    int64   `json:"alerts_raised"`
	AlertsCleared   int64   `json:"alerts_cleared"`

	AlertLatencyP50MS float64 `json:"alert_latency_p50_ms"`
	AlertLatencyP99MS float64 `json:"alert_latency_p99_ms"`

	DeferredFlushes int64 `json:"deferred_flushes"`
}

// satResult aggregates one saturating loopback run (see saturatingRun).
type satResult struct {
	elapsed      time.Duration
	generated    int64
	offered      int64
	processed    int64
	spillDropped int64
	deferred     int64
	stats        stream.Stats
}

// trainStreamEngine is the shared preamble of the stream and obs experiments:
// generate the dataset and train a small engine on it.
func trainStreamEngine(scale float64, seed int64, cnnEpochs, rnnEpochs int, quiet bool) (*darnet.Engine, *darnet.Dataset, error) {
	cfg := darnet.DefaultDatasetConfig()
	cfg.Scale = scale
	ds, err := darnet.GenerateDataset(cfg)
	if err != nil {
		return nil, nil, err
	}
	tc := darnet.DefaultEngineTrainConfig()
	tc.Seed = seed
	tc.CNNEpochs = cnnEpochs
	tc.RNNEpochs = rnnEpochs
	start := time.Now()
	if !quiet {
		tc.Progress = func(stage string, epoch int, loss float64) {
			fmt.Printf("  [%s] epoch %d loss %.4f (%v)\n", stage, epoch, loss, time.Since(start).Round(time.Second))
		}
	}
	eng, err := darnet.TrainEngine(ds, tc)
	if err != nil {
		return nil, nil, err
	}
	return eng, ds, nil
}

// streamBench trains a small engine, saturates a streaming controller over
// loopback TCP, and writes the machine-readable overload benchmark.
func streamBench(scale float64, seed int64, cnnEpochs, rnnEpochs int, quiet bool, outPath string) error {
	eng, ds, err := trainStreamEngine(scale, seed, cnnEpochs, rnnEpochs, quiet)
	if err != nil {
		return err
	}
	res, err := saturatingRun(eng, ds, seed, streamRunFor, false)
	if err != nil {
		return err
	}
	s := res.stats

	report := streamReport{
		PR:                7,
		Experiment:        "stream",
		Seed:              seed,
		DurationMS:        float64(res.elapsed.Milliseconds()),
		QueueCap:          streamQueueCap,
		GeneratedReadings: res.generated,
		OfferedReadings:   res.offered,
		ShedReadings:      s.ShedReadings,
		SpillDropped:      res.spillDropped,
		ProcessedReadings: res.processed,
		SaturationRatio:   float64(res.generated) / float64(res.processed),
		MaxDepth:          s.MaxDepth,
		Decisions:         s.Decisions,
		DecisionsPerSec:   float64(s.Decisions) / res.elapsed.Seconds(),
		Frames:            s.Frames,
		FramesSkipped:     s.FramesSkipped,
		Restarts:          s.Restarts,
		AlertsRaised:      s.AlertsRaised,
		AlertsCleared:     s.AlertsCleared,
		DeferredFlushes:   res.deferred,
	}
	for _, h := range telemetry.Default.Snapshot().Histograms {
		if h.Name == "darnet_stream_alert_latency_seconds" {
			report.AlertLatencyP50MS = h.P50 * 1000
			report.AlertLatencyP99MS = h.P99 * 1000
		}
	}

	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(outPath, buf, 0o644); err != nil {
		return fmt.Errorf("write stream benchmark: %w", err)
	}
	if !quiet {
		fmt.Printf("== stream: %v saturating overload run ==\n", streamRunFor)
		fmt.Printf("generated %d readings, processed %d, shed %d at the queue + %d at the spill valve (saturation %.1fx), max depth %d/%d\n",
			res.generated, res.processed, s.ShedReadings, res.spillDropped, report.SaturationRatio, s.MaxDepth, streamQueueCap)
		fmt.Printf("decisions %d (%.0f/s), frames %d (skipped %d), alerts %d raised / %d cleared\n",
			s.Decisions, report.DecisionsPerSec, s.Frames, s.FramesSkipped, s.AlertsRaised, s.AlertsCleared)
		fmt.Printf("alert latency p50 %.1f ms, p99 %.1f ms; deferred %d flushes, spill-dropped %d\n",
			report.AlertLatencyP50MS, report.AlertLatencyP99MS, res.deferred, res.spillDropped)
	}
	fmt.Printf("wrote %s\n\n", outPath)
	return nil
}

// saturatingRun floods a loopback streaming controller with the hot-loop
// agent for runFor and returns the overload accounting. disableTracing turns
// off agent-side trace-context propagation — the -exp obs baseline arm; the
// stream experiment always runs with tracing on.
func saturatingRun(eng *darnet.Engine, ds *darnet.Dataset, seed int64, runFor time.Duration, disableTracing bool) (*satResult, error) {
	mux, err := stream.NewMux(stream.Config{
		QueueCap:     streamQueueCap,
		FrameSkipMax: streamFrameSkipMax,
		Alert: stream.AlertConfig{
			NormalClass: int(darnet.NormalDriving),
			Dwell:       streamAlertDwellMS * time.Millisecond,
		},
	}, stream.EngineTickerFactory(eng))
	if err != nil {
		return nil, err
	}
	defer mux.Shutdown()

	ctrl := collect.NewController(tsdb.New(), func() int64 { return time.Now().UnixMilli() })
	ctrl.SetStreamSink(mux)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				//lint:ignore errdrop the benchmark closes the link mid-protocol at shutdown
				ctrl.ServeConn(wire.NewConn(conn))
			}()
		}
	}()

	// The agent streams a distracted-driving IMU signature plus camera frames
	// drawn from the dataset, with a manual clock advanced per poll so the
	// four IMU channels group into samples regardless of how fast the hot
	// loop spins.
	raw, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		return nil, err
	}
	defer raw.Close()
	manual := collect.NewManualTime(0)
	rng := rand.New(rand.NewSource(seed))
	window := synth.GenerateWindow(rng, synth.Talking, synth.DefaultIMUGen())
	step := 0
	current := window.Samples[0]
	next := func() {
		step++
		if step%len(window.Samples) == 0 {
			window = synth.GenerateWindow(rng, synth.Talking, synth.DefaultIMUGen())
		}
		current = window.Samples[step%len(window.Samples)]
	}
	frameIdx := 0
	sensors := append(collect.IMUSensors(func() imu.Sample { return current }),
		collect.SensorFunc{SensorName: collect.FrameSensorName, ReadFunc: func() []float64 {
			frameIdx++
			return ds.Samples[frameIdx%ds.Len()].Frame.Pix
		}})
	agent, err := collect.NewAgent(collect.AgentConfig{
		ID: "stream", Modality: "imu+cam", PollPeriodMS: streamPollStepMS, AckTimeout: 5 * time.Second,
		DisableTracing: disableTracing,
	}, collect.NewDriftClock(manual.Now, 0), sensors, wire.NewConn(raw))
	if err != nil {
		return nil, err
	}
	if err := agent.Hello(); err != nil {
		return nil, err
	}

	// Hot loop: poll as fast as the link allows — the offered rate is bounded
	// only by loopback TCP, guaranteeing the classify queue saturates. Zero
	// credits turn flush ticks into heartbeats exactly as the runner would.
	var deferred int64
	runStart := time.Now()
	for time.Since(runStart) < runFor {
		for i := 0; i < streamPollsPerFlush; i++ {
			manual.Advance(streamPollStepMS)
			next()
			agent.Poll()
		}
		if agent.ShouldDefer() {
			deferred++
			if err := agent.Heartbeat(); err != nil {
				return nil, fmt.Errorf("stream heartbeat: %w", err)
			}
			continue
		}
		if err := agent.Flush(); err != nil {
			return nil, fmt.Errorf("stream flush: %w", err)
		}
	}
	elapsed := time.Since(runStart)
	mux.Shutdown()

	st, ok := ctrl.AgentStats("stream")
	if !ok {
		return nil, fmt.Errorf("stream agent never registered")
	}
	s := mux.Stats()
	offered := int64(st.Readings)
	generated := offered + agent.SpillDropped()
	processed := offered - s.ShedReadings
	if processed <= 0 {
		return nil, fmt.Errorf("stream run processed nothing (offered=%d shed=%d)", offered, s.ShedReadings)
	}
	if s.Decisions == 0 {
		return nil, fmt.Errorf("stream run produced no classifications")
	}
	return &satResult{
		elapsed:      elapsed,
		generated:    generated,
		offered:      offered,
		processed:    processed,
		spillDropped: agent.SpillDropped(),
		deferred:     deferred,
		stats:        s,
	}, nil
}

// checkStreamBench validates a stream benchmark file (the -check-bench branch
// for experiment "stream"): saturation demonstrated, memory bounded, alert
// latency measured.
func checkStreamBench(path string, buf []byte) error {
	var report streamReport
	if err := json.Unmarshal(buf, &report); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if report.PR <= 0 || report.Experiment != "stream" {
		return fmt.Errorf("%s: missing provenance (pr=%d experiment=%q)", path, report.PR, report.Experiment)
	}
	if report.QueueCap <= 0 || report.MaxDepth <= 0 || report.MaxDepth > int64(report.QueueCap) {
		return fmt.Errorf("%s: queue bound violated (max_depth=%d cap=%d)", path, report.MaxDepth, report.QueueCap)
	}
	if report.ShedReadings+report.SpillDropped <= 0 {
		return fmt.Errorf("%s: nothing shed at either valve — the run never saturated", path)
	}
	if report.SaturationRatio < 2 {
		return fmt.Errorf("%s: saturation ratio %.2f below the promised 2x overload", path, report.SaturationRatio)
	}
	if report.Decisions <= 0 || report.DecisionsPerSec <= 0 {
		return fmt.Errorf("%s: no sustained classification throughput (decisions=%d)", path, report.Decisions)
	}
	if report.AlertLatencyP99MS <= 0 || report.AlertLatencyP50MS > report.AlertLatencyP99MS {
		return fmt.Errorf("%s: alert latency percentiles inconsistent (p50=%v p99=%v)",
			path, report.AlertLatencyP50MS, report.AlertLatencyP99MS)
	}
	if report.AlertsRaised <= 0 {
		return fmt.Errorf("%s: distracted-driving input never raised an alert", path)
	}
	if report.FramesSkipped <= 0 {
		return fmt.Errorf("%s: overload never engaged frame skipping", path)
	}
	fmt.Printf("%s ok: %.0f decisions/s under %.1fx overload, alert p99 %.1f ms, depth %d/%d, shed %d, skipped %d\n",
		path, report.DecisionsPerSec, report.SaturationRatio, report.AlertLatencyP99MS,
		report.MaxDepth, report.QueueCap, report.ShedReadings, report.FramesSkipped)
	return nil
}

package darnet

import (
	"io"
	"math/rand"
	"time"

	"darnet/internal/bayes"
	"darnet/internal/collect"
	"darnet/internal/core"
	"darnet/internal/imu"
	"darnet/internal/metrics"
	"darnet/internal/nn"
	"darnet/internal/privacy"
	"darnet/internal/synth"
	"darnet/internal/tsdb"
	"darnet/internal/vision"
	"darnet/internal/wire"
)

// Driving behaviour classes (paper Table 1).
const (
	NormalDriving  = synth.NormalDriving
	Talking        = synth.Talking
	Texting        = synth.Texting
	EatingDrinking = synth.EatingDrinking
	HairMakeup     = synth.HairMakeup
	Reaching       = synth.Reaching

	// NumClasses is the size of the full driving-behaviour class space.
	NumClasses = synth.NumClasses
	// NumIMUClasses is the size of the IMU class space (normal/talking/texting).
	NumIMUClasses = synth.NumIMUClasses
)

// Re-exported core types. These aliases are the public names for the
// library's building blocks; their methods are documented on the aliased
// types.
type (
	// Class is one of the six driving behaviours.
	Class = synth.Class
	// Dataset is a labelled multi-modal sample collection.
	Dataset = synth.Dataset
	// DatasetSample is one aligned frame + IMU window observation.
	DatasetSample = synth.Sample
	// DatasetConfig controls 6-class (Table 1) dataset generation.
	DatasetConfig = synth.Config
	// Dataset18Config controls 18-class (privacy) dataset generation.
	Dataset18Config = synth.Config18
	// AmbiguityConfig tunes image-channel confusability.
	AmbiguityConfig = synth.AmbiguityConfig
	// IMUGenConfig tunes IMU trace realism.
	IMUGenConfig = synth.IMUGenConfig

	// Engine is the trained analytics engine (CNN + RNN + SVM + combiners).
	Engine = core.Engine
	// EngineData is the modality-aligned dataset form the engine consumes.
	EngineData = core.Data
	// EngineTrainConfig controls end-to-end engine training.
	EngineTrainConfig = core.TrainConfig
	// Evaluation holds Table 2 / Figure 5 results.
	Evaluation = core.Evaluation
	// Classification is one fused multi-modal inference.
	Classification = core.Classification
	// CNNConfig parameterizes the MicroInception frame classifier.
	CNNConfig = core.CNNConfig

	// Image is a grayscale frame.
	Image = vision.Image
	// IMUSample is one fused IMU reading.
	IMUSample = imu.Sample
	// IMUWindow is a fixed-length run of IMU samples.
	IMUWindow = imu.Window

	// ConfusionMatrix counts (true, predicted) pairs.
	ConfusionMatrix = metrics.ConfusionMatrix

	// DistortionLevel is a privacy down-sampling level.
	DistortionLevel = collect.DistortionLevel
	// DistortionRatios maps levels to down-sampling factors.
	DistortionRatios = privacy.Ratios
	// TaggedFrame is a distorted frame tagged with its level.
	TaggedFrame = privacy.TaggedFrame
	// DCNNRouter dispatches tagged frames to level-specific classifiers.
	DCNNRouter = privacy.Router
	// DistillConfig controls dCNN training.
	DistillConfig = privacy.DistillConfig

	// Agent is a sensor collection agent.
	Agent = collect.Agent
	// AgentConfig configures a collection agent.
	AgentConfig = collect.AgentConfig
	// Controller is the centralized collection controller.
	Controller = collect.Controller
	// Sensor is one pollable device channel.
	Sensor = collect.Sensor
	// SensorFunc adapts a function to the Sensor interface.
	SensorFunc = collect.SensorFunc
	// ProcessingPolicy decides local vs remote processing.
	ProcessingPolicy = collect.ProcessingPolicy
	// NetworkConditions summarize the uplink.
	NetworkConditions = collect.NetworkConditions
	// TimedFrame is a stored camera frame with its capture timestamp.
	TimedFrame = collect.TimedFrame
	// WireConn frames protocol messages over a transport stream.
	WireConn = wire.Conn
	// DriftClock simulates a drifting device clock.
	DriftClock = collect.DriftClock
	// TimeSource yields reference time in milliseconds.
	TimeSource = collect.TimeSource
	// ManualTime is a manually advanced time source for tests/simulations.
	ManualTime = collect.ManualTime
	// TSDB is the controller's time-series store.
	TSDB = tsdb.DB
	// AgentRunner drives an agent in real time on a managed goroutine.
	AgentRunner = collect.Runner
	// SessionScript models the paper's scripted collection protocol.
	SessionScript = collect.SessionScript
	// ScriptSegment is one scripted activity segment.
	ScriptSegment = collect.ScriptSegment

	// Network is a trainable feed-forward network (the CNN substrate).
	Network = nn.Sequential

	// Alerter debounces per-window classifications into driver/fleet alerts.
	Alerter = core.Alerter
	// AlertEvent is an alert state transition.
	AlertEvent = core.AlertEvent
	// MultiCombiner fuses any number of modality distributions (the paper's
	// "extensible to more modalities" claim realized).
	MultiCombiner = bayes.MultiCombiner
	// AlertReport scores episode-level alerting behaviour.
	AlertReport = core.AlertReport
)

// Alert state transitions.
const (
	AlertNone    = core.AlertNone
	AlertRaised  = core.AlertRaised
	AlertCleared = core.AlertCleared
)

// NewAlerter returns an alert debouncer: an alert is raised after trigger
// consecutive distracted windows and cleared after clear consecutive normal
// windows.
func NewAlerter(normalClass, trigger, clear int) (*Alerter, error) {
	return core.NewAlerter(normalClass, trigger, clear)
}

// NewMultiCombiner returns an unfitted N-parent Bayesian Network combiner
// over parents with the given outcome arities.
func NewMultiCombiner(classes int, arities []int) (*MultiCombiner, error) {
	return bayes.NewMultiCombiner(classes, arities)
}

// ECE computes the expected calibration error of probabilistic predictions
// over the given number of confidence bins.
func ECE(probs [][]float64, labels []int, bins int) (float64, error) {
	return metrics.ECE(probs, labels, bins)
}

// EvaluateAlerts replays predicted window classes through an alerter and
// scores episode-level detection and false-alert behaviour against the
// ground truth.
func EvaluateAlerts(trueLabels, predicted []int, normalClass, trigger, clear int) (AlertReport, error) {
	return core.EvaluateAlerts(trueLabels, predicted, normalClass, trigger, clear)
}

// Distortion levels (paper §4.3: none / 100×100 / 50×50 / 25×25 paths).
const (
	DistortNone   = collect.DistortNone
	DistortLow    = collect.DistortLow
	DistortMedium = collect.DistortMedium
	DistortHigh   = collect.DistortHigh
)

// ClassNames returns the paper's six class names in order.
func ClassNames() []string {
	out := make([]string, NumClasses)
	for c := 0; c < NumClasses; c++ {
		out[c] = Class(c).String()
	}
	return out
}

// DefaultDatasetConfig returns the calibrated 6-class generation defaults.
func DefaultDatasetConfig() DatasetConfig { return synth.DefaultConfig() }

// DefaultDataset18Config returns the calibrated 18-class generation defaults.
func DefaultDataset18Config() Dataset18Config { return synth.DefaultConfig18() }

// GenerateDataset produces the 6-class multi-modal dataset with Table 1
// class proportions.
func GenerateDataset(cfg DatasetConfig) (*Dataset, error) {
	return synth.GenerateTable1(cfg)
}

// Generate18ClassDataset produces the 18-class image-only dataset used by
// the privacy evaluation.
func Generate18ClassDataset(cfg Dataset18Config) (*Dataset, error) {
	return synth.Generate18Class(cfg)
}

// DefaultEngineTrainConfig returns the calibrated engine-training defaults.
func DefaultEngineTrainConfig() EngineTrainConfig { return core.DefaultTrainConfig() }

// TrainEngine trains the full analytics engine (frame CNN, IMU RNN, IMU SVM,
// and both Bayesian Network combiners) on a 6-class dataset.
func TrainEngine(train *Dataset, cfg EngineTrainConfig) (*Engine, error) {
	return core.Train(train.CoreData(), cfg)
}

// EvaluateEngine computes the paper's Table 2 / Figure 5 results on a test
// dataset.
func EvaluateEngine(eng *Engine, test *Dataset) (*Evaluation, error) {
	return eng.Evaluate(test.CoreData(), ClassNames())
}

// BuildFrameCNN constructs an untrained MicroInception frame classifier.
func BuildFrameCNN(rng *rand.Rand, w, h, classes int, cfg CNNConfig) (*Network, error) {
	return core.BuildFrameCNN(rng, w, h, classes, cfg)
}

// DefaultCNNConfig returns the calibrated CNN defaults.
func DefaultCNNConfig() CNNConfig { return core.DefaultCNNConfig() }

// PaperDistortionRatios are the paper's 300×300-source ratios (3/6/12).
func PaperDistortionRatios() DistortionRatios { return privacy.PaperRatios() }

// CompactDistortionRatios are the ratios used for this reproduction's 32×32
// frames (see privacy.CompactRatios for the rationale).
func CompactDistortionRatios() DistortionRatios { return privacy.CompactRatios() }

// Distort applies a privacy distortion level to a frame.
func Distort(img *Image, level DistortionLevel, ratios DistortionRatios) (*TaggedFrame, error) {
	return privacy.Distort(img, level, ratios)
}

// DefaultDistillConfig returns the calibrated dCNN distillation defaults.
func DefaultDistillConfig() DistillConfig { return privacy.DefaultDistillConfig() }

// Distill trains a dCNN student for one distortion level from a trained
// teacher, unsupervised (paper §4.3).
func Distill(teacher *Network, build func(*rand.Rand) (*Network, error), ds *Dataset, level DistortionLevel, ratios DistortionRatios, rng *rand.Rand, cfg DistillConfig) (*Network, error) {
	return privacy.Distill(teacher, privacy.StudentBuilder(build), ds.Frames(), ds.ImgW, ds.ImgH, level, ratios, rng, cfg)
}

// NewDCNNRouter returns an empty distortion-level router.
func NewDCNNRouter() *DCNNRouter { return privacy.NewRouter() }

// EvaluateNetwork returns Top-1 accuracy of a frame classifier on a dataset,
// optionally distorting the frames first (DistortNone evaluates clean).
func EvaluateNetwork(net *Network, ds *Dataset, level DistortionLevel, ratios DistortionRatios) (float64, error) {
	frames := ds.Frames()
	if level != DistortNone {
		var err error
		frames, err = privacy.DistortRows(frames, ds.ImgW, ds.ImgH, level, ratios)
		if err != nil {
			return 0, err
		}
	}
	return core.EvaluateCNNOnly(net, frames, ds.Labels())
}

// TrainNetwork trains a frame classifier on a dataset's frames with the
// calibrated Adam + weight-decay recipe. progress may be nil.
func TrainNetwork(net *Network, ds *Dataset, epochs int, seed int64, progress func(epoch int, loss float64)) error {
	rng := rand.New(rand.NewSource(seed))
	opt := nn.NewAdam(0.002)
	opt.WeightDecay = 1e-4
	_, err := nn.TrainClassifier(net, opt, rng, ds.Frames(), ds.Labels(), nn.TrainConfig{
		Epochs: epochs, BatchSize: 32, ClipNorm: 5,
		OnEpoch: func(e int, l float64) bool {
			if progress != nil {
				progress(e, l)
			}
			return true
		},
	})
	return err
}

// LoadEngine reconstructs a trained engine from a snapshot written by
// (*Engine).Save.
func LoadEngine(r io.Reader) (*Engine, error) { return core.LoadEngine(r) }

// LoadDataset reads a dataset written by (*Dataset).Save, so the exact
// generated data can be shared across runs and processes.
func LoadDataset(r io.Reader) (*Dataset, error) { return synth.LoadDataset(r) }

// DefaultProcessingPolicy returns the calibrated local/remote policy.
func DefaultProcessingPolicy() ProcessingPolicy { return collect.DefaultProcessingPolicy() }

// FrameSensor adapts a frame source into a camera-agent sensor on the
// reserved frame channel.
func FrameSensor(current func() []float64) Sensor { return collect.FrameSensor(current) }

// NewWireConn frames protocol messages over rw (TCP in deployment).
func NewWireConn(rw io.ReadWriter) *WireConn { return wire.NewConn(rw) }

// NewTSDB returns an empty time-series store.
func NewTSDB() *TSDB { return tsdb.New() }

// NewController returns a collection controller storing into db with master
// time from source.
func NewController(db *TSDB, source TimeSource) *Controller {
	return collect.NewController(db, source)
}

// NewDriftClock returns a device clock over source with the given fractional
// drift rate.
func NewDriftClock(source TimeSource, drift float64) *DriftClock {
	return collect.NewDriftClock(source, drift)
}

// NewManualTime returns a manually advanced time source starting at start.
func NewManualTime(start int64) *ManualTime { return collect.NewManualTime(start) }

// NewAgent returns a collection agent over the given transport connection.
func NewAgent(cfg AgentConfig, clock *DriftClock, sensors []Sensor, conn *WireConn) (*Agent, error) {
	return collect.NewAgent(cfg, clock, sensors, conn)
}

// IMUSensors adapts a sample source into the four IMU collection sensors.
func IMUSensors(current func() IMUSample) []Sensor { return collect.IMUSensors(current) }

// StartAgentRunner sends the agent's hello and starts a managed real-time
// polling/flushing loop; stop it with Shutdown.
func StartAgentRunner(agent *Agent, flushEvery time.Duration, onPoll func()) (*AgentRunner, error) {
	return collect.StartRunner(agent, flushEvery, onPoll)
}

// NewSessionScript builds a scripted collection session from segments.
func NewSessionScript(segments ...ScriptSegment) (*SessionScript, error) {
	return collect.NewSessionScript(segments...)
}

// RemoteClassify ships one aligned (frame, window) observation to a server
// running (*Engine).ServeClassify — the paper's remote configuration — and
// returns the fused classification.
func RemoteClassify(conn *WireConn, frame []float64, w, h int, distortion DistortionLevel, window IMUWindow) (*Classification, error) {
	return core.RemoteClassify(conn, frame, w, h, uint8(distortion), window)
}

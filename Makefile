# DarNet verify gate. `make verify` is the tier-1 check every change must
# pass: formatting, go vet, the project's own static analyzers
# (cmd/darnet-lint), a full build and test sweep, and the race detector over
# the concurrent middleware packages.

GO ?= go

RACE_PKGS = ./internal/collect ./internal/tsdb ./internal/core

.PHONY: verify fmt vet lint build test race

verify: fmt vet lint build test race
	@echo "verify: OK"

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

lint:
	$(GO) run ./cmd/darnet-lint ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race $(RACE_PKGS)

# DarNet verify gate. `make verify` is the tier-1 check every change must
# pass: formatting, go vet, the project's own static analyzers
# (cmd/darnet-lint), a full build and test sweep, and the race detector over
# the concurrent middleware packages.

GO ?= go

RACE_PKGS = ./internal/collect ./internal/tsdb ./internal/core ./internal/telemetry ./internal/fault ./internal/stream ./internal/obs ./internal/durable

# bench-smoke artifact location; override with BENCH_OUT=BENCH_PR3.json to
# refresh the committed benchmark (then bump the scale/epochs back up).
BENCH_OUT ?= /tmp/darnet-bench-smoke.json

# stream-smoke artifact location; override with STREAM_OUT=BENCH_PR7.json to
# refresh the committed streaming benchmark.
STREAM_OUT ?= /tmp/darnet-stream-smoke.json

# obs-smoke artifact location; override with OBS_OUT=BENCH_PR8.json to
# refresh the committed observability-overhead benchmark.
OBS_OUT ?= /tmp/darnet-obs-smoke.json

# crash-smoke artifact location; override with CRASH_OUT=BENCH_PR10.json
# CRASH_SCALE=1 to refresh the committed crash-recovery benchmark.
CRASH_OUT ?= /tmp/darnet-crash-smoke.json
CRASH_SCALE ?= 0.01

.PHONY: verify fmt vet lint lint-module lint-fast lint-concurrency build test race bench-smoke stream-smoke obs-smoke crash-smoke chaos

# The module-scope lint sweep in verify must finish inside this many
# milliseconds: the analyzers are part of the inner loop, and a regression
# in IR construction or summary linking should fail the gate, not silently
# tax every future build.
LINT_BUDGET_MS ?= 2000

verify: fmt vet lint build test race stream-smoke obs-smoke crash-smoke
	@echo "verify: OK"

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# lint runs the full analyzer registry at module scope (the default): the
# packages are linked in dependency order, goleak/lockorder/hotalloc/ctxprop
# follow calls across package boundaries, and the module-only analyzers
# (shapeflow, chanlife, atomicmix, qbound) run. Per-analyzer and per-phase
# wall time go to stderr, and the sweep itself — binary prebuilt so compile
# time doesn't count — must finish inside LINT_BUDGET_MS.
# lint-module is the same gate spelled explicitly (CI calls it for the
# artifact upload); lint-fast drops to per-package scope and skips the
# interprocedural analyzers — the quick inner-loop check; lint-concurrency
# runs only the three concurrency analyzers.
lint:
	@$(GO) build -o /tmp/darnet-lint-verify ./cmd/darnet-lint
	@start=$$(date +%s%N); /tmp/darnet-lint-verify -timings ./...; rc=$$?; \
	ms=$$(( ($$(date +%s%N) - start) / 1000000 )); \
	if [ $$rc -ne 0 ]; then exit $$rc; fi; \
	echo "lint: module sweep took $${ms}ms (budget $(LINT_BUDGET_MS)ms)"; \
	if [ $$ms -gt $(LINT_BUDGET_MS) ]; then \
		echo "lint: exceeded the $(LINT_BUDGET_MS)ms wall-time budget"; exit 1; \
	fi

lint-module:
	$(GO) run ./cmd/darnet-lint -ipa=module -timings ./...

lint-fast:
	$(GO) run ./cmd/darnet-lint -ipa=pkg -skip goleak,lockorder,hotalloc,ctxprop ./...

lint-concurrency:
	$(GO) run ./cmd/darnet-lint -ipa=module -only chanlife,atomicmix,qbound ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race $(RACE_PKGS)

# bench-smoke trains a deliberately tiny configuration, probes the serving
# path, writes the machine-readable benchmark, and validates its schema. The
# committed BENCH_PR3.json is produced at default scale/epochs instead.
bench-smoke:
	$(GO) run ./cmd/darnet-eval -exp bench -scale 0.012 -cnn-epochs 2 -rnn-epochs 2 -q -bench-out $(BENCH_OUT)
	$(GO) run ./cmd/darnet-eval -check-bench $(BENCH_OUT)

# stream-smoke drives the streaming classification pipeline to saturation
# (offered input >= 2x classify capacity), writes the machine-readable
# report, and validates it: bounded queue depth, counted sheds/skips, a live
# alert-latency distribution. The committed BENCH_PR7.json uses these flags.
stream-smoke:
	$(GO) run ./cmd/darnet-eval -exp stream -scale 0.01 -cnn-epochs 2 -rnn-epochs 2 -q -bench-out $(STREAM_OUT)
	$(GO) run ./cmd/darnet-eval -check-bench $(STREAM_OUT)

# obs-smoke measures the observability tax: the saturating stream workload
# with tracing+scraping off (baseline) vs. on (instrumented), validated to
# stay within the 5% overhead budget. The committed BENCH_PR8.json is
# produced at a larger scale with the same flags.
obs-smoke:
	$(GO) run ./cmd/darnet-eval -exp obs -scale 0.01 -cnn-epochs 2 -rnn-epochs 2 -q -bench-out $(OBS_OUT)
	$(GO) run ./cmd/darnet-eval -check-bench $(OBS_OUT)

# crash-smoke runs the crash-recovery benchmark at reduced scale: per-policy
# WAL insert overhead, measured power-cut loss checked against each fsync
# policy's bound, timed recovery, and the torn-tail/bit-flip/sync-failure
# injection matrix, validated by -check-bench. The committed BENCH_PR10.json
# is the same experiment at -scale 1 (10^6 readings).
crash-smoke:
	$(GO) run ./cmd/darnet-eval -exp crash -scale $(CRASH_SCALE) -q -bench-out $(CRASH_OUT)
	$(GO) run ./cmd/darnet-eval -check-bench $(CRASH_OUT)

# chaos runs the fault-injection suite under the race detector: the
# deterministic chaos-transport and disk-fault unit tests, the collect
# resilience tests, and the end-to-end chaos pipelines — reconnect/backoff,
# at-least-once dedupe, degraded classification, and the crash-restart test
# (controller hard-killed mid-stream, recovered from its data directory,
# zero duplicate rows). It then replays the chaos benchmark schedule and
# validates the report schema.
chaos:
	$(GO) test -race ./internal/fault ./internal/collect
	$(GO) test -race -run 'TestChaosPipeline|TestCrashRestartPreservesDedupe' .
	$(GO) run ./cmd/darnet-eval -exp chaos -bench-out /tmp/darnet-chaos-bench.json
	$(GO) run ./cmd/darnet-eval -check-bench /tmp/darnet-chaos-bench.json

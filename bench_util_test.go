package darnet

import (
	"bytes"
	"io"

	"darnet/internal/wire"
)

// benchDuplex is an in-memory bidirectional stream for benchmarks.
type benchDuplex struct {
	io.Reader
	io.Writer
}

// benchPipe returns two wire connections sharing in-memory buffers.
func benchPipe() (*wire.Conn, *wire.Conn) {
	aToB := &bytes.Buffer{}
	bToA := &bytes.Buffer{}
	a := wire.NewConn(benchDuplex{Reader: bToA, Writer: aToB})
	b := wire.NewConn(benchDuplex{Reader: aToB, Writer: bToA})
	return a, b
}

// Quickstart: generate a small synthetic dataset, train the DarNet analytics
// engine (frame CNN + IMU BiLSTM + SVM + Bayesian Network combiner), and
// classify a held-out multi-modal observation.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"darnet"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Generate a small 6-class dataset (2% of the paper's frame counts).
	cfg := darnet.DefaultDatasetConfig()
	cfg.Scale = 0.02
	ds, err := darnet.GenerateDataset(cfg)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(1))
	train, test, err := ds.Split(rng, 0.2)
	if err != nil {
		return err
	}
	fmt.Printf("dataset: %d train / %d test samples across %d classes\n",
		train.Len(), test.Len(), darnet.NumClasses)

	// Train the full engine with reduced epochs for a fast demo.
	tc := darnet.DefaultEngineTrainConfig()
	tc.CNNEpochs = 6
	tc.RNNEpochs = 4
	tc.Progress = func(stage string, epoch int, loss float64) {
		fmt.Printf("  training %-8s epoch %d  loss %.3f\n", stage, epoch, loss)
	}
	eng, err := darnet.TrainEngine(train, tc)
	if err != nil {
		return err
	}

	// Classify one held-out observation through the fused pipeline.
	sample := test.Samples[0]
	result, err := eng.Classify(sample.Frame.Pix, sample.Window)
	if err != nil {
		return err
	}
	fmt.Printf("\ntrue behaviour:      %v\n", sample.Class)
	fmt.Printf("DarNet (CNN+RNN+BN): %v\n", darnet.Class(result.Class))
	fmt.Printf("CNN alone said:      %v\n", argmaxClass(result.CNNProbs))
	fmt.Printf("fused posterior:\n")
	for c, p := range result.Probs {
		fmt.Printf("  %-17s %.3f\n", darnet.Class(c), p)
	}
	return nil
}

func argmaxClass(probs []float64) darnet.Class {
	best, bi := probs[0], 0
	for i, p := range probs[1:] {
		if p > best {
			best, bi = p, i+1
		}
	}
	return darnet.Class(bi)
}

// End-to-end pipeline: DarNet's collection middleware feeding its analytics
// engine. An IMU agent (with a drifting clock) streams a scripted distraction
// session to the centralized controller over loopback TCP; the controller
// aggregates into the time-series store, keeps the agent's clock
// synchronized, and aligns the channels; the aligned stream is segmented
// into windows and classified by the IMU sequence model.
//
//	go run ./examples/pipeline
package main

import (
	"fmt"
	"log"
	"math/rand"
	"net"
	"sync"

	"darnet/internal/collect"
	"darnet/internal/core"
	"darnet/internal/imu"
	"darnet/internal/nn"
	"darnet/internal/rnn"
	"darnet/internal/synth"
	"darnet/internal/tensor"
	"darnet/internal/tsdb"
	"darnet/internal/wire"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	rng := rand.New(rand.NewSource(21))

	// 1. Train a compact IMU classifier to run behind the controller.
	fmt.Println("training IMU sequence classifier...")
	cls, stats, err := trainIMUModel(rng)
	if err != nil {
		return err
	}

	// 2. Script a driving session: 4 segments of 10 s each at 4 Hz.
	script := []synth.Class{synth.NormalDriving, synth.Texting, synth.NormalDriving, synth.Talking}
	session := scriptSession(rng, script, 10*imu.SampleRateHz)
	fmt.Printf("scripted session: %v (%d samples)\n", script, len(session))

	// 3. Stream the session through an agent to the controller over TCP,
	// with simulated time so the run is instant and deterministic.
	mt := collect.NewManualTime(1_000_000)
	db := tsdb.New()
	ctrl := collect.NewController(db, mt.Now)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer ln.Close()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		if err := ctrl.ServeConn(wire.NewConn(conn)); err != nil {
			log.Printf("controller: %v", err)
		}
	}()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		return err
	}
	clock := collect.NewDriftClock(mt.Now, 0.004) // 4 ms/s drift
	cursor := 0
	sensors := collect.IMUSensors(func() imu.Sample { return session[cursor] })
	agent, err := collect.NewAgent(collect.AgentConfig{
		ID: "phone", Modality: "imu", PollPeriodMS: 250, LatencyComp: 1,
	}, clock, sensors, wire.NewConn(conn))
	if err != nil {
		return err
	}
	if err := agent.Hello(); err != nil {
		return err
	}

	// A second agent emulates the dashcam, streaming a frame every second on
	// the reserved frame channel.
	camConnRaw, camErr := net.Dial("tcp", ln.Addr().String())
	if camErr != nil {
		return camErr
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		conn2, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn2.Close()
		if err := ctrl.ServeConn(wire.NewConn(conn2)); err != nil {
			log.Printf("controller(cam): %v", err)
		}
	}()
	camClock := collect.NewDriftClock(mt.Now, 0.001)
	driver := synth.NewDriverProfile(rng)
	camAgent, err := collect.NewAgent(collect.AgentConfig{
		ID: "dashcam", Modality: "camera", PollPeriodMS: 1000,
	}, camClock, []collect.Sensor{collect.FrameSensor(func() []float64 {
		segment := script[min(cursor/(10*imu.SampleRateHz), len(script)-1)]
		return synth.RenderScene(rng, 32, 32, segment, driver, synth.DefaultAmbiguity()).Pix
	})}, wire.NewConn(camConnRaw))
	if err != nil {
		return err
	}
	if err := camAgent.Hello(); err != nil {
		return err
	}

	for cursor = 0; cursor < len(session); cursor++ {
		agent.Poll()
		if cursor%imu.SampleRateHz == 0 { // 1 fps dashcam
			camAgent.Poll()
		}
		mt.Advance(250) // 4 Hz
		if cursor%40 == 39 {
			if err := agent.Flush(); err != nil {
				return err
			}
			if err := camAgent.Flush(); err != nil {
				return err
			}
		}
	}
	if err := agent.Flush(); err != nil {
		return err
	}
	if err := camAgent.Flush(); err != nil {
		return err
	}
	fmt.Printf("streamed %d IMU samples and %d frames; phone clock skew after sync: %d ms\n",
		len(session), ctrl.FrameCount("dashcam"), agent.ClockSkewMillis())
	conn.Close()
	camConnRaw.Close()
	wg.Wait()

	// 4. The controller's engine bridge aligns the stored series onto the
	// 4 Hz grid and reassembles the paper's 20-step windows.
	windows, err := ctrl.AssembleIMUWindows("phone", 1)
	if err != nil {
		return err
	}

	// 5. Classify each window, pairing it with the nearest dashcam frame
	// (the cross-modality alignment the fused classifier consumes), and feed
	// the stream through the real-time alerter.
	fmt.Printf("assembled %d windows; classifying:\n", len(windows))
	names := []string{"normal", "talking", "texting"}
	alerter, err := core.NewAlerter(synth.IMUNormal, 2, 2)
	if err != nil {
		return err
	}
	for i, w := range windows {
		pred, err := cls.Predict(stats.Normalize(w))
		if err != nil {
			return err
		}
		mid := w.Samples[len(w.Samples)/2].TimestampMillis
		frame, err := ctrl.FrameNear("dashcam", mid, 0)
		if err != nil {
			return err
		}
		event := alerter.Observe(pred)
		note := ""
		switch event {
		case core.AlertRaised:
			note = "  << DISTRACTION ALERT RAISED"
		case core.AlertCleared:
			note = "  << alert cleared"
		}
		start := i * imu.WindowSize
		segment := script[min(start/(10*imu.SampleRateHz), len(script)-1)]
		fmt.Printf("  t=%3d..%3ds  predicted %-8s (scripted: %v; paired frame @%d ms, %d px)%s\n",
			start/imu.SampleRateHz, (start+imu.WindowSize)/imu.SampleRateHz,
			names[pred], segment, frame.TimestampMillis, len(frame.Pix), note)
	}
	return nil
}

// trainIMUModel trains a small BiLSTM on synthetic windows.
func trainIMUModel(rng *rand.Rand) (*rnn.Classifier, *imu.Stats, error) {
	cfg := synth.DefaultConfig()
	cfg.Scale = 0.01
	ds, err := synth.GenerateTable1(cfg)
	if err != nil {
		return nil, nil, err
	}
	stats, err := imu.FitStats(ds.IMUWindows())
	if err != nil {
		return nil, nil, err
	}
	seqs := make([]*tensor.Tensor, ds.Len())
	for i, w := range ds.IMUWindows() {
		seqs[i] = stats.Normalize(w)
	}
	cls, err := rnn.NewClassifier("imu", rng, rnn.Config{
		Input: imu.FeatureDim, Hidden: 24, Layers: 1, Classes: synth.NumIMUClasses,
	})
	if err != nil {
		return nil, nil, err
	}
	if _, err := cls.Train(nn.NewAdam(0.005), rng, seqs, ds.IMULabels(), rnn.TrainConfig{
		Epochs: 6, BatchSize: 16, ClipNorm: 5,
	}); err != nil {
		return nil, nil, err
	}
	return cls, stats, nil
}

// scriptSession concatenates per-class IMU segments of segLen steps each.
func scriptSession(rng *rand.Rand, script []synth.Class, segLen int) []imu.Sample {
	var out []imu.Sample
	gen := synth.DefaultIMUGen()
	gen.TransitionProb = 0 // segments are pure; transitions come from the script itself
	for _, c := range script {
		var seg []imu.Sample
		for len(seg) < segLen {
			seg = append(seg, synth.GenerateWindow(rng, c, gen).Samples...)
		}
		out = append(out, seg[:segLen]...)
	}
	return out
}

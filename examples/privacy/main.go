// Privacy demo: render a driver frame, apply the three distortion levels
// (paper Figure 4), pick a level from simulated network conditions, train a
// dCNN student by unsupervised distillation, and route tagged frames to the
// matching classifier (paper §4.3, Figure 3).
//
//	go run ./examples/privacy
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"

	"darnet"
	"darnet/internal/synth"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	rng := rand.New(rand.NewSource(11))

	// 1. The distortion ladder on one frame, written as PNGs.
	driver := synth.NewDriverProfile(rng)
	amb := synth.DefaultAmbiguity()
	amb.NoiseSigma = 0.03
	frame := synth.RenderScene(rng, 300, 300, darnet.Texting, driver, amb)
	outDir := "privacy-frames"
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	for _, level := range []darnet.DistortionLevel{
		darnet.DistortNone, darnet.DistortLow, darnet.DistortMedium, darnet.DistortHigh,
	} {
		tagged, err := darnet.Distort(frame, level, darnet.PaperDistortionRatios())
		if err != nil {
			return err
		}
		path := filepath.Join(outDir, fmt.Sprintf("distort-%v.png", level))
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		err = tagged.Image.WritePNG(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", path)
	}

	// 2. The controller's processing decision picks a distortion level from
	// network conditions (paper §3.2).
	policy := darnet.DefaultProcessingPolicy()
	for _, net := range []darnet.NetworkConditions{
		{BandwidthKbps: 5000, LatencyMillis: 40},
		{BandwidthKbps: 300, LatencyMillis: 80},
		{BandwidthKbps: 30, LatencyMillis: 120},
		{BandwidthKbps: 8, LatencyMillis: 50},
	} {
		mode, level := policy.Decide(net)
		fmt.Printf("link %5.0f kbps / %3.0f ms -> process %-6v distortion %v\n",
			net.BandwidthKbps, net.LatencyMillis, mode, level)
	}

	// 3. Unsupervised dCNN distillation on a small 18-class set.
	cfg := darnet.DefaultDataset18Config()
	cfg.PerClass = 80
	ds, err := darnet.Generate18ClassDataset(cfg)
	if err != nil {
		return err
	}
	train, test, err := ds.Split(rng, 0.2)
	if err != nil {
		return err
	}

	cnnCfg := darnet.DefaultCNNConfig()
	teacher, err := darnet.BuildFrameCNN(rng, cfg.ImgW, cfg.ImgH, 18, cnnCfg)
	if err != nil {
		return err
	}
	fmt.Println("\ntraining teacher CNN on clean frames...")
	if err := darnet.TrainNetwork(teacher, train, 16, 3, nil); err != nil {
		return err
	}
	teacherAcc, err := darnet.EvaluateNetwork(teacher, test, darnet.DistortNone, darnet.CompactDistortionRatios())
	if err != nil {
		return err
	}

	fmt.Println("distilling dCNN-L from the teacher (no labels used)...")
	build := func(rng *rand.Rand) (*darnet.Network, error) {
		return darnet.BuildFrameCNN(rng, cfg.ImgW, cfg.ImgH, 18, cnnCfg)
	}
	dc := darnet.DefaultDistillConfig()
	dc.Epochs = 8
	student, err := darnet.Distill(teacher, build, train, darnet.DistortLow, darnet.CompactDistortionRatios(), rng, dc)
	if err != nil {
		return err
	}
	studentAcc, err := darnet.EvaluateNetwork(student, test, darnet.DistortLow, darnet.CompactDistortionRatios())
	if err != nil {
		return err
	}
	fmt.Printf("teacher CNN on clean frames:     %.1f%%\n", teacherAcc*100)
	fmt.Printf("dCNN-L on down-sampled frames:   %.1f%%\n", studentAcc*100)

	// 4. Tagged routing: the remote server picks the classifier by tag.
	router := darnet.NewDCNNRouter()
	router.Register(darnet.DistortNone, teacher)
	router.Register(darnet.DistortLow, student)
	smallFrame := test.Samples[0].Frame
	tagged, err := darnet.Distort(smallFrame, darnet.DistortLow, darnet.CompactDistortionRatios())
	if err != nil {
		return err
	}
	probs, err := router.Classify(tagged)
	if err != nil {
		return err
	}
	best, bi := probs[0], 0
	for i, p := range probs[1:] {
		if p > best {
			best, bi = p, i+1
		}
	}
	fmt.Printf("routed a %v-tagged frame: predicted class %d (p=%.2f), true class %d\n",
		tagged.Level, bi, best, int(test.Samples[0].Class))
	return nil
}

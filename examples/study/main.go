// Study: the paper's §5.1 data-collection protocol end to end — a scripted
// distraction session ("perform a scripted set of distractions for 15
// seconds, repeated") is streamed through the collection middleware, the
// collected windows are labelled from the script (the offline verification
// step), and the labelled windows train an IMU classifier that is evaluated
// on a second, held-out scripted session.
//
//	go run ./examples/study
package main

import (
	"fmt"
	"log"
	"math/rand"
	"net"
	"sync"

	"darnet/internal/collect"
	"darnet/internal/core"
	"darnet/internal/imu"
	"darnet/internal/nn"
	"darnet/internal/rnn"
	"darnet/internal/synth"
	"darnet/internal/tensor"
	"darnet/internal/tsdb"
	"darnet/internal/wire"
)

const segmentMillis = 15_000 // the paper's 15-second distraction segments

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	rng := rand.New(rand.NewSource(99))

	// The scripted distraction set, repeated as in the paper's protocol.
	base, err := collect.NewSessionScript(
		collect.ScriptSegment{Label: synth.IMUNormal, DurationMillis: segmentMillis},
		collect.ScriptSegment{Label: synth.IMUTalk, DurationMillis: segmentMillis},
		collect.ScriptSegment{Label: synth.IMUNormal, DurationMillis: segmentMillis},
		collect.ScriptSegment{Label: synth.IMUText, DurationMillis: segmentMillis},
	)
	if err != nil {
		return err
	}
	script, err := base.Repeat(4)
	if err != nil {
		return err
	}
	fmt.Printf("script: %d segments, %d s total\n", len(script.Segments), script.TotalMillis()/1000)

	// Collect two sessions: one to train on, one to evaluate on.
	trainWindows, trainStart, err := collectSession(rng, script, 0.003)
	if err != nil {
		return err
	}
	testWindows, testStart, err := collectSession(rng, script, 0.005)
	if err != nil {
		return err
	}
	trainLabels, err := script.LabelWindows(trainStart, trainWindows)
	if err != nil {
		return err
	}
	testLabels, err := script.LabelWindows(testStart, testWindows)
	if err != nil {
		return err
	}
	fmt.Printf("collected and labelled %d train / %d test windows\n", len(trainWindows), len(testWindows))

	// Train the IMU sequence classifier on the labelled collection.
	stats, err := imu.FitStats(trainWindows)
	if err != nil {
		return err
	}
	seqs := make([]*tensor.Tensor, len(trainWindows))
	for i, w := range trainWindows {
		seqs[i] = stats.Normalize(w)
	}
	cls, err := rnn.NewClassifier("study", rng, rnn.Config{
		Input: imu.FeatureDim, Hidden: 24, Layers: 1, Classes: synth.NumIMUClasses,
	})
	if err != nil {
		return err
	}
	fmt.Println("training on the collected session...")
	if _, err := cls.Train(nn.NewAdam(0.005), rng, seqs, trainLabels, rnn.TrainConfig{
		Epochs: 12, BatchSize: 8, ClipNorm: 5,
	}); err != nil {
		return err
	}

	// Evaluate on the held-out session, per window and per episode.
	hits := 0
	preds := make([]int, len(testWindows))
	for i, w := range testWindows {
		pred, err := cls.Predict(stats.Normalize(w))
		if err != nil {
			return err
		}
		preds[i] = pred
		if pred == testLabels[i] {
			hits++
		}
	}
	fmt.Printf("held-out session accuracy: %.1f%% (%d/%d windows)\n",
		100*float64(hits)/float64(len(testWindows)), hits, len(testWindows))

	report, err := core.EvaluateAlerts(testLabels, preds, synth.IMUNormal, 2, 2)
	if err != nil {
		return err
	}
	fmt.Printf("alerting: %d/%d distraction episodes detected (mean delay %.1f windows), %d false alerts\n",
		report.Detected, report.Episodes, report.MeanDetectionDelay, report.FalseAlerts)
	return nil
}

// collectSession streams one scripted session through an agent → controller
// pair over loopback TCP (simulated time) and returns the assembled windows
// plus the session start time for labelling.
func collectSession(rng *rand.Rand, script *collect.SessionScript, drift float64) ([]imu.Window, int64, error) {
	mt := collect.NewManualTime(1_000_000)
	start := mt.Now()
	db := tsdb.New()
	ctrl := collect.NewController(db, mt.Now)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, 0, err
	}
	defer ln.Close()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		if err := ctrl.ServeConn(wire.NewConn(conn)); err != nil {
			log.Printf("controller: %v", err)
		}
	}()
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		return nil, 0, err
	}

	// The "driver" performs whatever the script says at the current moment;
	// the generator provides the matching IMU signature.
	gen := synth.DefaultIMUGen()
	gen.TransitionProb = 0
	var window imu.Window
	stepInWindow := 0
	currentLabel := -1
	sample := func() imu.Sample {
		label, ok := script.LabelAt(mt.Now() - start)
		if !ok {
			label = synth.IMUNormal
		}
		if label != currentLabel || stepInWindow >= len(window.Samples) {
			class := synth.NormalDriving
			switch label {
			case synth.IMUTalk:
				class = synth.Talking
			case synth.IMUText:
				class = synth.Texting
			}
			window = synth.GenerateWindow(rng, class, gen)
			stepInWindow = 0
			currentLabel = label
		}
		s := window.Samples[stepInWindow]
		stepInWindow++
		return s
	}
	clock := collect.NewDriftClock(mt.Now, drift)
	agent, err := collect.NewAgent(collect.AgentConfig{
		ID: "phone", Modality: "imu", PollPeriodMS: 250,
	}, clock, collect.IMUSensors(sample), wire.NewConn(conn))
	if err != nil {
		return nil, 0, err
	}
	if err := agent.Hello(); err != nil {
		return nil, 0, err
	}

	steps := int(script.TotalMillis() / (1000 / imu.SampleRateHz))
	for i := 0; i < steps; i++ {
		agent.Poll()
		mt.Advance(1000 / imu.SampleRateHz)
		if i%40 == 39 {
			if err := agent.Flush(); err != nil {
				return nil, 0, err
			}
		}
	}
	if err := agent.Flush(); err != nil {
		return nil, 0, err
	}
	conn.Close()
	wg.Wait()

	windows, err := ctrl.AssembleIMUWindows("phone", 1)
	if err != nil {
		return nil, 0, err
	}
	return windows, start, nil
}

// IMU-only comparison: train the paper's deep bidirectional LSTM and the SVM
// baseline on IMU windows alone and compare them (paper §5.2: RNN 97.44% vs
// SVM 95.37%), including a unidirectional-LSTM ablation.
//
//	go run ./examples/imudrive
package main

import (
	"fmt"
	"log"
	"math/rand"

	"darnet/internal/imu"
	"darnet/internal/metrics"
	"darnet/internal/nn"
	"darnet/internal/rnn"
	"darnet/internal/svm"
	"darnet/internal/synth"
	"darnet/internal/tensor"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cfg := synth.DefaultConfig()
	cfg.Scale = 0.02
	ds, err := synth.GenerateTable1(cfg)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(7))
	train, test, err := ds.Split(rng, 0.2)
	if err != nil {
		return err
	}

	stats, err := imu.FitStats(train.IMUWindows())
	if err != nil {
		return err
	}
	trainSeqs := normalize(stats, train.IMUWindows())
	testSeqs := normalize(stats, test.IMUWindows())
	trainLabels, testLabels := train.IMULabels(), test.IMULabels()
	fmt.Printf("IMU windows: %d train / %d test, %d steps x %d features each\n",
		len(trainSeqs), len(testSeqs), imu.WindowSize, imu.FeatureDim)

	// Deep bidirectional LSTM (the paper's architecture: 2 layers, 64 units).
	bi, err := rnn.NewClassifier("bilstm", rng, rnn.Config{
		Input: imu.FeatureDim, Hidden: 64, Layers: 2, Classes: synth.NumIMUClasses,
	})
	if err != nil {
		return err
	}
	fmt.Printf("training BiLSTM (%d parameters)...\n", bi.NumParams())
	if _, err := bi.Train(nn.NewAdam(0.003), rng, trainSeqs, trainLabels, rnn.TrainConfig{
		Epochs: 8, BatchSize: 16, ClipNorm: 5,
	}); err != nil {
		return err
	}
	biAcc, err := bi.Evaluate(testSeqs, testLabels)
	if err != nil {
		return err
	}

	// Unidirectional ablation at the same width.
	uni, err := rnn.NewClassifier("lstm", rng, rnn.Config{
		Input: imu.FeatureDim, Hidden: 64, Layers: 2, Classes: synth.NumIMUClasses,
		Unidirectional: true,
	})
	if err != nil {
		return err
	}
	fmt.Printf("training unidirectional LSTM (%d parameters)...\n", uni.NumParams())
	if _, err := uni.Train(nn.NewAdam(0.003), rng, trainSeqs, trainLabels, rnn.TrainConfig{
		Epochs: 8, BatchSize: 16, ClipNorm: 5,
	}); err != nil {
		return err
	}
	uniAcc, err := uni.Evaluate(testSeqs, testLabels)
	if err != nil {
		return err
	}

	// Linear SVM baseline on flattened windows.
	fmt.Println("training SVM baseline...")
	trainFlat := flatten(stats, train.IMUWindows())
	testFlat := flatten(stats, test.IMUWindows())
	svmCls, err := svm.Train(rng, trainFlat, trainLabels, synth.NumIMUClasses, svm.TrainConfig{
		Epochs: 25, LR: 0.01, Lambda: 1e-4,
	})
	if err != nil {
		return err
	}
	svmAcc, err := svmCls.Evaluate(testFlat, testLabels)
	if err != nil {
		return err
	}

	fmt.Println()
	table, err := metrics.Table(
		[]string{"BiLSTM (paper RNN)", "LSTM (unidirectional)", "SVM (baseline)"},
		[]float64{biAcc, uniAcc, svmAcc},
	)
	if err != nil {
		return err
	}
	fmt.Print(table)
	fmt.Println("\npaper reference: RNN 97.44%, SVM 95.37%")
	return nil
}

func normalize(stats *imu.Stats, windows []imu.Window) []*tensor.Tensor {
	out := make([]*tensor.Tensor, len(windows))
	for i, w := range windows {
		out[i] = stats.Normalize(w)
	}
	return out
}

func flatten(stats *imu.Stats, windows []imu.Window) *tensor.Tensor {
	out := tensor.New(len(windows), imu.WindowSize*imu.FeatureDim)
	for i, w := range windows {
		copy(out.Row(i), stats.NormalizeFlat(w))
	}
	return out
}

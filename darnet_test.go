package darnet

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
)

func TestClassNames(t *testing.T) {
	names := ClassNames()
	if len(names) != NumClasses {
		t.Fatalf("got %d class names", len(names))
	}
	if names[0] != "Normal Driving" || names[5] != "Reaching" {
		t.Fatalf("names = %v", names)
	}
}

func TestGenerateDatasetFacade(t *testing.T) {
	cfg := DefaultDatasetConfig()
	cfg.Scale = 0.002
	ds, err := GenerateDataset(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Classes != NumClasses {
		t.Fatalf("classes = %d", ds.Classes)
	}
	cfg18 := DefaultDataset18Config()
	cfg18.PerClass = 2
	ds18, err := Generate18ClassDataset(cfg18)
	if err != nil {
		t.Fatal(err)
	}
	if ds18.Classes != 18 {
		t.Fatalf("18-class dataset has %d classes", ds18.Classes)
	}
}

func TestEngineFacadeEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("training test skipped in -short mode")
	}
	cfg := DefaultDatasetConfig()
	cfg.Scale = 0.004
	ds, err := GenerateDataset(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	train, test, err := ds.Split(rng, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	tc := DefaultEngineTrainConfig()
	tc.CNNEpochs = 2
	tc.RNNEpochs = 1
	tc.RNNHidden = 8
	tc.RNNLayers = 1
	tc.SVMEpochs = 3
	eng, err := TrainEngine(train, tc)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := EvaluateEngine(eng, test)
	if err != nil {
		t.Fatal(err)
	}
	if ev.ConfusionCNNRNN.Total() != test.Len() {
		t.Fatalf("evaluation covered %d of %d samples", ev.ConfusionCNNRNN.Total(), test.Len())
	}

	// Snapshot round trip through the facade.
	var buf bytes.Buffer
	if err := eng.Save(&buf, tc.CNN, tc.RNNHidden, tc.RNNLayers); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadEngine(&buf)
	if err != nil {
		t.Fatal(err)
	}
	s := test.Samples[0]
	a, err := eng.Classify(s.Frame.Pix, s.Window)
	if err != nil {
		t.Fatal(err)
	}
	b, err := loaded.Classify(s.Frame.Pix, s.Window)
	if err != nil {
		t.Fatal(err)
	}
	if a.Class != b.Class {
		t.Fatal("loaded engine disagrees with original")
	}
}

func TestDistortFacade(t *testing.T) {
	cfg := DefaultDatasetConfig()
	cfg.Scale = 0.002
	ds, err := GenerateDataset(cfg)
	if err != nil {
		t.Fatal(err)
	}
	frame := ds.Samples[0].Frame
	tagged, err := Distort(frame, DistortMedium, CompactDistortionRatios())
	if err != nil {
		t.Fatal(err)
	}
	if tagged.Level != DistortMedium || tagged.Image.W != frame.W {
		t.Fatalf("tagged = %+v", tagged.Level)
	}
	pr := PaperDistortionRatios()
	if pr.Low != 3 || pr.Medium != 6 || pr.High != 12 {
		t.Fatalf("paper ratios = %+v", pr)
	}
}

func TestBuildAndTrainNetworkFacade(t *testing.T) {
	if testing.Short() {
		t.Skip("training test skipped in -short mode")
	}
	cfg := DefaultDataset18Config()
	cfg.PerClass = 4
	ds, err := Generate18ClassDataset(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	net, err := BuildFrameCNN(rng, cfg.ImgW, cfg.ImgH, 18, DefaultCNNConfig())
	if err != nil {
		t.Fatal(err)
	}
	epochs := 0
	if err := TrainNetwork(net, ds, 1, 2, func(e int, l float64) { epochs++ }); err != nil {
		t.Fatal(err)
	}
	if epochs != 1 {
		t.Fatalf("progress saw %d epochs", epochs)
	}
	acc, err := EvaluateNetwork(net, ds, DistortNone, CompactDistortionRatios())
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0 || acc > 1 || math.IsNaN(acc) {
		t.Fatalf("accuracy = %g", acc)
	}
}

func TestProcessingPolicyFacade(t *testing.T) {
	p := DefaultProcessingPolicy()
	mode, level := p.Decide(NetworkConditions{BandwidthKbps: 5000, LatencyMillis: 10})
	if level != DistortNone {
		t.Fatalf("fat pipe level = %v", level)
	}
	_ = mode
}

func TestAlerterFacade(t *testing.T) {
	a, err := NewAlerter(int(NormalDriving), 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ev := a.Observe(int(Texting)); ev != AlertNone {
		t.Fatalf("first distracted window = %v", ev)
	}
	if ev := a.Observe(int(Texting)); ev != AlertRaised {
		t.Fatalf("second distracted window = %v", ev)
	}
	if ev := a.Observe(int(NormalDriving)); ev != AlertCleared {
		t.Fatalf("normal window = %v", ev)
	}
}

func TestMultiCombinerFacade(t *testing.T) {
	mc, err := NewMultiCombiner(2, []int{2, 2})
	if err != nil {
		t.Fatal(err)
	}
	labels := []int{0, 1, 0, 1}
	if err := mc.Fit(labels, [][]int{{0, 1, 0, 1}, {0, 1, 0, 1}}, 0.5); err != nil {
		t.Fatal(err)
	}
	pred, err := mc.Predict([][]float64{{0.9, 0.1}, {0.8, 0.2}})
	if err != nil {
		t.Fatal(err)
	}
	if pred != 0 {
		t.Fatalf("predicted %d", pred)
	}
}

func TestDatasetKFoldFacade(t *testing.T) {
	cfg := DefaultDatasetConfig()
	cfg.Scale = 0.002
	ds, err := GenerateDataset(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	folds, err := ds.KFold(rng, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(folds) != 3 {
		t.Fatalf("folds = %d", len(folds))
	}
	drivers := ds.Drivers()
	if len(drivers) == 0 {
		t.Fatal("no drivers")
	}
	train, test, err := ds.SplitByDriver(drivers[0])
	if err != nil {
		t.Fatal(err)
	}
	if train.Len()+test.Len() != ds.Len() {
		t.Fatal("driver split loses samples")
	}
}

package darnet

// Crash-restart integration test: the chaos suite's durability counterpart.
// An agent streams strictly increasing readings into a controller whose store
// is backed by the write-ahead log; the controller is hard-stopped mid-stream
// (listener and connections killed, no shutdown checkpoint — a kill -9), a
// second controller recovers from the same data directory, and the
// reconnecting agent's retransmissions must be deduped by the recovered
// high-water marks: every pre-crash acked reading survives and no reading is
// stored twice.

import (
	"math"
	"net"
	"sync"
	"testing"
	"time"

	"darnet/internal/collect"
	"darnet/internal/durable"
	"darnet/internal/tsdb"
	"darnet/internal/wire"
)

// crashStack is one controller generation over a shared data directory.
type crashStack struct {
	db   *tsdb.DB
	ctrl *collect.Controller
	man  *durable.Manager
	rec  *durable.Recovery
	ln   net.Listener

	mu    sync.Mutex
	conns map[net.Conn]struct{}
	wg    sync.WaitGroup
}

// startCrashStack opens the durable store under dir (recovering whatever the
// previous generation left), wires the controller, and serves on addr
// ("127.0.0.1:0" for the first generation, the recorded address afterwards so
// the agent's redial schedule finds the restarted controller).
func startCrashStack(t *testing.T, dir, addr string) *crashStack {
	t.Helper()
	fs, err := durable.NewDirFS(dir)
	if err != nil {
		t.Fatal(err)
	}
	s := &crashStack{db: tsdb.New(), conns: make(map[net.Conn]struct{})}
	s.man, s.rec, err = durable.Open(s.db, durable.Options{
		FS: fs, Policy: durable.PolicyAlways, CheckpointEvery: -1, Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.ctrl = collect.NewController(s.db, func() int64 { return time.Now().UnixMilli() })
	s.ctrl.RestoreSessions(s.rec.Sessions)
	s.ctrl.RestoreFrames(s.rec.Frames)
	s.ctrl.SetCommitLog(s.man)
	s.man.SetSessionSource(s.ctrl.SessionSnapshot)
	s.man.SetFrameSource(s.ctrl.FrameSnapshot)

	s.ln, err = net.Listen("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			conn, err := s.ln.Accept()
			if err != nil {
				return
			}
			s.mu.Lock()
			s.conns[conn] = struct{}{}
			s.mu.Unlock()
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				//lint:ignore errdrop sessions end in the injected crash by design
				s.ctrl.ServeConn(wire.NewConn(conn))
				s.mu.Lock()
				delete(s.conns, conn)
				s.mu.Unlock()
				//lint:ignore errdrop test teardown; the close error leaves nothing to act on
				conn.Close()
			}()
		}
	}()
	return s
}

// kill hard-stops the stack: listener and live connections die, the manager
// is abandoned without Close — no shutdown checkpoint, no final WAL sync
// beyond what the fsync policy already guaranteed.
func (s *crashStack) kill() {
	//lint:ignore errdrop crash injection; the close error leaves nothing to act on
	s.ln.Close()
	s.mu.Lock()
	for c := range s.conns {
		//lint:ignore errdrop crash injection; the close error leaves nothing to act on
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	// Detach the doomed manager from the store so its logger cannot observe
	// post-mortem writes (the process would be gone; the test shares memory).
	s.db.SetInsertLogger(nil)
}

func TestCrashRestartPreservesDedupe(t *testing.T) {
	if testing.Short() {
		t.Skip("crash-restart integration test skipped in -short mode")
	}
	dir := t.TempDir()
	gen1 := startCrashStack(t, dir, "127.0.0.1:0")
	addr := gen1.ln.Addr().String()

	// Agent with strictly increasing readings: a duplicate stored row would
	// repeat a value. The runner redials through the crash with capped
	// backoff, so it is mid-retransmission when generation 2 comes up.
	dialer := func() (*wire.Conn, error) {
		raw, err := net.Dial("tcp", addr)
		if err != nil {
			return nil, err
		}
		return wire.NewConn(raw), nil
	}
	conn, err := dialer()
	if err != nil {
		t.Fatal(err)
	}
	clock := collect.NewDriftClock(func() int64 { return time.Now().UnixMilli() }, 0)
	var tick, frameTick int64
	sensors := []collect.Sensor{
		collect.SensorFunc{SensorName: "s", ReadFunc: func() []float64 {
			tick++
			return []float64{float64(tick)}
		}},
		// Camera frames ride the same batches: their first pixel is strictly
		// increasing, so a frame stored twice repeats a value.
		collect.FrameSensor(func() []float64 {
			frameTick++
			return []float64{float64(frameTick), 0.5}
		}),
	}
	agent, err := collect.NewAgent(collect.AgentConfig{
		ID: "car-1", Modality: "imu", PollPeriodMS: 5,
		AckTimeout: 500 * time.Millisecond, MaxSpill: 10_000,
	}, clock, sensors, conn)
	if err != nil {
		t.Fatal(err)
	}
	runner, err := collect.StartRunnerConfig(agent, collect.RunnerConfig{
		FlushEvery:  15 * time.Millisecond,
		Dialer:      dialer,
		BackoffBase: 2 * time.Millisecond,
		BackoffMax:  30 * time.Millisecond,
		MaxAttempts: -1,
		Seed:        7,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Let data flow, then crash the controller mid-stream.
	series := collect.SeriesName("car-1", "s") + "[0]"
	waitFor(t, 30*time.Second, "first batches stored", func() bool {
		st, ok := gen1.ctrl.AgentStats("car-1")
		return ok && st.LastSeq >= 3 && gen1.db.Len(series) > 0 && gen1.ctrl.FrameCount("car-1") > 0
	})
	ackedSeq := func() uint64 {
		st, _ := gen1.ctrl.AgentStats("car-1")
		return st.LastSeq
	}()
	gen1.kill()

	// Restart from the same directory on the same address. Recovery must
	// rebuild the store and sessions from checkpoint + WAL replay alone.
	gen2 := startCrashStack(t, dir, addr)
	defer func() {
		if err := gen2.man.Close(); err != nil {
			t.Errorf("closing recovered manager: %v", err)
		}
	}()
	if gen2.rec.Degraded {
		t.Fatalf("clean kill recovered degraded: %+v", gen2.rec)
	}
	restored := gen2.db.Len(series)
	if restored == 0 {
		t.Fatal("no pre-crash readings survived the restart")
	}
	// Frames are durable too: batches 1..2 were acked before the kill (the
	// agent only sends batch n+1 after batch n's ack), so their frames must
	// come back from the checkpoint and WAL replay.
	if gen2.ctrl.FrameCount("car-1") == 0 {
		t.Fatal("no pre-crash camera frames survived the restart")
	}
	var restoredSeq uint64
	for _, s := range gen2.rec.Sessions {
		if s.AgentID == "car-1" {
			restoredSeq = s.LastSeq
		}
	}
	if restoredSeq < ackedSeq {
		t.Fatalf("recovered dedupe mark %d below acked seq %d: acked data at risk of duplication", restoredSeq, ackedSeq)
	}

	// The runner reconnects and keeps streaming: resumed agent, new rows.
	waitFor(t, 30*time.Second, "post-restart readings stored", func() bool {
		return gen2.db.Len(series) > restored
	})
	if err := runner.Shutdown(); err != nil {
		t.Fatalf("shutdown after restart: %v", err)
	}
	if runner.Reconnects() < 1 {
		t.Fatalf("runner reconnected %d times, want >= 1", runner.Reconnects())
	}

	// Explicit replay across the restart: retransmit the last pre-crash batch
	// to the recovered controller; it must ack without storing.
	rowsBefore := gen2.db.Len(series)
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	replay := wire.NewConn(raw)
	if err := replay.Send(&wire.Hello{AgentID: "car-1", Modality: "imu", PeriodMillis: 5}); err != nil {
		t.Fatal(err)
	}
	if _, err := replay.Recv(); err != nil {
		t.Fatal(err)
	}
	if err := replay.Send(&wire.SampleBatch{AgentID: "car-1", Seq: ackedSeq, Readings: []wire.Reading{
		{TimestampMillis: 1, Sensor: "s", Values: []float64{-1}},
	}}); err != nil {
		t.Fatal(err)
	}
	if msg, err := replay.Recv(); err != nil {
		t.Fatal(err)
	} else if _, ok := msg.(*wire.Ack); !ok {
		t.Fatalf("replay answered with %T, want ack", msg)
	}
	//lint:ignore errdrop test teardown; the close error leaves nothing to act on
	raw.Close()
	if got := gen2.db.Len(series); got != rowsBefore {
		t.Fatalf("replayed pre-crash batch grew the store from %d to %d rows", rowsBefore, got)
	}
	st, ok := gen2.ctrl.AgentStats("car-1")
	if !ok || st.Deduped < 1 {
		t.Fatalf("recovered controller deduped %d replays, want >= 1 (stats=%+v ok=%v)", st.Deduped, st, ok)
	}

	// Zero duplicate rows across both generations: the sensor value is
	// strictly increasing, so any reading stored twice repeats a value.
	pts := gen2.db.Range(series, math.MinInt64, math.MaxInt64)
	seen := make(map[float64]int64, len(pts))
	for _, p := range pts {
		if prev, dup := seen[p.Value]; dup {
			t.Fatalf("reading %v stored twice (t=%d and t=%d): duplicate survived the crash-restart", p.Value, prev, p.TimestampMillis)
		}
		seen[p.Value] = p.TimestampMillis
	}
	// Same for frames: the first pixel is strictly increasing, so a frame
	// restored by recovery AND re-stored from a retransmission would repeat.
	seenFrames := make(map[float64]bool)
	for _, f := range gen2.ctrl.Frames("car-1") {
		if seenFrames[f.Pix[0]] {
			t.Fatalf("frame %v stored twice: duplicate survived the crash-restart", f.Pix[0])
		}
		seenFrames[f.Pix[0]] = true
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.After(d)
	for !cond() {
		select {
		case <-deadline:
			t.Fatalf("timed out waiting for %s", what)
		default:
			time.Sleep(5 * time.Millisecond)
		}
	}
}

package darnet

// One benchmark per table and figure of the paper's evaluation section, plus
// ablation benches for the design choices DESIGN.md calls out. Model
// training is amortized in shared lazy setup so each benchmark iteration
// measures the experiment's evaluation path; reproduced accuracy numbers are
// attached as custom benchmark metrics (suffix *_pct, paper reference values
// in EXPERIMENTS.md).
//
// The benches run reduced-scale versions of the experiments so the full
// suite stays tractable; `cmd/darnet-eval` regenerates the full-scale
// numbers reported in EXPERIMENTS.md.

import (
	"math/rand"
	"net"
	"sync"
	"testing"

	"darnet/internal/collect"
	"darnet/internal/core"
	"darnet/internal/imu"
	"darnet/internal/nn"
	"darnet/internal/privacy"
	"darnet/internal/rnn"
	"darnet/internal/svm"
	"darnet/internal/synth"
	"darnet/internal/tensor"
	"darnet/internal/tsdb"
	"darnet/internal/wire"
)

// benchScale keeps training-dependent benches tractable.
const benchScale = 0.01

// --- Shared trained engine (Table 2 / Figure 5 / combiner ablation) ---------

var engineSetup struct {
	once  sync.Once
	err   error
	train *synth.Dataset
	test  *synth.Dataset
	eng   *core.Engine
}

func sharedEngine(b *testing.B) (*core.Engine, *synth.Dataset, *synth.Dataset) {
	b.Helper()
	engineSetup.once.Do(func() {
		cfg := synth.DefaultConfig()
		cfg.Scale = benchScale
		ds, err := synth.GenerateTable1(cfg)
		if err != nil {
			engineSetup.err = err
			return
		}
		rng := rand.New(rand.NewSource(42))
		train, test, err := ds.Split(rng, 0.2)
		if err != nil {
			engineSetup.err = err
			return
		}
		tc := core.DefaultTrainConfig()
		tc.CNNEpochs = 8
		tc.RNNEpochs = 6
		eng, err := core.Train(train.CoreData(), tc)
		if err != nil {
			engineSetup.err = err
			return
		}
		engineSetup.train, engineSetup.test, engineSetup.eng = train, test, eng
	})
	if engineSetup.err != nil {
		b.Fatal(engineSetup.err)
	}
	return engineSetup.eng, engineSetup.train, engineSetup.test
}

// BenchmarkTable1Dataset regenerates the Table 1 dataset (class inventory
// with the paper's per-class proportions) each iteration.
func BenchmarkTable1Dataset(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := synth.DefaultConfig()
		cfg.Scale = benchScale
		ds, err := synth.GenerateTable1(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if ds.Len() == 0 {
			b.Fatal("empty dataset")
		}
	}
}

// BenchmarkTable2Ensembles measures the full Table 2 evaluation (three
// architectures + IMU-only models) and reports the reproduced Top-1 numbers.
// Paper: CNN+RNN 87.02, CNN+SVM 86.23, CNN 73.88, RNN 97.44, SVM 95.37.
func BenchmarkTable2Ensembles(b *testing.B) {
	eng, _, test := sharedEngine(b)
	b.ResetTimer()
	var ev *core.Evaluation
	for i := 0; i < b.N; i++ {
		var err error
		ev, err = eng.Evaluate(test.CoreData(), ClassNames())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(ev.CNNRNN*100, "cnn+rnn_pct")
	b.ReportMetric(ev.CNNSVM*100, "cnn+svm_pct")
	b.ReportMetric(ev.CNN*100, "cnn_pct")
	b.ReportMetric(ev.RNNOnly*100, "rnn_only_pct")
	b.ReportMetric(ev.SVMOnly*100, "svm_only_pct")
}

// BenchmarkFigure5Confusion measures confusion-matrix construction and
// reports the texting-recall crossover (paper: 36.0% CNN → 87.0% CNN+RNN).
func BenchmarkFigure5Confusion(b *testing.B) {
	eng, _, test := sharedEngine(b)
	b.ResetTimer()
	var ev *core.Evaluation
	for i := 0; i < b.N; i++ {
		var err error
		ev, err = eng.Evaluate(test.CoreData(), ClassNames())
		if err != nil {
			b.Fatal(err)
		}
	}
	tex := int(Texting)
	b.ReportMetric(ev.ConfusionCNN.Rate(tex, tex)*100, "texting_cnn_pct")
	b.ReportMetric(ev.ConfusionCNNRNN.Rate(tex, tex)*100, "texting_ensemble_pct")
}

// BenchmarkFigure4Downsample measures the Figure 4 artifact path: render a
// 300×300 scene and produce the 100/50/25 down-sampled versions.
func BenchmarkFigure4Downsample(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	driver := synth.NewDriverProfile(rng)
	amb := synth.DefaultAmbiguity()
	for i := 0; i < b.N; i++ {
		frame := synth.RenderScene(rng, 300, 300, synth.Talking, driver, amb)
		for _, size := range []int{100, 50, 25} {
			if _, err := frame.DownsampleNearest(size, size); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// --- Table 3: dCNN distillation ---------------------------------------------

var dcnnSetup struct {
	once    sync.Once
	err     error
	train   *synth.Dataset
	test    *synth.Dataset
	teacher *nn.Sequential
	student *nn.Sequential // dCNN-L
}

func sharedDCNN(b *testing.B) (*nn.Sequential, *nn.Sequential, *synth.Dataset) {
	b.Helper()
	dcnnSetup.once.Do(func() {
		cfg := synth.DefaultConfig18()
		cfg.PerClass = 30
		ds, err := synth.Generate18Class(cfg)
		if err != nil {
			dcnnSetup.err = err
			return
		}
		rng := rand.New(rand.NewSource(42))
		train, test, err := ds.Split(rng, 0.2)
		if err != nil {
			dcnnSetup.err = err
			return
		}
		cnnCfg := core.DefaultCNNConfig()
		teacher, err := core.BuildFrameCNN(rng, cfg.ImgW, cfg.ImgH, 18, cnnCfg)
		if err != nil {
			dcnnSetup.err = err
			return
		}
		opt := nn.NewAdam(0.002)
		opt.WeightDecay = 1e-4
		if _, err := nn.TrainClassifier(teacher, opt, rng, train.Frames(), train.Labels(), nn.TrainConfig{
			Epochs: 10, BatchSize: 32, ClipNorm: 5,
		}); err != nil {
			dcnnSetup.err = err
			return
		}
		build := func(rng *rand.Rand) (*nn.Sequential, error) {
			return core.BuildFrameCNN(rng, cfg.ImgW, cfg.ImgH, 18, cnnCfg)
		}
		dc := privacy.DefaultDistillConfig()
		dc.Epochs = 8
		student, err := privacy.Distill(teacher, build, train.Frames(), cfg.ImgW, cfg.ImgH,
			collect.DistortLow, privacy.CompactRatios(), rng, dc)
		if err != nil {
			dcnnSetup.err = err
			return
		}
		dcnnSetup.train, dcnnSetup.test = train, test
		dcnnSetup.teacher, dcnnSetup.student = teacher, student
	})
	if dcnnSetup.err != nil {
		b.Fatal(dcnnSetup.err)
	}
	return dcnnSetup.teacher, dcnnSetup.student, dcnnSetup.test
}

// BenchmarkTable3DCNN measures the dCNN evaluation path and reports teacher
// vs dCNN-L accuracy (paper: CNN 78.87, dCNN-L 80.00).
func BenchmarkTable3DCNN(b *testing.B) {
	teacher, student, test := sharedDCNN(b)
	distorted, err := privacy.DistortRows(test.Frames(), test.ImgW, test.ImgH,
		collect.DistortLow, privacy.CompactRatios())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var teacherAcc, studentAcc float64
	for i := 0; i < b.N; i++ {
		teacherAcc, err = core.EvaluateCNNOnly(teacher, test.Frames(), test.Labels())
		if err != nil {
			b.Fatal(err)
		}
		studentAcc, err = core.EvaluateCNNOnly(student, distorted, test.Labels())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(teacherAcc*100, "cnn_pct")
	b.ReportMetric(studentAcc*100, "dcnn_l_pct")
}

// --- Ablations ----------------------------------------------------------------

// BenchmarkAblationCombiner compares the Bayesian Network combiner against
// the naive product/average fusions on the shared engine.
func BenchmarkAblationCombiner(b *testing.B) {
	eng, _, test := sharedEngine(b)
	b.ResetTimer()
	var ev *core.Evaluation
	for i := 0; i < b.N; i++ {
		var err error
		ev, err = eng.Evaluate(test.CoreData(), ClassNames())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(ev.CNNRNN*100, "bn_pct")
	b.ReportMetric(ev.ProductCombine*100, "product_pct")
	b.ReportMetric(ev.AverageCombine*100, "average_pct")
}

// BenchmarkAblationLSTM compares bidirectional against unidirectional
// recurrent stacks at equal width on the IMU task.
func BenchmarkAblationLSTM(b *testing.B) {
	_, train, test := sharedEngine(b)
	stats, err := imu.FitStats(train.IMUWindows())
	if err != nil {
		b.Fatal(err)
	}
	norm := func(ds *synth.Dataset) []*tensor.Tensor {
		out := make([]*tensor.Tensor, ds.Len())
		for i, w := range ds.IMUWindows() {
			out[i] = stats.Normalize(w)
		}
		return out
	}
	trainSeqs, testSeqs := norm(train), norm(test)
	b.ResetTimer()
	var biAcc, uniAcc float64
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(5))
		for _, unidir := range []bool{false, true} {
			cls, err := rnn.NewClassifier("abl", rng, rnn.Config{
				Input: imu.FeatureDim, Hidden: 24, Layers: 1,
				Classes: synth.NumIMUClasses, Unidirectional: unidir,
			})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := cls.Train(nn.NewAdam(0.005), rng, trainSeqs, train.IMULabels(), rnn.TrainConfig{
				Epochs: 3, BatchSize: 16, ClipNorm: 5,
			}); err != nil {
				b.Fatal(err)
			}
			acc, err := cls.Evaluate(testSeqs, test.IMULabels())
			if err != nil {
				b.Fatal(err)
			}
			if unidir {
				uniAcc = acc
			} else {
				biAcc = acc
			}
		}
	}
	b.ReportMetric(biAcc*100, "bilstm_pct")
	b.ReportMetric(uniAcc*100, "unilstm_pct")
}

// BenchmarkAblationCNNArch compares the inception-style MicroInception
// against a plain conv stack at a comparable parameter budget.
func BenchmarkAblationCNNArch(b *testing.B) {
	_, train, test := sharedEngine(b)
	b.ResetTimer()
	var mixAcc, plainAcc float64
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(6))
		for _, plain := range []bool{false, true} {
			var net *nn.Sequential
			var err error
			if plain {
				net, err = core.BuildPlainCNN(rng, train.ImgW, train.ImgH, synth.NumClasses, core.DefaultCNNConfig())
			} else {
				net, err = core.BuildFrameCNN(rng, train.ImgW, train.ImgH, synth.NumClasses, core.DefaultCNNConfig())
			}
			if err != nil {
				b.Fatal(err)
			}
			opt := nn.NewAdam(0.002)
			opt.WeightDecay = 1e-4
			if _, err := nn.TrainClassifier(net, opt, rng, train.Frames(), train.Labels(), nn.TrainConfig{
				Epochs: 4, BatchSize: 32, ClipNorm: 5,
			}); err != nil {
				b.Fatal(err)
			}
			acc, err := core.EvaluateCNNOnly(net, test.Frames(), test.Labels())
			if err != nil {
				b.Fatal(err)
			}
			if plain {
				plainAcc = acc
			} else {
				mixAcc = acc
			}
		}
	}
	b.ReportMetric(mixAcc*100, "inception_pct")
	b.ReportMetric(plainAcc*100, "plain_pct")
}

// BenchmarkAblationDistillInit compares dCNN students initialized from the
// teacher (the paper's methodology) against random initialization. Students
// distill on the training frames only and are evaluated on the held-out
// distorted test set.
func BenchmarkAblationDistillInit(b *testing.B) {
	teacher, _, test := sharedDCNN(b)
	train := dcnnSetup.train
	cfg := synth.DefaultConfig18()
	build := func(rng *rand.Rand) (*nn.Sequential, error) {
		return core.BuildFrameCNN(rng, cfg.ImgW, cfg.ImgH, 18, core.DefaultCNNConfig())
	}
	distorted, err := privacy.DistortRows(test.Frames(), test.ImgW, test.ImgH,
		collect.DistortLow, privacy.CompactRatios())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var fromTeacher, fromRandom float64
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(7))
		for _, init := range []bool{true, false} {
			dc := privacy.DefaultDistillConfig()
			dc.Epochs = 4
			dc.InitFromTeacher = init
			student, err := privacy.Distill(teacher, build, train.Frames(), train.ImgW, train.ImgH,
				collect.DistortLow, privacy.CompactRatios(), rng, dc)
			if err != nil {
				b.Fatal(err)
			}
			acc, err := core.EvaluateCNNOnly(student, distorted, test.Labels())
			if err != nil {
				b.Fatal(err)
			}
			if init {
				fromTeacher = acc
			} else {
				fromRandom = acc
			}
		}
	}
	b.ReportMetric(fromTeacher*100, "teacher_init_pct")
	b.ReportMetric(fromRandom*100, "random_init_pct")
}

// BenchmarkAblationSmoothing measures the controller's alignment at several
// smoothing windows and reports reconstruction error against the true signal.
func BenchmarkAblationSmoothing(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	db := tsdb.New()
	// Irregular noisy observations of a known smooth signal.
	truth := func(t int64) float64 { return 5 + 2*float64(t)/1000 }
	ts := int64(0)
	for i := 0; i < 500; i++ {
		ts += int64(10 + rng.Intn(60))
		db.Insert("s", tsdb.Point{TimestampMillis: ts, Value: truth(ts) + rng.NormFloat64()*0.5})
	}
	ctrl := collect.NewController(db, func() int64 { return ts })
	first, last, _ := db.Bounds("s")

	b.ResetTimer()
	errs := map[int]float64{}
	for i := 0; i < b.N; i++ {
		for _, window := range []int{1, 3, 7} {
			al, err := ctrl.Align([]string{"s"}, collect.AlignConfig{
				FromMillis: first, ToMillis: last, StepMillis: 40, SmoothWindow: window,
			})
			if err != nil {
				b.Fatal(err)
			}
			sum := 0.0
			for j, v := range al.Values[0] {
				d := v - truth(first+int64(j)*40)
				sum += d * d
			}
			errs[window] = sum / float64(len(al.Values[0]))
		}
	}
	b.ReportMetric(errs[1], "mse_raw")
	b.ReportMetric(errs[3], "mse_w3")
	b.ReportMetric(errs[7], "mse_w7")
}

// --- Substrate micro-benchmarks ------------------------------------------------

// BenchmarkMatMul measures the dense kernel the CNN is built on.
func BenchmarkMatMul(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	x := tensor.Randn(rng, 1, 64, 128)
	y := tensor.Randn(rng, 1, 128, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tensor.MatMul(x, y); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkConvForward measures one convolution layer forward pass.
func BenchmarkConvForward(b *testing.B) {
	rng := rand.New(rand.NewSource(10))
	conv := nn.NewConv2D("bench", rng, tensor.ConvGeom{
		InC: 8, InH: 16, InW: 16, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1,
	}, 16)
	x := tensor.Randn(rng, 1, 8, 8*16*16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := conv.Forward(x, false); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLSTMWindow measures one BiLSTM forward pass over a paper-sized
// IMU window (20 steps × 13 features).
func BenchmarkLSTMWindow(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	cls, err := rnn.NewClassifier("bench", rng, rnn.Config{
		Input: imu.FeatureDim, Hidden: 64, Layers: 2, Classes: 3,
	})
	if err != nil {
		b.Fatal(err)
	}
	seq := tensor.Randn(rng, 1, imu.WindowSize, imu.FeatureDim)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cls.Predict(seq); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSVMPredict measures one SVM inference over a flattened window.
func BenchmarkSVMPredict(b *testing.B) {
	rng := rand.New(rand.NewSource(12))
	x := tensor.Randn(rng, 1, 200, imu.WindowSize*imu.FeatureDim)
	labels := make([]int, 200)
	for i := range labels {
		labels[i] = i % 3
	}
	cls, err := svm.Train(rng, x, labels, 3, svm.TrainConfig{Epochs: 2})
	if err != nil {
		b.Fatal(err)
	}
	row := x.Row(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cls.Predict(row); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWireRoundTrip measures encode+decode of a typical IMU batch.
func BenchmarkWireRoundTrip(b *testing.B) {
	batch := &wire.SampleBatch{AgentID: "imu-1"}
	for i := 0; i < 40; i++ {
		batch.Readings = append(batch.Readings, wire.Reading{
			TimestampMillis: int64(i * 25),
			Sensor:          "accel",
			Values:          []float64{0.1, -9.8, 0.4},
		})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a, c := benchPipe()
		if err := a.Send(batch); err != nil {
			b.Fatal(err)
		}
		if _, err := c.Recv(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTSDBInsertResample measures the controller's storage path.
func BenchmarkTSDBInsertResample(b *testing.B) {
	for i := 0; i < b.N; i++ {
		db := tsdb.New()
		for t := int64(0); t < 1000; t += 25 {
			db.Insert("s", tsdb.Point{TimestampMillis: t, Value: float64(t)})
		}
		if _, err := db.ResampleLinear("s", 0, 1000, 250); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationDownsampleKernel compares the paper's nearest-neighbor
// distortion against box filtering at the same transmission cost, measuring
// reconstruction error of the down-up round trip on rendered scenes.
func BenchmarkAblationDownsampleKernel(b *testing.B) {
	rng := rand.New(rand.NewSource(13))
	driver := synth.NewDriverProfile(rng)
	amb := synth.DefaultAmbiguity()
	amb.NoiseSigma = 0
	var mseNearest, mseBox float64
	for i := 0; i < b.N; i++ {
		frame := synth.RenderScene(rng, 96, 96, synth.Texting, driver, amb)
		nSmall, err := frame.DownsampleNearest(16, 16)
		if err != nil {
			b.Fatal(err)
		}
		bSmall, err := frame.DownsampleBox(16, 16)
		if err != nil {
			b.Fatal(err)
		}
		nBig, err := nSmall.UpsampleNearest(96, 96)
		if err != nil {
			b.Fatal(err)
		}
		bBig, err := bSmall.UpsampleNearest(96, 96)
		if err != nil {
			b.Fatal(err)
		}
		var sn, sb float64
		for j := range frame.Pix {
			dn := frame.Pix[j] - nBig.Pix[j]
			db := frame.Pix[j] - bBig.Pix[j]
			sn += dn * dn
			sb += db * db
		}
		mseNearest = sn / float64(len(frame.Pix))
		mseBox = sb / float64(len(frame.Pix))
	}
	b.ReportMetric(mseNearest*1000, "mse_nearest_e3")
	b.ReportMetric(mseBox*1000, "mse_box_e3")
}

// BenchmarkEngineClassify measures one fused (frame + IMU window) inference —
// the latency that backs the paper's "amenable to near real-time detection"
// claim (§1).
func BenchmarkEngineClassify(b *testing.B) {
	eng, _, test := sharedEngine(b)
	frame := test.Samples[0].Frame.Pix
	window := test.Samples[0].Window
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Classify(frame, window); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRemoteClassify measures the same inference through the remote
// configuration: wire encoding, TCP loopback, server-side classification,
// and the response.
func BenchmarkRemoteClassify(b *testing.B) {
	eng, _, test := sharedEngine(b)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		_ = eng.ServeClassify(wire.NewConn(conn))
	}()
	raw, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	defer raw.Close()
	conn := wire.NewConn(raw)
	frame := test.Samples[0].Frame.Pix
	window := test.Samples[0].Window
	w, h := test.ImgW, test.ImgH
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.RemoteClassify(conn, frame, w, h, 0, window); err != nil {
			b.Fatal(err)
		}
	}
}

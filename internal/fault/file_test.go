package fault

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"darnet/internal/durable"
	"darnet/internal/tsdb"
)

// collectFile wraps a MemFS file in a chaos File for the unit tests.
func chaosFile(t *testing.T, fs *durable.MemFS, name string, cfg FileConfig) (*File, *durable.MemFS) {
	t.Helper()
	inner, err := fs.Create(name)
	if err != nil {
		t.Fatal(err)
	}
	return NewFile(inner, cfg), fs
}

func TestFileTornAtByte(t *testing.T) {
	f, fs := chaosFile(t, durable.NewMemFS(), "w", FileConfig{TornAtByte: 10})
	if n, err := f.Write([]byte("01234567")); n != 8 || err != nil {
		t.Fatalf("pre-tear write: n=%d err=%v", n, err)
	}
	// This write crosses offset 10: exactly 2 bytes land, then the tear.
	n, err := f.Write([]byte("abcdef"))
	if n != 2 || err != ErrTornWrite {
		t.Fatalf("tear write: n=%d err=%v, want 2, ErrTornWrite", n, err)
	}
	if !f.Wedged() {
		t.Fatal("file must wedge after the tear")
	}
	if _, err := f.Write([]byte("x")); err != ErrTornWrite {
		t.Fatalf("post-tear write: %v, want ErrTornWrite", err)
	}
	if err := f.Sync(); err != ErrTornWrite {
		t.Fatalf("post-tear sync: %v, want ErrTornWrite", err)
	}
	if sz, _ := fs.Size("w"); sz != 10 {
		t.Fatalf("underlying file has %d bytes, want exactly the scheduled 10", sz)
	}
}

func TestFileBitFlip(t *testing.T) {
	f, fs := chaosFile(t, durable.NewMemFS(), "w", FileConfig{FlipAtByte: 3})
	src := []byte{0, 1, 2, 3, 4, 5}
	if _, err := f.Write(src); err != nil {
		t.Fatal(err)
	}
	if src[3] != 3 {
		t.Fatal("chaos file must not mutate the caller's buffer")
	}
	rc, err := fs.Open("w")
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	got := make([]byte, 6)
	if _, err := rc.Read(got); err != nil {
		t.Fatal(err)
	}
	if got[3] != 3^0xFF {
		t.Fatalf("byte 3 on disk = %#x, want flipped %#x", got[3], 3^0xFF)
	}
	if got[2] != 2 || got[4] != 4 {
		t.Fatalf("neighbouring bytes disturbed: % x", got)
	}
}

func TestFileShortWriteDeterministic(t *testing.T) {
	run := func() []int {
		f, _ := chaosFile(t, durable.NewMemFS(), "w", FileConfig{Seed: 7, ShortWriteRate: 0.5})
		var shorts []int
		for i := 0; i < 20; i++ {
			if _, err := f.Write([]byte("0123456789")); err == ErrShortWrite {
				shorts = append(shorts, i)
			} else if err != nil {
				t.Fatal(err)
			}
		}
		return shorts
	}
	a, b := run(), run()
	if len(a) == 0 || len(a) == 20 {
		t.Fatalf("rate 0.5 over 20 writes injected %d shorts", len(a))
	}
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("same seed, different schedules: %v vs %v", a, b)
	}
}

func TestFileSyncFaults(t *testing.T) {
	var slept []time.Duration
	var events []FileEvent
	f, _ := chaosFile(t, durable.NewMemFS(), "w", FileConfig{
		FailSyncFrom: 3,
		SyncDelay:    50 * time.Millisecond,
		Sleep:        func(d time.Duration) { slept = append(slept, d) },
		OnEvent:      func(e FileEvent) { events = append(events, e) },
	})
	if err := f.Sync(); err != nil {
		t.Fatalf("sync 1: %v", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("sync 2: %v", err)
	}
	if err := f.Sync(); err != ErrSyncFailed {
		t.Fatalf("sync 3: %v, want ErrSyncFailed", err)
	}
	if err := f.Sync(); err != ErrSyncFailed {
		t.Fatalf("sync 4: %v, want ErrSyncFailed", err)
	}
	if len(slept) != 4 {
		t.Fatalf("every sync should stall first: %d stalls", len(slept))
	}
	failures := 0
	for _, e := range events {
		if e.Kind == FileSyncError {
			failures++
		}
	}
	if failures != 2 {
		t.Fatalf("%d sync-error events, want 2", failures)
	}
}

// walName mirrors durable's generation naming for aiming faults at specific
// files (the format is part of the on-disk contract documented in DESIGN.md).
func walName(gen uint64) string { return fmt.Sprintf("wal-%016x.wal", gen) }

// TestDurableRecoveryUnderTornWAL drives the real durability stack over a
// chaos FS that tears the active WAL generation at a scheduled byte, then
// proves the recovery contract: the tail truncates, nothing duplicates, and
// the retransmitting agent restores exactly the lost rows.
func TestDurableRecoveryUnderTornWAL(t *testing.T) {
	mem := durable.NewMemFS()
	// A fresh Open creates WAL generation 1; tear it mid-stream.
	tornCfg := &FileConfig{TornAtByte: 200}
	fs := NewFS(mem, func(name string) *FileConfig {
		if name == walName(1) {
			return tornCfg
		}
		return nil
	})
	db := tsdb.New()
	m, _, err := durable.Open(db, durable.Options{FS: fs, Policy: durable.PolicyAlways, CheckpointEvery: -1, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	stored, acked := 0, 0
	for seq := 1; seq <= 50; seq++ {
		db.Insert("car-1/acc[0]", tsdb.Point{TimestampMillis: int64(seq), Value: float64(seq)})
		stored = seq
		if err := m.AppendCommit("car-1", uint64(seq)); err != nil {
			break // the tear hit: the "controller" stops acking
		}
		if err := m.SyncCommits(); err != nil {
			break // durability point failed: no ack either
		}
		acked = seq
	}
	if acked == stored {
		t.Fatalf("tear never fired within %d batches", stored)
	}
	mem.Crash()

	db2 := tsdb.New()
	_, rec, err := durable.Open(db2, durable.Options{FS: mem, Policy: durable.PolicyAlways, CheckpointEvery: -1, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Degraded {
		t.Fatalf("a torn tail must recover clean, got %+v", rec)
	}
	restored := uint64(0)
	if len(rec.Sessions) == 1 {
		restored = rec.Sessions[0].LastSeq
	}
	if restored < uint64(acked) {
		t.Fatalf("acked batch lost: restored seq %d, acked through %d", restored, acked)
	}
	// Retransmit everything unacked, then check for exactly-once rows.
	db2.SetInsertLogger(nil) // direct re-store; the second manager is closed out of scope here
	for seq := int(restored) + 1; seq <= 50; seq++ {
		db2.Insert("car-1/acc[0]", tsdb.Point{TimestampMillis: int64(seq), Value: float64(seq)})
	}
	pts := db2.Range("car-1/acc[0]", 0, 1<<40)
	if len(pts) != 50 {
		t.Fatalf("store holds %d rows, want 50", len(pts))
	}
	seen := map[int64]bool{}
	for _, p := range pts {
		if seen[p.TimestampMillis] {
			t.Fatalf("duplicate row at ts %d", p.TimestampMillis)
		}
		seen[p.TimestampMillis] = true
	}
}

// TestDurableRecoveryUnderBitFlip flips one byte inside a WAL record and
// expects recovery to reject the record and everything after it, reporting
// degradation rather than storing corrupt values.
func TestDurableRecoveryUnderBitFlip(t *testing.T) {
	mem := durable.NewMemFS()
	flipCfg := &FileConfig{FlipAtByte: 60} // inside the first records of gen 1
	fs := NewFS(mem, func(name string) *FileConfig {
		if name == walName(1) {
			return flipCfg
		}
		return nil
	})
	db := tsdb.New()
	m, _, err := durable.Open(db, durable.Options{FS: fs, Policy: durable.PolicyAlways, CheckpointEvery: -1, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	for seq := 1; seq <= 10; seq++ {
		db.Insert("car-1/acc[0]", tsdb.Point{TimestampMillis: int64(seq), Value: float64(seq)})
		if err := m.AppendCommit("car-1", uint64(seq)); err != nil {
			t.Fatalf("commit %d: %v", seq, err)
		}
		if err := m.SyncCommits(); err != nil {
			t.Fatalf("sync %d: %v", seq, err)
		}
	}
	mem.Crash()

	db2 := tsdb.New()
	_, rec, err := durable.Open(db2, durable.Options{FS: mem, Policy: durable.PolicyAlways, CheckpointEvery: -1, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Degraded || rec.LostBytes == 0 {
		t.Fatalf("bit flip must degrade recovery with a loss bound: %+v", rec)
	}
	// Whatever was replayed is a clean prefix: values match their timestamps.
	for _, p := range db2.Range("car-1/acc[0]", 0, 1<<40) {
		if p.Value != float64(p.TimestampMillis) {
			t.Fatalf("corrupt value %v at ts %d survived recovery", p.Value, p.TimestampMillis)
		}
	}
}

// TestDurableDegradesOnSyncFault injects fsync failures and expects the
// manager to latch degradation while the store keeps serving.
func TestDurableDegradesOnSyncFault(t *testing.T) {
	mem := durable.NewMemFS()
	syncCfg := &FileConfig{FailSyncFrom: 1}
	fs := NewFS(mem, func(name string) *FileConfig {
		if name == walName(1) {
			return syncCfg
		}
		return nil
	})
	db := tsdb.New()
	m, _, err := durable.Open(db, durable.Options{FS: fs, Policy: durable.PolicyAlways, CheckpointEvery: -1, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	db.Insert("car-1/acc[0]", tsdb.Point{TimestampMillis: 1, Value: 1})
	if err := m.AppendCommit("car-1", 1); err != nil {
		t.Fatalf("append alone touches no fsync: %v", err)
	}
	if err := m.SyncCommits(); err == nil {
		t.Fatal("the durability point should surface the injected fsync failure")
	}
	h := m.Health()
	if !strings.Contains(h.Status, "degraded: durability") || !h.OK {
		t.Fatalf("health after sync fault = %+v, want degraded-but-serving", h)
	}
	db.Insert("car-1/acc[0]", tsdb.Point{TimestampMillis: 2, Value: 2})
	if got := db.Len("car-1/acc[0]"); got != 2 {
		t.Fatalf("degraded store dropped inserts: %d rows", got)
	}
}

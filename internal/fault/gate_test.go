package fault

import (
	"sync"
	"testing"
	"time"
)

func TestGateBlocksUntilOpened(t *testing.T) {
	g := NewGate()
	if g.Opened() {
		t.Fatal("new gate reports opened")
	}
	released := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			g.Wait()
		}()
	}
	go func() {
		wg.Wait()
		close(released)
	}()
	select {
	case <-released:
		t.Fatal("Wait returned before Open")
	case <-time.After(20 * time.Millisecond):
	}
	g.Open()
	g.Open() // idempotent
	select {
	case <-released:
	case <-time.After(2 * time.Second):
		t.Fatal("Wait did not return after Open")
	}
	if !g.Opened() {
		t.Fatal("opened gate reports closed")
	}
	g.Wait() // future waits return immediately
}

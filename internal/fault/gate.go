package fault

import "sync"

// Gate is a deterministic stall injector for pipeline stages: Wait blocks
// until the gate is opened, so a test can wedge a classify worker at an exact
// point, let the watchdog observe the stall, and then release it. Unlike a
// sleep, the stall has no timing dependence — the test decides exactly when
// the stage resumes.
//
// A gate starts closed and opens exactly once; after Open every current and
// future Wait returns immediately. The comma-ok receive observes the close,
// so a goroutine parked in Wait always has a release path.
type Gate struct {
	once sync.Once
	ch   chan struct{}
}

// NewGate returns a closed gate.
func NewGate() *Gate {
	return &Gate{ch: make(chan struct{})}
}

// Wait blocks until the gate is opened.
func (g *Gate) Wait() {
	_, ok := <-g.ch
	_ = ok
}

// Open releases all current and future Wait calls. Idempotent.
func (g *Gate) Open() {
	g.once.Do(func() { close(g.ch) })
}

// Opened reports whether the gate has been opened.
func (g *Gate) Opened() bool {
	select {
	case _, ok := <-g.ch:
		_ = ok
		return true
	default:
		return false
	}
}

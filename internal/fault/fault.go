// Package fault is DarNet's deterministic chaos-injection layer: a transport
// wrapper that makes every failure mode of a flaky mobile uplink — lost
// frames, duplicate deliveries, corrupted and truncated frames, delivery
// delays, and hard partitions — reproducible in unit tests from a fixed
// seed. The collection middleware's resilience machinery (agent reconnect
// with backoff, at-least-once delivery with controller-side dedupe, degraded
// single-modality classification) is exercised end to end by wrapping the
// agent side of a connection in a Transport with a scripted fault schedule.
//
// Faults are injected on Write only and per frame: wire.Conn issues exactly
// one Write per protocol frame, so a dropped Write is a lost frame, a
// doubled Write is a duplicate delivery, and a flipped byte is a corrupted
// frame the peer must reject with a typed error rather than a panic. Reads
// pass through untouched; a partition severs both directions by closing the
// underlying stream, which unblocks any peer blocked in a read.
package fault

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"time"

	"darnet/internal/telemetry"
)

// Process-wide chaos accounting, so injected faults are observable next to
// the recovery counters they provoke (darnet_collect_reconnects_total and
// friends) on the ops endpoint.
var (
	mDrops      = telemetry.NewCounter("darnet_fault_frames_dropped_total", "frames silently discarded by chaos transports")
	mDups       = telemetry.NewCounter("darnet_fault_frames_duplicated_total", "frames delivered twice by chaos transports")
	mCorrupts   = telemetry.NewCounter("darnet_fault_frames_corrupted_total", "frames delivered with a flipped byte by chaos transports")
	mTruncates  = telemetry.NewCounter("darnet_fault_frames_truncated_total", "frames cut mid-delivery by chaos transports")
	mDelays     = telemetry.NewCounter("darnet_fault_frames_delayed_total", "frames delayed by chaos transports")
	mPartitions = telemetry.NewCounter("darnet_fault_partitions_total", "hard partitions triggered by chaos transports")
)

// ErrPartitioned is returned by Read and Write once the link is hard
// partitioned. It is a terminal transport error: the connection is gone and
// only a redial (a fresh Transport) recovers.
var ErrPartitioned = errors.New("fault: link partitioned")

// EventKind names one injected fault.
type EventKind int

// Fault kinds, in the deterministic order they are considered per write.
const (
	EventPartition EventKind = iota + 1
	EventDrop
	EventDuplicate
	EventCorrupt
	EventTruncate
	EventDelay
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case EventPartition:
		return "partition"
	case EventDrop:
		return "drop"
	case EventDuplicate:
		return "duplicate"
	case EventCorrupt:
		return "corrupt"
	case EventTruncate:
		return "truncate"
	case EventDelay:
		return "delay"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event describes one injected fault: its kind and the 1-based index of the
// write it struck.
type Event struct {
	Kind  EventKind
	Write int
}

// Config is a chaos schedule. Rates are per-frame probabilities in [0, 1]
// drawn from a rand.Rand seeded with Seed, so a given (seed, write sequence)
// pair always injects the same faults; PartitionAfterWrites is an explicit
// deterministic schedule on top.
type Config struct {
	// Seed seeds the fault dice. Two transports with equal configs inject
	// identical fault sequences.
	Seed int64

	// DropRate is the probability a written frame is silently discarded.
	DropRate float64
	// DupRate is the probability a written frame is delivered twice.
	DupRate float64
	// CorruptRate is the probability one byte of the frame is flipped.
	CorruptRate float64
	// TruncateRate is the probability the frame is cut mid-delivery; the
	// stream is unrecoverable after the cut, so a truncation also partitions.
	TruncateRate float64
	// DelayRate is the probability delivery sleeps for Delay first.
	DelayRate float64
	// Delay is the injected delivery latency (used when DelayRate fires).
	Delay time.Duration

	// PartitionAfterWrites lists write counts at which the link hard
	// partitions: {5} kills the connection when the 5th frame is written
	// (that frame is lost with the link).
	PartitionAfterWrites []int

	// OnEvent, when non-nil, observes every injected fault synchronously —
	// benches use it to timestamp partitions for recovery-time measurement.
	OnEvent func(Event)

	// Sleep replaces time.Sleep for delay injection (tests use a recorder).
	Sleep func(time.Duration)
}

// Stats counts the faults a transport has injected.
type Stats struct {
	Writes      int64
	Drops       int64
	Duplicates  int64
	Corruptions int64
	Truncations int64
	Delays      int64
	Partitions  int64
}

// Transport wraps one transport stream with the chaos schedule of a Config.
// It is safe for the usual wire.Conn discipline (one reader goroutine, one
// writer goroutine) and for concurrent Partition/Close calls.
type Transport struct {
	mu          sync.Mutex
	rw          io.ReadWriter
	cfg         Config
	rng         *rand.Rand
	partitioned bool
	stats       Stats
}

// NewTransport wraps rw in a chaos transport following cfg.
func NewTransport(rw io.ReadWriter, cfg Config) *Transport {
	if cfg.Sleep == nil {
		cfg.Sleep = time.Sleep
	}
	return &Transport{rw: rw, cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// roll consumes one dice throw. Every fault kind rolls on every write, in a
// fixed order, whether or not it fires — the stream of rng draws depends
// only on the write count, keeping schedules deterministic.
func (t *Transport) roll(rate float64) bool {
	return t.rng.Float64() < rate
}

func (t *Transport) emit(kind EventKind, write int) {
	if t.cfg.OnEvent != nil {
		t.cfg.OnEvent(Event{Kind: kind, Write: write})
	}
}

// Write delivers one frame through the chaos schedule. Dropped frames report
// success — exactly what a lossy link does: the sender learns nothing until
// the missing ack times out or the connection dies.
//
// The chaos decision — dice rolls, stats, partition scheduling — runs under
// mu; the sleeps and underlying writes run unlocked, like Read, so a
// concurrent Partition or Stats call never waits behind a slow link.
func (t *Transport) Write(p []byte) (int, error) {
	t.mu.Lock()
	if t.partitioned {
		t.mu.Unlock()
		return 0, ErrPartitioned
	}
	t.stats.Writes++
	w := int(t.stats.Writes)

	for _, at := range t.cfg.PartitionAfterWrites {
		if w == at {
			t.partitionLocked()
			t.mu.Unlock()
			t.emit(EventPartition, w)
			return 0, ErrPartitioned
		}
	}
	// Fixed roll order: drop, duplicate, corrupt, truncate, delay. Every
	// kind rolls on every write whether or not it fires, so the rng stream
	// depends only on the write count.
	drop := t.roll(t.cfg.DropRate)
	dup := t.roll(t.cfg.DupRate)
	corrupt := t.roll(t.cfg.CorruptRate)
	truncate := t.roll(t.cfg.TruncateRate)
	delay := t.roll(t.cfg.DelayRate) && t.cfg.Delay > 0

	truncate = truncate && !drop
	dup = dup && !drop && !truncate
	out := p
	if corrupt = corrupt && !drop && !truncate && len(p) > 4; corrupt {
		out = append([]byte(nil), p...)
		// Flip a byte past the length prefix so the frame arrives whole but
		// malformed — the receiver must fail typed, not desynchronize.
		out[4+t.rng.Intn(len(out)-4)] ^= 0xFF
	}
	if delay {
		t.stats.Delays++
		mDelays.Inc()
	}
	if drop {
		t.stats.Drops++
		mDrops.Inc()
	}
	if truncate {
		t.stats.Truncations++
		mTruncates.Inc()
	}
	if corrupt {
		t.stats.Corruptions++
		mCorrupts.Inc()
	}
	if dup {
		t.stats.Duplicates++
		mDups.Inc()
	}
	t.mu.Unlock()

	if delay {
		t.emit(EventDelay, w)
		t.cfg.Sleep(t.cfg.Delay)
	}
	if drop {
		t.emit(EventDrop, w)
		return len(p), nil
	}
	if truncate {
		t.emit(EventTruncate, w)
		if _, err := t.rw.Write(p[:len(p)/2]); err != nil {
			return 0, err
		}
		t.Partition()
		return 0, ErrPartitioned
	}
	if corrupt {
		t.emit(EventCorrupt, w)
	}
	if _, err := t.rw.Write(out); err != nil {
		return 0, err
	}
	if dup {
		t.emit(EventDuplicate, w)
		if _, err := t.rw.Write(out); err != nil {
			return 0, err
		}
	}
	return len(p), nil
}

// Read passes through until the link partitions.
func (t *Transport) Read(p []byte) (int, error) {
	t.mu.Lock()
	dead := t.partitioned
	rw := t.rw
	t.mu.Unlock()
	if dead {
		return 0, ErrPartitioned
	}
	// The read itself runs unlocked: it blocks until the peer writes, and
	// holding the lock would deadlock Partition/Write. A partition closes
	// the underlying stream, which fails this read at the transport layer.
	return rw.Read(p)
}

// Partition severs the link now: all further Reads and Writes fail, and the
// underlying stream is closed so a peer blocked mid-read wakes up.
func (t *Transport) Partition() {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.partitioned {
		t.partitionLocked()
		t.emit(EventPartition, int(t.stats.Writes))
	}
}

func (t *Transport) partitionLocked() {
	t.partitioned = true
	t.stats.Partitions++
	mPartitions.Inc()
	if c, ok := t.rw.(io.Closer); ok {
		//lint:ignore errdrop partition teardown; the close error leaves nothing to act on
		c.Close()
	}
}

// Partitioned reports whether the link has been severed.
func (t *Transport) Partitioned() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.partitioned
}

// Close closes the underlying stream when it is a Closer. It takes no lock:
// rw is immutable after construction, and partitionLocked closes the stream
// while holding mu — locking here would make Transport.Close a self-deadlock
// candidate for any io.Closer call under the lock.
func (t *Transport) Close() error {
	if c, ok := t.rw.(io.Closer); ok {
		return c.Close()
	}
	return nil
}

// SetReadDeadline forwards to the underlying stream when it supports
// deadlines, keeping wire.Conn's reaping path intact through the wrapper.
func (t *Transport) SetReadDeadline(dl time.Time) error {
	if d, ok := t.rw.(interface{ SetReadDeadline(time.Time) error }); ok {
		return d.SetReadDeadline(dl)
	}
	return nil
}

// Stats returns a snapshot of the faults injected so far.
func (t *Transport) Stats() Stats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.stats
}

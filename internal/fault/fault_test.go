package fault

import (
	"bytes"
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

// sink is an io.ReadWriter recording every Write as a separate delivery.
type sink struct {
	mu     sync.Mutex
	frames [][]byte
}

func (s *sink) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.frames = append(s.frames, append([]byte(nil), p...))
	return len(p), nil
}

func (s *sink) Read(p []byte) (int, error) { return 0, io.EOF }

func (s *sink) delivered() [][]byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.frames
}

func frame(n int) []byte {
	b := make([]byte, 16)
	for i := range b {
		b[i] = byte(n + i)
	}
	return b
}

func TestDropLosesFrameSilently(t *testing.T) {
	s := &sink{}
	tr := NewTransport(s, Config{Seed: 1, DropRate: 1})
	n, err := tr.Write(frame(1))
	if err != nil || n != 16 {
		t.Fatalf("dropped write reported (%d, %v), want silent success", n, err)
	}
	if got := len(s.delivered()); got != 0 {
		t.Fatalf("%d frames delivered, want 0", got)
	}
	if st := tr.Stats(); st.Drops != 1 || st.Writes != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestDuplicateDeliversTwice(t *testing.T) {
	s := &sink{}
	tr := NewTransport(s, Config{Seed: 1, DupRate: 1})
	if _, err := tr.Write(frame(1)); err != nil {
		t.Fatal(err)
	}
	got := s.delivered()
	if len(got) != 2 {
		t.Fatalf("%d deliveries, want 2", len(got))
	}
	if !bytes.Equal(got[0], got[1]) {
		t.Fatal("duplicate differs from original")
	}
}

func TestCorruptFlipsOneBytePastThePrefix(t *testing.T) {
	s := &sink{}
	tr := NewTransport(s, Config{Seed: 7, CorruptRate: 1})
	orig := frame(3)
	if _, err := tr.Write(orig); err != nil {
		t.Fatal(err)
	}
	got := s.delivered()
	if len(got) != 1 {
		t.Fatalf("%d deliveries, want 1", len(got))
	}
	diff := 0
	for i := range orig {
		if got[0][i] != orig[i] {
			if i < 4 {
				t.Fatalf("length prefix byte %d corrupted; corruption must stay past the prefix", i)
			}
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("%d bytes differ, want exactly 1", diff)
	}
	// The caller's buffer must stay untouched (wire reuses its scratch).
	if !bytes.Equal(orig, frame(3)) {
		t.Fatal("corruption mutated the caller's buffer")
	}
}

func TestTruncateCutsAndPartitions(t *testing.T) {
	s := &sink{}
	tr := NewTransport(s, Config{Seed: 1, TruncateRate: 1})
	if _, err := tr.Write(frame(1)); !errors.Is(err, ErrPartitioned) {
		t.Fatalf("err = %v, want ErrPartitioned", err)
	}
	got := s.delivered()
	if len(got) != 1 || len(got[0]) != 8 {
		t.Fatalf("delivered %d frames (first %d bytes), want one 8-byte cut", len(got), len(got[0]))
	}
	if _, err := tr.Write(frame(2)); !errors.Is(err, ErrPartitioned) {
		t.Fatalf("post-cut write err = %v, want ErrPartitioned", err)
	}
}

func TestDelayUsesInjectedSleep(t *testing.T) {
	s := &sink{}
	var slept []time.Duration
	tr := NewTransport(s, Config{
		Seed: 1, DelayRate: 1, Delay: 250 * time.Millisecond,
		Sleep: func(d time.Duration) { slept = append(slept, d) },
	})
	if _, err := tr.Write(frame(1)); err != nil {
		t.Fatal(err)
	}
	if len(slept) != 1 || slept[0] != 250*time.Millisecond {
		t.Fatalf("slept %v, want one 250ms delay", slept)
	}
	if len(s.delivered()) != 1 {
		t.Fatal("delayed frame was not delivered")
	}
}

func TestPartitionScheduleKillsTheLink(t *testing.T) {
	a, b := net.Pipe()
	defer b.Close()
	tr := NewTransport(a, Config{Seed: 1, PartitionAfterWrites: []int{3}})

	peerDone := make(chan error, 1)
	go func() {
		buf := make([]byte, 64)
		for {
			if _, err := b.Read(buf); err != nil {
				peerDone <- err
				return
			}
		}
	}()

	for i := 1; i <= 2; i++ {
		if _, err := tr.Write(frame(i)); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	if _, err := tr.Write(frame(3)); !errors.Is(err, ErrPartitioned) {
		t.Fatalf("write 3 err = %v, want ErrPartitioned", err)
	}
	if !tr.Partitioned() {
		t.Fatal("transport not marked partitioned")
	}
	// The peer's blocked read must fail: the partition closed the pipe.
	select {
	case <-peerDone:
	case <-time.After(2 * time.Second):
		t.Fatal("peer read still blocked after partition")
	}
	if _, err := tr.Read(make([]byte, 4)); !errors.Is(err, ErrPartitioned) {
		t.Fatalf("read err = %v, want ErrPartitioned", err)
	}
}

func TestManualPartitionIsIdempotent(t *testing.T) {
	s := &sink{}
	tr := NewTransport(s, Config{Seed: 1})
	events := 0
	tr.cfg.OnEvent = func(Event) { events++ }
	tr.Partition()
	tr.Partition()
	if st := tr.Stats(); st.Partitions != 1 {
		t.Fatalf("partitions = %d, want 1", st.Partitions)
	}
	if events != 1 {
		t.Fatalf("events = %d, want 1", events)
	}
}

// TestScheduleIsDeterministic replays the same write sequence through two
// identically-configured transports and demands identical fault schedules —
// the property every chaos test in the repo leans on.
func TestScheduleIsDeterministic(t *testing.T) {
	run := func() ([]Event, [][]byte) {
		s := &sink{}
		var events []Event
		tr := NewTransport(s, Config{
			Seed:     42,
			DropRate: 0.3, DupRate: 0.2, CorruptRate: 0.2,
			OnEvent: func(e Event) { events = append(events, e) },
		})
		for i := 0; i < 50; i++ {
			if _, err := tr.Write(frame(i)); err != nil {
				t.Fatal(err)
			}
		}
		return events, s.delivered()
	}
	e1, d1 := run()
	e2, d2 := run()
	if len(e1) == 0 {
		t.Fatal("no faults fired in 50 writes at these rates")
	}
	if len(e1) != len(e2) {
		t.Fatalf("fault counts differ: %d vs %d", len(e1), len(e2))
	}
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, e1[i], e2[i])
		}
	}
	if len(d1) != len(d2) {
		t.Fatalf("delivery counts differ: %d vs %d", len(d1), len(d2))
	}
	for i := range d1 {
		if !bytes.Equal(d1[i], d2[i]) {
			t.Fatalf("delivery %d differs", i)
		}
	}
}

// TestConcurrentPartitionAndWrite exercises the lock under the race
// detector: a partition racing in-flight writes must never panic or deliver
// after the cut.
func TestConcurrentPartitionAndWrite(t *testing.T) {
	s := &sink{}
	tr := NewTransport(s, Config{Seed: 1})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			if _, err := tr.Write(frame(i)); err != nil {
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		tr.Partition()
	}()
	wg.Wait()
	if _, err := tr.Write(frame(0)); !errors.Is(err, ErrPartitioned) {
		t.Fatalf("write after partition: %v", err)
	}
}

package fault

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"time"

	"darnet/internal/durable"
	"darnet/internal/telemetry"
)

// Disk-fault accounting, alongside the transport chaos counters: injected
// storage faults are observable next to the durability degradation they
// provoke (darnet_durable_wal_append_errors_total and friends).
var (
	mShortWrites = telemetry.NewCounter("darnet_fault_disk_short_writes_total", "writes cut short by chaos files")
	mTornWrites  = telemetry.NewCounter("darnet_fault_disk_torn_writes_total", "writes torn at a scheduled byte by chaos files")
	mBitFlips    = telemetry.NewCounter("darnet_fault_disk_bit_flips_total", "bytes corrupted in flight by chaos files")
	mSyncFaults  = telemetry.NewCounter("darnet_fault_disk_sync_errors_total", "fsyncs failed by chaos files")
	mSyncDelays  = telemetry.NewCounter("darnet_fault_disk_sync_delays_total", "fsyncs delayed by chaos files")
)

// Errors the chaos file injects. ErrTornWrite doubles as the wedged-disk
// error every operation after a tear returns: a torn write models a crash
// mid-append, and nothing sensible happens to that file afterwards.
var (
	ErrShortWrite = errors.New("fault: injected short write")
	ErrTornWrite  = errors.New("fault: write torn at scheduled byte; file wedged")
	ErrSyncFailed = errors.New("fault: injected fsync failure")
)

// FileEventKind names one injected storage fault.
type FileEventKind int

// Storage fault kinds.
const (
	FileShortWrite FileEventKind = iota + 1
	FileTornWrite
	FileBitFlip
	FileSyncError
	FileSyncDelay
)

// String implements fmt.Stringer.
func (k FileEventKind) String() string {
	switch k {
	case FileShortWrite:
		return "short-write"
	case FileTornWrite:
		return "torn-write"
	case FileBitFlip:
		return "bit-flip"
	case FileSyncError:
		return "sync-error"
	case FileSyncDelay:
		return "sync-delay"
	default:
		return fmt.Sprintf("FileEventKind(%d)", int(k))
	}
}

// FileEvent describes one injected storage fault: its kind, the 1-based
// write (or sync) it struck, and the file offset where it bit.
type FileEvent struct {
	Kind   FileEventKind
	Op     int
	Offset int64
}

// FileConfig schedules the storage faults of one chaos file. Like the
// transport Config, the probabilistic faults draw from a rand.Rand seeded
// with Seed — a given (seed, write sequence) always injects the same faults —
// while the byte-scheduled faults (tear, flip) are exact.
type FileConfig struct {
	// Seed seeds the fault dice.
	Seed int64

	// ShortWriteRate is the probability a write is accepted only halfway:
	// the first half reaches the underlying file, ErrShortWrite comes back.
	ShortWriteRate float64

	// TornAtByte, when positive, tears the write that crosses that absolute
	// file offset: bytes up to the boundary land, the rest never do, and the
	// file wedges (every later write and sync fails) — a deterministic
	// crash-mid-append for recovery's torn-tail path.
	TornAtByte int64

	// FlipAtByte, when positive, XOR-flips the byte that lands at that
	// absolute file offset — checksum-detectable corruption at a chosen
	// record position.
	FlipAtByte int64

	// FailSyncFrom, when positive, fails every 1-based Sync call numbered
	// >= it (1 fails them all). SyncDelay stalls every successful sync
	// first — the slow-disk case group commit must absorb.
	FailSyncFrom int
	SyncDelay    time.Duration

	// OnEvent observes every injected fault synchronously.
	OnEvent func(FileEvent)
	// Sleep replaces time.Sleep for SyncDelay (tests use a recorder).
	Sleep func(time.Duration)
}

// File wraps a durable.File with the fault schedule of a FileConfig. It is
// the storage counterpart of Transport, sitting on the WAL's append path —
// its Write is reachable from the tsdb insert hot path, so the injection
// machinery reuses a scratch buffer and pre-allocated errors.
type File struct {
	mu      sync.Mutex
	inner   durable.File
	cfg     FileConfig
	rng     *rand.Rand
	offset  int64 // bytes accepted by the underlying file
	writes  int
	syncs   int
	wedged  bool
	scratch []byte
}

// NewFile wraps inner in a chaos file following cfg.
func NewFile(inner durable.File, cfg FileConfig) *File {
	if cfg.Sleep == nil {
		cfg.Sleep = time.Sleep
	}
	return &File{inner: inner, cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

func (f *File) emit(kind FileEventKind, op int, off int64) {
	if f.cfg.OnEvent != nil {
		f.cfg.OnEvent(FileEvent{Kind: kind, Op: op, Offset: off})
	}
}

// Write pushes p through the fault schedule. The deterministic tear wins
// over the dice: recovery tests aim it at an exact record boundary.
func (f *File) Write(p []byte) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.wedged {
		return 0, ErrTornWrite
	}
	f.writes++
	w := f.writes
	start := f.offset

	if f.cfg.TornAtByte > 0 && start+int64(len(p)) > f.cfg.TornAtByte && start < f.cfg.TornAtByte {
		keep := int(f.cfg.TornAtByte - start)
		//lint:ignore lockorder inner is the wrapped real file, never another *fault.File; the interface call cannot re-enter f.mu
		n, err := f.inner.Write(p[:keep])
		f.offset += int64(n)
		f.wedged = true
		mTornWrites.Inc()
		f.emit(FileTornWrite, w, f.cfg.TornAtByte)
		if err != nil {
			return n, err
		}
		return n, ErrTornWrite
	}

	short := f.rng.Float64() < f.cfg.ShortWriteRate && len(p) > 1

	out := p
	if f.cfg.FlipAtByte > 0 && start <= f.cfg.FlipAtByte && f.cfg.FlipAtByte < start+int64(len(p)) {
		f.scratch = append(f.scratch[:0], p...)
		f.scratch[f.cfg.FlipAtByte-start] ^= 0xFF
		out = f.scratch
		mBitFlips.Inc()
		f.emit(FileBitFlip, w, f.cfg.FlipAtByte)
	}

	if short {
		n, err := f.inner.Write(out[:len(out)/2])
		f.offset += int64(n)
		mShortWrites.Inc()
		f.emit(FileShortWrite, w, f.offset)
		if err != nil {
			return n, err
		}
		return n, ErrShortWrite
	}

	n, err := f.inner.Write(out)
	f.offset += int64(n)
	return n, err
}

// Sync applies the sync schedule: an optional stall, then either the real
// sync or the injected failure.
func (f *File) Sync() error {
	f.mu.Lock()
	if f.wedged {
		f.mu.Unlock()
		return ErrTornWrite
	}
	f.syncs++
	s := f.syncs
	fail := f.cfg.FailSyncFrom > 0 && s >= f.cfg.FailSyncFrom
	delay := f.cfg.SyncDelay
	off := f.offset
	f.mu.Unlock()

	if delay > 0 {
		mSyncDelays.Inc()
		f.emit(FileSyncDelay, s, off)
		f.cfg.Sleep(delay)
	}
	if fail {
		mSyncFaults.Inc()
		f.emit(FileSyncError, s, off)
		return ErrSyncFailed
	}
	return f.inner.Sync()
}

// Close closes the underlying file; a wedged file closes without syncing,
// like a crashed process's file descriptor.
func (f *File) Close() error {
	return f.inner.Close()
}

// Wedged reports whether a scheduled tear has killed the file.
func (f *File) Wedged() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.wedged
}

// FaultFS wraps a durable.FS so that files it creates come back wrapped in
// chaos Files. Which files get which schedule is decided by the Pick
// callback — recovery tests aim a tear at exactly one WAL generation and
// leave checkpoints alone (or the reverse).
type FaultFS struct {
	inner durable.FS
	pick  func(name string) *FileConfig

	mu    sync.Mutex
	files map[string]*File
}

// NewFS wraps inner; pick returns the fault schedule for each created file
// (nil = pass through untouched).
func NewFS(inner durable.FS, pick func(name string) *FileConfig) *FaultFS {
	return &FaultFS{inner: inner, pick: pick, files: make(map[string]*File)}
}

// Create implements durable.FS, wrapping the new file per the pick schedule.
func (fs *FaultFS) Create(name string) (durable.File, error) {
	inner, err := fs.inner.Create(name)
	if err != nil {
		return nil, err
	}
	cfg := fs.pick(name)
	if cfg == nil {
		return inner, nil
	}
	f := NewFile(inner, *cfg)
	fs.mu.Lock()
	fs.files[name] = f
	fs.mu.Unlock()
	return f, nil
}

// File returns the chaos wrapper created for name, if any — tests assert on
// its Wedged state and counters.
func (fs *FaultFS) File(name string) *File {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.files[name]
}

// Open implements durable.FS.
func (fs *FaultFS) Open(name string) (io.ReadCloser, error) { return fs.inner.Open(name) }

// List implements durable.FS.
func (fs *FaultFS) List() ([]string, error) { return fs.inner.List() }

// Remove implements durable.FS.
func (fs *FaultFS) Remove(name string) error { return fs.inner.Remove(name) }

// Rename implements durable.FS.
func (fs *FaultFS) Rename(oldname, newname string) error { return fs.inner.Rename(oldname, newname) }

// Truncate implements durable.FS.
func (fs *FaultFS) Truncate(name string, size int64) error { return fs.inner.Truncate(name, size) }

// Size implements durable.FS.
func (fs *FaultFS) Size(name string) (int64, error) { return fs.inner.Size(name) }

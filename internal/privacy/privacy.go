// Package privacy implements DarNet's privacy-preserving analytics path
// (paper §4.3, Figures 3–4): the distortion module that nearest-neighbor
// down-samples frames before they leave the vehicle, the tagged routing of
// distorted frames to the matching classifier, and the unsupervised
// denoising-CNN (dCNN) training methodology — a student CNN initialized from
// the teacher's weights and trained to reproduce the teacher's outputs on
// down-sampled inputs by minimizing the L2 distance between output vectors.
package privacy

import (
	"fmt"
	"math/rand"

	"darnet/internal/collect"
	"darnet/internal/nn"
	"darnet/internal/tensor"
	"darnet/internal/vision"
)

// Ratios maps distortion levels to linear down-sampling factors.
type Ratios struct {
	Low    int
	Medium int
	High   int
}

// PaperRatios are the paper's 300×300 → 100×100 / 50×50 / 25×25 paths
// (ratios 3, 6, 12).
func PaperRatios() Ratios { return Ratios{Low: 3, Medium: 6, High: 12} }

// CompactRatios are the factors used for this reproduction's 32×32 frames.
// The paper's ratios assume 300×300 sources, where even the 25×25 "high"
// path keeps a recognizable blocky silhouette (Figure 4); applying 12× to a
// 32×32 frame would leave 2×2 pixels — information-free. CompactRatios are
// chosen so each level preserves a comparable fraction of the scene's pose
// information: 16×16 (nearly lossless), ~10×10 (pose barely visible), 8×8
// (almost unidentifiable), mirroring the perceptual ladder of Figure 4.
func CompactRatios() Ratios { return Ratios{Low: 2, Medium: 3, High: 4} }

// For returns the ratio for one level (1 for DistortNone).
func (r Ratios) For(level collect.DistortionLevel) (int, error) {
	switch level {
	case collect.DistortNone:
		return 1, nil
	case collect.DistortLow:
		return r.Low, nil
	case collect.DistortMedium:
		return r.Medium, nil
	case collect.DistortHigh:
		return r.High, nil
	default:
		return 0, fmt.Errorf("privacy: unknown distortion level %d", level)
	}
}

// TaggedFrame is a distorted frame tagged with its distortion level, as the
// distortion module emits it (§4.3 "tags the video with the down-sampling
// rate").
type TaggedFrame struct {
	Level collect.DistortionLevel
	Image *vision.Image
}

// Distort down-samples a frame at the given level and re-expands it to the
// original resolution with nearest-neighbor sampling, producing the blocky
// frames of Figure 4 at the geometry the classifiers consume.
func Distort(img *vision.Image, level collect.DistortionLevel, ratios Ratios) (*TaggedFrame, error) {
	ratio, err := ratios.For(level)
	if err != nil {
		return nil, err
	}
	if ratio < 1 {
		return nil, fmt.Errorf("privacy: non-positive ratio %d for level %v", ratio, level)
	}
	if ratio == 1 {
		return &TaggedFrame{Level: level, Image: img.Clone()}, nil
	}
	w := max(1, img.W/ratio)
	h := max(1, img.H/ratio)
	small, err := img.DownsampleNearest(w, h)
	if err != nil {
		return nil, fmt.Errorf("privacy: distort: %w", err)
	}
	big, err := small.UpsampleNearest(img.W, img.H)
	if err != nil {
		return nil, fmt.Errorf("privacy: distort: %w", err)
	}
	return &TaggedFrame{Level: level, Image: big}, nil
}

// DistortRows applies Distort to every row of a flattened frame matrix and
// returns the distorted matrix at the same geometry.
func DistortRows(frames *tensor.Tensor, w, h int, level collect.DistortionLevel, ratios Ratios) (*tensor.Tensor, error) {
	if frames.Dims() != 2 || frames.Dim(1) != w*h {
		return nil, fmt.Errorf("privacy: frame matrix width %d != %dx%d", frames.Dim(frames.Dims()-1), w, h)
	}
	out := tensor.New(frames.Shape()...)
	img := vision.MustNewImage(w, h)
	for i := 0; i < frames.Dim(0); i++ {
		copy(img.Pix, frames.Row(i))
		tf, err := Distort(img, level, ratios)
		if err != nil {
			return nil, err
		}
		copy(out.Row(i), tf.Image.Pix)
	}
	return out, nil
}

// Router picks the classifier matching a frame's distortion tag — the remote
// server's dispatch in Figure 3.
type Router struct {
	models map[collect.DistortionLevel]*nn.Sequential
}

// NewRouter returns an empty router.
func NewRouter() *Router {
	return &Router{models: make(map[collect.DistortionLevel]*nn.Sequential)}
}

// Register installs the classifier for one distortion level.
func (r *Router) Register(level collect.DistortionLevel, model *nn.Sequential) {
	r.models[level] = model
}

// Classify routes a tagged frame to its classifier and returns the class
// probabilities.
func (r *Router) Classify(f *TaggedFrame) ([]float64, error) {
	model, ok := r.models[f.Level]
	if !ok {
		return nil, fmt.Errorf("privacy: no classifier registered for distortion level %v", f.Level)
	}
	x, err := tensor.FromSlice(f.Image.ToFeatures(), 1, f.Image.W*f.Image.H)
	if err != nil {
		return nil, err
	}
	probs, err := nn.PredictProbs(model, x, 1)
	if err != nil {
		return nil, err
	}
	return append([]float64(nil), probs.Row(0)...), nil
}

// Levels returns the registered distortion levels.
func (r *Router) Levels() []collect.DistortionLevel {
	out := make([]collect.DistortionLevel, 0, len(r.models))
	for l := range r.models {
		out = append(out, l)
	}
	return out
}

// DistillConfig controls dCNN training.
type DistillConfig struct {
	Epochs    int
	LR        float64
	BatchSize int
	// PlainSGD uses plain momentum SGD (the paper's stated optimizer)
	// instead of the default Adam variant of stochastic gradient descent.
	PlainSGD bool
	// LRStepEvery and LRStepFactor implement step decay: every LRStepEvery
	// epochs the learning rate is multiplied by LRStepFactor (disabled when
	// LRStepEvery is 0).
	LRStepEvery  int
	LRStepFactor float64
	// Temperature switches the objective from the paper's L2 on output
	// vectors (0, the default) to softened cross-entropy knowledge
	// distillation at the given temperature.
	Temperature float64
	// InitFromTeacher copies the teacher's weights into the student before
	// distillation (the paper's initialization methodology); disabling it is
	// the ablation.
	InitFromTeacher bool
	// Progress, when non-nil, receives per-epoch mean L2 losses.
	Progress func(epoch int, loss float64)
}

// DefaultDistillConfig returns the calibrated defaults.
func DefaultDistillConfig() DistillConfig {
	return DistillConfig{Epochs: 12, LR: 0.001, BatchSize: 32, InitFromTeacher: true}
}

// StudentBuilder constructs an untrained network architecturally identical to
// the teacher (the paper reuses the Inception-V3 architecture for dCNNs).
type StudentBuilder func(rng *rand.Rand) (*nn.Sequential, error)

// Distill trains a dCNN student for one distortion level following the
// paper's four-step methodology: (1) record the teacher's outputs on the
// original frames — the original image never has to leave the device; (2)
// down-sample the frames; (3) aggregate distorted frames, tags, and teacher
// outputs at the server; (4) train the student to minimize the L2 euclidean
// distance between its outputs on distorted frames and the teacher's
// recorded outputs, using stochastic gradient descent. No labels are used.
func Distill(teacher *nn.Sequential, build StudentBuilder, frames *tensor.Tensor, w, h int, level collect.DistortionLevel, ratios Ratios, rng *rand.Rand, cfg DistillConfig) (*nn.Sequential, error) {
	if cfg.Epochs <= 0 || cfg.BatchSize <= 0 || cfg.LR <= 0 {
		return nil, fmt.Errorf("privacy: invalid distill config %+v", cfg)
	}
	n := frames.Dim(0)
	if n == 0 {
		return nil, fmt.Errorf("privacy: no frames to distill from")
	}

	// Step 1: record the teacher's final-layer outputs (logits) on the
	// original frames.
	targets, err := predictLogits(teacher, frames, 64)
	if err != nil {
		return nil, fmt.Errorf("privacy: teacher outputs: %w", err)
	}

	// Step 2: the distortion module down-samples the frames.
	distorted, err := DistortRows(frames, w, h, level, ratios)
	if err != nil {
		return nil, err
	}

	// Step 3–4: train the student on (distorted, teacher output) pairs.
	student, err := build(rng)
	if err != nil {
		return nil, fmt.Errorf("privacy: build student: %w", err)
	}
	if cfg.InitFromTeacher {
		if err := nn.CopyParams(student.Params(), teacher.Params()); err != nil {
			return nil, fmt.Errorf("privacy: init from teacher: %w", err)
		}
	}

	var opt nn.Optimizer
	var sgd *nn.SGD
	var adam *nn.Adam
	if cfg.PlainSGD {
		sgd = nn.NewSGD(cfg.LR)
		sgd.Momentum = 0.9
		opt = sgd
	} else {
		adam = nn.NewAdam(cfg.LR)
		opt = adam
	}
	stepLR := func(epoch int) {
		if cfg.LRStepEvery <= 0 || cfg.LRStepFactor <= 0 || epoch == 0 || epoch%cfg.LRStepEvery != 0 {
			return
		}
		if sgd != nil {
			sgd.LR *= cfg.LRStepFactor
		}
		if adam != nil {
			adam.LR *= cfg.LRStepFactor
		}
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	width := frames.Dim(1)
	classes := targets.Dim(1)
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		stepLR(epoch)
		rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
		total, batches := 0.0, 0
		for start := 0; start < n; start += cfg.BatchSize {
			end := min(start+cfg.BatchSize, n)
			bs := end - start
			bx := tensor.New(bs, width)
			bt := tensor.New(bs, classes)
			for i := 0; i < bs; i++ {
				src := order[start+i]
				copy(bx.Row(i), distorted.Row(src))
				copy(bt.Row(i), targets.Row(src))
			}
			student.ZeroGrad()
			logits, err := student.Forward(bx, true)
			if err != nil {
				return nil, fmt.Errorf("privacy: student forward: %w", err)
			}
			var loss float64
			var dLogits *tensor.Tensor
			if cfg.Temperature > 0 {
				loss, dLogits, err = nn.DistillationLoss(logits, bt, cfg.Temperature)
			} else {
				loss, dLogits, err = nn.L2Distance(logits, bt)
			}
			if err != nil {
				return nil, err
			}
			if _, err := student.Backward(dLogits); err != nil {
				return nil, fmt.Errorf("privacy: student backward: %w", err)
			}
			if _, err := nn.ClipGradNorm(student.Params(), 5); err != nil {
				return nil, err
			}
			opt.Step(student.Params())
			total += loss
			batches++
		}
		if cfg.Progress != nil {
			cfg.Progress(epoch, total/float64(batches))
		}
	}
	return student, nil
}

// predictLogits runs inference-mode forward passes and collects raw
// final-layer outputs.
func predictLogits(net *nn.Sequential, x *tensor.Tensor, batchSize int) (*tensor.Tensor, error) {
	n := x.Dim(0)
	width := x.Dim(1)
	var out *tensor.Tensor
	for start := 0; start < n; start += batchSize {
		end := min(start+batchSize, n)
		bs := end - start
		bx := tensor.New(bs, width)
		for i := 0; i < bs; i++ {
			copy(bx.Row(i), x.Row(start+i))
		}
		logits, err := net.Predict(bx)
		if err != nil {
			return nil, err
		}
		if out == nil {
			out = tensor.New(n, logits.Dim(1))
		}
		for i := 0; i < bs; i++ {
			copy(out.Row(start+i), logits.Row(i))
		}
	}
	return out, nil
}

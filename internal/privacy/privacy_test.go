package privacy

import (
	"math"
	"math/rand"
	"testing"

	"darnet/internal/collect"
	"darnet/internal/nn"
	"darnet/internal/tensor"
	"darnet/internal/vision"
)

func TestDownsampleRatios(t *testing.T) {
	pr := PaperRatios()
	tests := []struct {
		level collect.DistortionLevel
		want  int
	}{
		{collect.DistortNone, 1},
		{collect.DistortLow, 3},
		{collect.DistortMedium, 6},
		{collect.DistortHigh, 12},
	}
	for _, tt := range tests {
		got, err := pr.For(tt.level)
		if err != nil {
			t.Fatal(err)
		}
		if got != tt.want {
			t.Fatalf("ratio(%v) = %d, want %d", tt.level, got, tt.want)
		}
	}
	if _, err := pr.For(collect.DistortionLevel(99)); err == nil {
		t.Fatal("expected unknown-level error")
	}
	cr := CompactRatios()
	if cr.Low >= cr.Medium || cr.Medium >= cr.High {
		t.Fatal("compact ratios must increase with distortion")
	}
}

func TestDistortPreservesGeometryAndTags(t *testing.T) {
	img := vision.MustNewImage(24, 24)
	for i := range img.Pix {
		img.Pix[i] = float64(i%7) / 7
	}
	for _, level := range []collect.DistortionLevel{collect.DistortNone, collect.DistortLow, collect.DistortMedium, collect.DistortHigh} {
		tf, err := Distort(img, level, PaperRatios())
		if err != nil {
			t.Fatal(err)
		}
		if tf.Level != level {
			t.Fatalf("tag %v, want %v", tf.Level, level)
		}
		if tf.Image.W != 24 || tf.Image.H != 24 {
			t.Fatalf("distorted dims %dx%d", tf.Image.W, tf.Image.H)
		}
	}
	// None is the identity.
	tf, err := Distort(img, collect.DistortNone, PaperRatios())
	if err != nil {
		t.Fatal(err)
	}
	for i := range img.Pix {
		if tf.Image.Pix[i] != img.Pix[i] {
			t.Fatal("level none must be identity")
		}
	}
	// None must not alias the input.
	tf.Image.Pix[0] = 0.123
	if img.Pix[0] == 0.123 {
		t.Fatal("distorted frame aliases input")
	}
}

func TestDistortDestroysInformationMonotonically(t *testing.T) {
	// Higher distortion must lose at least as much detail: count distinct
	// values in the distorted frame.
	rng := rand.New(rand.NewSource(1))
	img := vision.MustNewImage(24, 24)
	for i := range img.Pix {
		img.Pix[i] = rng.Float64()
	}
	distinct := func(level collect.DistortionLevel) int {
		tf, err := Distort(img, level, PaperRatios())
		if err != nil {
			t.Fatal(err)
		}
		seen := map[float64]bool{}
		for _, v := range tf.Image.Pix {
			seen[v] = true
		}
		return len(seen)
	}
	none := distinct(collect.DistortNone)
	low := distinct(collect.DistortLow)
	med := distinct(collect.DistortMedium)
	high := distinct(collect.DistortHigh)
	if !(none >= low && low >= med && med >= high) {
		t.Fatalf("distinct values not monotone: %d %d %d %d", none, low, med, high)
	}
	if high > 4 { // 24/12 = 2x2 blocks
		t.Fatalf("high distortion kept %d distinct values, want <= 4", high)
	}
}

func TestDistortRowsValidation(t *testing.T) {
	if _, err := DistortRows(tensor.New(2, 10), 4, 4, collect.DistortLow, PaperRatios()); err == nil {
		t.Fatal("expected width mismatch error")
	}
}

func TestRouterRoutesByTag(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	r := NewRouter()
	modelA := nn.NewSequential("a", nn.NewDense("fc", rng, 16, 2))
	modelB := nn.NewSequential("b", nn.NewDense("fc", rng, 16, 2))
	r.Register(collect.DistortNone, modelA)
	r.Register(collect.DistortHigh, modelB)
	if len(r.Levels()) != 2 {
		t.Fatalf("levels = %v", r.Levels())
	}

	img := vision.MustNewImage(4, 4)
	img.Fill(0.5)
	probs, err := r.Classify(&TaggedFrame{Level: collect.DistortNone, Image: img})
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, p := range probs {
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("router probs sum to %g", sum)
	}
	if _, err := r.Classify(&TaggedFrame{Level: collect.DistortMedium, Image: img}); err == nil {
		t.Fatal("expected unregistered-level error")
	}
}

// distillFixture trains a teacher on a trivially separable frame task and
// returns everything needed for distillation tests.
func distillFixture(t *testing.T, rng *rand.Rand) (teacher *nn.Sequential, build StudentBuilder, frames *tensor.Tensor, labels []int, w, h int) {
	t.Helper()
	w, h = 16, 16
	const n = 120
	frames = tensor.New(n, w*h)
	labels = make([]int, n)
	for i := 0; i < n; i++ {
		c := i % 2
		labels[i] = c
		row := frames.Row(i)
		for j := range row {
			row[j] = rng.Float64() * 0.1
		}
		// Class 0: bright left half; class 1: bright right half. Survives
		// heavy down-sampling by construction.
		x0 := 0
		if c == 1 {
			x0 = w / 2
		}
		for y := 0; y < h; y++ {
			for x := x0; x < x0+w/2; x++ {
				row[y*w+x] = 0.9
			}
		}
	}
	teacher = buildTestCNN(rng, w, h, 2)
	opt := nn.NewAdam(0.003)
	if _, err := nn.TrainClassifier(teacher, opt, rng, frames, labels, nn.TrainConfig{Epochs: 8, BatchSize: 16}); err != nil {
		t.Fatal(err)
	}
	build = func(rng *rand.Rand) (*nn.Sequential, error) {
		return buildTestCNN(rng, w, h, 2), nil
	}
	return teacher, build, frames, labels, w, h
}

// buildTestCNN is a compact conv net for distillation tests (the production
// architecture lives in internal/core, which privacy cannot import without a
// cycle).
func buildTestCNN(rng *rand.Rand, w, h, classes int) *nn.Sequential {
	net := nn.NewSequential("testcnn")
	net.Add(nn.NewConv2D("c0", rng, tensor.ConvGeom{
		InC: 1, InH: h, InW: w, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1,
	}, 6))
	net.Add(nn.NewBatchNorm("bn0", 6*h*w, 6))
	net.Add(nn.NewReLU())
	net.Add(nn.NewMaxPool2D("p0", tensor.ConvGeom{
		InC: 6, InH: h, InW: w, KH: 2, KW: 2, StrideH: 2, StrideW: 2,
	}))
	net.Add(nn.NewGlobalAvgPool("gap", 6, h/2, w/2))
	net.Add(nn.NewDense("head", rng, 6, classes))
	return net
}

// accuracyOn evaluates Top-1 accuracy of net on (frames, labels).
func accuracyOn(t *testing.T, net *nn.Sequential, frames *tensor.Tensor, labels []int) float64 {
	t.Helper()
	pred, err := nn.PredictClasses(net, frames, 64)
	if err != nil {
		t.Fatal(err)
	}
	acc, err := nn.Accuracy(pred, labels)
	if err != nil {
		t.Fatal(err)
	}
	return acc
}

func TestDistillProducesWorkingStudent(t *testing.T) {
	if testing.Short() {
		t.Skip("distillation training skipped in -short mode")
	}
	rng := rand.New(rand.NewSource(3))
	teacher, build, frames, labels, w, h := distillFixture(t, rng)

	teacherAcc := accuracyOn(t, teacher, frames, labels)
	if teacherAcc < 0.95 {
		t.Fatalf("teacher accuracy %g too low for a meaningful distillation test", teacherAcc)
	}

	cfg := DefaultDistillConfig()
	cfg.Epochs = 8
	var epochs int
	cfg.Progress = func(epoch int, loss float64) { epochs++ }
	student, err := Distill(teacher, build, frames, w, h, collect.DistortLow, PaperRatios(), rng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if epochs != 8 {
		t.Fatalf("progress saw %d epochs", epochs)
	}

	// Evaluate the student on distorted frames (its operating condition).
	distorted, err := DistortRows(frames, w, h, collect.DistortLow, PaperRatios())
	if err != nil {
		t.Fatal(err)
	}
	studentAcc := accuracyOn(t, student, distorted, labels)
	if studentAcc < 0.9 {
		t.Fatalf("dCNN-L student accuracy = %g on a half-frame task that survives 3x down-sampling", studentAcc)
	}
}

func TestDistillValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	teacher := nn.NewSequential("t", nn.NewDense("fc", rng, 4, 2))
	build := func(rng *rand.Rand) (*nn.Sequential, error) {
		return nn.NewSequential("s", nn.NewDense("fc", rng, 4, 2)), nil
	}
	frames := tensor.New(4, 4)
	if _, err := Distill(teacher, build, frames, 2, 2, collect.DistortLow, PaperRatios(), rng, DistillConfig{}); err == nil {
		t.Fatal("expected config validation error")
	}
	cfg := DefaultDistillConfig()
	if _, err := Distill(teacher, build, tensor.New(0, 4), 2, 2, collect.DistortLow, PaperRatios(), rng, cfg); err == nil {
		t.Fatal("expected empty-frames error")
	}
}

func TestDistillInitFromTeacherCopiesWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	// A linear "teacher" whose weights are recognizable.
	teacher := nn.NewSequential("t", nn.NewDense("fc", rng, 4, 2))
	teacher.Params()[0].Value.Fill(0.777)
	var student *nn.Sequential
	build := func(rng *rand.Rand) (*nn.Sequential, error) {
		student = nn.NewSequential("s", nn.NewDense("fc", rng, 4, 2))
		return student, nil
	}
	frames := tensor.Full(0.5, 8, 4)
	cfg := DefaultDistillConfig()
	cfg.Epochs = 1
	cfg.LR = 1e-9 // keep weights essentially unchanged
	if _, err := Distill(teacher, build, frames, 2, 2, collect.DistortLow, PaperRatios(), rng, cfg); err != nil {
		t.Fatal(err)
	}
	if math.Abs(student.Params()[0].Value.Data()[0]-0.777) > 1e-3 {
		t.Fatalf("student weight = %g, want ~0.777 from teacher init", student.Params()[0].Value.Data()[0])
	}
}

func TestDistillWithTemperatureObjective(t *testing.T) {
	if testing.Short() {
		t.Skip("distillation training skipped in -short mode")
	}
	rng := rand.New(rand.NewSource(6))
	teacher, build, frames, labels, w, h := distillFixture(t, rng)
	cfg := DefaultDistillConfig()
	cfg.Epochs = 8
	cfg.Temperature = 3 // softened-CE objective instead of the paper's L2
	student, err := Distill(teacher, build, frames, w, h, collect.DistortLow, PaperRatios(), rng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	distorted, err := DistortRows(frames, w, h, collect.DistortLow, PaperRatios())
	if err != nil {
		t.Fatal(err)
	}
	if acc := accuracyOn(t, student, distorted, labels); acc < 0.9 {
		t.Fatalf("temperature-distilled accuracy = %g", acc)
	}
}

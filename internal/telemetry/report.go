package telemetry

import (
	"fmt"
	"io"
	"strings"
)

// WriteReport renders the human-readable telemetry summary the CLI
// -telemetry flags print: every non-empty histogram as one table row
// (count, mean, p50/p90/p99 in milliseconds) followed by the most recent
// completed trace tree from tracer (nil skips the trace section).
func WriteReport(w io.Writer, snap Snapshot, tracer *Tracer) error {
	var b strings.Builder
	b.WriteString("== telemetry: stage latency ==\n")
	fmt.Fprintf(&b, "%-36s %8s %10s %10s %10s %10s\n", "histogram", "count", "mean ms", "p50 ms", "p90 ms", "p99 ms")
	for _, h := range snap.Histograms {
		if h.Count == 0 {
			continue
		}
		fmt.Fprintf(&b, "%-36s %8d %10.3f %10.3f %10.3f %10.3f\n",
			h.Name, h.Count, h.Mean*1000, h.P50*1000, h.P90*1000, h.P99*1000)
	}
	if tracer != nil {
		if traces := tracer.RecentTraces(); len(traces) > 0 {
			b.WriteString("\n== telemetry: most recent trace ==\n")
			b.WriteString(RenderTree(traces[len(traces)-1]))
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

package telemetry

import (
	"testing"
	"time"
)

// The acceptance bar for leaving telemetry on in production: counter
// increments and span start/stop must be allocation-free after warm-up.
// These tests enforce it in CI; the benchmarks below report the actual cost.

func TestCounterIncAllocationFree(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("darnet_alloc_total", "")
	if n := testing.AllocsPerRun(1000, c.Inc); n != 0 {
		t.Fatalf("Counter.Inc allocates %.1f per op, want 0", n)
	}
}

func TestGaugeSetAllocationFree(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("darnet_alloc_gauge", "")
	if n := testing.AllocsPerRun(1000, func() { g.Set(1.5) }); n != 0 {
		t.Fatalf("Gauge.Set allocates %.1f per op, want 0", n)
	}
}

func TestHistogramObserveAllocationFree(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("darnet_alloc_seconds", "", nil)
	if n := testing.AllocsPerRun(1000, func() { h.Observe(0.00123) }); n != 0 {
		t.Fatalf("Histogram.Observe allocates %.1f per op, want 0", n)
	}
}

func TestSpanStartEndAllocationFree(t *testing.T) {
	tr := NewTracer(8, 0) // unsampled path: the 63-of-64 production case
	// Warm the pool first: the very first spans allocate their pooled
	// backing objects.
	for i := 0; i < 16; i++ {
		s := tr.StartRoot("darnet_warm")
		s.StartChild("darnet_warm_child").End()
		s.End()
	}
	n := testing.AllocsPerRun(1000, func() {
		s := tr.StartRoot("darnet_alloc_span")
		c := s.StartChild("darnet_alloc_child")
		c.End()
		s.End()
	})
	if n != 0 {
		t.Fatalf("span start/child/stop allocates %.1f per op, want 0", n)
	}
}

func BenchmarkCounterInc(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("darnet_bench_total", "")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	r := NewRegistry()
	h := r.Histogram("darnet_bench_seconds", "", nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(0.000123)
	}
}

func BenchmarkHistogramObserveSince(b *testing.B) {
	r := NewRegistry()
	h := r.Histogram("darnet_bench_since_seconds", "", nil)
	start := time.Now()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.ObserveSince(start)
	}
}

func BenchmarkSpanStartEndUnsampled(b *testing.B) {
	tr := NewTracer(8, 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := tr.StartRoot("darnet_bench_span")
		s.End()
	}
}

func BenchmarkSpanTreeSampled(b *testing.B) {
	tr := NewTracer(8, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := tr.StartRoot("darnet_bench_span")
		c := s.StartChild("darnet_bench_child")
		c.End()
		s.End()
	}
}

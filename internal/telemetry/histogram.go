package telemetry

import (
	"fmt"
	"math"
	"sync/atomic"
	"time"
)

// latencyBuckets are the default histogram bounds: 27 exponential buckets
// doubling from 1 µs to 64 s (1e-6 * 2^k seconds, k = 0..26), plus the
// implicit +Inf overflow. The span covers everything the pipeline produces —
// a tsdb insert is a few µs, a cold CNN forward is tens of ms, a full
// training epoch stays under a minute at bench scale — with ~2x relative
// quantile error, which is enough resolution to compare stages.
var latencyBuckets = func() []float64 {
	b := make([]float64, 27)
	v := 1e-6
	for i := range b {
		b[i] = v
		v *= 2
	}
	return b
}()

// LatencyBuckets returns (a copy of) the default latency bucket upper
// bounds in seconds.
func LatencyBuckets() []float64 {
	return append([]float64(nil), latencyBuckets...)
}

// Histogram is a fixed-bucket distribution of observations (typically
// latencies in seconds). Observation is lock-free: one atomic add into the
// bucket found by binary search over the static bounds, plus count/sum
// updates. Quantiles are estimated by linear interpolation inside the
// covering bucket.
type Histogram struct {
	name    string
	help    string
	bounds  []float64 // ascending upper bounds; final overflow bucket is implicit
	buckets []atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits of the running sum
}

func newHistogram(name, help string, bounds []float64) *Histogram {
	if bounds == nil {
		bounds = latencyBuckets
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("telemetry: histogram %s bounds must ascend, got %v", name, bounds))
		}
	}
	return &Histogram{
		name:    name,
		help:    help,
		bounds:  append([]float64(nil), bounds...),
		buckets: make([]atomic.Int64, len(bounds)+1),
	}
}

// Name returns the registered metric name.
func (h *Histogram) Name() string { return h.name }

// Observe records one observation (in the unit of the bucket bounds;
// seconds for latency histograms).
//
//lint:hotpath
func (h *Histogram) Observe(v float64) {
	// Binary search for the first bound >= v; the overflow bucket catches
	// the rest.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if h.bounds[mid] >= v {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	h.buckets[lo].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		sum := math.Float64frombits(old) + v
		if h.sumBits.CompareAndSwap(old, math.Float64bits(sum)) {
			return
		}
	}
}

// ObserveSince records the seconds elapsed since start.
//
//lint:hotpath
func (h *Histogram) ObserveSince(start time.Time) {
	h.Observe(time.Since(start).Seconds())
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Quantile estimates the q-quantile (0 <= q <= 1) by interpolating within
// the bucket containing the target rank. It returns 0 for an empty
// histogram; the overflow bucket reports its lower bound (the estimate is a
// floor there).
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	cum := 0.0
	for i := range h.buckets {
		n := float64(h.buckets[i].Load())
		if n == 0 {
			continue
		}
		if cum+n >= rank {
			lower := 0.0
			if i > 0 {
				lower = h.bounds[i-1]
			}
			if i == len(h.bounds) {
				return lower // overflow bucket: no upper bound to interpolate to
			}
			upper := h.bounds[i]
			frac := (rank - cum) / n
			return lower + frac*(upper-lower)
		}
		cum += n
	}
	return h.bounds[len(h.bounds)-1]
}

// Mean returns the mean observation (0 when empty).
func (h *Histogram) Mean() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return h.Sum() / float64(n)
}

// HistogramBucket is one bucket's state: observations <= UpperBound
// (cumulative counts are computed by consumers).
type HistogramBucket struct {
	UpperBound float64 `json:"le"` // +Inf for the overflow bucket
	Count      int64   `json:"count"`
}

// HistogramSnapshot is one histogram's state at snapshot time, including
// the interpolated latency summary (p50/p90/p99).
type HistogramSnapshot struct {
	Name    string            `json:"name"`
	Help    string            `json:"help,omitempty"`
	Count   int64             `json:"count"`
	Sum     float64           `json:"sum"`
	Mean    float64           `json:"mean"`
	P50     float64           `json:"p50"`
	P90     float64           `json:"p90"`
	P99     float64           `json:"p99"`
	Buckets []HistogramBucket `json:"buckets,omitempty"`
}

// Snapshot captures the histogram's current state. Non-empty buckets only.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Name:  h.name,
		Help:  h.help,
		Count: h.Count(),
		Sum:   h.Sum(),
		Mean:  h.Mean(),
		P50:   h.Quantile(0.5),
		P90:   h.Quantile(0.9),
		P99:   h.Quantile(0.99),
	}
	for i := range h.buckets {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		ub := math.Inf(1)
		if i < len(h.bounds) {
			ub = h.bounds[i]
		}
		s.Buckets = append(s.Buckets, HistogramBucket{UpperBound: ub, Count: n})
	}
	return s
}

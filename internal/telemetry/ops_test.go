package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func opsFixture() (*Registry, *Tracer) {
	reg := NewRegistry()
	reg.Counter("darnet_ops_batches_total", "batches").Add(3)
	reg.Gauge("darnet_ops_agents", "connected agents").Set(2)
	reg.Histogram("darnet_ops_ingest_seconds", "ingest latency", nil).Observe(0.0015)
	tr := NewTracer(8, 1)
	root := tr.StartRoot("darnet_ingest_batch")
	c := root.StartChild("darnet_stage_store")
	c.End()
	root.End()
	return reg, tr
}

func get(t *testing.T, srv *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestOpsEndpoints(t *testing.T) {
	reg, tr := opsFixture()
	srv := httptest.NewServer(NewOpsHandler(reg, tr))
	defer srv.Close()

	code, body := get(t, srv, "/healthz")
	if code != http.StatusOK || body != "ok\n" {
		t.Fatalf("/healthz = %d %q", code, body)
	}

	code, body = get(t, srv, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	for _, want := range []string{
		"darnet_ops_batches_total 3",
		"darnet_ops_agents 2",
		"darnet_ops_ingest_seconds_count 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}

	code, body = get(t, srv, "/metrics?format=json")
	if code != http.StatusOK {
		t.Fatalf("/metrics?format=json status %d", code)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("metrics JSON: %v", err)
	}
	if len(snap.Counters) != 1 || snap.Counters[0].Value != 3 {
		t.Fatalf("unexpected JSON counters: %+v", snap.Counters)
	}
	if len(snap.Histograms) != 1 || snap.Histograms[0].Count != 1 {
		t.Fatalf("unexpected JSON histograms: %+v", snap.Histograms)
	}

	code, body = get(t, srv, "/tracez")
	if code != http.StatusOK {
		t.Fatalf("/tracez status %d", code)
	}
	var traces struct {
		Traces []*TraceNode `json:"traces"`
	}
	if err := json.Unmarshal([]byte(body), &traces); err != nil {
		t.Fatalf("tracez JSON: %v", err)
	}
	if len(traces.Traces) != 1 || traces.Traces[0].Name != "darnet_ingest_batch" ||
		len(traces.Traces[0].Children) != 1 {
		t.Fatalf("unexpected traces: %+v", traces.Traces)
	}

	code, body = get(t, srv, "/tracez?format=text")
	if code != http.StatusOK || !strings.Contains(body, "darnet_stage_store") {
		t.Fatalf("/tracez?format=text = %d %q", code, body)
	}

	code, body = get(t, srv, "/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/ = %d", code)
	}
}

// TestHealthzStates drives /healthz through the three streaming-pipeline
// states: default liveness, degraded (still 200 so traffic keeps flowing,
// state in the body), and overloaded (503 so orchestrators back off).
func TestHealthzStates(t *testing.T) {
	reg, tr := opsFixture()
	srv := httptest.NewServer(NewOpsHandler(reg, tr))
	defer srv.Close()
	defer SetHealthSource(nil)

	var h Health
	var mu sync.Mutex
	SetHealthSource(func() Health {
		mu.Lock()
		defer mu.Unlock()
		return h
	})
	set := func(status string, ok bool) {
		mu.Lock()
		h = Health{Status: status, OK: ok}
		mu.Unlock()
	}

	set("ok", true)
	if code, body := get(t, srv, "/healthz"); code != http.StatusOK || body != "ok\n" {
		t.Fatalf("/healthz ok = %d %q", code, body)
	}
	set("degraded: frame-skipping engaged", true)
	code, body := get(t, srv, "/healthz")
	if code != http.StatusOK || !strings.Contains(body, "degraded") {
		t.Fatalf("/healthz degraded = %d %q", code, body)
	}
	set("overloaded: classify queue full", false)
	code, body = get(t, srv, "/healthz")
	if code != http.StatusServiceUnavailable || !strings.Contains(body, "overloaded") {
		t.Fatalf("/healthz overloaded = %d %q", code, body)
	}

	SetHealthSource(nil)
	if code, body := get(t, srv, "/healthz"); code != http.StatusOK || body != "ok\n" {
		t.Fatalf("/healthz after reset = %d %q", code, body)
	}
}

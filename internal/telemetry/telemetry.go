// Package telemetry is DarNet's stdlib-only observability layer: a metrics
// registry of lock-free counters, gauges, and fixed-bucket latency
// histograms; context-carried span tracing with parent/child links; and the
// HTTP ops endpoint darnetd exposes behind -ops (/metrics, /healthz,
// /tracez, and net/http/pprof).
//
// The middleware half of the system is a long-running controller ingesting
// agent streams; real-time claims hinge on measured per-stage latency, so
// the hot-path primitives here are built to be cheap enough to leave on in
// production: counter increments and span start/stop are a handful of atomic
// operations and allocation-free after warm-up (spans are pooled; sampled
// trace retention is the only allocating path, amortized by the sampling
// period).
//
// Metric and span names are literal snake_case strings with a darnet_
// prefix; the metricname analyzer in cmd/darnet-lint enforces this at review
// time and Registry registration enforces it at startup.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Default is the process-wide registry the instrumented packages (wire,
// tsdb, collect, core) register into and the ops endpoint serves.
var Default = NewRegistry()

// ValidName reports whether name is a legal metric/span name: snake_case
// with a darnet_ prefix, e.g. darnet_collect_batches_total.
func ValidName(name string) bool {
	const prefix = "darnet_"
	if len(name) <= len(prefix) || name[:len(prefix)] != prefix {
		return false
	}
	prev := byte('_')
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9':
		case c == '_':
			if prev == '_' && i > 0 {
				return false // no double underscores
			}
		default:
			return false
		}
		prev = c
	}
	return prev != '_'
}

// historySuffixes are the sub-series the telemetry→tsdb scraper derives from
// one histogram: its tracked percentiles plus the running count and sum.
var historySuffixes = []string{".p50", ".p90", ".p99", ".count", ".sum"}

// ValidHistorySeries reports whether name is a legal metric-history series:
// a valid metric name, optionally carrying one of the scrape suffixes the
// telemetry→tsdb bridge appends to histogram names (.p50/.p90/.p99/.count/
// .sum). SLO objectives reference scraped series by these names, and the
// metricname analyzer enforces the format on their literal arguments.
func ValidHistorySeries(name string) bool {
	for _, suf := range historySuffixes {
		if len(name) > len(suf) && name[len(name)-len(suf):] == suf {
			return ValidName(name[:len(name)-len(suf)])
		}
	}
	return ValidName(name)
}

func mustValidName(name string) {
	if !ValidName(name) {
		panic(fmt.Sprintf("telemetry: invalid metric name %q: must be snake_case with a darnet_ prefix", name))
	}
}

// Counter is a monotonically increasing lock-free counter.
type Counter struct {
	v    atomic.Int64
	name string
	help string
}

// Inc adds 1.
//
//lint:hotpath
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n; negative n panics (counters are monotonic).
//
//lint:hotpath
func (c *Counter) Add(n int64) {
	if n < 0 {
		//lint:ignore hotalloc formatting a programming-error panic is not a live path
		panic(fmt.Sprintf("telemetry: counter %s cannot decrease", c.name))
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Name returns the registered metric name.
func (c *Counter) Name() string { return c.name }

// Gauge is a lock-free instantaneous value (float64 bits in an atomic word).
type Gauge struct {
	bits atomic.Uint64
	name string
	help string
}

// Set replaces the gauge value.
//
//lint:hotpath
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add shifts the gauge by delta (CAS loop; deltas may be negative).
//
//lint:hotpath
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		v := math.Float64frombits(old) + delta
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Name returns the registered metric name.
func (g *Gauge) Name() string { return g.name }

// Registry holds named metrics. Registration is guarded by a mutex but
// returns stable handles, so the hot paths (Inc/Set/Observe on the handle)
// never touch the lock: packages register once in a var block and increment
// the handle.
type Registry struct {
	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the counter registered under name, creating it on first
// use. It panics on an invalid name or if the name is already registered as
// a different metric kind — both are programming errors the metricname
// analyzer catches at review time.
func (r *Registry) Counter(name, help string) *Counter {
	mustValidName(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	r.checkFree(name, "counter")
	c := &Counter{name: name, help: help}
	r.counters[name] = c
	return c
}

// Gauge returns the gauge registered under name, creating it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	mustValidName(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	r.checkFree(name, "gauge")
	g := &Gauge{name: name, help: help}
	r.gauges[name] = g
	return g
}

// Histogram returns the histogram registered under name, creating it with
// the given bucket upper bounds (seconds, ascending) on first use. A nil
// buckets slice uses LatencyBuckets.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	mustValidName(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.histograms[name]; ok {
		return h
	}
	r.checkFree(name, "histogram")
	h := newHistogram(name, help, buckets)
	r.histograms[name] = h
	return h
}

// checkFree panics if name is registered under a kind other than want.
// Callers hold r.mu.
func (r *Registry) checkFree(name, want string) {
	kinds := []struct {
		kind string
		used bool
	}{
		{"counter", r.counters[name] != nil},
		{"gauge", r.gauges[name] != nil},
		{"histogram", r.histograms[name] != nil},
	}
	for _, k := range kinds {
		if k.used && k.kind != want {
			panic(fmt.Sprintf("telemetry: %s already registered as a %s, cannot re-register as a %s", name, k.kind, want))
		}
	}
}

// NewCounter registers (or fetches) a counter in the Default registry.
func NewCounter(name, help string) *Counter { return Default.Counter(name, help) }

// NewGauge registers (or fetches) a gauge in the Default registry.
func NewGauge(name, help string) *Gauge { return Default.Gauge(name, help) }

// NewHistogram registers (or fetches) a histogram in the Default registry.
func NewHistogram(name, help string, buckets []float64) *Histogram {
	return Default.Histogram(name, help, buckets)
}

// CounterSnapshot is one counter's state at snapshot time.
type CounterSnapshot struct {
	Name  string `json:"name"`
	Help  string `json:"help,omitempty"`
	Value int64  `json:"value"`
}

// GaugeSnapshot is one gauge's state at snapshot time.
type GaugeSnapshot struct {
	Name  string  `json:"name"`
	Help  string  `json:"help,omitempty"`
	Value float64 `json:"value"`
}

// Snapshot is a point-in-time copy of every metric in a registry, in
// name-sorted order per kind. Values of different metrics are read without
// a global lock, so a snapshot is internally consistent per metric, not
// across metrics — the standard exposition trade-off.
type Snapshot struct {
	Counters   []CounterSnapshot   `json:"counters"`
	Gauges     []GaugeSnapshot     `json:"gauges"`
	Histograms []HistogramSnapshot `json:"histograms"`
}

// Snapshot captures the registry's current metric values.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	counters := make([]*Counter, 0, len(r.counters))
	for _, c := range r.counters {
		counters = append(counters, c)
	}
	gauges := make([]*Gauge, 0, len(r.gauges))
	for _, g := range r.gauges {
		gauges = append(gauges, g)
	}
	histograms := make([]*Histogram, 0, len(r.histograms))
	for _, h := range r.histograms {
		histograms = append(histograms, h)
	}
	r.mu.RUnlock()

	var s Snapshot
	for _, c := range counters {
		s.Counters = append(s.Counters, CounterSnapshot{Name: c.name, Help: c.help, Value: c.Value()})
	}
	for _, g := range gauges {
		s.Gauges = append(s.Gauges, GaugeSnapshot{Name: g.name, Help: g.help, Value: g.Value()})
	}
	for _, h := range histograms {
		s.Histograms = append(s.Histograms, h.Snapshot())
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
	return s
}

package telemetry

import (
	"sync/atomic"
	"time"
)

// Cross-process tracing: a span's identity can be serialized into a
// SpanContext, carried across the wire inside a protocol frame, and joined on
// the receiving process with JoinRemote. Fragments of the same trace — the
// agent's flush span, the controller's ingest span, the stream pipeline's
// tick span — complete independently in the tracer ring and are stitched
// back into one tree at export time by MergedTraces, which is what /tracez
// serves. Synthetic segments (Segment) make the intervals no local span
// covers — wire transit, queue dwell — explicit children of the merged tree.

// SpanContext is the serializable identity of a span: enough for a remote
// process to continue the trace. The zero value means "no trace" — a legacy
// peer, or tracing disabled — and every consumer treats it as absent.
type SpanContext struct {
	// TraceID identifies the whole trace; every span of the trace shares it.
	TraceID uint64
	// SpanID identifies the span this context was captured from; a span
	// joined remotely records it as its parent.
	SpanID uint64
	// Sampled propagates the sampling decision: a remote join of a sampled
	// context is retained regardless of the local sampling counter, so a
	// trace sampled at its root is captured end to end.
	Sampled bool
	// SentUnixNano timestamps the hand-off (set by the sender just before
	// the context crosses a process boundary), letting the receiver render
	// the wire-transit interval as an explicit segment.
	SentUnixNano int64
}

// Valid reports whether the context identifies a trace (the zero value does
// not).
func (c SpanContext) Valid() bool { return c.TraceID != 0 && c.SpanID != 0 }

// Span and trace IDs are drawn from one process-wide sequence mixed through
// a splitmix64 finalizer: unique within the process by construction, and the
// time-of-start seed decorrelates IDs across the fleet's processes without
// touching math/rand's global state. Two atomic ops per ID keeps span
// creation on the allocation-free hot path.
var (
	idSeq  atomic.Uint64
	idSeed = uint64(time.Now().UnixNano())
)

//lint:hotpath
func newID() uint64 {
	x := mix64(idSeq.Add(1) + idSeed)
	if x == 0 {
		return 1 // 0 is the "absent" sentinel; never issue it
	}
	return x
}

// mix64 is the splitmix64 output permutation: a bijection on uint64, so
// sequential inputs still yield unique, well-scattered IDs.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Context captures the span's serializable identity for propagation. On a
// nil span it returns the zero (absent) context, so instrumented senders
// need no nil checks. SentUnixNano is left zero; the sender stamps it at the
// hand-off.
//
//lint:hotpath
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return SpanContext{TraceID: s.traceID, SpanID: s.spanID, Sampled: s.sampled}
}

// JoinRemote begins a local root span that continues the remote trace
// described by rc: same trace ID, parented (across the process boundary) to
// rc's span, and sampled exactly when the remote side sampled — the root's
// decision governs the whole trace, so joined spans bypass the local
// sampling counter. An invalid rc degrades to StartRoot, which is what a
// batch from a legacy peer produces.
//
//lint:hotpath
func (t *Tracer) JoinRemote(name string, rc SpanContext) *Span {
	if !rc.Valid() {
		return t.StartRoot(name)
	}
	s := t.newSpan(name, nil, rc.Sampled)
	s.traceID = rc.TraceID
	s.remoteParent = rc.SpanID
	return s
}

// Segment records an already-measured interval as an ended child of s: the
// stages no local span can time live — wire transit (send stamp to receive),
// queue dwell (admission to dequeue) — rendered explicitly in the trace
// tree. Negative durations (cross-process clock skew) clamp to zero. On a
// nil or unsampled span Segment is a no-op, keeping the unsampled hot path
// allocation-free.
func (s *Span) Segment(name string, start time.Time, d time.Duration) {
	if s == nil || !s.sampled {
		return
	}
	if d < 0 {
		d = 0
	}
	c := &Span{
		tracer:   s.tracer,
		parent:   s,
		name:     name,
		start:    start,
		durNanos: int64(d),
		sampled:  true,
		traceID:  s.traceID,
		spanID:   newID(),
	}
	c.ended.Store(true)
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
}

// MergedTraces returns the completed sampled traces with cross-process
// fragments stitched together: roots that joined a remote context attach
// under the span they name as parent when that span's fragment is also in
// the ring (matched by trace and span ID), and remain top-level fragments —
// wire-transit and dwell segments intact — when it is not (evicted, or
// owned by another process). This is the /tracez view.
func (t *Tracer) MergedTraces() []*TraceNode {
	t.mu.Lock()
	roots := append([]*Span(nil), t.recent...)
	t.mu.Unlock()

	nodes := make([]*TraceNode, 0, len(roots))
	index := make(map[uint64]*TraceNode) // span ID -> exported node, all fragments
	for _, r := range roots {
		n := r.Tree()
		if n == nil {
			continue
		}
		nodes = append(nodes, n)
		indexNodes(index, n)
	}
	out := make([]*TraceNode, 0, len(nodes))
	for _, n := range nodes {
		if n.parentSpanID != 0 {
			if p, ok := index[n.parentSpanID]; ok && p.traceID == n.traceID {
				p.Children = append(p.Children, n)
				continue
			}
		}
		out = append(out, n)
	}
	return out
}

func indexNodes(index map[uint64]*TraceNode, n *TraceNode) {
	if n.spanID != 0 {
		index[n.spanID] = n
	}
	for _, c := range n.Children {
		indexNodes(index, c)
	}
}

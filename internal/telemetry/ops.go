package telemetry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/pprof"
	"sync"
)

// Health is what /healthz reports. Status is a short human-readable state
// ("ok", "degraded: frame-skipping", "overloaded: classify queue full"); OK
// false turns the probe into a 503 so load balancers and orchestrators stop
// routing to an overloaded process, while a degraded-but-serving process
// stays 200 with the state visible in the body.
type Health struct {
	Status string
	OK     bool
}

var (
	healthMu     sync.RWMutex
	healthSource func() Health
)

// SetHealthSource installs the function /healthz consults; nil restores the
// static liveness default ("ok"). The streaming pipeline registers its
// ok/degraded/overloaded view here.
func SetHealthSource(fn func() Health) {
	healthMu.Lock()
	healthSource = fn
	healthMu.Unlock()
}

// CurrentHealth evaluates the installed health source (or the static "ok"
// default when none is set).
func CurrentHealth() Health {
	healthMu.RLock()
	fn := healthSource
	healthMu.RUnlock()
	if fn == nil {
		return Health{Status: "ok", OK: true}
	}
	return fn()
}

// WriteText renders a registry snapshot in a Prometheus-style text
// exposition: HELP/TYPE comment lines, counter and gauge samples, and for
// histograms the quantile summaries plus _sum and _count.
func WriteText(w io.Writer, s Snapshot) error {
	var b bytes.Buffer
	for _, c := range s.Counters {
		writeHeader(&b, c.Name, c.Help, "counter")
		fmt.Fprintf(&b, "%s %d\n", c.Name, c.Value)
	}
	for _, g := range s.Gauges {
		writeHeader(&b, g.Name, g.Help, "gauge")
		fmt.Fprintf(&b, "%s %s\n", g.Name, formatFloat(g.Value))
	}
	for _, h := range s.Histograms {
		writeHeader(&b, h.Name, h.Help, "summary")
		fmt.Fprintf(&b, "%s{quantile=\"0.5\"} %s\n", h.Name, formatFloat(h.P50))
		fmt.Fprintf(&b, "%s{quantile=\"0.9\"} %s\n", h.Name, formatFloat(h.P90))
		fmt.Fprintf(&b, "%s{quantile=\"0.99\"} %s\n", h.Name, formatFloat(h.P99))
		fmt.Fprintf(&b, "%s_sum %s\n", h.Name, formatFloat(h.Sum))
		fmt.Fprintf(&b, "%s_count %d\n", h.Name, h.Count)
	}
	_, err := w.Write(b.Bytes())
	return err
}

func writeHeader(b *bytes.Buffer, name, help, kind string) {
	if help != "" {
		fmt.Fprintf(b, "# HELP %s %s\n", name, help)
	}
	fmt.Fprintf(b, "# TYPE %s %s\n", name, kind)
}

func formatFloat(v float64) string {
	//lint:ignore floatcmp exact integrality test decides formatting, not numerics
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// NewOpsHandler returns the ops endpoint handler darnetd serves behind
// -ops: /metrics (text, or JSON with ?format=json), /healthz, /tracez
// (recent sampled traces, JSON or ?format=text), and the net/http/pprof
// suite under /debug/pprof/.
func NewOpsHandler(reg *Registry, tracer *Tracer) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		snap := reg.Snapshot()
		if r.URL.Query().Get("format") == "json" {
			writeJSON(w, snap)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := WriteText(w, snap); err != nil {
			// The response is already partially written; nothing to send the
			// client, and a broken scrape connection is not actionable here.
			return
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		h := CurrentHealth()
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if !h.OK {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		if _, err := io.WriteString(w, h.Status+"\n"); err != nil {
			return
		}
	})
	mux.HandleFunc("/tracez", func(w http.ResponseWriter, r *http.Request) {
		// Merged view: cross-process fragments of one trace (agent flush,
		// controller ingest, stream tick) stitched into a single tree.
		traces := tracer.MergedTraces()
		if r.URL.Query().Get("format") == "text" {
			var b bytes.Buffer
			for _, tr := range traces {
				b.WriteString(RenderTree(tr))
				b.WriteString("\n")
			}
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			if _, err := w.Write(b.Bytes()); err != nil {
				return
			}
			return
		}
		writeJSON(w, struct {
			Traces []*TraceNode `json:"traces"`
		}{Traces: traces})
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		// Encoding registry snapshots and trace trees cannot fail; a write
		// error means the scraper hung up, which is not actionable.
		return
	}
}

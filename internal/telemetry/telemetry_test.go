package telemetry

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestValidName(t *testing.T) {
	valid := []string{
		"darnet_collect_batches_total",
		"darnet_tsdb_insert_seconds",
		"darnet_x1",
	}
	for _, n := range valid {
		if !ValidName(n) {
			t.Errorf("ValidName(%q) = false, want true", n)
		}
	}
	invalid := []string{
		"",
		"darnet_",
		"collect_batches_total",   // no prefix
		"darnet_CamelCase",        // upper case
		"darnet_double__under",    // double underscore
		"darnet_trailing_",        // trailing underscore
		"darnet_bad-char",         // hyphen
		"Darnet_collect_batches",  // capital prefix
		"darnet_collect batches",  // space
		"darnetcollect_batches_t", // prefix must be darnet_
	}
	for _, n := range invalid {
		if ValidName(n) {
			t.Errorf("ValidName(%q) = true, want false", n)
		}
	}
}

func TestRegistryRegistrationIsIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("darnet_test_total", "help")
	b := r.Counter("darnet_test_total", "other help ignored")
	if a != b {
		t.Fatal("re-registration returned a different handle")
	}
	g1 := r.Gauge("darnet_test_gauge", "")
	g2 := r.Gauge("darnet_test_gauge", "")
	if g1 != g2 {
		t.Fatal("gauge re-registration returned a different handle")
	}
	h1 := r.Histogram("darnet_test_seconds", "", nil)
	h2 := r.Histogram("darnet_test_seconds", "", nil)
	if h1 != h2 {
		t.Fatal("histogram re-registration returned a different handle")
	}
}

func TestRegistryRejectsBadNamesAndKindClashes(t *testing.T) {
	r := NewRegistry()
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("invalid name", func() { r.Counter("not_darnet", "") })
	mustPanic("invalid gauge name", func() { r.Gauge("darnet_Bad", "") })
	r.Counter("darnet_clash_total", "")
	mustPanic("kind clash", func() { r.Gauge("darnet_clash_total", "") })
	mustPanic("kind clash histogram", func() { r.Histogram("darnet_clash_total", "", nil) })
	mustPanic("negative counter add", func() { r.Counter("darnet_neg_total", "").Add(-1) })
}

func TestCounterAndGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("darnet_c_total", "")
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	g := r.Gauge("darnet_g", "")
	g.Set(1.5)
	g.Add(-0.5)
	if got := g.Value(); got != 1 {
		t.Fatalf("gauge = %g, want 1", got)
	}
}

func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("darnet_conc_total", "")
	g := r.Gauge("darnet_conc_gauge", "")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				g.Add(1)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter = %d, want 8000", c.Value())
	}
	if g.Value() != 8000 {
		t.Fatalf("gauge = %g, want 8000", g.Value())
	}
}

func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	// Uniform bucket bounds make the interpolation exactly checkable.
	h := r.Histogram("darnet_h_seconds", "", []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i%10) + 0.5) // 0.5..9.5 uniform
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d, want 100", h.Count())
	}
	p50 := h.Quantile(0.5)
	if p50 < 4 || p50 > 6 {
		t.Fatalf("p50 = %g, want ~5", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < 9 || p99 > 10 {
		t.Fatalf("p99 = %g, want ~9.9", p99)
	}
	if q := h.Quantile(0); q < 0 || q > 1 {
		t.Fatalf("q0 = %g, want within first bucket", q)
	}
	mean := h.Mean()
	if math.Abs(mean-5) > 0.2 {
		t.Fatalf("mean = %g, want ~5", mean)
	}
}

func TestHistogramOverflowAndEmpty(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("darnet_of_seconds", "", []float64{1, 2})
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile should be 0")
	}
	h.Observe(100) // overflow bucket
	// The overflow estimate floors at the last bound.
	if q := h.Quantile(0.99); q != 2 {
		t.Fatalf("overflow quantile = %g, want 2 (last bound)", q)
	}
	snap := h.Snapshot()
	if len(snap.Buckets) != 1 || !math.IsInf(snap.Buckets[0].UpperBound, 1) {
		t.Fatalf("snapshot buckets = %+v, want one +Inf bucket", snap.Buckets)
	}
}

func TestHistogramObserveSince(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("darnet_since_seconds", "", nil)
	h.ObserveSince(time.Now().Add(-10 * time.Millisecond))
	if h.Count() != 1 {
		t.Fatalf("count = %d, want 1", h.Count())
	}
	if s := h.Sum(); s < 0.009 || s > 1 {
		t.Fatalf("sum = %g, want ~0.01", s)
	}
}

func TestHistogramRejectsUnsortedBounds(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on unsorted bounds")
		}
	}()
	r.Histogram("darnet_bad_seconds", "", []float64{2, 1})
}

func TestLatencyBucketsCopy(t *testing.T) {
	b := LatencyBuckets()
	if len(b) != 27 || b[0] != 1e-6 {
		t.Fatalf("unexpected default buckets: %d bounds, first %g", len(b), b[0])
	}
	b[0] = 99 // mutating the copy must not corrupt the shared defaults
	if LatencyBuckets()[0] != 1e-6 {
		t.Fatal("LatencyBuckets returned shared storage")
	}
}

func TestSnapshotSortedAndComplete(t *testing.T) {
	r := NewRegistry()
	r.Counter("darnet_zz_total", "").Inc()
	r.Counter("darnet_aa_total", "help text").Add(2)
	r.Gauge("darnet_mid", "").Set(3)
	r.Histogram("darnet_lat_seconds", "", nil).Observe(0.001)
	s := r.Snapshot()
	if len(s.Counters) != 2 || s.Counters[0].Name != "darnet_aa_total" || s.Counters[1].Name != "darnet_zz_total" {
		t.Fatalf("counters not sorted: %+v", s.Counters)
	}
	if s.Counters[0].Value != 2 || s.Counters[0].Help != "help text" {
		t.Fatalf("counter snapshot wrong: %+v", s.Counters[0])
	}
	if len(s.Gauges) != 1 || s.Gauges[0].Value != 3 {
		t.Fatalf("gauge snapshot wrong: %+v", s.Gauges)
	}
	if len(s.Histograms) != 1 || s.Histograms[0].Count != 1 {
		t.Fatalf("histogram snapshot wrong: %+v", s.Histograms)
	}
}

func TestWriteText(t *testing.T) {
	r := NewRegistry()
	r.Counter("darnet_batches_total", "ingested batches").Add(7)
	r.Gauge("darnet_skew_millis", "").Set(-2.5)
	r.Histogram("darnet_ingest_seconds", "", nil).Observe(0.002)
	var b strings.Builder
	if err := WriteText(&b, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP darnet_batches_total ingested batches",
		"# TYPE darnet_batches_total counter",
		"darnet_batches_total 7",
		"darnet_skew_millis -2.5",
		"# TYPE darnet_ingest_seconds summary",
		`darnet_ingest_seconds{quantile="0.5"}`,
		"darnet_ingest_seconds_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}

package telemetry

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultTracer is the process-wide tracer the instrumented pipeline stages
// report to and /tracez serves. It samples the first of every 64 root spans
// (so the very first trace of a fresh process is always captured) and keeps
// the 32 most recent completed traces.
var DefaultTracer = NewTracer(32, 64)

// Tracer creates spans and retains a ring of recently completed sampled
// traces. Unsampled spans are recycled through a pool, so the span
// start/stop hot path is allocation-free after warm-up; only the 1-in-N
// sampled traces allocate (their trees are retained for /tracez).
type Tracer struct {
	sampleEvery int64 // 0 disables sampling entirely; 1 samples every root
	capacity    int
	seq         atomic.Int64
	pool        sync.Pool

	mu     sync.Mutex
	recent []*Span // completed sampled roots, oldest first
}

// NewTracer returns a tracer keeping up to capacity completed traces and
// sampling the first of every sampleEvery root spans (0 = never sample,
// 1 = sample every root).
func NewTracer(capacity, sampleEvery int) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	t := &Tracer{sampleEvery: int64(sampleEvery), capacity: capacity}
	t.pool.New = func() any { return &Span{} }
	return t
}

// Span is one timed pipeline stage. Spans form parent/child trees; a
// sampled root's completed tree is retained by its tracer. The zero Span is
// not usable; obtain spans from a Tracer. A nil *Span is safe to use: all
// methods no-op, so instrumented code never needs nil checks.
type Span struct {
	tracer   *Tracer
	parent   *Span // nil for roots
	name     string
	start    time.Time
	durNanos int64
	sampled  bool
	ended    atomic.Bool

	// Trace identity (see tracectx.go): traceID is shared by every span of
	// the trace, spanID is unique per span, and remoteParent carries the
	// span ID a remotely-joined root hangs under when traces are merged.
	traceID      uint64
	spanID       uint64
	remoteParent uint64

	mu       sync.Mutex
	children []*Span // tracked only when sampled
}

// StartRoot begins a new trace. The returned span must be ended; its
// children are created with StartChild.
//
//lint:hotpath
func (t *Tracer) StartRoot(name string) *Span {
	seq := t.seq.Add(1)
	sampled := t.sampleEvery > 0 && (seq-1)%t.sampleEvery == 0
	return t.newSpan(name, nil, sampled)
}

func (t *Tracer) newSpan(name string, parent *Span, sampled bool) *Span {
	var s *Span
	if sampled {
		//lint:ignore hotalloc the sampled 1-in-N branch retains its span tree and is never pooled
		s = &Span{}
	} else {
		s = t.pool.Get().(*Span)
		s.children = nil
	}
	s.tracer = t
	s.parent = parent
	s.name = name
	s.sampled = sampled
	s.durNanos = 0
	s.spanID = newID()
	if parent != nil {
		s.traceID = parent.traceID
	} else {
		s.traceID = newID()
	}
	s.remoteParent = 0
	s.ended.Store(false)
	s.start = time.Now()
	return s
}

// StartChild begins a child stage of s. Safe to call from multiple
// goroutines on the same parent. On a nil span it returns nil.
//
//lint:hotpath
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	c := s.tracer.newSpan(name, s, s.sampled)
	if s.sampled {
		s.mu.Lock()
		s.children = append(s.children, c)
		s.mu.Unlock()
	}
	return c
}

// End stops the span's clock. Ending a sampled root span publishes the
// completed trace to the tracer for /tracez. End is idempotent; on a nil
// span it no-ops. An unsampled span must not be used after End (it is
// recycled through the tracer's pool).
//
//lint:hotpath
func (s *Span) End() {
	if s == nil || !s.ended.CompareAndSwap(false, true) {
		return
	}
	s.durNanos = int64(time.Since(s.start))
	if !s.sampled {
		s.tracer.pool.Put(s)
		return
	}
	if s.parent == nil {
		s.tracer.record(s)
	}
}

// Sampled reports whether this span's trace is retained by the tracer.
func (s *Span) Sampled() bool { return s != nil && s.sampled }

// DurationNanos returns the span duration after End (0 before).
func (s *Span) DurationNanos() int64 {
	if s == nil {
		return 0
	}
	return s.durNanos
}

func (t *Tracer) record(root *Span) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.recent = append(t.recent, root)
	if len(t.recent) > t.capacity {
		t.recent = t.recent[len(t.recent)-t.capacity:]
	}
}

// TraceNode is the exportable form of a completed span tree. TraceID is set
// on root fragments; ParentSpanID and Remote mark a fragment that joined a
// remote context (MergedTraces re-attaches it under that parent when both
// fragments are local).
type TraceNode struct {
	Name          string       `json:"name"`
	StartUnixNano int64        `json:"start_unix_nano"`
	DurationNanos int64        `json:"duration_ns"`
	TraceID       string       `json:"trace_id,omitempty"`
	SpanID        string       `json:"span_id,omitempty"`
	ParentSpanID  string       `json:"parent_span_id,omitempty"`
	Remote        bool         `json:"remote,omitempty"`
	Children      []*TraceNode `json:"children,omitempty"`

	// Numeric identities for merge-time stitching (the exported hex forms
	// are for human and JSON consumers).
	traceID      uint64
	spanID       uint64
	parentSpanID uint64
}

// Tree converts a completed sampled span into an exportable trace tree
// (nil for nil, unsampled, or still-running spans).
func (s *Span) Tree() *TraceNode {
	if s == nil || !s.sampled || !s.ended.Load() {
		return nil
	}
	n := &TraceNode{
		Name:          s.name,
		StartUnixNano: s.start.UnixNano(),
		DurationNanos: s.durNanos,
		SpanID:        fmt.Sprintf("%016x", s.spanID),
		traceID:       s.traceID,
		spanID:        s.spanID,
	}
	if s.parent == nil {
		n.TraceID = fmt.Sprintf("%016x", s.traceID)
	}
	if s.remoteParent != 0 {
		n.ParentSpanID = fmt.Sprintf("%016x", s.remoteParent)
		n.Remote = true
		n.parentSpanID = s.remoteParent
	}
	s.mu.Lock()
	children := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	for _, c := range children {
		if cn := c.Tree(); cn != nil {
			n.Children = append(n.Children, cn)
		}
	}
	return n
}

// RecentTraces returns the completed sampled traces, oldest first.
func (t *Tracer) RecentTraces() []*TraceNode {
	t.mu.Lock()
	roots := append([]*Span(nil), t.recent...)
	t.mu.Unlock()
	out := make([]*TraceNode, 0, len(roots))
	for _, r := range roots {
		if n := r.Tree(); n != nil {
			out = append(out, n)
		}
	}
	return out
}

// RenderTree renders a trace tree as indented text, one stage per line with
// its duration — the human-readable form the -telemetry CLI flags print.
func RenderTree(n *TraceNode) string {
	var b strings.Builder
	renderNode(&b, n, 0)
	return b.String()
}

func renderNode(b *strings.Builder, n *TraceNode, depth int) {
	if n == nil {
		return
	}
	fmt.Fprintf(b, "%s%s %v\n", strings.Repeat("  ", depth), n.Name, time.Duration(n.DurationNanos).Round(time.Microsecond))
	for _, c := range n.Children {
		renderNode(b, c, depth+1)
	}
}

type spanCtxKey struct{}

// ContextWithSpan returns a context carrying s, for threading the current
// span across API boundaries. This is the only span operation that
// allocates; hot loops should pass *Span directly.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	return context.WithValue(ctx, spanCtxKey{}, s)
}

// SpanFromContext returns the span carried by ctx, or nil.
func SpanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanCtxKey{}).(*Span)
	return s
}

// StartSpan begins a stage as a child of the span carried by ctx (or as a
// new root when ctx carries none) and returns a derived context carrying
// the new span.
func (t *Tracer) StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	var s *Span
	if parent := SpanFromContext(ctx); parent != nil {
		s = parent.StartChild(name)
	} else {
		s = t.StartRoot(name)
	}
	return ContextWithSpan(ctx, s), s
}

package telemetry

import (
	"testing"
	"time"
)

// findChild returns the first direct child with the given name, or nil.
func findChild(n *TraceNode, name string) *TraceNode {
	if n == nil {
		return nil
	}
	for _, c := range n.Children {
		if c.Name == name {
			return c
		}
	}
	return nil
}

func TestSpanContextIdentity(t *testing.T) {
	tr := NewTracer(8, 1)
	root := tr.StartRoot("darnet_ctx_root")
	child := root.StartChild("darnet_ctx_child")
	rc, cc := root.Context(), child.Context()
	if !rc.Valid() || !cc.Valid() {
		t.Fatalf("sampled span contexts must be valid: root=%+v child=%+v", rc, cc)
	}
	if rc.TraceID != cc.TraceID {
		t.Fatalf("child trace ID %x != root trace ID %x", cc.TraceID, rc.TraceID)
	}
	if rc.SpanID == cc.SpanID {
		t.Fatalf("span IDs must differ, both %x", rc.SpanID)
	}
	if !rc.Sampled {
		t.Fatalf("sampled root's context must propagate the sampling bit")
	}
	child.End()
	root.End()

	if c := (*Span)(nil).Context(); c.Valid() {
		t.Fatalf("nil span context must be the absent zero value, got %+v", c)
	}
	if (SpanContext{}).Valid() {
		t.Fatalf("zero context must be invalid")
	}
}

func TestJoinRemoteForcesSampling(t *testing.T) {
	tr := NewTracer(8, 0) // local sampling disabled entirely
	joined := tr.JoinRemote("darnet_ctx_joined", SpanContext{TraceID: 7, SpanID: 9, Sampled: true})
	if !joined.Sampled() {
		t.Fatalf("joining a sampled remote context must sample locally")
	}
	joined.End()
	traces := tr.RecentTraces()
	if len(traces) != 1 || traces[0].Name != "darnet_ctx_joined" {
		t.Fatalf("joined trace not retained: %+v", traces)
	}
	if !traces[0].Remote || traces[0].ParentSpanID == "" {
		t.Fatalf("joined fragment must record its remote parent: %+v", traces[0])
	}

	// An unsampled remote context must NOT be retained, and an invalid one
	// degrades to a plain local root under the local sampling policy.
	tr.JoinRemote("darnet_ctx_unsampled", SpanContext{TraceID: 7, SpanID: 9}).End()
	tr.JoinRemote("darnet_ctx_legacy", SpanContext{}).End()
	if n := len(tr.RecentTraces()); n != 1 {
		t.Fatalf("unsampled/legacy joins must not be retained, have %d traces", n)
	}
}

func TestSegmentRecordsSyntheticChild(t *testing.T) {
	tr := NewTracer(8, 1)
	root := tr.StartRoot("darnet_seg_root")
	start := time.Now().Add(-50 * time.Millisecond)
	root.Segment("darnet_stage_wire_transit", start, 50*time.Millisecond)
	root.Segment("darnet_stage_skewed", start, -time.Second) // clamps to 0
	root.End()
	tree := tr.RecentTraces()[0]
	seg := findChild(tree, "darnet_stage_wire_transit")
	if seg == nil {
		t.Fatalf("segment missing from tree: %+v", tree)
	}
	if seg.DurationNanos != int64(50*time.Millisecond) || seg.StartUnixNano != start.UnixNano() {
		t.Fatalf("segment interval wrong: %+v", seg)
	}
	if sk := findChild(tree, "darnet_stage_skewed"); sk == nil || sk.DurationNanos != 0 {
		t.Fatalf("negative segment duration must clamp to zero: %+v", sk)
	}
	// Unsampled parents take no segments (and do not allocate).
	un := NewTracer(8, 0).StartRoot("darnet_seg_unsampled")
	un.Segment("darnet_stage_noop", start, time.Millisecond)
	un.End()
}

func TestMergedTracesStitchFragments(t *testing.T) {
	tr := NewTracer(16, 1)

	// Process A: the agent-side flush root.
	flush := tr.StartRoot("darnet_agent_flush_batch")
	fc := flush.Context()

	// Process B: the controller joins the flush context; its stream_offer
	// child's context is in turn joined by the async pipeline tick.
	ingest := tr.JoinRemote("darnet_ingest_batch", fc)
	offer := ingest.StartChild("darnet_stage_stream_offer")
	oc := offer.Context()
	offer.End()
	ingest.End()

	tick := tr.JoinRemote("darnet_stream_tick", oc)
	tick.Segment("darnet_stage_queue_dwell", time.Now(), time.Millisecond)
	tick.End()

	flush.End() // the agent root completes last, after its ack

	merged := tr.MergedTraces()
	if len(merged) != 1 {
		t.Fatalf("want 1 stitched trace, got %d: %+v", len(merged), merged)
	}
	root := merged[0]
	if root.Name != "darnet_agent_flush_batch" {
		t.Fatalf("stitched root is %q, want the flush fragment", root.Name)
	}
	ing := findChild(root, "darnet_ingest_batch")
	if ing == nil || !ing.Remote {
		t.Fatalf("ingest fragment not attached under flush: %+v", root)
	}
	off := findChild(ing, "darnet_stage_stream_offer")
	if off == nil {
		t.Fatalf("offer child missing: %+v", ing)
	}
	tk := findChild(off, "darnet_stream_tick")
	if tk == nil || findChild(tk, "darnet_stage_queue_dwell") == nil {
		t.Fatalf("tick fragment (with dwell segment) not attached under offer: %+v", off)
	}
}

func TestMergedTracesOrphanFragmentStaysTopLevel(t *testing.T) {
	tr := NewTracer(16, 1)
	// Parent fragment lives in another process (or was evicted): the join
	// target is never recorded here.
	orphan := tr.JoinRemote("darnet_ingest_batch", SpanContext{TraceID: 3, SpanID: 4, Sampled: true})
	orphan.End()
	merged := tr.MergedTraces()
	if len(merged) != 1 || merged[0].Name != "darnet_ingest_batch" {
		t.Fatalf("orphan fragment must remain a top-level trace: %+v", merged)
	}
	if !merged[0].Remote {
		t.Fatalf("orphan keeps its remote marker: %+v", merged[0])
	}
}

// TestTraceContextPropagationAllocationFree pins the tentpole guarantee:
// with propagation ON, the unsampled (63-of-64) path — capture a context,
// join it remotely, attempt a segment — still allocates nothing.
func TestTraceContextPropagationAllocationFree(t *testing.T) {
	tr := NewTracer(8, 0)
	for i := 0; i < 16; i++ {
		s := tr.StartRoot("darnet_warm")
		tr.JoinRemote("darnet_warm_join", s.Context()).End()
		s.End()
	}
	n := testing.AllocsPerRun(1000, func() {
		s := tr.StartRoot("darnet_alloc_flush")
		rc := s.Context()
		j := tr.JoinRemote("darnet_alloc_ingest", rc)
		j.Segment("darnet_stage_wire_transit", s.start, 0)
		j.End()
		s.End()
	})
	if n != 0 {
		t.Fatalf("unsampled propagation allocates %.1f per op, want 0", n)
	}
}

package telemetry

import (
	"context"
	"strings"
	"sync"
	"testing"
)

func TestSpanTreeStructure(t *testing.T) {
	tr := NewTracer(4, 1) // sample everything
	root := tr.StartRoot("darnet_pipeline_window")
	a := root.StartChild("darnet_stage_align")
	a.End()
	c := root.StartChild("darnet_stage_classify")
	cc := c.StartChild("darnet_stage_cnn_forward")
	cc.End()
	c.End()
	root.End()

	traces := tr.RecentTraces()
	if len(traces) != 1 {
		t.Fatalf("got %d traces, want 1", len(traces))
	}
	n := traces[0]
	if n.Name != "darnet_pipeline_window" || len(n.Children) != 2 {
		t.Fatalf("unexpected tree: %+v", n)
	}
	if n.Children[1].Name != "darnet_stage_classify" || len(n.Children[1].Children) != 1 {
		t.Fatalf("unexpected classify subtree: %+v", n.Children[1])
	}
	if n.DurationNanos <= 0 {
		t.Fatal("root duration not recorded")
	}
	rendered := RenderTree(n)
	if !strings.Contains(rendered, "darnet_pipeline_window") ||
		!strings.Contains(rendered, "  darnet_stage_align") ||
		!strings.Contains(rendered, "    darnet_stage_cnn_forward") {
		t.Fatalf("unexpected rendering:\n%s", rendered)
	}
}

func TestTracerSamplingCadence(t *testing.T) {
	tr := NewTracer(100, 4) // first of every 4 roots
	for i := 0; i < 8; i++ {
		s := tr.StartRoot("darnet_trace")
		s.End()
	}
	if got := len(tr.RecentTraces()); got != 2 {
		t.Fatalf("got %d sampled traces of 8 roots at 1-in-4, want 2", got)
	}

	off := NewTracer(4, 0) // sampling disabled
	for i := 0; i < 4; i++ {
		s := off.StartRoot("darnet_trace")
		if s.Sampled() {
			t.Fatal("sampling disabled but span sampled")
		}
		s.End()
	}
	if got := len(off.RecentTraces()); got != 0 {
		t.Fatalf("got %d traces with sampling off, want 0", got)
	}
}

func TestTracerRingCapacity(t *testing.T) {
	tr := NewTracer(3, 1)
	for i := 0; i < 10; i++ {
		tr.StartRoot("darnet_trace").End()
	}
	if got := len(tr.RecentTraces()); got != 3 {
		t.Fatalf("ring holds %d traces, want 3", got)
	}
}

func TestNilSpanIsSafe(t *testing.T) {
	var s *Span
	s.End()
	if c := s.StartChild("darnet_child"); c != nil {
		t.Fatal("nil parent produced a child")
	}
	if s.Sampled() || s.DurationNanos() != 0 || s.Tree() != nil {
		t.Fatal("nil span accessors not zero-valued")
	}
}

func TestEndIsIdempotent(t *testing.T) {
	tr := NewTracer(4, 1)
	s := tr.StartRoot("darnet_trace")
	s.End()
	s.End()
	if got := len(tr.RecentTraces()); got != 1 {
		t.Fatalf("double End recorded %d traces, want 1", got)
	}
}

func TestUnsampledChildrenNotRetained(t *testing.T) {
	tr := NewTracer(4, 0)
	root := tr.StartRoot("darnet_trace")
	child := root.StartChild("darnet_child")
	child.End()
	root.End()
	if root.Tree() != nil {
		t.Fatal("unsampled root produced a tree")
	}
}

func TestContextPropagation(t *testing.T) {
	tr := NewTracer(4, 1)
	ctx := context.Background()
	if SpanFromContext(ctx) != nil {
		t.Fatal("empty context carries a span")
	}
	ctx, root := tr.StartSpan(ctx, "darnet_root")
	if SpanFromContext(ctx) != root {
		t.Fatal("context does not carry the root")
	}
	ctx2, child := tr.StartSpan(ctx, "darnet_child")
	if SpanFromContext(ctx2) != child {
		t.Fatal("derived context does not carry the child")
	}
	child.End()
	root.End()
	traces := tr.RecentTraces()
	if len(traces) != 1 || len(traces[0].Children) != 1 || traces[0].Children[0].Name != "darnet_child" {
		t.Fatalf("context-started spans did not link: %+v", traces)
	}
}

func TestConcurrentChildren(t *testing.T) {
	tr := NewTracer(4, 1)
	root := tr.StartRoot("darnet_trace")
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := root.StartChild("darnet_worker")
			c.End()
		}()
	}
	wg.Wait()
	root.End()
	traces := tr.RecentTraces()
	if len(traces) != 1 || len(traces[0].Children) != 16 {
		t.Fatalf("concurrent children lost: %+v", traces)
	}
}

func TestRunningChildrenExcludedFromTree(t *testing.T) {
	tr := NewTracer(4, 1)
	root := tr.StartRoot("darnet_trace")
	done := root.StartChild("darnet_done")
	done.End()
	_ = root.StartChild("darnet_still_running") // never ended
	root.End()
	traces := tr.RecentTraces()
	if len(traces) != 1 || len(traces[0].Children) != 1 || traces[0].Children[0].Name != "darnet_done" {
		t.Fatalf("running child should be excluded: %+v", traces)
	}
}

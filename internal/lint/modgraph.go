package lint

import (
	"fmt"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// This file lifts the per-package interprocedural engine to module scope.
// Packages are loaded and analyzed in dependency (topological) order; after
// each package is analyzed its function summaries are serialized
// (EncodeSummaries) and decoded into a ModuleIndex that later packages
// consult while building their own summaries. Because Go imports are
// acyclic, one bottom-up sweep reaches the module-wide fixpoint: by the
// time a caller is analyzed, every in-module callee's facts are final.
//
// Linking is by object path (FuncKey), not by AST or type-object identity,
// so the index round-trips through bytes — the same summaries could be
// cached on disk and reused across runs.

// ModuleIndex maps in-module functions to the serialized summaries of
// already-analyzed packages.
type ModuleIndex struct {
	pkgs map[string]*PkgSummaries
}

// NewModuleIndex returns an empty index.
func NewModuleIndex() *ModuleIndex {
	return &ModuleIndex{pkgs: make(map[string]*PkgSummaries)}
}

// Add registers one package's decoded summaries.
func (ix *ModuleIndex) Add(ps *PkgSummaries) { ix.pkgs[ps.Path] = ps }

// Lookup resolves a callee to its serialized summary, or nil when the
// callee is unknown (nil function, or external to the analyzed set).
// Local callees also resolve — by the time a package is re-analyzed its
// own summaries may be indexed — but the call-graph path runs first, so in
// practice Lookup serves cross-package edges.
func (ix *ModuleIndex) Lookup(fn *types.Func) *FuncSummary {
	if ix == nil || fn == nil || fn.Pkg() == nil {
		return nil
	}
	ps := ix.pkgs[fn.Pkg().Path()]
	if ps == nil {
		return nil
	}
	return ps.Funcs[FuncKey(fn)]
}

// All returns every indexed function summary in deterministic (package
// path, function key) order — the census view used by analyzers that need
// module-wide facts not keyed by a call edge (atomicmix's access sets).
func (ix *ModuleIndex) All() []*FuncSummary {
	if ix == nil {
		return nil
	}
	var out []*FuncSummary
	for _, path := range ix.Packages() {
		ps := ix.pkgs[path]
		keys := make([]string, 0, len(ps.Funcs))
		for k := range ps.Funcs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			out = append(out, ps.Funcs[k])
		}
	}
	return out
}

// Packages returns the indexed package paths in sorted order.
func (ix *ModuleIndex) Packages() []string {
	out := make([]string, 0, len(ix.pkgs))
	for p := range ix.pkgs {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Pairs returns every lock-order edge recorded across the indexed
// packages, deduplicated, in deterministic order.
func (ix *ModuleIndex) Pairs() []PairRef {
	seen := make(map[[2]string]PairRef)
	for _, ps := range ix.pkgs {
		for _, fs := range ps.Funcs {
			for _, pr := range fs.Pairs {
				key := [2]string{pr.First, pr.Second}
				if _, ok := seen[key]; !ok {
					seen[key] = pr
				}
			}
		}
	}
	keys := make([][2]string, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	out := make([]PairRef, 0, len(keys))
	for _, k := range keys {
		out = append(out, seen[k])
	}
	return out
}

// ModuleResult is one module-wide analysis run: the merged findings plus
// per-phase and per-analyzer timings for the driver's -timings output.
type ModuleResult struct {
	Diags    []Diagnostic
	Packages int
	// Unused holds the `//lint:ignore` directives that suppressed nothing
	// in this run (reported by the driver's -unused-ignores mode).
	Unused []Diagnostic
	// Phases records wall time for the pipeline stages: "load" (parse +
	// type-check), "ir" (call graph + flow graph construction), "analyze"
	// (analyzer runs), "link" (summary export, encode, decode, index).
	Phases []Timing
	// Spent is per-analyzer wall time in nanoseconds, summed across
	// packages.
	Spent map[string]int64
}

// AnalyzeModule runs the analyzers over the given (dir, importPath) pairs
// as one linked unit: packages load and analyze in dependency order, each
// package sees the serialized summaries of its analyzed dependencies, and
// findings merge into one deterministically sorted list.
func AnalyzeModule(loader *Loader, pkgs [][2]string, analyzers []*Analyzer) (*ModuleResult, error) {
	res := &ModuleResult{Spent: make(map[string]int64)}
	order, err := topoOrder(loader.Fset, pkgs)
	if err != nil {
		return nil, err
	}
	ix := NewModuleIndex()
	var loadT, irT, analyzeT, linkT time.Duration
	for _, p := range order {
		start := time.Now()
		pkg, err := loader.LoadDir(p[0], p[1])
		if err != nil {
			return nil, err
		}
		loader.RegisterSource(pkg)
		pkg.SetDeps(ix)
		loadT += time.Since(start)

		// IR construction — call graph, summaries, and per-function flow
		// graphs — is forced here so its cost is visible as its own phase
		// rather than billed to whichever analyzer touches it first.
		start = time.Now()
		pkg.BuildIR()
		irT += time.Since(start)

		start = time.Now()
		diags, timings := RunTimed(pkg, analyzers)
		res.Diags = append(res.Diags, diags...)
		for _, tm := range timings {
			res.Spent[tm.Analyzer] += tm.Elapsed.Nanoseconds()
		}
		analyzeT += time.Since(start)

		start = time.Now()
		data, err := EncodeSummaries(ExportSummaries(pkg))
		if err != nil {
			return nil, fmt.Errorf("lint: export summaries for %s: %w", p[1], err)
		}
		decoded, err := DecodeSummaries(data)
		if err != nil {
			return nil, err
		}
		ix.Add(decoded)
		linkT += time.Since(start)

		// Unused-ignore accounting runs last: the export step above marks
		// ignores consumed by summary filtering as used, so a directive
		// only lands here when neither the analyzer run nor the module
		// link needed it.
		res.Unused = append(res.Unused, pkg.UnusedIgnores(analyzers)...)
	}
	res.Packages = len(order)
	res.Phases = []Timing{
		{Analyzer: "load", Elapsed: loadT},
		{Analyzer: "ir", Elapsed: irT},
		{Analyzer: "analyze", Elapsed: analyzeT},
		{Analyzer: "link", Elapsed: linkT},
	}
	SortDiagnostics(res.Diags)
	SortDiagnostics(res.Unused)
	return res, nil
}

// topoOrder sorts the packages so every in-set dependency precedes its
// dependents. Imports are read with a lightweight imports-only parse, so
// ordering happens before any type-checking. Import cycles (impossible for
// buildable Go, possible for malformed fixture sets) are an error.
func topoOrder(fset *token.FileSet, pkgs [][2]string) ([][2]string, error) {
	byPath := make(map[string][2]string, len(pkgs))
	paths := make([]string, 0, len(pkgs))
	for _, p := range pkgs {
		if _, dup := byPath[p[1]]; dup {
			continue
		}
		byPath[p[1]] = p
		paths = append(paths, p[1])
	}
	sort.Strings(paths)

	imports := make(map[string][]string, len(paths))
	for _, path := range paths {
		imps, err := dirImports(fset, byPath[path][0])
		if err != nil {
			return nil, err
		}
		for _, imp := range imps {
			if _, inSet := byPath[imp]; inSet && imp != path {
				imports[path] = append(imports[path], imp)
			}
		}
		sort.Strings(imports[path])
	}

	const (
		white = iota
		grey
		black
	)
	state := make(map[string]int, len(paths))
	out := make([][2]string, 0, len(paths))
	var visit func(string) error
	visit = func(path string) error {
		switch state[path] {
		case black:
			return nil
		case grey:
			return fmt.Errorf("lint: import cycle through %s", path)
		}
		state[path] = grey
		for _, dep := range imports[path] {
			if err := visit(dep); err != nil {
				return err
			}
		}
		state[path] = black
		out = append(out, byPath[path])
		return nil
	}
	for _, path := range paths {
		if err := visit(path); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// dirImports parses the import clauses of a directory's non-test .go files.
func dirImports(fset *token.FileSet, dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	seen := make(map[string]bool)
	var out []string
	for _, e := range ents {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, n), nil, parser.ImportsOnly)
		if err != nil {
			return nil, err
		}
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if !seen[path] {
				seen[path] = true
				out = append(out, path)
			}
		}
	}
	return out, nil
}

package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Qbound verifies bounded-queue invariants declared with a
//
//	//lint:bounded <field>
//
// directive on a queue type's declaration. The named field is the type's
// occupancy ledger — a CAS'd depth counter, a spill slice, a capped series
// map — and the analyzer checks, over the flow-sensitive IR, that the bound
// is actually enforced on every path:
//
//   - every grow of the field (counter increment / CAS-admission, append
//     assigned back, map insert) is dominated by a capacity check — a
//     branch comparing a value derived from the field against a limit —
//     or, for slice/map fields only, followed by a trim check on every
//     path to return (the append-then-clamp idiom);
//   - after a CAS admission succeeds, every path to return either commits
//     the slot (a channel send hands it to the consumer) or releases it (a
//     decrement) — an early return between the CAS and the enqueue would
//     leak capacity forever. Plain guarded increments carry no such
//     obligation: they are not two-phase, the increment is the commit.
//
// Counter grows insist on check-*before* deliberately: a check after the
// increment still lets the counter overshoot its cap transiently, which is
// exactly the invariant (`depth <= cap` at all times) the annotation
// promises.
var Qbound = &Analyzer{
	Name: "qbound",
	Doc:  "//lint:bounded queue fields must have every enqueue path guarded by a capacity check and every admission released or committed",
	Run:  runQbound,
}

// boundedField is one //lint:bounded annotation resolved to its field.
type boundedField struct {
	typeName *types.TypeName
	field    *types.Var
	kind     boundedKind
	pos      token.Pos
}

type boundedKind int8

const (
	boundCounter boundedKind = iota
	boundSlice
	boundMap
)

func runQbound(pass *Pass) {
	bounded := collectBounded(pass)
	if len(bounded) == 0 {
		return
	}
	ipa := pass.IPA()
	for _, n := range ipa.Graph.Nodes {
		if n.Body == nil {
			continue
		}
		checkBoundedFunc(pass, ipa, n, bounded)
	}
}

// collectBounded parses the //lint:bounded directives on the package's type
// declarations. An unresolvable field name is itself a finding — a silent
// typo would silently verify nothing.
func collectBounded(pass *Pass) []*boundedField {
	var out []*boundedField
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				for _, doc := range []*ast.CommentGroup{gd.Doc, ts.Doc} {
					if doc == nil {
						continue
					}
					for _, c := range doc.List {
						if !commentIsDirective(c.Text, "lint:bounded") {
							continue
						}
						rest, _ := cutCommentMarker(c.Text)
						fields := strings.Fields(rest)
						if len(fields) < 2 {
							pass.Reportf(c.Pos(), "malformed directive: want //lint:bounded <field>")
							continue
						}
						out = append(out, resolveBounded(pass, ts, fields[1], c.Pos())...)
					}
				}
			}
		}
	}
	return out
}

func resolveBounded(pass *Pass, ts *ast.TypeSpec, fieldName string, pos token.Pos) []*boundedField {
	tn, _ := pass.TypesInfo.Defs[ts.Name].(*types.TypeName)
	if tn == nil {
		return nil
	}
	// Resolution errors anchor at the type name, the line the annotation
	// governs.
	st, ok := tn.Type().Underlying().(*types.Struct)
	if !ok {
		pass.Reportf(ts.Name.Pos(), "//lint:bounded on %s, which is not a struct type", tn.Name())
		return nil
	}
	for i := 0; i < st.NumFields(); i++ {
		fv := st.Field(i)
		if fv.Name() != fieldName {
			continue
		}
		kind, ok := boundedKindOf(fv.Type())
		if !ok {
			pass.Reportf(ts.Name.Pos(), "//lint:bounded field %s.%s has type %s; want a counter, slice, or map", tn.Name(), fieldName, fv.Type())
			return nil
		}
		return []*boundedField{{typeName: tn, field: fv, kind: kind, pos: pos}}
	}
	pass.Reportf(ts.Name.Pos(), "//lint:bounded names field %q, which %s does not have", fieldName, tn.Name())
	return nil
}

// boundedKindOf classifies the annotated field: sync/atomic integer
// wrappers and basic integers are counters; slices and maps hold the queued
// elements directly.
func boundedKindOf(t types.Type) (boundedKind, bool) {
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic" {
			switch obj.Name() {
			case "Int32", "Int64", "Uint32", "Uint64", "Uintptr":
				return boundCounter, true
			}
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Basic:
		if u.Info()&types.IsInteger != 0 {
			return boundCounter, true
		}
	case *types.Slice:
		return boundSlice, true
	case *types.Map:
		return boundMap, true
	}
	return 0, false
}

// growKind distinguishes how a site changes the occupancy.
type growKind int8

const (
	growAdd growKind = iota // unconditional increment / append / map insert
	growCAS                 // admission: occupies only on the true edge
)

// growSite is one occupancy-increasing operation on a bounded field.
type growSite struct {
	node ast.Node // the call / assign / incdec carrying the grow
	pos  token.Pos
	kind growKind
	bf   *boundedField
}

func checkBoundedFunc(pass *Pass, ipa *IPA, n *FuncNode, bounded []*boundedField) {
	grows := findGrows(pass.TypesInfo, n.Body, bounded)
	if len(grows) == 0 {
		return
	}
	fg := ipa.FlowGraph(n)
	relCache := map[*boundedField][]bool{}
	for _, g := range grows {
		blk, nodeIdx := locateNode(fg, g.node)
		if blk == nil {
			continue // dead code the CFG dropped
		}
		guarded := dominatedByCheck(pass.TypesInfo, fg, blk, g.bf)
		if !guarded && g.bf.kind != boundCounter {
			guarded = trimmedAfter(pass.TypesInfo, fg, blk, g.bf)
		}
		if !guarded {
			switch g.bf.kind {
			case boundCounter:
				pass.Reportf(g.pos, "enqueue on bounded %s.%s is not dominated by a capacity check: a path from function entry reaches this admission without comparing the counter against its cap", g.bf.typeName.Name(), g.bf.field.Name())
			default:
				pass.Reportf(g.pos, "grow of bounded %s.%s has a path from function entry with no capacity check before it and no trim on every path to return", g.bf.typeName.Name(), g.bf.field.Name())
			}
		}
		if g.bf.kind == boundCounter && g.kind == growCAS {
			relOK := relCache[g.bf]
			if relOK == nil {
				relOK = releaseStates(pass.TypesInfo, fg, g.bf)
				relCache[g.bf] = relOK
			}
			if !slotSettled(pass.TypesInfo, fg, relOK, blk, nodeIdx, g) {
				pass.Reportf(g.pos, "admission on bounded %s.%s can reach return without committing the slot or releasing it: an early return here leaks capacity permanently", g.bf.typeName.Name(), g.bf.field.Name())
			}
		}
	}
}

// findGrows scans a function body for occupancy-increasing operations on
// the bounded fields.
func findGrows(info *types.Info, body ast.Node, bounded []*boundedField) []*growSite {
	var out []*growSite
	ast.Inspect(body, func(node ast.Node) bool {
		switch x := node.(type) {
		case *ast.CallExpr:
			for _, bf := range bounded {
				if bf.kind != boundCounter {
					continue
				}
				if kind, ok := counterGrowCall(info, x, bf); ok {
					out = append(out, &growSite{node: x, pos: x.Pos(), kind: kind, bf: bf})
				}
			}
		case *ast.IncDecStmt:
			for _, bf := range bounded {
				if bf.kind == boundCounter && x.Tok == token.INC && isBoundedSelector(info, x.X, bf) {
					out = append(out, &growSite{node: x, pos: x.Pos(), kind: growAdd, bf: bf})
				}
			}
		case *ast.AssignStmt:
			out = append(out, assignGrows(info, x, bounded)...)
		}
		return true
	})
	return out
}

// counterGrowCall matches X.f.Add(positive) and
// X.f.CompareAndSwap(old, old+positive) on a wrapper-typed counter.
func counterGrowCall(info *types.Info, call *ast.CallExpr, bf *boundedField) (growKind, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || !isBoundedSelector(info, sel.X, bf) {
		return 0, false
	}
	switch sel.Sel.Name {
	case "Add":
		if len(call.Args) == 1 {
			if v, ok := constIntValue(info, call.Args[0]); ok && v > 0 {
				return growAdd, true
			}
		}
	case "CompareAndSwap":
		if len(call.Args) == 2 && !isDecrementOf(info, call.Args[1], call.Args[0]) {
			return growCAS, true
		}
	}
	return 0, false
}

// isDecrementOf reports whether newExpr is oldExpr minus a positive
// constant — a releasing CAS, not an admission.
func isDecrementOf(info *types.Info, newExpr, oldExpr ast.Expr) bool {
	b, ok := ast.Unparen(newExpr).(*ast.BinaryExpr)
	if !ok || b.Op != token.SUB {
		return false
	}
	v, ok := constIntValue(info, b.Y)
	return ok && v > 0 && sameIdent(b.X, oldExpr)
}

func sameIdent(a, b ast.Expr) bool {
	ai, aok := ast.Unparen(a).(*ast.Ident)
	bi, bok := ast.Unparen(b).(*ast.Ident)
	return aok && bok && ai.Name == bi.Name
}

func assignGrows(info *types.Info, x *ast.AssignStmt, bounded []*boundedField) []*growSite {
	var out []*growSite
	for i, lhs := range x.Lhs {
		for _, bf := range bounded {
			switch bf.kind {
			case boundCounter:
				// X.f += n on a basic-int counter.
				if x.Tok == token.ADD_ASSIGN && isBoundedSelector(info, lhs, bf) {
					out = append(out, &growSite{node: x, pos: x.Pos(), kind: growAdd, bf: bf})
				}
			case boundSlice:
				// X.f = append(X.f, ...): the first append argument must be
				// the field itself — append(X.f[:0], ...) is a trim, not a
				// grow.
				if !isBoundedSelector(info, lhs, bf) || len(x.Rhs) != len(x.Lhs) {
					continue
				}
				call, ok := ast.Unparen(x.Rhs[i]).(*ast.CallExpr)
				if !ok || len(call.Args) == 0 {
					continue
				}
				if !isBuiltinName(info, call.Fun, "append") {
					continue
				}
				if isBoundedSelector(info, call.Args[0], bf) {
					out = append(out, &growSite{node: x, pos: x.Pos(), kind: growAdd, bf: bf})
				}
			case boundMap:
				// X.f[k] = v.
				if ix, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok && isBoundedSelector(info, ix.X, bf) {
					out = append(out, &growSite{node: x, pos: x.Pos(), kind: growAdd, bf: bf})
				}
			}
		}
	}
	return out
}

// isBoundedSelector reports whether e is a selector of the bounded field
// (on any receiver/value of the annotated type).
func isBoundedSelector(info *types.Info, e ast.Expr, bf *boundedField) bool {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return false
	}
	return s.Obj() == bf.field
}

// locateNode finds the block whose node list contains n (possibly nested
// inside a statement or condition node) and the index of that top node.
func locateNode(fg *FlowGraph, n ast.Node) (*Block, int) {
	for _, blk := range fg.Blocks {
		for i, top := range blk.Nodes {
			found := false
			ast.Inspect(top, func(sub ast.Node) bool {
				if sub == n {
					found = true
				}
				return !found
			})
			if found {
				return blk, i
			}
		}
	}
	return nil, 0
}

// dominatedByCheck reports whether every path from entry to blk passes an
// edge whose condition compares a field-derived value: DFS from entry that
// refuses to cross check edges must fail to reach blk.
func dominatedByCheck(info *types.Info, fg *FlowGraph, blk *Block, bf *boundedField) bool {
	if blk == fg.Entry {
		return false
	}
	seen := map[*Block]bool{}
	var walk func(b *Block) bool
	walk = func(b *Block) bool {
		if b == blk {
			return true
		}
		if seen[b] {
			return false
		}
		seen[b] = true
		for _, e := range b.Succs {
			if condChecksField(info, fg, e.Cond, bf) {
				continue
			}
			if walk(e.To) {
				return true
			}
		}
		return false
	}
	return !walk(fg.Entry)
}

// trimmedAfter reports whether every path from blk to exit passes a
// field-derived check edge — the append-then-clamp idiom. Greatest
// fixpoint: assume yes, strip blocks with an unchecked path out.
func trimmedAfter(info *types.Info, fg *FlowGraph, blk *Block, bf *boundedField) bool {
	ok := make([]bool, len(fg.Blocks))
	for i := range ok {
		ok[i] = true
	}
	ok[fg.Exit.Index] = false
	for changed := true; changed; {
		changed = false
		for _, b := range fg.Blocks {
			if !ok[b.Index] || b == fg.Exit {
				continue
			}
			holds := len(b.Succs) > 0
			for _, e := range b.Succs {
				if condChecksField(info, fg, e.Cond, bf) {
					continue
				}
				if !ok[e.To.Index] {
					holds = false
					break
				}
			}
			if !holds {
				ok[b.Index] = false
				changed = true
			}
		}
	}
	return ok[blk.Index]
}

// condChecksField reports whether a branch condition contains a comparison
// with an operand derived from the bounded field — directly (len(X.f),
// X.f.Load() inside the expression) or through one level of local-variable
// definition (d := X.f.Load(); ... d >= cap).
func condChecksField(info *types.Info, fg *FlowGraph, cond ast.Expr, bf *boundedField) bool {
	if cond == nil {
		return false
	}
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		b, ok := n.(*ast.BinaryExpr)
		if !ok || found {
			return !found
		}
		switch b.Op {
		case token.LSS, token.LEQ, token.GTR, token.GEQ, token.EQL, token.NEQ:
			if derivesFromField(info, fg, b.X, bf) || derivesFromField(info, fg, b.Y, bf) {
				found = true
			}
		}
		return !found
	})
	return found
}

func derivesFromField(info *types.Info, fg *FlowGraph, e ast.Expr, bf *boundedField) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		switch x := n.(type) {
		case *ast.SelectorExpr:
			if isBoundedSelector(info, x, bf) {
				found = true
				return false
			}
		case *ast.Ident:
			v, ok := info.Uses[x].(*types.Var)
			if !ok {
				return true
			}
			ch := fg.DefUse[v]
			if ch == nil {
				return true
			}
			for _, def := range ch.Defs {
				if def.Rhs == nil {
					continue
				}
				if selectorMentionsField(info, def.Rhs, bf) {
					found = true
					return false
				}
			}
		}
		return !found
	})
	return found
}

func selectorMentionsField(info *types.Info, e ast.Expr, bf *boundedField) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok && isBoundedSelector(info, sel, bf) {
			found = true
		}
		return !found
	})
	return found
}

// releaseStates computes, per block, whether every path from it to exit
// settles an admitted slot: passes a block containing a release (counter
// decrement) or a commit (channel send — the slot's occupancy transfers to
// the queued element). Greatest fixpoint over the CFG.
func releaseStates(info *types.Info, fg *FlowGraph, bf *boundedField) []bool {
	settles := make([]bool, len(fg.Blocks))
	for _, b := range fg.Blocks {
		settles[b.Index] = blockSettles(info, b.Nodes, bf)
	}
	ok := make([]bool, len(fg.Blocks))
	for i := range ok {
		ok[i] = true
	}
	ok[fg.Exit.Index] = false
	for changed := true; changed; {
		changed = false
		for _, b := range fg.Blocks {
			if !ok[b.Index] || b == fg.Exit || settles[b.Index] {
				continue
			}
			holds := len(b.Succs) > 0
			for _, e := range b.Succs {
				if !ok[e.To.Index] {
					holds = false
					break
				}
			}
			if !holds {
				ok[b.Index] = false
				changed = true
			}
		}
	}
	return ok
}

func blockSettles(info *types.Info, nodes []ast.Node, bf *boundedField) bool {
	for _, n := range nodes {
		found := false
		ast.Inspect(n, func(sub ast.Node) bool {
			switch x := sub.(type) {
			case *ast.FuncLit:
				return false
			case *ast.SendStmt:
				found = true
			case *ast.CallExpr:
				if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok && isBoundedSelector(info, sel.X, bf) {
					switch sel.Sel.Name {
					case "Add":
						if len(x.Args) == 1 {
							if v, ok := constIntValue(info, x.Args[0]); ok && v < 0 {
								found = true
							}
						}
					case "CompareAndSwap":
						if len(x.Args) == 2 && isDecrementOf(info, x.Args[1], x.Args[0]) {
							found = true
						}
					}
				}
			case *ast.IncDecStmt:
				if x.Tok == token.DEC && isBoundedSelector(info, x.X, bf) {
					found = true
				}
			case *ast.AssignStmt:
				if x.Tok == token.SUB_ASSIGN && len(x.Lhs) == 1 && isBoundedSelector(info, x.Lhs[0], bf) {
					found = true
				}
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

// slotSettled verifies the admitted slot is settled on every path after the
// grow: the remainder of the grow's own block, then (for a CAS admission)
// the true-edge successors, or all successors for an unconditional grow.
func slotSettled(info *types.Info, fg *FlowGraph, relOK []bool, blk *Block, nodeIdx int, g *growSite) bool {
	if blockSettles(info, blk.Nodes[nodeIdx+1:], g.bf) {
		return true
	}
	for _, e := range blk.Succs {
		if g.kind == growCAS && e.Cond != nil {
			// The slot exists only where the CAS succeeded: skip edges whose
			// condition is the CAS with Sense == false, and edges that do
			// not involve the CAS at all keep both outcomes possible.
			if condContains(e.Cond, g.node) && !e.Sense {
				continue
			}
		}
		if e.To != fg.Exit && !relOK[e.To.Index] {
			return false
		}
		if e.To == fg.Exit {
			return false
		}
	}
	return len(blk.Succs) > 0
}

func condContains(cond ast.Expr, n ast.Node) bool {
	found := false
	ast.Inspect(cond, func(sub ast.Node) bool {
		if sub == n {
			found = true
		}
		return !found
	})
	return found
}

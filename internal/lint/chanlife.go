package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Chanlife runs a flow-sensitive channel-lifecycle analysis over the IR in
// cfg.go: each function-local channel variable carries an abstract state —
// the set of runtime states it may be in (nil / open / closed) plus
// evidence bits for closes the analysis has witnessed — propagated through
// the control-flow graph with branch-condition refinement (`ch != nil`
// narrows the true edge) and joined at block boundaries toward "may".
//
// It reports:
//
//   - close of a channel already closed on the path (including a second
//     close scheduled by a `defer close(ch)`),
//   - send after close (a guaranteed panic when the path executes),
//   - send/receive/close on a channel that is nil along some modeled path,
//   - goroutine-orphaned unbuffered sends: a goroutine literal bare-sends
//     on an unbuffered channel its spawner created, and the spawner can
//     reach return without receiving — the precise, spawner-side
//     refinement of goleak's callee-side spawn model.
//
// Close effects cross function boundaries: a callee that provably closes a
// channel parameter exports that fact in its FuncSummary (ChanOps), so a
// `close(ch)` after `otherpkg.Shutdown(ch)` is a finding even though the
// two closes live in different packages. The analyzer is registered at
// module scope, where those summaries link.
var Chanlife = &Analyzer{
	Name: "chanlife",
	Doc:  "channel lifecycle states (nil/open/closed) propagated flow-sensitively must not reach close-of-closed, send-after-close, or orphaned sends",
	Run:  runChanlife,
}

func runChanlife(pass *Pass) {
	eng := pass.IPA().chanEngine()
	for _, n := range eng.ipa.Graph.Nodes {
		eng.analyze(n)
	}
	for _, f := range eng.findings {
		pass.Reportf(f.pos, "%s", f.msg)
	}
}

// Channel abstract state bits: the set of runtime states the channel value
// may currently be in.
const (
	chNil uint8 = 1 << iota
	chOpen
	chClosed
	chAll = chNil | chOpen | chClosed
)

// bufferKind records what the make site said about buffering.
type bufferKind int8

const (
	bufUnknown bufferKind = iota
	bufNone               // make(chan T) or make(chan T, 0)
	bufSome               // make(chan T, n>0)
)

// chanAbs is one channel variable's abstract state on one path set.
type chanAbs struct {
	bits uint8
	// mustClosed/mayClosed witness a close the analysis itself saw (in this
	// function or through a callee summary) on all/some paths reaching
	// here. Reports key off these, never off the raw bits, so a parameter
	// that merely *might* arrive closed stays silent.
	mustClosed bool
	mayClosed  bool
	closedAt   token.Pos
	// deferClose marks a `defer close(ch)` registered on every path.
	deferClose bool
	deferAt    token.Pos
	buf        bufferKind
}

func unknownChan() chanAbs { return chanAbs{bits: chAll} }

func joinChan(a, b chanAbs) chanAbs {
	out := chanAbs{
		bits:       a.bits | b.bits,
		mustClosed: a.mustClosed && b.mustClosed,
		mayClosed:  a.mayClosed || b.mayClosed,
		deferClose: a.deferClose && b.deferClose,
	}
	out.closedAt = a.closedAt
	if !out.closedAt.IsValid() {
		out.closedAt = b.closedAt
	}
	out.deferAt = a.deferAt
	if !out.deferAt.IsValid() {
		out.deferAt = b.deferAt
	}
	if a.buf == b.buf {
		out.buf = a.buf
	}
	return out
}

// chanEnv maps tracked channel variables to their abstract state. A nil map
// is the unreached (bottom) environment.
type chanEnv map[*types.Var]chanAbs

func (e chanEnv) clone() chanEnv {
	out := make(chanEnv, len(e))
	for k, v := range e {
		out[k] = v
	}
	return out
}

// joinEnvInto joins src into dst (dst is reachable). Variables missing on
// one side take that side's default (unknown): a var first assigned inside
// a branch is unknown on the path around the branch.
func joinEnvInto(dst, src chanEnv) chanEnv {
	if dst == nil {
		return src.clone()
	}
	for k, v := range src {
		if cur, ok := dst[k]; ok {
			dst[k] = joinChan(cur, v)
		} else {
			dst[k] = joinChan(unknownChan(), v)
		}
	}
	for k := range dst {
		if _, ok := src[k]; !ok {
			dst[k] = joinChan(dst[k], unknownChan())
		}
	}
	return dst
}

func envEqual(a, b chanEnv) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// chanEffects is the per-function transfer summary: what the function does
// to its channel parameters, by parameter index.
type chanEffects struct {
	params map[int]*paramChanEffect
}

type paramChanEffect struct {
	mustClose bool
	mayClose  bool
	maySend   bool
	pos       token.Pos
}

// chanFinding buffers one diagnostic; the engine dedups by value because
// the same site can be checked along several evaluation orders.
type chanFinding struct {
	pos token.Pos
	msg string
}

// chanEngine owns the per-package chanlife state, mirroring shapeEngine: it
// is built lazily on the IPA so ExportSummaries can derive channel-effect
// summaries even when the Chanlife analyzer is not in the running set.
type chanEngine struct {
	ipa      *IPA
	effects  map[*FuncNode]*chanEffects
	state    map[*FuncNode]int // 0 unvisited, 1 in progress, 2 done
	findings []chanFinding
	seen     map[chanFinding]bool
}

func (ipa *IPA) chanEngine() *chanEngine {
	if ipa.chans == nil {
		ipa.chans = &chanEngine{
			ipa:     ipa,
			effects: make(map[*FuncNode]*chanEffects),
			state:   make(map[*FuncNode]int),
			seen:    make(map[chanFinding]bool),
		}
	}
	return ipa.chans
}

func (e *chanEngine) reportf(pos token.Pos, format string, args ...any) {
	f := chanFinding{pos: pos, msg: fmt.Sprintf(format, args...)}
	if e.seen[f] {
		return
	}
	e.seen[f] = true
	e.findings = append(e.findings, f)
}

// effectsFor returns a declared function's channel-effect summary,
// analyzing on first use. Recursive cycles get nil (no effects assumed —
// the caller widens).
func (e *chanEngine) effectsFor(n *FuncNode) *chanEffects {
	if n == nil || e.state[n] == 1 {
		return nil
	}
	e.analyze(n)
	return e.effects[n]
}

// analyze runs the channel dataflow over one function exactly once.
func (e *chanEngine) analyze(n *FuncNode) {
	if n == nil || n.Body == nil || e.state[n] != 0 {
		return
	}
	e.state[n] = 1
	w := newChanWalker(e, n)
	w.run()
	e.effects[n] = w.summarizeEffects()
	e.state[n] = 2
}

// chanWalker analyzes one function.
type chanWalker struct {
	eng    *chanEngine
	node   *FuncNode
	fg     *FlowGraph
	info   *types.Info
	fset   *token.FileSet
	params []*types.Var // channel-typed parameters, by signature index

	tracked map[*types.Var]bool
	// selectComm marks send/receive operations that are select comm
	// statements: a nil channel there is the standard disabled-case idiom
	// and a closed one fires only if chosen, so no checks apply.
	selectComm map[ast.Node]bool

	in        []chanEnv
	reporting bool
}

func newChanWalker(e *chanEngine, n *FuncNode) *chanWalker {
	w := &chanWalker{
		eng:        e,
		node:       n,
		fg:         e.ipa.FlowGraph(n),
		info:       e.ipa.Pkg.Info,
		fset:       e.ipa.Pkg.Fset,
		tracked:    make(map[*types.Var]bool),
		selectComm: make(map[ast.Node]bool),
	}
	addrTaken := make(map[*types.Var]bool)
	ast.Inspect(n.Body, func(node ast.Node) bool {
		switch x := node.(type) {
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if id, ok := ast.Unparen(x.X).(*ast.Ident); ok {
					if v, ok := w.info.Uses[id].(*types.Var); ok {
						addrTaken[v] = true
					}
				}
			}
		case *ast.SelectStmt:
			for _, c := range x.Body.List {
				if cc, ok := c.(*ast.CommClause); ok && cc.Comm != nil {
					markSelectComm(w.selectComm, cc.Comm)
				}
			}
		}
		return true
	})
	for v := range w.fg.DefUse {
		if isChanVar(v) && !addrTaken[v] {
			w.tracked[v] = true
		}
	}
	for i, p := range funcParams(n) {
		v, ok := w.info.Defs[p].(*types.Var)
		if !ok {
			continue
		}
		if isChanVar(v) && !addrTaken[v] {
			w.tracked[v] = true
			for len(w.params) <= i {
				w.params = append(w.params, nil)
			}
			w.params[i] = v
		}
	}
	return w
}

func markSelectComm(set map[ast.Node]bool, comm ast.Stmt) {
	switch c := comm.(type) {
	case *ast.SendStmt:
		set[c] = true
	case *ast.ExprStmt:
		if u, ok := ast.Unparen(c.X).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
			set[u] = true
		}
	case *ast.AssignStmt:
		if len(c.Rhs) == 1 {
			if u, ok := ast.Unparen(c.Rhs[0]).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
				set[u] = true
			}
		}
	}
}

func isChanVar(v *types.Var) bool {
	_, ok := v.Type().Underlying().(*types.Chan)
	return ok
}

// isBuiltinName reports whether e is a use of the predeclared builtin with
// the given name (go/types records builtins in Uses as *types.Builtin).
func isBuiltinName(info *types.Info, e ast.Expr, name string) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == name
}

func (w *chanWalker) run() {
	if len(w.tracked) == 0 {
		return
	}
	blocks := w.fg.Blocks
	w.in = make([]chanEnv, len(blocks))
	entry := make(chanEnv)
	for _, p := range w.params {
		if p != nil {
			entry[p] = unknownChan()
		}
	}
	w.in[w.fg.Entry.Index] = entry

	// Fixpoint: joins accumulate monotonically in a finite lattice.
	work := []*Block{w.fg.Entry}
	queued := map[*Block]bool{w.fg.Entry: true}
	for iter := 0; len(work) > 0 && iter < 64*len(blocks)+256; iter++ {
		blk := work[0]
		work = work[1:]
		queued[blk] = false
		out := w.transferBlock(blk, w.in[blk.Index].clone())
		for _, edge := range blk.Succs {
			next := out.clone()
			if edge.Cond != nil {
				w.applyCond(next, edge.Cond, edge.Sense)
			}
			old := w.in[edge.To.Index]
			var before chanEnv
			if old != nil {
				before = old.clone()
			}
			joined := joinEnvInto(old, next)
			w.in[edge.To.Index] = joined
			if before == nil || !envEqual(joined, before) {
				if !queued[edge.To] {
					queued[edge.To] = true
					work = append(work, edge.To)
				}
			}
		}
	}

	// One reporting pass over the stable states.
	w.reporting = true
	for _, blk := range blocks {
		if w.in[blk.Index] == nil {
			continue // unreachable
		}
		w.transferBlock(blk, w.in[blk.Index].clone())
	}
	w.reporting = false
}

func (w *chanWalker) transferBlock(blk *Block, env chanEnv) chanEnv {
	if env == nil {
		env = make(chanEnv)
	}
	for i, node := range blk.Nodes {
		w.transferNode(blk, i, node, env)
	}
	return env
}

func (w *chanWalker) get(env chanEnv, v *types.Var) chanAbs {
	if st, ok := env[v]; ok {
		return st
	}
	return unknownChan()
}

func (w *chanWalker) transferNode(blk *Block, idx int, node ast.Node, env chanEnv) {
	switch x := node.(type) {
	case *ast.AssignStmt:
		for _, rhs := range x.Rhs {
			w.evalExpr(env, rhs)
		}
		for i, lhs := range x.Lhs {
			id, ok := ast.Unparen(lhs).(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			v := w.lhsVar(id)
			if v == nil || !w.tracked[v] {
				continue
			}
			if len(x.Rhs) == len(x.Lhs) {
				env[v] = w.abstractOf(env, x.Rhs[i])
			} else {
				env[v] = unknownChan()
			}
		}
	case *ast.DeclStmt:
		gd, ok := x.Decl.(*ast.GenDecl)
		if !ok {
			return
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for _, val := range vs.Values {
				w.evalExpr(env, val)
			}
			for i, name := range vs.Names {
				v, _ := w.info.Defs[name].(*types.Var)
				if v == nil || !w.tracked[v] {
					continue
				}
				if len(vs.Values) == 0 {
					env[v] = chanAbs{bits: chNil} // zero value
				} else if len(vs.Values) == len(vs.Names) {
					env[v] = w.abstractOf(env, vs.Values[i])
				} else {
					env[v] = unknownChan()
				}
			}
		}
	case *ast.SendStmt:
		w.evalExpr(env, x.Value)
		w.evalExpr(env, x.Chan)
		if v := w.chanOperand(x.Chan); v != nil && !w.selectComm[x] {
			w.sendEffect(env, v, x.Arrow)
		}
	case *ast.DeferStmt:
		w.deferEffect(env, x)
	case *ast.GoStmt:
		w.orphanCheck(blk, idx, x, env)
		w.widenIdentsIn(env, x.Call)
	case *ast.RangeStmt:
		w.evalExpr(env, x.X)
		if v := w.chanOperand(x.X); v != nil {
			w.recvEffect(env, v, x.X.Pos(), "range over")
		}
	case *ast.ExprStmt:
		w.evalExpr(env, x.X)
	case *ast.ReturnStmt:
		for _, r := range x.Results {
			w.evalExpr(env, r)
		}
	case *ast.IncDecStmt:
		w.evalExpr(env, x.X)
	case ast.Expr:
		w.evalExpr(env, x)
	default:
		// Remaining statement forms (empty, labeled leftovers) carry no
		// channel effects beyond their nested expressions.
		ast.Inspect(node, func(sub ast.Node) bool {
			if e, ok := sub.(ast.Expr); ok {
				w.evalExpr(env, e)
				return false
			}
			return true
		})
	}
}

// lhsVar resolves an assignment target ident to its variable (Defs for :=,
// Uses for =).
func (w *chanWalker) lhsVar(id *ast.Ident) *types.Var {
	if v, ok := w.info.Defs[id].(*types.Var); ok {
		return v
	}
	v, _ := w.info.Uses[id].(*types.Var)
	return v
}

// chanOperand resolves an expression to a tracked channel variable, or nil.
func (w *chanWalker) chanOperand(e ast.Expr) *types.Var {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	v, _ := w.info.Uses[id].(*types.Var)
	if v == nil || !w.tracked[v] {
		return nil
	}
	return v
}

// abstractOf evaluates the abstract channel value of an assignment RHS.
func (w *chanWalker) abstractOf(env chanEnv, e ast.Expr) chanAbs {
	e = ast.Unparen(e)
	switch x := e.(type) {
	case *ast.CallExpr:
		if isBuiltinName(w.info, x.Fun, "make") {
			buf := bufNone
			if len(x.Args) >= 2 {
				buf = bufUnknown
				if n, exact := constIntValue(w.info, x.Args[1]); exact {
					if n == 0 {
						buf = bufNone
					} else {
						buf = bufSome
					}
				}
			}
			return chanAbs{bits: chOpen, buf: buf}
		}
	case *ast.Ident:
		if x.Name == "nil" && w.info.Uses[x] == nil && w.info.Defs[x] == nil {
			return chanAbs{bits: chNil}
		}
		if v, ok := w.info.Uses[x].(*types.Var); ok && w.tracked[v] {
			return w.get(env, v)
		}
	}
	if tv, ok := w.info.Types[e]; ok && tv.IsNil() {
		return chanAbs{bits: chNil}
	}
	return unknownChan()
}

// evalExpr applies the channel effects of evaluating an expression:
// receives, closes, calls with known channel-parameter effects, escapes.
func (w *chanWalker) evalExpr(env chanEnv, e ast.Expr) {
	if e == nil {
		return
	}
	switch x := ast.Unparen(e).(type) {
	case *ast.UnaryExpr:
		if x.Op == token.ARROW {
			w.evalExpr(env, x.X)
			if v := w.chanOperand(x.X); v != nil && !w.selectComm[x] {
				w.recvEffect(env, v, x.OpPos, "receive from")
			}
			return
		}
		w.evalExpr(env, x.X)
	case *ast.CallExpr:
		w.evalCall(env, x)
	case *ast.FuncLit:
		// The literal may run at any later point (or concurrently): every
		// captured tracked channel leaves the lattice.
		w.widenIdentsIn(env, x)
	case *ast.BinaryExpr:
		w.evalExpr(env, x.X)
		w.evalExpr(env, x.Y)
	case *ast.CompositeLit:
		// A channel stored into a composite escapes.
		for _, el := range x.Elts {
			w.evalExpr(env, el)
		}
		w.widenIdentsIn(env, x)
	case *ast.IndexExpr:
		w.evalExpr(env, x.X)
		w.evalExpr(env, x.Index)
	case *ast.SliceExpr:
		w.evalExpr(env, x.X)
		w.evalExpr(env, x.Low)
		w.evalExpr(env, x.High)
		w.evalExpr(env, x.Max)
	case *ast.SelectorExpr:
		w.evalExpr(env, x.X)
	case *ast.StarExpr:
		w.evalExpr(env, x.X)
	case *ast.TypeAssertExpr:
		w.evalExpr(env, x.X)
	case *ast.KeyValueExpr:
		w.evalExpr(env, x.Value)
	}
}

func (w *chanWalker) evalCall(env chanEnv, call *ast.CallExpr) {
	for _, arg := range call.Args {
		w.evalExpr(env, arg)
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, isB := w.info.Uses[id].(*types.Builtin); isB {
			if b.Name() == "close" && len(call.Args) == 1 {
				if v := w.chanOperand(call.Args[0]); v != nil {
					w.closeEffect(env, v, call.Pos())
				}
			}
			return // no other builtin has a channel-state effect beyond evaluated args
		}
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		w.evalExpr(env, sel.X)
	}
	fn := calleeFunc(w.info, call)
	effects := w.calleeEffects(fn)
	for i, arg := range call.Args {
		v := w.chanOperand(arg)
		if v == nil {
			continue
		}
		if effects == nil {
			// Unknown callee: the channel escapes the lattice.
			env[v] = unknownChan()
			continue
		}
		eff := effects.params[i]
		st := w.get(env, v)
		if eff == nil {
			continue // callee provably leaves this parameter alone
		}
		name := calleeName(fn)
		if eff.mustClose || eff.mayClose {
			if st.mustClosed {
				w.reportOnce(call.Pos(), "close of already-closed channel %s: %s closes its argument, but it was closed at %s", v.Name(), name, w.loc(st.closedAt))
			} else if st.mayClosed {
				w.reportOnce(call.Pos(), "possible close of closed channel %s: %s closes its argument, and %s was closed at %s on a path reaching this call", v.Name(), name, v.Name(), w.loc(st.closedAt))
			}
		}
		if eff.maySend && st.mustClosed {
			w.reportOnce(call.Pos(), "send on closed channel: %s sends on %s, which was closed at %s", name, v.Name(), w.loc(st.closedAt))
		}
		next := st
		if eff.mustClose {
			next.bits = chClosed
			next.mustClosed = true
			next.mayClosed = true
			if !next.closedAt.IsValid() {
				next.closedAt = call.Pos()
			}
		} else if eff.mayClose {
			next.bits |= chClosed
			next.mayClosed = true
			if !next.closedAt.IsValid() {
				next.closedAt = call.Pos()
			}
		}
		env[v] = next
	}
}

// calleeEffects resolves a callee's channel-parameter effects: same-package
// functions through the engine (computed on demand), cross-package ones
// through the serialized module index. nil means unknown — widen.
func (w *chanWalker) calleeEffects(fn *types.Func) *chanEffects {
	if fn == nil {
		return nil
	}
	if node := w.eng.ipa.Graph.NodeFor(fn); node != nil {
		return w.eng.effectsFor(node)
	}
	if fs := w.eng.ipa.Pkg.deps.Lookup(fn); fs != nil {
		return decodeChanOps(fs.ChanOps)
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == w.eng.ipa.Pkg.Path {
		return nil
	}
	// External to the analyzed set (stdlib, export-data deps): assume no
	// close/send effects on channel args — stdlib APIs do not close caller
	// channels (closing is the sender's job, and these analyses would
	// otherwise go dark at every time.After or append call).
	return &chanEffects{params: map[int]*paramChanEffect{}}
}

func decodeChanOps(ops []ChanOpRef) *chanEffects {
	eff := &chanEffects{params: make(map[int]*paramChanEffect)}
	for _, op := range ops {
		p := eff.params[op.Param]
		if p == nil {
			p = &paramChanEffect{}
			eff.params[op.Param] = p
		}
		switch op.Op {
		case "mustclose":
			p.mustClose = true
			p.mayClose = true
		case "mayclose":
			p.mayClose = true
		case "maysend":
			p.maySend = true
		}
	}
	return eff
}

func calleeName(fn *types.Func) string {
	if fn == nil {
		return "the callee"
	}
	return shortFuncKey(FuncKey(fn))
}

// widenIdentsIn drops every tracked variable referenced inside e to
// unknown: it escaped to code the lattice cannot see.
func (w *chanWalker) widenIdentsIn(env chanEnv, e ast.Node) {
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if v, ok := w.info.Uses[id].(*types.Var); ok && w.tracked[v] {
				env[v] = unknownChan()
			}
		}
		return true
	})
}

func (w *chanWalker) reportOnce(pos token.Pos, format string, args ...any) {
	if w.reporting {
		w.eng.reportf(pos, format, args...)
	}
}

func (w *chanWalker) loc(pos token.Pos) string {
	if !pos.IsValid() {
		return "?"
	}
	return shortLoc(w.fset, pos)
}

func (w *chanWalker) closeEffect(env chanEnv, v *types.Var, pos token.Pos) {
	st := w.get(env, v)
	switch {
	case st.mustClosed:
		w.reportOnce(pos, "close of already-closed channel %s (closed at %s)", v.Name(), w.loc(st.closedAt))
	case st.mayClosed:
		w.reportOnce(pos, "possible close of closed channel %s: closed at %s on a path reaching this close", v.Name(), w.loc(st.closedAt))
	case st.deferClose:
		w.reportOnce(pos, "close of channel %s: the deferred close at %s will close it a second time at return", v.Name(), w.loc(st.deferAt))
	case st.bits == chNil:
		w.reportOnce(pos, "close of nil channel %s (panics)", v.Name())
	}
	st.bits = chClosed
	st.mustClosed = true
	st.mayClosed = true
	st.closedAt = pos
	env[v] = st
}

func (w *chanWalker) deferEffect(env chanEnv, d *ast.DeferStmt) {
	call := d.Call
	for _, arg := range call.Args {
		w.evalExpr(env, arg)
	}
	if isBuiltinName(w.info, call.Fun, "close") && len(call.Args) == 1 {
		if v := w.chanOperand(call.Args[0]); v != nil {
			st := w.get(env, v)
			switch {
			case st.mustClosed:
				w.reportOnce(d.Pos(), "deferred close of channel %s already closed at %s (panics at return)", v.Name(), w.loc(st.closedAt))
			case st.deferClose:
				w.reportOnce(d.Pos(), "duplicate deferred close of channel %s (first deferred at %s)", v.Name(), w.loc(st.deferAt))
			case st.bits == chNil:
				w.reportOnce(d.Pos(), "deferred close of nil channel %s (panics at return)", v.Name())
			}
			st.deferClose = true
			st.deferAt = d.Pos()
			env[v] = st
			return
		}
	}
	// Any other deferred call: apply callee close effects as "may" (the
	// defer does run, but after everything else), then widen the args so
	// later ops in this function stay silent rather than wrong.
	w.widenIdentsIn(env, call)
}

func (w *chanWalker) sendEffect(env chanEnv, v *types.Var, pos token.Pos) {
	st := w.get(env, v)
	switch {
	case st.mustClosed:
		w.reportOnce(pos, "send on channel %s after close at %s (panics)", v.Name(), w.loc(st.closedAt))
	case st.mayClosed:
		w.reportOnce(pos, "send on channel %s: closed at %s on a path reaching this send (send on closed channel panics)", v.Name(), w.loc(st.closedAt))
	case st.bits == chNil:
		w.reportOnce(pos, "send on nil channel %s blocks forever", v.Name())
	case st.bits&chNil != 0 && st.bits != chAll:
		w.reportOnce(pos, "send on channel %s: nil on a path reaching this send (a nil-channel send blocks forever)", v.Name())
	}
}

func (w *chanWalker) recvEffect(env chanEnv, v *types.Var, pos token.Pos, verb string) {
	st := w.get(env, v)
	switch {
	case st.bits == chNil:
		w.reportOnce(pos, "%s nil channel %s blocks forever", verb, v.Name())
	case st.bits&chNil != 0 && st.bits != chAll:
		w.reportOnce(pos, "%s channel %s: nil on a path reaching this receive (a nil-channel receive blocks forever)", verb, v.Name())
	}
}

// applyCond refines the environment along a branch edge using the
// condition's nil comparisons — the branch-condition facts of the IR.
func (w *chanWalker) applyCond(env chanEnv, cond ast.Expr, sense bool) {
	switch x := ast.Unparen(cond).(type) {
	case *ast.UnaryExpr:
		if x.Op == token.NOT {
			w.applyCond(env, x.X, !sense)
		}
	case *ast.BinaryExpr:
		switch x.Op {
		case token.LAND:
			if sense {
				w.applyCond(env, x.X, true)
				w.applyCond(env, x.Y, true)
			}
		case token.LOR:
			if !sense {
				w.applyCond(env, x.X, false)
				w.applyCond(env, x.Y, false)
			}
		case token.EQL, token.NEQ:
			v, other := w.nilComparison(x)
			if v == nil {
				return
			}
			isNil := (x.Op == token.EQL) == sense
			_ = other
			st := w.get(env, v)
			if isNil {
				st.bits = chNil
				st.mustClosed = false
				st.mayClosed = false
			} else {
				st.bits &^= chNil
				if st.bits == 0 {
					st.bits = chOpen | chClosed
				}
			}
			env[v] = st
		}
	}
}

// nilComparison matches `ch == nil` / `ch != nil` (either operand order)
// against a tracked variable.
func (w *chanWalker) nilComparison(x *ast.BinaryExpr) (*types.Var, ast.Expr) {
	isNilExpr := func(e ast.Expr) bool {
		tv, ok := w.info.Types[e]
		return ok && tv.IsNil()
	}
	if v := w.chanOperand(x.X); v != nil && isNilExpr(x.Y) {
		return v, x.Y
	}
	if v := w.chanOperand(x.Y); v != nil && isNilExpr(x.X) {
		return v, x.X
	}
	return nil, nil
}

// summarizeEffects derives the exported channel-parameter effects from the
// exit-state of the analysis: mustClose when every modeled path closed the
// parameter, mayClose when some did (or a close is deferred), maySend from
// a syntactic scan (select sends count — they may fire).
func (w *chanWalker) summarizeEffects() *chanEffects {
	eff := &chanEffects{params: make(map[int]*paramChanEffect)}
	if len(w.params) == 0 {
		return eff
	}
	var exit chanEnv
	if w.in != nil {
		exit = w.in[w.fg.Exit.Index]
	}
	for i, p := range w.params {
		if p == nil {
			continue
		}
		pe := &paramChanEffect{}
		if exit != nil {
			st := w.get(exit, p)
			pe.mustClose = st.mustClosed || st.deferClose
			pe.mayClose = st.mayClosed || st.deferClose
			pe.pos = st.closedAt
		}
		ast.Inspect(w.node.Body, func(node ast.Node) bool {
			if s, ok := node.(*ast.SendStmt); ok {
				if id, ok := ast.Unparen(s.Chan).(*ast.Ident); ok {
					if v, _ := w.info.Uses[id].(*types.Var); v == p {
						pe.maySend = true
						if !pe.pos.IsValid() {
							pe.pos = s.Arrow
						}
					}
				}
			}
			return true
		})
		if pe.mustClose || pe.mayClose || pe.maySend {
			eff.params[i] = pe
		}
	}
	return eff
}

// --- Orphaned unbuffered sends ---------------------------------------------

// orphanCheck fires when a goroutine literal bare-sends on an unbuffered
// channel the spawner created, the channel escapes nowhere else, and the
// spawner can reach return without receiving from it: the send then blocks
// forever and the goroutine leaks. This is the spawner-side, path-sensitive
// refinement of goleak: goleak asks "can the spawned body block", this asks
// "does the spawner guarantee the rendezvous".
func (w *chanWalker) orphanCheck(blk *Block, idx int, g *ast.GoStmt, env chanEnv) {
	if !w.reporting {
		return
	}
	lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit)
	if !ok {
		return
	}
	for v := range w.tracked {
		st := w.get(env, v)
		if st.bits != chOpen || st.buf != bufNone {
			continue // not provably an open unbuffered channel here
		}
		if !w.litBareSendsOn(lit, v) {
			continue
		}
		if w.escapesBeyond(v, lit) {
			continue // another consumer may receive; stay silent
		}
		if !w.canReachExitWithoutRecv(blk, idx+1, v) {
			continue
		}
		w.reportOnce(g.Pos(), "goroutine sends on unbuffered channel %s with no receive on some path to return: the send blocks forever and leaks the goroutine (buffer the channel or receive on every path)", v.Name())
	}
}

// litBareSendsOn reports whether the literal's body contains a bare
// (non-select) send on v, outside nested literals.
func (w *chanWalker) litBareSendsOn(lit *ast.FuncLit, v *types.Var) bool {
	exempt := make(map[ast.Node]bool)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectStmt); ok {
			for _, c := range sel.Body.List {
				if cc, ok := c.(*ast.CommClause); ok && cc.Comm != nil {
					markSelectComm(exempt, cc.Comm)
				}
			}
		}
		return true
	})
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch x := n.(type) {
		case *ast.FuncLit:
			return x == lit
		case *ast.SendStmt:
			if exempt[x] {
				return true
			}
			if id, ok := ast.Unparen(x.Chan).(*ast.Ident); ok {
				if cv, _ := w.info.Uses[id].(*types.Var); cv == v {
					found = true
				}
			}
		}
		return true
	})
	return found
}

// escapesBeyond reports whether v is referenced anywhere the analysis
// cannot account for: another function literal, a call argument, a
// composite literal, a return value, or the right-hand side of an
// assignment to a different variable.
func (w *chanWalker) escapesBeyond(v *types.Var, spawnLit *ast.FuncLit) bool {
	escaped := false
	var visit func(n ast.Node, inSpawn bool)
	visit = func(n ast.Node, inSpawn bool) {
		if n == nil || escaped {
			return
		}
		switch x := n.(type) {
		case *ast.FuncLit:
			if x == spawnLit {
				// Inside the spawned goroutine any use is fine: it is the
				// producer under analysis.
				return
			}
			if usesVar(w.info, x, v) {
				escaped = true
			}
			return
		case *ast.CallExpr:
			// close(v), len(v), cap(v) are fine; v as an argument to
			// anything else hands the receive obligation to unknown code.
			if isBuiltinName(w.info, x.Fun, "close") || isBuiltinName(w.info, x.Fun, "len") || isBuiltinName(w.info, x.Fun, "cap") {
				break
			}
			for _, arg := range x.Args {
				if idUsesVar(w.info, arg, v) {
					escaped = true
					return
				}
			}
		case *ast.ReturnStmt:
			for _, r := range x.Results {
				if idUsesVar(w.info, r, v) {
					escaped = true
					return
				}
			}
		case *ast.CompositeLit:
			if usesVar(w.info, x, v) {
				escaped = true
				return
			}
		case *ast.AssignStmt:
			for i, rhs := range x.Rhs {
				if !idUsesVar(w.info, rhs, v) {
					continue
				}
				// v on the RHS aliases it into another name unless this is
				// the defining make / self-assignment.
				if len(x.Lhs) == len(x.Rhs) {
					if id, ok := ast.Unparen(x.Lhs[i]).(*ast.Ident); ok {
						if lv := w.lhsVar(id); lv == v {
							continue
						}
					}
				}
				escaped = true
				return
			}
		}
		ast.Inspect(n, func(sub ast.Node) bool {
			if sub == n {
				return true
			}
			visit(sub, inSpawn)
			return false
		})
	}
	visit(w.node.Body, false)
	return escaped
}

func usesVar(info *types.Info, n ast.Node, v *types.Var) bool {
	found := false
	ast.Inspect(n, func(sub ast.Node) bool {
		if id, ok := sub.(*ast.Ident); ok {
			if uv, _ := info.Uses[id].(*types.Var); uv == v {
				found = true
			}
		}
		return !found
	})
	return found
}

// idUsesVar reports whether expression e mentions v directly (not through a
// nested literal, which is classified separately).
func idUsesVar(info *types.Info, e ast.Expr, v *types.Var) bool {
	found := false
	ast.Inspect(e, func(sub ast.Node) bool {
		if _, ok := sub.(*ast.FuncLit); ok {
			return false
		}
		if id, ok := sub.(*ast.Ident); ok {
			if uv, _ := info.Uses[id].(*types.Var); uv == v {
				found = true
			}
		}
		return !found
	})
	return found
}

// canReachExitWithoutRecv reports whether some path from just after the
// spawn point reaches the exit block without passing a receive on v. A
// block containing a receive (bare, comma-ok, select comm, or range) is a
// barrier: every path through it receives.
func (w *chanWalker) canReachExitWithoutRecv(start *Block, fromIdx int, v *types.Var) bool {
	if blockHasRecv(w.info, start.Nodes[fromIdx:], v) {
		return false
	}
	seen := map[*Block]bool{}
	var walk func(b *Block) bool
	walk = func(b *Block) bool {
		if b == w.fg.Exit {
			return true
		}
		if seen[b] {
			return false
		}
		seen[b] = true
		if blockHasRecv(w.info, b.Nodes, v) {
			return false
		}
		for _, e := range b.Succs {
			if walk(e.To) {
				return true
			}
		}
		return false
	}
	for _, e := range start.Succs {
		if walk(e.To) {
			return true
		}
	}
	return false
}

func blockHasRecv(info *types.Info, nodes []ast.Node, v *types.Var) bool {
	for _, n := range nodes {
		has := false
		ast.Inspect(n, func(sub ast.Node) bool {
			switch x := sub.(type) {
			case *ast.FuncLit:
				return false
			case *ast.UnaryExpr:
				if x.Op == token.ARROW {
					if id, ok := ast.Unparen(x.X).(*ast.Ident); ok {
						if uv, _ := info.Uses[id].(*types.Var); uv == v {
							has = true
						}
					}
				}
			case *ast.RangeStmt:
				if id, ok := ast.Unparen(x.X).(*ast.Ident); ok {
					if uv, _ := info.Uses[id].(*types.Var); uv == v {
						has = true
					}
				}
			}
			return !has
		})
		if has {
			return true
		}
	}
	return false
}

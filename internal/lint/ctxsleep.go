package lint

import (
	"go/ast"
)

// Ctxsleep reports time.Sleep in non-test internal/ code. Collection agents
// and the controller run managed loops that must stop promptly on Shutdown
// (the Runner's stop-channel pattern); a sleeping goroutine cannot be
// cancelled, which stalls shutdown by up to the sleep duration and leaks
// goroutines in tests. Use time.NewTicker or time.NewTimer selected together
// with a stop channel instead.
var Ctxsleep = &Analyzer{
	Name: "ctxsleep",
	Doc:  "internal/ code must not time.Sleep; use a ticker/timer with a stop channel",
	Run:  runCtxsleep,
}

func runCtxsleep(pass *Pass) {
	if !pass.InInternal() {
		return
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.TypesInfo, call)
			if fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "time" && fn.Name() == "Sleep" {
				pass.Reportf(call.Pos(), "time.Sleep is uncancellable; select on a time.Ticker/Timer and a stop channel")
			}
			return true
		})
	}
}

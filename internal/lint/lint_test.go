package lint_test

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"

	"darnet/internal/lint"
)

// sharedLoader builds one loader (one `go list -export` sweep) for all
// fixture tests.
var sharedLoader = sync.OnceValues(func() (*lint.Loader, error) {
	return lint.NewLoader(".")
})

// fixtureCase binds an analyzer to its fixture package. The synthetic import
// path controls path-gated rules (internal/ vs examples/). allowNoWants marks
// deliberately clean fixtures (the analyzer must stay silent over them).
type fixtureCase struct {
	analyzer     *lint.Analyzer
	fixture      string
	importPath   string
	allowNoWants bool
}

func fixtures() []fixtureCase {
	const base = "darnet/internal/lintfixture/"
	return []fixtureCase{
		{analyzer: lint.Locksafe, fixture: "locksafe", importPath: base + "locksafe"},
		{analyzer: lint.Floatcmp, fixture: "floatcmp", importPath: base + "floatcmp"},
		{analyzer: lint.Errdrop, fixture: "errdrop", importPath: base + "errdrop"},
		{analyzer: lint.Errdrop, fixture: "errdropexamples", importPath: "darnet/examples/lintfixture/errdropexamples"},
		{analyzer: lint.Globalrand, fixture: "globalrand", importPath: base + "globalrand"},
		{analyzer: lint.Ctxsleep, fixture: "ctxsleep", importPath: base + "ctxsleep"},
		{analyzer: lint.Shapecheck, fixture: "shapecheck", importPath: base + "shapecheck"},
		{analyzer: lint.Shapeflow, fixture: "shapeflow", importPath: base + "shapeflow"},
		{analyzer: lint.Metricname, fixture: "metricname", importPath: base + "metricname"},
		{analyzer: lint.Goleak, fixture: "goleak", importPath: base + "goleak"},
		{analyzer: lint.Lockorder, fixture: "lockorder", importPath: base + "lockorder"},
		{analyzer: lint.Hotalloc, fixture: "hotalloc", importPath: base + "hotalloc"},
		{analyzer: lint.Hotalloc, fixture: "hotallocpool", importPath: base + "hotallocpool", allowNoWants: true},
		{analyzer: lint.Ctxprop, fixture: "ctxprop", importPath: base + "ctxprop"},
		{analyzer: lint.Chanlife, fixture: "chanlife", importPath: base + "chanlife"},
		{analyzer: lint.Atomicmix, fixture: "atomicmix", importPath: base + "atomicmix"},
		{analyzer: lint.Qbound, fixture: "qbound", importPath: base + "qbound"},
	}
}

func TestAnalyzersAgainstFixtures(t *testing.T) {
	for _, tc := range fixtures() {
		name := tc.analyzer.Name
		if tc.fixture != name {
			name = tc.analyzer.Name + "/" + tc.fixture
		}
		t.Run(name, func(t *testing.T) {
			runFixture(t, tc)
		})
	}
}

// runFixture type-checks testdata/src/<fixture>, runs the analyzer, and
// matches findings against the `// want "regex"` comments: every want line
// must produce a matching finding and every finding must land on a want
// line.
func runFixture(t *testing.T, tc fixtureCase) {
	loader, err := sharedLoader()
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	dir := filepath.Join("testdata", "src", tc.fixture)
	pkg, err := loader.LoadDir(dir, tc.importPath)
	if err != nil {
		t.Fatalf("load fixture: %v", err)
	}
	diags := lint.Run(pkg, []*lint.Analyzer{tc.analyzer})

	wants := collectWants(t, pkg, tc.allowNoWants)
	matched := make(map[string]bool)
	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
		w, ok := wants[key]
		if !ok {
			t.Errorf("unexpected finding %s", d)
			continue
		}
		if !w.rx.MatchString(d.Message) {
			t.Errorf("finding %s does not match want %q", d, w.rx)
			continue
		}
		matched[key] = true
	}
	for key, w := range wants {
		if !matched[key] {
			t.Errorf("%s: want %q produced no finding", key, w.rx)
		}
	}
}

type wantExpect struct {
	rx *regexp.Regexp
}

// collectWants parses `// want "regex"` comments out of the fixture files,
// keyed by file:line.
func collectWants(t *testing.T, pkg *lint.Package, allowEmpty bool) map[string]wantExpect {
	wants := make(map[string]wantExpect)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				rest, ok := strings.CutPrefix(text, "want ")
				if !ok {
					continue
				}
				quoted := strings.TrimSpace(rest)
				pat, err := strconv.Unquote(quoted)
				if err != nil {
					t.Fatalf("%s: bad want comment %q: %v", pkg.Fset.Position(c.Pos()), quoted, err)
				}
				rx, err := regexp.Compile(pat)
				if err != nil {
					t.Fatalf("%s: bad want regexp %q: %v", pkg.Fset.Position(c.Pos()), pat, err)
				}
				pos := pkg.Fset.Position(c.Pos())
				wants[fmt.Sprintf("%s:%d", pos.Filename, pos.Line)] = wantExpect{rx: rx}
			}
		}
	}
	if len(wants) == 0 && !allowEmpty && !strings.Contains(pkg.Path, "examples") {
		t.Fatalf("fixture %s has no want comments", pkg.Dir)
	}
	return wants
}

// TestHotallocPoolMutation is the acceptance check for the hotalloc
// contract: the hotallocpool fixture mirrors internal/telemetry/span.go's
// sync.Pool reuse and is clean as written; deleting the reuse (rewriting the
// pool.Get line into a bare &span literal) must produce a hotalloc finding.
func TestHotallocPoolMutation(t *testing.T) {
	loader, err := sharedLoader()
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	src, err := os.ReadFile(filepath.Join("testdata", "src", "hotallocpool", "pool.go"))
	if err != nil {
		t.Fatalf("read fixture: %v", err)
	}
	const reuse = "s = t.pool.Get().(*span)"
	mutated := strings.Replace(string(src), reuse, "s = &span{}", 1)
	if mutated == string(src) {
		t.Fatalf("fixture drifted: pool reuse line %q not found", reuse)
	}
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "pool.go"), []byte(mutated), 0o644); err != nil {
		t.Fatalf("write mutated fixture: %v", err)
	}
	pkg, err := loader.LoadDir(dir, "darnet/internal/lintfixture/hotallocpoolmut")
	if err != nil {
		t.Fatalf("load mutated fixture: %v", err)
	}
	diags := lint.Run(pkg, []*lint.Analyzer{lint.Hotalloc})
	found := false
	for _, d := range diags {
		if d.Rule == "hotalloc" && strings.Contains(d.Message, "composite literal allocation") {
			found = true
		}
	}
	if !found {
		t.Fatalf("deleting the sync.Pool reuse must trip hotalloc, got %v", diags)
	}
}

// TestIgnoreDirectiveRequiresReason: a bare //lint:ignore without a rule and
// reason is itself reported.
func TestIgnoreDirectiveRequiresReason(t *testing.T) {
	loader, err := sharedLoader()
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	dir := filepath.Join("testdata", "src", "badignore")
	pkg, err := loader.LoadDir(dir, "darnet/internal/lintfixture/badignore")
	if err != nil {
		t.Fatalf("load fixture: %v", err)
	}
	diags := lint.Run(pkg, []*lint.Analyzer{lint.Ctxsleep})
	var rules []string
	for _, d := range diags {
		rules = append(rules, d.Rule)
	}
	if len(diags) != 2 || rules[0] != "ctxsleep" && rules[1] != "ctxsleep" {
		t.Fatalf("want one ctxsleep finding (directive malformed, so not suppressed) and one ignore finding, got %v", diags)
	}
	foundMalformed := false
	for _, d := range diags {
		if d.Rule == "ignore" && strings.Contains(d.Message, "malformed") {
			foundMalformed = true
		}
	}
	if !foundMalformed {
		t.Fatalf("malformed directive not reported: %v", diags)
	}
}

package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file is the flow-sensitive intermediate representation the
// concurrency analyzers (chanlife, atomicmix, qbound) run on: a lightweight
// per-function control-flow graph of basic blocks with branch-condition
// facts on the edges, plus def-use chains for the function's local
// variables. It is deliberately SSA-lite — no phi nodes, no virtual
// registers — because the analyses that need it track a small number of
// facts per *types.Var and join at block boundaries; a full SSA form would
// buy precision these lattices cannot represent anyway.
//
// The graph is built once per function and memoized on the IPA (see
// IPA.FlowGraph), so analyzers and summary export share one construction,
// and AnalyzeModule can force it eagerly to account IR construction as its
// own -timings phase.

// Block is one basic block: statements and evaluated conditions in source
// order, ending in zero or more successor edges. A block with no successors
// other than Exit ends the function (return, panic, or fallthrough off the
// body).
type Block struct {
	Index int
	// Nodes are the statements and condition expressions evaluated in this
	// block, in execution order. Conditions of branches out of this block
	// appear as their ast.Expr; comm statements of select clauses appear as
	// the first node of the clause's block.
	Nodes []ast.Node
	Succs []Edge
	Preds []*Block
}

// Edge is one control transfer. When Cond is non-nil the edge is taken only
// when Cond evaluates to Sense, which is what lets dataflow refine facts
// per branch ("ch != nil" on the true edge, a CAS that succeeded, ...).
type Edge struct {
	To    *Block
	Cond  ast.Expr
	Sense bool
}

// FlowGraph is the per-function CFG plus its def-use index.
type FlowGraph struct {
	Blocks []*Block
	Entry  *Block
	// Exit is the single synthetic exit block: every return, panic, and
	// fall-off-the-end edge lands here. It holds no nodes.
	Exit *Block
	// DefUse indexes the function's local variables (params included) to
	// their definition and use sites inside this graph.
	DefUse map[*types.Var]*VarChains
}

// VarChains is the def-use record of one local variable.
type VarChains struct {
	// Defs are assignments (including := and the declaration itself when it
	// has an initializer); Rhs is the defining expression when the
	// assignment pairs one-to-one, nil otherwise (multi-value, ++/--).
	Defs []ChainSite
	// Uses are reads of the variable.
	Uses []ChainSite
}

// ChainSite is one def or use, anchored to its block.
type ChainSite struct {
	Block *Block
	Node  ast.Node
	Rhs   ast.Expr // defs only
	Pos   token.Pos
}

// cfgBuilder incrementally builds a FlowGraph from a function body.
type cfgBuilder struct {
	fg  *FlowGraph
	cur *Block

	// break/continue targets, innermost last. Each frame carries the label
	// of the statement it belongs to ("" for unlabeled).
	breaks    []branchTarget
	continues []branchTarget
	labels    map[string]*Block // goto targets
	gotos     []pendingGoto
}

type branchTarget struct {
	label string
	block *Block
}

type pendingGoto struct {
	from  *Block
	label string
}

// BuildCFG constructs the control-flow graph of one function body. The body
// may be nil (external declarations) — the graph is then entry→exit only.
func BuildCFG(body *ast.BlockStmt) *FlowGraph {
	fg := &FlowGraph{DefUse: make(map[*types.Var]*VarChains)}
	b := &cfgBuilder{fg: fg, labels: make(map[string]*Block)}
	fg.Entry = b.newBlock()
	fg.Exit = b.newBlock()
	b.cur = fg.Entry
	if body != nil {
		b.stmts(body.List)
	}
	b.edge(b.cur, fg.Exit, nil, false)
	for _, g := range b.gotos {
		if target, ok := b.labels[g.label]; ok {
			b.edge(g.from, target, nil, false)
		} else {
			b.edge(g.from, fg.Exit, nil, false)
		}
	}
	return fg
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.fg.Blocks)}
	b.fg.Blocks = append(b.fg.Blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *Block, cond ast.Expr, sense bool) {
	if from == nil || to == nil {
		return
	}
	from.Succs = append(from.Succs, Edge{To: to, Cond: cond, Sense: sense})
	to.Preds = append(to.Preds, from)
}

// add appends a node to the current block.
func (b *cfgBuilder) add(n ast.Node) {
	if n != nil {
		b.cur.Nodes = append(b.cur.Nodes, n)
	}
}

func (b *cfgBuilder) stmts(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// terminate ends the current block with an edge to `to` and starts a fresh
// (initially unreachable) block for any trailing dead code.
func (b *cfgBuilder) terminate(to *Block) {
	b.edge(b.cur, to, nil, false)
	b.cur = b.newBlock()
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch x := s.(type) {
	case *ast.BlockStmt:
		b.stmts(x.List)

	case *ast.IfStmt:
		if x.Init != nil {
			b.stmt(x.Init)
		}
		b.add(x.Cond)
		condBlock := b.cur
		then := b.newBlock()
		after := b.newBlock()
		b.edge(condBlock, then, x.Cond, true)
		b.cur = then
		b.stmts(x.Body.List)
		b.edge(b.cur, after, nil, false)
		if x.Else != nil {
			els := b.newBlock()
			b.edge(condBlock, els, x.Cond, false)
			b.cur = els
			b.stmt(x.Else)
			b.edge(b.cur, after, nil, false)
		} else {
			b.edge(condBlock, after, x.Cond, false)
		}
		b.cur = after

	case *ast.ForStmt:
		b.buildFor(x, "")
	case *ast.RangeStmt:
		b.buildRange(x, "")

	case *ast.SwitchStmt:
		b.buildSwitch(x.Init, x.Tag, x.Body, "")
	case *ast.TypeSwitchStmt:
		b.buildSwitch(x.Init, nil, x.Body, "")

	case *ast.SelectStmt:
		b.buildSelect(x, "")

	case *ast.LabeledStmt:
		label := x.Label.Name
		// Give the labeled statement its own block so gotos have a target.
		target := b.newBlock()
		b.edge(b.cur, target, nil, false)
		b.cur = target
		b.labels[label] = target
		switch inner := x.Stmt.(type) {
		case *ast.ForStmt:
			b.buildFor(inner, label)
		case *ast.RangeStmt:
			b.buildRange(inner, label)
		case *ast.SwitchStmt:
			b.buildSwitch(inner.Init, inner.Tag, inner.Body, label)
		case *ast.TypeSwitchStmt:
			b.buildSwitch(inner.Init, nil, inner.Body, label)
		case *ast.SelectStmt:
			b.buildSelect(inner, label)
		default:
			b.stmt(x.Stmt)
		}

	case *ast.ReturnStmt:
		b.add(x)
		b.terminate(b.fg.Exit)

	case *ast.BranchStmt:
		label := ""
		if x.Label != nil {
			label = x.Label.Name
		}
		switch x.Tok {
		case token.BREAK:
			if t := findTarget(b.breaks, label); t != nil {
				b.terminate(t)
			} else {
				b.terminate(b.fg.Exit)
			}
		case token.CONTINUE:
			if t := findTarget(b.continues, label); t != nil {
				b.terminate(t)
			} else {
				b.terminate(b.fg.Exit)
			}
		case token.GOTO:
			b.gotos = append(b.gotos, pendingGoto{from: b.cur, label: label})
			b.cur = b.newBlock()
		case token.FALLTHROUGH:
			// Handled by buildSwitch wiring clause i to clause i+1; the
			// statement itself carries no facts.
		}

	case *ast.ExprStmt:
		b.add(x)
		if isPanicCall(x.X) {
			b.terminate(b.fg.Exit)
		}

	default:
		// Assignments, declarations, sends, defers, go statements, inc/dec:
		// straight-line nodes the dataflow interprets.
		b.add(s)
	}
}

func findTarget(stack []branchTarget, label string) *Block {
	if len(stack) == 0 {
		return nil
	}
	if label == "" {
		return stack[len(stack)-1].block
	}
	for i := len(stack) - 1; i >= 0; i-- {
		if stack[i].label == label {
			return stack[i].block
		}
	}
	return nil
}

func (b *cfgBuilder) buildFor(x *ast.ForStmt, label string) {
	if x.Init != nil {
		b.stmt(x.Init)
	}
	header := b.newBlock()
	body := b.newBlock()
	post := b.newBlock()
	after := b.newBlock()
	b.edge(b.cur, header, nil, false)
	b.cur = header
	if x.Cond != nil {
		b.add(x.Cond)
		b.edge(header, body, x.Cond, true)
		b.edge(header, after, x.Cond, false)
	} else {
		b.edge(header, body, nil, false)
	}
	b.breaks = append(b.breaks, branchTarget{label, after})
	b.continues = append(b.continues, branchTarget{label, post})
	b.cur = body
	b.stmts(x.Body.List)
	b.edge(b.cur, post, nil, false)
	b.cur = post
	if x.Post != nil {
		b.stmt(x.Post)
	}
	b.edge(b.cur, header, nil, false)
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.continues = b.continues[:len(b.continues)-1]
	b.cur = after
}

func (b *cfgBuilder) buildRange(x *ast.RangeStmt, label string) {
	header := b.newBlock()
	body := b.newBlock()
	after := b.newBlock()
	b.edge(b.cur, header, nil, false)
	b.cur = header
	// The RangeStmt node itself carries the per-iteration effects (the
	// range expression evaluation, the key/value defs, a channel receive).
	b.add(x)
	b.edge(header, body, nil, false)
	b.edge(header, after, nil, false)
	b.breaks = append(b.breaks, branchTarget{label, after})
	b.continues = append(b.continues, branchTarget{label, header})
	b.cur = body
	b.stmts(x.Body.List)
	b.edge(b.cur, header, nil, false)
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.continues = b.continues[:len(b.continues)-1]
	b.cur = after
}

func (b *cfgBuilder) buildSwitch(init ast.Stmt, tag ast.Expr, body *ast.BlockStmt, label string) {
	if init != nil {
		b.stmt(init)
	}
	if tag != nil {
		b.add(tag)
	}
	evalBlock := b.cur
	after := b.newBlock()
	b.breaks = append(b.breaks, branchTarget{label, after})

	// Build clause bodies first so fallthrough can wire i → i+1.
	var clauses []*ast.CaseClause
	for _, c := range body.List {
		if cc, ok := c.(*ast.CaseClause); ok {
			clauses = append(clauses, cc)
		}
	}
	blocks := make([]*Block, len(clauses))
	hasDefault := false
	for i, cc := range clauses {
		blocks[i] = b.newBlock()
		if cc.List == nil {
			hasDefault = true
		}
		// Case guard expressions are evaluated in the dispatch block.
		for _, e := range cc.List {
			evalBlock.Nodes = append(evalBlock.Nodes, e)
		}
		b.edge(evalBlock, blocks[i], nil, false)
	}
	if !hasDefault || len(clauses) == 0 {
		b.edge(evalBlock, after, nil, false)
	}
	for i, cc := range clauses {
		b.cur = blocks[i]
		b.stmts(cc.Body)
		if fallsThrough(cc.Body) && i+1 < len(clauses) {
			b.edge(b.cur, blocks[i+1], nil, false)
		} else {
			b.edge(b.cur, after, nil, false)
		}
	}
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.cur = after
}

func fallsThrough(body []ast.Stmt) bool {
	if len(body) == 0 {
		return false
	}
	br, ok := body[len(body)-1].(*ast.BranchStmt)
	return ok && br.Tok == token.FALLTHROUGH
}

func (b *cfgBuilder) buildSelect(x *ast.SelectStmt, label string) {
	evalBlock := b.cur
	after := b.newBlock()
	b.breaks = append(b.breaks, branchTarget{label, after})
	wired := false
	for _, c := range x.Body.List {
		cc, ok := c.(*ast.CommClause)
		if !ok {
			continue
		}
		clause := b.newBlock()
		b.edge(evalBlock, clause, nil, false)
		b.cur = clause
		// The comm statement (send/receive) executes only on the path
		// through its own clause — that is the fact the orphaned-send
		// check depends on.
		if cc.Comm != nil {
			b.stmt(cc.Comm)
		}
		b.stmts(cc.Body)
		b.edge(b.cur, after, nil, false)
		wired = true
	}
	if !wired {
		// select{}: blocks forever; the only way on is not through.
		b.edge(evalBlock, after, nil, false)
	}
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.cur = after
}

func isPanicCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "panic"
}

// --- Def-use chains ---------------------------------------------------------

// buildDefUse walks the finished graph and indexes every local variable's
// defs and uses. Only variables local to the analyzed function (params
// included) are indexed; package-level vars and fields belong to coarser,
// identity-keyed analyses (atomicmix).
func buildDefUse(fg *FlowGraph, info *types.Info) {
	record := func(blk *Block, id *ast.Ident, node ast.Node, rhs ast.Expr, isDef bool) {
		var v *types.Var
		if obj := info.Defs[id]; obj != nil {
			v, _ = obj.(*types.Var)
		} else if obj := info.Uses[id]; obj != nil {
			v, _ = obj.(*types.Var)
		}
		if v == nil || v.IsField() || isPackageLevel(v) {
			return
		}
		ch := fg.DefUse[v]
		if ch == nil {
			ch = &VarChains{}
			fg.DefUse[v] = ch
		}
		site := ChainSite{Block: blk, Node: node, Rhs: rhs, Pos: id.Pos()}
		if isDef {
			ch.Defs = append(ch.Defs, site)
		} else {
			ch.Uses = append(ch.Uses, site)
		}
	}
	for _, blk := range fg.Blocks {
		for _, n := range blk.Nodes {
			switch x := n.(type) {
			case *ast.AssignStmt:
				for i, lhs := range x.Lhs {
					if id, ok := ast.Unparen(lhs).(*ast.Ident); ok && id.Name != "_" {
						var rhs ast.Expr
						if len(x.Rhs) == len(x.Lhs) {
							rhs = x.Rhs[i]
						}
						record(blk, id, x, rhs, true)
					}
				}
				for _, rhs := range x.Rhs {
					collectUses(blk, rhs, record)
				}
			case *ast.IncDecStmt:
				if id, ok := ast.Unparen(x.X).(*ast.Ident); ok {
					record(blk, id, x, nil, true)
					record(blk, id, x, nil, false)
				}
			case *ast.DeclStmt:
				gd, ok := x.Decl.(*ast.GenDecl)
				if !ok {
					continue
				}
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for i, name := range vs.Names {
						var rhs ast.Expr
						if len(vs.Values) == len(vs.Names) {
							rhs = vs.Values[i]
						}
						record(blk, name, x, rhs, true)
					}
					for _, v := range vs.Values {
						collectUses(blk, v, record)
					}
				}
			case *ast.RangeStmt:
				for _, lhs := range []ast.Expr{x.Key, x.Value} {
					if lhs == nil {
						continue
					}
					if id, ok := ast.Unparen(lhs).(*ast.Ident); ok && id.Name != "_" {
						record(blk, id, x, nil, true)
					}
				}
				collectUses(blk, x.X, record)
			default:
				if e, usable := n.(ast.Expr); usable {
					collectUses(blk, e, record)
				} else {
					ast.Inspect(n, func(sub ast.Node) bool {
						if e, ok := sub.(ast.Expr); ok {
							collectUses(blk, e, record)
							return false
						}
						return true
					})
				}
			}
		}
	}
}

func collectUses(blk *Block, e ast.Expr, record func(*Block, *ast.Ident, ast.Node, ast.Expr, bool)) {
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			record(blk, id, id, nil, false)
		}
		return true
	})
}

func isPackageLevel(v *types.Var) bool {
	return v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}

// --- IPA integration --------------------------------------------------------

// FlowGraph returns the memoized control-flow graph of one function node,
// building it on first use. Analyzers reach it through Pass.IPA().
func (ipa *IPA) FlowGraph(n *FuncNode) *FlowGraph {
	if ipa.flows == nil {
		ipa.flows = make(map[*FuncNode]*FlowGraph)
	}
	if fg, ok := ipa.flows[n]; ok {
		return fg
	}
	fg := BuildCFG(n.Body)
	buildDefUse(fg, ipa.Pkg.Info)
	ipa.flows[n] = fg
	return fg
}

// BuildIR forces the flow-sensitive IR for every function in the package:
// the call graph and fixpoint summaries (if not already built) plus one
// control-flow graph per function. AnalyzeModule calls it between load and
// the analyzer runs so -timings reports IR construction as its own phase.
func (p *Package) BuildIR() {
	ipa := p.ipa()
	for _, n := range ipa.Graph.Nodes {
		ipa.FlowGraph(n)
	}
}

package lint

import (
	"go/ast"
	"go/types"
)

// Errdrop reports error results that are discarded: calls used as bare
// statements whose result includes an error, and errors assigned to the
// blank identifier. The collection plane's transport (wire.Conn, tsdb
// persistence, engine snapshots) surfaces partial failures only through
// returned errors; dropping one turns a recoverable agent disconnect into
// silent data loss.
//
// Exemptions: _test.go files and example packages (demonstration code),
// deferred and go-routine'd calls (the defer f.Close() read-path
// convention), and writers whose errors are documented never to occur
// (fmt.Print*, strings.Builder, bytes.Buffer).
var Errdrop = &Analyzer{
	Name: "errdrop",
	Doc:  "returned errors must be handled, not discarded or blanked",
	Run:  runErrdrop,
}

func runErrdrop(pass *Pass) {
	if pass.InExamples() {
		return
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				call, ok := n.X.(*ast.CallExpr)
				if !ok || errdropExempt(pass.TypesInfo, call) {
					return true
				}
				if returnsError(pass.TypesInfo, call) {
					pass.Reportf(n.Pos(), "%s returns an error that is ignored", callName(pass.TypesInfo, call))
				}
			case *ast.AssignStmt:
				checkBlankedErrors(pass, n)
			}
			return true
		})
	}
}

// returnsError reports whether the call returns an error, alone or in a
// tuple.
func returnsError(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call]
	if !ok {
		return false
	}
	if t, ok := tv.Type.(*types.Tuple); ok {
		for i := 0; i < t.Len(); i++ {
			if isErrorType(t.At(i).Type()) {
				return true
			}
		}
		return false
	}
	return isErrorType(tv.Type)
}

func checkBlankedErrors(pass *Pass, as *ast.AssignStmt) {
	blankAt := func(i int) (*ast.Ident, bool) {
		if i >= len(as.Lhs) {
			return nil, false
		}
		id, ok := as.Lhs[i].(*ast.Ident)
		if !ok || id.Name != "_" {
			return nil, false
		}
		return id, true
	}
	if len(as.Rhs) == 1 && len(as.Lhs) > 1 {
		// Tuple form: x, _ := f()
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if ok && errdropExempt(pass.TypesInfo, call) {
			return
		}
		tv, ok := pass.TypesInfo.Types[as.Rhs[0]]
		if !ok {
			return
		}
		tuple, ok := tv.Type.(*types.Tuple)
		if !ok {
			return
		}
		for i := 0; i < tuple.Len(); i++ {
			if id, blank := blankAt(i); blank && isErrorType(tuple.At(i).Type()) {
				pass.Reportf(id.Pos(), "error result discarded with _")
			}
		}
		return
	}
	for i, rhs := range as.Rhs {
		id, blank := blankAt(i)
		if !blank {
			continue
		}
		if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok && errdropExempt(pass.TypesInfo, call) {
			continue
		}
		if tv, ok := pass.TypesInfo.Types[rhs]; ok && isErrorType(tv.Type) {
			pass.Reportf(id.Pos(), "error result discarded with _")
		}
	}
}

// errdropExempt lists callees whose error results are conventionally
// unactionable: fmt printers targeting stdout/stderr or the never-failing
// in-memory writers, and methods on those writers themselves.
func errdropExempt(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() {
	case "fmt":
		switch fn.Name() {
		case "Print", "Printf", "Println":
			return true
		case "Fprint", "Fprintf", "Fprintln":
			return len(call.Args) > 0 && safeWriter(info, call.Args[0])
		}
	case "strings", "bytes":
		if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
			name := recv.Type().String()
			return name == "*strings.Builder" || name == "*bytes.Buffer"
		}
	}
	return false
}

// safeWriter reports whether w is an in-memory writer that cannot fail or
// one of the process diagnostic streams, where a failed write leaves nothing
// to report to anyway.
func safeWriter(info *types.Info, w ast.Expr) bool {
	w = ast.Unparen(w)
	if tv, ok := info.Types[w]; ok {
		switch tv.Type.String() {
		case "*strings.Builder", "*bytes.Buffer":
			return true
		}
	}
	if sel, ok := w.(*ast.SelectorExpr); ok {
		if v, ok := info.Uses[sel.Sel].(*types.Var); ok && v.Pkg() != nil && v.Pkg().Path() == "os" {
			return v.Name() == "Stdout" || v.Name() == "Stderr"
		}
	}
	return false
}

func callName(info *types.Info, call *ast.CallExpr) string {
	if fn := calleeFunc(info, call); fn != nil {
		return fn.Name()
	}
	return "call"
}

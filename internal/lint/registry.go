package lint

// All returns the full analyzer registry in the order findings are
// conventionally reported.
func All() []*Analyzer {
	return []*Analyzer{
		Locksafe,
		Floatcmp,
		Errdrop,
		Globalrand,
		Ctxsleep,
		Shapecheck,
		Metricname,
	}
}

package lint

// All returns the full analyzer registry in the order findings are
// conventionally reported: the intra-procedural rules first, then the
// whole-program analyzers built on the interprocedural engine.
func All() []*Analyzer {
	return append(Intraprocedural(), Interprocedural()...)
}

// Intraprocedural returns the single-function AST rules — the fast subset
// `make lint-fast` runs in edit loops.
func Intraprocedural() []*Analyzer {
	return []*Analyzer{
		Locksafe,
		Floatcmp,
		Errdrop,
		Globalrand,
		Ctxsleep,
		Shapecheck,
		Metricname,
	}
}

// Interprocedural returns the whole-program analyzers that share the
// package call graph and function summaries.
func Interprocedural() []*Analyzer {
	return []*Analyzer{
		Goleak,
		Lockorder,
		Hotalloc,
		Ctxprop,
	}
}

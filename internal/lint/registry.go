package lint

// All returns the full analyzer registry in the order findings are
// conventionally reported: the intra-procedural rules first, then the
// whole-program analyzers built on the interprocedural engine.
func All() []*Analyzer {
	return append(Intraprocedural(), Interprocedural()...)
}

// Intraprocedural returns the single-function AST rules — the fast subset
// `make lint-fast` runs in edit loops.
func Intraprocedural() []*Analyzer {
	return []*Analyzer{
		Locksafe,
		Floatcmp,
		Errdrop,
		Globalrand,
		Ctxsleep,
		Shapecheck,
		Metricname,
	}
}

// Interprocedural returns the whole-program analyzers that share the
// package call graph and function summaries.
func Interprocedural() []*Analyzer {
	return []*Analyzer{
		Goleak,
		Lockorder,
		Hotalloc,
		Ctxprop,
	}
}

// Module returns the analyzers that are only meaningful at module scope,
// where cross-package summaries (shape transfers, channel effects,
// atomic/plain access sets) are available through the module index.
func Module() []*Analyzer {
	return []*Analyzer{
		Shapeflow,
		Chanlife,
		Atomicmix,
		Qbound,
	}
}

// Concurrency returns the flow-sensitive concurrency analyzers — the
// `make lint-concurrency` fast-iteration subset.
func Concurrency() []*Analyzer {
	return []*Analyzer{
		Chanlife,
		Atomicmix,
		Qbound,
	}
}

// AllModule is the registry the driver runs in -ipa=module mode: every
// per-package rule plus the module-scope analyzers.
func AllModule() []*Analyzer {
	return append(All(), Module()...)
}

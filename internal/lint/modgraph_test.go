package lint_test

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"

	"darnet/internal/lint"
)

// modipaBase is the synthetic import-path prefix of the three-level fixture
// tree under testdata/src/modipa (root -> mid -> leaf, plus rootquiet).
const modipaBase = "darnet/internal/lintfixture/modipa/"

// modipaPkgs returns the fixture tree's (dir, importPath) pairs deliberately
// out of dependency order: AnalyzeModule must topo-sort before linking.
func modipaPkgs(dir string) [][2]string {
	return [][2]string{
		{filepath.Join(dir, "root"), modipaBase + "root"},
		{filepath.Join(dir, "rootquiet"), modipaBase + "rootquiet"},
		{filepath.Join(dir, "leaf"), modipaBase + "leaf"},
		{filepath.Join(dir, "mid"), modipaBase + "mid"},
	}
}

var modipaDir = filepath.Join("testdata", "src", "modipa")

// TestModuleLinkedFindings is the positive half of the cross-package
// contract: analyzed as one linked module, the fixture tree yields exactly
// the four findings seeded in package root — each provable only by folding
// another package's serialized summaries — and nothing in leaf, mid, or the
// fully-suppressed rootquiet.
func TestModuleLinkedFindings(t *testing.T) {
	loader, err := sharedLoader()
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	res, err := lint.AnalyzeModule(loader, modipaPkgs(modipaDir), lint.AllModule())
	if err != nil {
		t.Fatalf("AnalyzeModule: %v", err)
	}
	if res.Packages != 4 {
		t.Fatalf("analyzed %d packages, want 4", res.Packages)
	}
	for _, d := range res.Diags {
		if !strings.Contains(filepath.ToSlash(d.Pos.Filename), "modipa/root/") {
			t.Errorf("finding outside package root: %s", d)
		}
	}
	wants := []struct{ rule, substr string }{
		{"goleak", "goroutine mid.Watch can block forever"},
		{"goleak", "leaf.WaitForever"}, // the ultimate site two packages down
		{"hotalloc", "call into mid.Refill"},
		{"hotalloc", "call into leaf.Grow"}, // nested through mid's summary
		{"lockorder", "potential ABBA deadlock"},
		{"lockorder", "the reversing order is recorded in a dependency package"},
		{"shapeflow", "inner dimensions disagree: 64 vs 32"},
	}
	for _, w := range wants {
		found := false
		for _, d := range res.Diags {
			if d.Rule == w.rule && strings.Contains(d.Message, w.substr) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no %s finding containing %q in %v", w.rule, w.substr, res.Diags)
		}
	}
	if len(res.Diags) != 4 {
		t.Errorf("want exactly 4 module-linked findings (goleak, hotalloc, lockorder, shapeflow), got %d: %v", len(res.Diags), res.Diags)
	}
	if len(res.Phases) != 4 {
		t.Errorf("want 4 pipeline phases (load, ir, analyze, link), got %v", res.Phases)
	}
}

// TestModuleFindingsVanishPerPackage is the negative half: the same tree
// analyzed package-by-package (sources registered so imports resolve, but no
// summary index) yields nothing — every finding above genuinely needs the
// cross-package link.
func TestModuleFindingsVanishPerPackage(t *testing.T) {
	loader, err := sharedLoader()
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	// Topological order by hand: imports must resolve, summaries must not.
	order := []string{"leaf", "mid", "root", "rootquiet"}
	var diags []lint.Diagnostic
	for _, name := range order {
		pkg, err := loader.LoadDir(filepath.Join(modipaDir, name), modipaBase+name)
		if err != nil {
			t.Fatalf("load %s: %v", name, err)
		}
		loader.RegisterSource(pkg)
		diags = append(diags, lint.Run(pkg, lint.All())...)
	}
	if len(diags) != 0 {
		t.Fatalf("per-package analysis must miss the cross-package findings, got %v", diags)
	}
}

// TestSummarySerializationRoundTrip pins the linking currency: the encode →
// decode cycle is lossless, and the summaries carry the exact cross-package
// facts the module tests above rely on (forever-blocking, allocation sites,
// lock pairs, shape transfers).
func TestSummarySerializationRoundTrip(t *testing.T) {
	loader, err := sharedLoader()
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	leaf, err := loader.LoadDir(filepath.Join(modipaDir, "leaf"), modipaBase+"leaf")
	if err != nil {
		t.Fatalf("load leaf: %v", err)
	}
	loader.RegisterSource(leaf)
	mid, err := loader.LoadDir(filepath.Join(modipaDir, "mid"), modipaBase+"mid")
	if err != nil {
		t.Fatalf("load mid: %v", err)
	}

	for _, pkg := range []*lint.Package{leaf, mid} {
		ps := lint.ExportSummaries(pkg)
		data, err := lint.EncodeSummaries(ps)
		if err != nil {
			t.Fatalf("encode %s: %v", pkg.Path, err)
		}
		decoded, err := lint.DecodeSummaries(data)
		if err != nil {
			t.Fatalf("decode %s: %v", pkg.Path, err)
		}
		if !reflect.DeepEqual(ps, decoded) {
			t.Errorf("%s: summaries do not round-trip:\n%+v\nvs\n%+v", pkg.Path, ps, decoded)
		}
	}

	leafSums := lint.ExportSummaries(leaf)
	wait := leafSums.Funcs[modipaBase+"leaf.WaitForever"]
	if wait == nil || !wait.BlocksForever || wait.ForeverWhat != "channel receive" {
		t.Errorf("leaf.WaitForever summary wrong: %+v", wait)
	}
	grow := leafSums.Funcs[modipaBase+"leaf.Grow"]
	if grow == nil || len(grow.Allocs) != 1 || grow.Allocs[0].What != "make" {
		t.Errorf("leaf.Grow summary wrong: %+v", grow)
	}
	// Scratch's make carries //lint:ignore hotalloc: the export filter must
	// drop it so the justification holds module-wide.
	scratch := leafSums.Funcs[modipaBase+"leaf.Scratch"]
	if scratch == nil || len(scratch.Allocs) != 0 {
		t.Errorf("leaf.Scratch's justified allocation leaked into the export: %+v", scratch)
	}
	lockPair := leafSums.Funcs[modipaBase+"leaf.LockIndexThenTable"]
	if lockPair == nil || len(lockPair.Pairs) != 1 ||
		lockPair.Pairs[0].First != "Index.mu" || lockPair.Pairs[0].Second != "Table.mu" {
		t.Errorf("leaf.LockIndexThenTable pair wrong: %+v", lockPair)
	}

	midSums := lint.ExportSummaries(mid)
	embed := midSums.Funcs[modipaBase+"mid.Embed"]
	wantShape := &lint.ShapeTransfer{Dims: []lint.DimRef{{Kind: "arg", Arg: 0}, {Kind: "const", Value: 64}}}
	if embed == nil || !reflect.DeepEqual(embed.Shape, wantShape) {
		t.Errorf("mid.Embed shape transfer wrong: got %+v, want %+v", embed, wantShape)
	}
}

// mutLoader is a second loader for the mutation tests: they register mutated
// copies of real packages under the originals' import paths, which must not
// leak into the loader the fixture tests share.
var mutLoader = sync.OnceValues(func() (*lint.Loader, error) {
	return lint.NewLoader(".")
})

// copyGoFiles copies a package's non-test .go files into dst, applying
// mutate to each file's source.
func copyGoFiles(t *testing.T, src, dst string, mutate func(name, content string) string) {
	t.Helper()
	ents, err := os.ReadDir(src)
	if err != nil {
		t.Fatalf("read %s: %v", src, err)
	}
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(src, name))
		if err != nil {
			t.Fatalf("read %s: %v", name, err)
		}
		content := string(data)
		if mutate != nil {
			content = mutate(name, content)
		}
		if err := os.WriteFile(filepath.Join(dst, name), []byte(content), 0o644); err != nil {
			t.Fatalf("write %s: %v", name, err)
		}
	}
}

// TestModuleShapeMutationNN is the shape acceptance check: seeding a static
// inner-dimension mismatch into internal/nn's Dense.Forward is caught by the
// module-scope analysis (shapeflow runs there) and missed by the per-package
// engine. The unmutated copy stays clean, guarding against false positives.
func TestModuleShapeMutationNN(t *testing.T) {
	loader, err := mutLoader()
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	const (
		orig    = "y, err := tensor.MatMul(x, d.w.Value)"
		mutated = "y, err := tensor.MatMul(tensor.New(8, 3), tensor.New(4, 8))"
	)
	run := func(name, replace string) ([]lint.Diagnostic, *lint.Package) {
		dir := t.TempDir()
		hit := false
		copyGoFiles(t, filepath.Join("..", "nn"), dir, func(file, content string) string {
			if file == "dense.go" && replace != "" {
				next := strings.Replace(content, orig, replace, 1)
				if next == content {
					t.Fatalf("dense.go drifted: forward line %q not found", orig)
				}
				hit = true
				return next
			}
			return content
		})
		if replace != "" && !hit {
			t.Fatalf("dense.go not seen while copying internal/nn")
		}
		importPath := "darnet/internal/" + name
		res, err := lint.AnalyzeModule(loader, [][2]string{{dir, importPath}}, lint.AllModule())
		if err != nil {
			t.Fatalf("AnalyzeModule(%s): %v", name, err)
		}
		pkg, err := loader.LoadDir(dir, importPath)
		if err != nil {
			t.Fatalf("reload %s: %v", name, err)
		}
		return res.Diags, pkg
	}

	cleanDiags, _ := run("nnclean", "")
	for _, d := range cleanDiags {
		if d.Rule == "shapeflow" {
			t.Fatalf("unmutated internal/nn must be shapeflow-clean, got %s", d)
		}
	}

	mutDiags, mutPkg := run("nnmut", mutated)
	found := false
	for _, d := range mutDiags {
		if d.Rule == "shapeflow" && strings.Contains(d.Message, "inner dimensions disagree: 3 vs 4") {
			found = true
		}
	}
	if !found {
		t.Fatalf("module analysis must catch the seeded shape mismatch, got %v", mutDiags)
	}
	// The per-package engine has no shapeflow registry entry: same package,
	// same mutation, no finding.
	for _, d := range lint.Run(mutPkg, lint.All()) {
		if d.Rule == "shapeflow" {
			t.Fatalf("per-package analysis must miss the seeded shape mismatch, got %s", d)
		}
	}
}

// TestModuleAllocMutationTwoLevels is the hotalloc acceptance check: seeding
// an allocation into leaf.Buffer — two packages below root's //lint:hotpath
// Pack — is caught by the module-linked analysis and missed per-package
// (leaf itself has no hotpath root, and root cannot see leaf's body).
func TestModuleAllocMutationTwoLevels(t *testing.T) {
	loader, err := mutLoader()
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	const (
		reuse  = "return warm[:]"
		seeded = "return make([]byte, 256)"
	)
	tmp := t.TempDir()
	for _, name := range []string{"leaf", "mid", "root", "rootquiet"} {
		sub := filepath.Join(tmp, name)
		if err := os.Mkdir(sub, 0o755); err != nil {
			t.Fatalf("mkdir %s: %v", name, err)
		}
		copyGoFiles(t, filepath.Join(modipaDir, name), sub, func(file, content string) string {
			if name == "leaf" {
				next := strings.Replace(content, reuse, seeded, 1)
				if next == content {
					t.Fatalf("leaf fixture drifted: buffer reuse line %q not found", reuse)
				}
				return next
			}
			return content
		})
	}

	res, err := lint.AnalyzeModule(loader, modipaPkgs(tmp), lint.AllModule())
	if err != nil {
		t.Fatalf("AnalyzeModule: %v", err)
	}
	found := false
	for _, d := range res.Diags {
		if d.Rule == "hotalloc" && strings.Contains(d.Message, "call into mid.Fetch") &&
			strings.Contains(d.Message, "root Pack") {
			found = true
		}
	}
	if !found {
		t.Fatalf("module analysis must catch the seeded allocation two packages below the hotpath root, got %v", res.Diags)
	}

	// Per-package: reload the mutated tree without a summary index; the
	// seeded make is invisible from root and not hot inside leaf.
	var diags []lint.Diagnostic
	for _, name := range []string{"leaf", "mid", "root", "rootquiet"} {
		pkg, err := loader.LoadDir(filepath.Join(tmp, name), modipaBase+name)
		if err != nil {
			t.Fatalf("reload %s: %v", name, err)
		}
		loader.RegisterSource(pkg)
		diags = append(diags, lint.Run(pkg, lint.All())...)
	}
	for _, d := range diags {
		if d.Rule == "hotalloc" {
			t.Fatalf("per-package analysis must miss the seeded allocation, got %s", d)
		}
	}
}

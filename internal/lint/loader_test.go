package lint_test

import (
	"path/filepath"
	"strings"
	"testing"

	"darnet/internal/lint"
)

// TestLoadDirGenerics: a package built from type parameters, constraint
// interfaces, and generic methods must load, type-check, and survive the
// full analyzer suite (including the interprocedural engine) cleanly.
func TestLoadDirGenerics(t *testing.T) {
	loader, err := sharedLoader()
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	dir := filepath.Join("testdata", "src", "loadgenerics")
	pkg, err := loader.LoadDir(dir, "darnet/internal/lintfixture/loadgenerics")
	if err != nil {
		t.Fatalf("load generics fixture: %v", err)
	}
	if obj := pkg.Types.Scope().Lookup("sum"); obj == nil {
		t.Fatalf("generic function sum missing from package scope")
	}
	if diags := lint.Run(pkg, lint.All()); len(diags) != 0 {
		t.Fatalf("generics fixture must be clean under the full suite, got %v", diags)
	}
}

// TestLoadDirStdlibDeps: imports outside the module's own dependency graph
// (container/list, net/url) must resolve through lazily fetched export data.
func TestLoadDirStdlibDeps(t *testing.T) {
	loader, err := sharedLoader()
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	dir := filepath.Join("testdata", "src", "loadstdlib")
	pkg, err := loader.LoadDir(dir, "darnet/internal/lintfixture/loadstdlib")
	if err != nil {
		t.Fatalf("load stdlib fixture: %v", err)
	}
	for _, imp := range pkg.Types.Imports() {
		if imp.Path() == "encoding/json" && !imp.Complete() {
			t.Fatalf("encoding/json resolved but incomplete")
		}
	}
	if diags := lint.Run(pkg, lint.All()); len(diags) != 0 {
		t.Fatalf("stdlib fixture must be clean under the full suite, got %v", diags)
	}
}

// TestLoadDirTypeError: a package that fails type-checking must surface the
// error — naming the package and carrying a position — rather than panicking
// or returning a half-built package.
func TestLoadDirTypeError(t *testing.T) {
	loader, err := sharedLoader()
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	dir := filepath.Join("testdata", "src", "loadbroken")
	pkg, err := loader.LoadDir(dir, "darnet/internal/lintfixture/loadbroken")
	if err == nil {
		t.Fatalf("broken fixture loaded without error: %+v", pkg)
	}
	if pkg != nil {
		t.Fatalf("broken fixture returned a package alongside the error")
	}
	if !strings.Contains(err.Error(), "loadbroken") {
		t.Fatalf("error does not name the package: %v", err)
	}
	if !strings.Contains(err.Error(), "broken.go") {
		t.Fatalf("error carries no source position: %v", err)
	}
}

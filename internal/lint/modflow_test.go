package lint_test

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"darnet/internal/lint"
)

// modflowBase is the synthetic import-path prefix of the concurrency
// fixture tree under testdata/src/modflow (root -> mid -> leaf, plus the
// clean rootquiet the mutation tests seed defects into).
const modflowBase = "darnet/internal/lintfixture/modflow/"

func modflowPkgs(dir string) [][2]string {
	return [][2]string{
		{filepath.Join(dir, "root"), modflowBase + "root"},
		{filepath.Join(dir, "rootquiet"), modflowBase + "rootquiet"},
		{filepath.Join(dir, "leaf"), modflowBase + "leaf"},
		{filepath.Join(dir, "mid"), modflowBase + "mid"},
	}
}

var modflowDir = filepath.Join("testdata", "src", "modflow")

// TestModflowLinkedFindings is the positive half of the concurrency
// contract: linked as one module, the tree yields exactly the two findings
// seeded in package root — a plain read of the counter mid manages
// atomically (atomicmix, via mid's serialized access refs) and a close of a
// channel leaf.Halt already closed two packages down (chanlife, via the
// mustclose op folded through mid.Stop's summary).
func TestModflowLinkedFindings(t *testing.T) {
	loader, err := sharedLoader()
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	res, err := lint.AnalyzeModule(loader, modflowPkgs(modflowDir), lint.AllModule())
	if err != nil {
		t.Fatalf("AnalyzeModule: %v", err)
	}
	for _, d := range res.Diags {
		if !strings.Contains(filepath.ToSlash(d.Pos.Filename), "modflow/root/") {
			t.Errorf("finding outside package root: %s", d)
		}
	}
	wants := []struct{ rule, substr string }{
		{"atomicmix", "plain read of " + modflowBase + "leaf.Live"},
		{"chanlife", "close of already-closed channel ch"},
	}
	for _, w := range wants {
		found := false
		for _, d := range res.Diags {
			if d.Rule == w.rule && strings.Contains(d.Message, w.substr) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no %s finding containing %q in %v", w.rule, w.substr, res.Diags)
		}
	}
	if len(res.Diags) != 2 {
		t.Errorf("want exactly 2 module-linked findings (atomicmix, chanlife), got %d: %v", len(res.Diags), res.Diags)
	}
}

// TestModflowFindingsVanishPerPackage is the negative half, and stronger
// than registry membership: even with the module-scope analyzers running,
// the per-package engine (no summary index) misses both seeded findings —
// root alone has no atomic side for the mix, and mid.Stop degrades to the
// effect-free external-callee assumption without its linked summary.
func TestModflowFindingsVanishPerPackage(t *testing.T) {
	loader, err := sharedLoader()
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	order := []string{"leaf", "mid", "root", "rootquiet"}
	var diags []lint.Diagnostic
	for _, name := range order {
		pkg, err := loader.LoadDir(filepath.Join(modflowDir, name), modflowBase+name)
		if err != nil {
			t.Fatalf("load %s: %v", name, err)
		}
		loader.RegisterSource(pkg)
		diags = append(diags, lint.Run(pkg, lint.All())...)
		diags = append(diags, lint.Run(pkg, lint.AllModule())...)
	}
	if len(diags) != 0 {
		t.Fatalf("per-package analysis must miss the cross-package concurrency findings, got %v", diags)
	}
}

// TestModflowSummaryRoundTripBytes pins the new summary currency at the
// byte level: encoding, decoding, and re-encoding a package's summaries is
// the identity on the wire format, and the channel-op and atomic-access
// refs the modflow findings depend on survive the cycle.
func TestModflowSummaryRoundTripBytes(t *testing.T) {
	loader, err := sharedLoader()
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	leaf, err := loader.LoadDir(filepath.Join(modflowDir, "leaf"), modflowBase+"leaf")
	if err != nil {
		t.Fatalf("load leaf: %v", err)
	}
	loader.RegisterSource(leaf)

	ix := lint.NewModuleIndex()
	leafData, err := lint.EncodeSummaries(lint.ExportSummaries(leaf))
	if err != nil {
		t.Fatalf("encode leaf: %v", err)
	}
	leafSums, err := lint.DecodeSummaries(leafData)
	if err != nil {
		t.Fatalf("decode leaf: %v", err)
	}
	ix.Add(leafSums)

	mid, err := loader.LoadDir(filepath.Join(modflowDir, "mid"), modflowBase+"mid")
	if err != nil {
		t.Fatalf("load mid: %v", err)
	}
	mid.SetDeps(ix)

	for _, pkg := range []*lint.Package{leaf, mid} {
		data, err := lint.EncodeSummaries(lint.ExportSummaries(pkg))
		if err != nil {
			t.Fatalf("encode %s: %v", pkg.Path, err)
		}
		decoded, err := lint.DecodeSummaries(data)
		if err != nil {
			t.Fatalf("decode %s: %v", pkg.Path, err)
		}
		again, err := lint.EncodeSummaries(decoded)
		if err != nil {
			t.Fatalf("re-encode %s: %v", pkg.Path, err)
		}
		if !bytes.Equal(data, again) {
			t.Errorf("%s: encode∘decode is not byte-identity:\n%s\nvs\n%s", pkg.Path, data, again)
		}
	}

	halt := leafSums.Funcs[modflowBase+"leaf.Halt"]
	if halt == nil || len(halt.ChanOps) != 1 || halt.ChanOps[0].Op != "mustclose" || halt.ChanOps[0].Param != 0 {
		t.Errorf("leaf.Halt channel ops wrong: %+v", halt)
	}

	midData, err := lint.EncodeSummaries(lint.ExportSummaries(mid))
	if err != nil {
		t.Fatalf("encode mid: %v", err)
	}
	midSums, err := lint.DecodeSummaries(midData)
	if err != nil {
		t.Fatalf("decode mid: %v", err)
	}
	stop := midSums.Funcs[modflowBase+"mid.Stop"]
	if stop == nil || len(stop.ChanOps) != 1 || stop.ChanOps[0].Op != "mustclose" || stop.ChanOps[0].Param != 0 {
		t.Errorf("mid.Stop must inherit leaf.Halt's mustclose through the linked summary: %+v", stop)
	}
	bump := midSums.Funcs[modflowBase+"mid.Bump"]
	if bump == nil || len(bump.AtomicRefs) != 2 ||
		bump.AtomicRefs[0].ID != modflowBase+"leaf.Live" || !bump.AtomicRefs[0].Write ||
		bump.AtomicRefs[1].ID != modflowBase+"leaf.Seen" || !bump.AtomicRefs[1].Write {
		t.Errorf("mid.Bump atomic refs wrong: %+v", bump)
	}
}

// TestModuleQboundMutationStream is the qbound acceptance check against
// real code: deleting the capacity check from stream.Pipeline.Offer's
// admission loop (the //lint:bounded depth contract) is caught at module
// scope and structurally missed by -ipa=pkg, where qbound is not
// registered. The unmutated copy stays clean.
func TestModuleQboundMutationStream(t *testing.T) {
	loader, err := mutLoader()
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	const admission = "if d >= cap64 {\n\t\t\tp.shed(in)\n\t\t\treturn false\n\t\t}\n\t\t"
	run := func(name string, mutate bool) (*lint.ModuleResult, *lint.Package) {
		dir := t.TempDir()
		copyGoFiles(t, filepath.Join("..", "stream"), dir, func(file, content string) string {
			if file == "pipeline.go" && mutate {
				next := strings.Replace(content, admission, "_ = cap64\n\t\t", 1)
				if next == content {
					t.Fatalf("pipeline.go drifted: admission check %q not found", admission)
				}
				return next
			}
			return content
		})
		importPath := "darnet/internal/" + name
		res, err := lint.AnalyzeModule(loader, [][2]string{{dir, importPath}}, lint.AllModule())
		if err != nil {
			t.Fatalf("AnalyzeModule(%s): %v", name, err)
		}
		pkg, err := loader.LoadDir(dir, importPath)
		if err != nil {
			t.Fatalf("reload %s: %v", name, err)
		}
		return res, pkg
	}

	clean, _ := run("streamclean", false)
	for _, d := range clean.Diags {
		if d.Rule == "qbound" {
			t.Fatalf("unmutated internal/stream must be qbound-clean, got %s", d)
		}
	}

	mut, mutPkg := run("streammut", true)
	found := false
	for _, d := range mut.Diags {
		if d.Rule == "qbound" && strings.Contains(d.Message, "not dominated by a capacity check") {
			found = true
		}
	}
	if !found {
		t.Fatalf("module analysis must catch the deleted admission check, got %v", mut.Diags)
	}
	for _, d := range lint.Run(mutPkg, lint.All()) {
		if d.Rule == "qbound" {
			t.Fatalf("per-package analysis must miss the deleted admission check, got %s", d)
		}
	}
}

// mutateModflow copies the modflow tree into a temp dir, applying mutate to
// rootquiet's source, runs the module analysis over the copy, and returns
// the result plus the per-package diagnostics of the same tree.
func mutateModflow(t *testing.T, mutate func(content string) string) (*lint.ModuleResult, []lint.Diagnostic) {
	t.Helper()
	loader, err := mutLoader()
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	tmp := t.TempDir()
	for _, name := range []string{"leaf", "mid", "root", "rootquiet"} {
		sub := filepath.Join(tmp, name)
		if err := os.Mkdir(sub, 0o755); err != nil {
			t.Fatalf("mkdir %s: %v", name, err)
		}
		copyGoFiles(t, filepath.Join(modflowDir, name), sub, func(file, content string) string {
			if name == "rootquiet" {
				return mutate(content)
			}
			return content
		})
	}
	res, err := lint.AnalyzeModule(loader, modflowPkgs(tmp), lint.AllModule())
	if err != nil {
		t.Fatalf("AnalyzeModule: %v", err)
	}
	var perPkg []lint.Diagnostic
	for _, name := range []string{"leaf", "mid", "root", "rootquiet"} {
		pkg, err := loader.LoadDir(filepath.Join(tmp, name), modflowBase+name)
		if err != nil {
			t.Fatalf("reload %s: %v", name, err)
		}
		loader.RegisterSource(pkg)
		perPkg = append(perPkg, lint.Run(pkg, lint.AllModule())...)
	}
	return res, perPkg
}

// TestModuleAtomicMutation seeds the "plain read of an atomic counter"
// defect: rewriting rootquiet's atomic.LoadInt64 into a bare read is caught
// by the module-linked atomicmix (the atomic side lives in package mid) and
// missed per-package, where neither side alone shows the mix. This is
// exactly the defect class the race detector only catches on lucky
// interleavings.
func TestModuleAtomicMutation(t *testing.T) {
	res, perPkg := mutateModflow(t, func(content string) string {
		next := strings.Replace(content, "return atomic.LoadInt64(&leaf.Seen)", "return leaf.Seen", 1)
		if next == content {
			t.Fatalf("rootquiet fixture drifted: atomic read not found")
		}
		next = strings.Replace(next, "\t\"sync/atomic\"\n\n", "", 1)
		if next == content {
			t.Fatalf("rootquiet fixture drifted: sync/atomic import not found")
		}
		return next
	})
	found := false
	for _, d := range res.Diags {
		if d.Rule == "atomicmix" && strings.Contains(d.Message, "plain read of "+modflowBase+"leaf.Seen") &&
			strings.Contains(filepath.ToSlash(d.Pos.Filename), "rootquiet") {
			found = true
		}
	}
	if !found {
		t.Fatalf("module analysis must catch the seeded plain read, got %v", res.Diags)
	}
	for _, d := range perPkg {
		if d.Rule == "atomicmix" {
			t.Fatalf("per-package analysis must miss the seeded plain read, got %s", d)
		}
	}
}

// TestModuleChanMutation seeds the "double close in a shutdown path"
// defect: adding a close(ch) after mid.Stop(ch) — whose mustclose effect
// arrives through two linked summaries — is caught at module scope and
// missed per-package, where the callee defaults to effect-free.
func TestModuleChanMutation(t *testing.T) {
	res, perPkg := mutateModflow(t, func(content string) string {
		next := strings.Replace(content, "mid.Stop(ch)\n}", "mid.Stop(ch)\n\tclose(ch)\n}", 1)
		if next == content {
			t.Fatalf("rootquiet fixture drifted: mid.Stop call not found")
		}
		return next
	})
	found := false
	for _, d := range res.Diags {
		if d.Rule == "chanlife" && strings.Contains(d.Message, "close of already-closed channel ch") &&
			strings.Contains(filepath.ToSlash(d.Pos.Filename), "rootquiet") {
			found = true
		}
	}
	if !found {
		t.Fatalf("module analysis must catch the seeded double close, got %v", res.Diags)
	}
	for _, d := range perPkg {
		if d.Rule == "chanlife" {
			t.Fatalf("per-package analysis must miss the seeded double close, got %s", d)
		}
	}
}

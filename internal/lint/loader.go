package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Package is one parsed, type-checked package ready for analysis.
type Package struct {
	Path  string // import path (or synthetic path for fixtures)
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	ipaOnce sync.Once
	ipaVal  *IPA

	igOnce sync.Once
	igVal  *ignoreSet

	// deps links this package to the function summaries of its
	// already-analyzed in-module dependencies. Nil in per-package mode;
	// the module analysis (AnalyzeModule) sets it before the first
	// Pass.IPA() call so cross-package facts fold into the summaries.
	deps *ModuleIndex
}

// SetDeps attaches the module summary index consulted when building this
// package's interprocedural summaries. It must be called before the first
// analyzer asks for Pass.IPA().
func (p *Package) SetDeps(ix *ModuleIndex) { p.deps = ix }

// ipa lazily builds the package's interprocedural engine exactly once, no
// matter how many whole-program analyzers ask for it.
func (p *Package) ipa() *IPA {
	p.ipaOnce.Do(func() { p.ipaVal = buildIPA(p) })
	return p.ipaVal
}

// ignores lazily parses the package's //lint:ignore directives exactly
// once, so the analyzer run and the summary export mark usage on the same
// entries — the bookkeeping behind the driver's -unused-ignores mode.
func (p *Package) ignores() *ignoreSet {
	p.igOnce.Do(func() { p.igVal = buildIgnores(p) })
	return p.igVal
}

// Loader parses module packages from source and type-checks them against
// compiled export data, which it obtains from the go toolchain's build cache
// (`go list -export`). This keeps the framework dependency-free: analyzed
// sources get full ASTs with comments, while imports resolve through the
// compiler's own export format.
type Loader struct {
	Fset       *token.FileSet
	ModuleDir  string
	ModulePath string

	exports map[string]string // import path -> export data file
	imp     types.Importer

	// srcPkgs holds source-loaded packages registered via RegisterSource.
	// The module analysis registers each package as it is analyzed so that
	// dependents type-check against the *same* type objects (and the shared
	// FileSet), which is what lets the cross-package engine resolve callees
	// by object identity instead of re-deriving them from export data.
	srcPkgs map[string]*types.Package
}

// chainedImporter resolves imports source-first: packages already loaded
// from source in this module analysis win over compiled export data, so one
// universe of type objects spans the whole analyzed set.
type chainedImporter struct{ l *Loader }

func (c chainedImporter) Import(path string) (*types.Package, error) {
	if p, ok := c.l.srcPkgs[path]; ok {
		return p, nil
	}
	return c.l.imp.Import(path)
}

// NewLoader builds a loader rooted at the module containing dir. It runs one
// `go list -export -deps ./...` to map the module's full dependency graph to
// export data; unlisted imports (e.g. fixture-only stdlib packages) resolve
// lazily.
func NewLoader(dir string) (*Loader, error) {
	root, err := FindModuleRoot(dir)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	l := &Loader{
		Fset:       token.NewFileSet(),
		ModuleDir:  root,
		ModulePath: modPath,
		exports:    make(map[string]string),
		srcPkgs:    make(map[string]*types.Package),
	}
	if err := l.listExports("-deps", "./..."); err != nil {
		return nil, err
	}
	l.imp = importer.ForCompiler(l.Fset, "gc", l.lookup)
	return l, nil
}

// FindModuleRoot walks up from dir to the directory holding go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}

func (l *Loader) listExports(args ...string) error {
	cmd := exec.Command("go", append([]string{"list", "-export", "-e", "-f", "{{.ImportPath}}\t{{.Export}}"}, args...)...)
	cmd.Dir = l.ModuleDir
	out, err := cmd.Output()
	if err != nil {
		msg := err.Error()
		if ee, ok := err.(*exec.ExitError); ok && len(ee.Stderr) > 0 {
			msg = string(ee.Stderr)
		}
		return fmt.Errorf("lint: go list -export %s: %s", strings.Join(args, " "), msg)
	}
	for _, line := range strings.Split(string(out), "\n") {
		path, file, ok := strings.Cut(line, "\t")
		if ok && file != "" {
			l.exports[path] = file
		}
	}
	return nil
}

// lookup feeds export data to the gc importer, fetching entries the upfront
// module listing missed on demand.
func (l *Loader) lookup(path string) (io.ReadCloser, error) {
	if _, ok := l.exports[path]; !ok {
		if err := l.listExports(path); err != nil {
			return nil, err
		}
	}
	file, ok := l.exports[path]
	if !ok {
		return nil, fmt.Errorf("lint: no export data for %q", path)
	}
	return os.Open(file)
}

// LoadDir parses and type-checks the non-test .go files of one directory as
// the package importPath. Test files are excluded: the rules that distinguish
// tests do so for fixture files, and production invariants bind non-test code.
func (l *Loader) LoadDir(dir, importPath string) (*Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no non-test .go files in %s", dir)
	}
	var files []*ast.File
	for _, n := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, n), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: chainedImporter{l}}
	pkg, err := conf.Check(importPath, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-check %s: %w", importPath, err)
	}
	return &Package{Path: importPath, Dir: dir, Fset: l.Fset, Files: files, Types: pkg, Info: info}, nil
}

// RegisterSource makes a source-loaded package resolvable as an import of
// later LoadDir calls (source wins over export data). The module analysis
// registers packages in dependency order; fixture trees with synthetic
// import paths (which have no export data at all) rely on this to import
// each other.
func (l *Loader) RegisterSource(p *Package) {
	l.srcPkgs[p.Path] = p.Types
}

// ModulePackages expands `pattern` relative to the module root into the
// (dir, importPath) pairs of buildable packages. Supported patterns: "./..."
// for the whole module, "dir/..." for a subtree, and plain directory paths.
func (l *Loader) ModulePackages(pattern string) ([][2]string, error) {
	clean := func(rel string) string { return filepath.ToSlash(filepath.Clean(rel)) }
	importPathFor := func(rel string) string {
		if rel == "." {
			return l.ModulePath
		}
		return l.ModulePath + "/" + rel
	}
	if rel, ok := strings.CutSuffix(pattern, "..."); ok {
		rel = strings.TrimSuffix(rel, "/")
		if rel == "" || rel == "." {
			rel = "."
		}
		rel = clean(rel)
		var out [][2]string
		seen := make(map[string]bool)
		root := filepath.Join(l.ModuleDir, rel)
		err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() {
				n := d.Name()
				if path != root && (strings.HasPrefix(n, ".") || strings.HasPrefix(n, "_") || n == "testdata") {
					return filepath.SkipDir
				}
				return nil
			}
			if !strings.HasSuffix(d.Name(), ".go") || strings.HasSuffix(d.Name(), "_test.go") {
				return nil
			}
			dir := filepath.Dir(path)
			relDir, err := filepath.Rel(l.ModuleDir, dir)
			if err != nil {
				return err
			}
			relDir = clean(relDir)
			if !seen[dir] {
				seen[dir] = true
				out = append(out, [2]string{dir, importPathFor(relDir)})
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		return out, nil
	}
	abs := pattern
	if !filepath.IsAbs(abs) {
		abs = filepath.Join(l.ModuleDir, pattern)
	}
	rel, err := filepath.Rel(l.ModuleDir, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return nil, fmt.Errorf("lint: package %q is outside module %s", pattern, l.ModuleDir)
	}
	return [][2]string{{abs, importPathFor(clean(rel))}}, nil
}

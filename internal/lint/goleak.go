package lint

import "strconv"

// Goleak reports `go` statements that spawn a goroutine able to block
// forever on a channel operation (or a lost sync.WaitGroup/Cond wake-up)
// with no cancellation or close path — the bug class behind darnetd's
// original leaked signal goroutine. The decision uses the interprocedural
// summaries: a spawned function blocks forever when it (or any function it
// synchronously calls) contains a bare send, a receive without a comma-ok,
// a single-case select, select{}, or a sync Wait, and no escape shape
// (multi-case select, default case, comma-ok receive, range-over-channel)
// guards that site.
//
// Blocking network reads are deliberately out of scope: they are unblocked
// by closing the connection, which the conn-tracker shutdown pattern
// already enforces.
var Goleak = &Analyzer{
	Name: "goleak",
	Doc:  "a spawned goroutine must not be able to block forever without a cancellation or close path",
	Run:  runGoleak,
}

func runGoleak(pass *Pass) {
	ipa := pass.IPA()
	for _, n := range ipa.Graph.Nodes {
		for _, gs := range n.GoSites {
			for _, t := range gs.Targets {
				s := t.Summary()
				if !s.BlocksForever {
					continue
				}
				loc := pass.Fset.Position(s.ForeverPos)
				site := pass.formatShortPos(loc.Filename, loc.Line)
				switch {
				case t.Fn != nil && s.ForeverVia != "":
					pass.Reportf(gs.Pos, "goroutine %s can block forever: %s at %s (reached via %s) has no cancellation or close path", t.Name, s.ForeverWhat, site, s.ForeverVia)
				case t.Fn != nil:
					pass.Reportf(gs.Pos, "goroutine %s can block forever: %s at %s has no cancellation or close path", t.Name, s.ForeverWhat, site)
				case s.ForeverVia != "":
					pass.Reportf(gs.Pos, "spawned goroutine can block forever: %s at %s (reached via %s) has no cancellation or close path", s.ForeverWhat, site, s.ForeverVia)
				default:
					pass.Reportf(gs.Pos, "spawned goroutine can block forever: %s at %s has no cancellation or close path", s.ForeverWhat, site)
				}
				break // one finding per go statement
			}
			reportExternalSpawns(pass, gs)
		}
	}
}

// reportExternalSpawns covers `go otherpkg.F(...)` spawns whose target lives
// in another module package: the callee's serialized summary says whether it
// can block forever, and its location strings travel in the message.
func reportExternalSpawns(pass *Pass, gs GoSite) {
	if len(gs.Targets) > 0 {
		return // local resolution already decided this site
	}
	for _, fs := range gs.External {
		if !fs.BlocksForever {
			continue
		}
		pass.Reportf(gs.Pos, "goroutine %s can block forever: %s at %s has no cancellation or close path", shortFuncKey(fs.Key), fs.ForeverWhat, fs.ForeverLoc)
		break
	}
}

// formatShortPos renders file:line with the file trimmed to its base name,
// keeping messages stable across checkouts.
func (p *Pass) formatShortPos(filename string, line int) string {
	return shortPath(filename) + ":" + strconv.Itoa(line)
}

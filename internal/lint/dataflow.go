package lint

import (
	"go/types"
)

// This file defines the abstract shape domain for the shapeflow analysis
// (shapeflow.go): symbolic tensor dimensions, shapes of known rank, and the
// per-function environment the forward dataflow threads through statements.
//
// A dimension is known (a concrete value), symbolic (provably equal to an
// integer parameter of the enclosing function, or to one dimension of a
// tensor parameter), or unknown. Two symbolic dims compare equal only when
// they name the same origin, which lets checks prove consistency without
// concrete values: MatMul(x, w) passes when x's inner dim and w's leading
// dim trace to the same parameter dimension, whatever its runtime value.
// Every join moves toward unknown — the analysis reports only facts that
// hold on every path it models, and stays silent otherwise.

// dimKind discriminates abstract dimensions.
type dimKind int

const (
	dimTop   dimKind = iota // unknown
	dimConst                // concrete value
	dimSym                  // provably equal to a symbolic origin
)

// symKind discriminates symbolic dimension origins.
type symKind int

const (
	symIntParam  symKind = iota // the value of the Arg-th parameter (an int)
	symTensorDim                // dimension Dim of the Arg-th parameter (a tensor)
)

// symID names one symbolic origin within the enclosing function.
type symID struct {
	kind symKind
	arg  int // flat parameter index
	dim  int // dimension index, for symTensorDim
}

// adim is one abstract dimension.
type adim struct {
	kind dimKind
	val  int64 // dimConst
	sym  symID // dimSym
}

func topDim() adim          { return adim{kind: dimTop} }
func constDim(v int64) adim { return adim{kind: dimConst, val: v} }
func symDim(s symID) adim   { return adim{kind: dimSym, sym: s} }

// eq reports provable equality: the same constant or the same symbolic
// origin. Two unknowns are never provably equal.
func (a adim) eq(b adim) bool {
	if a.kind != b.kind {
		return false
	}
	switch a.kind {
	case dimConst:
		return a.val == b.val
	case dimSym:
		return a.sym == b.sym
	}
	return false
}

// joinDim keeps what both paths agree on.
func joinDim(a, b adim) adim {
	if a.eq(b) {
		return a
	}
	return topDim()
}

// ashape is an abstract tensor shape: a dimension list when the rank is
// known, or wholly unknown.
type ashape struct {
	known bool
	dims  []adim
}

func unknownShape() ashape          { return ashape{} }
func knownShape(dims []adim) ashape { return ashape{known: true, dims: dims} }

// constDims extracts the concrete dims when every one is known.
func (s ashape) constDims() ([]int64, bool) {
	if !s.known {
		return nil, false
	}
	out := make([]int64, len(s.dims))
	for i, d := range s.dims {
		if d.kind != dimConst {
			return nil, false
		}
		out[i] = d.val
	}
	return out, true
}

// joinShape keeps the dimension facts shared by both shapes; differing ranks
// join to unknown.
func joinShape(a, b ashape) ashape {
	if !a.known || !b.known || len(a.dims) != len(b.dims) {
		return unknownShape()
	}
	dims := make([]adim, len(a.dims))
	for i := range dims {
		dims[i] = joinDim(a.dims[i], b.dims[i])
	}
	return knownShape(dims)
}

// shapeEnv is the dataflow state at one program point: abstract values of
// integer variables and abstract shapes of tensor variables. A variable
// absent from its map is unknown.
type shapeEnv struct {
	ints   map[*types.Var]adim
	shapes map[*types.Var]ashape
}

func newShapeEnv() *shapeEnv {
	return &shapeEnv{ints: make(map[*types.Var]adim), shapes: make(map[*types.Var]ashape)}
}

func (e *shapeEnv) clone() *shapeEnv {
	c := newShapeEnv()
	for k, v := range e.ints {
		c.ints[k] = v
	}
	for k, v := range e.shapes {
		c.shapes[k] = v
	}
	return c
}

// joinInto narrows e to the facts it shares with o — the merge point after a
// branch, where a variable keeps its value only if both paths agree.
func (e *shapeEnv) joinInto(o *shapeEnv) {
	for k, v := range e.ints {
		ov, ok := o.ints[k]
		if !ok {
			delete(e.ints, k)
			continue
		}
		if j := joinDim(v, ov); j.kind == dimTop {
			delete(e.ints, k)
		} else {
			e.ints[k] = j
		}
	}
	for k, v := range e.shapes {
		ov, ok := o.shapes[k]
		if !ok {
			delete(e.shapes, k)
			continue
		}
		if j := joinShape(v, ov); !j.known {
			delete(e.shapes, k)
		} else {
			e.shapes[k] = j
		}
	}
}

package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// Shapecheck verifies statically-known shape invariants at calls into the
// numerics constructors:
//
//   - tensor.FromSlice / tensor.MustFromSlice with a literal data slice and
//     constant dims: the dim product must equal the literal length. At run
//     time this mismatch is an error/panic on a path that may only trigger
//     once a specific inference branch is hit — the linter fails it at
//     review time instead.
//   - tensor.New / tensor.Full / tensor.Randn / tensor.Uniform /
//     FromSlice / MustFromSlice: constant dims must be non-negative.
//   - nn.NewBatchNorm with constant width and groups: width must divide
//     evenly into groups, the constructor's panic condition.
var Shapecheck = &Analyzer{
	Name: "shapecheck",
	Doc:  "literal dims passed to tensor/nn constructors must be consistent with literal data",
	Run:  runShapecheck,
}

// dimArgStart maps tensor constructors to the argument index where the
// variadic shape begins.
var dimArgStart = map[string]int{
	"New":           0,
	"FromSlice":     1,
	"MustFromSlice": 1,
	"Full":          1,
	"Randn":         2,
	"Uniform":       3,
}

func runShapecheck(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			switch {
			case strings.HasSuffix(fn.Pkg().Path(), "internal/tensor"):
				if name := fn.Name(); name == "Reshape" || name == "MustReshape" {
					checkReshape(pass, call, name)
				} else {
					checkTensorCtor(pass, call, name)
				}
			case strings.HasSuffix(fn.Pkg().Path(), "internal/nn") && fn.Name() == "NewBatchNorm":
				checkBatchNorm(pass, call)
			}
			return true
		})
	}
}

func checkTensorCtor(pass *Pass, call *ast.CallExpr, name string) {
	start, ok := dimArgStart[name]
	if !ok || call.Ellipsis.IsValid() || len(call.Args) < start {
		return
	}
	dims := call.Args[start:]
	product := 1
	allConst := len(dims) > 0
	for _, d := range dims {
		v, known := constIntValue(pass.TypesInfo, d)
		if !known {
			allConst = false
			continue
		}
		if v < 0 {
			pass.Reportf(d.Pos(), "tensor.%s dimension %d is negative (constructor panics)", name, v)
			return
		}
		product *= int(v)
	}
	if name != "FromSlice" && name != "MustFromSlice" || !allConst {
		return
	}
	length, ok := literalLen(call.Args[0])
	if !ok {
		return
	}
	if product != length {
		pass.Reportf(call.Pos(), "tensor.%s: dims multiply to %d but the data literal has %d elements", name, product, length)
	}
}

// checkReshape validates literal Reshape/MustReshape dims: negative
// constants always fail, and when the receiver is itself a constructor call
// with constant dims the element count is known, so a constant product
// mismatch is a guaranteed runtime failure. Receivers whose shape needs
// dataflow to determine are shapeflow's job.
func checkReshape(pass *Pass, call *ast.CallExpr, name string) {
	if call.Ellipsis.IsValid() || len(call.Args) == 0 {
		return
	}
	product := int64(1)
	allConst := true
	for _, d := range call.Args {
		v, known := constIntValue(pass.TypesInfo, d)
		if !known {
			allConst = false
			continue
		}
		if v < 0 {
			pass.Reportf(d.Pos(), "tensor.%s dimension %d is negative (always fails)", name, v)
			return
		}
		product *= v
	}
	if !allConst {
		return
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	size, ok := syntacticCtorSize(pass.TypesInfo, sel.X)
	if !ok {
		return
	}
	if product != size {
		pass.Reportf(call.Pos(), "tensor.%s: new dims multiply to %d but the tensor has %d elements", name, product, size)
	}
}

func checkBatchNorm(pass *Pass, call *ast.CallExpr) {
	if len(call.Args) != 3 {
		return
	}
	width, okW := constIntValue(pass.TypesInfo, call.Args[1])
	groups, okG := constIntValue(pass.TypesInfo, call.Args[2])
	if !okW || !okG {
		return
	}
	if width <= 0 || groups <= 0 || width%groups != 0 {
		pass.Reportf(call.Pos(), "nn.NewBatchNorm: width %d is not divisible into %d groups (constructor panics)", width, groups)
	}
}

func constIntValue(info *types.Info, e ast.Expr) (int64, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return 0, false
	}
	return constant.Int64Val(tv.Value)
}

// literalLen counts the elements of a plain (unkeyed) composite literal.
func literalLen(e ast.Expr) (int, bool) {
	lit, ok := ast.Unparen(e).(*ast.CompositeLit)
	if !ok {
		return 0, false
	}
	for _, el := range lit.Elts {
		if _, keyed := el.(*ast.KeyValueExpr); keyed {
			return 0, false
		}
	}
	return len(lit.Elts), true
}

package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Atomicmix reports a struct field or package-level variable reached by
// both sync/atomic operations and plain reads/writes anywhere in the
// module. Mixing the two is a data race the runtime race detector only
// catches on interleavings the test suite happens to execute; statically
// the mix is visible in every build. The atomic.Int64-style wrapper types
// are inert here — the type system already forbids plain access to them.
//
// Identities are position-independent (`pkgpath.Type.field`, `pkgpath.var`)
// and travel through the module summary channel, so a package that plainly
// reads a counter another package manages with atomic.AddInt64 is a finding
// even though neither package alone shows the mix. Suppress a deliberate
// mix (e.g. a read under a lock that orders it) with
// `//lint:ignore atomicmix <reason>`.
var Atomicmix = &Analyzer{
	Name: "atomicmix",
	Doc:  "fields and package vars must not mix sync/atomic access with plain reads/writes anywhere in the module",
	Run:  runAtomicmix,
}

// accessKind distinguishes the two sides of the mix.
type accessKind int8

const (
	accessAtomic accessKind = iota
	accessPlain
)

// atomicAccess is one recorded access to a trackable identity.
type atomicAccess struct {
	id       string
	pos      token.Pos
	kind     accessKind
	write    bool
	exported bool // identity reachable from other packages
	node     *FuncNode
}

// atomicCensus is the package-wide access census, built once per IPA and
// shared by the analyzer and ExportSummaries.
type atomicCensus struct {
	accesses []atomicAccess
}

func (ipa *IPA) atomicCensus() *atomicCensus {
	if ipa.atoms == nil {
		ipa.atoms = buildAtomicCensus(ipa)
	}
	return ipa.atoms
}

func buildAtomicCensus(ipa *IPA) *atomicCensus {
	c := &atomicCensus{}
	for _, n := range ipa.Graph.Nodes {
		if n.Body == nil {
			continue
		}
		w := &censusWalker{info: ipa.Pkg.Info, node: n, out: c}
		w.collectWrites(n.Body)
		w.walk(n.Body, false)
	}
	sort.Slice(c.accesses, func(i, j int) bool { return c.accesses[i].pos < c.accesses[j].pos })
	return c
}

type censusWalker struct {
	info   *types.Info
	node   *FuncNode
	out    *atomicCensus
	writes map[ast.Expr]bool // exprs in write position (assign LHS, ++/--)
	exempt map[ast.Expr]bool // &-targets of sync/atomic calls
}

func (w *censusWalker) collectWrites(body ast.Node) {
	w.writes = make(map[ast.Expr]bool)
	w.exempt = make(map[ast.Expr]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				w.writes[ast.Unparen(lhs)] = true
			}
		case *ast.IncDecStmt:
			w.writes[ast.Unparen(x.X)] = true
		case *ast.CallExpr:
			if fn := calleeFunc(w.info, x); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic" && len(x.Args) > 0 {
				if u, ok := ast.Unparen(x.Args[0]).(*ast.UnaryExpr); ok && u.Op == token.AND {
					target := ast.Unparen(u.X)
					w.exempt[target] = true
					if id, exported := w.identityOf(target); id != "" {
						w.out.accesses = append(w.out.accesses, atomicAccess{
							id:       id,
							pos:      target.Pos(),
							kind:     accessAtomic,
							write:    atomicFuncWrites(fn.Name()),
							exported: exported,
							node:     w.node,
						})
					}
				}
			}
		}
		return true
	})
}

func atomicFuncWrites(name string) bool {
	for _, p := range []string{"Store", "Add", "Swap", "CompareAndSwap", "And", "Or"} {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}

// walk records plain accesses. Composite-literal bodies are skipped: the
// `T{n: 0}` construction idiom precedes any sharing, and flagging it would
// make every constructor a finding.
func (w *censusWalker) walk(n ast.Node, inComposite bool) {
	if n == nil {
		return
	}
	switch x := n.(type) {
	case *ast.CompositeLit:
		inComposite = true
	case *ast.SelectorExpr, *ast.Ident:
		e := x.(ast.Expr)
		if !inComposite && !w.exempt[e] {
			if id, exported := w.identityOf(e); id != "" {
				w.out.accesses = append(w.out.accesses, atomicAccess{
					id:       id,
					pos:      e.Pos(),
					kind:     accessPlain,
					write:    w.writes[e],
					exported: exported,
					node:     w.node,
				})
			}
		}
		if sel, ok := e.(*ast.SelectorExpr); ok {
			w.walk(sel.X, inComposite)
			return
		}
		return
	}
	comp := inComposite
	ast.Inspect(n, func(sub ast.Node) bool {
		if sub == n {
			return true
		}
		w.walk(sub, comp)
		return false
	})
}

// identityOf maps an expression to a trackable identity: a named struct
// field or package-level variable whose type sync/atomic can operate on
// (sized integers, uintptr, unsafe.Pointer). Everything else — locals,
// wrapper-typed fields, plain ints — returns "".
func (w *censusWalker) identityOf(e ast.Expr) (string, bool) {
	switch x := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		sel, ok := w.info.Selections[x]
		if ok && sel.Kind() == types.FieldVal {
			field, _ := sel.Obj().(*types.Var)
			if field == nil || !atomicCapable(field.Type()) {
				return "", false
			}
			named := namedOf(sel.Recv())
			if named == nil || named.Obj().Pkg() == nil {
				return "", false
			}
			id := named.Obj().Pkg().Path() + "." + named.Obj().Name() + "." + field.Name()
			return id, named.Obj().Exported() && field.Exported()
		}
		// Package-qualified var: pkg.V.
		if v, ok := w.info.Uses[x.Sel].(*types.Var); ok {
			return packageVarIdentity(v)
		}
	case *ast.Ident:
		if v, ok := w.info.Uses[x].(*types.Var); ok {
			return packageVarIdentity(v)
		}
	}
	return "", false
}

func packageVarIdentity(v *types.Var) (string, bool) {
	if v.IsField() || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() || !atomicCapable(v.Type()) {
		return "", false
	}
	return v.Pkg().Path() + "." + v.Name(), v.Exported()
}

func namedOf(t types.Type) *types.Named {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

// atomicCapable reports whether sync/atomic has operations for the type:
// the sized integers, uintptr, and unsafe.Pointer. `int`, bools, and the
// atomic wrapper types are excluded — the former have no atomic ops, the
// latter cannot be accessed plainly at all.
func atomicCapable(t types.Type) bool {
	switch b, ok := t.Underlying().(*types.Basic); {
	case ok:
		switch b.Kind() {
		case types.Int32, types.Int64, types.Uint32, types.Uint64, types.Uintptr, types.UnsafePointer:
			return true
		}
	}
	return false
}

func runAtomicmix(pass *Pass) {
	ipa := pass.IPA()
	census := ipa.atomicCensus()

	// Module-wide view of each identity's two sides: local accesses plus
	// the linked summaries' exported refs.
	atomicAt := map[string]string{} // identity -> first atomic-access loc
	plainAt := map[string]string{}  // identity -> first remote plain-access loc
	for _, a := range census.accesses {
		if a.kind == accessAtomic {
			if _, ok := atomicAt[a.id]; !ok {
				atomicAt[a.id] = shortLoc(ipa.Pkg.Fset, a.pos)
			}
		}
	}
	for _, fs := range ipa.Pkg.deps.All() {
		for _, ref := range fs.AtomicRefs {
			if _, ok := atomicAt[ref.ID]; !ok {
				atomicAt[ref.ID] = ref.Loc
			}
		}
		for _, ref := range fs.PlainRefs {
			if _, ok := plainAt[ref.ID]; !ok {
				plainAt[ref.ID] = ref.Loc
			}
		}
	}

	seen := map[token.Pos]bool{}
	for _, a := range census.accesses {
		if seen[a.pos] {
			continue
		}
		switch a.kind {
		case accessPlain:
			if loc, ok := atomicAt[a.id]; ok {
				seen[a.pos] = true
				pass.Reportf(a.pos, "plain %s of %s, which is accessed with sync/atomic at %s: mixing atomic and plain access is a data race", rw(a.write), a.id, loc)
			}
		case accessAtomic:
			// The local-plain case is reported at the plain site above;
			// this arm only fires when the plain side lives in another
			// package.
			if loc, ok := plainAt[a.id]; ok {
				seen[a.pos] = true
				pass.Reportf(a.pos, "atomic %s of %s, which is read/written plainly at %s: mixing atomic and plain access is a data race", rw(a.write), a.id, loc)
			}
		}
	}
}

func rw(write bool) string {
	if write {
		return "write"
	}
	return "read"
}

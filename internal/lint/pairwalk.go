package lint

import (
	"go/ast"
	"go/token"
)

// This file derives lock-acquisition-order pairs per function: "lock A was
// held while lock B was acquired", where B may be acquired directly or
// anywhere inside a callee (using the callee's fixpoint Acquires set). The
// lockorder analyzer folds every function's pairs into one graph and
// reports cycles.
//
// The walk mirrors locksafe's conservative shape: statements are processed
// in source order, branch bodies see a copy of the held set so branch-local
// acquisitions do not leak out, and function literals are their own nodes
// (an immediately invoked literal still contributes through its call edge).
// `go` statements are skipped entirely: the spawned goroutine's
// acquisitions are not ordered against the spawner's held locks.

// computePairs fills n.summary.Pairs. Must run after propagate, so callee
// Acquires sets are final.
func computePairs(pkg *Package, g *CallGraph, n *FuncNode) {
	w := &pairWalker{pkg: pkg, g: g, s: n.summary}
	w.stmts(n.Body.List, make(map[string]token.Pos))
}

type pairWalker struct {
	pkg *Package
	g   *CallGraph
	s   *Summary
}

func (w *pairWalker) pair(held map[string]token.Pos, acquired string, pos token.Pos) {
	for h := range held {
		key := [2]string{h, acquired}
		if _, ok := w.s.Pairs[key]; !ok {
			w.s.Pairs[key] = pos
		}
	}
}

// scan processes every call expression in one expression/statement fragment
// in source order, updating held and recording pairs. Function literals and
// go statements are not descended into.
func (w *pairWalker) scan(node ast.Node, held map[string]token.Pos) {
	if node == nil {
		return
	}
	ast.Inspect(node, func(x ast.Node) bool {
		switch c := x.(type) {
		case *ast.FuncLit:
			return false
		case *ast.GoStmt:
			return false
		case *ast.CallExpr:
			w.call(c, held)
		}
		return true
	})
}

// call handles one call expression: a mutex operation updates the held set,
// anything resolving to local functions imports their acquire sets as pairs
// against the locks currently held.
func (w *pairWalker) call(call *ast.CallExpr, held map[string]token.Pos) {
	if id, kind, ok := mutexOp(w.pkg.Info, call); ok {
		switch kind {
		case mutexAcquire:
			w.pair(held, id, call.Pos())
			held[id] = call.Pos()
		case mutexRelease:
			delete(held, id)
		}
		return
	}
	var targets []*FuncNode
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		if n := w.g.byLit[lit]; n != nil {
			targets = []*FuncNode{n}
		}
	} else {
		targets, _ = w.g.resolve(call)
		if len(targets) == 0 && w.pkg.deps != nil {
			// Cross-package callee: its transitive acquires come from the
			// module index, ordered against the locally held locks.
			if fs := w.pkg.deps.Lookup(calleeFunc(w.pkg.Info, call)); fs != nil {
				for _, a := range fs.Acquires {
					w.pair(held, a.ID, call.Pos())
				}
			}
		}
	}
	for _, t := range targets {
		for id := range t.summary.Acquires {
			w.pair(held, id, call.Pos())
		}
	}
}

// stmts walks a statement list, threading the held set along the
// fall-through path and copying it into branches.
func (w *pairWalker) stmts(list []ast.Stmt, held map[string]token.Pos) map[string]token.Pos {
	for _, s := range list {
		held = w.stmt(s, held)
	}
	return held
}

func (w *pairWalker) stmt(s ast.Stmt, held map[string]token.Pos) map[string]token.Pos {
	branch := func(body *ast.BlockStmt) {
		if body != nil {
			w.stmts(body.List, copyHeld(held))
		}
	}
	switch s := s.(type) {
	case *ast.IfStmt:
		w.scan(s.Init, held)
		w.scan(s.Cond, held)
		branch(s.Body)
		switch e := s.Else.(type) {
		case *ast.BlockStmt:
			w.stmts(e.List, copyHeld(held))
		case *ast.IfStmt:
			w.stmt(e, copyHeld(held))
		}
	case *ast.ForStmt:
		w.scan(s.Init, held)
		w.scan(s.Cond, held)
		w.scan(s.Post, held)
		branch(s.Body)
	case *ast.RangeStmt:
		w.scan(s.X, held)
		branch(s.Body)
	case *ast.SwitchStmt:
		w.scan(s.Init, held)
		w.scan(s.Tag, held)
		branch(s.Body)
	case *ast.TypeSwitchStmt:
		w.scan(s.Init, held)
		w.scan(s.Assign, held)
		branch(s.Body)
	case *ast.SelectStmt:
		branch(s.Body)
	case *ast.CaseClause:
		for _, e := range s.List {
			w.scan(e, held)
		}
		w.stmts(s.Body, copyHeld(held))
	case *ast.CommClause:
		w.scan(s.Comm, held)
		w.stmts(s.Body, copyHeld(held))
	case *ast.BlockStmt:
		held = w.stmts(s.List, held)
	case *ast.LabeledStmt:
		held = w.stmt(s.Stmt, held)
	case *ast.DeferStmt:
		// A deferred unlock releases at return; the lock stays held for
		// the rest of the body, so only deferred *acquisitions* are
		// scanned (against the current held set, an approximation of the
		// set at return).
		if _, kind, ok := mutexOp(w.pkg.Info, s.Call); ok && kind == mutexRelease {
			return held
		}
		w.scan(s.Call, held)
	case *ast.GoStmt:
		// Spawner's held locks do not order the goroutine's acquisitions.
	default:
		w.scan(s, held)
	}
	return held
}

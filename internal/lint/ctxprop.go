package lint

import (
	"go/ast"
)

// Ctxprop enforces context propagation through the blocking layers of the
// pipeline: a function that takes a context.Context and transitively
// reaches a blocking operation (channel op, select, lock acquisition,
// time.Sleep, sync Wait — per the interprocedural summaries) must actually
// use that context — pass it down, select on Done, check Err — not drop it
// on the floor. It also reports a function that has a context in hand yet
// manufactures context.Background()/TODO() for a callee, severing
// cancellation exactly where it matters (the dropped-context shape around
// Engine.ClassifyCtx call sites).
//
// A non-blocking function with an unused context parameter (an interface
// implementation, a future-proofed signature) is deliberately not a
// finding.
var Ctxprop = &Analyzer{
	Name: "ctxprop",
	Doc:  "a context-taking function that reaches blocking calls must thread its context onward",
	Run:  runCtxprop,
}

func runCtxprop(pass *Pass) {
	ipa := pass.IPA()
	for _, n := range ipa.Graph.Nodes {
		if n.Decl == nil {
			continue // literals capture their encloser's context
		}
		s := n.Summary()
		if len(s.CtxParams) == 0 {
			continue
		}
		if s.Blocks && !s.UsesCtx {
			pass.Reportf(s.CtxParams[0].Pos(), "%s drops its context parameter %s but reaches blocking operations; thread the context down or select on its Done channel", n.Name, s.CtxParams[0].Name())
		}
		reportManufacturedContexts(pass, n)
	}
}

// reportManufacturedContexts flags context.Background()/context.TODO()
// arguments inside a function that already has a context parameter.
func reportManufacturedContexts(pass *Pass, n *FuncNode) {
	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		call, ok := node.(*ast.CallExpr)
		if !ok {
			return true
		}
		for _, arg := range call.Args {
			inner, ok := ast.Unparen(arg).(*ast.CallExpr)
			if !ok {
				continue
			}
			fn := calleeFunc(pass.TypesInfo, inner)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
				continue
			}
			if fn.Name() != "Background" && fn.Name() != "TODO" {
				continue
			}
			callee := "a callee"
			if cf := calleeFunc(pass.TypesInfo, call); cf != nil {
				callee = cf.Name()
			}
			pass.Reportf(arg.Pos(), "%s has a context parameter but passes context.%s to %s, severing cancellation", n.Name, fn.Name(), callee)
		}
		return true
	})
}

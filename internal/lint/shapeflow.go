package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Shapeflow propagates abstract tensor shapes forward through function
// bodies (domain in dataflow.go) and checks operator contracts wherever
// enough is known statically: MatMul inner dimensions, Reshape element
// counts, elementwise-op shape agreement, AddRowVector widths. Where
// shapecheck inspects single call expressions with literal arguments,
// shapeflow follows values — through assignments, constructor results,
// Reshape/Transpose/Clone chains, and calls to other functions whose
// shape-transfer summaries (ShapeTransfer) are derivable locally or arrive
// from already-analyzed packages through the module index.
//
// The analyzer is registered at module scope only (registry AllModule):
// its cross-function reasoning depends on transfer summaries, and those
// flow between packages only when the driver links the module.
var Shapeflow = &Analyzer{
	Name: "shapeflow",
	Doc:  "tensor shapes derived by dataflow must satisfy operator contracts",
	Run:  runShapeflow,
}

func runShapeflow(pass *Pass) {
	eng := pass.IPA().shapeEngine()
	for _, n := range eng.ipa.Graph.Nodes {
		if n.Fn != nil {
			eng.analyze(n)
		}
	}
	for _, f := range eng.findings {
		pass.Reportf(f.pos, "%s", f.msg)
	}
}

// ShapeTransfer is a function's serializable shape-transfer summary: how the
// dimensions of its (first) tensor result derive from its arguments. It is
// exported with the function's FuncSummary, so callers in other packages
// instantiate it against their own abstract arguments.
type ShapeTransfer struct {
	Dims []DimRef `json:"dims"`
}

// DimRef describes one output dimension.
type DimRef struct {
	// Kind is "const" (Value), "arg" (the value of the Arg-th parameter),
	// "argdim" (dimension Dim of the Arg-th parameter), or "unknown".
	Kind  string `json:"kind"`
	Value int64  `json:"value,omitempty"`
	Arg   int    `json:"arg,omitempty"`
	Dim   int    `json:"dim,omitempty"`
}

// shapeFinding is one buffered diagnostic; the engine dedups by value so a
// site checked along several evaluation paths reports once.
type shapeFinding struct {
	pos token.Pos
	msg string
}

// shapeEngine owns the per-package shapeflow state: memoized transfer
// summaries per function node and the deduplicated findings buffer. It is
// built lazily on the IPA so ExportSummaries can derive transfers even when
// the Shapeflow analyzer itself is not in the running set.
type shapeEngine struct {
	ipa       *IPA
	transfers map[*FuncNode]*ShapeTransfer
	state     map[*FuncNode]int // 0 unvisited, 1 in progress, 2 done
	findings  []shapeFinding
	seen      map[shapeFinding]bool
}

func (ipa *IPA) shapeEngine() *shapeEngine {
	if ipa.shape == nil {
		ipa.shape = &shapeEngine{
			ipa:       ipa,
			transfers: make(map[*FuncNode]*ShapeTransfer),
			state:     make(map[*FuncNode]int),
			seen:      make(map[shapeFinding]bool),
		}
	}
	return ipa.shape
}

// analyze runs the dataflow over one declared function exactly once,
// buffering findings and recording its transfer summary.
func (e *shapeEngine) analyze(n *FuncNode) {
	if n == nil || n.Fn == nil || e.state[n] != 0 {
		return
	}
	e.state[n] = 1
	w := newShapeWalker(e, n)
	env := w.paramEnv()
	w.walkStmts(n.Body.List, env)
	e.transfers[n] = w.summarize()
	e.state[n] = 2
}

// transferFor returns a declared function's shape-transfer summary (nil when
// none is derivable), analyzing on first use. Recursive cycles get nil.
func (e *shapeEngine) transferFor(n *FuncNode) *ShapeTransfer {
	if n == nil || n.Fn == nil || e.state[n] == 1 {
		return nil
	}
	e.analyze(n)
	return e.transfers[n]
}

func (e *shapeEngine) reportf(pos token.Pos, format string, args ...any) {
	f := shapeFinding{pos: pos, msg: fmt.Sprintf(format, args...)}
	if e.seen[f] {
		return
	}
	e.seen[f] = true
	e.findings = append(e.findings, f)
}

// shapeWalker runs the forward dataflow over one function body.
type shapeWalker struct {
	eng *shapeEngine
	pkg *Package
	n   *FuncNode

	tensorParams map[*types.Var]int // tensor-typed parameters -> flat index
	retIdx       int                // result index being summarized, -1 when none
	rets         []ashape           // abstract shape at each return site
	naked        bool               // a return the walker could not attribute
}

func newShapeWalker(e *shapeEngine, n *FuncNode) *shapeWalker {
	return &shapeWalker{eng: e, pkg: e.ipa.Pkg, n: n, tensorParams: make(map[*types.Var]int), retIdx: -1}
}

// paramEnv seeds the entry state: integer parameters become their own
// symbols, tensor parameters are remembered so Dim() calls on them resolve
// symbolically, and the first tensor result is marked for summarization.
func (w *shapeWalker) paramEnv() *shapeEnv {
	env := newShapeEnv()
	sig := w.n.Fn.Type().(*types.Signature)
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		p := params.At(i)
		switch {
		case isIntKind(p.Type()):
			env.ints[p] = symDim(symID{kind: symIntParam, arg: i})
		case isTensorPtr(p.Type()):
			w.tensorParams[p] = i
		}
	}
	results := sig.Results()
	for i := 0; i < results.Len(); i++ {
		if isTensorPtr(results.At(i).Type()) {
			w.retIdx = i
			break
		}
	}
	return env
}

// --- statement walk ---------------------------------------------------------

func (w *shapeWalker) walkStmts(list []ast.Stmt, env *shapeEnv) *shapeEnv {
	for _, s := range list {
		env = w.walkStmt(s, env)
	}
	return env
}

func (w *shapeWalker) walkStmt(s ast.Stmt, env *shapeEnv) *shapeEnv {
	switch s := s.(type) {
	case *ast.AssignStmt:
		w.assign(s, env)
	case *ast.DeclStmt:
		w.decl(s, env)
	case *ast.ExprStmt:
		w.evalExpr(s.X, env)
	case *ast.ReturnStmt:
		w.ret(s, env)
	case *ast.IncDecStmt:
		w.invalidateExpr(s.X, env)
	case *ast.IfStmt:
		if s.Init != nil {
			env = w.walkStmt(s.Init, env)
		}
		w.evalExpr(s.Cond, env)
		thenEnv := w.walkStmts(s.Body.List, env.clone())
		elseEnv := env.clone()
		switch e := s.Else.(type) {
		case *ast.BlockStmt:
			elseEnv = w.walkStmts(e.List, elseEnv)
		case *ast.IfStmt:
			elseEnv = w.walkStmt(e, elseEnv)
		}
		thenEnv.joinInto(elseEnv)
		return thenEnv
	case *ast.BlockStmt:
		env = w.walkStmts(s.List, env)
	case *ast.ForStmt, *ast.RangeStmt:
		w.loop(s, env)
	case *ast.SwitchStmt:
		if s.Init != nil {
			env = w.walkStmt(s.Init, env)
		}
		w.evalExpr(s.Tag, env)
		w.caseBodies(s.Body, env)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			env = w.walkStmt(s.Init, env)
		}
		w.caseBodies(s.Body, env)
	case *ast.SelectStmt:
		w.caseBodies(s.Body, env)
	case *ast.DeferStmt:
		w.evalExpr(s.Call, env)
	case *ast.GoStmt:
		w.evalExpr(s.Call, env)
	case *ast.SendStmt:
		w.evalExpr(s.Chan, env)
		w.evalExpr(s.Value, env)
	case *ast.LabeledStmt:
		env = w.walkStmt(s.Stmt, env)
	}
	return env
}

// loop models a loop as one abstract iteration with every loop-written
// variable widened to unknown first: the bounded fixpoint. Facts that
// survive the widening hold on all iterations, so checks inside the body
// fire only on iteration-invariant evidence.
func (w *shapeWalker) loop(s ast.Stmt, env *shapeEnv) {
	w.invalidateAssigned(s, env)
	inner := env.clone()
	switch s := s.(type) {
	case *ast.ForStmt:
		if s.Init != nil {
			inner = w.walkStmt(s.Init, inner)
		}
		// Init bindings the body or post rewrites are not invariant.
		w.invalidateAssigned(s.Body, inner)
		if s.Post != nil {
			w.invalidateAssigned(s.Post, inner)
		}
		w.evalExpr(s.Cond, inner)
		w.walkStmts(s.Body.List, inner)
		if s.Post != nil {
			w.walkStmt(s.Post, inner)
		}
	case *ast.RangeStmt:
		w.evalExpr(s.X, inner)
		w.invalidateExpr(s.Key, inner)
		w.invalidateExpr(s.Value, inner)
		w.invalidateAssigned(s.Body, inner)
		w.walkStmts(s.Body.List, inner)
	}
}

// caseBodies walks each clause against a copy of the pre-switch state, then
// widens anything any clause wrote.
func (w *shapeWalker) caseBodies(body *ast.BlockStmt, env *shapeEnv) {
	for _, c := range body.List {
		switch c := c.(type) {
		case *ast.CaseClause:
			for _, e := range c.List {
				w.evalExpr(e, env)
			}
			w.walkStmts(c.Body, env.clone())
		case *ast.CommClause:
			inner := env.clone()
			if c.Comm != nil {
				inner = w.walkStmt(c.Comm, inner)
			}
			w.walkStmts(c.Body, inner)
		}
	}
	w.invalidateAssigned(body, env)
}

func (w *shapeWalker) ret(s *ast.ReturnStmt, env *shapeEnv) {
	for _, r := range s.Results {
		w.evalExpr(r, env)
	}
	if w.retIdx < 0 {
		return
	}
	if len(s.Results) == 0 || len(s.Results) <= w.retIdx && w.retIdx > 0 {
		w.naked = true
		return
	}
	if len(s.Results) <= w.retIdx {
		// A single forwarded call: its first result is the tensor.
		w.rets = append(w.rets, w.evalShape(s.Results[0], env))
		return
	}
	w.rets = append(w.rets, w.evalShape(s.Results[w.retIdx], env))
}

// assign evaluates every rhs against the pre-state, invalidates the targets,
// then installs the new bindings (so `x = x.MustReshape(...)` and swap
// assignments read the old values).
func (w *shapeWalker) assign(s *ast.AssignStmt, env *shapeEnv) {
	type binding struct {
		v     *types.Var
		shape ashape
		ival  adim
	}
	var binds []binding
	record := func(l ast.Expr, shape ashape, ival adim) {
		id, ok := ast.Unparen(l).(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		if v := objVar(w.pkg.Info, id); v != nil {
			binds = append(binds, binding{v, shape, ival})
		}
	}
	track := s.Tok == token.ASSIGN || s.Tok == token.DEFINE

	switch {
	case len(s.Lhs) == len(s.Rhs):
		for i, r := range s.Rhs {
			w.evalExpr(r, env)
			if track {
				sh, iv := w.evalValue(r, env)
				record(s.Lhs[i], sh, iv)
			}
		}
	case len(s.Rhs) == 1:
		r := s.Rhs[0]
		w.evalExpr(r, env)
		// Multi-value: `y, err := MatMul(a, b)` binds the first result when
		// it is the tensor.
		if track {
			if call, ok := ast.Unparen(r).(*ast.CallExpr); ok {
				if sh := w.evalShape(call, env); sh.known && firstResultIsTensor(w.pkg.Info, call) {
					record(s.Lhs[0], sh, topDim())
				}
			}
		}
	}
	for _, l := range s.Lhs {
		w.invalidateExpr(l, env)
	}
	for _, b := range binds {
		if b.shape.known {
			env.shapes[b.v] = b.shape
		}
		if b.ival.kind != dimTop {
			env.ints[b.v] = b.ival
		}
	}
}

func (w *shapeWalker) decl(s *ast.DeclStmt, env *shapeEnv) {
	gd, ok := s.Decl.(*ast.GenDecl)
	if !ok {
		return
	}
	for _, spec := range gd.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		for _, v := range vs.Values {
			w.evalExpr(v, env)
		}
		if len(vs.Names) != len(vs.Values) {
			continue
		}
		for i, name := range vs.Names {
			if name.Name == "_" {
				continue
			}
			v := objVar(w.pkg.Info, name)
			if v == nil {
				continue
			}
			sh, iv := w.evalValue(vs.Values[i], env)
			if sh.known {
				env.shapes[v] = sh
			}
			if iv.kind != dimTop {
				env.ints[v] = iv
			}
		}
	}
}

// evalValue computes the abstract value of an expression according to its
// static type: a shape for tensors, an abstract int for integers.
func (w *shapeWalker) evalValue(e ast.Expr, env *shapeEnv) (ashape, adim) {
	tv, ok := w.pkg.Info.Types[e]
	if !ok || tv.Type == nil {
		return unknownShape(), topDim()
	}
	switch {
	case isTensorPtr(tv.Type):
		return w.evalShape(e, env), topDim()
	case isIntKind(tv.Type):
		return unknownShape(), w.evalInt(e, env)
	}
	return unknownShape(), topDim()
}

// evalExpr descends one expression, running the operator checks on every
// call it contains and walking function-literal bodies with a fresh state.
func (w *shapeWalker) evalExpr(e ast.Expr, env *shapeEnv) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			sub := &shapeWalker{eng: w.eng, pkg: w.pkg, n: w.n, tensorParams: make(map[*types.Var]int), retIdx: -1}
			sub.walkStmts(x.Body.List, newShapeEnv())
			return false
		case *ast.CallExpr:
			w.evalShape(x, env) // side effect: operator checks (deduped)
		}
		return true
	})
}

// invalidateAssigned drops every variable the statement may write — the
// widening applied to loop and switch bodies.
func (w *shapeWalker) invalidateAssigned(s ast.Node, env *shapeEnv) {
	ast.Inspect(s, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.AssignStmt:
			for _, l := range x.Lhs {
				w.invalidateExpr(l, env)
			}
		case *ast.IncDecStmt:
			w.invalidateExpr(x.X, env)
		case *ast.RangeStmt:
			w.invalidateExpr(x.Key, env)
			w.invalidateExpr(x.Value, env)
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				w.invalidateExpr(x.X, env)
			}
		}
		return true
	})
}

func (w *shapeWalker) invalidateExpr(e ast.Expr, env *shapeEnv) {
	if e == nil {
		return
	}
	if id, ok := ast.Unparen(e).(*ast.Ident); ok {
		if v := objVar(w.pkg.Info, id); v != nil {
			delete(env.ints, v)
			delete(env.shapes, v)
		}
	}
}

// --- expression evaluation --------------------------------------------------

// evalInt computes an expression's abstract integer value.
func (w *shapeWalker) evalInt(e ast.Expr, env *shapeEnv) adim {
	e = ast.Unparen(e)
	if v, ok := constIntValue(w.pkg.Info, e); ok {
		return constDim(v)
	}
	switch x := e.(type) {
	case *ast.Ident:
		if v := objVar(w.pkg.Info, x); v != nil {
			if d, ok := env.ints[v]; ok {
				return d
			}
		}
	case *ast.BinaryExpr:
		a, b := w.evalInt(x.X, env), w.evalInt(x.Y, env)
		if a.kind == dimConst && b.kind == dimConst {
			switch x.Op {
			case token.ADD:
				return constDim(a.val + b.val)
			case token.SUB:
				return constDim(a.val - b.val)
			case token.MUL:
				return constDim(a.val * b.val)
			}
		}
	case *ast.CallExpr:
		fn := calleeFunc(w.pkg.Info, x)
		switch {
		case isTensorMethod(fn, "Dim") && len(x.Args) == 1:
			k, ok := constIntValue(w.pkg.Info, x.Args[0])
			if !ok || k < 0 {
				break
			}
			recv := methodRecv(x, fn)
			if sh := w.evalShape(recv, env); sh.known && int(k) < len(sh.dims) {
				return sh.dims[k]
			}
			if p := w.paramTensor(recv); p >= 0 {
				return symDim(symID{kind: symTensorDim, arg: p, dim: int(k)})
			}
		case isTensorMethod(fn, "Size"):
			if cd, ok := w.evalShape(methodRecv(x, fn), env).constDims(); ok {
				size := int64(1)
				for _, d := range cd {
					size *= d
				}
				return constDim(size)
			}
		case isTensorMethod(fn, "Dims"):
			if sh := w.evalShape(methodRecv(x, fn), env); sh.known {
				return constDim(int64(len(sh.dims)))
			}
		}
	}
	return topDim()
}

// evalShape computes an expression's abstract tensor shape.
func (w *shapeWalker) evalShape(e ast.Expr, env *shapeEnv) ashape {
	if e == nil {
		return unknownShape()
	}
	e = ast.Unparen(e)
	switch x := e.(type) {
	case *ast.Ident:
		if v := objVar(w.pkg.Info, x); v != nil {
			if s, ok := env.shapes[v]; ok {
				return s
			}
		}
	case *ast.CallExpr:
		return w.evalCall(x, env)
	}
	return unknownShape()
}

func (w *shapeWalker) evalCall(call *ast.CallExpr, env *shapeEnv) ashape {
	fn := calleeFunc(w.pkg.Info, call)
	if fn == nil {
		return unknownShape()
	}
	if isTensorPkgFunc(fn) {
		return w.tensorOp(call, fn, env)
	}
	if ts := w.lookupTransfer(fn); ts != nil {
		return w.instantiate(ts, call, env)
	}
	return unknownShape()
}

// lookupTransfer resolves a callee's shape-transfer summary: same-package
// functions analyze on demand through the engine; in-module callees from
// other packages resolve through the serialized module index.
func (w *shapeWalker) lookupTransfer(fn *types.Func) *ShapeTransfer {
	if n := w.eng.ipa.Graph.NodeFor(fn); n != nil {
		return w.eng.transferFor(n)
	}
	if w.pkg.deps != nil {
		if fs := w.pkg.deps.Lookup(fn); fs != nil {
			return fs.Shape
		}
	}
	return nil
}

// instantiate evaluates a callee's transfer summary against the call's
// actual arguments.
func (w *shapeWalker) instantiate(ts *ShapeTransfer, call *ast.CallExpr, env *shapeEnv) ashape {
	if call.Ellipsis.IsValid() {
		return unknownShape()
	}
	dims := make([]adim, len(ts.Dims))
	for i, r := range ts.Dims {
		dims[i] = w.instantiateDim(r, call, env)
	}
	return knownShape(dims)
}

func (w *shapeWalker) instantiateDim(r DimRef, call *ast.CallExpr, env *shapeEnv) adim {
	switch r.Kind {
	case "const":
		return constDim(r.Value)
	case "arg":
		if r.Arg < len(call.Args) {
			return w.evalInt(call.Args[r.Arg], env)
		}
	case "argdim":
		if r.Arg < len(call.Args) {
			arg := call.Args[r.Arg]
			if s := w.evalShape(arg, env); s.known && r.Dim < len(s.dims) {
				return s.dims[r.Dim]
			}
			if p := w.paramTensor(arg); p >= 0 {
				return symDim(symID{kind: symTensorDim, arg: p, dim: r.Dim})
			}
		}
	}
	return topDim()
}

// --- tensor operator transfers and checks -----------------------------------

// tensorOp models one call into the tensor package: it returns the result
// shape and reports contract violations the abstract state proves.
func (w *shapeWalker) tensorOp(call *ast.CallExpr, fn *types.Func, env *shapeEnv) ashape {
	name := fn.Name()
	recv := func() ashape { return w.evalShape(methodRecv(call, fn), env) }
	arg := func(i int) ashape {
		if i < len(call.Args) {
			return w.evalShape(call.Args[i], env)
		}
		return unknownShape()
	}
	switch name {
	case "New", "Full", "Randn", "Uniform", "FromSlice", "MustFromSlice":
		start := dimArgStart[name]
		if call.Ellipsis.IsValid() || len(call.Args) <= start {
			return unknownShape()
		}
		return w.dimsShape(call.Args[start:], env)
	case "MatMul", "MustMatMul":
		return w.matmul(call, env, name, 1, 0, 0, 1)
	case "MatMulTransA":
		return w.matmul(call, env, name, 0, 0, 1, 1)
	case "MatMulTransB":
		return w.matmul(call, env, name, 1, 1, 0, 0)
	case "MatMulInto":
		if len(call.Args) == 3 {
			w.require2D(call.Pos(), "tensor.MatMulInto", arg(0), arg(1), arg(2))
			w.checkInner(call.Pos(), "tensor.MatMulInto", arg(1), 1, arg(2), 0)
		}
		return unknownShape()
	case "Transpose":
		s := arg(0)
		w.require2D(call.Pos(), "tensor.Transpose", s)
		if s.known && len(s.dims) == 2 {
			return knownShape([]adim{s.dims[1], s.dims[0]})
		}
		return unknownShape()
	case "Add", "Sub", "Mul":
		if len(call.Args) == 2 {
			sa, sb := arg(0), arg(1)
			w.checkSameShape(call.Pos(), "tensor."+name, sa, sb)
			if sa.known {
				return sa
			}
			return sb
		}
	case "Scale":
		return arg(0)
	case "Clone", "Apply", "ScaleInPlace":
		return recv()
	case "AddInPlace", "SubInPlace", "MulInPlace", "AddScaledInPlace", "CopyFrom":
		r := recv()
		if len(call.Args) >= 1 {
			w.checkSameShape(call.Pos(), "tensor.(*Tensor)."+name, r, arg(0))
		}
		return r
	case "Reshape", "MustReshape":
		return w.reshape(call, env, name, recv())
	case "AddRowVector":
		w.checkRowVector(call, env, recv())
		return unknownShape() // returns error, not a tensor
	case "SumRows":
		r := recv()
		w.require2D(call.Pos(), "tensor.(*Tensor).SumRows", r)
		if r.known && len(r.dims) == 2 {
			return knownShape([]adim{r.dims[1]})
		}
		return unknownShape()
	}
	return unknownShape()
}

// matmul checks one matrix product and returns its result shape: the inner
// dims (innerA of the left operand, innerB of the right) must agree, and the
// result is [left[outA], right[outB]].
func (w *shapeWalker) matmul(call *ast.CallExpr, env *shapeEnv, name string, innerA, innerB, outA, outB int) ashape {
	if len(call.Args) != 2 {
		return unknownShape()
	}
	sa := w.evalShape(call.Args[0], env)
	sb := w.evalShape(call.Args[1], env)
	w.require2D(call.Pos(), "tensor."+name, sa, sb)
	if !sa.known || !sb.known || len(sa.dims) != 2 || len(sb.dims) != 2 {
		return unknownShape()
	}
	w.checkInner(call.Pos(), "tensor."+name, sa, innerA, sb, innerB)
	return knownShape([]adim{sa.dims[outA], sb.dims[outB]})
}

// checkInner reports a proven inner-dimension disagreement.
func (w *shapeWalker) checkInner(pos token.Pos, op string, sa ashape, ia int, sb ashape, ib int) {
	if !sa.known || !sb.known || ia >= len(sa.dims) || ib >= len(sb.dims) {
		return
	}
	da, db := sa.dims[ia], sb.dims[ib]
	if da.kind == dimConst && db.kind == dimConst && da.val != db.val {
		w.eng.reportf(pos, "%s inner dimensions disagree: %d vs %d (fails at run time)", op, da.val, db.val)
	}
}

// checkSameShape reports elementwise operands proven to have different
// fully-concrete shapes.
func (w *shapeWalker) checkSameShape(pos token.Pos, op string, a, b ashape) {
	da, ok1 := a.constDims()
	db, ok2 := b.constDims()
	if !ok1 || !ok2 {
		return
	}
	if len(da) != len(db) {
		w.eng.reportf(pos, "%s operands have different shapes: %v vs %v (fails at run time)", op, da, db)
		return
	}
	for i := range da {
		if da[i] != db[i] {
			w.eng.reportf(pos, "%s operands have different shapes: %v vs %v (fails at run time)", op, da, db)
			return
		}
	}
}

// require2D reports operands whose rank is known and not 2.
func (w *shapeWalker) require2D(pos token.Pos, op string, shapes ...ashape) {
	for _, s := range shapes {
		if s.known && len(s.dims) != 2 {
			w.eng.reportf(pos, "%s requires 2-D operands but this one is %d-D (fails at run time)", op, len(s.dims))
		}
	}
}

// reshape checks Reshape/MustReshape against the dataflow state and returns
// the new shape. Syntactically-constant mistakes (literal negative dims, a
// constant-constructor receiver with constant new dims) are shapecheck's to
// report; shapeflow covers the cases only dataflow can see.
func (w *shapeWalker) reshape(call *ast.CallExpr, env *shapeEnv, name string, recv ashape) ashape {
	if call.Ellipsis.IsValid() || len(call.Args) == 0 {
		return unknownShape()
	}
	dims := w.dimsShape(call.Args, env)
	allSyntactic := true
	for i, a := range call.Args {
		if _, syntactic := constIntValue(w.pkg.Info, a); syntactic {
			continue
		}
		allSyntactic = false
		if d := dims.dims[i]; d.kind == dimConst && d.val < 0 {
			w.eng.reportf(a.Pos(), "tensor.%s dimension %d is negative (fails at run time)", name, d.val)
			return dims
		}
	}
	nd, ok := dims.constDims()
	if !ok {
		return dims
	}
	rd, ok := recv.constDims()
	if !ok {
		return dims
	}
	if allSyntactic {
		if sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr); isSel {
			if _, ctor := syntacticCtorSize(w.pkg.Info, sel.X); ctor {
				return dims // exactly shapecheck's territory
			}
		}
	}
	want, got := int64(1), int64(1)
	for _, d := range rd {
		want *= d
	}
	for _, d := range nd {
		got *= d
	}
	if want != got {
		w.eng.reportf(call.Pos(), "tensor.%s: new dims multiply to %d but the tensor has %d elements (fails at run time)", name, got, want)
	}
	return dims
}

// checkRowVector verifies AddRowVector: the vector's element count must
// equal the receiver's column count.
func (w *shapeWalker) checkRowVector(call *ast.CallExpr, env *shapeEnv, recv ashape) {
	w.require2D(call.Pos(), "tensor.(*Tensor).AddRowVector", recv)
	if !recv.known || len(recv.dims) != 2 || len(call.Args) != 1 {
		return
	}
	cols := recv.dims[1]
	vd, ok := w.evalShape(call.Args[0], env).constDims()
	if !ok || cols.kind != dimConst {
		return
	}
	size := int64(1)
	for _, d := range vd {
		size *= d
	}
	if size != cols.val {
		w.eng.reportf(call.Pos(), "tensor.(*Tensor).AddRowVector: vector has %d elements but the tensor has %d columns (fails at run time)", size, cols.val)
	}
}

// dimsShape evaluates a variadic dim list into a known-rank shape.
func (w *shapeWalker) dimsShape(args []ast.Expr, env *shapeEnv) ashape {
	dims := make([]adim, len(args))
	for i, a := range args {
		dims[i] = w.evalInt(a, env)
	}
	return knownShape(dims)
}

// summarize joins the return-site shapes into the function's exported
// transfer summary, or nil when nothing rank-stable is derivable.
func (w *shapeWalker) summarize() *ShapeTransfer {
	if w.retIdx < 0 || w.naked || len(w.rets) == 0 {
		return nil
	}
	s := w.rets[0]
	for _, r := range w.rets[1:] {
		s = joinShape(s, r)
	}
	if !s.known {
		return nil
	}
	refs := make([]DimRef, len(s.dims))
	for i, d := range s.dims {
		switch d.kind {
		case dimConst:
			refs[i] = DimRef{Kind: "const", Value: d.val}
		case dimSym:
			switch d.sym.kind {
			case symIntParam:
				refs[i] = DimRef{Kind: "arg", Arg: d.sym.arg}
			case symTensorDim:
				refs[i] = DimRef{Kind: "argdim", Arg: d.sym.arg, Dim: d.sym.dim}
			}
		default:
			refs[i] = DimRef{Kind: "unknown"}
		}
	}
	return &ShapeTransfer{Dims: refs}
}

// paramTensor resolves an expression to a tensor parameter's flat index, or
// -1.
func (w *shapeWalker) paramTensor(e ast.Expr) int {
	if e == nil {
		return -1
	}
	if id, ok := ast.Unparen(e).(*ast.Ident); ok {
		if v := objVar(w.pkg.Info, id); v != nil {
			if i, ok := w.tensorParams[v]; ok {
				return i
			}
		}
	}
	return -1
}

// --- shared helpers ---------------------------------------------------------

// syntacticCtorSize computes the element count of a tensor built directly by
// a constructor call with constant dims — the receiver form shapecheck can
// verify without dataflow.
func syntacticCtorSize(info *types.Info, e ast.Expr) (int64, bool) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || call.Ellipsis.IsValid() {
		return 0, false
	}
	fn := calleeFunc(info, call)
	if !isTensorPkgFunc(fn) {
		return 0, false
	}
	start, ok := dimArgStart[fn.Name()]
	if !ok || len(call.Args) <= start {
		return 0, false
	}
	size := int64(1)
	for _, d := range call.Args[start:] {
		v, known := constIntValue(info, d)
		if !known || v < 0 {
			return 0, false
		}
		size *= v
	}
	return size, true
}

// methodRecv returns the receiver expression of a method call, or nil for
// package-level functions.
func methodRecv(call *ast.CallExpr, fn *types.Func) ast.Expr {
	if fn == nil || fn.Type().(*types.Signature).Recv() == nil {
		return nil
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		return sel.X
	}
	return nil
}

// firstResultIsTensor reports whether a call's first result is *tensor.Tensor.
func firstResultIsTensor(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	if fn == nil {
		return false
	}
	results := fn.Type().(*types.Signature).Results()
	return results.Len() > 0 && isTensorPtr(results.At(0).Type())
}

// isTensorPkgFunc reports whether fn is declared in the tensor package (the
// real one or a fixture standing in for it).
func isTensorPkgFunc(fn *types.Func) bool {
	return fn != nil && fn.Pkg() != nil && strings.HasSuffix(fn.Pkg().Path(), "internal/tensor")
}

func isTensorMethod(fn *types.Func, name string) bool {
	return isTensorPkgFunc(fn) && fn.Name() == name && fn.Type().(*types.Signature).Recv() != nil
}

// isTensorPtr reports whether t is *tensor.Tensor.
func isTensorPtr(t types.Type) bool {
	p, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	n, ok := p.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == "Tensor" && obj.Pkg() != nil && strings.HasSuffix(obj.Pkg().Path(), "internal/tensor")
}

func isIntKind(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// objVar resolves an identifier to its variable object.
func objVar(info *types.Info, id *ast.Ident) *types.Var {
	obj := info.Uses[id]
	if obj == nil {
		obj = info.Defs[id]
	}
	v, _ := obj.(*types.Var)
	return v
}

package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// Floatcmp reports == and != between floating-point expressions outside
// _test.go files. DarNet's analytics engine is float64 numerics end to end
// (tensor ops, gradients, Bayesian posteriors); exact equality on computed
// floats silently misclassifies instead of crashing, so comparisons must use
// a tolerance (math.Abs(a-b) <= eps).
//
// Comparisons against an exact-zero constant are exempt by design: IEEE 754
// makes "was this ever written / is this weight exactly zero" a
// deterministic question, and the sparsity fast paths in conv and lstm
// kernels rely on it. Anything else needs a tolerance or a justified
// //lint:ignore floatcmp directive.
var Floatcmp = &Analyzer{
	Name: "floatcmp",
	Doc:  "floating-point equality outside tests must use a tolerance (exact-zero guards exempt)",
	Run:  runFloatcmp,
}

func runFloatcmp(pass *Pass) {
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			bin, ok := n.(*ast.BinaryExpr)
			if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
				return true
			}
			x, okX := pass.TypesInfo.Types[bin.X]
			y, okY := pass.TypesInfo.Types[bin.Y]
			if !okX || !okY || !isFloat(x.Type) || !isFloat(y.Type) {
				return true
			}
			if isZeroConst(x) || isZeroConst(y) {
				return true
			}
			pass.Reportf(bin.OpPos, "float %s float comparison; use a tolerance like math.Abs(a-b) <= eps", bin.Op)
			return true
		})
	}
}

func isZeroConst(tv types.TypeAndValue) bool {
	return tv.Value != nil && constant.Sign(tv.Value) == 0
}

package lint

import (
	"strings"
)

// ignoreSet indexes //lint:ignore directives by file and line. A directive
// suppresses matching findings on its own line and the line directly below
// it (the conventional "comment above the statement" placement).
type ignoreSet struct {
	// byLine maps file -> line -> rules ignored there ("all" matches any).
	byLine    map[string]map[int][]string
	malformed []Diagnostic
}

func buildIgnores(pkg *Package) *ignoreSet {
	ig := &ignoreSet{byLine: make(map[string]map[int][]string)}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				rest, ok := strings.CutPrefix(text, "lint:ignore")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					ig.malformed = append(ig.malformed, Diagnostic{
						Pos:     pos,
						Rule:    "ignore",
						Message: "malformed directive: want //lint:ignore <rule> <reason>",
					})
					continue
				}
				lines := ig.byLine[pos.Filename]
				if lines == nil {
					lines = make(map[int][]string)
					ig.byLine[pos.Filename] = lines
				}
				lines[pos.Line] = append(lines[pos.Line], fields[0])
			}
		}
	}
	return ig
}

func (ig *ignoreSet) suppressed(d Diagnostic) bool {
	lines := ig.byLine[d.Pos.Filename]
	if lines == nil {
		return false
	}
	for _, line := range []int{d.Pos.Line, d.Pos.Line - 1} {
		for _, rule := range lines[line] {
			if rule == d.Rule || rule == "all" {
				return true
			}
		}
	}
	return false
}

package lint

import (
	"go/token"
	"strings"
)

// ignoreEntry is one parsed //lint:ignore directive. used flips when the
// directive suppresses a finding — in the analyzer run or in summary
// export, where dependency suppressions are consumed — so the driver's
// -unused-ignores mode can report directives that no longer earn their
// keep.
type ignoreEntry struct {
	rule string
	pos  token.Position
	used bool
}

// ignoreSet indexes //lint:ignore directives by file and line. A directive
// suppresses matching findings on its own line and the line directly below
// it (the conventional "comment above the statement" placement).
type ignoreSet struct {
	// byLine maps file -> line -> directives anchored there ("all" matches
	// any rule).
	byLine    map[string]map[int][]*ignoreEntry
	entries   []*ignoreEntry
	malformed []Diagnostic
}

func buildIgnores(pkg *Package) *ignoreSet {
	ig := &ignoreSet{byLine: make(map[string]map[int][]*ignoreEntry)}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				rest, ok := strings.CutPrefix(text, "lint:ignore")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					ig.malformed = append(ig.malformed, Diagnostic{
						Pos:     pos,
						Rule:    "ignore",
						Message: "malformed directive: want //lint:ignore <rule> <reason>",
					})
					continue
				}
				e := &ignoreEntry{rule: fields[0], pos: pos}
				ig.entries = append(ig.entries, e)
				lines := ig.byLine[pos.Filename]
				if lines == nil {
					lines = make(map[int][]*ignoreEntry)
					ig.byLine[pos.Filename] = lines
				}
				lines[pos.Line] = append(lines[pos.Line], e)
			}
		}
	}
	return ig
}

func (ig *ignoreSet) suppressed(d Diagnostic) bool {
	lines := ig.byLine[d.Pos.Filename]
	if lines == nil {
		return false
	}
	hit := false
	for _, line := range []int{d.Pos.Line, d.Pos.Line - 1} {
		for _, e := range lines[line] {
			if e.rule == d.Rule || e.rule == "all" {
				e.used = true
				hit = true
			}
		}
	}
	return hit
}

// unused returns one diagnostic per directive that suppressed nothing,
// restricted to rules the run actually exercised: an ignore for an
// analyzer that was skipped this invocation is not stale, it is dormant.
// Directives naming a rule no registry knows are always reported.
func (ig *ignoreSet) unused(ran map[string]bool, known map[string]bool) []Diagnostic {
	var out []Diagnostic
	for _, e := range ig.entries {
		if e.used {
			continue
		}
		switch {
		case !known[e.rule] && e.rule != "all":
			out = append(out, Diagnostic{
				Pos:     e.pos,
				Rule:    "unused-ignore",
				Message: "//lint:ignore " + e.rule + " names no known analyzer",
			})
		case ran[e.rule] || e.rule == "all":
			out = append(out, Diagnostic{
				Pos:     e.pos,
				Rule:    "unused-ignore",
				Message: "//lint:ignore " + e.rule + " suppressed nothing in this run; delete it",
			})
		}
	}
	return out
}

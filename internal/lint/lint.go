// Package lint is DarNet's project-specific static-analysis framework. It is
// built entirely on the standard library (go/parser, go/ast, go/types) and
// exists because the middleware layers (collect, tsdb, core) are lock-guarded
// concurrent code and the analytics layers (tensor, nn, rnn, bayes) are
// numerics where silent invariant violations corrupt accuracy instead of
// crashing. Each analyzer encodes one such invariant; the cmd/darnet-lint
// driver runs the full registry over the module and fails on findings.
//
// Findings can be suppressed with an explicit, justified directive on the
// offending line or the line above it:
//
//	//lint:ignore <rule> <reason>
//
// The reason is mandatory; a directive without one is itself a finding.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"time"
)

// Diagnostic is one analyzer finding, resolved to a file position.
type Diagnostic struct {
	Pos     token.Position
	Rule    string
	Message string
}

// String renders the finding in the canonical file:line:col: [rule] message
// form the driver prints.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Rule, d.Message)
}

// Analyzer is one static check. Run inspects the package held by the pass and
// reports findings through it.
type Analyzer struct {
	// Name is the rule identifier used in reports and //lint:ignore directives.
	Name string
	// Doc is a one-line description of the invariant the rule enforces.
	Doc string
	// Run executes the check over one type-checked package.
	Run func(*Pass)
}

// Pass carries one type-checked package through one analyzer run.
type Pass struct {
	Fset      *token.FileSet
	Files     []*ast.File
	PkgPath   string
	Pkg       *types.Package
	TypesInfo *types.Info

	pkg    *Package
	rule   string
	report func(Diagnostic)
}

// IPA returns the package's interprocedural analysis engine (call graph plus
// function summaries), building it on first use and sharing it between the
// whole-program analyzers of one Run.
func (p *Pass) IPA() *IPA {
	return p.pkg.ipa()
}

// Reportf records a finding at pos under the running analyzer's rule name.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:     p.Fset.Position(pos),
		Rule:    p.rule,
		Message: fmt.Sprintf(format, args...),
	})
}

// IsTestFile reports whether pos lies in a _test.go file.
func (p *Pass) IsTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// InInternal reports whether the package under analysis is an internal/
// package, where the middleware invariants (deterministic RNG, cancellable
// agents) are binding.
func (p *Pass) InInternal() bool {
	return pathHasSegment(p.PkgPath, "internal")
}

// InExamples reports whether the package is example code, exempt from the
// error-handling rule.
func (p *Pass) InExamples() bool {
	return pathHasSegment(p.PkgPath, "examples")
}

func pathHasSegment(path, seg string) bool {
	for _, s := range strings.Split(path, "/") {
		if s == seg {
			return true
		}
	}
	return false
}

// Timing records one analyzer's wall time over one package.
type Timing struct {
	Analyzer string
	Elapsed  time.Duration
}

// Run executes the analyzers over a loaded package and returns the surviving
// findings: suppressed ones are dropped, malformed suppressions are added,
// and the result is sorted by position then rule.
func Run(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	diags, _ := RunTimed(pkg, analyzers)
	return diags
}

// RunTimed is Run with per-analyzer wall-time measurement, for the driver's
// -timings flag. Timings are returned in analyzer order.
func RunTimed(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, []Timing) {
	var diags []Diagnostic
	timings := make([]Timing, 0, len(analyzers))
	for _, a := range analyzers {
		pass := &Pass{
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			PkgPath:   pkg.Path,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			pkg:       pkg,
			rule:      a.Name,
		}
		pass.report = func(d Diagnostic) { diags = append(diags, d) }
		start := time.Now()
		a.Run(pass)
		timings = append(timings, Timing{Analyzer: a.Name, Elapsed: time.Since(start)})
	}
	ig := pkg.ignores()
	kept := diags[:0]
	for _, d := range diags {
		if !ig.suppressed(d) {
			kept = append(kept, d)
		}
	}
	kept = append(kept, ig.malformed...)
	SortDiagnostics(kept)
	return kept, timings
}

// UnusedIgnores reports the package's //lint:ignore directives that
// suppressed nothing, relative to the analyzers that actually ran (a
// directive for a skipped analyzer is dormant, not stale). Call it after
// RunTimed and ExportSummaries: both mark usage on the shared entry set.
func (pkg *Package) UnusedIgnores(analyzers []*Analyzer) []Diagnostic {
	ran := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		ran[a.Name] = true
	}
	known := make(map[string]bool)
	for _, a := range AllModule() {
		known[a.Name] = true
	}
	return pkg.ignores().unused(ran, known)
}

// SortDiagnostics orders findings by (file, line, column, rule), the stable
// order every output mode prints in.
func SortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
}

// isFloat reports whether t's core type is float32 or float64 (including
// untyped float constants).
func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// isErrorType reports whether t is exactly the built-in error interface.
func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// calleeFunc resolves the *types.Func a call expression invokes, or nil for
// builtins, conversions, and calls through function-typed values.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// This file builds the package-level call graph the interprocedural
// analyzers (goleak, lockorder, hotalloc, ctxprop) share. Nodes are the
// package's declared functions, methods, and function literals; edges are
// call sites, classified by how the callee runs (plain call, defer, or a
// conservative "referenced as a value" edge for closures that escape into
// variables or arguments). `go` statements are recorded separately as spawn
// sites, because a spawned goroutine's blocking does not block its spawner.
//
// Resolution is conservative in the direction that keeps the analyzers
// sound-for-this-package:
//
//   - Static calls resolve through go/types to the callee's node when the
//     callee is declared in the package.
//   - Method calls through an interface resolve to every method declared in
//     this package with the same name whose receiver implements the
//     interface (the classic class-hierarchy-analysis over-approximation).
//   - Calls through plain function values are left unresolved; summaries
//     treat unknown callees as neutral rather than inventing facts.

// edgeKind classifies how a call edge transfers control.
type edgeKind int

const (
	edgeCall  edgeKind = iota // plain call expression
	edgeDefer                 // deferred call (runs before return)
	edgeRef                   // function literal referenced as a value; may run later
)

// CallSite is one resolved edge in the call graph.
type CallSite struct {
	Callee *FuncNode
	Pos    token.Pos
	Kind   edgeKind
	// ViaInterface marks edges resolved conservatively through an
	// interface method set rather than a static callee.
	ViaInterface bool
}

// GoSite is one `go` statement. Targets lists the local functions the spawned
// goroutine may enter (the literal's node, or the conservatively resolved
// callees); it is empty when the spawned callee is unknown (dynamic call or
// external function). External carries the serialized summaries of in-module
// callees from other packages, resolved through the module index when the
// analysis runs at module scope.
type GoSite struct {
	Pos      token.Pos
	Targets  []*FuncNode
	External []*FuncSummary
}

// FuncNode is one function in the call graph: a declared function or method
// (Decl != nil) or a function literal (Lit != nil).
type FuncNode struct {
	Name string      // qualified display name, e.g. "(*Runner).loop" or "func literal runner.go:46"
	Fn   *types.Func // nil for literals
	Decl *ast.FuncDecl
	Lit  *ast.FuncLit
	Body *ast.BlockStmt

	Calls   []CallSite
	GoSites []GoSite

	summary *Summary
}

// Hotpath reports whether the function is annotated as a //lint:hotpath
// root (the directive sits in the doc comment of the declaration).
func (n *FuncNode) Hotpath() bool {
	if n.Decl == nil || n.Decl.Doc == nil {
		return false
	}
	for _, c := range n.Decl.Doc.List {
		if commentIsDirective(c.Text, "lint:hotpath") {
			return true
		}
	}
	return false
}

// commentIsDirective reports whether a comment's text is the given //-style
// directive (optionally followed by free text).
func commentIsDirective(text, directive string) bool {
	rest, ok := cutCommentMarker(text)
	if !ok {
		return false
	}
	if rest == directive {
		return true
	}
	return len(rest) > len(directive) && rest[:len(directive)] == directive &&
		(rest[len(directive)] == ' ' || rest[len(directive)] == '\t')
}

func cutCommentMarker(text string) (string, bool) {
	if len(text) >= 2 && text[:2] == "//" {
		return text[2:], true
	}
	return "", false
}

// CallGraph holds the package's function nodes in deterministic source
// order, with lookup from the type-checker's function objects.
type CallGraph struct {
	pkg   *Package
	Nodes []*FuncNode // declaration order across files, literals after their encloser
	byFn  map[*types.Func]*FuncNode
	byLit map[*ast.FuncLit]*FuncNode

	// methods indexes declared methods by name for conservative interface
	// resolution.
	methods map[string][]*FuncNode
}

// NodeFor returns the node of a declared function, or nil.
func (g *CallGraph) NodeFor(fn *types.Func) *FuncNode { return g.byFn[fn] }

func buildCallGraph(pkg *Package) *CallGraph {
	g := &CallGraph{
		pkg:     pkg,
		byFn:    make(map[*types.Func]*FuncNode),
		byLit:   make(map[*ast.FuncLit]*FuncNode),
		methods: make(map[string][]*FuncNode),
	}
	// First pass: create nodes for every declared function so edges can
	// resolve forward references.
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			n := &FuncNode{Name: funcDisplayName(fn), Fn: fn, Decl: fd, Body: fd.Body}
			g.Nodes = append(g.Nodes, n)
			g.byFn[fn] = n
			if fn.Type().(*types.Signature).Recv() != nil {
				g.methods[fn.Name()] = append(g.methods[fn.Name()], n)
			}
		}
	}
	// Second pass: walk bodies, creating literal nodes and edges.
	for _, n := range append([]*FuncNode(nil), g.Nodes...) {
		g.walkBody(n)
	}
	return g
}

// walkBody records n's call sites, go sites, and nested literal nodes. Each
// literal gets its own node (its blocking and locking are its own), and the
// encloser gets an edge to it matching how the literal is used.
func (g *CallGraph) walkBody(n *FuncNode) {
	var walk func(ast.Node) bool
	walk = func(node ast.Node) bool {
		switch s := node.(type) {
		case *ast.GoStmt:
			g.addGoSite(n, s)
			// Arguments to the spawned call are evaluated in the spawner.
			for _, arg := range s.Call.Args {
				ast.Inspect(arg, walk)
			}
			return false
		case *ast.DeferStmt:
			g.addCallEdges(n, s.Call, edgeDefer)
			for _, arg := range s.Call.Args {
				ast.Inspect(arg, walk)
			}
			return false
		case *ast.CallExpr:
			if lit, ok := ast.Unparen(s.Fun).(*ast.FuncLit); ok {
				child := g.litNode(n, lit)
				n.Calls = append(n.Calls, CallSite{Callee: child, Pos: s.Pos(), Kind: edgeCall})
				for _, arg := range s.Args {
					ast.Inspect(arg, walk)
				}
				return false
			}
			g.addCallEdges(n, s, edgeCall)
			return true
		case *ast.FuncLit:
			// A literal that is not immediately called escapes as a value;
			// assume it may run in the encloser's context.
			child := g.litNode(n, s)
			n.Calls = append(n.Calls, CallSite{Callee: child, Pos: s.Pos(), Kind: edgeRef})
			return false
		}
		return true
	}
	ast.Inspect(n.Body, walk)
}

// litNode creates (and registers) the node for a function literal nested in
// parent, then walks its body.
func (g *CallGraph) litNode(parent *FuncNode, lit *ast.FuncLit) *FuncNode {
	pos := g.pkg.Fset.Position(lit.Pos())
	child := &FuncNode{
		Name: fmt.Sprintf("func literal %s:%d", shortPath(pos.Filename), pos.Line),
		Lit:  lit,
		Body: lit.Body,
	}
	g.Nodes = append(g.Nodes, child)
	g.byLit[lit] = child
	g.walkBody(child)
	return child
}

// addGoSite records a `go` statement and resolves its spawn targets.
func (g *CallGraph) addGoSite(n *FuncNode, s *ast.GoStmt) {
	site := GoSite{Pos: s.Pos()}
	if lit, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
		site.Targets = []*FuncNode{g.litNode(n, lit)}
	} else {
		targets, _ := g.resolve(s.Call)
		site.Targets = targets
		if len(targets) == 0 && g.pkg.deps != nil {
			if fs := g.pkg.deps.Lookup(calleeFunc(g.pkg.Info, s.Call)); fs != nil {
				site.External = append(site.External, fs)
			}
		}
	}
	n.GoSites = append(n.GoSites, site)
}

// addCallEdges resolves call and records edges on caller.
func (g *CallGraph) addCallEdges(caller *FuncNode, call *ast.CallExpr, kind edgeKind) {
	targets, viaIface := g.resolve(call)
	for _, t := range targets {
		caller.Calls = append(caller.Calls, CallSite{Callee: t, Pos: call.Pos(), Kind: kind, ViaInterface: viaIface})
	}
}

// resolve returns the package-local functions a call may invoke. Interface
// method calls resolve to every declared method implementing the interface;
// viaIface reports when that over-approximation was used.
func (g *CallGraph) resolve(call *ast.CallExpr) (targets []*FuncNode, viaIface bool) {
	fn := calleeFunc(g.pkg.Info, call)
	if fn == nil {
		return nil, false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil, false
	}
	if recv := sig.Recv(); recv != nil && types.IsInterface(recv.Type()) {
		iface, ok := recv.Type().Underlying().(*types.Interface)
		if !ok {
			return nil, false
		}
		for _, m := range g.methods[fn.Name()] {
			mrecv := m.Fn.Type().(*types.Signature).Recv().Type()
			if types.Implements(mrecv, iface) || types.Implements(types.NewPointer(mrecv), iface) {
				targets = append(targets, m)
			}
		}
		return targets, true
	}
	if n := g.byFn[fn]; n != nil {
		return []*FuncNode{n}, false
	}
	return nil, false
}

// funcDisplayName renders a function object the way findings name it:
// "Name" for package functions, "(T).Name" / "(*T).Name" for methods.
func funcDisplayName(fn *types.Func) string {
	sig := fn.Type().(*types.Signature)
	if recv := sig.Recv(); recv != nil {
		return fmt.Sprintf("(%s).%s", types.TypeString(recv.Type(), func(*types.Package) string { return "" }), fn.Name())
	}
	return fn.Name()
}

// shortPath trims a filename to its base for display names.
func shortPath(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[i+1:]
		}
	}
	return path
}

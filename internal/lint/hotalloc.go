package lint

// Hotalloc statically enforces what internal/telemetry's AllocsPerRun tests
// only sample: functions reachable from a //lint:hotpath root (telemetry
// counter increments, span start/stop, wire encode, tsdb insert) must not
// allocate. The forbidden constructs on the path are make/new, closures and
// goroutine spawns, pointer-to-composite and slice/map literals, allocating
// conversions, fmt calls, variadic argument packing, and interface boxing
// of non-pointer-shaped values. Amortized-growth append is deliberately
// allowed — the runtime tests own that budget.
//
// Reachability is the package-level call graph (plain, deferred, and
// escaping-literal edges; `go` spawns are excluded, the spawn itself is the
// allocation). A deliberate cold branch on a hot path — a sampled trace
// retention, a panic formatting an impossible state — carries a
// //lint:ignore hotalloc directive with its rationale.
var Hotalloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "functions reachable from a //lint:hotpath root must not allocate",
	Run:  runHotalloc,
}

func runHotalloc(pass *Pass) {
	ipa := pass.IPA()

	// BFS from each root in declaration order; the first root to reach a
	// function names it in the report.
	rootOf := make(map[*FuncNode]*FuncNode)
	var queue []*FuncNode
	for _, n := range ipa.Graph.Nodes {
		if n.Hotpath() {
			rootOf[n] = n
			queue = append(queue, n)
		}
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, c := range n.Calls {
			if _, seen := rootOf[c.Callee]; !seen {
				rootOf[c.Callee] = rootOf[n]
				queue = append(queue, c.Callee)
			}
		}
	}

	for _, n := range ipa.Graph.Nodes {
		root, hot := rootOf[n]
		if !hot {
			continue
		}
		for _, site := range n.Summary().AllocSites {
			pass.Reportf(site.Pos, "%s allocates on a hot path (//lint:hotpath root %s)", site.What, root.Name)
		}
	}
}

// Package loadbroken deliberately fails type-checking: LoadDir must report
// the error with a position, not panic and not hand analyzers a half-built
// package.
package loadbroken

func mismatch() string {
	var s string = 42
	return s
}

func undefinedCallee() {
	neverDeclared()
}

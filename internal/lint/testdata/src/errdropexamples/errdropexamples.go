// Package errdropexamples is a lint fixture loaded under an examples/
// import path: demonstration code is exempt from errdrop entirely.
package errdropexamples

import "errors"

func fail() error { return errors.New("boom") }

func demo() {
	fail() // no finding: examples packages are exempt
}

// Package errdrop is a lint fixture: discarded-error cases.
package errdrop

import (
	"errors"
	"fmt"
	"io"
	"os"
	"strings"
)

func fail() error { return errors.New("boom") }

func pair() (int, error) { return 0, errors.New("boom") }

func ignoredEntirely() {
	fail() // want "returns an error that is ignored"
}

func blankedSingle() {
	_ = fail() // want "error result discarded"
}

func blankedInTuple() int {
	n, _ := pair() // want "error result discarded"
	return n
}

func handled() error {
	if err := fail(); err != nil {
		return err
	}
	n, err := pair()
	if err != nil {
		return err
	}
	_ = n // blanking a non-error is fine
	return nil
}

func deferredCloseExempt(c io.Closer) {
	defer c.Close()
}

func safeWritersExempt() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "render %d", 1)
	fmt.Println("stdout printing")
	fmt.Fprintln(os.Stderr, "diagnostics")
	return sb.String()
}

func suppressed() {
	//lint:ignore errdrop fixture demonstrates suppression
	fail()
}

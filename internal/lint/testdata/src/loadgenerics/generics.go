// Package loadgenerics verifies the loader and the interprocedural engine
// over generic code: type parameters, constraint interfaces, generic
// methods, and instantiations at several types.
package loadgenerics

type number interface {
	~int | ~float64
}

func sum[T number](xs []T) T {
	var total T
	for _, x := range xs {
		total += x
	}
	return total
}

type stack[T any] struct {
	items []T
}

func (s *stack[T]) push(v T) {
	s.items = append(s.items, v)
}

func (s *stack[T]) pop() (T, bool) {
	var zero T
	if len(s.items) == 0 {
		return zero, false
	}
	v := s.items[len(s.items)-1]
	s.items = s.items[:len(s.items)-1]
	return v, true
}

func useAll() (int, float64) {
	var st stack[int]
	st.push(1)
	v, _ := st.pop()
	return sum([]int{v}), sum([]float64{1.5})
}

// Package atomicmix is the fixture for the atomic/plain mixing analyzer: a
// field or package var reached by both sync/atomic operations and plain
// reads or writes is a data race in every build, whether or not the race
// detector's interleavings ever expose it.
package atomicmix

import (
	"sync"
	"sync/atomic"
)

type Counter struct {
	n    int64
	hits int64
}

func (c *Counter) Inc() {
	atomic.AddInt64(&c.n, 1)
}

func (c *Counter) Read() int64 {
	return c.n // want "plain read of .*Counter.n, which is accessed with sync/atomic"
}

func (c *Counter) Reset() {
	c.n = 0 // want "plain write of .*Counter.n"
}

// Hits is consistently atomic: no finding.
func (c *Counter) Hit() {
	atomic.AddInt64(&c.hits, 1)
}

func (c *Counter) Hits() int64 {
	return atomic.LoadInt64(&c.hits)
}

var total int64

func Bump() {
	atomic.AddInt64(&total, 1)
}

func Peek() int64 {
	return total // want "plain read of .*total"
}

func Swapped() int64 {
	return atomic.SwapInt64(&total, 0)
}

// --- Clean cases ------------------------------------------------------------

// wrapper types cannot be accessed plainly; the type system already
// enforces the discipline this analyzer checks.
type Wrapped struct {
	n atomic.Int64
}

func (w *Wrapped) Inc() {
	w.n.Add(1)
}

func (w *Wrapped) Read() int64 {
	return w.n.Load()
}

// consistently plain (guarded by a mutex elsewhere): no atomic side, no mix.
type Plain struct {
	mu sync.Mutex
	n  int64
}

func (p *Plain) Inc() {
	p.mu.Lock()
	p.n++
	p.mu.Unlock()
}

// construction happens before sharing; the composite-literal write is the
// initialization idiom, not a race.
func NewCounter() *Counter {
	return &Counter{n: 0, hits: 0}
}

var suppressed int64

func BumpSuppressed() {
	atomic.AddInt64(&suppressed, 1)
}

func PeekSuppressed() int64 {
	//lint:ignore atomicmix read-only snapshot for a log line; staleness is acceptable
	return suppressed
}

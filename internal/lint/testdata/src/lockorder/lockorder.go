// Package lockorder exercises the lockorder analyzer: a direct ABBA cycle,
// a cycle closed through a callee's acquisitions, a self-deadlock, and the
// safe consistent-order shape that must stay clean.
package lockorder

import "sync"

type store struct {
	a sync.Mutex
	b sync.Mutex
}

// abFirst establishes the order a-then-b.
func (s *store) abFirst() {
	s.a.Lock()
	defer s.a.Unlock()
	s.b.Lock() // want "lock acquisition order cycle"
	defer s.b.Unlock()
}

// baFirst reverses it, closing the cycle.
func (s *store) baFirst() {
	s.b.Lock()
	defer s.b.Unlock()
	s.a.Lock()
	defer s.a.Unlock()
}

type inner struct {
	d sync.Mutex
}

type outer struct {
	c  sync.Mutex
	in inner
}

// lockThenCall holds c across a call whose callee acquires d: the edge is
// interprocedural, derived from lockD's summary.
func (o *outer) lockThenCall() {
	o.c.Lock()
	defer o.c.Unlock()
	o.lockD() // want "lock acquisition order cycle"
}

func (o *outer) lockD() {
	o.in.d.Lock()
	defer o.in.d.Unlock()
}

// reverse closes the interprocedural cycle.
func (o *outer) reverse() {
	o.in.d.Lock()
	defer o.in.d.Unlock()
	o.c.Lock()
	defer o.c.Unlock()
}

type rec struct {
	mu sync.Mutex
}

// outerLock re-acquires mu through a callee while already holding it.
func (r *rec) outerLock() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.innerLock() // want "self-deadlock"
}

func (r *rec) innerLock() {
	r.mu.Lock()
	defer r.mu.Unlock()
}

type safe struct {
	x sync.Mutex
	y sync.Mutex
}

// one and two agree on x-then-y: a consistent order is not a finding.
func (s *safe) one() {
	s.x.Lock()
	defer s.x.Unlock()
	s.y.Lock()
	defer s.y.Unlock()
}

func (s *safe) two() {
	s.x.Lock()
	defer s.x.Unlock()
	s.y.Lock()
	defer s.y.Unlock()
}

type pair struct {
	p sync.Mutex
	q sync.Mutex
}

// pq carries a justified suppression at the reported acquisition site.
func (s *pair) pq() {
	s.p.Lock()
	defer s.p.Unlock()
	//lint:ignore lockorder fixture demonstrates a justified suppression
	s.q.Lock()
	defer s.q.Unlock()
}

func (s *pair) qp() {
	s.q.Lock()
	defer s.q.Unlock()
	s.p.Lock()
	defer s.p.Unlock()
}

// Package leaf is the bottom of the modflow fixture tree (root -> mid ->
// leaf): it owns a counter that dependents manage with sync/atomic and a
// shutdown helper that closes its argument. Neither fact is a finding here
// — the mix and the double close only materialize one or two packages up,
// and only when the module analysis links the serialized channel-op and
// access summaries across package boundaries.
package leaf

// Live counts active consumers. Package mid increments it with
// atomic.AddInt64, so every other access module-wide must be atomic too.
var Live int64

// Seen counts consumers ever admitted. Managed atomically by mid and read
// atomically by rootquiet: consistently disciplined, so never a finding
// until a mutation test seeds a plain read of it.
var Seen int64

// Halt closes its argument: callers must not close it again. The close
// travels as a `mustclose` channel op in Halt's serialized summary.
func Halt(ch chan int) {
	close(ch)
}

// Package rootquiet is root's disciplined twin: it reads the shared
// counter atomically and never touches the channel after handing it to
// mid.Stop. Clean as written — the mutation tests seed a plain read and a
// double close into copies of this package and require the module-linked
// analysis to catch both where the per-package engine cannot.
package rootquiet

import (
	"sync/atomic"

	"darnet/internal/lintfixture/modflow/leaf"
	"darnet/internal/lintfixture/modflow/mid"
)

// Quiet observes the admission counter the way mid writes it.
func Quiet() int64 {
	return atomic.LoadInt64(&leaf.Seen)
}

// Recycle hands the channel's lifecycle to mid.Stop and walks away.
func Recycle() {
	ch := make(chan int, 1)
	mid.Stop(ch)
}

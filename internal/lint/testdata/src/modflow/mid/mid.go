// Package mid is the middle of the modflow fixture tree: it manages
// leaf.Live atomically (the atomic side of the cross-package mix) and
// forwards shutdown to leaf.Halt, inheriting — and re-exporting — the
// must-close effect through its own summary.
package mid

import (
	"sync/atomic"

	"darnet/internal/lintfixture/modflow/leaf"
)

// Bump counts one consumer in. The atomic access is recorded in Bump's
// summary keyed by leaf.Live's position-independent identity.
func Bump() {
	atomic.AddInt64(&leaf.Live, 1)
	atomic.AddInt64(&leaf.Seen, 1)
}

// Stop forwards to leaf.Halt: the callee's mustclose effect on its channel
// parameter propagates through Stop's summary, one level removed from the
// close itself.
func Stop(ch chan int) {
	leaf.Halt(ch)
}

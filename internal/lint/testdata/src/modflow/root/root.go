// Package root is the top of the modflow fixture tree and carries the two
// seeded concurrency findings, each provable only with linked summaries:
// a plain read of the counter mid manages atomically, and a close of a
// channel that mid.Stop — via leaf.Halt, two packages down — already
// closed. Analyzed per package, both vanish.
package root

import (
	"darnet/internal/lintfixture/modflow/leaf"
	"darnet/internal/lintfixture/modflow/mid"
)

// Snapshot reads the counter plainly: a data race with mid.Bump's
// atomic.AddInt64, visible only when mid's access summary is linked.
func Snapshot() int64 {
	return leaf.Live
}

// Restart closes the channel mid.Stop already closed: the mustclose effect
// reaches this call site through two serialized summaries (leaf.Halt's,
// folded into mid.Stop's).
func Restart() {
	ch := make(chan int)
	mid.Stop(ch)
	close(ch)
}

// Package hotallocpool mirrors internal/telemetry/span.go's pooled span
// reuse: the span-start hot path takes spans from a sync.Pool and only the
// sampled branch allocates, under a justified suppression. The mutation
// test rewrites the pool.Get line into a bare &span literal — deleting the
// reuse — and asserts hotalloc fails.
package hotallocpool

import "sync"

type span struct {
	name    string
	sampled bool
}

type tracer struct {
	pool sync.Pool
}

// start is the span-start hot path: pool reuse keeps it allocation-free.
//
//lint:hotpath
func (t *tracer) start(name string, sampled bool) *span {
	var s *span
	if sampled {
		//lint:ignore hotalloc sampled 1-in-N branch retains its span tree deliberately
		s = &span{}
	} else {
		s = t.pool.Get().(*span)
	}
	s.name = name
	s.sampled = sampled
	return s
}

// finish returns an unsampled span to the pool; a pointer into an interface
// parameter does not heap-allocate.
//
//lint:hotpath
func (t *tracer) finish(s *span) {
	if !s.sampled {
		t.pool.Put(s)
	}
}

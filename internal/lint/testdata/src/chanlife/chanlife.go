// Package chanlife is the fixture for the flow-sensitive channel-lifecycle
// analyzer: close-of-closed, send-after-close, nil-channel operations along
// some path, orphaned unbuffered sends — and the clean idioms (branch
// refinement, select comms, rendezvous receives, escapes) it must not flag.
package chanlife

func doubleClose() {
	ch := make(chan int)
	close(ch)
	close(ch) // want "close of already-closed channel ch"
}

func sendAfterClose() {
	ch := make(chan int)
	close(ch)
	ch <- 1 // want "send on channel ch after close"
}

func maybeClosed(b bool) {
	ch := make(chan int)
	if b {
		close(ch)
	}
	close(ch) // want "possible close of closed channel ch"
}

func sendMaybeClosed(b bool) {
	ch := make(chan int, 1)
	if b {
		close(ch)
	}
	ch <- 1 // want "closed at .* on a path reaching this send"
}

func deferredDoubleClose() {
	ch := make(chan int)
	defer close(ch)
	close(ch) // want "deferred close at .* will close it a second time"
}

func deferredTwice() {
	ch := make(chan int)
	defer close(ch)
	defer close(ch) // want "duplicate deferred close of channel ch"
}

func nilSend() {
	var ch chan int
	ch <- 1 // want "send on nil channel ch blocks forever"
}

func nilRecv() {
	var ch chan int
	<-ch // want "receive from nil channel ch blocks forever"
}

func nilClose() {
	var ch chan int
	close(ch) // want "close of nil channel ch"
}

func nilOnSomePath(b bool) {
	var ch chan int
	if b {
		ch = make(chan int, 1)
	}
	ch <- 1 // want "nil on a path reaching this send"
}

// close effects cross function boundaries inside the package: shutdown
// provably closes its parameter, so closing again after calling it is the
// double-close seeded into real shutdown paths.
func shutdown(ch chan int) {
	close(ch)
}

func shutdownTwice() {
	ch := make(chan int)
	shutdown(ch)
	close(ch) // want "close of already-closed channel ch"
}

func sendAfterShutdown() {
	ch := make(chan int, 1)
	shutdown(ch)
	ch <- 1 // want "send on channel ch after close"
}

func orphanedSend() {
	ch := make(chan int)
	go func() { // want "goroutine sends on unbuffered channel ch with no receive"
		ch <- 1
	}()
}

func orphanOnSomePath(b bool) {
	ch := make(chan int)
	go func() { // want "goroutine sends on unbuffered channel ch with no receive"
		ch <- 1
	}()
	if b {
		return
	}
	<-ch
}

// --- Clean cases: the analyzer must stay silent below this line. ------------

// nilGuarded narrows the nil bit away on the checked branch.
func nilGuarded(b bool) {
	var ch chan int
	if b {
		ch = make(chan int, 1)
	}
	if ch != nil {
		ch <- 1
	}
}

// selectNil is the standard disabled-case idiom: a nil channel inside a
// select comm never fires, it does not block the select.
func selectNil(other chan int) {
	var ch chan int
	select {
	case ch <- 1:
	case <-other:
	}
}

// reassigned is open again after the second make: no stale closed state.
func reassigned() {
	ch := make(chan int)
	close(ch)
	ch = make(chan int)
	close(ch)
}

// escaped leaves the lattice when passed to an unknown callee; later closes
// must not be judged on stale facts.
func escaped(sink func(chan int)) {
	ch := make(chan int)
	sink(ch)
	close(ch)
}

// rendezvous receives on every path after the spawn: the send pairs up.
func rendezvous() int {
	ch := make(chan int)
	go func() {
		ch <- 42
	}()
	return <-ch
}

// buffered sends never block on an empty buffer: no orphan hazard.
func buffered() {
	ch := make(chan int, 1)
	go func() {
		ch <- 1
	}()
}

// handoff gives the channel to another consumer: receives may happen there.
func handoff(consume func(<-chan int)) {
	ch := make(chan int)
	go func() {
		ch <- 1
	}()
	consume(ch)
}

// selectSend in the goroutine can always take the default arm: exempt.
func selectSend() {
	ch := make(chan int)
	go func() {
		select {
		case ch <- 1:
		default:
		}
	}()
}

// closer returns its channel: the caller owns the lifecycle.
func closer() chan int {
	ch := make(chan int)
	go func() {
		ch <- 1
	}()
	return ch
}

// Package badignore is a lint fixture: a directive without a reason is
// malformed, reported, and suppresses nothing.
package badignore

import "time"

func sleepy() {
	//lint:ignore ctxsleep
	time.Sleep(time.Millisecond)
}

// Package shapeflow exercises the dataflow-driven shape analyzer. Every
// finding here needs a fact that travels through an assignment, a branch
// join, or a callee's shape-transfer summary — the cases the syntactic
// shapecheck analyzer cannot see. The Clean* functions pin the soundness
// direction: when the abstract state cannot prove a violation, shapeflow
// stays silent.
package shapeflow

import "darnet/internal/tensor"

// BadInner multiplies two locals whose inner dimensions provably disagree.
func BadInner() *tensor.Tensor {
	a := tensor.New(4, 8)
	b := tensor.New(16, 2)
	return tensor.MustMatMul(a, b) // want "inner dimensions disagree: 8 vs 16"
}

// embed returns an (n, 64) lookup table; its transfer summary carries the
// constant width to callers.
func embed(n int) *tensor.Tensor {
	return tensor.New(n, 64)
}

// BadThroughCall proves the mismatch only via embed's transfer summary.
func BadThroughCall() *tensor.Tensor {
	w := tensor.New(32, 10)
	return tensor.MustMatMul(embed(8), w) // want "inner dimensions disagree: 64 vs 32"
}

// BadReshape reshapes a tensor whose element count arrives by dataflow: the
// receiver is a variable, so shapecheck's constructor-receiver rule cannot
// apply.
func BadReshape() *tensor.Tensor {
	x := tensor.New(4, 4)
	return x.MustReshape(3, 5) // want "new dims multiply to 15 but the tensor has 16 elements"
}

// BadNegativeDim computes a negative dimension through arithmetic; the
// literal at the call site looks innocent.
func BadNegativeDim(t *tensor.Tensor) *tensor.Tensor {
	n := 1
	n = n - 3
	return t.MustReshape(n, 4) // want "dimension -2 is negative"
}

// BadAdd combines elementwise operands of different concrete shapes.
func BadAdd() *tensor.Tensor {
	a := tensor.New(3, 4)
	b := tensor.New(3, 5)
	return tensor.Add(a, b) // want `operands have different shapes: \[3 4\] vs \[3 5\]`
}

// BadAccumulate folds a transposed gradient into a straight accumulator.
func BadAccumulate() {
	acc := tensor.New(2, 3)
	g := tensor.New(3, 2)
	acc.AddInPlace(g) // want `operands have different shapes: \[2 3\] vs \[3 2\]`
}

// BadBias adds a bias whose width disagrees with the matmul result columns.
func BadBias() error {
	y := tensor.MustMatMul(tensor.New(4, 8), tensor.New(8, 10))
	bias := tensor.New(12)
	return y.AddRowVector(bias) // want "vector has 12 elements but the tensor has 10 columns"
}

// BadTranspose passes a vector where a matrix is required.
func BadTranspose() (*tensor.Tensor, error) {
	v := tensor.New(6)
	return tensor.Transpose(v) // want "requires 2-D operands but this one is 1-D"
}

// BadAfterJoin still proves the mismatch after a branch: both paths assign
// the same shape, so the join keeps it.
func BadAfterJoin(flip bool) *tensor.Tensor {
	x := tensor.New(2, 6)
	if flip {
		x = tensor.New(2, 6)
	}
	return x.MustReshape(5) // want "new dims multiply to 5 but the tensor has 12 elements"
}

// BadChain threads the tensor result of a multi-value MatMul into the next
// check.
func BadChain() error {
	x, err := tensor.MatMul(tensor.New(3, 5), tensor.New(5, 7))
	if err != nil {
		return err
	}
	_, err = x.Reshape(6, 6) // want "new dims multiply to 36 but the tensor has 21 elements"
	return err
}

// Suppressed carries a justified ignore: the mismatch is provable but must
// not be reported.
func Suppressed() *tensor.Tensor {
	a := tensor.New(2, 2)
	b := tensor.New(3, 3)
	//lint:ignore shapeflow deliberate mismatch pinning directive suppression
	return tensor.MustMatMul(a, b)
}

// CleanSymbolic stays silent: the inner dimensions are the same symbol, so
// they agree for every actual argument even though nothing is concrete.
func CleanSymbolic(batch, hidden int) *tensor.Tensor {
	x := tensor.New(batch, hidden)
	w := tensor.New(hidden, 10)
	return tensor.MustMatMul(x, w)
}

// CleanDim stays silent: the projection width is read off the input tensor,
// so the operands stay consistent symbolically.
func CleanDim(x *tensor.Tensor) *tensor.Tensor {
	w := tensor.New(x.Dim(1), 32)
	return tensor.MustMatMul(x, w)
}

// CleanBranches stays silent: the branches disagree about x's width, the
// join widens it to unknown, and no check may fire on an unknown dim.
func CleanBranches(wide bool) *tensor.Tensor {
	x := tensor.New(4, 8)
	if wide {
		x = tensor.New(4, 16)
	}
	return tensor.MustMatMul(x, tensor.New(8, 2))
}

// CleanLoop stays silent: x is rewritten inside the loop, so its shape is
// widened before the body is checked.
func CleanLoop(steps int) *tensor.Tensor {
	x := tensor.New(4, 4)
	for i := 0; i < steps; i++ {
		x = tensor.MustMatMul(x, tensor.New(4, 4))
	}
	return x
}

// Package goleak exercises the goleak analyzer: spawned goroutines that
// can block forever on channel operations with no cancellation or close
// path, versus the cancellable shapes that must stay clean.
package goleak

import (
	"context"
	"sync"
)

// leakyRecv blocks forever on a bare receive; goleak reaches it through the
// call graph when it is spawned.
func leakyRecv(ch chan int) {
	<-ch
}

// helperWait blocks forever when the WaitGroup's Done side is lost; reached
// interprocedurally through a literal's call edge.
func helperWait(wg *sync.WaitGroup) {
	wg.Wait()
}

func spawnLeaks(ch chan int, wg *sync.WaitGroup) {
	go func() { // want "can block forever: channel receive"
		<-ch
	}()
	go func() { // want "can block forever: channel send"
		ch <- 1
	}()
	go leakyRecv(ch) // want "goroutine leakyRecv can block forever"
	go func() {      // want "can block forever: single-case select"
		select {
		case <-ch:
		}
	}()
	go func() { // want "reached via helperWait"
		helperWait(wg)
	}()
}

func spawnSafe(ctx context.Context, ch chan int) {
	// A second select case is a cancellation path.
	go func() {
		select {
		case <-ctx.Done():
		case <-ch:
		}
	}()
	// A comma-ok receive observes close.
	go func() {
		v, ok := <-ch
		_, _ = v, ok
	}()
	// Range over a channel terminates on close.
	go func() {
		for range ch {
		}
	}()
	// A default case never blocks.
	go func() {
		select {
		case <-ch:
		default:
		}
	}()
	// A justified suppression is the documented escape hatch.
	//lint:ignore goleak fixture demonstrates a justified suppression
	go func() {
		<-ch
	}()
}

// spawnReconnectLoop mirrors the collection runner's fault-tolerance shape:
// a managed loop that keeps polling on a ticker while backing off between
// reconnect attempts. Every blocking point is a multi-case select with a
// stop path, so the analyzer must stay quiet — the reconnect loop is the
// escape shape, not a leak.
func spawnReconnectLoop(poll <-chan int, backoff <-chan int, stop chan struct{}, done chan struct{}) {
	go func() {
		defer close(done)
		for {
			select {
			case <-poll:
				// keep polling (spilling) through the outage
			case <-backoff:
				// one reconnect attempt, then re-arm the backoff timer
			case <-stop:
				return
			}
		}
	}()
	// The watchdog that waits for the loop to exit observes close(done):
	// a comma-ok receive terminates when the loop closes the channel.
	go func() {
		_, ok := <-done
		_ = ok
	}()
}

// spawnWatchdogRestart mirrors the streaming pipeline's watchdog-restart
// loop: a poll loop that replaces a wedged worker generation by spawning a
// fresh one against the same bounded queue. The watchdog blocks only on a
// multi-case select with a stop path, and every generation it spawns drains
// the queue with a close-observing receive plus the same stop path — the
// whole restart loop is the escape shape and must stay quiet.
func spawnWatchdogRestart(queue chan int, tick <-chan int, stop chan struct{}) {
	go func() {
		for {
			select {
			case <-tick:
				// A restarted generation: same cancellable drain shape.
				go func() {
					for {
						select {
						case _, ok := <-queue:
							if !ok {
								return
							}
						case <-stop:
							return
						}
					}
				}()
			case <-stop:
				return
			}
		}
	}()
}

// spawnLeakyWatchdog is the broken variant: the watchdog itself is
// cancellable, but the generations it restarts block on a bare queue receive
// with no stop or close path — every restart strands one more goroutine.
func spawnLeakyWatchdog(queue chan int, tick <-chan int, stop chan struct{}) {
	go func() {
		for {
			select {
			case <-tick:
				go func() { // want "can block forever: channel receive"
					for {
						<-queue
					}
				}()
			case <-stop:
				return
			}
		}
	}()
}

// Package floatcmp is a lint fixture: float equality cases.
package floatcmp

import "math"

const eps = 1e-9

func exactEquality(a, b float64) bool {
	return a == b // want "float == float"
}

func exactInequality32(a, b float32) bool {
	return a != b // want "float != float"
}

func nonZeroConstant(a float64) bool {
	return a == 0.5 // want "float == float"
}

func zeroGuardExempt(a float64) bool {
	return a == 0
}

func toleranceCompliant(a, b float64) bool {
	return math.Abs(a-b) <= eps
}

func intComparisonFine(a, b int) bool {
	return a == b
}

func suppressed(a, b float64) bool {
	//lint:ignore floatcmp fixture demonstrates suppression
	return a == b
}

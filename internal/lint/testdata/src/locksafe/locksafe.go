// Package locksafe is a lint fixture: lock/unlock discipline cases.
package locksafe

import (
	"errors"
	"sync"
)

var errBoom = errors.New("boom")

type store struct {
	mu  sync.Mutex
	rw  sync.RWMutex
	val int
}

func (s *store) leakOnEarlyReturn(fail bool) error {
	s.mu.Lock()
	if fail {
		return errBoom // want "return with s.mu still locked"
	}
	s.val++
	s.mu.Unlock()
	return nil
}

func (s *store) neverUnlocks() {
	s.mu.Lock() // want "can exit without unlocking"
	s.val++
}

func (s *store) leakReadLock() int {
	s.rw.RLock()
	return s.val // want "return with s.rw still locked"
}

func (s *store) deferredUnlock() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.val
}

func (s *store) deferredInClosure() int {
	s.mu.Lock()
	defer func() { s.mu.Unlock() }()
	return s.val
}

func (s *store) straightLine() int {
	s.mu.Lock()
	v := s.val
	s.mu.Unlock()
	return v
}

func (s *store) unlockPerBranch(b bool) int {
	s.mu.Lock()
	if b {
		s.mu.Unlock()
		return 0
	}
	v := s.val
	s.mu.Unlock()
	return v
}

func (s *store) goroutineHasOwnState() {
	go func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		s.val++
	}()
}

func (s *store) handoff() {
	//lint:ignore locksafe fixture demonstrates an intentional lock handoff
	s.mu.Lock()
	s.val++
}

// Package ctxprop exercises the ctxprop analyzer: blocking functions that
// drop their context, manufactured Background contexts, and the safe
// shapes (threaded context, non-blocking unused parameter).
package ctxprop

import (
	"context"
	"sync"
	"time"
)

// drop blocks on a channel but never consults ctx.
func drop(ctx context.Context, ch chan int) int { // want "drops its context parameter ctx"
	return <-ch
}

// dropViaCallee reaches blocking only through a callee's lock acquisition.
func dropViaCallee(ctx context.Context, mu *sync.Mutex) { // want "drops its context parameter ctx"
	lockedWork(mu)
}

func lockedWork(mu *sync.Mutex) {
	mu.Lock()
	defer mu.Unlock()
}

// manufactured has a context in hand yet severs cancellation for one call.
func manufactured(ctx context.Context, ch chan int) {
	if len(ch) == 0 {
		threaded(context.Background(), ch) // want "passes context.Background to threaded"
	}
	threaded(ctx, ch)
}

// threaded is the safe shape: the context reaches the select.
func threaded(ctx context.Context, ch chan int) {
	select {
	case <-ctx.Done():
	case <-ch:
	}
}

// futureProofed takes a context it does not need yet; a non-blocking
// function with an unused context is not a finding.
func futureProofed(ctx context.Context, n int) int {
	return n * 2
}

// sleepy blocks via time.Sleep under a justified suppression.
//
//lint:ignore ctxprop fixture demonstrates a justified suppression
func sleepy(ctx context.Context) {
	time.Sleep(time.Millisecond)
}

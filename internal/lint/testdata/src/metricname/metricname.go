// Package metricname is a lint fixture: telemetry name cases.
package metricname

import (
	"context"
	"time"

	"darnet/internal/obs"
	"darnet/internal/telemetry"
	"darnet/internal/tsdb"
)

var reg = telemetry.NewRegistry()

var good = telemetry.NewCounter("darnet_fixture_total", "ok")

var badPrefix = telemetry.NewCounter("fixture_total", "no prefix") // want "not darnet_-prefixed snake_case"

var badCase = reg.Gauge("darnet_Fixture", "uppercase") // want "not darnet_-prefixed snake_case"

var badChars = reg.Histogram("darnet_fixture-seconds", "dash", nil) // want "not darnet_-prefixed snake_case"

var badDouble = reg.Counter("darnet__fixture_total", "double underscore") // want "not darnet_-prefixed snake_case"

func computed(name string) *telemetry.Counter {
	return reg.Counter(name, "dynamic") // want "must be a string literal"
}

func concatenated(suffix string) *telemetry.Counter {
	return reg.Counter("darnet_"+suffix, "built at run time") // want "must be a string literal"
}

// constName is a compile-time constant, which is literal enough: the full
// name still appears in the source.
const constName = "darnet_fixture_const_total"

func namedConst() *telemetry.Counter {
	return reg.Counter(constName, "named constant")
}

func spans(ctx context.Context, tr *telemetry.Tracer) {
	root := tr.StartRoot("darnet_fixture_span")
	child := root.StartChild("fixture_child") // want "not darnet_-prefixed snake_case"
	_, staged := tr.StartSpan(ctx, "darnet_fixture_stage")
	_, badStage := tr.StartSpan(ctx, "Bad Stage") // want "not darnet_-prefixed snake_case"
	badStage.End()
	staged.End()
	child.End()
	root.End()
}

func remoteSpans(tr *telemetry.Tracer, rc telemetry.SpanContext) {
	joined := tr.JoinRemote("darnet_fixture_ingest", rc)
	joined.Segment("darnet_stage_wire_transit", time.Now(), time.Millisecond)
	joined.Segment("wire transit", time.Now(), time.Millisecond) // want "not darnet_-prefixed snake_case"
	joined.End()
	bad := tr.JoinRemote("Fixture-Ingest", rc) // want "not darnet_-prefixed snake_case"
	bad.End()
}

func objectives(db *tsdb.DB) []obs.Objective {
	return []obs.Objective{
		obs.LatencyObjective("darnet_fixture_latency", 0.1, "darnet_fixture_seconds.p99", 0.5, db),
		obs.RatioObjective("darnet_fixture_ratio", 0.05, "darnet_fixture_bad_total", "darnet_fixture_total", db),
		obs.RateObjective("darnet_fixture_rate", 1, "darnet_fixture_events_total", 2, db),
		obs.LatencyObjective("fixture_latency", 0.1, "darnet_fixture_seconds.p99", 0.5, db),   // want "not darnet_-prefixed snake_case"
		obs.LatencyObjective("darnet_fixture_latency", 0.1, "darnet_fixture.p42", 0.5, db),    // want "not a darnet_-prefixed history series"
		obs.RatioObjective("darnet_fixture_ratio", 0.05, "bad_total", "darnet_fix_total", db), // want "not a darnet_-prefixed history series"
		obs.RateObjective("darnet_fixture_rate", 1, "darnet_fixture_total.sum ", 2, db),       // want "not a darnet_-prefixed history series"
	}
}

func dynamicSeries(db *tsdb.DB, series string) obs.Objective {
	return obs.RateObjective("darnet_fixture_rate", 1, series, 2, db) // want "must be a string literal"
}

func suppressed() *telemetry.Counter {
	//lint:ignore metricname fixture demonstrates suppression
	return reg.Counter("legacy_total", "grandfathered")
}

var _ = good
var _ = badPrefix
var _ = badCase
var _ = badChars
var _ = badDouble

// Package metricname is a lint fixture: telemetry name cases.
package metricname

import (
	"context"

	"darnet/internal/telemetry"
)

var reg = telemetry.NewRegistry()

var good = telemetry.NewCounter("darnet_fixture_total", "ok")

var badPrefix = telemetry.NewCounter("fixture_total", "no prefix") // want "not darnet_-prefixed snake_case"

var badCase = reg.Gauge("darnet_Fixture", "uppercase") // want "not darnet_-prefixed snake_case"

var badChars = reg.Histogram("darnet_fixture-seconds", "dash", nil) // want "not darnet_-prefixed snake_case"

var badDouble = reg.Counter("darnet__fixture_total", "double underscore") // want "not darnet_-prefixed snake_case"

func computed(name string) *telemetry.Counter {
	return reg.Counter(name, "dynamic") // want "must be a string literal"
}

func concatenated(suffix string) *telemetry.Counter {
	return reg.Counter("darnet_"+suffix, "built at run time") // want "must be a string literal"
}

// constName is a compile-time constant, which is literal enough: the full
// name still appears in the source.
const constName = "darnet_fixture_const_total"

func namedConst() *telemetry.Counter {
	return reg.Counter(constName, "named constant")
}

func spans(ctx context.Context, tr *telemetry.Tracer) {
	root := tr.StartRoot("darnet_fixture_span")
	child := root.StartChild("fixture_child") // want "not darnet_-prefixed snake_case"
	_, staged := tr.StartSpan(ctx, "darnet_fixture_stage")
	_, badStage := tr.StartSpan(ctx, "Bad Stage") // want "not darnet_-prefixed snake_case"
	badStage.End()
	staged.End()
	child.End()
	root.End()
}

func suppressed() *telemetry.Counter {
	//lint:ignore metricname fixture demonstrates suppression
	return reg.Counter("legacy_total", "grandfathered")
}

var _ = good
var _ = badPrefix
var _ = badCase
var _ = badChars
var _ = badDouble

// Package shapecheck is a lint fixture: tensor/nn shape-literal cases.
package shapecheck

import (
	"darnet/internal/nn"
	"darnet/internal/tensor"
)

func productMismatch() *tensor.Tensor {
	return tensor.MustFromSlice([]float64{1, 2, 3}, 2, 2) // want "dims multiply to 4 but the data literal has 3 elements"
}

func productMismatchFromSlice() (*tensor.Tensor, error) {
	return tensor.FromSlice([]float64{1, 2}, 3) // want "dims multiply to 3 but the data literal has 2 elements"
}

func negativeDim() *tensor.Tensor {
	return tensor.New(3, -1) // want "dimension -1 is negative"
}

func productCompliant() *tensor.Tensor {
	return tensor.MustFromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
}

func groupMismatch() *nn.BatchNorm {
	return nn.NewBatchNorm("bn", 10, 3) // want "width 10 is not divisible into 3 groups"
}

func groupsCompliant() *nn.BatchNorm {
	return nn.NewBatchNorm("bn", 12, 3)
}

func dynamicShapesSkipped(data []float64, dims []int) (*tensor.Tensor, error) {
	return tensor.FromSlice(data, dims...)
}

func suppressed() *tensor.Tensor {
	//lint:ignore shapecheck fixture demonstrates suppression
	return tensor.MustFromSlice([]float64{1, 2, 3}, 4)
}

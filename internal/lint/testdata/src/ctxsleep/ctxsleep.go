// Package ctxsleep is a lint fixture: uncancellable sleep cases.
package ctxsleep

import "time"

func uncancellable() {
	time.Sleep(time.Millisecond) // want "time.Sleep is uncancellable"
}

func tickerCompliant(stop chan struct{}) {
	t := time.NewTicker(time.Millisecond)
	defer t.Stop()
	select {
	case <-t.C:
	case <-stop:
	}
}

func timerCompliant(stop chan struct{}) bool {
	t := time.NewTimer(time.Millisecond)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-stop:
		return false
	}
}

func suppressed() {
	//lint:ignore ctxsleep fixture demonstrates suppression
	time.Sleep(time.Millisecond)
}

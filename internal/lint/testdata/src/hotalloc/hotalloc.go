// Package hotalloc exercises the hotalloc analyzer: allocation constructs
// reachable from //lint:hotpath roots are findings; the same constructs off
// the hot path are not.
package hotalloc

import "fmt"

type buf struct {
	data []byte
}

// record is a hot-path root: everything it reaches must be allocation-free.
// Amortized append growth is deliberately allowed.
//
//lint:hotpath
func record(b *buf, v byte) {
	b.data = append(b.data, v)
	stamp(b)
}

// stamp is only a finding because record reaches it.
func stamp(b *buf) {
	b.data = make([]byte, 0, 8) // want "make allocates on a hot path"
}

// describe formats on the hot path.
//
//lint:hotpath
func describe(b *buf) string {
	return fmt.Sprintf("%d bytes", len(b.data)) // want "fmt.Sprintf call allocates on a hot path"
}

// box passes a non-pointer-shaped value to an interface parameter.
//
//lint:hotpath
func box(b *buf) {
	sink(len(b.data)) // want "interface boxing of int allocates on a hot path"
}

func sink(v any) { _ = v }

// spawnHot creates a closure on the hot path.
//
//lint:hotpath
func spawnHot() func() {
	return func() {} // want "closure allocates on a hot path"
}

// coldAlloc uses the same constructs but is unreachable from any root: no
// findings.
func coldAlloc() []int {
	out := make([]int, 4)
	_ = fmt.Sprintf("%d", len(out))
	return out
}

// Package loadstdlib verifies that type-checking resolves stdlib imports —
// including packages outside the module's own dependency graph, which the
// loader must fetch export data for lazily — without building them from
// source.
package loadstdlib

import (
	"container/list"
	"encoding/json"
	"net/url"
)

type payload struct {
	Name string `json:"name"`
}

func roundTrip(p payload) (payload, error) {
	data, err := json.Marshal(p)
	if err != nil {
		return payload{}, err
	}
	var out payload
	if err := json.Unmarshal(data, &out); err != nil {
		return payload{}, err
	}
	return out, nil
}

func hostOf(raw string) (string, error) {
	u, err := url.Parse(raw)
	if err != nil {
		return "", err
	}
	return u.Host, nil
}

func enqueue(vals []int) *list.List {
	l := list.New()
	for _, v := range vals {
		l.PushBack(v)
	}
	return l
}

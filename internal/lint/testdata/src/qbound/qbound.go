// Package qbound is the fixture for the bounded-queue invariant analyzer:
// //lint:bounded names a type's occupancy field, and every grow of that
// field must be guarded by a capacity check (before, or — for slices and
// maps — a trim after on every path), with CAS admissions settling their
// slot on every path to return.
package qbound

import "sync/atomic"

// Pipe is the CAS-admission queue shape: depth counts occupancy, the CAS
// admits, the channel send commits.
//
//lint:bounded depth
type Pipe struct {
	depth atomic.Int64
	queue chan int
	max   int64
}

// Offer is the correct admission loop: check dominates the CAS, and the
// admitted slot is either committed (send) or released (Add(-1)).
func (p *Pipe) Offer(v int) bool {
	for {
		d := p.depth.Load()
		if d >= p.max {
			return false
		}
		if p.depth.CompareAndSwap(d, d+1) {
			break
		}
	}
	select {
	case p.queue <- v:
		return true
	default:
		p.depth.Add(-1)
		return false
	}
}

// BadOffer deleted the capacity check: the CAS admits unconditionally.
func (p *Pipe) BadOffer(v int) bool {
	for {
		d := p.depth.Load()
		if p.depth.CompareAndSwap(d, d+1) { // want "not dominated by a capacity check"
			break
		}
	}
	select {
	case p.queue <- v:
		return true
	default:
		p.depth.Add(-1)
		return false
	}
}

// LeakyOffer admits correctly but can return without the send or the
// release: the slot leaks and the queue's effective capacity shrinks
// forever.
func (p *Pipe) LeakyOffer(v int, degraded bool) bool {
	for {
		d := p.depth.Load()
		if d >= p.max {
			return false
		}
		if p.depth.CompareAndSwap(d, d+1) { // want "can reach return without committing the slot or releasing it"
			break
		}
	}
	if degraded {
		return false
	}
	p.queue <- v
	return true
}

// Drain is the release side: decrements need no guard.
func (p *Pipe) Drain() (int, bool) {
	select {
	case v := <-p.queue:
		p.depth.Add(-1)
		return v, true
	default:
		return 0, false
	}
}

// Spill is the slice shape: append then clamp.
//
//lint:bounded buf
type Spill struct {
	buf []int
	max int
}

// Keep trims after the append on every path: the bound holds at return.
func (s *Spill) Keep(v int) {
	s.buf = append(s.buf, v)
	if len(s.buf) > s.max {
		s.buf = s.buf[1:]
	}
}

// KeepChecked checks before instead: also fine.
func (s *Spill) KeepChecked(v int) bool {
	if len(s.buf) >= s.max {
		return false
	}
	s.buf = append(s.buf, v)
	return true
}

// BadKeep grows with neither a check before nor a trim after.
func (s *Spill) BadKeep(v int) {
	s.buf = append(s.buf, v) // want "no capacity check before it and no trim"
}

// LeakyKeep trims on one path but returns early on another.
func (s *Spill) LeakyKeep(v int, urgent bool) {
	s.buf = append(s.buf, v) // want "no capacity check before it and no trim"
	if urgent {
		return
	}
	if len(s.buf) > s.max {
		s.buf = s.buf[1:]
	}
}

// Series is the map shape: size check dominates the insert.
//
//lint:bounded set
type Series struct {
	set map[string]struct{}
	max int
}

func (t *Series) Insert(k string) bool {
	if t.max > 0 && len(t.set) >= t.max {
		return false
	}
	if _, ok := t.set[k]; !ok {
		t.set[k] = struct{}{}
	}
	return true
}

func (t *Series) BadInsert(k string) {
	t.set[k] = struct{}{} // want "no capacity check before"
}

// Ring stays clean: the trim is spelled as a re-slice through append's
// first argument, which is a shrink, not a grow.
//
//lint:bounded ring
type Ring struct {
	ring []int
	max  int
}

func (r *Ring) Push(v int) {
	r.ring = append(r.ring, v)
	if over := len(r.ring) - r.max; over > 0 {
		r.ring = append(r.ring[:0], r.ring[over:]...)
	}
}

// Busted directives are findings, not silent no-ops.
//
//lint:bounded nosuch
type Mislabeled struct { // want "names field \"nosuch\", which Mislabeled does not have"
	n int
}

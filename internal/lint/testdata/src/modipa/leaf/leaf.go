// Package leaf is the bottom of the modipa fixture tree (root -> mid ->
// leaf). The facts recorded here — a forever-blocking wait, an allocation,
// a lock-order edge — surface as findings one or two packages up only when
// the module analysis links serialized summaries across package boundaries.
package leaf

import "sync"

// Table is a lock identity shared by type name with the root package's
// Table: the type-level naming is what unifies order edges across packages.
type Table struct{ mu sync.Mutex }

// Index is the second lock of the cross-package ABBA pair.
type Index struct{ mu sync.Mutex }

// LockIndexThenTable records the Index.mu -> Table.mu order edge that the
// root package reverses.
func LockIndexThenTable(ix *Index, t *Table) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	t.mu.Lock()
	t.mu.Unlock()
}

// LockIndex briefly acquires only the index lock.
func LockIndex(ix *Index) {
	ix.mu.Lock()
	ix.mu.Unlock()
}

var forever chan struct{}

// WaitForever parks on a channel nobody ever sends to or closes.
func WaitForever() {
	<-forever
}

// Grow allocates a fresh buffer on every call.
func Grow() []byte {
	return make([]byte, 512)
}

// Scratch allocates a documented startup-only buffer. The ignore directive
// is honored at summary export: callers never see this site, so the
// justification does not resurface as a finding in dependent packages.
func Scratch() []byte {
	//lint:ignore hotalloc one-time warmup buffer, measured at startup
	return make([]byte, 4096)
}

var warm [256]byte

// Buffer returns a preallocated scratch slice; the alloc-mutation test
// rewrites its body into a fresh make and expects module-linked hotalloc to
// catch it two packages up.
func Buffer() []byte {
	return warm[:]
}

// Package mid relays leaf facts upward: its exported summaries fold leaf's,
// so the root package observes leaf's behavior at one remove — the shape the
// transitive linking has to get right.
package mid

import (
	"darnet/internal/lintfixture/modipa/leaf"
	"darnet/internal/tensor"
)

// Refill allocates by calling into leaf.
func Refill() []byte {
	return leaf.Grow()
}

// Warm relays leaf's justified allocation; leaf's export already filtered
// the site, so this function's summary is allocation-free.
func Warm() []byte {
	return leaf.Scratch()
}

// Fetch relays leaf's preallocated buffer (clean until mutated by the test).
func Fetch() []byte {
	return leaf.Buffer()
}

// Watch blocks forever by calling into leaf.
func Watch() {
	leaf.WaitForever()
}

// Embed returns an (n, 64) lookup table; the constant width travels to
// callers in the serialized shape-transfer summary.
func Embed(n int) *tensor.Tensor {
	return tensor.New(n, 64)
}

// Package root sits two imports above leaf. Every finding in this file
// requires the module-linked summaries (TestModuleLinkedFindings asserts
// they appear) and vanishes under per-package analysis
// (TestModuleFindingsVanishPerPackage asserts they do not).
package root

import (
	"sync"

	"darnet/internal/lintfixture/modipa/leaf"
	"darnet/internal/lintfixture/modipa/mid"
	"darnet/internal/tensor"
)

// Table shares its lock identity with leaf.Table.
type Table struct{ mu sync.Mutex }

// Refresh acquires Table.mu and then, through leaf, Index.mu — the reverse
// of the order leaf records. Module-linked lockorder reports the cycle here,
// noting the reversing edge lives in a dependency package.
func Refresh(t *Table, ix *leaf.Index) {
	t.mu.Lock()
	defer t.mu.Unlock()
	leaf.LockIndex(ix) // module finding: lockorder ABBA via dependency edge
}

// Monitor spawns a watcher that can never wake up; the forever fact arrives
// through mid's serialized summary.
func Monitor() {
	go mid.Watch() // module finding: goleak through two packages
}

// Encode is the hot root: the only allocation on its path lives two
// packages down, in leaf.Grow.
//
//lint:hotpath
func Encode() {
	_ = mid.Refill() // module finding: hotalloc folded through mid
}

// EncodeWarm stays silent even module-linked: leaf justified the allocation
// with //lint:ignore hotalloc, and the export filter keeps it out of the
// summaries callers fold.
//
//lint:hotpath
func EncodeWarm() {
	_ = mid.Warm()
}

// Pack stays silent as written (leaf.Buffer reuses a preallocated array);
// the alloc-mutation test seeds a make into leaf and expects the finding to
// surface here, two packages above it.
//
//lint:hotpath
func Pack() {
	_ = mid.Fetch()
}

// Project multiplies an embedding against a projection whose width cannot
// match — provable only with mid.Embed's serialized shape transfer.
func Project() *tensor.Tensor {
	w := tensor.New(32, 10)
	return tensor.MustMatMul(mid.Embed(8), w) // module finding: shapeflow 64 vs 32
}

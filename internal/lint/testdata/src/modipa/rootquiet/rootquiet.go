// Package rootquiet mirrors root with every cross-package finding justified
// by a //lint:ignore directive at the reporting site: module-linked analysis
// must honor the suppressions and stay silent over this package.
package rootquiet

import (
	"sync"

	"darnet/internal/lintfixture/modipa/leaf"
	"darnet/internal/lintfixture/modipa/mid"
)

// Table shares its lock identity with leaf.Table, as in package root.
type Table struct{ mu sync.Mutex }

// Refresh nests the locks against leaf's recorded order, with the cycle
// report suppressed at its anchor (the earliest local edge).
func Refresh(t *Table, ix *leaf.Index) {
	t.mu.Lock()
	defer t.mu.Unlock()
	//lint:ignore lockorder leaf.LockIndex never takes Table.mu; nesting documented
	leaf.LockIndex(ix)
}

// Monitor documents why its watcher may park forever.
func Monitor() {
	//lint:ignore goleak watcher parks until process exit by design
	go mid.Watch()
}

// Encode justifies the allocation folded through mid.
//
//lint:hotpath
func Encode() {
	//lint:ignore hotalloc startup-only refill, measured cold
	_ = mid.Refill()
}

// Package globalrand is a lint fixture: global math/rand cases.
package globalrand

import "math/rand"

func globalDraw() float64 {
	return rand.Float64() // want "global math/rand.Float64"
}

func globalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { // want "global math/rand.Shuffle"
		xs[i], xs[j] = xs[j], xs[i]
	})
}

func injectedCompliant(rng *rand.Rand) float64 {
	return rng.Float64()
}

func constructorsAllowed(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

func suppressed() int {
	//lint:ignore globalrand fixture demonstrates suppression
	return rand.Intn(10)
}

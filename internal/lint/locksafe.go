package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Locksafe reports functions that acquire a sync.Mutex or sync.RWMutex and
// can reach a return (or fall off the end of the function) with the lock
// still held and no deferred unlock registered. DarNet's controller, clock,
// frame store, and tsdb are all lock-guarded hot paths serving concurrent
// agent connections; a leaked lock deadlocks the whole collection plane.
//
// The check is a conservative, path-insensitive walk: branch bodies are
// analyzed with a copy of the lock state, so unlock-and-return inside a
// branch is fine, as is lock/unlock in straight line. Genuinely intentional
// cross-function locking must carry a //lint:ignore locksafe directive.
var Locksafe = &Analyzer{
	Name: "locksafe",
	Doc:  "a mutex lock must be released on every return path or deferred",
	Run:  runLocksafe,
}

func runLocksafe(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					checkLockBody(pass, n.Body)
				}
			case *ast.FuncLit:
				// Each literal (goroutine body, handler) is its own function
				// with its own defer stack and lock state.
				checkLockBody(pass, n.Body)
			}
			return true
		})
	}
}

func checkLockBody(pass *Pass, body *ast.BlockStmt) {
	w := &lockWalker{pass: pass, deferred: make(map[string]bool)}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // analyzed independently by runLocksafe
		case *ast.DeferStmt:
			w.markDeferred(n)
		}
		return true
	})
	held := w.block(body.List, make(map[string]token.Pos))
	w.checkEnd(body, held)
}

type lockOpKind int

const (
	opLock lockOpKind = iota
	opUnlock
)

type lockWalker struct {
	pass     *Pass
	deferred map[string]bool
}

// lockOp classifies a call as Lock/RLock or Unlock/RUnlock on a sync mutex
// and returns the textual receiver (e.g. "c.mu") as the lock identity.
func (w *lockWalker) lockOp(call *ast.CallExpr) (name string, op lockOpKind, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", 0, false
	}
	fn, isFn := w.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !isFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", 0, false
	}
	switch fn.Name() {
	case "Lock", "RLock":
		op = opLock
	case "Unlock", "RUnlock":
		op = opUnlock
	default:
		return "", 0, false
	}
	return types.ExprString(sel.X), op, true
}

// markDeferred records the unlocks a defer statement guarantees, including
// the defer func() { mu.Unlock() }() form.
func (w *lockWalker) markDeferred(d *ast.DeferStmt) {
	if name, op, ok := w.lockOp(d.Call); ok && op == opUnlock {
		w.deferred[name] = true
		return
	}
	lit, ok := d.Call.Fun.(*ast.FuncLit)
	if !ok {
		return
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if name, op, ok := w.lockOp(call); ok && op == opUnlock {
				w.deferred[name] = true
			}
		}
		return true
	})
}

// block walks a statement list, tracking which locks are held on the
// fall-through path. Branch bodies get a copy of the state: acquisitions and
// releases inside a branch do not leak out, which keeps the check
// conservative without a full CFG.
func (w *lockWalker) block(stmts []ast.Stmt, held map[string]token.Pos) map[string]token.Pos {
	branch := func(body *ast.BlockStmt) {
		if body != nil {
			w.block(body.List, copyHeld(held))
		}
	}
	for _, s := range stmts {
		switch s := s.(type) {
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok {
				if name, op, ok := w.lockOp(call); ok {
					if op == opLock {
						held[name] = s.Pos()
					} else {
						delete(held, name)
					}
				}
			}
		case *ast.ReturnStmt:
			for name := range held {
				if !w.deferred[name] {
					w.pass.Reportf(s.Pos(), "return with %s still locked and no deferred unlock", name)
				}
			}
		case *ast.IfStmt:
			branch(s.Body)
			switch e := s.Else.(type) {
			case *ast.BlockStmt:
				w.block(e.List, copyHeld(held))
			case *ast.IfStmt:
				w.block([]ast.Stmt{e}, copyHeld(held))
			}
		case *ast.ForStmt:
			branch(s.Body)
		case *ast.RangeStmt:
			branch(s.Body)
		case *ast.SwitchStmt:
			branch(s.Body)
		case *ast.TypeSwitchStmt:
			branch(s.Body)
		case *ast.SelectStmt:
			branch(s.Body)
		case *ast.CaseClause:
			w.block(s.Body, copyHeld(held))
		case *ast.CommClause:
			w.block(s.Body, copyHeld(held))
		case *ast.BlockStmt:
			held = w.block(s.List, held)
		case *ast.LabeledStmt:
			held = w.block([]ast.Stmt{s.Stmt}, held)
		}
	}
	return held
}

// checkEnd reports locks still held when control falls off the end of a
// body, unless the final statement cannot fall through (returns are handled
// in block; panics and condition-less for loops terminate without falling
// through).
func (w *lockWalker) checkEnd(body *ast.BlockStmt, held map[string]token.Pos) {
	if len(body.List) > 0 {
		switch last := body.List[len(body.List)-1].(type) {
		case *ast.ReturnStmt:
			return
		case *ast.ForStmt:
			if last.Cond == nil {
				return
			}
		case *ast.ExprStmt:
			if call, ok := last.X.(*ast.CallExpr); ok {
				if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
					return
				}
			}
		}
	}
	for name, pos := range held {
		if !w.deferred[name] {
			w.pass.Reportf(pos, "%s is locked here but the function can exit without unlocking it", name)
		}
	}
}

func copyHeld(m map[string]token.Pos) map[string]token.Pos {
	out := make(map[string]token.Pos, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

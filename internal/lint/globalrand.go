package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// Globalrand reports calls to package-level math/rand functions (rand.Intn,
// rand.Float64, rand.Shuffle, ...) inside internal/ packages. DarNet's
// synthetic data generation and weight initialization must be reproducible:
// every internal component takes an injected, seeded *rand.Rand (as
// internal/synth and internal/nn already do), so classification results and
// gradient checks are bit-for-bit repeatable. The global source is shared,
// lock-contended, and unseeded — three properties an inference middleware
// cannot afford.
//
// Constructors (rand.New, rand.NewSource, rand.NewZipf) are exactly how an
// injected RNG is built and stay allowed.
var Globalrand = &Analyzer{
	Name: "globalrand",
	Doc:  "internal/ code must use an injected *rand.Rand, not the global math/rand source",
	Run:  runGlobalrand,
}

func runGlobalrand(pass *Pass) {
	if !pass.InInternal() {
		return
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			switch fn.Pkg().Path() {
			case "math/rand", "math/rand/v2":
			default:
				return true
			}
			if fn.Type().(*types.Signature).Recv() != nil {
				return true // method on an injected *rand.Rand
			}
			if strings.HasPrefix(fn.Name(), "New") {
				return true // constructing an injected RNG
			}
			pass.Reportf(call.Pos(), "global math/rand.%s breaks deterministic inference; inject a seeded *rand.Rand", fn.Name())
			return true
		})
	}
}

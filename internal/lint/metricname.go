package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"

	"darnet/internal/telemetry"
)

// Metricname verifies the names handed to telemetry registration, span
// creation, and SLO objective construction: they must be compile-time string
// constants (so the ops endpoint's metric inventory is greppable) and valid
// per telemetry.ValidName — snake_case with a darnet_ prefix. Registration
// panics on a bad name at startup; this rule fails it at review time, and
// catches span names, which are never validated at run time because span
// start is a hot path. SLO objectives additionally reference scraped history
// series, which may carry a histogram sub-series suffix (.p99 etc.) and are
// checked with telemetry.ValidHistorySeries — a typo there silently yields
// an objective that never sees data.
//
// The telemetry and obs packages themselves are exempt: their
// implementations and tests construct arbitrary names to exercise the
// validators.
var Metricname = &Analyzer{
	Name: "metricname",
	Doc:  "telemetry metric, span, and SLO series names must be literal darnet_-prefixed snake_case strings",
	Run:  runMetricname,
}

// nameArgs records which arguments of a name-taking function hold plain
// metric/span names and which hold metric-history series references (plain
// name plus an optional scrape suffix).
type nameArgs struct {
	names   []int
	history []int
}

// nameTakers maps the defining package (by path suffix) to its functions
// that accept telemetry names.
var nameTakers = map[string]map[string]nameArgs{
	"internal/telemetry": {
		"NewCounter":   {names: []int{0}},
		"NewGauge":     {names: []int{0}},
		"NewHistogram": {names: []int{0}},
		"Counter":      {names: []int{0}}, // Registry.Counter
		"Gauge":        {names: []int{0}}, // Registry.Gauge
		"Histogram":    {names: []int{0}}, // Registry.Histogram
		"StartRoot":    {names: []int{0}}, // Tracer.StartRoot
		"StartChild":   {names: []int{0}}, // Span.StartChild
		"StartSpan":    {names: []int{1}}, // Tracer.StartSpan(ctx, name)
		"JoinRemote":   {names: []int{0}}, // Tracer.JoinRemote(name, remoteCtx)
		"Segment":      {names: []int{0}}, // Span.Segment
	},
	"internal/obs": {
		"LatencyObjective": {names: []int{0}, history: []int{2}},
		"RatioObjective":   {names: []int{0}, history: []int{2, 3}},
		"RateObjective":    {names: []int{0}, history: []int{2}},
	},
}

func runMetricname(pass *Pass) {
	if strings.HasSuffix(pass.PkgPath, "internal/telemetry") || strings.HasSuffix(pass.PkgPath, "internal/obs") {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			var args nameArgs
			found := false
			for pkgSuffix, fns := range nameTakers {
				if strings.HasSuffix(fn.Pkg().Path(), pkgSuffix) {
					args, found = fns[fn.Name()]
					break
				}
			}
			if !found {
				return true
			}
			for _, idx := range args.names {
				checkNameArg(pass, call, fn, idx, telemetry.ValidName,
					"is not darnet_-prefixed snake_case")
			}
			for _, idx := range args.history {
				checkNameArg(pass, call, fn, idx, telemetry.ValidHistorySeries,
					"is not a darnet_-prefixed history series (optional .p50/.p90/.p99/.count/.sum suffix)")
			}
			return true
		})
	}
}

// checkNameArg reports when the idx-th argument of call is not a string
// constant, or is one that fails valid.
func checkNameArg(pass *Pass, call *ast.CallExpr, fn *types.Func, idx int, valid func(string) bool, msg string) {
	if len(call.Args) <= idx {
		return
	}
	arg := call.Args[idx]
	tv, ok := pass.TypesInfo.Types[arg]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		pass.Reportf(arg.Pos(), "%s.%s name must be a string literal, not a computed value", pkgShort(fn), fn.Name())
		return
	}
	if name := constant.StringVal(tv.Value); !valid(name) {
		pass.Reportf(arg.Pos(), "telemetry name %q %s", name, msg)
	}
}

// pkgShort is the defining package's base name, for diagnostics.
func pkgShort(fn *types.Func) string {
	path := fn.Pkg().Path()
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

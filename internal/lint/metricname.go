package lint

import (
	"go/ast"
	"go/constant"
	"strings"

	"darnet/internal/telemetry"
)

// Metricname verifies the names handed to telemetry registration and span
// creation: they must be compile-time string constants (so the ops
// endpoint's metric inventory is greppable) and valid per
// telemetry.ValidName — snake_case with a darnet_ prefix. Registration
// panics on a bad name at startup; this rule fails it at review time, and
// catches span names, which are never validated at run time because span
// start is a hot path.
//
// The telemetry package itself is exempt: its implementation and tests
// construct arbitrary names to exercise the validator.
var Metricname = &Analyzer{
	Name: "metricname",
	Doc:  "telemetry metric and span names must be literal darnet_-prefixed snake_case strings",
	Run:  runMetricname,
}

// metricNameArg maps telemetry name-taking functions to the index of the
// name argument.
var metricNameArg = map[string]int{
	"NewCounter":   0,
	"NewGauge":     0,
	"NewHistogram": 0,
	"Counter":      0, // Registry.Counter
	"Gauge":        0, // Registry.Gauge
	"Histogram":    0, // Registry.Histogram
	"StartRoot":    0, // Tracer.StartRoot
	"StartChild":   0, // Span.StartChild
	"StartSpan":    1, // Tracer.StartSpan(ctx, name)
}

func runMetricname(pass *Pass) {
	if strings.HasSuffix(pass.PkgPath, "internal/telemetry") {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil || !strings.HasSuffix(fn.Pkg().Path(), "internal/telemetry") {
				return true
			}
			idx, ok := metricNameArg[fn.Name()]
			if !ok || len(call.Args) <= idx {
				return true
			}
			arg := call.Args[idx]
			tv, ok := pass.TypesInfo.Types[arg]
			if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
				pass.Reportf(arg.Pos(), "telemetry.%s name must be a string literal, not a computed value", fn.Name())
				return true
			}
			if name := constant.StringVal(tv.Value); !telemetry.ValidName(name) {
				pass.Reportf(arg.Pos(), "telemetry name %q is not darnet_-prefixed snake_case", name)
			}
			return true
		})
	}
}

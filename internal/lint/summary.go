package lint

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file computes bottom-up function summaries over the call graph: a
// small monotone lattice of facts per function (may block, may block
// forever, allocation sites, locks acquired, context usage) propagated to a
// fixpoint, plus a second flow pass deriving lock-acquisition-order pairs
// once transitive acquire sets are stable. The four whole-program analyzers
// are thin views over these summaries.

// IPA is one package's interprocedural analysis state: the call graph and a
// summary per function node, shared by every whole-program analyzer of a
// Run via Pass.IPA.
type IPA struct {
	Pkg   *Package
	Graph *CallGraph

	// shape is the lazily-built shapeflow engine (shapeflow.go), shared so
	// the analyzer and summary export analyze each function once.
	shape *shapeEngine

	// flows memoizes per-function flow graphs (cfg.go), the IR every
	// flow-sensitive analyzer and summary export shares.
	flows map[*FuncNode]*FlowGraph

	// chans is the lazily-built chanlife engine (chanlife.go); atoms the
	// package's atomic/plain access census (atomicmix.go).
	chans *chanEngine
	atoms *atomicCensus
}

func buildIPA(pkg *Package) *IPA {
	g := buildCallGraph(pkg)
	for _, n := range g.Nodes {
		n.summary = gatherFacts(pkg, g, n)
	}
	propagate(g)
	for _, n := range g.Nodes {
		computePairs(pkg, g, n)
	}
	return &IPA{Pkg: pkg, Graph: g}
}

// Summary returns the node's computed summary.
func (n *FuncNode) Summary() *Summary { return n.summary }

// Site is one fact-bearing source location ("channel receive", "make", ...).
type Site struct {
	Pos  token.Pos
	What string
}

// Summary is the per-function fact lattice. The Sites slices hold the
// function's own facts; the booleans and Acquires/Pairs fold in callees.
type Summary struct {
	// ForeverSites are operations that can block this goroutine forever
	// with no cancellation or close path: bare channel sends, receives
	// without a comma-ok, single-case selects, select{}, sync.Cond.Wait,
	// sync.WaitGroup.Wait.
	ForeverSites []Site
	// BlockSites are operations that can block at all (superset intent:
	// also lock acquisition, selects without default, range over a
	// channel, time.Sleep).
	BlockSites []Site
	// AllocSites are this function's own heap-allocating constructs, the
	// currency of the hotalloc analyzer.
	AllocSites []Site
	// OwnLocks maps lock identities this function itself acquires to the
	// first acquisition position.
	OwnLocks map[string]token.Pos
	// Acquires is OwnLocks plus every lock reachable callees acquire.
	Acquires map[string]token.Pos
	// Pairs records lock-order edges: key[0] was held while key[1] was
	// acquired (directly or inside a callee) at the recorded position.
	Pairs map[[2]string]token.Pos

	// BlocksForever / Blocks are the transitive closures of the site
	// lists. ForeverWhat/ForeverPos describe a representative ultimate
	// site for reporting; ForeverVia names the direct callee the fact
	// arrived through ("" when the site is the function's own).
	BlocksForever bool
	ForeverWhat   string
	ForeverPos    token.Pos
	ForeverVia    string
	Blocks        bool

	// CtxParams are the function's named context.Context parameters;
	// UsesCtx reports whether any of them is referenced in the body
	// (including by nested literals).
	CtxParams []*types.Var
	UsesCtx   bool
}

// gatherFacts collects a node's own facts with one syntactic walk. Nested
// function literals are separate nodes and are skipped, except that the
// literal expression itself is an allocation in the encloser.
func gatherFacts(pkg *Package, g *CallGraph, n *FuncNode) *Summary {
	s := &Summary{
		OwnLocks: make(map[string]token.Pos),
		Acquires: make(map[string]token.Pos),
		Pairs:    make(map[[2]string]token.Pos),
	}
	exempt := collectChanExemptions(pkg, n.Body)
	addressed := make(map[*ast.CompositeLit]bool)
	ast.Inspect(n.Body, func(node ast.Node) bool {
		switch x := node.(type) {
		case *ast.FuncLit:
			if x != n.Lit {
				s.AllocSites = append(s.AllocSites, Site{x.Pos(), "closure"})
				return false
			}
		case *ast.GoStmt:
			// The spawned goroutine's facts belong to its own node; the
			// spawn itself allocates.
			s.AllocSites = append(s.AllocSites, Site{x.Pos(), "goroutine spawn"})
			for _, arg := range x.Call.Args {
				gatherExprFacts(pkg, s, exempt, arg)
			}
			return false
		case *ast.SelectStmt:
			gatherSelectFacts(s, x)
		case *ast.SendStmt:
			if !exempt[node] {
				s.ForeverSites = append(s.ForeverSites, Site{x.Pos(), "channel send"})
				s.BlockSites = append(s.BlockSites, Site{x.Pos(), "channel send"})
			}
		case *ast.UnaryExpr:
			switch x.Op {
			case token.ARROW:
				if exempt[node] {
					s.BlockSites = append(s.BlockSites, Site{x.Pos(), "channel receive"})
				} else {
					s.ForeverSites = append(s.ForeverSites, Site{x.Pos(), "channel receive"})
					s.BlockSites = append(s.BlockSites, Site{x.Pos(), "channel receive"})
				}
			case token.AND:
				if cl, ok := ast.Unparen(x.X).(*ast.CompositeLit); ok {
					addressed[cl] = true
					s.AllocSites = append(s.AllocSites, Site{x.Pos(), "composite literal allocation"})
				}
			}
		case *ast.CompositeLit:
			if addressed[x] {
				break
			}
			if tv, ok := pkg.Info.Types[x]; ok {
				switch tv.Type.Underlying().(type) {
				case *types.Slice:
					s.AllocSites = append(s.AllocSites, Site{x.Pos(), "slice literal"})
				case *types.Map:
					s.AllocSites = append(s.AllocSites, Site{x.Pos(), "map literal"})
				}
			}
		case *ast.RangeStmt:
			if tv, ok := pkg.Info.Types[x.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					// Terminates when the channel closes: a close path, so
					// blocking but not forever-blocking.
					s.BlockSites = append(s.BlockSites, Site{x.Pos(), "range over channel"})
				}
			}
		case *ast.CallExpr:
			gatherCallFacts(pkg, s, x)
		}
		return true
	})
	gatherCtxFacts(pkg, n, s)
	for id, pos := range s.OwnLocks {
		s.Acquires[id] = pos
	}
	return s
}

// gatherExprFacts records channel/call facts inside one expression (used for
// spawn arguments, which are evaluated by the spawner).
func gatherExprFacts(pkg *Package, s *Summary, exempt map[ast.Node]bool, expr ast.Expr) {
	ast.Inspect(expr, func(node ast.Node) bool {
		switch x := node.(type) {
		case *ast.FuncLit:
			s.AllocSites = append(s.AllocSites, Site{x.Pos(), "closure"})
			return false
		case *ast.UnaryExpr:
			if x.Op == token.ARROW && !exempt[node] {
				s.ForeverSites = append(s.ForeverSites, Site{x.Pos(), "channel receive"})
				s.BlockSites = append(s.BlockSites, Site{x.Pos(), "channel receive"})
			}
		case *ast.CallExpr:
			gatherCallFacts(pkg, s, x)
		}
		return true
	})
}

// gatherSelectFacts classifies a select statement. Its comm clauses were
// exempted from the generic send/receive rules by collectChanExemptions.
func gatherSelectFacts(s *Summary, sel *ast.SelectStmt) {
	cases, hasDefault := 0, false
	for _, c := range sel.Body.List {
		if cc, ok := c.(*ast.CommClause); ok {
			if cc.Comm == nil {
				hasDefault = true
			} else {
				cases++
			}
		}
	}
	switch {
	case cases == 0 && !hasDefault:
		s.ForeverSites = append(s.ForeverSites, Site{sel.Pos(), "select{}"})
		s.BlockSites = append(s.BlockSites, Site{sel.Pos(), "select{}"})
	case hasDefault:
		// Never blocks.
	case cases == 1:
		s.ForeverSites = append(s.ForeverSites, Site{sel.Pos(), "single-case select"})
		s.BlockSites = append(s.BlockSites, Site{sel.Pos(), "single-case select"})
	default:
		// Two or more ways to wake: the conventional shape of a
		// cancellable wait (one case is a stop/ctx.Done channel). Blocking
		// but not treated as forever-blocking.
		s.BlockSites = append(s.BlockSites, Site{sel.Pos(), "select"})
	}
}

// collectChanExemptions pre-computes the channel operations that have an
// escape path and must not count as forever-blocking: comm clauses of any
// select (the select statement is classified as a whole) and comma-ok
// receives (which observe close).
func collectChanExemptions(pkg *Package, body *ast.BlockStmt) map[ast.Node]bool {
	exempt := make(map[ast.Node]bool)
	markComm := func(comm ast.Stmt) {
		switch c := comm.(type) {
		case *ast.SendStmt:
			exempt[c] = true
		case *ast.ExprStmt:
			if u, ok := ast.Unparen(c.X).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
				exempt[u] = true
			}
		case *ast.AssignStmt:
			if len(c.Rhs) == 1 {
				if u, ok := ast.Unparen(c.Rhs[0]).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
					exempt[u] = true
				}
			}
		}
	}
	ast.Inspect(body, func(node ast.Node) bool {
		switch x := node.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SelectStmt:
			for _, c := range x.Body.List {
				if cc, ok := c.(*ast.CommClause); ok && cc.Comm != nil {
					markComm(cc.Comm)
				}
			}
		case *ast.AssignStmt:
			if len(x.Lhs) == 2 && len(x.Rhs) == 1 {
				if u, ok := ast.Unparen(x.Rhs[0]).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
					exempt[u] = true
				}
			}
		}
		return true
	})
	return exempt
}

// gatherCallFacts classifies one call expression: lock operations, known
// external blockers, and allocation sites (make/new, fmt, conversions that
// copy, interface boxing, variadic argument slices).
func gatherCallFacts(pkg *Package, s *Summary, call *ast.CallExpr) {
	// Builtins and conversions first: they have no *types.Func callee.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := pkg.Info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				s.AllocSites = append(s.AllocSites, Site{call.Pos(), "make"})
			case "new":
				s.AllocSites = append(s.AllocSites, Site{call.Pos(), "new"})
			}
			return
		}
	}
	if tv, ok := pkg.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		switch tv.Type.Underlying().(type) {
		case *types.Slice:
			s.AllocSites = append(s.AllocSites, Site{call.Pos(), "conversion to slice"})
		case *types.Basic:
			if tv.Type.Underlying().(*types.Basic).Info()&types.IsString != 0 {
				if argTV, ok := pkg.Info.Types[call.Args[0]]; ok && !isStringType(argTV.Type) {
					s.AllocSites = append(s.AllocSites, Site{call.Pos(), "conversion to string"})
				}
			}
		}
		return
	}

	if name, kind, ok := mutexOp(pkg.Info, call); ok {
		switch kind {
		case mutexAcquire:
			if _, seen := s.OwnLocks[name]; !seen {
				s.OwnLocks[name] = call.Pos()
			}
			s.BlockSites = append(s.BlockSites, Site{call.Pos(), "lock acquisition"})
		case mutexRelease:
			// Releases matter to the pair walk, not the summary sets.
		}
		return
	}

	fn := calleeFunc(pkg.Info, call)
	if fn != nil && fn.Pkg() != nil {
		switch pkgPath, name := fn.Pkg().Path(), fn.Name(); {
		case pkgPath == "time" && name == "Sleep":
			s.BlockSites = append(s.BlockSites, Site{call.Pos(), "time.Sleep"})
		case pkgPath == "sync" && name == "Wait":
			// WaitGroup.Wait and Cond.Wait both hang forever when the
			// wake-up side is lost.
			s.ForeverSites = append(s.ForeverSites, Site{call.Pos(), "sync " + recvTypeName(fn) + ".Wait"})
			s.BlockSites = append(s.BlockSites, Site{call.Pos(), "sync " + recvTypeName(fn) + ".Wait"})
		case pkgPath == "fmt":
			s.AllocSites = append(s.AllocSites, Site{call.Pos(), "fmt." + name + " call"})
		}
	}
	if pkg.deps != nil {
		if fs := pkg.deps.Lookup(fn); fs != nil {
			foldExternalCall(s, call.Pos(), fs)
		}
	}
	gatherBoxingFacts(pkg, s, call, fn)
}

// foldExternalCall imports an in-module external callee's serialized facts
// into the calling function's own site lists, anchored at the local call
// position (the remote location travels in the message text, since the
// callee's token positions belong to another package's files).
func foldExternalCall(s *Summary, pos token.Pos, fs *FuncSummary) {
	name := shortFuncKey(fs.Key)
	if fs.BlocksForever {
		what := "call to " + name + ": " + fs.ForeverWhat + " at " + fs.ForeverLoc
		s.ForeverSites = append(s.ForeverSites, Site{pos, what})
		s.BlockSites = append(s.BlockSites, Site{pos, what})
	} else if fs.Blocks {
		s.BlockSites = append(s.BlockSites, Site{pos, "call to " + name + " (may block)"})
	}
	if len(fs.Allocs) > 0 {
		what := "call into " + name + " (" + fs.Allocs[0].What + " at " + fs.Allocs[0].Loc
		if extra := len(fs.Allocs) - 1 + fs.AllocsTruncated; extra > 0 {
			what += fmt.Sprintf(", +%d more allocation sites", extra)
		}
		what += ")"
		s.AllocSites = append(s.AllocSites, Site{pos, what})
	}
	for _, a := range fs.Acquires {
		if _, ok := s.Acquires[a.ID]; !ok {
			s.Acquires[a.ID] = pos
		}
	}
}

// gatherBoxingFacts flags interface boxing and variadic slices at a call
// site: a concrete, non-pointer-shaped argument passed to an interface
// parameter heap-allocates its box, and packing variadic arguments
// allocates the backing slice.
func gatherBoxingFacts(pkg *Package, s *Summary, call *ast.CallExpr, fn *types.Func) {
	if fn == nil || fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		return // fmt calls are already reported wholesale
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	if sig.Variadic() && len(call.Args) >= params.Len() && !hasEllipsis(call) {
		if len(call.Args) > params.Len()-1 {
			s.AllocSites = append(s.AllocSites, Site{call.Pos(), "variadic argument slice"})
		}
		// Fixed params still box below.
	}
	for i, arg := range call.Args {
		if i >= params.Len() {
			break
		}
		pt := params.At(i).Type()
		if sig.Variadic() && i == params.Len()-1 {
			break
		}
		if !types.IsInterface(pt) {
			continue
		}
		at, ok := pkg.Info.Types[arg]
		if !ok || at.Type == nil {
			continue
		}
		if types.IsInterface(at.Type) || at.IsNil() {
			continue
		}
		if pointerShaped(at.Type) {
			continue
		}
		s.AllocSites = append(s.AllocSites, Site{arg.Pos(), "interface boxing of " + at.Type.String()})
	}
}

func hasEllipsis(call *ast.CallExpr) bool { return call.Ellipsis.IsValid() }

// pointerShaped reports whether values of t fit an interface word without a
// heap allocation.
func pointerShaped(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return t.Underlying().(*types.Basic).Kind() == types.UnsafePointer
	}
	return false
}

func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// gatherCtxFacts records the function's context.Context parameters and
// whether the body (including nested literals, which capture them) uses any.
func gatherCtxFacts(pkg *Package, n *FuncNode, s *Summary) {
	params := funcParams(n)
	for _, p := range params {
		obj, ok := pkg.Info.Defs[p].(*types.Var)
		if !ok || p.Name == "_" || !isContextType(obj.Type()) {
			continue
		}
		s.CtxParams = append(s.CtxParams, obj)
	}
	if len(s.CtxParams) == 0 {
		return
	}
	want := make(map[types.Object]bool, len(s.CtxParams))
	for _, p := range s.CtxParams {
		want[p] = true
	}
	ast.Inspect(n.Body, func(node ast.Node) bool {
		if id, ok := node.(*ast.Ident); ok && want[pkg.Info.Uses[id]] {
			s.UsesCtx = true
			return false
		}
		return !s.UsesCtx
	})
}

// funcParams returns the parameter name idents of a node's declaration or
// literal.
func funcParams(n *FuncNode) []*ast.Ident {
	var ft *ast.FuncType
	switch {
	case n.Decl != nil:
		ft = n.Decl.Type
	case n.Lit != nil:
		ft = n.Lit.Type
	}
	if ft == nil || ft.Params == nil {
		return nil
	}
	var out []*ast.Ident
	for _, field := range ft.Params.List {
		out = append(out, field.Names...)
	}
	return out
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// recvTypeName renders a method's receiver type name without package
// qualification ("WaitGroup", "Cond").
func recvTypeName(fn *types.Func) string {
	sig := fn.Type().(*types.Signature)
	recv := sig.Recv()
	if recv == nil {
		return ""
	}
	t := recv.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return t.String()
}

// mutexOp classification for the interprocedural passes.
type mutexOpKind int

const (
	mutexAcquire mutexOpKind = iota
	mutexRelease
)

// mutexOp classifies a call as a sync mutex acquire/release and returns the
// lock's type-level identity (see lockIdentity).
func mutexOp(info *types.Info, call *ast.CallExpr) (string, mutexOpKind, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", 0, false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", 0, false
	}
	var kind mutexOpKind
	switch fn.Name() {
	case "Lock", "RLock":
		kind = mutexAcquire
	case "Unlock", "RUnlock":
		kind = mutexRelease
	default:
		return "", 0, false
	}
	return lockIdentity(info, sel.X), kind, true
}

// lockIdentity names a lock at the type level so acquisitions through
// different variables of the same type unify: "Controller.mu" for a field
// on any *Controller receiver or variable, "registryMu" for a package-level
// mutex var, falling back to the expression text.
func lockIdentity(info *types.Info, expr ast.Expr) string {
	var parts []string
	e := ast.Unparen(expr)
	for {
		switch x := e.(type) {
		case *ast.SelectorExpr:
			parts = append(parts, "")
			copy(parts[1:], parts)
			parts[0] = x.Sel.Name
			e = ast.Unparen(x.X)
		case *ast.Ident:
			obj := info.Uses[x]
			if obj == nil {
				obj = info.Defs[x]
			}
			root := x.Name
			if v, ok := obj.(*types.Var); ok {
				if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
					root = v.Name() // package-level var: identity is the var itself
				} else if name := namedTypeName(v.Type()); name != "" {
					root = name
				}
			}
			return root + suffixPath(parts)
		default:
			return types.ExprString(expr)
		}
	}
}

func suffixPath(parts []string) string {
	if len(parts) == 0 {
		return ""
	}
	return "." + strings.Join(parts, ".")
}

// namedTypeName returns the named type of t (through one pointer), or "".
func namedTypeName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

// --- Serialized summaries (the cross-package linking currency) --------------
//
// A package's analysis exports one FuncSummary per declared function, keyed
// by object path ("darnet/internal/wire.(*Conn).Send"). The summaries are
// position-independent — source locations are carried as short "file.go:42"
// strings — so they serialize, and the module analysis links packages by
// decoding the summaries of already-analyzed dependencies rather than by
// sharing AST pointers. That keeps the linking contract narrow and testable:
// EncodeSummaries∘DecodeSummaries is the only channel between packages.

// FuncSummary is the serializable projection of one function's fixpoint
// summary: what callers in other packages need to know, and nothing tied to
// this package's FileSet.
type FuncSummary struct {
	Key string `json:"key"`

	Blocks        bool   `json:"blocks,omitempty"`
	BlocksForever bool   `json:"blocksForever,omitempty"`
	ForeverWhat   string `json:"foreverWhat,omitempty"`
	ForeverLoc    string `json:"foreverLoc,omitempty"`

	// Allocs are the function's transitive allocation sites (its own plus
	// everything reachable through calls, already folded cross-package),
	// filtered of sites justified by //lint:ignore hotalloc directives and
	// capped; AllocsTruncated counts the overflow.
	Allocs          []SiteRef `json:"allocs,omitempty"`
	AllocsTruncated int       `json:"allocsTruncated,omitempty"`

	// Acquires are the lock identities transitively acquired; Pairs the
	// held→acquired order edges (minus //lint:ignore lockorder sites).
	Acquires []LockRef `json:"acquires,omitempty"`
	Pairs    []PairRef `json:"pairs,omitempty"`

	// Shape is the function's shape-transfer summary when its tensor
	// result is derivable from its inputs (see shapeflow.go).
	Shape *ShapeTransfer `json:"shape,omitempty"`

	// ChanOps are the function's proven effects on its channel parameters
	// ("mustclose"/"mayclose"/"maysend" by parameter index), the linking
	// currency of the chanlife analyzer (chanlife.go).
	ChanOps []ChanOpRef `json:"chanOps,omitempty"`

	// AtomicRefs/PlainRefs are the function's sync/atomic and plain
	// accesses to exported atomic-capable identities (atomicmix.go),
	// deduplicated per identity and capped at exportAccessCap.
	AtomicRefs []AccessRef `json:"atomicRefs,omitempty"`
	PlainRefs  []AccessRef `json:"plainRefs,omitempty"`
}

// ChanOpRef is one channel-parameter effect: Op is "mustclose" (closed on
// every modeled path, including by defer), "mayclose" (closed on some
// path), or "maysend" (a send on the parameter exists).
type ChanOpRef struct {
	Op    string `json:"op"`
	Param int    `json:"param"`
	Loc   string `json:"loc"`
}

// AccessRef is one atomic or plain access to a shared identity
// ("pkg/path.Type.field" or "pkg/path.var").
type AccessRef struct {
	ID    string `json:"id"`
	Loc   string `json:"loc"`
	Write bool   `json:"write,omitempty"`
}

// SiteRef is a fact site with its location rendered for cross-package use.
type SiteRef struct {
	What string `json:"what"`
	Loc  string `json:"loc"`
}

// LockRef names one acquired lock identity.
type LockRef struct {
	ID  string `json:"id"`
	Loc string `json:"loc"`
}

// PairRef is one lock-order edge: First was held while Second was acquired.
type PairRef struct {
	First  string `json:"first"`
	Second string `json:"second"`
	Loc    string `json:"loc"`
}

// PkgSummaries is every exported summary of one analyzed package.
type PkgSummaries struct {
	Path  string                  `json:"path"`
	Funcs map[string]*FuncSummary `json:"funcs"`
}

// EncodeSummaries serializes a package's summaries (deterministically:
// maps marshal with sorted keys).
func EncodeSummaries(ps *PkgSummaries) ([]byte, error) {
	return json.Marshal(ps)
}

// DecodeSummaries is the inverse of EncodeSummaries.
func DecodeSummaries(data []byte) (*PkgSummaries, error) {
	ps := &PkgSummaries{}
	if err := json.Unmarshal(data, ps); err != nil {
		return nil, fmt.Errorf("lint: decode summaries: %w", err)
	}
	return ps, nil
}

// FuncKey renders a function object's path-qualified identity, the key
// serialized summaries are linked by: "pkg/path.Name" for functions,
// "pkg/path.(*T).Name" for methods.
func FuncKey(fn *types.Func) string {
	if fn.Pkg() == nil {
		return fn.Name()
	}
	return fn.Pkg().Path() + "." + funcDisplayName(fn)
}

// shortFuncKey trims the key's package path to its last segment for
// readable messages: "wire.(*Conn).Send".
func shortFuncKey(key string) string {
	slash := strings.LastIndexByte(key, '/')
	return key[slash+1:]
}

// exportAllocCap bounds the transitive allocation list carried per function;
// the overflow is summarized as a count.
const exportAllocCap = 8

// ExportSummaries projects a package's fixpoint summaries into the
// serializable form. Allocation sites justified by //lint:ignore hotalloc
// and lock pairs justified by //lint:ignore lockorder are dropped here, so
// a dependency's documented exceptions do not resurface as findings in its
// callers.
func ExportSummaries(pkg *Package) *PkgSummaries {
	ipa := pkg.ipa()
	ig := pkg.ignores()
	ps := &PkgSummaries{Path: pkg.Path, Funcs: make(map[string]*FuncSummary)}
	for _, n := range ipa.Graph.Nodes {
		if n.Fn == nil {
			continue // literals are reachable only through their encloser
		}
		s := n.Summary()
		fs := &FuncSummary{
			Key:           FuncKey(n.Fn),
			Blocks:        s.Blocks,
			BlocksForever: s.BlocksForever,
		}
		if s.BlocksForever {
			fs.ForeverWhat = s.ForeverWhat
			fs.ForeverLoc = shortLoc(pkg.Fset, s.ForeverPos)
		}
		fs.Allocs, fs.AllocsTruncated = transitiveAllocs(pkg, ig, n)
		for _, id := range sortedKeys(s.Acquires) {
			fs.Acquires = append(fs.Acquires, LockRef{ID: id, Loc: shortLoc(pkg.Fset, s.Acquires[id])})
		}
		for _, key := range sortedPairKeys(s.Pairs) {
			pos := s.Pairs[key]
			if ig.suppressed(Diagnostic{Pos: pkg.Fset.Position(pos), Rule: "lockorder"}) {
				continue
			}
			fs.Pairs = append(fs.Pairs, PairRef{First: key[0], Second: key[1], Loc: shortLoc(pkg.Fset, pos)})
		}
		fs.Shape = ipa.shapeEngine().transferFor(n)
		fs.ChanOps = exportChanOps(ipa, n)
		fs.AtomicRefs, fs.PlainRefs = exportAccessRefs(pkg, ig, ipa, n)
		ps.Funcs[fs.Key] = fs
	}
	return ps
}

// exportChanOps projects a function's channel-parameter effects into the
// serialized form, strongest close fact first per parameter.
func exportChanOps(ipa *IPA, n *FuncNode) []ChanOpRef {
	eff := ipa.chanEngine().effectsFor(n)
	if eff == nil || len(eff.params) == 0 {
		return nil
	}
	idxs := make([]int, 0, len(eff.params))
	for i := range eff.params {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	var out []ChanOpRef
	for _, i := range idxs {
		pe := eff.params[i]
		loc := shortLoc(ipa.Pkg.Fset, pe.pos)
		switch {
		case pe.mustClose:
			out = append(out, ChanOpRef{Op: "mustclose", Param: i, Loc: loc})
		case pe.mayClose:
			out = append(out, ChanOpRef{Op: "mayclose", Param: i, Loc: loc})
		}
		if pe.maySend {
			out = append(out, ChanOpRef{Op: "maysend", Param: i, Loc: loc})
		}
	}
	return out
}

// exportAccessCap bounds the atomic/plain access refs carried per function.
const exportAccessCap = 8

// exportAccessRefs projects a function's accesses to exported
// atomic-capable identities, one ref per identity per side, minus accesses
// justified by //lint:ignore atomicmix (so a dependency's documented mix
// does not resurface in its importers).
func exportAccessRefs(pkg *Package, ig *ignoreSet, ipa *IPA, n *FuncNode) (atomics, plains []AccessRef) {
	census := ipa.atomicCensus()
	seenA := map[string]bool{}
	seenP := map[string]bool{}
	for _, a := range census.accesses {
		if a.node != n || !a.exported {
			continue
		}
		if ig.suppressed(Diagnostic{Pos: pkg.Fset.Position(a.pos), Rule: "atomicmix"}) {
			continue
		}
		ref := AccessRef{ID: a.id, Loc: shortLoc(pkg.Fset, a.pos), Write: a.write}
		switch a.kind {
		case accessAtomic:
			if !seenA[a.id] && len(atomics) < exportAccessCap {
				seenA[a.id] = true
				atomics = append(atomics, ref)
			}
		case accessPlain:
			if !seenP[a.id] && len(plains) < exportAccessCap {
				seenP[a.id] = true
				plains = append(plains, ref)
			}
		}
	}
	return atomics, plains
}

// transitiveAllocs walks the call graph from n (call, defer, and reference
// edges — the same reachability hotalloc polices) collecting allocation
// sites, minus hotalloc-suppressed ones, capped at exportAllocCap.
func transitiveAllocs(pkg *Package, ig *ignoreSet, n *FuncNode) ([]SiteRef, int) {
	seen := map[*FuncNode]bool{n: true}
	queue := []*FuncNode{n}
	var out []SiteRef
	truncated := 0
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, site := range cur.Summary().AllocSites {
			if ig.suppressed(Diagnostic{Pos: pkg.Fset.Position(site.Pos), Rule: "hotalloc"}) {
				continue
			}
			if len(out) < exportAllocCap {
				out = append(out, SiteRef{What: site.What, Loc: shortLoc(pkg.Fset, site.Pos)})
			} else {
				truncated++
			}
		}
		for _, c := range cur.Calls {
			if !seen[c.Callee] {
				seen[c.Callee] = true
				queue = append(queue, c.Callee)
			}
		}
	}
	return out, truncated
}

// shortLoc renders a position as "file.go:42".
func shortLoc(fset *token.FileSet, pos token.Pos) string {
	p := fset.Position(pos)
	return fmt.Sprintf("%s:%d", shortPath(p.Filename), p.Line)
}

func sortedKeys(m map[string]token.Pos) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortedPairKeys(m map[[2]string]token.Pos) [][2]string {
	out := make([][2]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// propagate folds callee facts into callers until the lattice stabilizes.
// The lattice is finite (booleans plus bounded lock sets), every transfer is
// monotone, and each pass visits nodes in deterministic order, so the loop
// terminates with deterministic results.
func propagate(g *CallGraph) {
	for changed := true; changed; {
		changed = false
		for _, n := range g.Nodes {
			s := n.summary
			if !s.BlocksForever && len(s.ForeverSites) > 0 {
				s.BlocksForever = true
				s.ForeverWhat = s.ForeverSites[0].What
				s.ForeverPos = s.ForeverSites[0].Pos
				changed = true
			}
			if !s.Blocks && len(s.BlockSites) > 0 {
				s.Blocks = true
				changed = true
			}
			for _, c := range n.Calls {
				cs := c.Callee.summary
				// A referenced literal may never run: propagate may-block
				// (conservative for ctxprop) but not forever-blocking
				// (kept precise for goleak).
				if c.Kind != edgeRef && cs.BlocksForever && !s.BlocksForever {
					s.BlocksForever = true
					s.ForeverWhat = cs.ForeverWhat
					s.ForeverPos = cs.ForeverPos
					s.ForeverVia = c.Callee.Name
					changed = true
				}
				if cs.Blocks && !s.Blocks {
					s.Blocks = true
					changed = true
				}
				if c.Kind == edgeRef {
					continue
				}
				for id, pos := range cs.Acquires {
					if _, ok := s.Acquires[id]; !ok {
						s.Acquires[id] = pos
						changed = true
					}
				}
			}
		}
	}
}

package lint

import (
	"go/token"
	"sort"
	"strings"
)

// Lockorder builds a lock-acquisition-order graph across the package's
// functions from the interprocedural summaries — an edge A→B means some
// goroutine acquires B (directly or inside a callee) while holding A — and
// reports cycles, the static shadow of an ABBA deadlock. Locks are
// identified at the type level ("Controller.mu", or the variable name for a
// package-level mutex), which unifies acquisitions through different
// variables of the same type: conservative in the right direction, since
// two instances locked in opposite orders by concurrent goroutines is
// exactly the deadlock being hunted. A deliberate nesting that can never
// deadlock (e.g. a leaf lock with a documented order) carries a
// //lint:ignore lockorder directive at the acquisition site.
//
// A self-edge A→A (re-acquiring a lock identity already held) is reported
// separately: for a plain sync.Mutex that is an immediate self-deadlock.
var Lockorder = &Analyzer{
	Name: "lockorder",
	Doc:  "lock acquisition order must be acyclic across the package (no ABBA deadlocks)",
	Run:  runLockorder,
}

func runLockorder(pass *Pass) {
	ipa := pass.IPA()

	// Fold every function's pairs into one graph, keeping the earliest
	// position per edge for deterministic reporting.
	edges := make(map[string]map[string]token.Pos)
	addEdge := func(from, to string, pos token.Pos) {
		m := edges[from]
		if m == nil {
			m = make(map[string]token.Pos)
			edges[from] = m
		}
		if old, ok := m[to]; !ok || pos < old {
			m[to] = pos
		}
	}
	for _, n := range ipa.Graph.Nodes {
		for key, pos := range n.Summary().Pairs {
			addEdge(key[0], key[1], pos)
		}
	}

	// At module scope, fold in the order edges recorded by already-analyzed
	// packages. A cycle is reported only when it includes a local edge, so
	// a dependency's wholly-internal cycle stays reported in that package
	// and does not duplicate into every dependent.
	ext := make(map[string]map[string]string) // from -> to -> remote loc
	if deps := pass.pkg.deps; deps != nil {
		for _, pr := range deps.Pairs() {
			if _, local := edges[pr.First][pr.Second]; local {
				continue
			}
			m := ext[pr.First]
			if m == nil {
				m = make(map[string]string)
				ext[pr.First] = m
			}
			if _, ok := m[pr.Second]; !ok {
				m[pr.Second] = pr.Loc
			}
		}
	}

	// Self-deadlocks first (local edges only; a dependency's self-edge is
	// its own finding).
	ids := make([]string, 0, len(edges))
	for id := range edges {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		if pos, ok := edges[id][id]; ok {
			pass.Reportf(pos, "lock %s is acquired while an acquisition of %s is already held (self-deadlock for a plain Mutex)", id, id)
			delete(edges[id], id)
		}
	}

	// Cycles: every strongly connected component with more than one lock
	// contains at least one acquisition-order cycle. SCCs are computed over
	// the union graph; the report anchors at the earliest local edge.
	union := make(map[string]map[string]token.Pos, len(edges))
	for from, tos := range edges {
		union[from] = tos
	}
	for from, tos := range ext {
		m := union[from]
		if m == nil {
			m = make(map[string]token.Pos)
			union[from] = m
		}
		for to := range tos {
			if _, ok := m[to]; !ok {
				m[to] = token.NoPos
			}
		}
	}
	unionIDs := make([]string, 0, len(union))
	for id := range union {
		unionIDs = append(unionIDs, id)
	}
	sort.Strings(unionIDs)

	for _, scc := range stronglyConnected(unionIDs, union) {
		if len(scc) < 2 {
			continue
		}
		sort.Strings(scc)
		inSCC := make(map[string]bool, len(scc))
		for _, id := range scc {
			inSCC[id] = true
		}
		// Report at the earliest local edge position inside the component;
		// a component with no local edge belongs to a dependency.
		var minPos token.Pos
		var minFrom, minTo string
		crossPackage := false
		for _, from := range scc {
			for to, pos := range edges[from] {
				if !inSCC[to] {
					continue
				}
				if minPos == token.NoPos || pos < minPos {
					minPos, minFrom, minTo = pos, from, to
				}
			}
			for to := range ext[from] {
				if inSCC[to] {
					crossPackage = true
				}
			}
		}
		if minPos == token.NoPos {
			continue
		}
		via := ""
		if crossPackage {
			via = "; the reversing order is recorded in a dependency package"
		}
		pass.Reportf(minPos, "lock acquisition order cycle: %s (here %s is acquired while %s is held; elsewhere the order reverses — a potential ABBA deadlock%s)",
			strings.Join(scc, " ↔ "), minTo, minFrom, via)
	}
}

// stronglyConnected runs Tarjan's algorithm over the lock graph with
// deterministic (sorted) visit order, returning the components.
func stronglyConnected(ids []string, edges map[string]map[string]token.Pos) [][]string {
	index := make(map[string]int)
	low := make(map[string]int)
	onStack := make(map[string]bool)
	var stack []string
	var sccs [][]string
	next := 0

	// Include edge targets that never appear as sources.
	all := append([]string(nil), ids...)
	seen := make(map[string]bool, len(ids))
	for _, id := range ids {
		seen[id] = true
	}
	for _, from := range ids {
		tos := make([]string, 0, len(edges[from]))
		for to := range edges[from] {
			tos = append(tos, to)
		}
		sort.Strings(tos)
		for _, to := range tos {
			if !seen[to] {
				seen[to] = true
				all = append(all, to)
			}
		}
	}
	sort.Strings(all)

	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		tos := make([]string, 0, len(edges[v]))
		for to := range edges[v] {
			tos = append(tos, to)
		}
		sort.Strings(tos)
		for _, w := range tos {
			if _, visited := index[w]; !visited {
				strongconnect(w)
				low[v] = min(low[v], low[w])
			} else if onStack[w] {
				low[v] = min(low[v], index[w])
			}
		}
		if low[v] == index[v] {
			var scc []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			sccs = append(sccs, scc)
		}
	}
	for _, v := range all {
		if _, visited := index[v]; !visited {
			strongconnect(v)
		}
	}
	return sccs
}

// Package tsdb is the in-memory time-series store the centralized controller
// writes aligned sensor data into (the statsd role of paper §4.1). It keeps
// tagged series of timestamped points ordered by time and provides the two
// operations the controller's data normalization needs: linear-interpolation
// resampling onto a common grid and sliding moving-average smoothing.
package tsdb

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"darnet/internal/telemetry"
)

// Store-level metrics: per-operation latency histograms, point throughput,
// and series cardinality (the gauge the prune policy watches).
var (
	hInsert  = telemetry.NewHistogram("darnet_tsdb_insert_seconds", "latency of one point insert", nil)
	hQuery   = telemetry.NewHistogram("darnet_tsdb_query_seconds", "latency of range/resample reads", nil)
	hPrune   = telemetry.NewHistogram("darnet_tsdb_prune_seconds", "latency of one prune sweep", nil)
	mPoints  = telemetry.NewCounter("darnet_tsdb_points_inserted_total", "points inserted across all series")
	mPruned  = telemetry.NewCounter("darnet_tsdb_points_pruned_total", "points dropped by prune sweeps")
	gSeries  = telemetry.NewGauge("darnet_tsdb_series", "current series cardinality across all open databases")
	mQueries = telemetry.NewCounter("darnet_tsdb_queries_total", "range/resample reads served")
)

// Point is one timestamped scalar observation.
type Point struct {
	TimestampMillis int64
	Value           float64
}

// DB is a concurrency-safe collection of named series.
type DB struct {
	mu     sync.RWMutex
	series map[string][]Point
	logger InsertLogger
}

// New returns an empty database.
func New() *DB {
	return &DB{series: make(map[string][]Point)}
}

// InsertLogger observes every Insert before the in-memory mutation — the
// write-ahead seam internal/durable hangs its log on. LogInsert runs under
// the database write lock on the Insert hot path, so implementations must be
// allocation-free in steady state and must not call back into the DB.
type InsertLogger interface {
	LogInsert(series string, p Point)
}

// SetInsertLogger installs (or, with nil, removes) the write-ahead observer.
func (db *DB) SetInsertLogger(l InsertLogger) {
	db.mu.Lock()
	db.logger = l
	db.mu.Unlock()
}

// Insert adds a point to a series, keeping the series ordered by timestamp.
// Agents deliver batches out of order across the network, so insertion
// position is found by binary search — open-coded rather than sort.Search,
// which would capture pts and p in a closure on the per-point path.
//
// Equal-timestamp contract: a point whose timestamp already exists in the
// series is inserted after every existing point with that timestamp, so
// points with equal timestamps appear in arrival order. Replay depends on
// this: re-inserting a recovered sequence in its original order reproduces
// the exact pre-crash series, byte for byte.
//
//lint:hotpath
func (db *DB) Insert(series string, p Point) {
	start := time.Now()
	db.mu.Lock()
	existed := db.insertLocked(series, p)
	db.mu.Unlock()
	if !existed {
		gSeries.Add(1)
	}
	mPoints.Inc()
	hInsert.ObserveSince(start)
}

// insertLocked logs and places one point; the caller holds db.mu. It returns
// whether the series already existed so the callers can move the cardinality
// gauge outside the lock.
func (db *DB) insertLocked(series string, p Point) (existed bool) {
	if db.logger != nil {
		db.logger.LogInsert(series, p)
	}
	pts, existed := db.series[series]
	lo, hi := 0, len(pts)
	for lo < hi {
		mid := (lo + hi) / 2
		if pts[mid].TimestampMillis > p.TimestampMillis {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	i := lo
	pts = append(pts, Point{})
	copy(pts[i+1:], pts[i:])
	pts[i] = p
	db.series[series] = pts
	return existed
}

// Update runs fn inside one store critical section. Every point the callback
// inserts — plus whatever else it does while it runs, such as advancing a
// dedupe high-water mark or appending a commit mark to the write-ahead log —
// is atomic with respect to Snapshot: the checkpoint's snapshot+WAL-rotation
// boundary lands either entirely before or entirely after the callback,
// never inside it. The controller stores each agent batch through this door,
// which is what guarantees a checkpoint can never capture half a batch, or a
// batch's rows without the session state that dedupes its retransmission.
// The callback must not call other DB methods (db.mu is held throughout).
func (db *DB) Update(fn func(insert func(series string, p Point))) {
	inserted, created := 0, 0
	db.mu.Lock()
	fn(func(series string, p Point) {
		start := time.Now()
		if !db.insertLocked(series, p) {
			created++
		}
		inserted++
		hInsert.ObserveSince(start)
	})
	db.mu.Unlock()
	if created > 0 {
		gSeries.Add(float64(created))
	}
	mPoints.Add(int64(inserted))
}

// InsertBatch adds many points to a series.
func (db *DB) InsertBatch(series string, pts []Point) {
	for _, p := range pts {
		db.Insert(series, p)
	}
}

// Snapshot copies every series under the write lock and, while still holding
// it, runs fn. The callback is the checkpoint/WAL-rotation hook: because no
// Insert can run while fn does, every point is either fully inside the
// returned snapshot (its log record is retired with the old WAL generation)
// or fully after it (its record lands in the new generation and replays) —
// never both, never neither.
func (db *DB) Snapshot(fn func()) map[string][]Point {
	db.mu.Lock()
	defer db.mu.Unlock()
	out := make(map[string][]Point, len(db.series))
	for name, pts := range db.series {
		cp := make([]Point, len(pts))
		copy(cp, pts)
		out[name] = cp
	}
	if fn != nil {
		fn()
	}
	return out
}

// Load wholesale-replaces one series with the given points (assumed sorted —
// checkpoints store them that way). It is the recovery restore path and
// deliberately bypasses the insert logger: re-logging recovered data would
// double it on the next replay.
func (db *DB) Load(series string, pts []Point) {
	cp := make([]Point, len(pts))
	copy(cp, pts)
	db.mu.Lock()
	_, existed := db.series[series]
	db.series[series] = cp
	db.mu.Unlock()
	if !existed {
		gSeries.Add(1)
	}
	mPoints.Add(int64(len(pts)))
}

// Series returns the sorted names of all series.
func (db *DB) Series() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	names := make([]string, 0, len(db.series))
	for n := range db.series {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Len returns the number of points in a series.
func (db *DB) Len(series string) int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return len(db.series[series])
}

// Range returns a copy of the points with from <= timestamp < to.
func (db *DB) Range(series string, from, to int64) []Point {
	start := time.Now()
	db.mu.RLock()
	defer db.mu.RUnlock()
	pts := db.series[series]
	lo := sort.Search(len(pts), func(i int) bool { return pts[i].TimestampMillis >= from })
	hi := sort.Search(len(pts), func(i int) bool { return pts[i].TimestampMillis >= to })
	out := make([]Point, hi-lo)
	copy(out, pts[lo:hi])
	mQueries.Inc()
	hQuery.ObserveSince(start)
	return out
}

// Bounds returns the first and last timestamps of a series, or ok=false for
// an empty series.
func (db *DB) Bounds(series string) (first, last int64, ok bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	pts := db.series[series]
	if len(pts) == 0 {
		return 0, 0, false
	}
	return pts[0].TimestampMillis, pts[len(pts)-1].TimestampMillis, true
}

// ResampleLinear evaluates a series on the regular grid from, from+step, ...
// up to but excluding to, using linear interpolation between neighbouring
// points ("the controller uses interpolation to fill in the gaps", §3.2).
// Grid positions before the first or after the last observation clamp to the
// boundary value. It returns an error for an empty series or non-positive
// step.
func (db *DB) ResampleLinear(series string, from, to, stepMillis int64) ([]float64, error) {
	start := time.Now()
	defer func() {
		mQueries.Inc()
		hQuery.ObserveSince(start)
	}()
	if stepMillis <= 0 {
		return nil, fmt.Errorf("tsdb: step must be positive, got %d", stepMillis)
	}
	if to <= from {
		return nil, fmt.Errorf("tsdb: empty resample range [%d, %d)", from, to)
	}
	db.mu.RLock()
	pts := db.series[series]
	db.mu.RUnlock()
	if len(pts) == 0 {
		return nil, fmt.Errorf("tsdb: series %q is empty", series)
	}
	n := int((to - from + stepMillis - 1) / stepMillis)
	out := make([]float64, n)
	j := 0
	for i := 0; i < n; i++ {
		t := from + int64(i)*stepMillis
		for j+1 < len(pts) && pts[j+1].TimestampMillis <= t {
			j++
		}
		switch {
		case t <= pts[0].TimestampMillis:
			out[i] = pts[0].Value
		case j == len(pts)-1:
			out[i] = pts[len(pts)-1].Value
		default:
			a, b := pts[j], pts[j+1]
			span := float64(b.TimestampMillis - a.TimestampMillis)
			if span == 0 {
				out[i] = b.Value
			} else {
				frac := float64(t-a.TimestampMillis) / span
				out[i] = a.Value + frac*(b.Value-a.Value)
			}
		}
	}
	return out, nil
}

// SmoothMovingAverage returns a copy of values smoothed with a centered
// sliding window of the given odd width ("the controller performs a
// smoothing operation ... by maintaining a sliding moving average", §3.2).
// Windows are truncated at the boundaries.
func SmoothMovingAverage(values []float64, window int) ([]float64, error) {
	if window <= 0 || window%2 == 0 {
		return nil, fmt.Errorf("tsdb: smoothing window must be a positive odd number, got %d", window)
	}
	half := window / 2
	out := make([]float64, len(values))
	for i := range values {
		lo := max(0, i-half)
		hi := min(len(values), i+half+1)
		sum := 0.0
		for _, v := range values[lo:hi] {
			sum += v
		}
		out[i] = sum / float64(hi-lo)
	}
	return out, nil
}

// Prune drops every point older than cutoff (timestamp < cutoff) from all
// series and removes series that become empty, returning the number of
// points dropped. Long-running collection sessions call this to bound
// memory.
func (db *DB) Prune(cutoff int64) int {
	start := time.Now()
	db.mu.Lock()
	dropped, deleted := 0, 0
	for name, pts := range db.series {
		i := sort.Search(len(pts), func(i int) bool { return pts[i].TimestampMillis >= cutoff })
		if i == 0 {
			continue
		}
		dropped += i
		rest := pts[i:]
		if len(rest) == 0 {
			delete(db.series, name)
			deleted++
			continue
		}
		kept := make([]Point, len(rest))
		copy(kept, rest)
		db.series[name] = kept
	}
	db.mu.Unlock()
	gSeries.Add(float64(-deleted))
	mPruned.Add(int64(dropped))
	hPrune.ObserveSince(start)
	return dropped
}

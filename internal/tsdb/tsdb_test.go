package tsdb

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func TestInsertKeepsOrder(t *testing.T) {
	db := New()
	for _, ts := range []int64{50, 10, 30, 20, 40, 25} {
		db.Insert("s", Point{TimestampMillis: ts, Value: float64(ts)})
	}
	pts := db.Range("s", 0, 100)
	if len(pts) != 6 {
		t.Fatalf("got %d points", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].TimestampMillis < pts[i-1].TimestampMillis {
			t.Fatalf("points out of order: %v", pts)
		}
	}
}

// TestInsertEqualTimestampsKeepArrivalOrder pins the equal-timestamp
// contract WAL replay depends on: points sharing a timestamp stay in
// arrival order, so re-inserting a recovered sequence reproduces the exact
// pre-crash series.
func TestInsertEqualTimestampsKeepArrivalOrder(t *testing.T) {
	db := New()
	// Interleave duplicates of ts=20 with surrounding points.
	arrivals := []Point{{20, 1}, {10, 0}, {20, 2}, {30, 9}, {20, 3}, {20, 4}}
	for _, p := range arrivals {
		db.Insert("s", p)
	}
	got := db.Range("s", 20, 21)
	if len(got) != 4 {
		t.Fatalf("got %d points at ts=20, want 4", len(got))
	}
	for i, p := range got {
		if p.Value != float64(i+1) {
			t.Fatalf("equal-timestamp points out of arrival order: %v", got)
		}
	}
	// Replaying the identical arrival sequence into a fresh DB must produce
	// a byte-identical series.
	replay := New()
	for _, p := range arrivals {
		replay.Insert("s", p)
	}
	a, b := db.Range("s", 0, 100), replay.Range("s", 0, 100)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestRangeBoundaries(t *testing.T) {
	db := New()
	db.InsertBatch("s", []Point{{10, 1}, {20, 2}, {30, 3}})
	got := db.Range("s", 10, 30) // [from, to)
	if len(got) != 2 || got[0].Value != 1 || got[1].Value != 2 {
		t.Fatalf("range = %v", got)
	}
	if len(db.Range("s", 35, 99)) != 0 {
		t.Fatal("expected empty range")
	}
	if len(db.Range("missing", 0, 100)) != 0 {
		t.Fatal("missing series should yield empty range")
	}
}

func TestBoundsAndSeries(t *testing.T) {
	db := New()
	if _, _, ok := db.Bounds("s"); ok {
		t.Fatal("empty series should have no bounds")
	}
	db.Insert("b", Point{5, 0})
	db.Insert("a", Point{1, 0})
	db.Insert("a", Point{9, 0})
	first, last, ok := db.Bounds("a")
	if !ok || first != 1 || last != 9 {
		t.Fatalf("bounds = %d %d %v", first, last, ok)
	}
	names := db.Series()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("series = %v", names)
	}
	if db.Len("a") != 2 {
		t.Fatalf("len = %d", db.Len("a"))
	}
}

func TestResampleLinearInterpolates(t *testing.T) {
	db := New()
	db.InsertBatch("s", []Point{{0, 0}, {100, 10}})
	vals, err := db.ResampleLinear("s", 0, 101, 25)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0, 2.5, 5, 7.5, 10}
	if len(vals) != len(want) {
		t.Fatalf("got %d values", len(vals))
	}
	for i, w := range want {
		if math.Abs(vals[i]-w) > 1e-12 {
			t.Fatalf("vals[%d] = %g, want %g", i, vals[i], w)
		}
	}
}

func TestResampleClampsBoundaries(t *testing.T) {
	db := New()
	db.InsertBatch("s", []Point{{100, 5}, {200, 7}})
	vals, err := db.ResampleLinear("s", 0, 300, 100)
	if err != nil {
		t.Fatal(err)
	}
	if vals[0] != 5 { // before first point clamps
		t.Fatalf("pre-clamp = %g", vals[0])
	}
	if vals[2] != 7 { // after last point clamps
		t.Fatalf("post-clamp = %g", vals[2])
	}
}

func TestResampleValidation(t *testing.T) {
	db := New()
	if _, err := db.ResampleLinear("none", 0, 10, 1); err == nil {
		t.Fatal("expected empty-series error")
	}
	db.Insert("s", Point{0, 0})
	if _, err := db.ResampleLinear("s", 0, 10, 0); err == nil {
		t.Fatal("expected step error")
	}
	if _, err := db.ResampleLinear("s", 10, 10, 1); err == nil {
		t.Fatal("expected range error")
	}
}

func TestResampleDuplicateTimestamps(t *testing.T) {
	db := New()
	db.InsertBatch("s", []Point{{10, 1}, {10, 3}, {20, 5}})
	vals, err := db.ResampleLinear("s", 10, 21, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 2 {
		t.Fatalf("got %d values", len(vals))
	}
	// Must not produce NaN on zero-span segments.
	for _, v := range vals {
		if math.IsNaN(v) {
			t.Fatal("NaN from duplicate timestamps")
		}
	}
}

func TestSmoothMovingAverage(t *testing.T) {
	vals := []float64{0, 10, 0, 10, 0}
	sm, err := SmoothMovingAverage(vals, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{5, 10.0 / 3, 20.0 / 3, 10.0 / 3, 5}
	for i, w := range want {
		if math.Abs(sm[i]-w) > 1e-12 {
			t.Fatalf("sm[%d] = %g, want %g", i, sm[i], w)
		}
	}
	if _, err := SmoothMovingAverage(vals, 2); err == nil {
		t.Fatal("expected even-window error")
	}
	if _, err := SmoothMovingAverage(vals, 0); err == nil {
		t.Fatal("expected non-positive window error")
	}
}

// Property: smoothing preserves constants and never exceeds input extrema.
func TestSmoothingBoundsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		vals := make([]float64, 1+rng.Intn(30))
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := range vals {
			vals[i] = rng.NormFloat64()
			lo = math.Min(lo, vals[i])
			hi = math.Max(hi, vals[i])
		}
		sm, err := SmoothMovingAverage(vals, 1+2*rng.Intn(4))
		if err != nil {
			return false
		}
		for _, v := range sm {
			if v < lo-1e-12 || v > hi+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: resampling a linear signal reproduces it exactly at grid points.
func TestResampleLinearExactProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		slope := rng.NormFloat64()
		intercept := rng.NormFloat64()
		db := New()
		// Irregular observation times of the same line.
		ts := int64(0)
		for i := 0; i < 20; i++ {
			ts += int64(1 + rng.Intn(50))
			db.Insert("s", Point{ts, slope*float64(ts) + intercept})
		}
		first, last, _ := db.Bounds("s")
		vals, err := db.ResampleLinear("s", first, last, 7)
		if err != nil {
			return false
		}
		for i, v := range vals {
			t := first + int64(i)*7
			want := slope*float64(t) + intercept
			if math.Abs(v-want) > 1e-9*(1+math.Abs(want)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentInsertAndRead(t *testing.T) {
	db := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				db.Insert("s", Point{int64(g*1000 + i), float64(i)})
				_ = db.Range("s", 0, 10000)
			}
		}(g)
	}
	wg.Wait()
	if db.Len("s") != 8*200 {
		t.Fatalf("len = %d", db.Len("s"))
	}
}

func TestPrune(t *testing.T) {
	db := New()
	db.InsertBatch("a", []Point{{10, 1}, {20, 2}, {30, 3}})
	db.InsertBatch("b", []Point{{5, 1}, {6, 2}})
	dropped := db.Prune(25)
	if dropped != 4 {
		t.Fatalf("dropped = %d, want 4", dropped)
	}
	if db.Len("a") != 1 {
		t.Fatalf("series a has %d points", db.Len("a"))
	}
	// Fully pruned series disappears.
	names := db.Series()
	if len(names) != 1 || names[0] != "a" {
		t.Fatalf("series = %v", names)
	}
	// Pruning again is a no-op.
	if db.Prune(25) != 0 {
		t.Fatal("second prune dropped points")
	}
	// Remaining data still queryable.
	pts := db.Range("a", 0, 100)
	if len(pts) != 1 || pts[0].Value != 3 {
		t.Fatalf("range after prune = %v", pts)
	}
}

package tensor_test

import (
	"fmt"

	"darnet/internal/tensor"
)

// Tensors are dense row-major float64 arrays with standard linear algebra.
func ExampleMatMul() {
	a := tensor.MustFromSlice([]float64{1, 2, 3, 4}, 2, 2)
	b := tensor.MustFromSlice([]float64{5, 6, 7, 8}, 2, 2)
	c, err := tensor.MatMul(a, b)
	if err != nil {
		panic(err)
	}
	fmt.Println(c.Data())
	// Output: [19 22 43 50]
}

// ConvGeom lowers convolutions to matrix multiplication via im2col.
func ExampleConvGeom_Im2Col() {
	g := tensor.ConvGeom{InC: 1, InH: 2, InW: 2, KH: 2, KW: 2, StrideH: 1, StrideW: 1}
	img := []float64{1, 2, 3, 4}
	cols := make([]float64, 4) // one 2x2 receptive field
	g.Im2Col(img, cols)
	fmt.Println(cols)
	// Output: [1 2 3 4]
}

// Package tensor provides dense, row-major float64 tensors and the linear
// algebra kernels (matmul, transposes, im2col) that the neural-network,
// recurrent-network, and SVM packages are built on.
//
// Tensors are mutable and share underlying storage when documented to do so
// (Reshape, View). All shape mismatches are reported as errors or, for the
// handful of hot-path helpers that would make error plumbing impractical
// inside inner training loops, as panics that indicate a programming error
// rather than a data-dependent condition.
package tensor

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
)

// Tensor is a dense row-major array of float64 values.
type Tensor struct {
	shape   []int
	strides []int
	data    []float64
}

// New returns a zero-filled tensor with the given shape.
// A tensor with no dimensions holds a single scalar element.
func New(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension %d in shape %v", d, shape))
		}
		n *= d
	}
	t := &Tensor{
		shape: append([]int(nil), shape...),
		data:  make([]float64, n),
	}
	t.strides = computeStrides(t.shape)
	return t
}

// FromSlice returns a tensor with the given shape backed by a copy of data.
func FromSlice(data []float64, shape ...int) (*Tensor, error) {
	t := New(shape...)
	if len(data) != len(t.data) {
		return nil, fmt.Errorf("tensor: data length %d does not match shape %v (want %d)", len(data), shape, len(t.data))
	}
	copy(t.data, data)
	return t, nil
}

// MustFromSlice is FromSlice but panics on shape mismatch. Intended for
// constants and tests where the shape is statically known.
func MustFromSlice(data []float64, shape ...int) *Tensor {
	t, err := FromSlice(data, shape...)
	if err != nil {
		panic(err)
	}
	return t
}

// Full returns a tensor with every element set to v.
func Full(v float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = v
	}
	return t
}

// Randn returns a tensor of normally distributed values with the given
// standard deviation, drawn from rng.
func Randn(rng *rand.Rand, std float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = rng.NormFloat64() * std
	}
	return t
}

// Uniform returns a tensor of values drawn uniformly from [lo, hi).
func Uniform(rng *rand.Rand, lo, hi float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = lo + rng.Float64()*(hi-lo)
	}
	return t
}

func computeStrides(shape []int) []int {
	strides := make([]int, len(shape))
	s := 1
	for i := len(shape) - 1; i >= 0; i-- {
		strides[i] = s
		s *= shape[i]
	}
	return strides
}

// Shape returns a copy of the tensor's dimensions.
func (t *Tensor) Shape() []int { return append([]int(nil), t.shape...) }

// Dims returns the number of dimensions.
func (t *Tensor) Dims() int { return len(t.shape) }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// Size returns the total number of elements.
func (t *Tensor) Size() int { return len(t.data) }

// Data returns the backing slice. Mutating it mutates the tensor.
func (t *Tensor) Data() []float64 { return t.data }

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	c := New(t.shape...)
	copy(c.data, t.data)
	return c
}

// Reshape returns a tensor sharing t's storage with a new shape.
// The element count must match.
func (t *Tensor) Reshape(shape ...int) (*Tensor, error) {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(t.data) {
		return nil, fmt.Errorf("tensor: cannot reshape %v (size %d) to %v (size %d)", t.shape, len(t.data), shape, n)
	}
	return &Tensor{
		shape:   append([]int(nil), shape...),
		strides: computeStrides(shape),
		data:    t.data,
	}, nil
}

// MustReshape is Reshape but panics on element-count mismatch.
func (t *Tensor) MustReshape(shape ...int) *Tensor {
	r, err := t.Reshape(shape...)
	if err != nil {
		panic(err)
	}
	return r
}

func (t *Tensor) index(idx []int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: index %v for shape %v", idx, t.shape))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of range for shape %v", idx, t.shape))
		}
		off += x * t.strides[i]
	}
	return off
}

// At returns the element at the given multi-dimensional index.
func (t *Tensor) At(idx ...int) float64 { return t.data[t.index(idx)] }

// Set assigns the element at the given multi-dimensional index.
func (t *Tensor) Set(v float64, idx ...int) { t.data[t.index(idx)] = v }

// Row returns a view of row i of a 2-D tensor, sharing storage.
func (t *Tensor) Row(i int) []float64 {
	if len(t.shape) != 2 {
		panic(fmt.Sprintf("tensor: Row on %d-D tensor", len(t.shape)))
	}
	cols := t.shape[1]
	return t.data[i*cols : (i+1)*cols]
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float64) {
	for i := range t.data {
		t.data[i] = v
	}
}

// Zero sets every element to 0.
func (t *Tensor) Zero() {
	for i := range t.data {
		t.data[i] = 0
	}
}

// CopyFrom copies src's elements into t. Shapes must have equal sizes.
func (t *Tensor) CopyFrom(src *Tensor) error {
	if len(t.data) != len(src.data) {
		return fmt.Errorf("tensor: copy size mismatch %v vs %v", t.shape, src.shape)
	}
	copy(t.data, src.data)
	return nil
}

// SameShape reports whether a and b have identical shapes.
func SameShape(a, b *Tensor) bool {
	if len(a.shape) != len(b.shape) {
		return false
	}
	for i := range a.shape {
		if a.shape[i] != b.shape[i] {
			return false
		}
	}
	return true
}

// String renders small tensors fully and large tensors as a summary.
func (t *Tensor) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Tensor%v", t.shape)
	if len(t.data) <= 16 {
		fmt.Fprintf(&sb, "%v", t.data)
	} else {
		fmt.Fprintf(&sb, "[%g %g ... %g] (n=%d)", t.data[0], t.data[1], t.data[len(t.data)-1], len(t.data))
	}
	return sb.String()
}

// --- Element-wise arithmetic -------------------------------------------------

func (t *Tensor) binaryInPlace(o *Tensor, f func(a, b float64) float64, op string) *Tensor {
	if len(t.data) != len(o.data) {
		panic(fmt.Sprintf("tensor: %s size mismatch %v vs %v", op, t.shape, o.shape))
	}
	for i := range t.data {
		t.data[i] = f(t.data[i], o.data[i])
	}
	return t
}

// AddInPlace adds o element-wise into t and returns t.
func (t *Tensor) AddInPlace(o *Tensor) *Tensor {
	if len(t.data) != len(o.data) {
		panic(fmt.Sprintf("tensor: add size mismatch %v vs %v", t.shape, o.shape))
	}
	for i, v := range o.data {
		t.data[i] += v
	}
	return t
}

// SubInPlace subtracts o element-wise from t and returns t.
func (t *Tensor) SubInPlace(o *Tensor) *Tensor {
	if len(t.data) != len(o.data) {
		panic(fmt.Sprintf("tensor: sub size mismatch %v vs %v", t.shape, o.shape))
	}
	for i, v := range o.data {
		t.data[i] -= v
	}
	return t
}

// MulInPlace multiplies t by o element-wise (Hadamard product) and returns t.
func (t *Tensor) MulInPlace(o *Tensor) *Tensor {
	return t.binaryInPlace(o, func(a, b float64) float64 { return a * b }, "mul")
}

// ScaleInPlace multiplies every element by s and returns t.
func (t *Tensor) ScaleInPlace(s float64) *Tensor {
	for i := range t.data {
		t.data[i] *= s
	}
	return t
}

// AddScaledInPlace performs t += s*o and returns t (axpy).
func (t *Tensor) AddScaledInPlace(o *Tensor, s float64) *Tensor {
	if len(t.data) != len(o.data) {
		panic(fmt.Sprintf("tensor: axpy size mismatch %v vs %v", t.shape, o.shape))
	}
	for i, v := range o.data {
		t.data[i] += s * v
	}
	return t
}

// Apply replaces every element x with f(x) and returns t.
func (t *Tensor) Apply(f func(float64) float64) *Tensor {
	for i, v := range t.data {
		t.data[i] = f(v)
	}
	return t
}

// Add returns a new tensor a+b.
func Add(a, b *Tensor) *Tensor { return a.Clone().AddInPlace(b) }

// Sub returns a new tensor a-b.
func Sub(a, b *Tensor) *Tensor { return a.Clone().SubInPlace(b) }

// Mul returns a new tensor with the element-wise product of a and b.
func Mul(a, b *Tensor) *Tensor { return a.Clone().MulInPlace(b) }

// Scale returns a new tensor s*a.
func Scale(a *Tensor, s float64) *Tensor { return a.Clone().ScaleInPlace(s) }

// --- Reductions --------------------------------------------------------------

// Sum returns the sum of all elements.
func (t *Tensor) Sum() float64 {
	s := 0.0
	for _, v := range t.data {
		s += v
	}
	return s
}

// Mean returns the arithmetic mean of all elements (0 for empty tensors).
func (t *Tensor) Mean() float64 {
	if len(t.data) == 0 {
		return 0
	}
	return t.Sum() / float64(len(t.data))
}

// Max returns the maximum element. It panics on an empty tensor.
func (t *Tensor) Max() float64 {
	if len(t.data) == 0 {
		panic("tensor: Max of empty tensor")
	}
	m := t.data[0]
	for _, v := range t.data[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// ArgMax returns the flat index of the maximum element.
// It panics on an empty tensor.
func (t *Tensor) ArgMax() int {
	if len(t.data) == 0 {
		panic("tensor: ArgMax of empty tensor")
	}
	best, bi := t.data[0], 0
	for i, v := range t.data[1:] {
		if v > best {
			best, bi = v, i+1
		}
	}
	return bi
}

// L2Norm returns the Euclidean norm of all elements.
func (t *Tensor) L2Norm() float64 {
	s := 0.0
	for _, v := range t.data {
		s += v * v
	}
	return math.Sqrt(s)
}

// ArgMaxRow returns, for each row of a 2-D tensor, the column index of the
// row's maximum element.
func (t *Tensor) ArgMaxRow() []int {
	if len(t.shape) != 2 {
		panic(fmt.Sprintf("tensor: ArgMaxRow on %d-D tensor", len(t.shape)))
	}
	out := make([]int, t.shape[0])
	for i := range out {
		row := t.Row(i)
		best, bi := row[0], 0
		for j, v := range row[1:] {
			if v > best {
				best, bi = v, j+1
			}
		}
		out[i] = bi
	}
	return out
}

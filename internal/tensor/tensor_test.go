package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestNewShapeAndSize(t *testing.T) {
	tests := []struct {
		name  string
		shape []int
		size  int
	}{
		{"scalar", nil, 1},
		{"vector", []int{5}, 5},
		{"matrix", []int{3, 4}, 12},
		{"nchw", []int{2, 3, 4, 5}, 120},
		{"zero dim", []int{0, 7}, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			x := New(tt.shape...)
			if x.Size() != tt.size {
				t.Fatalf("Size() = %d, want %d", x.Size(), tt.size)
			}
			if x.Dims() != len(tt.shape) {
				t.Fatalf("Dims() = %d, want %d", x.Dims(), len(tt.shape))
			}
		})
	}
}

func TestAtSetRoundTrip(t *testing.T) {
	x := New(2, 3, 4)
	x.Set(7.5, 1, 2, 3)
	if got := x.At(1, 2, 3); got != 7.5 {
		t.Fatalf("At = %g, want 7.5", got)
	}
	if got := x.At(0, 0, 0); got != 0 {
		t.Fatalf("untouched element = %g, want 0", got)
	}
}

func TestAtOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-range index")
		}
	}()
	New(2, 2).At(2, 0)
}

func TestFromSliceMismatch(t *testing.T) {
	if _, err := FromSlice([]float64{1, 2, 3}, 2, 2); err == nil {
		t.Fatal("expected error for length/shape mismatch")
	}
}

func TestReshapeSharesStorage(t *testing.T) {
	x := MustFromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	y := x.MustReshape(3, 2)
	y.Set(99, 0, 1)
	if x.At(0, 1) != 99 {
		t.Fatal("reshape must share storage")
	}
	if _, err := x.Reshape(4, 2); err == nil {
		t.Fatal("expected reshape size mismatch error")
	}
}

func TestCloneIsDeep(t *testing.T) {
	x := MustFromSlice([]float64{1, 2}, 2)
	y := x.Clone()
	y.Set(5, 0)
	if x.At(0) != 1 {
		t.Fatal("clone must not share storage")
	}
}

func TestElementwiseOps(t *testing.T) {
	a := MustFromSlice([]float64{1, 2, 3, 4}, 2, 2)
	b := MustFromSlice([]float64{10, 20, 30, 40}, 2, 2)

	if got := Add(a, b).Data(); got[3] != 44 {
		t.Fatalf("Add = %v", got)
	}
	if got := Sub(b, a).Data(); got[0] != 9 {
		t.Fatalf("Sub = %v", got)
	}
	if got := Mul(a, b).Data(); got[2] != 90 {
		t.Fatalf("Mul = %v", got)
	}
	if got := Scale(a, 2).Data(); got[1] != 4 {
		t.Fatalf("Scale = %v", got)
	}
	c := a.Clone()
	c.AddScaledInPlace(b, 0.5)
	if c.At(0, 0) != 6 {
		t.Fatalf("axpy = %v", c.Data())
	}
}

func TestReductions(t *testing.T) {
	x := MustFromSlice([]float64{3, -1, 7, 2}, 4)
	if x.Sum() != 11 {
		t.Fatalf("Sum = %g", x.Sum())
	}
	if x.Mean() != 2.75 {
		t.Fatalf("Mean = %g", x.Mean())
	}
	if x.Max() != 7 {
		t.Fatalf("Max = %g", x.Max())
	}
	if x.ArgMax() != 2 {
		t.Fatalf("ArgMax = %d", x.ArgMax())
	}
	if !almostEqual(x.L2Norm(), math.Sqrt(9+1+49+4), 1e-12) {
		t.Fatalf("L2Norm = %g", x.L2Norm())
	}
}

func TestArgMaxRow(t *testing.T) {
	x := MustFromSlice([]float64{
		0.1, 0.9, 0.0,
		0.6, 0.2, 0.2,
	}, 2, 3)
	got := x.ArgMaxRow()
	if got[0] != 1 || got[1] != 0 {
		t.Fatalf("ArgMaxRow = %v", got)
	}
}

func TestMatMulKnownValues(t *testing.T) {
	a := MustFromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	b := MustFromSlice([]float64{7, 8, 9, 10, 11, 12}, 3, 2)
	c, err := MatMul(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{58, 64, 139, 154}
	for i, w := range want {
		if c.Data()[i] != w {
			t.Fatalf("MatMul[%d] = %g, want %g", i, c.Data()[i], w)
		}
	}
}

func TestMatMulShapeErrors(t *testing.T) {
	a := New(2, 3)
	b := New(4, 2)
	if _, err := MatMul(a, b); err == nil {
		t.Fatal("expected inner-dimension error")
	}
	if _, err := MatMul(New(2), b); err == nil {
		t.Fatal("expected 2-D requirement error")
	}
}

func TestTransposedMatMulsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := Randn(rng, 1, 4, 6)
	b := Randn(rng, 1, 6, 5)

	ref := MustMatMul(a, b)

	bt, err := Transpose(b)
	if err != nil {
		t.Fatal(err)
	}
	viaTransB, err := MatMulTransB(a, bt)
	if err != nil {
		t.Fatal(err)
	}
	at, err := Transpose(a)
	if err != nil {
		t.Fatal(err)
	}
	viaTransA, err := MatMulTransA(at, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref.Data() {
		if !almostEqual(ref.Data()[i], viaTransB.Data()[i], 1e-9) {
			t.Fatalf("MatMulTransB disagrees at %d: %g vs %g", i, ref.Data()[i], viaTransB.Data()[i])
		}
		if !almostEqual(ref.Data()[i], viaTransA.Data()[i], 1e-9) {
			t.Fatalf("MatMulTransA disagrees at %d: %g vs %g", i, ref.Data()[i], viaTransA.Data()[i])
		}
	}
}

func TestAddRowVectorAndSumRows(t *testing.T) {
	x := MustFromSlice([]float64{1, 2, 3, 4}, 2, 2)
	v := MustFromSlice([]float64{10, 20}, 2)
	if err := x.AddRowVector(v); err != nil {
		t.Fatal(err)
	}
	if x.At(1, 1) != 24 {
		t.Fatalf("AddRowVector = %v", x.Data())
	}
	s, err := x.SumRows()
	if err != nil {
		t.Fatal(err)
	}
	if s.At(0) != 24 || s.At(1) != 46 {
		t.Fatalf("SumRows = %v", s.Data())
	}

	if err := x.AddRowVector(New(3)); err == nil {
		t.Fatal("expected width mismatch error")
	}
}

// Property: matrix multiplication is associative (A·B)·C == A·(B·C).
func TestMatMulAssociativityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, k, n, p := 1+rng.Intn(5), 1+rng.Intn(5), 1+rng.Intn(5), 1+rng.Intn(5)
		a := Randn(rng, 1, m, k)
		b := Randn(rng, 1, k, n)
		c := Randn(rng, 1, n, p)
		left := MustMatMul(MustMatMul(a, b), c)
		right := MustMatMul(a, MustMatMul(b, c))
		for i := range left.Data() {
			if !almostEqual(left.Data()[i], right.Data()[i], 1e-8) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: transposing twice is the identity.
func TestDoubleTransposeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, n := 1+rng.Intn(8), 1+rng.Intn(8)
		a := Randn(rng, 1, m, n)
		at, err := Transpose(a)
		if err != nil {
			return false
		}
		att, err := Transpose(at)
		if err != nil {
			return false
		}
		for i := range a.Data() {
			if a.Data()[i] != att.Data()[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: Col2Im(Im2Col(x)) with a 1×1 kernel and stride 1 is the identity.
func TestIm2ColIdentityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c, h, w := 1+rng.Intn(3), 1+rng.Intn(6), 1+rng.Intn(6)
		g := ConvGeom{InC: c, InH: h, InW: w, KH: 1, KW: 1, StrideH: 1, StrideW: 1}
		img := Randn(rng, 1, c*h*w).Data()
		cols := make([]float64, c*g.OutH()*g.OutW())
		g.Im2Col(img, cols)
		back := make([]float64, len(img))
		g.Col2Im(cols, back)
		for i := range img {
			if !almostEqual(img[i], back[i], 1e-12) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestIm2ColKnownPatch(t *testing.T) {
	// 1 channel, 3x3 image, 2x2 kernel, stride 1, no padding -> 4 patches.
	g := ConvGeom{InC: 1, InH: 3, InW: 3, KH: 2, KW: 2, StrideH: 1, StrideW: 1}
	img := []float64{
		1, 2, 3,
		4, 5, 6,
		7, 8, 9,
	}
	cols := make([]float64, 4*4)
	g.Im2Col(img, cols)
	// Column 0 is the top-left receptive field {1,2,4,5} spread across rows.
	want0 := []float64{1, 2, 4, 5}
	for r := 0; r < 4; r++ {
		if cols[r*4+0] != want0[r] {
			t.Fatalf("col0 row %d = %g, want %g", r, cols[r*4], want0[r])
		}
	}
	// Column 3 is the bottom-right receptive field {5,6,8,9}.
	want3 := []float64{5, 6, 8, 9}
	for r := 0; r < 4; r++ {
		if cols[r*4+3] != want3[r] {
			t.Fatalf("col3 row %d = %g, want %g", r, cols[r*4+3], want3[r])
		}
	}
}

func TestIm2ColPaddingZeros(t *testing.T) {
	g := ConvGeom{InC: 1, InH: 2, InW: 2, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	if g.OutH() != 2 || g.OutW() != 2 {
		t.Fatalf("geometry out = %dx%d, want 2x2", g.OutH(), g.OutW())
	}
	img := []float64{1, 2, 3, 4}
	cols := make([]float64, 9*4)
	for i := range cols {
		cols[i] = math.NaN() // ensure padding positions are explicitly written
	}
	g.Im2Col(img, cols)
	for i, v := range cols {
		if math.IsNaN(v) {
			t.Fatalf("cols[%d] untouched", i)
		}
	}
	// First patch, kernel position (0,0) looks above-left of the image: zero.
	if cols[0] != 0 {
		t.Fatalf("padding position = %g, want 0", cols[0])
	}
}

func TestConvGeomValidate(t *testing.T) {
	good := ConvGeom{InC: 1, InH: 4, InW: 4, KH: 2, KW: 2, StrideH: 1, StrideW: 1}
	if err := good.Validate(); err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
	bad := []ConvGeom{
		{InC: 0, InH: 4, InW: 4, KH: 2, KW: 2, StrideH: 1, StrideW: 1},
		{InC: 1, InH: 4, InW: 4, KH: 0, KW: 2, StrideH: 1, StrideW: 1},
		{InC: 1, InH: 4, InW: 4, KH: 2, KW: 2, StrideH: 0, StrideW: 1},
		{InC: 1, InH: 4, InW: 4, KH: 2, KW: 2, StrideH: 1, StrideW: 1, PadH: -1},
		{InC: 1, InH: 1, InW: 1, KH: 5, KW: 5, StrideH: 1, StrideW: 1},
	}
	for i, g := range bad {
		if err := g.Validate(); err == nil {
			t.Fatalf("case %d: expected validation error for %+v", i, g)
		}
	}
}

func TestMatMulIntoReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := Randn(rng, 1, 3, 4)
	b := Randn(rng, 1, 4, 2)
	dst := Full(123, 3, 2)
	if err := MatMulInto(dst, a, b); err != nil {
		t.Fatal(err)
	}
	ref := MustMatMul(a, b)
	for i := range ref.Data() {
		if !almostEqual(dst.Data()[i], ref.Data()[i], 1e-12) {
			t.Fatal("MatMulInto disagrees with MatMul")
		}
	}
	if err := MatMulInto(New(2, 2), a, b); err == nil {
		t.Fatal("expected dst shape error")
	}
}

package tensor

import "fmt"

// MatMul returns the matrix product a×b of two 2-D tensors.
func MatMul(a, b *Tensor) (*Tensor, error) {
	if len(a.shape) != 2 || len(b.shape) != 2 {
		return nil, fmt.Errorf("tensor: matmul requires 2-D operands, got %v and %v", a.shape, b.shape)
	}
	if a.shape[1] != b.shape[0] {
		return nil, fmt.Errorf("tensor: matmul inner dimensions differ: %v × %v", a.shape, b.shape)
	}
	m, k, n := a.shape[0], a.shape[1], b.shape[1]
	out := New(m, n)
	matmulInto(out.data, a.data, b.data, m, k, n)
	return out, nil
}

// MustMatMul is MatMul but panics on shape mismatch. Intended for internal
// layer code where shapes are established invariants.
func MustMatMul(a, b *Tensor) *Tensor {
	out, err := MatMul(a, b)
	if err != nil {
		panic(err)
	}
	return out
}

// MatMulInto computes dst = a×b, reusing dst's storage. dst must be m×n.
func MatMulInto(dst, a, b *Tensor) error {
	if len(a.shape) != 2 || len(b.shape) != 2 || len(dst.shape) != 2 {
		return fmt.Errorf("tensor: matmul-into requires 2-D operands")
	}
	m, k, n := a.shape[0], a.shape[1], b.shape[1]
	if b.shape[0] != k || dst.shape[0] != m || dst.shape[1] != n {
		return fmt.Errorf("tensor: matmul-into shape mismatch dst=%v a=%v b=%v", dst.shape, a.shape, b.shape)
	}
	matmulInto(dst.data, a.data, b.data, m, k, n)
	return nil
}

// matmulInto computes out[m×n] = a[m×k] × b[k×n] with an ikj loop order that
// streams b row-wise for cache friendliness.
func matmulInto(out, a, b []float64, m, k, n int) {
	for i := range out {
		out[i] = 0
	}
	for i := 0; i < m; i++ {
		arow := a[i*k : (i+1)*k]
		orow := out[i*n : (i+1)*n]
		for p, av := range arow {
			if av == 0 {
				continue
			}
			brow := b[p*n : (p+1)*n]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
}

// MatMulTransB returns a × bᵀ where a is m×k and b is n×k.
func MatMulTransB(a, b *Tensor) (*Tensor, error) {
	if len(a.shape) != 2 || len(b.shape) != 2 {
		return nil, fmt.Errorf("tensor: matmul-transb requires 2-D operands, got %v and %v", a.shape, b.shape)
	}
	if a.shape[1] != b.shape[1] {
		return nil, fmt.Errorf("tensor: matmul-transb inner dimensions differ: %v × %vᵀ", a.shape, b.shape)
	}
	m, k, n := a.shape[0], a.shape[1], b.shape[0]
	out := New(m, n)
	for i := 0; i < m; i++ {
		arow := a.data[i*k : (i+1)*k]
		orow := out.data[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			brow := b.data[j*k : (j+1)*k]
			s := 0.0
			for p, av := range arow {
				s += av * brow[p]
			}
			orow[j] = s
		}
	}
	return out, nil
}

// MatMulTransA returns aᵀ × b where a is k×m and b is k×n.
func MatMulTransA(a, b *Tensor) (*Tensor, error) {
	if len(a.shape) != 2 || len(b.shape) != 2 {
		return nil, fmt.Errorf("tensor: matmul-transa requires 2-D operands, got %v and %v", a.shape, b.shape)
	}
	if a.shape[0] != b.shape[0] {
		return nil, fmt.Errorf("tensor: matmul-transa inner dimensions differ: %vᵀ × %v", a.shape, b.shape)
	}
	k, m, n := a.shape[0], a.shape[1], b.shape[1]
	out := New(m, n)
	for p := 0; p < k; p++ {
		arow := a.data[p*m : (p+1)*m]
		brow := b.data[p*n : (p+1)*n]
		for i, av := range arow {
			if av == 0 {
				continue
			}
			orow := out.data[i*n : (i+1)*n]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out, nil
}

// Transpose returns the transpose of a 2-D tensor as a new tensor.
func Transpose(t *Tensor) (*Tensor, error) {
	if len(t.shape) != 2 {
		return nil, fmt.Errorf("tensor: transpose requires a 2-D tensor, got %v", t.shape)
	}
	m, n := t.shape[0], t.shape[1]
	out := New(n, m)
	for i := 0; i < m; i++ {
		row := t.data[i*n : (i+1)*n]
		for j, v := range row {
			out.data[j*m+i] = v
		}
	}
	return out, nil
}

// AddRowVector adds vector v (length n) to every row of a 2-D m×n tensor.
func (t *Tensor) AddRowVector(v *Tensor) error {
	if len(t.shape) != 2 {
		return fmt.Errorf("tensor: AddRowVector on %d-D tensor", len(t.shape))
	}
	n := t.shape[1]
	if v.Size() != n {
		return fmt.Errorf("tensor: AddRowVector length %d for width %d", v.Size(), n)
	}
	for i := 0; i < t.shape[0]; i++ {
		row := t.data[i*n : (i+1)*n]
		for j := range row {
			row[j] += v.data[j]
		}
	}
	return nil
}

// SumRows returns a length-n vector holding the column sums of an m×n tensor.
func (t *Tensor) SumRows() (*Tensor, error) {
	if len(t.shape) != 2 {
		return nil, fmt.Errorf("tensor: SumRows on %d-D tensor", len(t.shape))
	}
	m, n := t.shape[0], t.shape[1]
	out := New(n)
	for i := 0; i < m; i++ {
		row := t.data[i*n : (i+1)*n]
		for j, v := range row {
			out.data[j] += v
		}
	}
	return out, nil
}

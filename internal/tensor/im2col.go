package tensor

import "fmt"

// ConvGeom describes the geometry of a 2-D convolution or pooling operation
// over NCHW tensors.
type ConvGeom struct {
	InC, InH, InW int // input channels, height, width
	KH, KW        int // kernel height, width
	StrideH       int
	StrideW       int
	PadH          int
	PadW          int
}

// OutH returns the output height of the convolution.
func (g ConvGeom) OutH() int { return (g.InH+2*g.PadH-g.KH)/g.StrideH + 1 }

// OutW returns the output width of the convolution.
func (g ConvGeom) OutW() int { return (g.InW+2*g.PadW-g.KW)/g.StrideW + 1 }

// Validate reports whether the geometry produces a non-empty output.
func (g ConvGeom) Validate() error {
	if g.InC <= 0 || g.InH <= 0 || g.InW <= 0 {
		return fmt.Errorf("tensor: conv geometry has non-positive input dims %+v", g)
	}
	if g.KH <= 0 || g.KW <= 0 || g.StrideH <= 0 || g.StrideW <= 0 {
		return fmt.Errorf("tensor: conv geometry has non-positive kernel/stride %+v", g)
	}
	if g.PadH < 0 || g.PadW < 0 {
		return fmt.Errorf("tensor: conv geometry has negative padding %+v", g)
	}
	if g.OutH() <= 0 || g.OutW() <= 0 {
		return fmt.Errorf("tensor: conv geometry yields empty output %+v", g)
	}
	return nil
}

// Im2Col expands one image (C×H×W, flattened in img) into a patch matrix of
// shape (C*KH*KW) × (OutH*OutW) written into cols. Each column holds one
// receptive field. cols must have length (C*KH*KW)*(OutH*OutW).
func (g ConvGeom) Im2Col(img, cols []float64) {
	outH, outW := g.OutH(), g.OutW()
	colW := outH * outW
	for c := 0; c < g.InC; c++ {
		chanOff := c * g.InH * g.InW
		for kh := 0; kh < g.KH; kh++ {
			for kw := 0; kw < g.KW; kw++ {
				rowOff := ((c*g.KH+kh)*g.KW + kw) * colW
				for oh := 0; oh < outH; oh++ {
					ih := oh*g.StrideH + kh - g.PadH
					base := rowOff + oh*outW
					if ih < 0 || ih >= g.InH {
						for ow := 0; ow < outW; ow++ {
							cols[base+ow] = 0
						}
						continue
					}
					imRow := chanOff + ih*g.InW
					for ow := 0; ow < outW; ow++ {
						iw := ow*g.StrideW + kw - g.PadW
						if iw < 0 || iw >= g.InW {
							cols[base+ow] = 0
						} else {
							cols[base+ow] = img[imRow+iw]
						}
					}
				}
			}
		}
	}
}

// Col2Im scatters a patch matrix (the layout produced by Im2Col) back into an
// image gradient, accumulating where patches overlap. img must be zeroed by
// the caller if accumulation from a clean slate is desired.
func (g ConvGeom) Col2Im(cols, img []float64) {
	outH, outW := g.OutH(), g.OutW()
	colW := outH * outW
	for c := 0; c < g.InC; c++ {
		chanOff := c * g.InH * g.InW
		for kh := 0; kh < g.KH; kh++ {
			for kw := 0; kw < g.KW; kw++ {
				rowOff := ((c*g.KH+kh)*g.KW + kw) * colW
				for oh := 0; oh < outH; oh++ {
					ih := oh*g.StrideH + kh - g.PadH
					if ih < 0 || ih >= g.InH {
						continue
					}
					base := rowOff + oh*outW
					imRow := chanOff + ih*g.InW
					for ow := 0; ow < outW; ow++ {
						iw := ow*g.StrideW + kw - g.PadW
						if iw < 0 || iw >= g.InW {
							continue
						}
						img[imRow+iw] += cols[base+ow]
					}
				}
			}
		}
	}
}

package nn

import (
	"fmt"
	"math/rand"

	"darnet/internal/tensor"
)

// Dropout randomly zeroes activations during training with probability p and
// scales survivors by 1/(1-p) (inverted dropout), so inference is a no-op.
type Dropout struct {
	name string
	p    float64
	rng  *rand.Rand
	mask []float64
}

// NewDropout returns a dropout layer with drop probability p in [0, 1).
func NewDropout(name string, rng *rand.Rand, p float64) *Dropout {
	if p < 0 || p >= 1 {
		panic(fmt.Sprintf("nn: %s: drop probability %g outside [0,1)", name, p))
	}
	return &Dropout{name: name, p: p, rng: rng}
}

// Name implements Layer.
func (d *Dropout) Name() string { return d.name }

// Params implements Layer.
func (d *Dropout) Params() []*Param { return nil }

// OutFeatures implements Layer.
func (d *Dropout) OutFeatures(in int) (int, error) { return in, nil }

// Forward implements Layer.
func (d *Dropout) Forward(x *tensor.Tensor, train bool) (*tensor.Tensor, error) {
	if !train || d.p == 0 {
		return x, nil
	}
	out := x.Clone()
	if cap(d.mask) < out.Size() {
		d.mask = make([]float64, out.Size())
	}
	d.mask = d.mask[:out.Size()]
	scale := 1 / (1 - d.p)
	od := out.Data()
	for i := range od {
		if d.rng.Float64() < d.p {
			d.mask[i] = 0
			od[i] = 0
		} else {
			d.mask[i] = scale
			od[i] *= scale
		}
	}
	return out, nil
}

// Backward implements Layer.
func (d *Dropout) Backward(grad *tensor.Tensor) (*tensor.Tensor, error) {
	if d.p == 0 {
		return grad, nil
	}
	out := grad.Clone()
	od := out.Data()
	for i := range od {
		od[i] *= d.mask[i]
	}
	return out, nil
}

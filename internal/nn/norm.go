package nn

import (
	"fmt"
	"math"

	"darnet/internal/tensor"
)

// BatchNorm normalizes activations using batch statistics during training and
// running statistics during inference, with learned scale (gamma) and shift
// (beta). Statistics are computed per normalization group:
//
//   - width groups == features: classic 1-D batch norm (per feature column);
//   - groups == channels of a C×H×W volume: spatial batch norm (statistics
//     pooled over the batch and the spatial plane, per channel).
type BatchNorm struct {
	name     string
	width    int // row width consumed by the layer
	groups   int // number of normalization groups (width % groups == 0)
	momentum float64
	eps      float64

	gamma *Param
	beta  *Param

	// Running statistics are non-trainable state, exposed via StateParams
	// so snapshots can persist them.
	runMean *Param
	runVar  *Param

	// Training caches.
	xhat    *tensor.Tensor
	stdInv  []float64
	batchN  int
	trained bool
}

// NewBatchNorm returns a batch-normalization layer over rows of the given
// width with the given number of groups (use groups == width for 1-D batch
// norm, groups == channel count for spatial batch norm). It panics if groups
// does not divide width (a construction-time programming error).
func NewBatchNorm(name string, width, groups int) *BatchNorm {
	if groups <= 0 || width <= 0 || width%groups != 0 {
		panic(fmt.Sprintf("nn: %s: groups %d must divide width %d", name, groups, width))
	}
	bn := &BatchNorm{
		name:     name,
		width:    width,
		groups:   groups,
		momentum: 0.9,
		eps:      1e-5,
		gamma:    NewParam(name+".gamma", tensor.Full(1, groups)),
		beta:     NewParam(name+".beta", tensor.New(groups)),
		runMean:  NewParam(name+".runmean", tensor.New(groups)),
		runVar:   NewParam(name+".runvar", tensor.Full(1, groups)),
	}
	return bn
}

// Name implements Layer.
func (b *BatchNorm) Name() string { return b.name }

// Params implements Layer.
func (b *BatchNorm) Params() []*Param { return []*Param{b.gamma, b.beta} }

// StateParams implements Stateful: the running mean and variance.
func (b *BatchNorm) StateParams() []*Param { return []*Param{b.runMean, b.runVar} }

// OutFeatures implements Layer.
func (b *BatchNorm) OutFeatures(in int) (int, error) {
	if in != b.width {
		return 0, errBadWidth(b.name, b.width, in)
	}
	return in, nil
}

// group returns the normalization group of flat feature index j.
// Features are laid out as contiguous per-group blocks (channel-major for
// spatial volumes), so the group is j / (width/groups).
func (b *BatchNorm) group(j int) int { return j / (b.width / b.groups) }

// Forward implements Layer.
func (b *BatchNorm) Forward(x *tensor.Tensor, train bool) (*tensor.Tensor, error) {
	if x.Dims() != 2 || x.Dim(1) != b.width {
		return nil, errBadWidth(b.name, b.width, x.Dim(x.Dims()-1))
	}
	n := x.Dim(0)
	per := b.width / b.groups
	out := tensor.New(n, b.width)
	gd := b.gamma.Value.Data()
	bd := b.beta.Value.Data()

	if !train {
		rm, rv := b.runMean.Value.Data(), b.runVar.Value.Data()
		for s := 0; s < n; s++ {
			xrow, orow := x.Row(s), out.Row(s)
			for j, v := range xrow {
				g := j / per
				orow[j] = gd[g]*(v-rm[g])/math.Sqrt(rv[g]+b.eps) + bd[g]
			}
		}
		return out, nil
	}

	count := float64(n * per)
	mean := make([]float64, b.groups)
	variance := make([]float64, b.groups)
	for s := 0; s < n; s++ {
		xrow := x.Row(s)
		for j, v := range xrow {
			mean[j/per] += v
		}
	}
	for g := range mean {
		mean[g] /= count
	}
	for s := 0; s < n; s++ {
		xrow := x.Row(s)
		for j, v := range xrow {
			d := v - mean[j/per]
			variance[j/per] += d * d
		}
	}
	for g := range variance {
		variance[g] /= count
	}

	b.stdInv = make([]float64, b.groups)
	for g := range b.stdInv {
		b.stdInv[g] = 1 / math.Sqrt(variance[g]+b.eps)
	}
	b.xhat = tensor.New(n, b.width)
	for s := 0; s < n; s++ {
		xrow, hrow, orow := x.Row(s), b.xhat.Row(s), out.Row(s)
		for j, v := range xrow {
			g := j / per
			h := (v - mean[g]) * b.stdInv[g]
			hrow[j] = h
			orow[j] = gd[g]*h + bd[g]
		}
	}
	rm, rv := b.runMean.Value.Data(), b.runVar.Value.Data()
	for g := range mean {
		rm[g] = b.momentum*rm[g] + (1-b.momentum)*mean[g]
		rv[g] = b.momentum*rv[g] + (1-b.momentum)*variance[g]
	}
	b.batchN = n
	b.trained = true
	return out, nil
}

// Backward implements Layer.
func (b *BatchNorm) Backward(grad *tensor.Tensor) (*tensor.Tensor, error) {
	if !b.trained {
		return nil, fmt.Errorf("nn: %s: Backward without training-mode Forward", b.name)
	}
	n := grad.Dim(0)
	per := b.width / b.groups
	count := float64(n * per)
	gd := b.gamma.Value.Data()
	gg := b.gamma.Grad.Data()
	bg := b.beta.Grad.Data()

	// Accumulate per-group sums needed by the batch-norm backward formula.
	sumG := make([]float64, b.groups)  // Σ grad
	sumGH := make([]float64, b.groups) // Σ grad * xhat
	for s := 0; s < n; s++ {
		grow, hrow := grad.Row(s), b.xhat.Row(s)
		for j, gv := range grow {
			g := j / per
			sumG[g] += gv
			sumGH[g] += gv * hrow[j]
		}
	}
	for g := 0; g < b.groups; g++ {
		gg[g] += sumGH[g]
		bg[g] += sumG[g]
	}

	dx := tensor.New(n, b.width)
	for s := 0; s < n; s++ {
		grow, hrow, drow := grad.Row(s), b.xhat.Row(s), dx.Row(s)
		for j, gv := range grow {
			g := j / per
			drow[j] = gd[g] * b.stdInv[g] / count *
				(count*gv - sumG[g] - hrow[j]*sumGH[g])
		}
	}
	return dx, nil
}

package nn

import (
	"math"
	"math/rand"

	"darnet/internal/tensor"
)

// HeInit returns a weight tensor initialized with He (Kaiming) normal
// initialization, appropriate for ReLU networks: std = sqrt(2/fanIn).
func HeInit(rng *rand.Rand, fanIn int, shape ...int) *tensor.Tensor {
	std := math.Sqrt(2.0 / float64(fanIn))
	return tensor.Randn(rng, std, shape...)
}

// XavierInit returns a weight tensor initialized with Glorot normal
// initialization: std = sqrt(2/(fanIn+fanOut)).
func XavierInit(rng *rand.Rand, fanIn, fanOut int, shape ...int) *tensor.Tensor {
	std := math.Sqrt(2.0 / float64(fanIn+fanOut))
	return tensor.Randn(rng, std, shape...)
}

package nn

import (
	"fmt"
	"math"

	"darnet/internal/tensor"
)

// MaxPool2D is a channel-wise 2-D max pooling layer over flattened C×H×W rows.
type MaxPool2D struct {
	name string
	geom tensor.ConvGeom // InC interpreted as the channel count; kernel = pool window

	argmax []int // flat input index chosen per output element, cached for Backward
	inDim  int
}

// NewMaxPool2D returns a max-pooling layer. The geometry's InC is the channel
// count and KH/KW/Stride describe the pooling window. It panics on invalid
// geometry (a construction-time programming error).
func NewMaxPool2D(name string, geom tensor.ConvGeom) *MaxPool2D {
	if err := geom.Validate(); err != nil {
		panic(fmt.Sprintf("nn: %s: %v", name, err))
	}
	return &MaxPool2D{name: name, geom: geom}
}

// Name implements Layer.
func (m *MaxPool2D) Name() string { return m.name }

// Params implements Layer.
func (m *MaxPool2D) Params() []*Param { return nil }

// Geom returns the pooling geometry.
func (m *MaxPool2D) Geom() tensor.ConvGeom { return m.geom }

// OutFeatures implements Layer.
func (m *MaxPool2D) OutFeatures(in int) (int, error) {
	want := m.geom.InC * m.geom.InH * m.geom.InW
	if in != want {
		return 0, errBadWidth(m.name, want, in)
	}
	return m.geom.InC * m.geom.OutH() * m.geom.OutW(), nil
}

// Forward implements Layer.
func (m *MaxPool2D) Forward(x *tensor.Tensor, train bool) (*tensor.Tensor, error) {
	g := m.geom
	inW := g.InC * g.InH * g.InW
	if x.Dims() != 2 || x.Dim(1) != inW {
		return nil, errBadWidth(m.name, inW, x.Dim(x.Dims()-1))
	}
	n := x.Dim(0)
	outH, outW := g.OutH(), g.OutW()
	spatial := outH * outW
	out := tensor.New(n, g.InC*spatial)
	if train {
		if cap(m.argmax) < n*g.InC*spatial {
			m.argmax = make([]int, n*g.InC*spatial)
		}
		m.argmax = m.argmax[:n*g.InC*spatial]
		m.inDim = inW
	}

	for s := 0; s < n; s++ {
		xrow := x.Row(s)
		orow := out.Row(s)
		for c := 0; c < g.InC; c++ {
			chanOff := c * g.InH * g.InW
			for oh := 0; oh < outH; oh++ {
				for ow := 0; ow < outW; ow++ {
					best := math.Inf(-1)
					bestIdx := -1
					for kh := 0; kh < g.KH; kh++ {
						ih := oh*g.StrideH + kh - g.PadH
						if ih < 0 || ih >= g.InH {
							continue
						}
						for kw := 0; kw < g.KW; kw++ {
							iw := ow*g.StrideW + kw - g.PadW
							if iw < 0 || iw >= g.InW {
								continue
							}
							idx := chanOff + ih*g.InW + iw
							if v := xrow[idx]; v > best {
								best, bestIdx = v, idx
							}
						}
					}
					oi := c*spatial + oh*outW + ow
					if bestIdx < 0 {
						// Entire window was padding; emit 0.
						orow[oi] = 0
					} else {
						orow[oi] = best
					}
					if train {
						m.argmax[s*g.InC*spatial+oi] = bestIdx
					}
				}
			}
		}
	}
	return out, nil
}

// Backward implements Layer.
func (m *MaxPool2D) Backward(grad *tensor.Tensor) (*tensor.Tensor, error) {
	g := m.geom
	n := grad.Dim(0)
	spatial := g.OutH() * g.OutW()
	dx := tensor.New(n, m.inDim)
	for s := 0; s < n; s++ {
		grow := grad.Row(s)
		drow := dx.Row(s)
		base := s * g.InC * spatial
		for oi, gv := range grow {
			if idx := m.argmax[base+oi]; idx >= 0 {
				drow[idx] += gv
			}
		}
	}
	return dx, nil
}

// GlobalAvgPool averages each channel's spatial plane down to one value,
// mapping rows of width C*H*W to rows of width C.
type GlobalAvgPool struct {
	name    string
	c, h, w int
}

// NewGlobalAvgPool returns a global average pooling layer over C×H×W volumes.
func NewGlobalAvgPool(name string, c, h, w int) *GlobalAvgPool {
	if c <= 0 || h <= 0 || w <= 0 {
		panic(fmt.Sprintf("nn: %s: non-positive dims %dx%dx%d", name, c, h, w))
	}
	return &GlobalAvgPool{name: name, c: c, h: h, w: w}
}

// Name implements Layer.
func (g *GlobalAvgPool) Name() string { return g.name }

// Params implements Layer.
func (g *GlobalAvgPool) Params() []*Param { return nil }

// OutFeatures implements Layer.
func (g *GlobalAvgPool) OutFeatures(in int) (int, error) {
	if in != g.c*g.h*g.w {
		return 0, errBadWidth(g.name, g.c*g.h*g.w, in)
	}
	return g.c, nil
}

// Forward implements Layer.
func (g *GlobalAvgPool) Forward(x *tensor.Tensor, train bool) (*tensor.Tensor, error) {
	if x.Dims() != 2 || x.Dim(1) != g.c*g.h*g.w {
		return nil, errBadWidth(g.name, g.c*g.h*g.w, x.Dim(x.Dims()-1))
	}
	n := x.Dim(0)
	plane := g.h * g.w
	out := tensor.New(n, g.c)
	for s := 0; s < n; s++ {
		xrow := x.Row(s)
		orow := out.Row(s)
		for c := 0; c < g.c; c++ {
			sum := 0.0
			for _, v := range xrow[c*plane : (c+1)*plane] {
				sum += v
			}
			orow[c] = sum / float64(plane)
		}
	}
	return out, nil
}

// Backward implements Layer.
func (g *GlobalAvgPool) Backward(grad *tensor.Tensor) (*tensor.Tensor, error) {
	n := grad.Dim(0)
	plane := g.h * g.w
	inv := 1.0 / float64(plane)
	dx := tensor.New(n, g.c*plane)
	for s := 0; s < n; s++ {
		grow := grad.Row(s)
		drow := dx.Row(s)
		for c := 0; c < g.c; c++ {
			gv := grow[c] * inv
			dst := drow[c*plane : (c+1)*plane]
			for i := range dst {
				dst[i] = gv
			}
		}
	}
	return dx, nil
}

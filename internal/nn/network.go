package nn

import (
	"fmt"
	"strings"

	"darnet/internal/tensor"
)

// Sequential chains layers so the output of one feeds the next. It is itself
// a Layer, so sequences nest inside Parallel modules and other sequences.
type Sequential struct {
	name   string
	layers []Layer
}

var _ Layer = (*Sequential)(nil)

// NewSequential returns a network applying the given layers in order.
func NewSequential(name string, layers ...Layer) *Sequential {
	return &Sequential{name: name, layers: layers}
}

// Name implements Layer.
func (s *Sequential) Name() string { return s.name }

// Add appends a layer to the sequence.
func (s *Sequential) Add(l Layer) { s.layers = append(s.layers, l) }

// Layers returns the underlying layer slice (not a copy; callers must not
// mutate it while the network is in use).
func (s *Sequential) Layers() []Layer { return s.layers }

// Params implements Layer, returning all trainable parameters in order.
func (s *Sequential) Params() []*Param {
	var ps []*Param
	for _, l := range s.layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// OutFeatures implements Layer by threading the width through every stage.
func (s *Sequential) OutFeatures(in int) (int, error) {
	w := in
	for _, l := range s.layers {
		var err error
		w, err = l.OutFeatures(w)
		if err != nil {
			return 0, fmt.Errorf("%s: %w", s.name, err)
		}
	}
	return w, nil
}

// Forward implements Layer.
func (s *Sequential) Forward(x *tensor.Tensor, train bool) (*tensor.Tensor, error) {
	var err error
	for _, l := range s.layers {
		x, err = l.Forward(x, train)
		if err != nil {
			return nil, fmt.Errorf("%s: forward %s: %w", s.name, l.Name(), err)
		}
	}
	return x, nil
}

// Backward implements Layer, propagating in reverse order.
func (s *Sequential) Backward(grad *tensor.Tensor) (*tensor.Tensor, error) {
	var err error
	for i := len(s.layers) - 1; i >= 0; i-- {
		grad, err = s.layers[i].Backward(grad)
		if err != nil {
			return nil, fmt.Errorf("%s: backward %s: %w", s.name, s.layers[i].Name(), err)
		}
	}
	return grad, nil
}

// ZeroGrad clears every parameter gradient in the network.
func (s *Sequential) ZeroGrad() {
	for _, p := range s.Params() {
		p.ZeroGrad()
	}
}

// Predict runs an inference-mode forward pass.
func (s *Sequential) Predict(x *tensor.Tensor) (*tensor.Tensor, error) {
	return s.Forward(x, false)
}

// Stateful is implemented by layers carrying non-trainable state (such as
// batch-norm running statistics) that snapshots must persist alongside the
// trainable parameters.
type Stateful interface {
	StateParams() []*Param
}

// StateParams implements Stateful by collecting nested layers' state.
func (s *Sequential) StateParams() []*Param {
	var ps []*Param
	for _, l := range s.layers {
		if st, ok := l.(Stateful); ok {
			ps = append(ps, st.StateParams()...)
		}
	}
	return ps
}

// NumParams returns the total number of scalar trainable parameters.
func (s *Sequential) NumParams() int {
	n := 0
	for _, p := range s.Params() {
		n += p.Value.Size()
	}
	return n
}

// Summary renders a human-readable table of the network's layers with their
// output widths (threaded from the given input width) and parameter counts.
func (s *Sequential) Summary(inWidth int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s (input width %d)\n", s.name, inWidth)
	w := inWidth
	total := 0
	for _, l := range s.layers {
		params := 0
		for _, p := range l.Params() {
			params += p.Value.Size()
		}
		total += params
		out, err := l.OutFeatures(w)
		if err != nil {
			fmt.Fprintf(&sb, "  %-16s <width error: %v>\n", l.Name(), err)
			return sb.String()
		}
		fmt.Fprintf(&sb, "  %-16s %6d -> %-6d params %d\n", l.Name(), w, out, params)
		w = out
	}
	fmt.Fprintf(&sb, "  total parameters: %d\n", total)
	return sb.String()
}

package nn

import (
	"math"
	"math/rand"
	"testing"

	"darnet/internal/tensor"
)

// lossOf runs a forward pass in training mode and reduces the output with a
// fixed weighted sum so the loss depends on every output element.
func lossOf(t *testing.T, l Layer, x *tensor.Tensor) float64 {
	t.Helper()
	y, err := l.Forward(x, true)
	if err != nil {
		t.Fatalf("forward: %v", err)
	}
	loss := 0.0
	for i, v := range y.Data() {
		loss += v * weightFor(i)
	}
	return loss
}

// weightFor gives output element i a deterministic, non-uniform weight so
// gradient errors cannot cancel.
func weightFor(i int) float64 { return math.Sin(float64(i)*0.7) + 1.5 }

// checkGradients verifies backprop input and parameter gradients against
// central finite differences.
func checkGradients(t *testing.T, l Layer, x *tensor.Tensor, tol float64) {
	t.Helper()
	for _, p := range l.Params() {
		p.ZeroGrad()
	}
	y, err := l.Forward(x, true)
	if err != nil {
		t.Fatalf("forward: %v", err)
	}
	grad := tensor.New(y.Shape()...)
	for i := range grad.Data() {
		grad.Data()[i] = weightFor(i)
	}
	dx, err := l.Backward(grad)
	if err != nil {
		t.Fatalf("backward: %v", err)
	}

	const h = 1e-5
	// Input gradient.
	for i := range x.Data() {
		orig := x.Data()[i]
		x.Data()[i] = orig + h
		up := lossOf(t, l, x)
		x.Data()[i] = orig - h
		down := lossOf(t, l, x)
		x.Data()[i] = orig
		num := (up - down) / (2 * h)
		if diff := math.Abs(num - dx.Data()[i]); diff > tol*(1+math.Abs(num)) {
			t.Fatalf("input grad [%d]: analytic %g vs numeric %g", i, dx.Data()[i], num)
		}
	}
	// Restore caches clobbered by the probe passes, then re-measure parameter
	// gradients: zero, forward, backward once.
	for _, p := range l.Params() {
		p.ZeroGrad()
	}
	if _, err := l.Forward(x, true); err != nil {
		t.Fatalf("forward: %v", err)
	}
	if _, err := l.Backward(grad); err != nil {
		t.Fatalf("backward: %v", err)
	}
	for _, p := range l.Params() {
		analytic := p.Grad.Clone()
		for i := range p.Value.Data() {
			orig := p.Value.Data()[i]
			p.Value.Data()[i] = orig + h
			up := lossOf(t, l, x)
			p.Value.Data()[i] = orig - h
			down := lossOf(t, l, x)
			p.Value.Data()[i] = orig
			num := (up - down) / (2 * h)
			if diff := math.Abs(num - analytic.Data()[i]); diff > tol*(1+math.Abs(num)) {
				t.Fatalf("param %s grad [%d]: analytic %g vs numeric %g", p.Name, i, analytic.Data()[i], num)
			}
		}
	}
}

func TestDenseGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	l := NewDense("fc", rng, 5, 3)
	x := tensor.Randn(rng, 1, 4, 5)
	checkGradients(t, l, x, 1e-5)
}

func TestConv2DGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	l := NewConv2D("conv", rng, tensor.ConvGeom{
		InC: 2, InH: 5, InW: 5, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1,
	}, 3)
	x := tensor.Randn(rng, 1, 2, 2*5*5)
	checkGradients(t, l, x, 1e-5)
}

func TestConv2DStridedGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	l := NewConv2D("conv", rng, tensor.ConvGeom{
		InC: 1, InH: 6, InW: 6, KH: 2, KW: 2, StrideH: 2, StrideW: 2,
	}, 2)
	x := tensor.Randn(rng, 1, 2, 36)
	checkGradients(t, l, x, 1e-5)
}

func TestMaxPoolGradients(t *testing.T) {
	l := NewMaxPool2D("pool", tensor.ConvGeom{
		InC: 2, InH: 4, InW: 4, KH: 2, KW: 2, StrideH: 2, StrideW: 2,
	})
	// Keep values well separated so finite differences never flip the argmax.
	x := tensor.New(2, 2*4*4)
	for i := range x.Data() {
		x.Data()[i] = float64((i*37)%101) / 10
	}
	checkGradients(t, l, x, 1e-4)
}

func TestGlobalAvgPoolGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	l := NewGlobalAvgPool("gap", 3, 4, 4)
	x := tensor.Randn(rng, 1, 2, 3*4*4)
	checkGradients(t, l, x, 1e-6)
}

func TestActivationGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	layers := []Layer{NewTanh(), NewSigmoid()}
	for _, l := range layers {
		x := tensor.Randn(rng, 1, 3, 7)
		checkGradients(t, l, x, 1e-5)
	}
	// ReLU: keep values away from the kink.
	x := tensor.Randn(rng, 1, 3, 7).Apply(func(v float64) float64 {
		if math.Abs(v) < 0.1 {
			return v + 0.5
		}
		return v
	})
	checkGradients(t, NewReLU(), x, 1e-5)
}

func TestBatchNorm1DGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	l := NewBatchNorm("bn", 4, 4)
	x := tensor.Randn(rng, 1, 6, 4)
	checkGradients(t, l, x, 1e-4)
}

func TestBatchNormSpatialGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	// 2 channels over a 3x3 plane: width 18, groups 2.
	l := NewBatchNorm("bn2d", 18, 2)
	x := tensor.Randn(rng, 1, 3, 18)
	checkGradients(t, l, x, 1e-4)
}

func TestSequentialGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	net := NewSequential("net",
		NewDense("fc1", rng, 6, 8),
		NewTanh(),
		NewDense("fc2", rng, 8, 3),
	)
	x := tensor.Randn(rng, 1, 4, 6)
	checkGradients(t, net, x, 1e-5)
}

func TestParallelGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	p := NewParallel("par",
		NewSequential("a", NewDense("fa", rng, 5, 3), NewTanh()),
		NewSequential("b", NewDense("fb", rng, 5, 4)),
	)
	x := tensor.Randn(rng, 1, 3, 5)
	checkGradients(t, p, x, 1e-5)
}

func TestInceptionGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	sp := InceptionSpec{
		InC: 2, InH: 4, InW: 4,
		C1x1: 2, C3x3Reduce: 2, C3x3: 2, C5x5Reduce: 1, C5x5: 1, CPool: 1,
	}
	mod := NewInception("mix", rng, sp)
	// Zero-initialized biases would leave pre-activations exactly on the ReLU
	// kink when an upstream tower is dead, making finite differences
	// one-sided; shift biases so units are active and away from the kink.
	for _, p := range mod.Params() {
		if p.Value.Dims() == 1 {
			p.Value.Fill(0.3)
		}
	}
	// Positive inputs keep ReLUs away from their kink for finite differences.
	x := tensor.Uniform(rng, 0.5, 1.5, 2, 2*4*4)
	checkGradients(t, mod, x, 1e-4)

	wantOut := sp.OutC() * 4 * 4
	got, err := mod.OutFeatures(2 * 4 * 4)
	if err != nil {
		t.Fatal(err)
	}
	if got != wantOut {
		t.Fatalf("inception OutFeatures = %d, want %d", got, wantOut)
	}
}

func TestAvgPoolGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	l := NewAvgPool2D("avg", tensor.ConvGeom{
		InC: 2, InH: 4, InW: 4, KH: 2, KW: 2, StrideH: 2, StrideW: 2,
	})
	x := tensor.Randn(rng, 1, 2, 2*4*4)
	checkGradients(t, l, x, 1e-6)
}

func TestAvgPoolPaddedGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	l := NewAvgPool2D("avgpad", tensor.ConvGeom{
		InC: 1, InH: 3, InW: 3, KH: 2, KW: 2, StrideH: 2, StrideW: 2, PadH: 1, PadW: 1,
	})
	x := tensor.Randn(rng, 1, 2, 9)
	checkGradients(t, l, x, 1e-6)
}

package nn

import (
	"math"

	"darnet/internal/tensor"
)

// ReLU is the rectified-linear activation layer, applied element-wise.
type ReLU struct {
	mask []bool
}

// NewReLU returns a ReLU activation layer.
func NewReLU() *ReLU { return &ReLU{} }

// Name implements Layer.
func (r *ReLU) Name() string { return "relu" }

// Params implements Layer; activations have no parameters.
func (r *ReLU) Params() []*Param { return nil }

// OutFeatures implements Layer; activations preserve width.
func (r *ReLU) OutFeatures(in int) (int, error) { return in, nil }

// Forward implements Layer.
func (r *ReLU) Forward(x *tensor.Tensor, train bool) (*tensor.Tensor, error) {
	out := x.Clone()
	if train {
		if cap(r.mask) < out.Size() {
			r.mask = make([]bool, out.Size())
		}
		r.mask = r.mask[:out.Size()]
	}
	d := out.Data()
	for i, v := range d {
		pos := v > 0
		if !pos {
			d[i] = 0
		}
		if train {
			r.mask[i] = pos
		}
	}
	return out, nil
}

// Backward implements Layer.
func (r *ReLU) Backward(grad *tensor.Tensor) (*tensor.Tensor, error) {
	out := grad.Clone()
	d := out.Data()
	for i := range d {
		if !r.mask[i] {
			d[i] = 0
		}
	}
	return out, nil
}

// Tanh is the hyperbolic-tangent activation layer.
type Tanh struct {
	out *tensor.Tensor
}

// NewTanh returns a Tanh activation layer.
func NewTanh() *Tanh { return &Tanh{} }

// Name implements Layer.
func (t *Tanh) Name() string { return "tanh" }

// Params implements Layer.
func (t *Tanh) Params() []*Param { return nil }

// OutFeatures implements Layer.
func (t *Tanh) OutFeatures(in int) (int, error) { return in, nil }

// Forward implements Layer.
func (t *Tanh) Forward(x *tensor.Tensor, train bool) (*tensor.Tensor, error) {
	out := x.Clone().Apply(math.Tanh)
	if train {
		t.out = out
	}
	return out, nil
}

// Backward implements Layer.
func (t *Tanh) Backward(grad *tensor.Tensor) (*tensor.Tensor, error) {
	out := grad.Clone()
	d, y := out.Data(), t.out.Data()
	for i := range d {
		d[i] *= 1 - y[i]*y[i]
	}
	return out, nil
}

// Sigmoid is the logistic activation layer.
type Sigmoid struct {
	out *tensor.Tensor
}

// NewSigmoid returns a Sigmoid activation layer.
func NewSigmoid() *Sigmoid { return &Sigmoid{} }

// Name implements Layer.
func (s *Sigmoid) Name() string { return "sigmoid" }

// Params implements Layer.
func (s *Sigmoid) Params() []*Param { return nil }

// OutFeatures implements Layer.
func (s *Sigmoid) OutFeatures(in int) (int, error) { return in, nil }

// Forward implements Layer.
func (s *Sigmoid) Forward(x *tensor.Tensor, train bool) (*tensor.Tensor, error) {
	out := x.Clone().Apply(sigmoid)
	if train {
		s.out = out
	}
	return out, nil
}

// Backward implements Layer.
func (s *Sigmoid) Backward(grad *tensor.Tensor) (*tensor.Tensor, error) {
	out := grad.Clone()
	d, y := out.Data(), s.out.Data()
	for i := range d {
		d[i] *= y[i] * (1 - y[i])
	}
	return out, nil
}

func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

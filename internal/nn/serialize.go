package nn

import (
	"encoding/gob"
	"fmt"
	"io"
)

// paramBlob is the gob wire form of one parameter.
type paramBlob struct {
	Name  string
	Shape []int
	Data  []float64
}

// SaveParams writes all parameter values to w in gob format, keyed by name.
func SaveParams(w io.Writer, params []*Param) error {
	blobs := make([]paramBlob, 0, len(params))
	for _, p := range params {
		blobs = append(blobs, paramBlob{
			Name:  p.Name,
			Shape: p.Value.Shape(),
			Data:  append([]float64(nil), p.Value.Data()...),
		})
	}
	if err := gob.NewEncoder(w).Encode(blobs); err != nil {
		return fmt.Errorf("nn: encode params: %w", err)
	}
	return nil
}

// LoadParams reads parameter values from r and copies them into params,
// matching by name. Every parameter must be present with an identical shape.
func LoadParams(r io.Reader, params []*Param) error {
	var blobs []paramBlob
	if err := gob.NewDecoder(r).Decode(&blobs); err != nil {
		return fmt.Errorf("nn: decode params: %w", err)
	}
	byName := make(map[string]paramBlob, len(blobs))
	for _, b := range blobs {
		byName[b.Name] = b
	}
	for _, p := range params {
		b, ok := byName[p.Name]
		if !ok {
			return fmt.Errorf("nn: snapshot missing parameter %q", p.Name)
		}
		if len(b.Data) != p.Value.Size() {
			return fmt.Errorf("nn: parameter %q size mismatch: snapshot %d vs model %d", p.Name, len(b.Data), p.Value.Size())
		}
		copy(p.Value.Data(), b.Data)
	}
	return nil
}

// CopyParams copies parameter values from src into dst positionally.
// The two networks must have structurally identical parameter lists — the
// mechanism behind initializing a dCNN student from its teacher (paper §4.3).
func CopyParams(dst, src []*Param) error {
	if len(dst) != len(src) {
		return fmt.Errorf("nn: copy params count mismatch %d vs %d", len(dst), len(src))
	}
	for i := range dst {
		if dst[i].Value.Size() != src[i].Value.Size() {
			return fmt.Errorf("nn: copy params %q size mismatch %d vs %d",
				dst[i].Name, dst[i].Value.Size(), src[i].Value.Size())
		}
		copy(dst[i].Value.Data(), src[i].Value.Data())
	}
	return nil
}

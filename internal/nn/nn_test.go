package nn

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"darnet/internal/tensor"
)

func TestSoftmaxRowsSumToOne(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, c := 1+rng.Intn(5), 2+rng.Intn(6)
		logits := tensor.Randn(rng, 3, n, c)
		probs, err := Softmax(logits)
		if err != nil {
			return false
		}
		for s := 0; s < n; s++ {
			sum := 0.0
			for _, p := range probs.Row(s) {
				if p < 0 || p > 1 {
					return false
				}
				sum += p
			}
			if math.Abs(sum-1) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSoftmaxShiftInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	logits := tensor.Randn(rng, 2, 3, 4)
	shifted := logits.Clone().Apply(func(v float64) float64 { return v + 1000 })
	a, err := Softmax(logits)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Softmax(shifted)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Data() {
		if math.Abs(a.Data()[i]-b.Data()[i]) > 1e-9 {
			t.Fatalf("softmax not shift invariant at %d", i)
		}
	}
}

func TestCrossEntropyKnownValue(t *testing.T) {
	// Uniform logits over 4 classes: loss = ln(4).
	logits := tensor.New(2, 4)
	loss, probs, grad, err := CrossEntropy(logits, []int{0, 3})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(loss-math.Log(4)) > 1e-9 {
		t.Fatalf("loss = %g, want ln(4)=%g", loss, math.Log(4))
	}
	if math.Abs(probs.At(0, 0)-0.25) > 1e-9 {
		t.Fatalf("probs = %v", probs.Row(0))
	}
	// Gradient at true class: (p-1)/N.
	if math.Abs(grad.At(0, 0)-(0.25-1)/2) > 1e-9 {
		t.Fatalf("grad = %v", grad.Row(0))
	}
}

func TestCrossEntropyLabelValidation(t *testing.T) {
	logits := tensor.New(1, 3)
	if _, _, _, err := CrossEntropy(logits, []int{5}); err == nil {
		t.Fatal("expected out-of-range label error")
	}
	if _, _, _, err := CrossEntropy(logits, []int{0, 1}); err == nil {
		t.Fatal("expected label-count error")
	}
}

func TestCrossEntropyGradientNumeric(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	logits := tensor.Randn(rng, 1, 3, 5)
	labels := []int{1, 4, 0}
	_, _, grad, err := CrossEntropy(logits, labels)
	if err != nil {
		t.Fatal(err)
	}
	const h = 1e-6
	for i := range logits.Data() {
		orig := logits.Data()[i]
		logits.Data()[i] = orig + h
		up, _, _, _ := CrossEntropy(logits, labels)
		logits.Data()[i] = orig - h
		down, _, _, _ := CrossEntropy(logits, labels)
		logits.Data()[i] = orig
		num := (up - down) / (2 * h)
		if math.Abs(num-grad.Data()[i]) > 1e-6 {
			t.Fatalf("grad[%d]: analytic %g vs numeric %g", i, grad.Data()[i], num)
		}
	}
}

func TestMSEAndL2Distance(t *testing.T) {
	pred := tensor.MustFromSlice([]float64{1, 2, 3, 4}, 2, 2)
	target := tensor.MustFromSlice([]float64{1, 0, 3, 0}, 2, 2)

	mse, mgrad, err := MSE(pred, target)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mse-(4+16)/4.0) > 1e-12 {
		t.Fatalf("mse = %g", mse)
	}
	if mgrad.At(0, 1) != 2*2/4.0 {
		t.Fatalf("mse grad = %v", mgrad.Data())
	}

	l2, lgrad, err := L2Distance(pred, target)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(l2-(4+16)/2.0) > 1e-12 {
		t.Fatalf("l2 = %g", l2)
	}
	if lgrad.At(0, 1) != 2*2/2.0 {
		t.Fatalf("l2 grad = %v", lgrad.Data())
	}

	if _, _, err := MSE(pred, tensor.New(3)); err == nil {
		t.Fatal("expected shape mismatch error")
	}
}

func TestDropoutTrainEvalBehaviour(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	d := NewDropout("drop", rng, 0.5)
	x := tensor.Full(1, 1, 1000)

	eval, err := d.Forward(x, false)
	if err != nil {
		t.Fatal(err)
	}
	if eval.Sum() != 1000 {
		t.Fatal("inference-mode dropout must be identity")
	}

	train, err := d.Forward(x, true)
	if err != nil {
		t.Fatal(err)
	}
	zeros := 0
	for _, v := range train.Data() {
		switch v {
		case 0:
			zeros++
		case 2: // survivors are scaled by 1/(1-p) = 2
		default:
			t.Fatalf("unexpected dropout output %g", v)
		}
	}
	if zeros < 350 || zeros > 650 {
		t.Fatalf("dropout zeroed %d/1000 at p=0.5", zeros)
	}
	// Expectation is preserved approximately.
	mean := train.Mean()
	if mean < 0.8 || mean > 1.2 {
		t.Fatalf("dropout mean = %g, want ~1", mean)
	}
}

func TestBatchNormNormalizesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	bn := NewBatchNorm("bn", 3, 3)
	x := tensor.Randn(rng, 5, 64, 3).Apply(func(v float64) float64 { return v + 10 })
	y, err := bn.Forward(x, true)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 3; j++ {
		mean, varsum := 0.0, 0.0
		for s := 0; s < 64; s++ {
			mean += y.At(s, j)
		}
		mean /= 64
		for s := 0; s < 64; s++ {
			d := y.At(s, j) - mean
			varsum += d * d
		}
		varsum /= 64
		if math.Abs(mean) > 1e-9 {
			t.Fatalf("feature %d mean = %g, want ~0", j, mean)
		}
		if math.Abs(varsum-1) > 1e-2 {
			t.Fatalf("feature %d var = %g, want ~1", j, varsum)
		}
	}
}

func TestBatchNormRunningStatsUsedInEval(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	bn := NewBatchNorm("bn", 2, 2)
	x := tensor.Randn(rng, 2, 32, 2).Apply(func(v float64) float64 { return v*3 + 5 })
	for i := 0; i < 50; i++ {
		if _, err := bn.Forward(x, true); err != nil {
			t.Fatal(err)
		}
	}
	y, err := bn.Forward(x, false)
	if err != nil {
		t.Fatal(err)
	}
	// After long exposure the running stats converge to batch stats, so eval
	// output should be near-normalized too.
	if math.Abs(y.Mean()) > 0.15 {
		t.Fatalf("eval mean = %g, want ~0", y.Mean())
	}
	if err := func() error { _, err := bn.Backward(tensor.New(32, 2)); return err }(); err != nil {
		t.Fatalf("backward after training-mode forward should work: %v", err)
	}
}

func TestBatchNormBackwardWithoutForwardErrors(t *testing.T) {
	bn := NewBatchNorm("bn", 2, 2)
	if _, err := bn.Backward(tensor.New(1, 2)); err == nil {
		t.Fatal("expected error for Backward without Forward")
	}
}

func TestSGDMomentumConvergesQuadratic(t *testing.T) {
	// Minimize f(w) = ||w - target||^2 by hand-feeding gradients.
	target := []float64{3, -2}
	p := NewParam("w", tensor.New(2))
	opt := &SGD{LR: 0.1, Momentum: 0.9}
	for i := 0; i < 600; i++ {
		p.ZeroGrad()
		for j := range target {
			p.Grad.Data()[j] = 2 * (p.Value.Data()[j] - target[j])
		}
		opt.Step([]*Param{p})
	}
	for j, w := range p.Value.Data() {
		if math.Abs(w-target[j]) > 1e-6 {
			t.Fatalf("w[%d] = %g, want %g", j, w, target[j])
		}
	}
}

func TestAdamConvergesQuadratic(t *testing.T) {
	target := []float64{1.5, -0.5, 4}
	p := NewParam("w", tensor.New(3))
	opt := NewAdam(0.05)
	for i := 0; i < 2000; i++ {
		p.ZeroGrad()
		for j := range target {
			p.Grad.Data()[j] = 2 * (p.Value.Data()[j] - target[j])
		}
		opt.Step([]*Param{p})
	}
	for j, w := range p.Value.Data() {
		if math.Abs(w-target[j]) > 1e-3 {
			t.Fatalf("w[%d] = %g, want %g", j, w, target[j])
		}
	}
}

func TestClipGradNorm(t *testing.T) {
	p := NewParam("w", tensor.New(2))
	p.Grad.Data()[0] = 3
	p.Grad.Data()[1] = 4
	norm, err := ClipGradNorm([]*Param{p}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(norm-5) > 1e-12 {
		t.Fatalf("pre-clip norm = %g", norm)
	}
	after := math.Hypot(p.Grad.Data()[0], p.Grad.Data()[1])
	if math.Abs(after-1) > 1e-9 {
		t.Fatalf("post-clip norm = %g, want 1", after)
	}
	if _, err := ClipGradNorm(nil, 0); err == nil {
		t.Fatal("expected error for non-positive max norm")
	}
}

func TestTrainClassifierLearnsBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	// Three well-separated Gaussian blobs in 2-D.
	const perClass = 60
	x := tensor.New(3*perClass, 2)
	labels := make([]int, 3*perClass)
	centers := [][2]float64{{0, 0}, {5, 5}, {-5, 5}}
	for c := 0; c < 3; c++ {
		for i := 0; i < perClass; i++ {
			idx := c*perClass + i
			x.Set(centers[c][0]+rng.NormFloat64()*0.5, idx, 0)
			x.Set(centers[c][1]+rng.NormFloat64()*0.5, idx, 1)
			labels[idx] = c
		}
	}
	net := NewSequential("mlp",
		NewDense("fc1", rng, 2, 16),
		NewReLU(),
		NewDense("fc2", rng, 16, 3),
	)
	res, err := TrainClassifier(net, NewAdam(0.01), rng, x, labels, TrainConfig{Epochs: 30, BatchSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 30 {
		t.Fatalf("got %d epoch results", len(res))
	}
	if res[len(res)-1].Loss > res[0].Loss {
		t.Fatalf("loss did not decrease: %g -> %g", res[0].Loss, res[len(res)-1].Loss)
	}
	pred, err := PredictClasses(net, x, 0)
	if err != nil {
		t.Fatal(err)
	}
	acc, err := Accuracy(pred, labels)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.98 {
		t.Fatalf("blob accuracy = %g, want >= 0.98", acc)
	}

	probs, err := PredictProbs(net, x, 50)
	if err != nil {
		t.Fatal(err)
	}
	if probs.Dim(0) != 3*perClass || probs.Dim(1) != 3 {
		t.Fatalf("probs shape = %v", probs.Shape())
	}
}

func TestTrainClassifierEarlyStop(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	x := tensor.Randn(rng, 1, 10, 2)
	labels := make([]int, 10)
	net := NewSequential("n", NewDense("fc", rng, 2, 2))
	res, err := TrainClassifier(net, NewSGD(0.1), rng, x, labels, TrainConfig{
		Epochs: 100, BatchSize: 5,
		OnEpoch: func(epoch int, loss float64) bool { return epoch < 2 },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("early stop produced %d epochs, want 3", len(res))
	}
}

func TestSaveLoadParamsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	src := NewSequential("a", NewDense("fc1", rng, 3, 4), NewDense("fc2", rng, 4, 2))
	dst := NewSequential("b", NewDense("fc1", rng, 3, 4), NewDense("fc2", rng, 4, 2))

	var buf bytes.Buffer
	if err := SaveParams(&buf, src.Params()); err != nil {
		t.Fatal(err)
	}
	if err := LoadParams(&buf, dst.Params()); err != nil {
		t.Fatal(err)
	}
	for i, p := range src.Params() {
		q := dst.Params()[i]
		for j := range p.Value.Data() {
			if p.Value.Data()[j] != q.Value.Data()[j] {
				t.Fatalf("param %s differs after round trip", p.Name)
			}
		}
	}
}

func TestLoadParamsMissingAndMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	src := NewSequential("a", NewDense("fc1", rng, 3, 4))
	var buf bytes.Buffer
	if err := SaveParams(&buf, src.Params()); err != nil {
		t.Fatal(err)
	}
	other := NewSequential("b", NewDense("other", rng, 3, 4))
	if err := LoadParams(bytes.NewReader(buf.Bytes()), other.Params()); err == nil {
		t.Fatal("expected missing-parameter error")
	}
	smaller := NewSequential("c", NewDense("fc1", rng, 2, 2))
	if err := LoadParams(bytes.NewReader(buf.Bytes()), smaller.Params()); err == nil {
		t.Fatal("expected size-mismatch error")
	}
}

func TestCopyParams(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	src := NewSequential("a", NewDense("fc", rng, 3, 3))
	dst := NewSequential("b", NewDense("fc", rng, 3, 3))
	if err := CopyParams(dst.Params(), src.Params()); err != nil {
		t.Fatal(err)
	}
	for i, p := range src.Params() {
		for j := range p.Value.Data() {
			if dst.Params()[i].Value.Data()[j] != p.Value.Data()[j] {
				t.Fatal("copy params did not copy values")
			}
		}
	}
	if err := CopyParams(dst.Params()[:1], src.Params()); err == nil {
		t.Fatal("expected count mismatch error")
	}
}

func TestSequentialOutFeaturesThreading(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	net := NewSequential("net",
		NewDense("fc1", rng, 4, 8),
		NewReLU(),
		NewDense("fc2", rng, 8, 2),
	)
	out, err := net.OutFeatures(4)
	if err != nil {
		t.Fatal(err)
	}
	if out != 2 {
		t.Fatalf("OutFeatures = %d, want 2", out)
	}
	if _, err := net.OutFeatures(5); err == nil {
		t.Fatal("expected width error")
	}
	if got := net.NumParams(); got != 4*8+8+8*2+2 {
		t.Fatalf("NumParams = %d", got)
	}
}

func TestDenseRejectsWrongWidth(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	d := NewDense("fc", rng, 3, 2)
	if _, err := d.Forward(tensor.New(1, 4), false); err == nil {
		t.Fatal("expected width error")
	}
}

func TestConvRejectsWrongWidth(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	c := NewConv2D("conv", rng, tensor.ConvGeom{
		InC: 1, InH: 4, InW: 4, KH: 2, KW: 2, StrideH: 1, StrideW: 1,
	}, 2)
	if _, err := c.Forward(tensor.New(1, 10), false); err == nil {
		t.Fatal("expected width error")
	}
}

func TestConvKnownValues(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	c := NewConv2D("conv", rng, tensor.ConvGeom{
		InC: 1, InH: 2, InW: 2, KH: 2, KW: 2, StrideH: 1, StrideW: 1,
	}, 1)
	// Identity-ish kernel: w = [1, 0, 0, 1], b = 0.5 -> y = x00 + x11 + 0.5.
	copy(c.w.Value.Data(), []float64{1, 0, 0, 1})
	c.b.Value.Data()[0] = 0.5
	x := tensor.MustFromSlice([]float64{1, 2, 3, 4}, 1, 4)
	y, err := c.Forward(x, false)
	if err != nil {
		t.Fatal(err)
	}
	if y.Size() != 1 || math.Abs(y.At(0, 0)-5.5) > 1e-12 {
		t.Fatalf("conv output = %v, want [5.5]", y.Data())
	}
}

func TestAvgPoolKnownValues(t *testing.T) {
	l := NewAvgPool2D("avg", tensor.ConvGeom{
		InC: 1, InH: 2, InW: 2, KH: 2, KW: 2, StrideH: 2, StrideW: 2,
	})
	x := tensor.MustFromSlice([]float64{1, 2, 3, 4}, 1, 4)
	y, err := l.Forward(x, false)
	if err != nil {
		t.Fatal(err)
	}
	if y.Size() != 1 || y.At(0, 0) != 2.5 {
		t.Fatalf("avg pool = %v, want [2.5]", y.Data())
	}
	if out, err := l.OutFeatures(4); err != nil || out != 1 {
		t.Fatalf("OutFeatures = %d, %v", out, err)
	}
	if _, err := l.Forward(tensor.New(1, 5), false); err == nil {
		t.Fatal("expected width error")
	}
}

func TestTrainClassifierLRStepDecay(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	x := tensor.Randn(rng, 1, 12, 2)
	labels := make([]int, 12)
	net := NewSequential("n", NewDense("fc", rng, 2, 2))
	opt := NewSGD(1.0)
	_, err := TrainClassifier(net, opt, rng, x, labels, TrainConfig{
		Epochs: 5, BatchSize: 4, LRStepEvery: 2, LRStepFactor: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Decays at epochs 2 and 4: 1.0 -> 0.5 -> 0.25.
	if math.Abs(opt.LR-0.25) > 1e-12 {
		t.Fatalf("LR after decay = %g, want 0.25", opt.LR)
	}

	adam := NewAdam(0.1)
	if _, err := TrainClassifier(net, adam, rng, x, labels, TrainConfig{
		Epochs: 3, BatchSize: 4, LRStepEvery: 1, LRStepFactor: 0.1,
	}); err != nil {
		t.Fatal(err)
	}
	if math.Abs(adam.LR-0.001) > 1e-12 {
		t.Fatalf("Adam LR after decay = %g, want 0.001", adam.LR)
	}
}

func TestDistillationLossGradientNumeric(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	student := tensor.Randn(rng, 1, 2, 4)
	teacher := tensor.Randn(rng, 1, 2, 4)
	const temp = 2.5
	_, grad, err := DistillationLoss(student, teacher, temp)
	if err != nil {
		t.Fatal(err)
	}
	const h = 1e-6
	for i := range student.Data() {
		orig := student.Data()[i]
		student.Data()[i] = orig + h
		up, _, _ := DistillationLoss(student, teacher, temp)
		student.Data()[i] = orig - h
		down, _, _ := DistillationLoss(student, teacher, temp)
		student.Data()[i] = orig
		num := (up - down) / (2 * h)
		if math.Abs(num-grad.Data()[i]) > 1e-5 {
			t.Fatalf("grad[%d]: analytic %g vs numeric %g", i, grad.Data()[i], num)
		}
	}
}

func TestDistillationLossIdenticalLogitsIsMinimum(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	logits := tensor.Randn(rng, 1, 3, 5)
	lossSame, grad, err := DistillationLoss(logits, logits, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Gradient at the minimum is zero; loss equals the teacher's softened
	// entropy (positive).
	for i, g := range grad.Data() {
		if math.Abs(g) > 1e-12 {
			t.Fatalf("grad[%d] = %g at the minimum", i, g)
		}
	}
	other := tensor.Randn(rng, 1, 3, 5)
	lossOther, _, err := DistillationLoss(other, logits, 2)
	if err != nil {
		t.Fatal(err)
	}
	if lossOther <= lossSame {
		t.Fatalf("mismatched logits scored %g <= matched %g", lossOther, lossSame)
	}
}

func TestDistillationLossValidation(t *testing.T) {
	a := tensor.New(1, 3)
	if _, _, err := DistillationLoss(a, tensor.New(1, 4), 2); err == nil {
		t.Fatal("expected shape error")
	}
	if _, _, err := DistillationLoss(a, a.Clone(), 0); err == nil {
		t.Fatal("expected temperature error")
	}
}

func TestSequentialSummary(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	net := NewSequential("mlp",
		NewDense("fc1", rng, 4, 8),
		NewReLU(),
		NewDense("fc2", rng, 8, 2),
	)
	s := net.Summary(4)
	for _, want := range []string{"mlp", "fc1", "relu", "fc2", "total parameters: 58"} {
		if !strings.Contains(s, want) {
			t.Fatalf("summary missing %q:\n%s", want, s)
		}
	}
	// A wrong input width is reported, not panicked on.
	if !strings.Contains(net.Summary(5), "width error") {
		t.Fatal("summary should surface width errors")
	}
}

package nn

import (
	"math/rand"

	"darnet/internal/tensor"
)

// Dense is a fully connected layer computing y = x·W + b, where W has shape
// (in, out) and b has shape (out).
type Dense struct {
	name string
	in   int
	out  int
	w    *Param
	b    *Param

	x *tensor.Tensor // cached input for Backward
}

// NewDense returns a fully connected layer with He-initialized weights.
func NewDense(name string, rng *rand.Rand, in, out int) *Dense {
	return &Dense{
		name: name,
		in:   in,
		out:  out,
		w:    NewParam(name+".w", HeInit(rng, in, in, out)),
		b:    NewParam(name+".b", tensor.New(out)),
	}
}

// Name implements Layer.
func (d *Dense) Name() string { return d.name }

// Params implements Layer.
func (d *Dense) Params() []*Param { return []*Param{d.w, d.b} }

// OutFeatures implements Layer.
func (d *Dense) OutFeatures(in int) (int, error) {
	if in != d.in {
		return 0, errBadWidth(d.name, d.in, in)
	}
	return d.out, nil
}

// In returns the layer's input width.
func (d *Dense) In() int { return d.in }

// Out returns the layer's output width.
func (d *Dense) Out() int { return d.out }

// Forward implements Layer.
func (d *Dense) Forward(x *tensor.Tensor, train bool) (*tensor.Tensor, error) {
	if x.Dims() != 2 || x.Dim(1) != d.in {
		return nil, errBadWidth(d.name, d.in, x.Dim(x.Dims()-1))
	}
	y, err := tensor.MatMul(x, d.w.Value)
	if err != nil {
		return nil, err
	}
	if err := y.AddRowVector(d.b.Value); err != nil {
		return nil, err
	}
	if train {
		d.x = x
	}
	return y, nil
}

// Backward implements Layer.
func (d *Dense) Backward(grad *tensor.Tensor) (*tensor.Tensor, error) {
	// dW = xᵀ · grad
	dw, err := tensor.MatMulTransA(d.x, grad)
	if err != nil {
		return nil, err
	}
	d.w.Grad.AddInPlace(dw)

	db, err := grad.SumRows()
	if err != nil {
		return nil, err
	}
	d.b.Grad.AddInPlace(db)

	// dX = grad · Wᵀ
	return tensor.MatMulTransB(grad, d.w.Value)
}

package nn

import (
	"fmt"
	"math"

	"darnet/internal/tensor"
)

// Softmax writes row-wise softmax probabilities of logits into a new tensor.
// It is numerically stabilized by subtracting each row's maximum.
func Softmax(logits *tensor.Tensor) (*tensor.Tensor, error) {
	if logits.Dims() != 2 {
		return nil, fmt.Errorf("nn: softmax requires a 2-D tensor, got %d-D", logits.Dims())
	}
	n := logits.Dim(0)
	out := tensor.New(logits.Shape()...)
	for s := 0; s < n; s++ {
		row := logits.Row(s)
		orow := out.Row(s)
		m := row[0]
		for _, v := range row[1:] {
			if v > m {
				m = v
			}
		}
		sum := 0.0
		for j, v := range row {
			e := math.Exp(v - m)
			orow[j] = e
			sum += e
		}
		for j := range orow {
			orow[j] /= sum
		}
	}
	return out, nil
}

// CrossEntropy computes the fused softmax + cross-entropy loss for integer
// class labels. It returns the mean loss over the batch, the softmax
// probabilities, and dL/dLogits averaged over the batch — the gradient to
// feed into the network's Backward.
func CrossEntropy(logits *tensor.Tensor, labels []int) (loss float64, probs, grad *tensor.Tensor, err error) {
	n := logits.Dim(0)
	if len(labels) != n {
		return 0, nil, nil, fmt.Errorf("nn: cross-entropy has %d labels for batch of %d", len(labels), n)
	}
	probs, err = Softmax(logits)
	if err != nil {
		return 0, nil, nil, err
	}
	classes := logits.Dim(1)
	grad = probs.Clone()
	inv := 1.0 / float64(n)
	for s := 0; s < n; s++ {
		y := labels[s]
		if y < 0 || y >= classes {
			return 0, nil, nil, fmt.Errorf("nn: label %d out of range [0,%d)", y, classes)
		}
		p := probs.At(s, y)
		loss -= math.Log(math.Max(p, 1e-15))
		grow := grad.Row(s)
		grow[y] -= 1
		for j := range grow {
			grow[j] *= inv
		}
	}
	return loss * inv, probs, grad, nil
}

// MSE computes the mean squared error between pred and target plus the
// gradient dL/dPred. The loss is averaged over all elements.
func MSE(pred, target *tensor.Tensor) (loss float64, grad *tensor.Tensor, err error) {
	if !tensor.SameShape(pred, target) {
		return 0, nil, fmt.Errorf("nn: mse shape mismatch %v vs %v", pred.Shape(), target.Shape())
	}
	grad = tensor.New(pred.Shape()...)
	pd, td, gd := pred.Data(), target.Data(), grad.Data()
	inv := 1.0 / float64(len(pd))
	for i := range pd {
		d := pd[i] - td[i]
		loss += d * d
		gd[i] = 2 * d * inv
	}
	return loss * inv, grad, nil
}

// L2Distance computes the summed squared Euclidean distance between pred and
// target rows (the dCNN distillation loss of paper §4.3) averaged over the
// batch, plus dL/dPred.
func L2Distance(pred, target *tensor.Tensor) (loss float64, grad *tensor.Tensor, err error) {
	if !tensor.SameShape(pred, target) {
		return 0, nil, fmt.Errorf("nn: l2 shape mismatch %v vs %v", pred.Shape(), target.Shape())
	}
	n := pred.Dim(0)
	grad = tensor.New(pred.Shape()...)
	pd, td, gd := pred.Data(), target.Data(), grad.Data()
	inv := 1.0 / float64(n)
	for i := range pd {
		d := pd[i] - td[i]
		loss += d * d
		gd[i] = 2 * d * inv
	}
	return loss * inv, grad, nil
}

// DistillationLoss is the softened cross-entropy knowledge-distillation
// objective (Hinton et al.): the student's temperature-scaled softmax is
// matched against the teacher's temperature-scaled softmax,
//
//	L = -T² · mean_i Σ_j p_t(i,j) · log p_s(i,j),
//
// with the standard T² factor keeping gradient magnitudes comparable across
// temperatures. It returns the loss and dL/dStudentLogits. The paper's dCNN
// training uses plain L2 on output vectors (L2Distance); this softened
// objective is provided as the stronger modern alternative.
func DistillationLoss(studentLogits, teacherLogits *tensor.Tensor, temperature float64) (loss float64, grad *tensor.Tensor, err error) {
	if !tensor.SameShape(studentLogits, teacherLogits) {
		return 0, nil, fmt.Errorf("nn: distillation shape mismatch %v vs %v", studentLogits.Shape(), teacherLogits.Shape())
	}
	if temperature <= 0 {
		return 0, nil, fmt.Errorf("nn: distillation temperature must be positive, got %g", temperature)
	}
	n := studentLogits.Dim(0)
	scale := func(t *tensor.Tensor) *tensor.Tensor {
		return t.Clone().ScaleInPlace(1 / temperature)
	}
	ps, err := Softmax(scale(studentLogits))
	if err != nil {
		return 0, nil, err
	}
	pt, err := Softmax(scale(teacherLogits))
	if err != nil {
		return 0, nil, err
	}
	grad = tensor.New(studentLogits.Shape()...)
	inv := 1.0 / float64(n)
	t2 := temperature * temperature
	for i := 0; i < n; i++ {
		srow, trow, grow := ps.Row(i), pt.Row(i), grad.Row(i)
		for j := range srow {
			loss -= trow[j] * math.Log(math.Max(srow[j], 1e-15))
			// d/dz_s of softened CE: (p_s - p_t)/T, times the T² factor and
			// the batch mean.
			grow[j] = t2 * (srow[j] - trow[j]) / temperature * inv
		}
	}
	return loss * inv * t2, grad, nil
}

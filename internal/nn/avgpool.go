package nn

import (
	"fmt"

	"darnet/internal/tensor"
)

// AvgPool2D is a channel-wise 2-D average pooling layer over flattened C×H×W
// rows. Padding positions contribute zeros and are included in the divisor
// (count_include_pad semantics), keeping the backward pass uniform.
type AvgPool2D struct {
	name string
	geom tensor.ConvGeom // InC = channels; KH/KW/Stride = pool window

	inDim int
}

var _ Layer = (*AvgPool2D)(nil)

// NewAvgPool2D returns an average-pooling layer. It panics on invalid
// geometry (a construction-time programming error).
func NewAvgPool2D(name string, geom tensor.ConvGeom) *AvgPool2D {
	if err := geom.Validate(); err != nil {
		panic(fmt.Sprintf("nn: %s: %v", name, err))
	}
	return &AvgPool2D{name: name, geom: geom, inDim: geom.InC * geom.InH * geom.InW}
}

// Name implements Layer.
func (a *AvgPool2D) Name() string { return a.name }

// Params implements Layer.
func (a *AvgPool2D) Params() []*Param { return nil }

// OutFeatures implements Layer.
func (a *AvgPool2D) OutFeatures(in int) (int, error) {
	if in != a.inDim {
		return 0, errBadWidth(a.name, a.inDim, in)
	}
	return a.geom.InC * a.geom.OutH() * a.geom.OutW(), nil
}

// Forward implements Layer.
func (a *AvgPool2D) Forward(x *tensor.Tensor, train bool) (*tensor.Tensor, error) {
	g := a.geom
	if x.Dims() != 2 || x.Dim(1) != a.inDim {
		return nil, errBadWidth(a.name, a.inDim, x.Dim(x.Dims()-1))
	}
	n := x.Dim(0)
	outH, outW := g.OutH(), g.OutW()
	spatial := outH * outW
	inv := 1.0 / float64(g.KH*g.KW)
	out := tensor.New(n, g.InC*spatial)
	for s := 0; s < n; s++ {
		xrow, orow := x.Row(s), out.Row(s)
		for c := 0; c < g.InC; c++ {
			chanOff := c * g.InH * g.InW
			for oh := 0; oh < outH; oh++ {
				for ow := 0; ow < outW; ow++ {
					sum := 0.0
					for kh := 0; kh < g.KH; kh++ {
						ih := oh*g.StrideH + kh - g.PadH
						if ih < 0 || ih >= g.InH {
							continue
						}
						for kw := 0; kw < g.KW; kw++ {
							iw := ow*g.StrideW + kw - g.PadW
							if iw < 0 || iw >= g.InW {
								continue
							}
							sum += xrow[chanOff+ih*g.InW+iw]
						}
					}
					orow[c*spatial+oh*outW+ow] = sum * inv
				}
			}
		}
	}
	return out, nil
}

// Backward implements Layer: each input position receives the mean of the
// gradients of the windows covering it, scaled by 1/(KH*KW).
func (a *AvgPool2D) Backward(grad *tensor.Tensor) (*tensor.Tensor, error) {
	g := a.geom
	n := grad.Dim(0)
	outH, outW := g.OutH(), g.OutW()
	spatial := outH * outW
	if grad.Dim(1) != g.InC*spatial {
		return nil, errBadWidth(a.name+" backward", g.InC*spatial, grad.Dim(1))
	}
	inv := 1.0 / float64(g.KH*g.KW)
	dx := tensor.New(n, a.inDim)
	for s := 0; s < n; s++ {
		grow, drow := grad.Row(s), dx.Row(s)
		for c := 0; c < g.InC; c++ {
			chanOff := c * g.InH * g.InW
			for oh := 0; oh < outH; oh++ {
				for ow := 0; ow < outW; ow++ {
					gv := grow[c*spatial+oh*outW+ow] * inv
					for kh := 0; kh < g.KH; kh++ {
						ih := oh*g.StrideH + kh - g.PadH
						if ih < 0 || ih >= g.InH {
							continue
						}
						for kw := 0; kw < g.KW; kw++ {
							iw := ow*g.StrideW + kw - g.PadW
							if iw < 0 || iw >= g.InW {
								continue
							}
							drow[chanOff+ih*g.InW+iw] += gv
						}
					}
				}
			}
		}
	}
	return dx, nil
}

package nn

import (
	"fmt"
	"math/rand"

	"darnet/internal/tensor"
)

// Conv2D is a 2-D convolution over NCHW volumes flattened into batch rows.
// The input geometry (channels, height, width, kernel, stride, padding) is
// fixed at construction; the layer consumes rows of width InC*InH*InW and
// produces rows of width OutC*OutH*OutW.
//
// The implementation lowers each sample to a patch matrix with im2col and
// performs the convolution as a single matrix multiplication, the standard
// CPU strategy.
type Conv2D struct {
	name string
	geom tensor.ConvGeom
	outC int
	w    *Param // (outC, inC*KH*KW)
	b    *Param // (outC)

	x    *tensor.Tensor // cached input for Backward
	cols []float64      // scratch patch matrix, reused across samples
}

// NewConv2D returns a convolution layer with He-initialized kernels.
// It panics if the geometry is invalid, which indicates a construction-time
// programming error rather than a runtime condition.
func NewConv2D(name string, rng *rand.Rand, geom tensor.ConvGeom, outC int) *Conv2D {
	if err := geom.Validate(); err != nil {
		panic(fmt.Sprintf("nn: %s: %v", name, err))
	}
	if outC <= 0 {
		panic(fmt.Sprintf("nn: %s: non-positive output channels %d", name, outC))
	}
	fanIn := geom.InC * geom.KH * geom.KW
	return &Conv2D{
		name: name,
		geom: geom,
		outC: outC,
		w:    NewParam(name+".w", HeInit(rng, fanIn, outC, fanIn)),
		b:    NewParam(name+".b", tensor.New(outC)),
	}
}

// Name implements Layer.
func (c *Conv2D) Name() string { return c.name }

// Params implements Layer.
func (c *Conv2D) Params() []*Param { return []*Param{c.w, c.b} }

// Geom returns the layer's convolution geometry.
func (c *Conv2D) Geom() tensor.ConvGeom { return c.geom }

// OutC returns the number of output channels.
func (c *Conv2D) OutC() int { return c.outC }

// OutFeatures implements Layer.
func (c *Conv2D) OutFeatures(in int) (int, error) {
	want := c.geom.InC * c.geom.InH * c.geom.InW
	if in != want {
		return 0, errBadWidth(c.name, want, in)
	}
	return c.outC * c.geom.OutH() * c.geom.OutW(), nil
}

func (c *Conv2D) patchRows() int { return c.geom.InC * c.geom.KH * c.geom.KW }

// Forward implements Layer.
func (c *Conv2D) Forward(x *tensor.Tensor, train bool) (*tensor.Tensor, error) {
	inW := c.geom.InC * c.geom.InH * c.geom.InW
	if x.Dims() != 2 || x.Dim(1) != inW {
		return nil, errBadWidth(c.name, inW, x.Dim(x.Dims()-1))
	}
	n := x.Dim(0)
	outH, outW := c.geom.OutH(), c.geom.OutW()
	spatial := outH * outW
	out := tensor.New(n, c.outC*spatial)

	pr := c.patchRows()
	if cap(c.cols) < pr*spatial {
		c.cols = make([]float64, pr*spatial)
	}
	cols := c.cols[:pr*spatial]

	wd := c.w.Value.Data()
	bd := c.b.Value.Data()
	for s := 0; s < n; s++ {
		c.geom.Im2Col(x.Row(s), cols)
		orow := out.Row(s)
		// y[oc, p] = sum_r w[oc, r] * cols[r, p] + b[oc]
		for oc := 0; oc < c.outC; oc++ {
			wrow := wd[oc*pr : (oc+1)*pr]
			dst := orow[oc*spatial : (oc+1)*spatial]
			bias := bd[oc]
			for p := range dst {
				dst[p] = bias
			}
			for r, wv := range wrow {
				if wv == 0 {
					continue
				}
				crow := cols[r*spatial : (r+1)*spatial]
				for p, cv := range crow {
					dst[p] += wv * cv
				}
			}
		}
	}
	if train {
		c.x = x
	}
	return out, nil
}

// Backward implements Layer.
func (c *Conv2D) Backward(grad *tensor.Tensor) (*tensor.Tensor, error) {
	n := grad.Dim(0)
	outH, outW := c.geom.OutH(), c.geom.OutW()
	spatial := outH * outW
	if grad.Dim(1) != c.outC*spatial {
		return nil, errBadWidth(c.name+" backward", c.outC*spatial, grad.Dim(1))
	}
	pr := c.patchRows()
	cols := c.cols[:pr*spatial]
	dcols := make([]float64, pr*spatial)

	dx := tensor.New(c.x.Shape()...)
	wd := c.w.Value.Data()
	wg := c.w.Grad.Data()
	bg := c.b.Grad.Data()

	for s := 0; s < n; s++ {
		c.geom.Im2Col(c.x.Row(s), cols)
		grow := grad.Row(s)

		for oc := 0; oc < c.outC; oc++ {
			gslice := grow[oc*spatial : (oc+1)*spatial]
			// Bias gradient: sum over spatial positions.
			gs := 0.0
			for _, g := range gslice {
				gs += g
			}
			bg[oc] += gs
			// Weight gradient: dW[oc, r] += sum_p g[p] * cols[r, p]
			wgrow := wg[oc*pr : (oc+1)*pr]
			for r := 0; r < pr; r++ {
				crow := cols[r*spatial : (r+1)*spatial]
				acc := 0.0
				for p, g := range gslice {
					acc += g * crow[p]
				}
				wgrow[r] += acc
			}
			// Column gradient: dcols[r, p] += w[oc, r] * g[p]
			wrow := wd[oc*pr : (oc+1)*pr]
			for r, wv := range wrow {
				if wv == 0 {
					continue
				}
				drow := dcols[r*spatial : (r+1)*spatial]
				for p, g := range gslice {
					drow[p] += wv * g
				}
			}
		}
		c.geom.Col2Im(dcols, dx.Row(s))
		for i := range dcols {
			dcols[i] = 0
		}
	}
	return dx, nil
}

package nn

import (
	"fmt"
	"math/rand"

	"darnet/internal/tensor"
)

// TrainConfig controls a supervised classification training run.
type TrainConfig struct {
	Epochs    int
	BatchSize int
	ClipNorm  float64 // 0 disables gradient clipping
	// LRStepEvery and LRStepFactor implement step decay on optimizers that
	// expose a learning rate (SGD, Adam): every LRStepEvery epochs the rate
	// is multiplied by LRStepFactor. Disabled when LRStepEvery is 0.
	LRStepEvery  int
	LRStepFactor float64
	// OnEpoch, when non-nil, is invoked after each epoch with the epoch
	// index and mean training loss; returning false stops training early.
	OnEpoch func(epoch int, loss float64) bool
}

// stepLR applies TrainConfig's step decay to the optimizer at the start of
// the given epoch.
func (cfg TrainConfig) stepLR(opt Optimizer, epoch int) {
	if cfg.LRStepEvery <= 0 || cfg.LRStepFactor <= 0 || epoch == 0 || epoch%cfg.LRStepEvery != 0 {
		return
	}
	switch o := opt.(type) {
	case *SGD:
		o.LR *= cfg.LRStepFactor
	case *Adam:
		o.LR *= cfg.LRStepFactor
	}
}

// EpochResult summarizes one training epoch.
type EpochResult struct {
	Epoch int
	Loss  float64
}

// TrainClassifier runs mini-batch softmax cross-entropy training of net on
// (x, labels) using opt, shuffling with rng each epoch. It returns per-epoch
// mean losses.
func TrainClassifier(net *Sequential, opt Optimizer, rng *rand.Rand, x *tensor.Tensor, labels []int, cfg TrainConfig) ([]EpochResult, error) {
	n := x.Dim(0)
	if len(labels) != n {
		return nil, fmt.Errorf("nn: train: %d labels for %d samples", len(labels), n)
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 32
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 1
	}
	width := x.Dim(1)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}

	var results []EpochResult
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		cfg.stepLR(opt, epoch)
		rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
		totalLoss, batches := 0.0, 0
		for start := 0; start < n; start += cfg.BatchSize {
			end := min(start+cfg.BatchSize, n)
			bs := end - start
			bx := tensor.New(bs, width)
			by := make([]int, bs)
			for i := 0; i < bs; i++ {
				src := order[start+i]
				copy(bx.Row(i), x.Row(src))
				by[i] = labels[src]
			}
			net.ZeroGrad()
			logits, err := net.Forward(bx, true)
			if err != nil {
				return results, fmt.Errorf("nn: train forward: %w", err)
			}
			loss, _, grad, err := CrossEntropy(logits, by)
			if err != nil {
				return results, fmt.Errorf("nn: train loss: %w", err)
			}
			if _, err := net.Backward(grad); err != nil {
				return results, fmt.Errorf("nn: train backward: %w", err)
			}
			if cfg.ClipNorm > 0 {
				if _, err := ClipGradNorm(net.Params(), cfg.ClipNorm); err != nil {
					return results, err
				}
			}
			opt.Step(net.Params())
			totalLoss += loss
			batches++
		}
		mean := totalLoss / float64(batches)
		results = append(results, EpochResult{Epoch: epoch, Loss: mean})
		if cfg.OnEpoch != nil && !cfg.OnEpoch(epoch, mean) {
			break
		}
	}
	return results, nil
}

// PredictClasses returns the arg-max class per row of x under net, evaluating
// in batches to bound memory.
func PredictClasses(net *Sequential, x *tensor.Tensor, batchSize int) ([]int, error) {
	if batchSize <= 0 {
		batchSize = 64
	}
	n := x.Dim(0)
	width := x.Dim(1)
	out := make([]int, 0, n)
	for start := 0; start < n; start += batchSize {
		end := min(start+batchSize, n)
		bs := end - start
		bx := tensor.New(bs, width)
		for i := 0; i < bs; i++ {
			copy(bx.Row(i), x.Row(start+i))
		}
		logits, err := net.Predict(bx)
		if err != nil {
			return nil, fmt.Errorf("nn: predict: %w", err)
		}
		out = append(out, logits.ArgMaxRow()...)
	}
	return out, nil
}

// PredictProbs returns row-wise softmax probabilities for x under net,
// evaluating in batches to bound memory.
func PredictProbs(net *Sequential, x *tensor.Tensor, batchSize int) (*tensor.Tensor, error) {
	if batchSize <= 0 {
		batchSize = 64
	}
	n := x.Dim(0)
	width := x.Dim(1)
	var out *tensor.Tensor
	for start := 0; start < n; start += batchSize {
		end := min(start+batchSize, n)
		bs := end - start
		bx := tensor.New(bs, width)
		for i := 0; i < bs; i++ {
			copy(bx.Row(i), x.Row(start+i))
		}
		logits, err := net.Predict(bx)
		if err != nil {
			return nil, fmt.Errorf("nn: predict: %w", err)
		}
		probs, err := Softmax(logits)
		if err != nil {
			return nil, err
		}
		if out == nil {
			out = tensor.New(n, probs.Dim(1))
		}
		for i := 0; i < bs; i++ {
			copy(out.Row(start+i), probs.Row(i))
		}
	}
	return out, nil
}

// Accuracy returns the fraction of predictions equal to labels.
func Accuracy(pred, labels []int) (float64, error) {
	if len(pred) != len(labels) {
		return 0, fmt.Errorf("nn: accuracy: %d predictions for %d labels", len(pred), len(labels))
	}
	if len(pred) == 0 {
		return 0, nil
	}
	hits := 0
	for i, p := range pred {
		if p == labels[i] {
			hits++
		}
	}
	return float64(hits) / float64(len(pred)), nil
}

// Package nn is a from-scratch CPU deep-learning library: composable layers
// (dense, convolution, pooling, batch normalization, dropout, inception-style
// parallel modules), loss functions, and first-order optimizers. It provides
// the CNN substrate that DarNet's frame classifier and privacy-preserving
// dCNN models are built on.
//
// Layers operate on 2-D batches: every input and output tensor has shape
// (N, features), where spatially structured layers (Conv2D, pooling) interpret
// the feature axis as a flattened C×H×W volume whose geometry is fixed at
// construction time.
package nn

import (
	"fmt"

	"darnet/internal/tensor"
)

// Param is a trainable parameter: a value tensor and its accumulated gradient.
type Param struct {
	Name  string
	Value *tensor.Tensor
	Grad  *tensor.Tensor
}

// NewParam returns a parameter wrapping value, with a zeroed gradient of the
// same shape.
func NewParam(name string, value *tensor.Tensor) *Param {
	return &Param{
		Name:  name,
		Value: value,
		Grad:  tensor.New(value.Shape()...),
	}
}

// ZeroGrad clears the accumulated gradient.
func (p *Param) ZeroGrad() { p.Grad.Zero() }

// Layer is one differentiable stage of a network.
//
// Forward consumes a batch (N, inFeatures) and produces (N, outFeatures).
// When train is true the layer may cache activations needed by Backward and
// apply training-only behaviour (dropout masks, batch statistics).
//
// Backward consumes dL/dOut for the most recent Forward call and returns
// dL/dIn, accumulating parameter gradients into Params. Calling Backward
// without a preceding training-mode Forward is a programming error.
type Layer interface {
	Name() string
	Forward(x *tensor.Tensor, train bool) (*tensor.Tensor, error)
	Backward(grad *tensor.Tensor) (*tensor.Tensor, error)
	Params() []*Param
	// OutFeatures reports the width of the layer's output rows given the
	// width of its input rows, or an error if the width is incompatible.
	OutFeatures(in int) (int, error)
}

// errBadWidth builds the standard incompatible-input-width error.
func errBadWidth(layer string, want, got int) error {
	return fmt.Errorf("nn: %s expects input width %d, got %d", layer, want, got)
}

package nn

import (
	"fmt"
	"math/rand"

	"darnet/internal/tensor"
)

// Parallel runs several tower sub-networks on the same input and concatenates
// their outputs along the feature axis. With convolutional towers that share
// output spatial dimensions and channel-major layout, feature concatenation
// is exactly channel concatenation — the Inception "mixed module" pattern of
// Szegedy et al. that the paper's frame classifier builds on.
type Parallel struct {
	name   string
	towers []Layer

	splits []int // per-tower output widths from the most recent Forward
}

var _ Layer = (*Parallel)(nil)

// NewParallel returns a module running towers on a shared input and
// concatenating their outputs.
func NewParallel(name string, towers ...Layer) *Parallel {
	if len(towers) == 0 {
		panic(fmt.Sprintf("nn: %s: parallel module needs at least one tower", name))
	}
	return &Parallel{name: name, towers: towers}
}

// Name implements Layer.
func (p *Parallel) Name() string { return p.name }

// Params implements Layer.
func (p *Parallel) Params() []*Param {
	var ps []*Param
	for _, t := range p.towers {
		ps = append(ps, t.Params()...)
	}
	return ps
}

// StateParams implements Stateful by collecting tower state.
func (p *Parallel) StateParams() []*Param {
	var ps []*Param
	for _, t := range p.towers {
		if st, ok := t.(Stateful); ok {
			ps = append(ps, st.StateParams()...)
		}
	}
	return ps
}

// OutFeatures implements Layer: the sum of tower output widths.
func (p *Parallel) OutFeatures(in int) (int, error) {
	total := 0
	for _, t := range p.towers {
		w, err := t.OutFeatures(in)
		if err != nil {
			return 0, fmt.Errorf("%s: %w", p.name, err)
		}
		total += w
	}
	return total, nil
}

// Forward implements Layer.
func (p *Parallel) Forward(x *tensor.Tensor, train bool) (*tensor.Tensor, error) {
	n := x.Dim(0)
	outs := make([]*tensor.Tensor, len(p.towers))
	p.splits = make([]int, len(p.towers))
	total := 0
	for i, t := range p.towers {
		y, err := t.Forward(x, train)
		if err != nil {
			return nil, fmt.Errorf("%s: tower %s: %w", p.name, t.Name(), err)
		}
		if y.Dim(0) != n {
			return nil, fmt.Errorf("%s: tower %s changed batch size %d -> %d", p.name, t.Name(), n, y.Dim(0))
		}
		outs[i] = y
		p.splits[i] = y.Dim(1)
		total += y.Dim(1)
	}
	out := tensor.New(n, total)
	for s := 0; s < n; s++ {
		orow := out.Row(s)
		off := 0
		for i, y := range outs {
			copy(orow[off:off+p.splits[i]], y.Row(s))
			off += p.splits[i]
		}
	}
	return out, nil
}

// Backward implements Layer: split the gradient per tower and sum the
// resulting input gradients.
func (p *Parallel) Backward(grad *tensor.Tensor) (*tensor.Tensor, error) {
	n := grad.Dim(0)
	var dx *tensor.Tensor
	off := 0
	for i, t := range p.towers {
		w := p.splits[i]
		sub := tensor.New(n, w)
		for s := 0; s < n; s++ {
			copy(sub.Row(s), grad.Row(s)[off:off+w])
		}
		off += w
		d, err := t.Backward(sub)
		if err != nil {
			return nil, fmt.Errorf("%s: tower %s backward: %w", p.name, t.Name(), err)
		}
		if dx == nil {
			dx = d
		} else {
			dx.AddInPlace(d)
		}
	}
	return dx, nil
}

// InceptionSpec configures one inception-style mixed module over a C×H×W
// input volume. Each enabled tower preserves spatial dimensions ("same"
// padding) so the outputs concatenate along the channel axis.
type InceptionSpec struct {
	InC, InH, InW int
	C1x1          int // channels of the 1×1 tower (0 disables)
	C3x3Reduce    int // 1×1 reduction before the 3×3 tower
	C3x3          int // channels of the 3×3 tower (0 disables)
	C5x5Reduce    int // 1×1 reduction before the 5×5 tower
	C5x5          int // channels of the 5×5 tower (0 disables)
	CPool         int // channels of the pool-projection tower (0 disables)
}

// OutC returns the module's total output channel count.
func (sp InceptionSpec) OutC() int { return sp.C1x1 + sp.C3x3 + sp.C5x5 + sp.CPool }

// NewInception builds an inception mixed module per spec: parallel 1×1, 1×1→3×3,
// 1×1→5×5, and maxpool→1×1 towers with ReLU activations, concatenated along
// channels. rng must be non-nil. It panics on an empty spec (programming error).
func NewInception(name string, rng *rand.Rand, sp InceptionSpec) *Parallel {
	conv := func(tag string, inC, outC, k, pad int) *Conv2D {
		return NewConv2D(name+"."+tag, rng, tensor.ConvGeom{
			InC: inC, InH: sp.InH, InW: sp.InW,
			KH: k, KW: k, StrideH: 1, StrideW: 1, PadH: pad, PadW: pad,
		}, outC)
	}
	var towers []Layer
	if sp.C1x1 > 0 {
		towers = append(towers, NewSequential(name+".t1",
			conv("1x1", sp.InC, sp.C1x1, 1, 0), NewReLU()))
	}
	if sp.C3x3 > 0 {
		t := NewSequential(name + ".t3")
		inC := sp.InC
		if sp.C3x3Reduce > 0 {
			t.Add(conv("3x3r", sp.InC, sp.C3x3Reduce, 1, 0))
			t.Add(NewReLU())
			inC = sp.C3x3Reduce
		}
		t.Add(conv("3x3", inC, sp.C3x3, 3, 1))
		t.Add(NewReLU())
		towers = append(towers, t)
	}
	if sp.C5x5 > 0 {
		t := NewSequential(name + ".t5")
		inC := sp.InC
		if sp.C5x5Reduce > 0 {
			t.Add(conv("5x5r", sp.InC, sp.C5x5Reduce, 1, 0))
			t.Add(NewReLU())
			inC = sp.C5x5Reduce
		}
		t.Add(conv("5x5", inC, sp.C5x5, 5, 2))
		t.Add(NewReLU())
		towers = append(towers, t)
	}
	if sp.CPool > 0 {
		pool := NewMaxPool2D(name+".pool", tensor.ConvGeom{
			InC: sp.InC, InH: sp.InH, InW: sp.InW,
			KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1,
		})
		towers = append(towers, NewSequential(name+".tp",
			pool, conv("poolproj", sp.InC, sp.CPool, 1, 0), NewReLU()))
	}
	if len(towers) == 0 {
		panic(fmt.Sprintf("nn: %s: inception spec enables no towers", name))
	}
	return NewParallel(name, towers...)
}

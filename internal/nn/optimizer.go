package nn

import (
	"fmt"
	"math"

	"darnet/internal/tensor"
)

// Optimizer updates parameters from their accumulated gradients.
type Optimizer interface {
	// Step applies one update to every parameter and clears nothing; callers
	// zero gradients between batches.
	Step(params []*Param)
}

// SGD is stochastic gradient descent with optional momentum and L2 weight
// decay.
type SGD struct {
	LR          float64
	Momentum    float64
	WeightDecay float64

	velocity map[*Param]*tensor.Tensor
}

var _ Optimizer = (*SGD)(nil)

// NewSGD returns an SGD optimizer with the given learning rate.
func NewSGD(lr float64) *SGD { return &SGD{LR: lr} }

// Step implements Optimizer.
func (o *SGD) Step(params []*Param) {
	for _, p := range params {
		g := p.Grad
		if o.WeightDecay > 0 {
			g = g.Clone().AddScaledInPlace(p.Value, o.WeightDecay)
		}
		if o.Momentum > 0 {
			if o.velocity == nil {
				o.velocity = make(map[*Param]*tensor.Tensor)
			}
			v, ok := o.velocity[p]
			if !ok {
				v = tensor.New(p.Value.Shape()...)
				o.velocity[p] = v
			}
			v.ScaleInPlace(o.Momentum).AddInPlace(g)
			g = v
		}
		p.Value.AddScaledInPlace(g, -o.LR)
	}
}

// Adam is the Adam optimizer (Kingma & Ba) with bias correction.
type Adam struct {
	LR          float64
	Beta1       float64
	Beta2       float64
	Eps         float64
	WeightDecay float64

	t int
	m map[*Param]*tensor.Tensor
	v map[*Param]*tensor.Tensor
}

var _ Optimizer = (*Adam)(nil)

// NewAdam returns an Adam optimizer with standard defaults
// (beta1=0.9, beta2=0.999, eps=1e-8).
func NewAdam(lr float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8}
}

// Step implements Optimizer.
func (o *Adam) Step(params []*Param) {
	if o.m == nil {
		o.m = make(map[*Param]*tensor.Tensor)
		o.v = make(map[*Param]*tensor.Tensor)
	}
	o.t++
	bc1 := 1 - math.Pow(o.Beta1, float64(o.t))
	bc2 := 1 - math.Pow(o.Beta2, float64(o.t))
	for _, p := range params {
		m, ok := o.m[p]
		if !ok {
			m = tensor.New(p.Value.Shape()...)
			o.m[p] = m
			o.v[p] = tensor.New(p.Value.Shape()...)
		}
		v := o.v[p]
		gd := p.Grad.Data()
		md, vd, pd := m.Data(), v.Data(), p.Value.Data()
		for i, g := range gd {
			if o.WeightDecay > 0 {
				g += o.WeightDecay * pd[i]
			}
			md[i] = o.Beta1*md[i] + (1-o.Beta1)*g
			vd[i] = o.Beta2*vd[i] + (1-o.Beta2)*g*g
			mhat := md[i] / bc1
			vhat := vd[i] / bc2
			pd[i] -= o.LR * mhat / (math.Sqrt(vhat) + o.Eps)
		}
	}
}

// ClipGradNorm rescales all gradients so their global L2 norm does not exceed
// maxNorm, returning the pre-clip norm. A non-positive maxNorm is an error.
func ClipGradNorm(params []*Param, maxNorm float64) (float64, error) {
	if maxNorm <= 0 {
		return 0, fmt.Errorf("nn: clip norm must be positive, got %g", maxNorm)
	}
	total := 0.0
	for _, p := range params {
		for _, g := range p.Grad.Data() {
			total += g * g
		}
	}
	norm := math.Sqrt(total)
	if norm > maxNorm {
		scale := maxNorm / (norm + 1e-12)
		for _, p := range params {
			p.Grad.ScaleInPlace(scale)
		}
	}
	return norm, nil
}

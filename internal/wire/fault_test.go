package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
)

// rwBuf wraps raw stream bytes in the io.ReadWriter NewConn expects.
func rwBuf(b []byte) *bytes.Buffer { return bytes.NewBuffer(b) }

// encodeFrame renders one message to its on-the-wire bytes.
func encodeFrame(t *testing.T, m Message) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := NewConn(&buf).Send(m); err != nil {
		t.Fatalf("encode %T: %v", m, err)
	}
	return buf.Bytes()
}

func testBatch() *SampleBatch {
	return &SampleBatch{
		AgentID: "imu-1",
		Seq:     7,
		Readings: []Reading{
			{TimestampMillis: 100, Sensor: "accel", Values: []float64{1, 2, 3}},
			{TimestampMillis: 125, Sensor: "gyro", Values: []float64{0.5}},
		},
	}
}

// TestRecvCorruptedFrames drives fuzz-style corruptions of a valid frame
// through Recv and asserts each yields its typed error — never a panic, and
// never a silently mis-decoded message.
func TestRecvCorruptedFrames(t *testing.T) {
	base := encodeFrame(t, testBatch())
	cases := []struct {
		name    string
		mutate  func([]byte) []byte
		wantErr error
	}{
		{
			name: "length prefix inflated past the body",
			mutate: func(b []byte) []byte {
				binary.BigEndian.PutUint32(b[:4], uint32(len(b)-4)+64)
				return b
			},
			// The stream ends before the declared frame does: an unexpected
			// EOF reading the body, not a clean close.
			wantErr: io.ErrUnexpectedEOF,
		},
		{
			name: "length prefix beyond MaxFrameSize",
			mutate: func(b []byte) []byte {
				binary.BigEndian.PutUint32(b[:4], MaxFrameSize+1)
				return b
			},
			wantErr: ErrFrameTooLarge,
		},
		{
			name: "zero length prefix",
			mutate: func(b []byte) []byte {
				binary.BigEndian.PutUint32(b[:4], 0)
				return b
			},
			wantErr: ErrEmptyFrame,
		},
		{
			name: "flipped type byte",
			mutate: func(b []byte) []byte {
				b[4] = 0xEE
				return b
			},
			wantErr: ErrUnknownType,
		},
		{
			name: "length prefix shortened mid-body",
			mutate: func(b []byte) []byte {
				// Keep only the first 12 body bytes: the batch decoder runs
				// out of frame mid-field, and the bytes that follow belong to
				// no frame — but this first Recv must fail typed.
				binary.BigEndian.PutUint32(b[:4], 12)
				return b
			},
			wantErr: ErrTruncatedFrame,
		},
		{
			name: "reading count inflated",
			mutate: func(b []byte) []byte {
				// Body layout: type u8, agentID (u32 len + 5), seq u64; the
				// reading count u32 sits at body offset 1+4+5+8 = 18.
				binary.BigEndian.PutUint32(b[4+18:], 3)
				return b
			},
			wantErr: ErrTruncatedFrame,
		},
		{
			name: "trailing bytes after the last field",
			mutate: func(b []byte) []byte {
				b = append(b, 0xAA, 0xBB)
				binary.BigEndian.PutUint32(b[:4], uint32(len(b)-4))
				return b
			},
			wantErr: ErrTrailingBytes,
		},
		{
			name: "string length inflated",
			mutate: func(b []byte) []byte {
				// The agentID length prefix is the first body field after the
				// type byte (body offset 1).
				binary.BigEndian.PutUint32(b[4+1:], 1<<20)
				return b
			},
			wantErr: ErrFieldTooLarge,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			frame := tc.mutate(append([]byte(nil), base...))
			msg, err := NewConn(rwBuf(frame)).Recv()
			if err == nil {
				t.Fatalf("corrupted frame decoded to %T", msg)
			}
			if !errors.Is(err, tc.wantErr) {
				t.Fatalf("err = %v, want %v", err, tc.wantErr)
			}
		})
	}
}

// TestRecvStringLengthCorruption corrupts the inner string length prefix so
// it stays inside the 64 KiB string bound but overruns the frame: the reader
// must fail with the string-rejection or truncation error, not panic.
func TestRecvInnerCorruptionsNeverPanic(t *testing.T) {
	base := encodeFrame(t, testBatch())
	// Flip every single byte in turn; Recv must always return (message, nil)
	// or (nil, error) without panicking. This is the fuzz-lite sweep the
	// chaos transport's corrupt fault relies on.
	for i := 4; i < len(base); i++ {
		frame := append([]byte(nil), base...)
		frame[i] ^= 0xFF
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic decoding frame with byte %d flipped: %v", i, r)
				}
			}()
			_, _ = NewConn(rwBuf(frame)).Recv()
		}()
	}
}

// TestRecvReplayedBatch replays the identical batch frame twice on one
// stream: both decode cleanly and carry the same sequence number, which is
// exactly the signal the controller's dedupe keys on (at-least-once delivery
// lives above the framing layer).
func TestRecvReplayedBatch(t *testing.T) {
	frame := encodeFrame(t, testBatch())
	stream := append(append([]byte(nil), frame...), frame...)
	conn := NewConn(rwBuf(stream))
	first, err := conn.Recv()
	if err != nil {
		t.Fatal(err)
	}
	second, err := conn.Recv()
	if err != nil {
		t.Fatalf("replayed frame rejected at the framing layer: %v", err)
	}
	b1, ok1 := first.(*SampleBatch)
	b2, ok2 := second.(*SampleBatch)
	if !ok1 || !ok2 {
		t.Fatalf("decoded %T and %T, want *SampleBatch twice", first, second)
	}
	if b1.Seq != b2.Seq || b1.Seq != 7 {
		t.Fatalf("replayed seq = %d vs %d, want both 7", b1.Seq, b2.Seq)
	}
	if len(b2.Readings) != len(b1.Readings) {
		t.Fatalf("replay decoded %d readings, want %d", len(b2.Readings), len(b1.Readings))
	}
}

// TestHeartbeatRoundTrip covers the protocol v2 liveness message.
func TestHeartbeatRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	conn := NewConn(&buf)
	if err := conn.Send(&Heartbeat{AgentID: "cam-2"}); err != nil {
		t.Fatal(err)
	}
	msg, err := NewConn(rwBuf(buf.Bytes())).Recv()
	if err != nil {
		t.Fatal(err)
	}
	hb, ok := msg.(*Heartbeat)
	if !ok {
		t.Fatalf("decoded %T, want *Heartbeat", msg)
	}
	if hb.AgentID != "cam-2" {
		t.Fatalf("agent ID = %q", hb.AgentID)
	}
}

// TestSampleBatchSeqRoundTrip pins the v2 sequence-number field through a
// full encode/decode cycle, including the zero legacy value.
func TestSampleBatchSeqRoundTrip(t *testing.T) {
	for _, seq := range []uint64{0, 1, 1 << 40} {
		b := testBatch()
		b.Seq = seq
		msg, err := NewConn(rwBuf(encodeFrame(t, b))).Recv()
		if err != nil {
			t.Fatal(err)
		}
		got, ok := msg.(*SampleBatch)
		if !ok {
			t.Fatalf("decoded %T", msg)
		}
		if got.Seq != seq {
			t.Fatalf("seq = %d, want %d", got.Seq, seq)
		}
	}
}

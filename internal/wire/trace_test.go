package wire

import (
	"reflect"
	"testing"

	"darnet/internal/telemetry"
)

func TestSampleBatchTraceRoundTrip(t *testing.T) {
	m := &SampleBatch{
		AgentID: "imu-3",
		Seq:     42,
		Readings: []Reading{
			{TimestampMillis: 100, Sensor: "accel", Values: []float64{1, 2, 3}},
		},
		Trace: telemetry.SpanContext{
			TraceID:      0xdeadbeefcafef00d,
			SpanID:       0x0123456789abcdef,
			Sampled:      true,
			SentUnixNano: 1700000000123456789,
		},
	}
	got := roundTrip(t, m)
	if !reflect.DeepEqual(m, got) {
		t.Fatalf("trace round trip: %+v != %+v", got, m)
	}

	// Unsampled-but-present context keeps the flag clear across the wire.
	m.Trace.Sampled = false
	got = roundTrip(t, m)
	if !reflect.DeepEqual(m, got) {
		t.Fatalf("unsampled trace round trip: %+v != %+v", got, m)
	}
}

// TestSampleBatchNoTraceIsV3Identical pins the compatibility contract: a v4
// batch without a trace context encodes to exactly the bytes a v3 sender
// produces, and decoding a v3 frame yields the zero ("no trace") context.
func TestSampleBatchNoTraceIsV3Identical(t *testing.T) {
	batch := func() *SampleBatch {
		return &SampleBatch{
			AgentID:  "legacy-1",
			Seq:      7,
			Readings: []Reading{{TimestampMillis: 5, Sensor: "gyro", Values: []float64{0.5}}},
		}
	}

	// v3 encoding, hand-built field by field per PROTOCOL.md.
	var v3 writer
	v3.str("legacy-1")
	v3.u64(7)
	v3.u32(1)
	v3.i64(5)
	v3.str("gyro")
	v3.u32(1)
	v3.f64(0.5)

	var v4 writer
	batch().encodeBody(&v4)
	if !reflect.DeepEqual(v3.buf, v4.buf) {
		t.Fatalf("traceless v4 encoding diverges from v3:\nv3 %x\nv4 %x", v3.buf, v4.buf)
	}

	var decoded SampleBatch
	if err := decoded.decodeBody(&reader{buf: v3.buf}); err != nil {
		t.Fatalf("decode v3 frame: %v", err)
	}
	if decoded.Trace != (telemetry.SpanContext{}) {
		t.Fatalf("v3 frame must decode to the absent trace context, got %+v", decoded.Trace)
	}
	if !reflect.DeepEqual(&decoded, batch()) {
		t.Fatalf("v3 decode mismatch: %+v", &decoded)
	}
}

func TestSampleBatchMangledTraceFieldRejected(t *testing.T) {
	m := &SampleBatch{
		AgentID: "x",
		Trace:   telemetry.SpanContext{TraceID: 1, SpanID: 2, Sampled: true},
	}
	// A trace field of any length other than exactly traceFieldSize is
	// indistinguishable from trailing garbage and must be rejected by Recv's
	// trailing-bytes check — never parsed partially, never panicking.
	var w writer
	m.encodeBody(&w)
	for cut := 1; cut < traceFieldSize; cut++ {
		body := w.buf[:len(w.buf)-cut]
		frame := make([]byte, 0, 5+len(body))
		frame = append(frame, 0, 0, 0, 0, uint8(TypeSampleBatch))
		frame = append(frame, body...)
		frame[0] = byte((len(frame) - 4) >> 24)
		frame[1] = byte((len(frame) - 4) >> 16)
		frame[2] = byte((len(frame) - 4) >> 8)
		frame[3] = byte(len(frame) - 4)
		if _, err := NewConn(rwBuf(frame)).Recv(); err == nil {
			t.Fatalf("mangled trace field (cut %d bytes) decoded without error", cut)
		}
	}
}

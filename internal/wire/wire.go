// Package wire implements the framing and message encoding spoken between
// DarNet collection agents and the centralized controller (paper §3.1–3.2):
// agent hello, timestamped sample batches, the master-slave clock
// synchronization exchange, and acknowledgements. Frames are length-prefixed
// binary, transport-agnostic (TCP in deployment, in-memory pipes in tests).
package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"time"

	"darnet/internal/telemetry"
)

// Process-wide transport metrics: bytes and messages crossing every wire
// connection, plus malformed-frame rejections. Per-connection accounting
// (Conn.BytesRead/BytesWritten) remains the processing policy's bandwidth
// input; these aggregate across connections for the ops endpoint.
var (
	mBytesSent    = telemetry.NewCounter("darnet_wire_bytes_sent_total", "framed bytes written across all connections")
	mBytesRecv    = telemetry.NewCounter("darnet_wire_bytes_received_total", "framed bytes read across all connections")
	mMsgsSent     = telemetry.NewCounter("darnet_wire_messages_sent_total", "protocol messages sent")
	mMsgsRecv     = telemetry.NewCounter("darnet_wire_messages_received_total", "protocol messages received")
	mDecodeErrors = telemetry.NewCounter("darnet_wire_decode_errors_total", "frames rejected as malformed (oversized, empty, unknown type, short body, trailing bytes)")
)

// MsgType identifies a protocol message.
type MsgType uint8

// Protocol message types.
const (
	TypeHello MsgType = iota + 1
	TypeSampleBatch
	TypeClockSync
	TypeClockAck
	TypeAck
	TypeHeartbeat
)

// ProtocolVersion is the wire protocol revision (see PROTOCOL.md). Version 2
// added per-agent batch sequence numbers and the heartbeat message, the basis
// of at-least-once delivery with controller-side deduplication. Version 3
// added the credit field on Ack, the backpressure signal of the streaming
// classification pipeline. Version 4 added the optional trailing
// trace-context field on SampleBatch, joining agent-side and controller-side
// spans into one distributed trace.
const ProtocolVersion = 4

// MaxFrameSize bounds a single frame; oversized frames indicate corruption
// or abuse and abort the connection.
const MaxFrameSize = 16 << 20

// Typed framing errors. Recv wraps them with context, so match with
// errors.Is; all of them indicate a corrupt or hostile stream and abort the
// connection rather than panicking on malformed input.
var (
	// ErrFrameTooLarge is returned when a frame exceeds MaxFrameSize.
	ErrFrameTooLarge = errors.New("wire: frame exceeds maximum size")
	// ErrEmptyFrame is returned for a zero-length frame (no type byte).
	ErrEmptyFrame = errors.New("wire: empty frame")
	// ErrUnknownType is returned when the type byte names no known message.
	ErrUnknownType = errors.New("wire: unknown message type")
	// ErrTruncatedFrame is returned when a body ends before its declared
	// fields do (e.g. a corrupted length prefix inside the frame).
	ErrTruncatedFrame = errors.New("wire: truncated frame")
	// ErrTrailingBytes is returned when a body carries bytes past its last
	// declared field.
	ErrTrailingBytes = errors.New("wire: trailing bytes in frame")
	// ErrFieldTooLarge is returned when a length-prefixed field (string,
	// reading count, value count) declares more elements than its bound
	// allows — a corrupted prefix caught before any allocation.
	ErrFieldTooLarge = errors.New("wire: field exceeds its bound")
)

// Message is one protocol message.
type Message interface {
	Type() MsgType
	encodeBody(w *writer)
	decodeBody(r *reader) error
}

// Hello announces an agent to the controller.
type Hello struct {
	AgentID      string
	Modality     string // "imu", "camera", ...
	PeriodMillis uint32 // sensor polling period
}

// Type implements Message.
func (*Hello) Type() MsgType { return TypeHello }

func (m *Hello) encodeBody(w *writer) {
	w.str(m.AgentID)
	w.str(m.Modality)
	w.u32(m.PeriodMillis)
}

func (m *Hello) decodeBody(r *reader) error {
	m.AgentID = r.str()
	m.Modality = r.str()
	m.PeriodMillis = r.u32()
	return r.err
}

// Reading is one timestamped sensor observation: a named sensor channel and
// its values (e.g. 3 accelerometer axes, or W*H pixels for a camera frame).
type Reading struct {
	TimestampMillis int64
	Sensor          string
	Values          []float64
}

// SampleBatch carries buffered readings from an agent.
//
// Seq is the per-agent batch sequence number (protocol v2): agents number
// batches 1, 2, 3… and only advance after the controller's Ack, so a batch
// retransmitted after a reconnect reuses its original number and the
// controller can drop the replay. Seq 0 marks a legacy batch that is never
// deduplicated.
type SampleBatch struct {
	AgentID  string
	Seq      uint64
	Readings []Reading

	// Trace is the agent-side flush span's context (protocol v4), encoded as
	// an optional trailing field: present only when the context is non-zero,
	// so a v3 peer — or a v4 agent with tracing disabled — emits and accepts
	// byte-identical v3 frames. The zero value means "no trace".
	Trace telemetry.SpanContext
}

// traceFieldSize is the encoded size of the optional v4 trace-context field:
// trace ID (u64) + span ID (u64) + flags (u8, bit 0 = sampled) + send
// timestamp (i64 nanoseconds).
const traceFieldSize = 8 + 8 + 1 + 8

// Type implements Message.
func (*SampleBatch) Type() MsgType { return TypeSampleBatch }

func (m *SampleBatch) encodeBody(w *writer) {
	w.str(m.AgentID)
	w.u64(m.Seq)
	w.u32(uint32(len(m.Readings)))
	for _, rd := range m.Readings {
		w.i64(rd.TimestampMillis)
		w.str(rd.Sensor)
		w.u32(uint32(len(rd.Values)))
		for _, v := range rd.Values {
			w.f64(v)
		}
	}
	// Optional v4 trace context, written only when present: absence keeps the
	// frame byte-identical to v3, which is the whole compatibility story.
	if m.Trace.TraceID != 0 || m.Trace.SpanID != 0 {
		w.u64(m.Trace.TraceID)
		w.u64(m.Trace.SpanID)
		var flags uint8
		if m.Trace.Sampled {
			flags |= 1
		}
		w.u8(flags)
		w.i64(m.Trace.SentUnixNano)
	}
}

func (m *SampleBatch) decodeBody(r *reader) error {
	m.AgentID = r.str()
	m.Seq = r.u64()
	n := r.u32()
	if r.err != nil {
		return r.err
	}
	if n > 1<<20 {
		return fmt.Errorf("%w: batch of %d readings rejected", ErrFieldTooLarge, n)
	}
	m.Readings = make([]Reading, n)
	for i := range m.Readings {
		m.Readings[i].TimestampMillis = r.i64()
		m.Readings[i].Sensor = r.str()
		vn := r.u32()
		if r.err != nil {
			return r.err
		}
		if vn > 1<<22 {
			return fmt.Errorf("%w: reading with %d values rejected", ErrFieldTooLarge, vn)
		}
		m.Readings[i].Values = make([]float64, vn)
		for j := range m.Readings[i].Values {
			m.Readings[i].Values[j] = r.f64()
		}
	}
	if r.err != nil {
		return r.err
	}
	// Optional v4 trace context: a v3 frame simply ends here, leaving Trace
	// zero ("no trace"). The field is consumed only when exactly its size
	// remains — a partial or padded remainder is left in place, so Recv's
	// trailing-bytes check rejects it like any other corruption.
	if len(r.buf)-r.off == traceFieldSize {
		m.Trace.TraceID = r.u64()
		m.Trace.SpanID = r.u64()
		m.Trace.Sampled = r.u8()&1 != 0
		m.Trace.SentUnixNano = r.i64()
	} else {
		m.Trace = telemetry.SpanContext{}
	}
	return r.err
}

// ClockSync pushes the controller's UTC time to an agent (§4.1: master-slave
// clock distribution, repeated every 5 seconds).
type ClockSync struct {
	MasterMillis int64
}

// Type implements Message.
func (*ClockSync) Type() MsgType { return TypeClockSync }

func (m *ClockSync) encodeBody(w *writer)       { w.i64(m.MasterMillis) }
func (m *ClockSync) decodeBody(r *reader) error { m.MasterMillis = r.i64(); return r.err }

// ClockAck reports the agent's clock after applying a sync, letting the
// controller estimate residual skew and network delay.
type ClockAck struct {
	AgentID     string
	AgentMillis int64
}

// Type implements Message.
func (*ClockAck) Type() MsgType { return TypeClockAck }

func (m *ClockAck) encodeBody(w *writer) {
	w.str(m.AgentID)
	w.i64(m.AgentMillis)
}

func (m *ClockAck) decodeBody(r *reader) error {
	m.AgentID = r.str()
	m.AgentMillis = r.i64()
	return r.err
}

// Ack acknowledges a batch.
type Ack struct {
	Count uint32 // readings accepted
	// Seq echoes the sequence number of the acknowledged batch (protocol v2),
	// 0 for hello/heartbeat/legacy acks. Under chaos a duplicated frame makes
	// the controller ack twice; the echoed sequence lets the agent match each
	// ack to its in-flight batch and skip stale ones instead of advancing on
	// an ack that belongs to an already-settled batch.
	Seq uint64
	// Credits is the controller's admission grant (protocol v3), encoded with
	// EncodeCredits: 0 means "no credit signal" (a pre-v3 peer or a controller
	// without a streaming sink — flow is unlimited), and any non-zero value V
	// grants V-1 classification slots. The off-by-one keeps the zero value
	// backward compatible while still letting a saturated controller say
	// "zero slots": on that grant the agent defers flushes (heartbeating to
	// refresh the grant) so pressure lands on its bounded spill buffer, the
	// pipeline's single shedding valve.
	Credits uint32
}

// EncodeCredits maps an admission grant of n slots onto Ack.Credits,
// reserving 0 for "no credit signal". Saturates instead of wrapping.
func EncodeCredits(n uint32) uint32 {
	if n == ^uint32(0) {
		return n
	}
	return n + 1
}

// DecodeCredits inverts EncodeCredits: ok is false when the ack carried no
// credit signal and flow should be treated as unlimited.
func DecodeCredits(v uint32) (n uint32, ok bool) {
	if v == 0 {
		return 0, false
	}
	return v - 1, true
}

// Type implements Message.
func (*Ack) Type() MsgType { return TypeAck }

func (m *Ack) encodeBody(w *writer) {
	w.u32(m.Count)
	w.u64(m.Seq)
	w.u32(m.Credits)
}

func (m *Ack) decodeBody(r *reader) error {
	m.Count = r.u32()
	m.Seq = r.u64()
	m.Credits = r.u32()
	return r.err
}

// Heartbeat proves agent liveness when there is nothing to flush (protocol
// v2). The controller answers with an Ack; together with the controller's
// read deadline it lets dead connections be reaped instead of leaking their
// serve goroutines.
type Heartbeat struct {
	AgentID string
}

// Type implements Message.
func (*Heartbeat) Type() MsgType { return TypeHeartbeat }

func (m *Heartbeat) encodeBody(w *writer)       { w.str(m.AgentID) }
func (m *Heartbeat) decodeBody(r *reader) error { m.AgentID = r.str(); return r.err }

// --- Framing -----------------------------------------------------------------

// Conn frames messages over an io.ReadWriter and counts traffic, giving the
// controller the byte-level accounting its processing policy's bandwidth
// estimates build on.
type Conn struct {
	br *bufio.Reader
	w  io.Writer

	// scratch is the frame buffer Send reuses across calls. A Conn is
	// owned by a single goroutine (one reader or writer loop per transport
	// stream), so no locking is needed.
	scratch writer

	bytesRead    int64
	bytesWritten int64
}

// NewConn wraps a transport stream.
func NewConn(rw io.ReadWriter) *Conn {
	return &Conn{br: bufio.NewReader(rw), w: rw}
}

// readDeadliner is the deadline surface of net.Conn (and net.Pipe ends).
type readDeadliner interface {
	SetReadDeadline(t time.Time) error
}

// SetReadDeadline arms a read deadline on the underlying transport when it
// supports one (net.Conn does; plain in-memory buffers do not, in which case
// this is a no-op). The controller uses it to reap dead connections.
func (c *Conn) SetReadDeadline(t time.Time) error {
	if d, ok := c.w.(readDeadliner); ok {
		return d.SetReadDeadline(t)
	}
	return nil
}

// Close closes the underlying transport when it supports closing (net.Conn
// and chaos transports do; plain in-memory buffers do not, in which case this
// is a no-op). Closing unblocks a peer waiting in Recv, which sees io.EOF or
// the transport's close error.
func (c *Conn) Close() error {
	if cl, ok := c.w.(io.Closer); ok {
		return cl.Close()
	}
	return nil
}

// Send writes one framed message. It runs once per sample batch on every
// connection, so header and body are encoded into the per-Conn scratch
// buffer and issued as a single Write: one syscall per frame, and fault
// injectors wrapping the transport see whole frames, never split ones.
//
//lint:hotpath
func (c *Conn) Send(m Message) error {
	body := &c.scratch
	// Reserve the 4-byte length prefix, encode the frame behind it, then
	// patch the prefix in place.
	body.buf = append(body.buf[:0], 0, 0, 0, 0)
	body.u8(uint8(m.Type()))
	m.encodeBody(body)
	if len(body.buf)-4 > MaxFrameSize {
		return ErrFrameTooLarge
	}
	binary.BigEndian.PutUint32(body.buf[:4], uint32(len(body.buf)-4))
	if _, err := c.w.Write(body.buf); err != nil {
		//lint:ignore hotalloc error path tears the connection down; allocation is irrelevant there
		return fmt.Errorf("wire: write frame: %w", err)
	}
	c.bytesWritten += int64(len(body.buf))
	mBytesSent.Add(int64(len(body.buf)))
	mMsgsSent.Inc()
	return nil
}

// BytesWritten returns the total framed bytes sent on this connection.
func (c *Conn) BytesWritten() int64 { return c.bytesWritten }

// BytesRead returns the total framed bytes received on this connection.
func (c *Conn) BytesRead() int64 { return c.bytesRead }

// Recv reads one framed message. io.EOF is returned unchanged on a clean
// close between frames.
func (c *Conn) Recv() (Message, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(c.br, hdr[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("wire: read header: %w", err)
	}
	size := binary.BigEndian.Uint32(hdr[:])
	if size > MaxFrameSize {
		mDecodeErrors.Inc()
		return nil, ErrFrameTooLarge
	}
	if size == 0 {
		mDecodeErrors.Inc()
		return nil, ErrEmptyFrame
	}
	buf := make([]byte, size)
	if _, err := io.ReadFull(c.br, buf); err != nil {
		return nil, fmt.Errorf("wire: read body: %w", err)
	}
	c.bytesRead += int64(len(hdr)) + int64(size)
	r := &reader{buf: buf}
	var m Message
	switch MsgType(r.u8()) {
	case TypeHello:
		m = &Hello{}
	case TypeSampleBatch:
		m = &SampleBatch{}
	case TypeClockSync:
		m = &ClockSync{}
	case TypeClockAck:
		m = &ClockAck{}
	case TypeAck:
		m = &Ack{}
	case TypeHeartbeat:
		m = &Heartbeat{}
	case TypeClassifyRequest:
		m = &ClassifyRequest{}
	case TypeClassifyResponse:
		m = &ClassifyResponse{}
	default:
		mDecodeErrors.Inc()
		return nil, fmt.Errorf("%w %d", ErrUnknownType, buf[0])
	}
	if err := m.decodeBody(r); err != nil {
		mDecodeErrors.Inc()
		return nil, err
	}
	if r.off != len(r.buf) {
		mDecodeErrors.Inc()
		return nil, fmt.Errorf("%w: %d bytes past the last field", ErrTrailingBytes, len(r.buf)-r.off)
	}
	mBytesRecv.Add(int64(len(hdr)) + int64(size))
	mMsgsRecv.Inc()
	return m, nil
}

// --- Binary primitives --------------------------------------------------------

type writer struct{ buf []byte }

func (w *writer) u8(v uint8) { w.buf = append(w.buf, v) }
func (w *writer) u32(v uint32) {
	w.buf = binary.BigEndian.AppendUint32(w.buf, v)
}
func (w *writer) u64(v uint64) {
	w.buf = binary.BigEndian.AppendUint64(w.buf, v)
}
func (w *writer) i64(v int64) {
	w.buf = binary.BigEndian.AppendUint64(w.buf, uint64(v))
}
func (w *writer) f64(v float64) {
	w.buf = binary.BigEndian.AppendUint64(w.buf, math.Float64bits(v))
}
func (w *writer) str(s string) {
	w.u32(uint32(len(s)))
	w.buf = append(w.buf, s...)
}

type reader struct {
	buf []byte
	off int
	err error
}

func (r *reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if r.off+n > len(r.buf) {
		r.err = ErrTruncatedFrame
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

func (r *reader) u8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *reader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

func (r *reader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

func (r *reader) i64() int64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return int64(binary.BigEndian.Uint64(b))
}

func (r *reader) f64() float64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return math.Float64frombits(binary.BigEndian.Uint64(b))
}

func (r *reader) str() string {
	n := r.u32()
	if r.err != nil {
		return ""
	}
	if n > 1<<16 {
		r.err = fmt.Errorf("%w: string of %d bytes rejected", ErrFieldTooLarge, n)
		return ""
	}
	b := r.take(int(n))
	if b == nil {
		return ""
	}
	return string(b)
}

// Package wire implements the framing and message encoding spoken between
// DarNet collection agents and the centralized controller (paper §3.1–3.2):
// agent hello, timestamped sample batches, the master-slave clock
// synchronization exchange, and acknowledgements. Frames are length-prefixed
// binary, transport-agnostic (TCP in deployment, in-memory pipes in tests).
package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"darnet/internal/telemetry"
)

// Process-wide transport metrics: bytes and messages crossing every wire
// connection, plus malformed-frame rejections. Per-connection accounting
// (Conn.BytesRead/BytesWritten) remains the processing policy's bandwidth
// input; these aggregate across connections for the ops endpoint.
var (
	mBytesSent    = telemetry.NewCounter("darnet_wire_bytes_sent_total", "framed bytes written across all connections")
	mBytesRecv    = telemetry.NewCounter("darnet_wire_bytes_received_total", "framed bytes read across all connections")
	mMsgsSent     = telemetry.NewCounter("darnet_wire_messages_sent_total", "protocol messages sent")
	mMsgsRecv     = telemetry.NewCounter("darnet_wire_messages_received_total", "protocol messages received")
	mDecodeErrors = telemetry.NewCounter("darnet_wire_decode_errors_total", "frames rejected as malformed (oversized, empty, unknown type, short body, trailing bytes)")
)

// MsgType identifies a protocol message.
type MsgType uint8

// Protocol message types.
const (
	TypeHello MsgType = iota + 1
	TypeSampleBatch
	TypeClockSync
	TypeClockAck
	TypeAck
)

// MaxFrameSize bounds a single frame; oversized frames indicate corruption
// or abuse and abort the connection.
const MaxFrameSize = 16 << 20

// ErrFrameTooLarge is returned when a frame exceeds MaxFrameSize.
var ErrFrameTooLarge = errors.New("wire: frame exceeds maximum size")

// Message is one protocol message.
type Message interface {
	Type() MsgType
	encodeBody(w *writer)
	decodeBody(r *reader) error
}

// Hello announces an agent to the controller.
type Hello struct {
	AgentID      string
	Modality     string // "imu", "camera", ...
	PeriodMillis uint32 // sensor polling period
}

// Type implements Message.
func (*Hello) Type() MsgType { return TypeHello }

func (m *Hello) encodeBody(w *writer) {
	w.str(m.AgentID)
	w.str(m.Modality)
	w.u32(m.PeriodMillis)
}

func (m *Hello) decodeBody(r *reader) error {
	m.AgentID = r.str()
	m.Modality = r.str()
	m.PeriodMillis = r.u32()
	return r.err
}

// Reading is one timestamped sensor observation: a named sensor channel and
// its values (e.g. 3 accelerometer axes, or W*H pixels for a camera frame).
type Reading struct {
	TimestampMillis int64
	Sensor          string
	Values          []float64
}

// SampleBatch carries buffered readings from an agent.
type SampleBatch struct {
	AgentID  string
	Readings []Reading
}

// Type implements Message.
func (*SampleBatch) Type() MsgType { return TypeSampleBatch }

func (m *SampleBatch) encodeBody(w *writer) {
	w.str(m.AgentID)
	w.u32(uint32(len(m.Readings)))
	for _, rd := range m.Readings {
		w.i64(rd.TimestampMillis)
		w.str(rd.Sensor)
		w.u32(uint32(len(rd.Values)))
		for _, v := range rd.Values {
			w.f64(v)
		}
	}
}

func (m *SampleBatch) decodeBody(r *reader) error {
	m.AgentID = r.str()
	n := r.u32()
	if r.err != nil {
		return r.err
	}
	if n > 1<<20 {
		return fmt.Errorf("wire: batch of %d readings rejected", n)
	}
	m.Readings = make([]Reading, n)
	for i := range m.Readings {
		m.Readings[i].TimestampMillis = r.i64()
		m.Readings[i].Sensor = r.str()
		vn := r.u32()
		if r.err != nil {
			return r.err
		}
		if vn > 1<<22 {
			return fmt.Errorf("wire: reading with %d values rejected", vn)
		}
		m.Readings[i].Values = make([]float64, vn)
		for j := range m.Readings[i].Values {
			m.Readings[i].Values[j] = r.f64()
		}
	}
	return r.err
}

// ClockSync pushes the controller's UTC time to an agent (§4.1: master-slave
// clock distribution, repeated every 5 seconds).
type ClockSync struct {
	MasterMillis int64
}

// Type implements Message.
func (*ClockSync) Type() MsgType { return TypeClockSync }

func (m *ClockSync) encodeBody(w *writer)       { w.i64(m.MasterMillis) }
func (m *ClockSync) decodeBody(r *reader) error { m.MasterMillis = r.i64(); return r.err }

// ClockAck reports the agent's clock after applying a sync, letting the
// controller estimate residual skew and network delay.
type ClockAck struct {
	AgentID     string
	AgentMillis int64
}

// Type implements Message.
func (*ClockAck) Type() MsgType { return TypeClockAck }

func (m *ClockAck) encodeBody(w *writer) {
	w.str(m.AgentID)
	w.i64(m.AgentMillis)
}

func (m *ClockAck) decodeBody(r *reader) error {
	m.AgentID = r.str()
	m.AgentMillis = r.i64()
	return r.err
}

// Ack acknowledges a batch.
type Ack struct {
	Count uint32 // readings accepted
}

// Type implements Message.
func (*Ack) Type() MsgType { return TypeAck }

func (m *Ack) encodeBody(w *writer)       { w.u32(m.Count) }
func (m *Ack) decodeBody(r *reader) error { m.Count = r.u32(); return r.err }

// --- Framing -----------------------------------------------------------------

// Conn frames messages over an io.ReadWriter and counts traffic, giving the
// controller the byte-level accounting its processing policy's bandwidth
// estimates build on.
type Conn struct {
	br *bufio.Reader
	w  io.Writer

	// scratch is the frame-body buffer Send reuses across calls. A Conn is
	// owned by a single goroutine (one reader or writer loop per transport
	// stream), so no locking is needed.
	scratch writer

	bytesRead    int64
	bytesWritten int64
}

// NewConn wraps a transport stream.
func NewConn(rw io.ReadWriter) *Conn {
	return &Conn{br: bufio.NewReader(rw), w: rw}
}

// Send writes one framed message. It runs once per sample batch on every
// connection, so the body is encoded into the per-Conn scratch buffer
// instead of a fresh writer per message.
//
//lint:hotpath
func (c *Conn) Send(m Message) error {
	body := &c.scratch
	body.buf = body.buf[:0]
	body.u8(uint8(m.Type()))
	m.encodeBody(body)
	if len(body.buf) > MaxFrameSize {
		return ErrFrameTooLarge
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body.buf)))
	if _, err := c.w.Write(hdr[:]); err != nil {
		//lint:ignore hotalloc error path tears the connection down; allocation is irrelevant there
		return fmt.Errorf("wire: write header: %w", err)
	}
	if _, err := c.w.Write(body.buf); err != nil {
		//lint:ignore hotalloc error path tears the connection down; allocation is irrelevant there
		return fmt.Errorf("wire: write body: %w", err)
	}
	c.bytesWritten += int64(len(hdr)) + int64(len(body.buf))
	mBytesSent.Add(int64(len(hdr)) + int64(len(body.buf)))
	mMsgsSent.Inc()
	return nil
}

// BytesWritten returns the total framed bytes sent on this connection.
func (c *Conn) BytesWritten() int64 { return c.bytesWritten }

// BytesRead returns the total framed bytes received on this connection.
func (c *Conn) BytesRead() int64 { return c.bytesRead }

// Recv reads one framed message. io.EOF is returned unchanged on a clean
// close between frames.
func (c *Conn) Recv() (Message, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(c.br, hdr[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("wire: read header: %w", err)
	}
	size := binary.BigEndian.Uint32(hdr[:])
	if size > MaxFrameSize {
		mDecodeErrors.Inc()
		return nil, ErrFrameTooLarge
	}
	if size == 0 {
		mDecodeErrors.Inc()
		return nil, errors.New("wire: empty frame")
	}
	buf := make([]byte, size)
	if _, err := io.ReadFull(c.br, buf); err != nil {
		return nil, fmt.Errorf("wire: read body: %w", err)
	}
	c.bytesRead += int64(len(hdr)) + int64(size)
	r := &reader{buf: buf}
	var m Message
	switch MsgType(r.u8()) {
	case TypeHello:
		m = &Hello{}
	case TypeSampleBatch:
		m = &SampleBatch{}
	case TypeClockSync:
		m = &ClockSync{}
	case TypeClockAck:
		m = &ClockAck{}
	case TypeAck:
		m = &Ack{}
	case TypeClassifyRequest:
		m = &ClassifyRequest{}
	case TypeClassifyResponse:
		m = &ClassifyResponse{}
	default:
		mDecodeErrors.Inc()
		return nil, fmt.Errorf("wire: unknown message type %d", buf[0])
	}
	if err := m.decodeBody(r); err != nil {
		mDecodeErrors.Inc()
		return nil, err
	}
	if r.off != len(r.buf) {
		mDecodeErrors.Inc()
		return nil, fmt.Errorf("wire: %d trailing bytes in frame", len(r.buf)-r.off)
	}
	mBytesRecv.Add(int64(len(hdr)) + int64(size))
	mMsgsRecv.Inc()
	return m, nil
}

// --- Binary primitives --------------------------------------------------------

var errShortFrame = errors.New("wire: truncated frame")

type writer struct{ buf []byte }

func (w *writer) u8(v uint8) { w.buf = append(w.buf, v) }
func (w *writer) u32(v uint32) {
	w.buf = binary.BigEndian.AppendUint32(w.buf, v)
}
func (w *writer) i64(v int64) {
	w.buf = binary.BigEndian.AppendUint64(w.buf, uint64(v))
}
func (w *writer) f64(v float64) {
	w.buf = binary.BigEndian.AppendUint64(w.buf, math.Float64bits(v))
}
func (w *writer) str(s string) {
	w.u32(uint32(len(s)))
	w.buf = append(w.buf, s...)
}

type reader struct {
	buf []byte
	off int
	err error
}

func (r *reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if r.off+n > len(r.buf) {
		r.err = errShortFrame
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

func (r *reader) u8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *reader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

func (r *reader) i64() int64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return int64(binary.BigEndian.Uint64(b))
}

func (r *reader) f64() float64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return math.Float64frombits(binary.BigEndian.Uint64(b))
}

func (r *reader) str() string {
	n := r.u32()
	if r.err != nil {
		return ""
	}
	if n > 1<<16 {
		r.err = fmt.Errorf("wire: string of %d bytes rejected", n)
		return ""
	}
	b := r.take(int(n))
	if b == nil {
		return ""
	}
	return string(b)
}

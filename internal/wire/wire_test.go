package wire

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"net"
	"reflect"
	"testing"
	"testing/quick"
)

// duplex is an in-memory bidirectional stream for tests.
type duplex struct {
	io.Reader
	io.Writer
}

func pipePair() (*Conn, *Conn) {
	aToB := &bytes.Buffer{}
	bToA := &bytes.Buffer{}
	a := NewConn(duplex{Reader: bToA, Writer: aToB})
	b := NewConn(duplex{Reader: aToB, Writer: bToA})
	return a, b
}

func roundTrip(t *testing.T, m Message) Message {
	t.Helper()
	a, b := pipePair()
	if err := a.Send(m); err != nil {
		t.Fatalf("send: %v", err)
	}
	got, err := b.Recv()
	if err != nil {
		t.Fatalf("recv: %v", err)
	}
	return got
}

func TestHelloRoundTrip(t *testing.T) {
	m := &Hello{AgentID: "imu-1", Modality: "imu", PeriodMillis: 25}
	got := roundTrip(t, m)
	if !reflect.DeepEqual(m, got) {
		t.Fatalf("round trip: %+v != %+v", got, m)
	}
}

func TestSampleBatchRoundTrip(t *testing.T) {
	m := &SampleBatch{
		AgentID: "cam-7",
		Readings: []Reading{
			{TimestampMillis: 123456, Sensor: "accel", Values: []float64{0.1, -9.8, 3.5}},
			{TimestampMillis: 123481, Sensor: "gyro", Values: []float64{}},
			{TimestampMillis: 123506, Sensor: "frame", Values: make([]float64, 64)},
		},
	}
	got := roundTrip(t, m)
	gb, ok := got.(*SampleBatch)
	if !ok {
		t.Fatalf("got %T", got)
	}
	if gb.AgentID != m.AgentID || len(gb.Readings) != 3 {
		t.Fatalf("batch mismatch: %+v", gb)
	}
	if gb.Readings[0].Values[1] != -9.8 || gb.Readings[2].Sensor != "frame" {
		t.Fatalf("readings mismatch: %+v", gb.Readings)
	}
}

func TestClockMessagesRoundTrip(t *testing.T) {
	sync := roundTrip(t, &ClockSync{MasterMillis: 99999})
	if sync.(*ClockSync).MasterMillis != 99999 {
		t.Fatal("clock sync mismatch")
	}
	ack := roundTrip(t, &ClockAck{AgentID: "a", AgentMillis: 100001})
	if ack.(*ClockAck).AgentMillis != 100001 {
		t.Fatal("clock ack mismatch")
	}
	a := roundTrip(t, &Ack{Count: 7})
	if a.(*Ack).Count != 7 {
		t.Fatal("ack mismatch")
	}
}

func TestAckCreditsRoundTrip(t *testing.T) {
	m := &Ack{Count: 3, Seq: 12, Credits: EncodeCredits(0)}
	got := roundTrip(t, m).(*Ack)
	if !reflect.DeepEqual(m, got) {
		t.Fatalf("round trip: %+v != %+v", got, m)
	}
	if n, ok := DecodeCredits(got.Credits); !ok || n != 0 {
		t.Fatalf("DecodeCredits = (%d, %v), want explicit zero grant", n, ok)
	}
	if n, ok := DecodeCredits(0); ok || n != 0 {
		t.Fatalf("DecodeCredits(0) = (%d, %v), want no-signal", n, ok)
	}
	if n, ok := DecodeCredits(EncodeCredits(41)); !ok || n != 41 {
		t.Fatalf("EncodeCredits round trip = (%d, %v)", n, ok)
	}
	// Saturation: the maximum representable grant must not wrap to "absent".
	if v := EncodeCredits(^uint32(0)); v == 0 {
		t.Fatal("EncodeCredits(max) wrapped to the no-signal value")
	}
}

func TestMultipleMessagesInSequence(t *testing.T) {
	a, b := pipePair()
	msgs := []Message{
		&Hello{AgentID: "x", Modality: "imu", PeriodMillis: 25},
		&SampleBatch{AgentID: "x", Readings: []Reading{{TimestampMillis: 1, Sensor: "s", Values: []float64{1}}}},
		&ClockSync{MasterMillis: 5},
	}
	for _, m := range msgs {
		if err := a.Send(m); err != nil {
			t.Fatal(err)
		}
	}
	for _, want := range msgs {
		got, err := b.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if got.Type() != want.Type() {
			t.Fatalf("type %d, want %d", got.Type(), want.Type())
		}
	}
	if _, err := b.Recv(); !errors.Is(err, io.EOF) {
		t.Fatalf("expected EOF after drained stream, got %v", err)
	}
}

func TestRecvRejectsUnknownType(t *testing.T) {
	buf := &bytes.Buffer{}
	buf.Write([]byte{0, 0, 0, 1, 200}) // frame of 1 byte: type 200
	c := NewConn(duplex{Reader: buf, Writer: io.Discard})
	if _, err := c.Recv(); err == nil {
		t.Fatal("expected unknown-type error")
	}
}

func TestRecvRejectsOversizedFrame(t *testing.T) {
	buf := &bytes.Buffer{}
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	c := NewConn(duplex{Reader: buf, Writer: io.Discard})
	if _, err := c.Recv(); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("expected ErrFrameTooLarge, got %v", err)
	}
}

func TestRecvRejectsTruncatedBody(t *testing.T) {
	// A Hello frame claiming a long string but cut short.
	buf := &bytes.Buffer{}
	buf.Write([]byte{0, 0, 0, 5, byte(TypeHello), 0, 0, 0, 99})
	c := NewConn(duplex{Reader: buf, Writer: io.Discard})
	if _, err := c.Recv(); err == nil {
		t.Fatal("expected truncated-frame error")
	}
}

func TestRecvRejectsTrailingGarbage(t *testing.T) {
	// Encode an Ack then append an extra byte inside the same frame.
	w := &writer{}
	w.u8(uint8(TypeAck))
	w.u32(1)
	w.u8(0xEE)
	buf := &bytes.Buffer{}
	buf.Write([]byte{0, 0, 0, byte(len(w.buf))})
	buf.Write(w.buf)
	c := NewConn(duplex{Reader: buf, Writer: io.Discard})
	if _, err := c.Recv(); err == nil {
		t.Fatal("expected trailing-bytes error")
	}
}

func TestRecvRejectsEmptyFrame(t *testing.T) {
	buf := &bytes.Buffer{}
	buf.Write([]byte{0, 0, 0, 0})
	c := NewConn(duplex{Reader: buf, Writer: io.Discard})
	if _, err := c.Recv(); err == nil {
		t.Fatal("expected empty-frame error")
	}
}

// Property: arbitrary sample batches survive a round trip bit-exactly.
func TestSampleBatchRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := &SampleBatch{AgentID: "agent"}
		n := rng.Intn(6)
		for i := 0; i < n; i++ {
			rd := Reading{
				TimestampMillis: rng.Int63(),
				Sensor:          []string{"accel", "gyro", "frame"}[rng.Intn(3)],
				Values:          make([]float64, rng.Intn(10)),
			}
			for j := range rd.Values {
				rd.Values[j] = rng.NormFloat64() * 100
			}
			m.Readings = append(m.Readings, rd)
		}
		a, b := pipePair()
		if err := a.Send(m); err != nil {
			return false
		}
		got, err := b.Recv()
		if err != nil {
			return false
		}
		gb, ok := got.(*SampleBatch)
		if !ok || gb.AgentID != m.AgentID || len(gb.Readings) != len(m.Readings) {
			return false
		}
		for i, rd := range m.Readings {
			g := gb.Readings[i]
			if g.TimestampMillis != rd.TimestampMillis || g.Sensor != rd.Sensor || len(g.Values) != len(rd.Values) {
				return false
			}
			for j := range rd.Values {
				if g.Values[j] != rd.Values[j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestOverTCP(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	done := make(chan error, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			done <- err
			return
		}
		defer conn.Close()
		c := NewConn(conn)
		m, err := c.Recv()
		if err != nil {
			done <- err
			return
		}
		if h, ok := m.(*Hello); !ok || h.AgentID != "tcp-agent" {
			done <- errors.New("unexpected hello")
			return
		}
		done <- c.Send(&Ack{Count: 1})
	}()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	c := NewConn(conn)
	if err := c.Send(&Hello{AgentID: "tcp-agent", Modality: "imu", PeriodMillis: 25}); err != nil {
		t.Fatal(err)
	}
	m, err := c.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if a, ok := m.(*Ack); !ok || a.Count != 1 {
		t.Fatalf("unexpected reply %+v", m)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestRecvMidFrameDisconnect(t *testing.T) {
	// The peer dies after the header and half the body: Recv must return an
	// error (wrapping io.ErrUnexpectedEOF), not hang or mis-parse.
	full := &bytes.Buffer{}
	c := NewConn(duplex{Reader: full, Writer: full})
	if err := c.Send(&Hello{AgentID: "victim", Modality: "imu", PeriodMillis: 25}); err != nil {
		t.Fatal(err)
	}
	raw := full.Bytes()
	cut := bytes.NewReader(raw[:len(raw)/2])
	r := NewConn(duplex{Reader: cut, Writer: io.Discard})
	_, err := r.Recv()
	if err == nil {
		t.Fatal("expected error on mid-frame disconnect")
	}
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("expected unexpected-EOF, got %v", err)
	}
}

// Property: Recv never panics on arbitrary byte streams — it returns an
// error or a message for any input (robustness against corrupted links).
func TestRecvNeverPanicsOnGarbage(t *testing.T) {
	f := func(data []byte) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		c := NewConn(duplex{Reader: bytes.NewReader(data), Writer: io.Discard})
		for i := 0; i < 4; i++ {
			if _, err := c.Recv(); err != nil {
				break
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestByteAccounting(t *testing.T) {
	a, b := pipePair()
	m := &Hello{AgentID: "count", Modality: "imu", PeriodMillis: 25}
	if err := a.Send(m); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Recv(); err != nil {
		t.Fatal(err)
	}
	if a.BytesWritten() == 0 {
		t.Fatal("sender did not count bytes")
	}
	if b.BytesRead() != a.BytesWritten() {
		t.Fatalf("read %d bytes, sent %d", b.BytesRead(), a.BytesWritten())
	}
	if a.BytesRead() != 0 || b.BytesWritten() != 0 {
		t.Fatal("unused directions should be zero")
	}
}

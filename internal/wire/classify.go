package wire

import "fmt"

// Remote-classification message types: DarNet's remote configuration ships
// sensor data to a server that runs the analytics engine (paper §3.2,
// "Processing Decision"; §4.1 "all data processing on a remote server").
const (
	TypeClassifyRequest MsgType = iota + 16
	TypeClassifyResponse
)

// ClassifyRequest carries one aligned multi-modal observation to the remote
// analytics engine. The frame may be down-sampled; Distortion carries the
// privacy tag the server routes on (§4.3).
type ClassifyRequest struct {
	// Frame is the (possibly distorted) grayscale frame, row-major.
	FrameW, FrameH uint32
	Frame          []float64
	// Distortion is the privacy tag (collect.DistortionLevel values).
	Distortion uint8
	// Window is the aligned IMU window: Steps rows of FeatureDim features.
	Steps      uint32
	FeatureDim uint32
	Window     []float64
}

// Type implements Message.
func (*ClassifyRequest) Type() MsgType { return TypeClassifyRequest }

func (m *ClassifyRequest) encodeBody(w *writer) {
	w.u32(m.FrameW)
	w.u32(m.FrameH)
	w.u32(uint32(len(m.Frame)))
	for _, v := range m.Frame {
		w.f64(v)
	}
	w.u8(m.Distortion)
	w.u32(m.Steps)
	w.u32(m.FeatureDim)
	w.u32(uint32(len(m.Window)))
	for _, v := range m.Window {
		w.f64(v)
	}
}

func (m *ClassifyRequest) decodeBody(r *reader) error {
	m.FrameW = r.u32()
	m.FrameH = r.u32()
	n := r.u32()
	if r.err != nil {
		return r.err
	}
	if n > 1<<22 {
		return fmt.Errorf("wire: classify frame of %d pixels rejected", n)
	}
	m.Frame = make([]float64, n)
	for i := range m.Frame {
		m.Frame[i] = r.f64()
	}
	m.Distortion = r.u8()
	m.Steps = r.u32()
	m.FeatureDim = r.u32()
	wn := r.u32()
	if r.err != nil {
		return r.err
	}
	if wn > 1<<20 {
		return fmt.Errorf("wire: classify window of %d values rejected", wn)
	}
	m.Window = make([]float64, wn)
	for i := range m.Window {
		m.Window[i] = r.f64()
	}
	return r.err
}

// Validate checks the request's internal consistency.
func (m *ClassifyRequest) Validate() error {
	if uint64(m.FrameW)*uint64(m.FrameH) != uint64(len(m.Frame)) {
		return fmt.Errorf("wire: classify frame %dx%d but %d pixels", m.FrameW, m.FrameH, len(m.Frame))
	}
	if uint64(m.Steps)*uint64(m.FeatureDim) != uint64(len(m.Window)) {
		return fmt.Errorf("wire: classify window %dx%d but %d values", m.Steps, m.FeatureDim, len(m.Window))
	}
	return nil
}

// ClassifyResponse returns the fused classification, or an error message if
// the server rejected the request.
type ClassifyResponse struct {
	Class uint32
	Probs []float64
	Error string
}

// Type implements Message.
func (*ClassifyResponse) Type() MsgType { return TypeClassifyResponse }

func (m *ClassifyResponse) encodeBody(w *writer) {
	w.u32(m.Class)
	w.u32(uint32(len(m.Probs)))
	for _, v := range m.Probs {
		w.f64(v)
	}
	w.str(m.Error)
}

func (m *ClassifyResponse) decodeBody(r *reader) error {
	m.Class = r.u32()
	n := r.u32()
	if r.err != nil {
		return r.err
	}
	if n > 1<<12 {
		return fmt.Errorf("wire: classify response with %d probabilities rejected", n)
	}
	m.Probs = make([]float64, n)
	for i := range m.Probs {
		m.Probs[i] = r.f64()
	}
	m.Error = r.str()
	return r.err
}

package metrics_test

import (
	"fmt"

	"darnet/internal/metrics"
)

// A confusion matrix accumulates (true, predicted) pairs and reports the
// paper's evaluation quantities.
func ExampleConfusionMatrix() {
	m, err := metrics.NewConfusionMatrix([]string{"normal", "texting"})
	if err != nil {
		panic(err)
	}
	trueLabels := []int{0, 0, 0, 1, 1, 1, 1}
	predicted := []int{0, 0, 1, 1, 1, 1, 0}
	if err := m.ObserveAll(trueLabels, predicted); err != nil {
		panic(err)
	}
	fmt.Println("top-1:", metrics.FormatPercent(m.Top1()))
	fmt.Println("texting recall:", metrics.FormatPercent(m.Recall(1)))
	fmt.Println("normal false positives:", m.FalsePositives(0))
	// Output:
	// top-1: 71.43%
	// texting recall: 75.00%
	// normal false positives: 1
}

package metrics

import (
	"math"
	"strings"
	"testing"
)

func TestNewConfusionMatrixValidation(t *testing.T) {
	if _, err := NewConfusionMatrix([]string{"a"}); err == nil {
		t.Fatal("expected class-count error")
	}
}

func TestObserveAndTop1(t *testing.T) {
	m, err := NewConfusionMatrix([]string{"a", "b", "c"})
	if err != nil {
		t.Fatal(err)
	}
	obs := [][2]int{{0, 0}, {0, 0}, {0, 1}, {1, 1}, {2, 2}, {2, 0}}
	for _, o := range obs {
		if err := m.Observe(o[0], o[1]); err != nil {
			t.Fatal(err)
		}
	}
	if m.Total() != 6 {
		t.Fatalf("total = %d", m.Total())
	}
	if math.Abs(m.Top1()-4.0/6) > 1e-12 {
		t.Fatalf("top1 = %g", m.Top1())
	}
	pca := m.PerClassAccuracy()
	if math.Abs(pca[0]-2.0/3) > 1e-12 || pca[1] != 1 || pca[2] != 0.5 {
		t.Fatalf("per-class = %v", pca)
	}
	if math.Abs(m.Rate(2, 0)-0.5) > 1e-12 {
		t.Fatalf("rate(2,0) = %g", m.Rate(2, 0))
	}
}

func TestObserveValidation(t *testing.T) {
	m, _ := NewConfusionMatrix([]string{"a", "b"})
	if err := m.Observe(2, 0); err == nil {
		t.Fatal("expected range error")
	}
	if err := m.Observe(0, -1); err == nil {
		t.Fatal("expected range error")
	}
	if err := m.ObserveAll([]int{0}, []int{0, 1}); err == nil {
		t.Fatal("expected alignment error")
	}
	if err := m.ObserveAll([]int{0, 1}, []int{0, 1}); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyMatrixSafe(t *testing.T) {
	m, _ := NewConfusionMatrix([]string{"a", "b"})
	if m.Top1() != 0 {
		t.Fatal("empty top1 should be 0")
	}
	if m.Rate(0, 1) != 0 {
		t.Fatal("empty rate should be 0")
	}
	pca := m.PerClassAccuracy()
	if pca[0] != 0 || pca[1] != 0 {
		t.Fatal("empty per-class should be 0")
	}
}

func TestStringRendering(t *testing.T) {
	m, _ := NewConfusionMatrix([]string{"Normal", "Talking"})
	_ = m.ObserveAll([]int{0, 0, 1, 1}, []int{0, 1, 1, 1})
	s := m.String()
	if !strings.Contains(s, "Normal") || !strings.Contains(s, "0.500") || !strings.Contains(s, "1.000") {
		t.Fatalf("rendering missing content:\n%s", s)
	}
}

func TestFormatPercent(t *testing.T) {
	if got := FormatPercent(0.8702); got != "87.02%" {
		t.Fatalf("FormatPercent = %q", got)
	}
}

func TestTable(t *testing.T) {
	s, err := Table([]string{"CNN+RNN", "CNN"}, []float64{0.8702, 0.7388})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(s, "CNN+RNN") || !strings.Contains(s, "87.02%") || !strings.Contains(s, "73.88%") {
		t.Fatalf("table rendering:\n%s", s)
	}
	if _, err := Table([]string{"a"}, nil); err == nil {
		t.Fatal("expected alignment error")
	}
}

func TestPrecisionRecallF1(t *testing.T) {
	m, _ := NewConfusionMatrix([]string{"a", "b", "c"})
	// true a: 3 predicted a, 1 predicted b.
	// true b: 2 predicted b.
	// true c: 1 predicted a, 1 predicted c.
	_ = m.ObserveAll(
		[]int{0, 0, 0, 0, 1, 1, 2, 2},
		[]int{0, 0, 0, 1, 1, 1, 0, 2},
	)
	if p := m.Precision(0); math.Abs(p-3.0/4) > 1e-12 {
		t.Fatalf("precision(a) = %g", p)
	}
	if r := m.Recall(0); math.Abs(r-3.0/4) > 1e-12 {
		t.Fatalf("recall(a) = %g", r)
	}
	if f := m.F1(0); math.Abs(f-0.75) > 1e-12 {
		t.Fatalf("f1(a) = %g", f)
	}
	if p := m.Precision(1); math.Abs(p-2.0/3) > 1e-12 {
		t.Fatalf("precision(b) = %g", p)
	}
	if fp := m.FalsePositives(0); fp != 1 {
		t.Fatalf("false positives(a) = %d", fp)
	}
	if fp := m.FalsePositives(1); fp != 1 {
		t.Fatalf("false positives(b) = %d", fp)
	}
	// Unobserved/unpredicted classes are safe.
	empty, _ := NewConfusionMatrix([]string{"a", "b"})
	if empty.Precision(0) != 0 || empty.Recall(0) != 0 || empty.F1(0) != 0 {
		t.Fatal("empty matrix should yield zeros")
	}
}

func TestECEPerfectCalibration(t *testing.T) {
	// Predictions at 100% confidence that are always right: ECE 0.
	probs := [][]float64{{1, 0}, {0, 1}, {1, 0}}
	labels := []int{0, 1, 0}
	ece, err := ECE(probs, labels, 10)
	if err != nil {
		t.Fatal(err)
	}
	if ece > 1e-12 {
		t.Fatalf("ECE = %g, want 0", ece)
	}
}

func TestECEOverconfidence(t *testing.T) {
	// Always 90% confident but only 50% correct: ECE = 0.4.
	probs := [][]float64{{0.9, 0.1}, {0.9, 0.1}, {0.9, 0.1}, {0.9, 0.1}}
	labels := []int{0, 1, 0, 1}
	ece, err := ECE(probs, labels, 10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ece-0.4) > 1e-12 {
		t.Fatalf("ECE = %g, want 0.4", ece)
	}
}

func TestECEValidation(t *testing.T) {
	if _, err := ECE([][]float64{{1}}, []int{0, 1}, 10); err == nil {
		t.Fatal("expected alignment error")
	}
	if _, err := ECE(nil, nil, 0); err == nil {
		t.Fatal("expected bins error")
	}
	if _, err := ECE([][]float64{{}}, []int{0}, 5); err == nil {
		t.Fatal("expected empty-prediction error")
	}
	ece, err := ECE(nil, nil, 5)
	if err != nil || ece != 0 {
		t.Fatalf("empty set: %g, %v", ece, err)
	}
}

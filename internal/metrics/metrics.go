// Package metrics computes and renders the evaluation artifacts the paper
// reports: Top-1 (Hit@1) classification percentages, confusion matrices
// (Figure 5), and per-class accuracies.
package metrics

import (
	"fmt"
	"strings"
)

// ConfusionMatrix counts predictions: Counts[true][predicted].
type ConfusionMatrix struct {
	Labels []string
	Counts [][]int
}

// NewConfusionMatrix returns an empty matrix over the given class labels.
func NewConfusionMatrix(labels []string) (*ConfusionMatrix, error) {
	if len(labels) < 2 {
		return nil, fmt.Errorf("metrics: need at least 2 classes, got %d", len(labels))
	}
	counts := make([][]int, len(labels))
	for i := range counts {
		counts[i] = make([]int, len(labels))
	}
	return &ConfusionMatrix{Labels: append([]string(nil), labels...), Counts: counts}, nil
}

// Observe records one (true, predicted) pair.
func (m *ConfusionMatrix) Observe(trueClass, predicted int) error {
	k := len(m.Labels)
	if trueClass < 0 || trueClass >= k || predicted < 0 || predicted >= k {
		return fmt.Errorf("metrics: observation (%d, %d) outside [0,%d)", trueClass, predicted, k)
	}
	m.Counts[trueClass][predicted]++
	return nil
}

// ObserveAll records aligned slices of true and predicted labels.
func (m *ConfusionMatrix) ObserveAll(trueLabels, predicted []int) error {
	if len(trueLabels) != len(predicted) {
		return fmt.Errorf("metrics: %d true labels for %d predictions", len(trueLabels), len(predicted))
	}
	for i := range trueLabels {
		if err := m.Observe(trueLabels[i], predicted[i]); err != nil {
			return err
		}
	}
	return nil
}

// Total returns the number of recorded observations.
func (m *ConfusionMatrix) Total() int {
	n := 0
	for _, row := range m.Counts {
		for _, c := range row {
			n += c
		}
	}
	return n
}

// Top1 returns the overall Hit@1 accuracy in [0, 1].
func (m *ConfusionMatrix) Top1() float64 {
	total, hits := 0, 0
	for i, row := range m.Counts {
		for j, c := range row {
			total += c
			if i == j {
				hits += c
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(hits) / float64(total)
}

// PerClassAccuracy returns recall per true class (0 for unobserved classes).
func (m *ConfusionMatrix) PerClassAccuracy() []float64 {
	out := make([]float64, len(m.Labels))
	for i, row := range m.Counts {
		total := 0
		for _, c := range row {
			total += c
		}
		if total > 0 {
			out[i] = float64(row[i]) / float64(total)
		}
	}
	return out
}

// Rate returns the fraction of true-class i observations predicted as j.
func (m *ConfusionMatrix) Rate(i, j int) float64 {
	total := 0
	for _, c := range m.Counts[i] {
		total += c
	}
	if total == 0 {
		return 0
	}
	return float64(m.Counts[i][j]) / float64(total)
}

// String renders the row-normalized matrix as a text table in the style of
// the paper's Figure 5.
func (m *ConfusionMatrix) String() string {
	var sb strings.Builder
	width := 8
	for _, l := range m.Labels {
		if len(l) > width {
			width = len(l)
		}
	}
	fmt.Fprintf(&sb, "%-*s", width+2, "true\\pred")
	for j := range m.Labels {
		fmt.Fprintf(&sb, "%8d", j+1)
	}
	sb.WriteByte('\n')
	for i, l := range m.Labels {
		fmt.Fprintf(&sb, "%-*s", width+2, l)
		for j := range m.Labels {
			fmt.Fprintf(&sb, "%8.3f", m.Rate(i, j))
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// FormatPercent renders a fraction as the paper's percentage style, e.g.
// "87.02%".
func FormatPercent(frac float64) string {
	return fmt.Sprintf("%.2f%%", frac*100)
}

// Table renders a two-column model/Hit@1 table like the paper's Tables 2
// and 3.
func Table(names []string, accuracies []float64) (string, error) {
	if len(names) != len(accuracies) {
		return "", fmt.Errorf("metrics: %d names for %d accuracies", len(names), len(accuracies))
	}
	width := 5
	for _, n := range names {
		if len(n) > width {
			width = len(n)
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-*s  %s\n", width, "Model", "Hit@1")
	for i, n := range names {
		fmt.Fprintf(&sb, "%-*s  %s\n", width, n, FormatPercent(accuracies[i]))
	}
	return sb.String(), nil
}

// Precision returns, for predicted class j, the fraction of predictions that
// were correct (0 when the class was never predicted).
func (m *ConfusionMatrix) Precision(j int) float64 {
	predicted := 0
	for i := range m.Counts {
		predicted += m.Counts[i][j]
	}
	if predicted == 0 {
		return 0
	}
	return float64(m.Counts[j][j]) / float64(predicted)
}

// Recall returns, for true class i, the fraction of its observations that
// were predicted correctly (identical to PerClassAccuracy for one class).
func (m *ConfusionMatrix) Recall(i int) float64 {
	total := 0
	for _, c := range m.Counts[i] {
		total += c
	}
	if total == 0 {
		return 0
	}
	return float64(m.Counts[i][i]) / float64(total)
}

// F1 returns the harmonic mean of precision and recall for class i
// (0 when both are 0).
func (m *ConfusionMatrix) F1(i int) float64 {
	p, r := m.Precision(i), m.Recall(i)
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// FalsePositives returns the number of observations of other classes that
// were predicted as class j — the quantity behind the paper's observation
// that "all three models output a high number of false positives when
// predicting normal driving".
func (m *ConfusionMatrix) FalsePositives(j int) int {
	n := 0
	for i := range m.Counts {
		if i != j {
			n += m.Counts[i][j]
		}
	}
	return n
}

// ECE computes the expected calibration error of a set of probabilistic
// predictions: predictions are binned by confidence (the max probability)
// into bins equal-width bins, and the weighted mean |accuracy − confidence|
// over bins is returned. Well-calibrated probabilities — which determine
// whether naive product fusion can compete with the learned Bayesian
// Network combiner — have ECE near 0.
func ECE(probs [][]float64, labels []int, bins int) (float64, error) {
	if len(probs) != len(labels) {
		return 0, fmt.Errorf("metrics: %d predictions for %d labels", len(probs), len(labels))
	}
	if bins < 1 {
		return 0, fmt.Errorf("metrics: need at least one bin, got %d", bins)
	}
	if len(probs) == 0 {
		return 0, nil
	}
	binConf := make([]float64, bins)
	binAcc := make([]float64, bins)
	binN := make([]int, bins)
	for i, p := range probs {
		if len(p) == 0 {
			return 0, fmt.Errorf("metrics: prediction %d is empty", i)
		}
		best, bi := p[0], 0
		for j, v := range p[1:] {
			if v > best {
				best, bi = v, j+1
			}
		}
		b := int(best * float64(bins))
		if b >= bins {
			b = bins - 1
		}
		if b < 0 {
			b = 0
		}
		binConf[b] += best
		if bi == labels[i] {
			binAcc[b]++
		}
		binN[b]++
	}
	ece := 0.0
	total := float64(len(probs))
	for b := 0; b < bins; b++ {
		if binN[b] == 0 {
			continue
		}
		n := float64(binN[b])
		diff := binAcc[b]/n - binConf[b]/n
		if diff < 0 {
			diff = -diff
		}
		ece += n / total * diff
	}
	return ece, nil
}

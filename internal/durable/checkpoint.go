package durable

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"sort"

	"darnet/internal/tsdb"
)

// SessionState is one agent's controller-side session as a checkpoint stores
// it: the dedupe high-water mark that must survive a restart (PROTOCOL.md's
// at-least-once guarantee hangs on it) plus the batch accounting darnetd
// reports. internal/collect converts to and from its own agent table with
// SessionSnapshot/RestoreSessions.
type SessionState struct {
	AgentID      string
	Modality     string
	PeriodMillis uint32
	LastSeq      uint64
	Batches      int
	Readings     int
	Deduped      int
	Sessions     int
}

// Frame is one camera frame as durability stores it: the capture timestamp
// plus the normalized pixel vector. internal/collect converts to and from its
// frame store with FrameSnapshot/RestoreFrames.
type Frame struct {
	TimestampMillis int64
	Pix             []float64
}

// AgentFrames is one agent's frames, timestamp-sorted.
type AgentFrames struct {
	AgentID string
	Frames  []Frame
}

// checkpointData is one decoded checkpoint: the store, session, and frame
// state as of its base position; replay covers everything after (WAL
// generations >= BaseGen).
type checkpointData struct {
	Gen     uint64
	BaseGen uint64
	BaseLSN uint64
	Series  map[string][]tsdb.Point
	Sess    []SessionState
	Frames  []AgentFrames
}

// Checkpoint layout: a fixed header, the series section, the session section,
// the frames section, and one whole-file CRC32C trailer. Unlike the WAL there
// is no per-record framing — a checkpoint is written once through the
// tmp+rename door, so it is either entirely present and checksum-valid or it
// is not used. The magic is version 02: version 01 had no frames section, and
// the strict end-of-buffer check below rejects one format read as the other.
const (
	ckptMagic          = "DARCKP02"
	ckptMagicHeaderLen = 8 + 8 + 8 + 8 // magic, gen, base gen, base LSN
)

// writeCheckpoint encodes and durably writes checkpoint gen through a temp
// file: content, Sync, Close, then the atomic Rename that makes it visible.
// A crash anywhere before the rename leaves only ignorable garbage.
func writeCheckpoint(fs FS, gen, baseGen, baseLSN uint64, series map[string][]tsdb.Point, sess []SessionState, frames []AgentFrames) error {
	names := make([]string, 0, len(series))
	for n := range series {
		names = append(names, n)
	}
	sort.Strings(names)

	size := ckptMagicHeaderLen + 4 + 4 + 4
	for _, n := range names {
		size += 2 + len(n) + 4 + 16*len(series[n])
	}
	for _, s := range sess {
		size += 2 + len(s.AgentID) + 2 + len(s.Modality) + 4 + 8*5
	}
	for _, af := range frames {
		size += 2 + len(af.AgentID) + 4
		for _, f := range af.Frames {
			size += 8 + 4 + 8*len(f.Pix)
		}
	}
	b := make([]byte, 0, size+4)

	b = append(b, ckptMagic...)
	b = binary.BigEndian.AppendUint64(b, gen)
	b = binary.BigEndian.AppendUint64(b, baseGen)
	b = binary.BigEndian.AppendUint64(b, baseLSN)

	b = binary.BigEndian.AppendUint32(b, uint32(len(names)))
	for _, n := range names {
		if len(n) > 0xFFFF {
			return errSeriesName
		}
		b = append(b, byte(len(n)>>8), byte(len(n)))
		b = append(b, n...)
		pts := series[n]
		b = binary.BigEndian.AppendUint32(b, uint32(len(pts)))
		for _, p := range pts {
			b = binary.BigEndian.AppendUint64(b, uint64(p.TimestampMillis))
			b = binary.BigEndian.AppendUint64(b, math.Float64bits(p.Value))
		}
	}

	b = binary.BigEndian.AppendUint32(b, uint32(len(sess)))
	for _, s := range sess {
		if len(s.AgentID) > 0xFFFF || len(s.Modality) > 0xFFFF {
			return errSeriesName
		}
		b = append(b, byte(len(s.AgentID)>>8), byte(len(s.AgentID)))
		b = append(b, s.AgentID...)
		b = append(b, byte(len(s.Modality)>>8), byte(len(s.Modality)))
		b = append(b, s.Modality...)
		b = binary.BigEndian.AppendUint32(b, s.PeriodMillis)
		b = binary.BigEndian.AppendUint64(b, s.LastSeq)
		b = binary.BigEndian.AppendUint64(b, uint64(s.Batches))
		b = binary.BigEndian.AppendUint64(b, uint64(s.Readings))
		b = binary.BigEndian.AppendUint64(b, uint64(s.Deduped))
		b = binary.BigEndian.AppendUint64(b, uint64(s.Sessions))
	}

	b = binary.BigEndian.AppendUint32(b, uint32(len(frames)))
	for _, af := range frames {
		if len(af.AgentID) > 0xFFFF {
			return errSeriesName
		}
		b = append(b, byte(len(af.AgentID)>>8), byte(len(af.AgentID)))
		b = append(b, af.AgentID...)
		b = binary.BigEndian.AppendUint32(b, uint32(len(af.Frames)))
		for _, f := range af.Frames {
			b = binary.BigEndian.AppendUint64(b, uint64(f.TimestampMillis))
			b = binary.BigEndian.AppendUint32(b, uint32(len(f.Pix)))
			for _, v := range f.Pix {
				b = binary.BigEndian.AppendUint64(b, math.Float64bits(v))
			}
		}
	}

	b = binary.BigEndian.AppendUint32(b, crc32.Checksum(b, castagnoli))

	tmp := ckptName(gen) + ".tmp"
	f, err := fs.Create(tmp)
	if err != nil {
		return fmt.Errorf("durable: create checkpoint temp: %w", err)
	}
	if _, err := f.Write(b); err != nil {
		//lint:ignore errdrop the write error is authoritative; close is cleanup
		f.Close()
		return fmt.Errorf("durable: write checkpoint %d: %w", gen, err)
	}
	if err := f.Sync(); err != nil {
		//lint:ignore errdrop the sync error is authoritative; close is cleanup
		f.Close()
		return fmt.Errorf("durable: sync checkpoint %d: %w", gen, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("durable: close checkpoint %d: %w", gen, err)
	}
	if err := fs.Rename(tmp, ckptName(gen)); err != nil {
		return fmt.Errorf("durable: publish checkpoint %d: %w", gen, err)
	}
	return nil
}

// readCheckpoint loads and validates one checkpoint file. Any failure —
// truncation, bad magic, checksum mismatch, malformed sections — returns an
// error; the caller falls back to the previous checkpoint.
func readCheckpoint(fs FS, name string) (*checkpointData, error) {
	rc, err := fs.Open(name)
	if err != nil {
		return nil, err
	}
	defer rc.Close()
	b, err := io.ReadAll(rc)
	if err != nil {
		return nil, fmt.Errorf("durable: read checkpoint %s: %w", name, err)
	}
	if len(b) < ckptMagicHeaderLen+4+4+4 {
		return nil, fmt.Errorf("durable: checkpoint %s truncated (%d bytes)", name, len(b))
	}
	body, trailer := b[:len(b)-4], binary.BigEndian.Uint32(b[len(b)-4:])
	if crc32.Checksum(body, castagnoli) != trailer {
		return nil, fmt.Errorf("durable: checkpoint %s failed its checksum", name)
	}
	if string(body[:8]) != ckptMagic {
		return nil, fmt.Errorf("durable: checkpoint %s has bad magic", name)
	}
	d := &checkpointData{
		Gen:     binary.BigEndian.Uint64(body[8:16]),
		BaseGen: binary.BigEndian.Uint64(body[16:24]),
		BaseLSN: binary.BigEndian.Uint64(body[24:32]),
		Series:  make(map[string][]tsdb.Point),
	}
	p := body[32:]

	u16 := func() (int, bool) {
		if len(p) < 2 {
			return 0, false
		}
		v := int(p[0])<<8 | int(p[1])
		p = p[2:]
		return v, true
	}
	u32 := func() (uint32, bool) {
		if len(p) < 4 {
			return 0, false
		}
		v := binary.BigEndian.Uint32(p)
		p = p[4:]
		return v, true
	}
	u64 := func() (uint64, bool) {
		if len(p) < 8 {
			return 0, false
		}
		v := binary.BigEndian.Uint64(p)
		p = p[8:]
		return v, true
	}
	str := func(n int) (string, bool) {
		if len(p) < n {
			return "", false
		}
		s := string(p[:n])
		p = p[n:]
		return s, true
	}
	malformed := fmt.Errorf("durable: checkpoint %s is malformed", name)

	nSeries, ok := u32()
	if !ok {
		return nil, malformed
	}
	for i := uint32(0); i < nSeries; i++ {
		nameLen, ok := u16()
		if !ok {
			return nil, malformed
		}
		sname, ok := str(nameLen)
		if !ok {
			return nil, malformed
		}
		nPts, ok := u32()
		if !ok || uint64(len(p)) < 16*uint64(nPts) {
			return nil, malformed
		}
		pts := make([]tsdb.Point, nPts)
		for j := range pts {
			ts, _ := u64()
			bits, _ := u64()
			pts[j] = tsdb.Point{TimestampMillis: int64(ts), Value: math.Float64frombits(bits)}
		}
		d.Series[sname] = pts
	}

	nSess, ok := u32()
	if !ok {
		return nil, malformed
	}
	for i := uint32(0); i < nSess; i++ {
		var s SessionState
		idLen, ok := u16()
		if !ok {
			return nil, malformed
		}
		if s.AgentID, ok = str(idLen); !ok {
			return nil, malformed
		}
		modLen, ok := u16()
		if !ok {
			return nil, malformed
		}
		if s.Modality, ok = str(modLen); !ok {
			return nil, malformed
		}
		period, ok := u32()
		if !ok {
			return nil, malformed
		}
		s.PeriodMillis = period
		vals := [5]uint64{}
		for j := range vals {
			v, ok := u64()
			if !ok {
				return nil, malformed
			}
			vals[j] = v
		}
		s.LastSeq = vals[0]
		s.Batches = int(vals[1])
		s.Readings = int(vals[2])
		s.Deduped = int(vals[3])
		s.Sessions = int(vals[4])
		d.Sess = append(d.Sess, s)
	}

	nAgents, ok := u32()
	if !ok {
		return nil, malformed
	}
	for i := uint32(0); i < nAgents; i++ {
		var af AgentFrames
		idLen, ok := u16()
		if !ok {
			return nil, malformed
		}
		if af.AgentID, ok = str(idLen); !ok {
			return nil, malformed
		}
		nFrames, ok := u32()
		if !ok {
			return nil, malformed
		}
		for j := uint32(0); j < nFrames; j++ {
			ts, ok := u64()
			if !ok {
				return nil, malformed
			}
			npix, ok := u32()
			if !ok || uint64(len(p)) < 8*uint64(npix) {
				return nil, malformed
			}
			pix := make([]float64, npix)
			for k := range pix {
				bits, _ := u64()
				pix[k] = math.Float64frombits(bits)
			}
			af.Frames = append(af.Frames, Frame{TimestampMillis: int64(ts), Pix: pix})
		}
		d.Frames = append(d.Frames, af)
	}

	if len(p) != 0 {
		return nil, malformed
	}
	return d, nil
}

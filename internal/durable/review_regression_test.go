package durable

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"darnet/internal/tsdb"
)

// storeBatchAtomic stores one batch the way the controller does since the
// atomicity fix: inserts and the commit mark inside one store critical
// section (tsdb.DB.Update), the group commit outside it.
func storeBatchAtomic(db *tsdb.DB, m *Manager, agent string, seq uint64, ts int64, vals ...float64) error {
	var markErr error
	db.Update(func(insert func(series string, p tsdb.Point)) {
		for i, v := range vals {
			insert(fmt.Sprintf("%s/acc[%d]", agent, i), tsdb.Point{TimestampMillis: ts, Value: v})
		}
		markErr = m.AppendCommit(agent, seq)
	})
	if markErr != nil {
		return markErr
	}
	return m.SyncCommits()
}

// TestCheckpointCannotSplitBatch is the regression for the checkpoint/batch
// interleaving hazard: when each point of a batch took the store lock
// separately, a concurrent checkpoint's snapshot+rotation could capture part
// of a batch's rows without the session state covering its seq — after a
// crash the retransmission then stored those rows again. With batches stored
// through one store critical section the interleaving is impossible: crash at
// any point, retransmit everything unacked, and every row is exactly-once.
func TestCheckpointCannotSplitBatch(t *testing.T) {
	const batches, perBatch = 60, 8
	fs := NewMemFS()
	db := tsdb.New()
	// PolicyNever: nothing is durable except what rotation fsyncs, which is
	// exactly the window where a split batch would materialize.
	m, _ := openTest(t, fs, db, PolicyNever)

	// Hammer checkpoints concurrently with atomic batch stores.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				//lint:ignore errdrop checkpoint races with the crash below by design
				m.Checkpoint()
			}
		}
	}()
	for seq := 1; seq <= batches; seq++ {
		if err := storeBatchAtomic(db, m, "car-1", uint64(seq), int64(seq), sliceOf(perBatch, float64(seq))...); err != nil {
			t.Fatalf("batch %d: %v", seq, err)
		}
	}
	close(stop)
	wg.Wait()
	fs.Crash() // power cut: unsynced bytes vanish

	db2 := tsdb.New()
	m2, rec := openTest(t, fs, db2, PolicyNever)
	restored := uint64(0)
	for _, s := range rec.Sessions {
		if s.AgentID == "car-1" {
			restored = s.LastSeq
		}
	}
	// The agent retransmits every batch it never saw acked durable.
	for seq := int(restored) + 1; seq <= batches; seq++ {
		if err := storeBatchAtomic(db2, m2, "car-1", uint64(seq), int64(seq), sliceOf(perBatch, float64(seq))...); err != nil {
			t.Fatalf("retransmit %d: %v", seq, err)
		}
	}
	// Exactly-once: every axis series holds one row per batch, no axis is
	// missing a row another axis has (a split batch would leave exactly that).
	for axis := 0; axis < perBatch; axis++ {
		series := fmt.Sprintf("car-1/acc[%d]", axis)
		pts := db2.Range(series, 0, 1<<60)
		if len(pts) != batches {
			t.Fatalf("%s holds %d rows, want %d (a checkpoint split a batch)", series, len(pts), batches)
		}
		seen := make(map[int64]bool, len(pts))
		for _, p := range pts {
			if seen[p.TimestampMillis] {
				t.Fatalf("%s holds a duplicate row at ts %d", series, p.TimestampMillis)
			}
			seen[p.TimestampMillis] = true
		}
	}
}

func sliceOf(n int, v float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = v
	}
	return out
}

// TestFramesSurviveCrash pins frame durability: committed frames replay from
// the WAL after a crash, uncommitted frames are discarded for the retransmit,
// and the restored state round-trips through a checkpoint.
func TestFramesSurviveCrash(t *testing.T) {
	fs := NewMemFS()
	db := tsdb.New()
	m, _ := openTest(t, fs, db, PolicyAlways)
	for seq := uint64(1); seq <= 3; seq++ {
		if err := m.AppendFrame("cam-1", int64(seq*10), []float64{float64(seq), 0.5}); err != nil {
			t.Fatalf("frame %d: %v", seq, err)
		}
		if err := m.AppendCommit("cam-1", seq); err != nil {
			t.Fatalf("commit %d: %v", seq, err)
		}
		if err := m.SyncCommits(); err != nil {
			t.Fatalf("sync %d: %v", seq, err)
		}
	}
	// Batch 4's frame hits the log but the crash beats its commit mark.
	if err := m.AppendFrame("cam-1", 40, []float64{4, 0.5}); err != nil {
		t.Fatal(err)
	}
	if err := m.w.sync(); err != nil {
		t.Fatal(err)
	}
	fs.Crash()

	db2 := tsdb.New()
	m2, rec := openTest(t, fs, db2, PolicyAlways)
	if rec.ReplayedFrames != 3 || rec.DiscardedFrames != 1 {
		t.Fatalf("replayed %d frames, discarded %d; want 3 and 1 (recovery %+v)", rec.ReplayedFrames, rec.DiscardedFrames, rec)
	}
	if len(rec.Frames) != 1 || rec.Frames[0].AgentID != "cam-1" || len(rec.Frames[0].Frames) != 3 {
		t.Fatalf("restored frames = %+v", rec.Frames)
	}
	for i, f := range rec.Frames[0].Frames {
		if f.TimestampMillis != int64((i+1)*10) || len(f.Pix) != 2 || f.Pix[0] != float64(i+1) {
			t.Fatalf("frame %d = %+v", i, f)
		}
	}

	// The restored frames ride the recFrames backstop into the next
	// checkpoint even though no frame source is installed, so a second
	// restart loads them from the checkpoint alone.
	if err := m2.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := m2.Close(); err != nil {
		t.Fatal(err)
	}
	db3 := tsdb.New()
	_, rec3 := openTest(t, fs, db3, PolicyAlways)
	if rec3.FramesLoaded != 3 || len(rec3.Frames) != 1 || len(rec3.Frames[0].Frames) != 3 {
		t.Fatalf("second restart lost checkpointed frames: %+v", rec3)
	}
}

// TestOversizedFrameRejectedWithoutDegrading pins the errFrameSize contract:
// a frame too large for the WAL record bound is refused up front (appending
// it would make the file unreadable) and the disk is not blamed for it.
func TestOversizedFrameRejectedWithoutDegrading(t *testing.T) {
	fs := NewMemFS()
	db := tsdb.New()
	m, _ := openTest(t, fs, db, PolicyAlways)
	huge := make([]float64, maxRecord/8)
	if err := m.AppendFrame("cam-1", 1, huge); err != errFrameSize {
		t.Fatalf("oversized frame append = %v, want errFrameSize", err)
	}
	if m.degraded.Load() {
		t.Fatal("an oversized frame is a caller error, not a disk failure; degradation must not latch")
	}
	if err := m.AppendFrame("cam-1", 1, []float64{1}); err != nil {
		t.Fatalf("normal frame after rejection: %v", err)
	}
}

// TestRejectedCheckpointDeleted is the regression for the gc fallback hazard:
// a checkpoint that failed validation during recovery must be deleted, so gc
// never retains the known-bad file as its fallback while deleting the older
// valid one.
func TestRejectedCheckpointDeleted(t *testing.T) {
	fs := NewMemFS()
	db := tsdb.New()
	m, _ := openTest(t, fs, db, PolicyAlways)
	if err := storeBatch(t, db, m, "car-1", 1, 100, 1.0); err != nil {
		t.Fatal(err)
	}
	if err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := storeBatch(t, db, m, "car-1", 2, 200, 2.0); err != nil {
		t.Fatal(err)
	}
	if err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	bad := ckptName(m.Stats().CheckpointGen)
	if err := fs.Corrupt(bad, 20); err != nil {
		t.Fatal(err)
	}
	fs.Crash()

	db2 := tsdb.New()
	_, rec := openTest(t, fs, db2, PolicyAlways)
	if !rec.UsedFallback {
		t.Fatalf("expected fallback recovery, got %+v", rec)
	}
	names, err := fs.List()
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range names {
		if n == bad {
			t.Fatalf("rejected checkpoint %s still on disk after recovery: a later fallback would land on it", bad)
		}
	}
	// The surviving fallback set must still recover the full state: corrupt
	// the fresh post-recovery checkpoint and recover again — the fallback is
	// now a valid checkpoint, not the rejected one, so nothing is lost.
	newest := ""
	for _, n := range names {
		if strings.HasSuffix(n, ".ckpt") && n > newest {
			newest = n
		}
	}
	if err := fs.Corrupt(newest, 20); err != nil {
		t.Fatal(err)
	}
	fs.Crash()
	db3 := tsdb.New()
	_, rec3 := openTest(t, fs, db3, PolicyAlways)
	if rec3.StartedEmpty {
		t.Fatalf("fallback landed on an invalid checkpoint and started empty: %+v", rec3)
	}
	if got := db3.Len("car-1/acc[0]"); got != 2 {
		t.Fatalf("second fallback recovery restored %d rows, want 2 (%+v)", got, rec3)
	}
}

// TestHeaderGenMismatchNotApplied is the regression for the late header
// check: a WAL file whose header generation disagrees with its name must not
// have a single record applied to the store — the mismatch is detected
// before replay streams anything.
func TestHeaderGenMismatchNotApplied(t *testing.T) {
	fs := NewMemFS()
	db := tsdb.New()
	m, _ := openTest(t, fs, db, PolicyAlways)
	if err := storeBatch(t, db, m, "car-1", 1, 100, 1.0); err != nil {
		t.Fatal(err)
	}
	if err := m.w.sync(); err != nil {
		t.Fatal(err)
	}
	// Forge a header mismatch: flip a byte of the generation field inside the
	// active WAL's header (offset 8..16). The file's records are intact and
	// checksum-clean — only the header lies.
	if err := fs.Corrupt(walName(m.w.gen), 15); err != nil {
		t.Fatal(err)
	}
	fs.Crash()

	db2 := tsdb.New()
	_, rec := openTest(t, fs, db2, PolicyAlways)
	if !rec.Degraded {
		t.Fatalf("a header generation mismatch is corruption: %+v", rec)
	}
	if rec.ReplayedInserts != 0 || db2.Len("car-1/acc[0]") != 0 {
		t.Fatalf("records from a mismatched-header file were applied: replayed=%d rows=%d",
			rec.ReplayedInserts, db2.Len("car-1/acc[0]"))
	}
}

// TestBatchesNotDoubleCounted is the regression for the replay accounting
// bug: Checkpoint reads session state after the WAL rotation, so a batch that
// lands in between has its commit mark in the new generation AND its count in
// the checkpoint's Batches. Replaying that mark must apply its buffered
// records (they exist only in the new generation) without counting the batch
// a second time.
func TestBatchesNotDoubleCounted(t *testing.T) {
	fs := NewMemFS()
	db := tsdb.New()
	m, _ := openTest(t, fs, db, PolicyAlways)
	for seq := uint64(1); seq <= 3; seq++ {
		if err := storeBatch(t, db, m, "car-1", seq, int64(seq*100), float64(seq)); err != nil {
			t.Fatal(err)
		}
	}
	// Stage Checkpoint's exact interleaving by hand: rotate inside the store
	// snapshot, let batch 4 land, then read the sessions and publish.
	var gen, lsn uint64
	var rotErr error
	series := db.Snapshot(func() { gen, lsn, rotErr = m.w.rotate(fs) })
	if rotErr != nil {
		t.Fatal(rotErr)
	}
	if err := storeBatch(t, db, m, "car-1", 4, 400, 4.0); err != nil {
		t.Fatal(err)
	}
	sess := m.mergeSessions(nil) // the ledger already counts batch 4
	if len(sess) != 1 || sess[0].LastSeq != 4 || sess[0].Batches != 4 {
		t.Fatalf("staged sessions = %+v, want LastSeq 4 Batches 4", sess)
	}
	if err := writeCheckpoint(fs, gen, gen, lsn, series, sess, nil); err != nil {
		t.Fatal(err)
	}
	fs.Crash()

	db2 := tsdb.New()
	_, rec := openTest(t, fs, db2, PolicyAlways)
	if len(rec.Sessions) != 1 {
		t.Fatalf("sessions = %+v", rec.Sessions)
	}
	s := rec.Sessions[0]
	if s.LastSeq != 4 || s.Batches != 4 {
		t.Fatalf("LastSeq %d Batches %d, want 4 and 4 (the replayed mark was already in the checkpoint's count)", s.LastSeq, s.Batches)
	}
	// The mark's buffered insert still applied: batch 4's row exists only in
	// the post-rotation generation, never in the checkpoint snapshot.
	if rec.ReplayedInserts != 1 || db2.Len("car-1/acc[0]") != 4 {
		t.Fatalf("replayed %d inserts, store holds %d rows; want 1 and 4", rec.ReplayedInserts, db2.Len("car-1/acc[0]"))
	}
}

package durable

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"darnet/internal/telemetry"
	"darnet/internal/tsdb"
)

// Recovery reports what Open reconstructed: which checkpoint seeded the
// store, what the WAL replay restored on top, and what was lost to torn or
// corrupt bytes. darnetd logs it and hands Sessions to the controller so
// dedupe high-water marks survive the restart.
type Recovery struct {
	// BaseGen is the WAL generation replay started from; Checkpoint is the
	// file that seeded the store ("" when starting from nothing).
	BaseGen    uint64
	Checkpoint string
	// UsedFallback is set when the newest checkpoint failed validation and
	// the previous one seeded the store instead. StartedEmpty is the last
	// resort: no checkpoint could be read even though at least one existed.
	UsedFallback bool
	StartedEmpty bool
	// Sessions is the controller session state to restore: the checkpoint's
	// sessions advanced by every replayed commit mark.
	Sessions []SessionState
	// Frames is the camera-frame state to restore (checkpoint frames plus
	// committed replayed frame records), per agent, timestamp-sorted. The
	// controller loads it with RestoreFrames.
	Frames []AgentFrames
	// SeriesLoaded/PointsLoaded/FramesLoaded describe the checkpoint
	// contribution; ReplayedRecords/ReplayedInserts/ReplayedFrames the WAL
	// contribution. A replayed record is a commit mark, an insert, or a frame
	// that reached the store.
	SeriesLoaded    int
	PointsLoaded    int
	FramesLoaded    int
	ReplayedRecords int
	ReplayedInserts int
	ReplayedFrames  int
	// DiscardedInserts/DiscardedFrames count buffered records whose commit
	// mark never made it to disk: the batch was never acked durable, the
	// agent retransmits it, so discarding is what keeps replay duplicate-free.
	DiscardedInserts int
	DiscardedFrames  int
	// TornBytes were truncated from a torn tail; LostBytes sat past a
	// corrupt record or inside unreadable files and could not be replayed.
	TornBytes int64
	LostBytes int64
	// Degraded is set when recovery lost data beyond a clean torn tail
	// (fallback, corruption, or an empty start); Note is the human-readable
	// account, including the data-loss bound.
	Degraded bool
	Note     string

	// rejectedCkpts are checkpoint files that failed validation during this
	// recovery. Open deletes them once the fresh post-recovery checkpoint is
	// durable — leaving them would let gc retain a known-bad file as the
	// fallback while deleting the older valid one.
	rejectedCkpts []string
}

// Manager owns the durability pipeline: it is the tsdb.DB's InsertLogger,
// the controller's commit log, the checkpoint writer, and the recovery
// bookkeeper. Lock order: ckptMu < db.mu < w.syncMu < w.mu; m.mu is a leaf
// never held across store or log calls. The controller adds db.mu < c.mu and
// db.mu < frameStore.mu edges (batch stores and the checkpoint frame
// snapshot run under db.mu); nothing takes db.mu under either of those.
type Manager struct {
	db        *tsdb.DB
	fs        FS
	policy    Policy
	syncEvery time.Duration
	ckptEvery time.Duration
	logf      func(format string, args ...any)

	w *wal

	// ckptMu serializes whole checkpoints (ticker vs. shutdown).
	ckptMu sync.Mutex

	mu       sync.Mutex
	ckptGen  uint64
	ckptLSN  uint64
	sessions func() []SessionState
	// frames is the controller callback checkpoints snapshot frame state
	// through (collect.Controller.FrameSnapshot); recFrames backstops it with
	// the recovered frames until a source is installed, so a deployment that
	// checkpoints before wiring the controller cannot drop recovered frames.
	frames    func() []AgentFrames
	recFrames []AgentFrames
	// table is the manager's own per-agent commit ledger: seeded from
	// recovery, advanced by every AppendCommit. Checkpoints merge it with the
	// controller's richer snapshot (when one is installed) so dedupe marks
	// survive even a deployment that never wires SetSessionSource.
	table  map[string]*SessionState
	closed bool

	// degraded latches on the first append or fsync failure: the store keeps
	// serving (availability over durability) but Health reports it and new
	// appends stop. recoveryDegraded carries recovery-time loss into Health.
	degraded         atomic.Bool
	degradedReason   atomic.Pointer[string]
	recoveryDegraded bool
	recoveryNote     string

	started   atomic.Bool
	stop      chan struct{}
	done      chan struct{}
	startOnce sync.Once
	stopOnce  sync.Once
	closeOnce sync.Once
	closeErr  error
}

// Pre-allocated degradation reasons: degrade is reachable from the Insert
// hot path, so the strings must already exist.
var (
	reasonAppend = "WAL append failed"
	reasonSync   = "fsync failed"
)

// Open recovers the store from opts.FS and returns a Manager wired into db:
// every subsequent db.Insert is logged write-ahead, and commit marks arrive
// via AppendCommit. Recovery order: newest valid checkpoint, else the
// previous one (UsedFallback), else a degraded-empty start; then WAL
// generations >= the base replay on top, torn tails truncated and corruption
// cut off conservatively. Open finishes by writing a fresh checkpoint and
// opening a fresh WAL generation, so a crash loop cannot re-lose the same
// replayed data.
func Open(db *tsdb.DB, opts Options) (*Manager, *Recovery, error) {
	if opts.FS == nil {
		return nil, nil, fmt.Errorf("durable: Options.FS is required")
	}
	if opts.SyncEvery == 0 {
		opts.SyncEvery = DefaultSyncEvery
	}
	if opts.SyncEvery < 0 {
		return nil, nil, fmt.Errorf("durable: negative sync interval %v", opts.SyncEvery)
	}
	if opts.CheckpointEvery == 0 {
		opts.CheckpointEvery = DefaultCheckpointEvery
	}
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}

	m := &Manager{
		db:        db,
		fs:        opts.FS,
		policy:    opts.Policy,
		syncEvery: opts.SyncEvery,
		ckptEvery: opts.CheckpointEvery,
		logf:      logf,
		table:     make(map[string]*SessionState),
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
	}

	rec, endLSN, maxGen, err := m.recover()
	if err != nil {
		return nil, nil, err
	}
	mRecoveries.Inc()

	// Fresh generation for this process lifetime: nothing this run appends
	// shares a file with anything recovery read.
	w, err := newWAL(m.fs, maxGen+1, endLSN)
	if err != nil {
		return nil, nil, err
	}
	m.w = w

	// The post-recovery checkpoint makes the recovered state durable at the
	// new base, so the generations recovery just replayed are no longer
	// load-bearing and a crash loop cannot compound losses.
	series := db.Snapshot(nil)
	if err := writeCheckpoint(m.fs, w.gen, w.gen, endLSN, series, rec.Sessions, rec.Frames); err != nil {
		return nil, nil, err
	}
	mCheckpoints.Inc()
	m.ckptGen, m.ckptLSN = w.gen, endLSN
	m.recFrames = rec.Frames
	for _, s := range rec.Sessions {
		cp := s
		m.table[s.AgentID] = &cp
	}
	// After an empty start the rejected files are the only copy of whatever
	// an operator might still salvage, so they are left alone and gc is
	// skipped at boot. Otherwise checkpoints that failed validation are
	// deleted now that the fresh checkpoint has made the recovered state
	// durable: if they stayed, gc would keep the known-bad file as its
	// second-newest fallback while deleting the older valid one, and the next
	// fallback recovery would land on the invalid file and start empty
	// despite a valid snapshot having existed.
	if !rec.StartedEmpty {
		for _, n := range rec.rejectedCkpts {
			if err := m.fs.Remove(n); err != nil {
				m.logf("durable: remove rejected checkpoint %s: %v", n, err)
			}
		}
		m.gc()
	}

	m.recoveryDegraded = rec.Degraded
	m.recoveryNote = rec.Note
	db.SetInsertLogger(m)
	return m, rec, nil
}

// recover loads the best checkpoint and replays the WAL. It returns the
// recovery report, the LSN replay ended at, and the highest generation seen
// in the directory (checkpoint or WAL).
func (m *Manager) recover() (*Recovery, uint64, uint64, error) {
	names, err := m.fs.List()
	if err != nil {
		return nil, 0, 0, fmt.Errorf("durable: list data dir: %w", err)
	}
	var ckptGens, walGens []uint64
	maxGen := uint64(0)
	for _, n := range names {
		if g, ok := parseGen(n, "checkpoint-", ".ckpt"); ok {
			ckptGens = append(ckptGens, g)
			maxGen = max(maxGen, g)
		}
		if g, ok := parseGen(n, "wal-", ".wal"); ok {
			walGens = append(walGens, g)
			maxGen = max(maxGen, g)
		}
	}
	sort.Slice(ckptGens, func(i, j int) bool { return ckptGens[i] > ckptGens[j] }) // newest first
	sort.Slice(walGens, func(i, j int) bool { return walGens[i] < walGens[j] })    // replay order

	rec := &Recovery{}
	sessions := make(map[string]*SessionState)
	var base *checkpointData
	for _, g := range ckptGens {
		d, err := readCheckpoint(m.fs, ckptName(g))
		if err != nil {
			m.logf("durable: checkpoint %d rejected: %v", g, err)
			rec.Degraded = true
			rec.rejectedCkpts = append(rec.rejectedCkpts, ckptName(g))
			continue
		}
		base = d
		rec.Checkpoint = ckptName(g)
		break
	}
	frames := make(map[string][]Frame)
	switch {
	case base != nil:
		rec.BaseGen = base.BaseGen
		rec.UsedFallback = rec.Checkpoint != ckptName(ckptGens[0])
		for name, pts := range base.Series {
			m.db.Load(name, pts)
			rec.SeriesLoaded++
			rec.PointsLoaded += len(pts)
		}
		for _, s := range base.Sess {
			cp := s
			sessions[s.AgentID] = &cp
		}
		for _, af := range base.Frames {
			frames[af.AgentID] = append(frames[af.AgentID], af.Frames...)
			rec.FramesLoaded += len(af.Frames)
		}
	case len(ckptGens) > 0:
		// Checkpoints existed but none could be read: the WAL generations
		// still on disk do not cover what those checkpoints held, so replay
		// would resurrect an unknowable subset. Start empty, report the
		// bound, and let the operator decide what to salvage.
		rec.StartedEmpty = true
		rec.Degraded = true
		for _, n := range names {
			if sz, err := m.fs.Size(n); err == nil {
				rec.LostBytes += sz
			}
		}
		rec.Note = fmt.Sprintf("started empty: all %d checkpoints failed validation; up to %d bytes of log+checkpoint state lost", len(ckptGens), rec.LostBytes)
		return rec, 0, maxGen, nil
	default:
		// No checkpoint has ever been written (first boot or pre-durability
		// data dir): an empty base is the correct base, replay everything.
		rec.BaseGen = 0
	}

	endLSN := uint64(0)
	if base != nil {
		endLSN = base.BaseLSN
	}
	type pendingInsert struct {
		series string
		ts     int64
		bits   uint64
	}
	pending := make(map[string][]pendingInsert)
	pendingFrames := make(map[string][]Frame)
	stopReplay := false
	for _, g := range walGens {
		if g < rec.BaseGen || stopReplay {
			continue
		}
		name := walName(g)
		fileGen, goodEnd, size, tail, err := readWALFile(m.fs, name, g, func(r walRecord) error {
			switch r.kind {
			case recInsert:
				slash := strings.IndexByte(r.series, '/')
				if slash < 0 {
					// Not an agent series: no commit protocol, apply directly.
					m.db.Insert(r.series, tsdb.Point{TimestampMillis: r.tsMillis, Value: math.Float64frombits(r.valueBits)})
					rec.ReplayedRecords++
					rec.ReplayedInserts++
					return nil
				}
				agent := r.series[:slash]
				pending[agent] = append(pending[agent], pendingInsert{series: r.series, ts: r.tsMillis, bits: r.valueBits})
			case recFrame:
				pendingFrames[r.agentID] = append(pendingFrames[r.agentID], Frame{TimestampMillis: r.tsMillis, Pix: r.pix})
			case recCommit:
				for _, p := range pending[r.agentID] {
					m.db.Insert(p.series, tsdb.Point{TimestampMillis: p.ts, Value: math.Float64frombits(p.bits)})
					rec.ReplayedRecords++
					rec.ReplayedInserts++
				}
				delete(pending, r.agentID)
				if fs := pendingFrames[r.agentID]; len(fs) > 0 {
					frames[r.agentID] = append(frames[r.agentID], fs...)
					rec.ReplayedRecords += len(fs)
					rec.ReplayedFrames += len(fs)
					delete(pendingFrames, r.agentID)
				}
				s := sessions[r.agentID]
				if s == nil {
					s = &SessionState{AgentID: r.agentID}
					sessions[r.agentID] = s
				}
				// The batch counter only advances past the dedupe high-water
				// mark: a mark at or below it was appended before the session
				// snapshot was read and is already counted in the checkpoint's
				// Batches. Its pending records still apply — a batch stored
				// after the rotation has its points only in this generation.
				if r.seq > s.LastSeq {
					s.LastSeq = r.seq
					s.Batches++
				}
				rec.ReplayedRecords++
			}
			return nil
		})
		if err != nil {
			return nil, 0, 0, err
		}
		if fileGen != 0 && fileGen != g {
			// readWALFile classified the file corrupt before applying any of
			// its records; this just names the cause.
			m.logf("durable: %s header claims generation %d; not replayed", name, fileGen)
		}
		endLSN += uint64(goodEnd)
		switch tail {
		case tailTorn:
			torn := size - goodEnd
			rec.TornBytes += torn
			mTornBytes.Add(torn)
			if err := m.fs.Truncate(name, goodEnd); err != nil {
				m.logf("durable: truncate torn tail of %s: %v", name, err)
			}
			// A torn tail means the crash interrupted this append; nothing
			// after it can exist, but later generations (created by a
			// checkpoint that fsynced this file first) cannot follow a tear —
			// if one does, the directory is inconsistent, so stop.
			stopReplay = true
		case tailCorrupt:
			lost := size - goodEnd
			rec.LostBytes += lost
			rec.Degraded = true
			m.logf("durable: %s corrupt after offset %d; %d bytes not replayed", name, goodEnd, lost)
			stopReplay = true
		}
	}

	// Buffered records whose commit mark never hit the disk: the agent never
	// saw a durable ack for them, so it retransmits and replaying them here
	// would double-store. Discard and count.
	for _, ps := range pending {
		rec.DiscardedInserts += len(ps)
	}
	for _, fs := range pendingFrames {
		rec.DiscardedFrames += len(fs)
	}
	mReplayed.Add(int64(rec.ReplayedRecords))
	mDiscarded.Add(int64(rec.DiscardedInserts) + int64(rec.DiscardedFrames))

	rec.Sessions = make([]SessionState, 0, len(sessions))
	for _, s := range sessions {
		rec.Sessions = append(rec.Sessions, *s)
	}
	sort.Slice(rec.Sessions, func(i, j int) bool { return rec.Sessions[i].AgentID < rec.Sessions[j].AgentID })

	rec.Frames = make([]AgentFrames, 0, len(frames))
	for id, fs := range frames {
		sort.SliceStable(fs, func(i, j int) bool { return fs[i].TimestampMillis < fs[j].TimestampMillis })
		rec.Frames = append(rec.Frames, AgentFrames{AgentID: id, Frames: fs})
	}
	sort.Slice(rec.Frames, func(i, j int) bool { return rec.Frames[i].AgentID < rec.Frames[j].AgentID })

	if rec.Note == "" {
		rec.Note = fmt.Sprintf("recovered %d series (%d points, %d frames) from %s + %d replayed records; %d uncommitted inserts and %d frames discarded, %d torn bytes truncated, %d bytes lost",
			rec.SeriesLoaded, rec.PointsLoaded, rec.FramesLoaded, orNone(rec.Checkpoint), rec.ReplayedRecords, rec.DiscardedInserts, rec.DiscardedFrames, rec.TornBytes, rec.LostBytes)
	}
	return rec, endLSN, maxGen, nil
}

func orNone(s string) string {
	if s == "" {
		return "no checkpoint"
	}
	return s
}

// LogInsert implements tsdb.InsertLogger: it runs under db.mu on the
// //lint:hotpath Insert root, appends the record, and latches degradation on
// failure instead of failing the insert — the in-memory store stays
// available even when the disk is gone.
func (m *Manager) LogInsert(series string, p tsdb.Point) {
	if m.degraded.Load() {
		return
	}
	if _, err := m.w.appendInsert(series, p.TimestampMillis, math.Float64bits(p.Value)); err != nil {
		mAppendErrors.Inc()
		m.degrade(&reasonAppend)
	}
}

// AppendCommit logs a batch commit mark. It only appends — no fsync — so the
// controller can call it inside the store critical section that makes a
// batch atomic with respect to checkpointing, without stalling every
// concurrent insert behind a disk flush. The durability point moves to
// SyncCommits, which the controller calls after releasing the store lock and
// before acking. Implements the collect.CommitLog seam.
func (m *Manager) AppendCommit(agentID string, seq uint64) error {
	if m.degraded.Load() {
		return ErrDegraded
	}
	if _, err := m.w.appendCommit(agentID, seq); err != nil {
		mAppendErrors.Inc()
		m.degrade(&reasonAppend)
		return err
	}
	m.mu.Lock()
	s := m.table[agentID]
	if s == nil {
		s = &SessionState{AgentID: agentID}
		m.table[agentID] = s
	}
	if seq > s.LastSeq {
		s.LastSeq = seq
	}
	s.Batches++
	m.mu.Unlock()
	return nil
}

// AppendFrame logs one camera frame ahead of the frame-store insert, the
// frame analogue of LogInsert. An oversized frame is rejected without
// latching degradation (the disk is fine); real write failures degrade as
// usual. Implements the collect.CommitLog seam.
func (m *Manager) AppendFrame(agentID string, tsMillis int64, pix []float64) error {
	if m.degraded.Load() {
		return ErrDegraded
	}
	if _, err := m.w.appendFrame(agentID, tsMillis, pix); err != nil {
		if err == errFrameSize {
			return err
		}
		mAppendErrors.Inc()
		m.degrade(&reasonAppend)
		return err
	}
	return nil
}

// SyncCommits is the pre-ack durability point: under PolicyAlways it
// group-commits everything appended so far — the batch's inserts, frames,
// and commit mark included — before returning, so the subsequent ack only
// ever covers durable data. Under the other policies it is a no-op; their
// durability points are the interval timer and the OS. Concurrent callers
// coalesce onto one fsync. Implements the collect.CommitLog seam.
func (m *Manager) SyncCommits() error {
	if m.policy != PolicyAlways {
		return nil
	}
	return m.Sync()
}

// Sync forces a group commit of everything appended so far, regardless of
// policy — the interval loop's tick, exposed for callers (and benchmarks)
// that need a known durability point without waiting for the timer.
func (m *Manager) Sync() error {
	if m.degraded.Load() {
		return ErrDegraded
	}
	if err := m.w.sync(); err != nil {
		mSyncErrors.Inc()
		m.degrade(&reasonSync)
		return err
	}
	return nil
}

// degrade latches the first durability failure. Reachable from the insert
// hot path, hence the pointer-to-prealloc reason; the log line runs at most
// once per process, on the latching failure.
func (m *Manager) degrade(reason *string) {
	if m.degraded.CompareAndSwap(false, true) {
		m.degradedReason.Store(reason)
		m.logf("durable: log degraded: %s (store keeps serving; new data is not durable)", *reason)
	}
}

// SetSessionSource installs the controller callback checkpoints snapshot
// session state through (collect.Controller.SessionSnapshot).
func (m *Manager) SetSessionSource(fn func() []SessionState) {
	m.mu.Lock()
	m.sessions = fn
	m.mu.Unlock()
}

// SetFrameSource installs the controller callback checkpoints snapshot
// camera-frame state through (collect.Controller.FrameSnapshot). The
// callback runs under the store lock during Checkpoint, so it must not call
// back into the DB or the Manager.
func (m *Manager) SetFrameSource(fn func() []AgentFrames) {
	m.mu.Lock()
	m.frames = fn
	m.mu.Unlock()
}

// Checkpoint writes a full checkpoint now: rotate the WAL inside a store
// snapshot (so no insert straddles the boundary), capture sessions, publish
// through tmp+rename, then garbage-collect superseded files.
func (m *Manager) Checkpoint() error {
	m.ckptMu.Lock()
	defer m.ckptMu.Unlock()
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return ErrClosed
	}
	sessFn := m.sessions
	frameFn := m.frames
	recFrames := m.recFrames
	m.mu.Unlock()

	var gen, lsn uint64
	var rotErr error
	var frames []AgentFrames
	series := m.db.Snapshot(func() {
		gen, lsn, rotErr = m.w.rotate(m.fs)
		// The frame snapshot is taken inside the store critical section, at
		// the rotation boundary: the controller stores each batch (scalars
		// and frames together) under the same lock, so every frame is either
		// in this snapshot with its log record retired, or past the boundary
		// with its record in the new generation — exactly the partition the
		// series snapshot gets.
		if rotErr == nil {
			if frameFn != nil {
				frames = frameFn()
			} else {
				frames = recFrames
			}
		}
	})
	if rotErr != nil {
		mSyncErrors.Inc()
		m.degrade(&reasonSync)
		return rotErr
	}
	// Session state is read after the rotation: any commit mark that landed
	// in the retired generation has its sequence advance visible here (the
	// controller updates its table before appending the mark), so the
	// checkpoint can never under-report a dedupe high-water mark whose data
	// it contains. The controller snapshot is authoritative for modality and
	// accounting; the manager's own commit ledger backstops LastSeq.
	var sess []SessionState
	if sessFn != nil {
		sess = sessFn()
	}
	sess = m.mergeSessions(sess)
	if err := writeCheckpoint(m.fs, gen, gen, lsn, series, sess, frames); err != nil {
		return err
	}
	mCheckpoints.Inc()
	m.mu.Lock()
	m.ckptGen, m.ckptLSN = gen, lsn
	m.mu.Unlock()
	m.gc()
	return nil
}

// mergeSessions folds the manager's commit ledger into the controller
// snapshot: ledger-only agents are added, and LastSeq never moves backwards.
func (m *Manager) mergeSessions(sess []SessionState) []SessionState {
	m.mu.Lock()
	defer m.mu.Unlock()
	have := make(map[string]int, len(sess))
	for i, s := range sess {
		have[s.AgentID] = i
	}
	for id, led := range m.table {
		if i, ok := have[id]; ok {
			if led.LastSeq > sess[i].LastSeq {
				sess[i].LastSeq = led.LastSeq
			}
			continue
		}
		sess = append(sess, *led)
	}
	sort.Slice(sess, func(i, j int) bool { return sess[i].AgentID < sess[j].AgentID })
	return sess
}

// gc removes files superseded twice over: everything older than the
// second-newest checkpoint (the fallback target) plus stray temp files.
func (m *Manager) gc() {
	names, err := m.fs.List()
	if err != nil {
		return
	}
	var ckpts []uint64
	for _, n := range names {
		if g, ok := parseGen(n, "checkpoint-", ".ckpt"); ok {
			ckpts = append(ckpts, g)
		}
	}
	sort.Slice(ckpts, func(i, j int) bool { return ckpts[i] > ckpts[j] })
	if len(ckpts) < 2 {
		return
	}
	keepFrom := ckpts[1]
	for _, n := range names {
		drop := strings.HasSuffix(n, ".tmp")
		if g, ok := parseGen(n, "checkpoint-", ".ckpt"); ok && g < keepFrom {
			drop = true
		}
		if g, ok := parseGen(n, "wal-", ".wal"); ok && g < keepFrom {
			drop = true
		}
		if drop {
			if err := m.fs.Remove(n); err != nil {
				m.logf("durable: gc %s: %v", n, err)
			}
		}
	}
}

// Start launches the background loop: interval fsyncs under PolicyInterval
// and periodic checkpoints (unless CheckpointEvery is negative).
func (m *Manager) Start() {
	m.startOnce.Do(func() {
		m.started.Store(true)
		go m.loop()
	})
}

func (m *Manager) loop() {
	defer close(m.done)
	var syncC, ckptC <-chan time.Time
	if m.policy == PolicyInterval {
		t := time.NewTicker(m.syncEvery)
		defer t.Stop()
		syncC = t.C
	}
	if m.ckptEvery > 0 {
		t := time.NewTicker(m.ckptEvery)
		defer t.Stop()
		ckptC = t.C
	}
	for {
		select {
		case <-m.stop:
			return
		case <-syncC:
			if err := m.w.sync(); err != nil {
				mSyncErrors.Inc()
				m.degrade(&reasonSync)
			}
		case <-ckptC:
			if err := m.Checkpoint(); err != nil {
				m.logf("durable: periodic checkpoint: %v", err)
			}
		}
	}
}

// Close stops the background loop, writes the shutdown checkpoint (which
// also fsyncs and rotates the WAL), and closes the log. darnetd orders this
// after the final telemetry scrape flush so the scrape still observes a live
// process, and before exit so the next boot replays nothing.
func (m *Manager) Close() error {
	m.closeOnce.Do(func() {
		m.stopOnce.Do(func() { close(m.stop) })
		if m.started.Load() {
			<-m.done
		}
		ckptErr := m.Checkpoint()
		m.db.SetInsertLogger(nil)
		m.mu.Lock()
		m.closed = true
		m.mu.Unlock()
		closeErr := m.w.close()
		if ckptErr != nil {
			m.closeErr = ckptErr
		} else {
			m.closeErr = closeErr
		}
	})
	return m.closeErr
}

// ManagerStats is the durability state darnetd's shutdown summary reports.
type ManagerStats struct {
	Policy        string `json:"fsync_policy"`
	Gen           uint64 `json:"wal_gen"`
	WALBytes      uint64 `json:"wal_bytes"`
	WALSynced     uint64 `json:"wal_bytes_synced"`
	CheckpointGen uint64 `json:"checkpoint_gen"`
	CheckpointLSN uint64 `json:"checkpoint_lsn"`
	Degraded      bool   `json:"degraded,omitempty"`
	Reason        string `json:"degraded_reason,omitempty"`
}

// Stats snapshots the durability state.
func (m *Manager) Stats() ManagerStats {
	st := ManagerStats{Policy: m.policy.String()}
	m.w.syncMu.Lock()
	st.WALSynced = m.w.synced
	m.w.syncMu.Unlock()
	m.w.mu.Lock()
	st.Gen = m.w.gen
	st.WALBytes = m.w.total
	m.w.mu.Unlock()
	m.mu.Lock()
	st.CheckpointGen = m.ckptGen
	st.CheckpointLSN = m.ckptLSN
	m.mu.Unlock()
	if m.degraded.Load() {
		st.Degraded = true
		if r := m.degradedReason.Load(); r != nil {
			st.Reason = *r
		}
	}
	return st
}

// Health reports the durability contribution to /healthz: ok while the log
// is trustworthy, degraded (but still serving) after a write/fsync failure
// or a lossy recovery.
func (m *Manager) Health() telemetry.Health {
	if m.degraded.Load() {
		reason := "write or fsync failure"
		if r := m.degradedReason.Load(); r != nil {
			reason = *r
		}
		return telemetry.Health{Status: "degraded: durability (" + reason + ")", OK: true}
	}
	if m.recoveryDegraded {
		return telemetry.Health{Status: "degraded: durability (lossy recovery: " + m.recoveryNote + ")", OK: true}
	}
	return telemetry.Health{Status: "ok", OK: true}
}

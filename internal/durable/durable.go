// Package durable is the controller's crash-safety layer: a length-prefixed,
// CRC32C-checksummed write-ahead log that tsdb.DB.Insert appends to before
// mutating memory, periodic checkpoints that snapshot the store and the
// controller's per-agent session state so replay stays bounded, and a
// recovery path that truncates torn tails, rejects corrupt records, and
// replays the survivors idempotently.
//
// The replay contract is built around commit marks. Insert and frame records
// buffer per agent during replay and apply only when that agent's commit
// mark (one per stored batch) arrives; the mark also advances the agent's
// dedupe high-water mark. A crash between a batch's records and its mark
// therefore discards them — the agent never saw an ack covering them (under
// the always policy acks follow the mark's fsync), so it retransmits and the
// rows land exactly once. The controller stores each batch — points, frames,
// session advance, and commit mark — inside one store critical section
// (tsdb.DB.Update), and checkpoints rotate the WAL inside that same lock, so
// a checkpoint boundary can never split a batch. That is how "no duplicate
// rows after replay" holds for every crash position.
//
// Fsync policy picks the durability/latency trade-off per deployment:
//
//	always   group-commit fsync before every batch ack — acked data is never lost
//	interval background fsync every SyncEvery — loss bounded by the interval
//	never    the OS decides — loss bounded only by the kernel's writeback
//
// All disk access goes through the File/FS interfaces in fs.go, which is the
// seam internal/fault uses to inject short writes, torn tails, bit flips, and
// fsync failures deterministically.
package durable

import (
	"errors"
	"fmt"
	"hash/crc32"
	"time"

	"darnet/internal/telemetry"
)

// Durability metrics: append volume, fsync cadence and failures, checkpoint
// count, and the recovery tallies /healthz reports after a restart.
var (
	mWALRecords   = telemetry.NewCounter("darnet_durable_wal_records_total", "records appended to the write-ahead log")
	mWALBytes     = telemetry.NewCounter("darnet_durable_wal_bytes_total", "bytes appended to the write-ahead log")
	mWALSyncs     = telemetry.NewCounter("darnet_durable_wal_syncs_total", "fsync calls issued by group commit, the interval loop, and rotation")
	mAppendErrors = telemetry.NewCounter("darnet_durable_wal_append_errors_total", "WAL appends that failed; the log is degraded after the first")
	mSyncErrors   = telemetry.NewCounter("darnet_durable_sync_errors_total", "fsync failures; the log is degraded after the first")
	mCheckpoints  = telemetry.NewCounter("darnet_durable_checkpoints_total", "checkpoints written")
	mRecoveries   = telemetry.NewCounter("darnet_durable_recoveries_total", "recovery passes run at startup")
	mReplayed     = telemetry.NewCounter("darnet_durable_recovery_replayed_records_total", "WAL records applied during recovery")
	mDiscarded    = telemetry.NewCounter("darnet_durable_recovery_discarded_inserts_total", "uncommitted insert records discarded during recovery (agents retransmit them)")
	mTornBytes    = telemetry.NewCounter("darnet_durable_recovery_torn_bytes_total", "bytes truncated from torn WAL tails during recovery")
)

// castagnoli is the CRC32C polynomial table every record and checkpoint
// checksum uses (hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Policy selects when appended WAL bytes are forced to stable storage.
type Policy int

// Fsync policies, weakest guarantee last.
const (
	// PolicyAlways group-commits: every batch commit mark syncs the log
	// before the controller acks, so acknowledged data survives any crash.
	PolicyAlways Policy = iota
	// PolicyInterval syncs on a timer; a crash loses at most SyncEvery worth
	// of acknowledged appends.
	PolicyInterval
	// PolicyNever leaves syncing to the OS; loss is bounded only by kernel
	// writeback (and is measured, not guaranteed).
	PolicyNever
)

// String implements fmt.Stringer with the flag spellings.
func (p Policy) String() string {
	switch p {
	case PolicyAlways:
		return "always"
	case PolicyInterval:
		return "interval"
	case PolicyNever:
		return "never"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// ParsePolicy maps the -fsync flag spellings onto a Policy.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "always":
		return PolicyAlways, nil
	case "interval":
		return PolicyInterval, nil
	case "never":
		return PolicyNever, nil
	default:
		return 0, fmt.Errorf("durable: unknown fsync policy %q (want always, interval, or never)", s)
	}
}

// DefaultSyncEvery is the interval policy's fsync period when Options leaves
// it zero.
const DefaultSyncEvery = 200 * time.Millisecond

// DefaultCheckpointEvery is the automatic checkpoint period when Options
// leaves it zero.
const DefaultCheckpointEvery = time.Minute

// Options parameterizes Open.
type Options struct {
	// FS is the directory the WAL and checkpoints live in. Required.
	FS FS
	// Policy selects the fsync policy (zero value: PolicyAlways).
	Policy Policy
	// SyncEvery is the interval policy's fsync period; 0 means
	// DefaultSyncEvery. Ignored by the other policies.
	SyncEvery time.Duration
	// CheckpointEvery is the automatic checkpoint period once Start runs;
	// 0 means DefaultCheckpointEvery, negative disables the loop (manual
	// Checkpoint calls still work).
	CheckpointEvery time.Duration
	// Logf receives recovery and degradation notices; nil discards them.
	Logf func(format string, args ...any)
}

// Errors the durability layer reports. They are package vars (not wrapped
// fmt.Errorf values) because the append path is reachable from the
// //lint:hotpath Insert root and must not format.
var (
	// ErrClosed is returned by operations on a closed Manager.
	ErrClosed = errors.New("durable: manager is closed")
	// ErrDegraded is returned once a write or fsync failure has made the log
	// untrustworthy; the store keeps serving but new data is not durable.
	ErrDegraded = errors.New("durable: log degraded after an earlier write or fsync failure")
	// errSeriesName rejects a series name too long for the u16 length prefix.
	errSeriesName = errors.New("durable: series name exceeds 65535 bytes")
	// errShortWrite marks an append the File accepted only partially.
	errShortWrite = errors.New("durable: short WAL write")
	// errFrameSize rejects a frame whose encoding would exceed the WAL's
	// record bound. The disk is fine, so this does NOT latch degradation —
	// the frame is simply not durable and the caller decides what to do.
	errFrameSize = errors.New("durable: frame exceeds the WAL record size bound")
)

package durable

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// File is the append-only handle the WAL and checkpoint writers hold. It is
// deliberately tiny so the fault layer (internal/fault.File) can interpose
// short writes, torn tails, bit flips, and fsync failures between the
// durability logic and the real disk.
//
// Write must report how many bytes the implementation accepted; Sync must not
// return until every accepted byte is on stable storage (or an error says it
// is not).
type File interface {
	io.Writer
	Sync() error
	Close() error
}

// FS is the directory the durability layer lives in. DirFS backs it with a
// real directory; MemFS backs it with process memory and adds the crash
// semantics (unsynced bytes vanish) the crash-injection harness needs.
type FS interface {
	// Create opens name for appending, truncating any previous content.
	Create(name string) (File, error)
	// Open opens name for reading from the start.
	Open(name string) (io.ReadCloser, error)
	// List returns the names (not paths) of all regular files, sorted.
	List() ([]string, error)
	// Remove deletes name. Removing a missing file is not an error.
	Remove(name string) error
	// Rename atomically replaces newname with oldname's content.
	Rename(oldname, newname string) error
	// Truncate shortens name to size bytes (torn-tail repair on recovery).
	Truncate(name string, size int64) error
	// Size returns the current length of name in bytes.
	Size(name string) (int64, error)
}

// DirFS is the production FS: files in one flat directory, os.File handles.
type DirFS struct {
	dir string
}

// NewDirFS returns an FS rooted at dir, creating the directory if needed.
func NewDirFS(dir string) (*DirFS, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("durable: create data dir: %w", err)
	}
	return &DirFS{dir: dir}, nil
}

func (fs *DirFS) path(name string) string { return filepath.Join(fs.dir, name) }

// Create implements FS.
func (fs *DirFS) Create(name string) (File, error) {
	return os.OpenFile(fs.path(name), os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
}

// Open implements FS.
func (fs *DirFS) Open(name string) (io.ReadCloser, error) {
	return os.Open(fs.path(name))
}

// List implements FS.
func (fs *DirFS) List() ([]string, error) {
	entries, err := os.ReadDir(fs.dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		names = append(names, e.Name())
	}
	sort.Strings(names)
	return names, nil
}

// Remove implements FS.
func (fs *DirFS) Remove(name string) error {
	err := os.Remove(fs.path(name))
	if err != nil && errors.Is(err, os.ErrNotExist) {
		return nil
	}
	return err
}

// Rename implements FS. After the rename the directory entry is synced
// best-effort so the new name survives a host crash.
func (fs *DirFS) Rename(oldname, newname string) error {
	if err := os.Rename(fs.path(oldname), fs.path(newname)); err != nil {
		return err
	}
	if d, err := os.Open(fs.dir); err == nil {
		//lint:ignore errdrop directory fsync is best-effort; rename already succeeded
		d.Sync()
		//lint:ignore errdrop read-only directory handle teardown
		d.Close()
	}
	return nil
}

// Truncate implements FS.
func (fs *DirFS) Truncate(name string, size int64) error {
	return os.Truncate(fs.path(name), size)
}

// Size implements FS.
func (fs *DirFS) Size(name string) (int64, error) {
	st, err := os.Stat(fs.path(name))
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

// memFile is one MemFS file: a byte buffer plus the high-water mark of bytes
// made durable by Sync. Crash rolls the buffer back to that mark — exactly
// what losing the page cache does to an un-fsynced file.
type memFile struct {
	buf    []byte
	synced int
}

// MemFS is the in-memory FS the crash-injection tests and the darnet-eval
// loss-bound measurement run against: deterministic, fast, and able to
// simulate the one thing a real filesystem cannot in-process — a crash that
// loses every byte written since the last fsync.
type MemFS struct {
	mu    sync.Mutex
	files map[string]*memFile
}

// NewMemFS returns an empty in-memory filesystem.
func NewMemFS() *MemFS {
	return &MemFS{files: make(map[string]*memFile)}
}

// memHandle is an open MemFS file for appending.
type memHandle struct {
	fs     *MemFS
	name   string
	closed bool
}

var errMemClosed = errors.New("durable: write to closed MemFS file")

// Write implements File. It runs on the WAL append hot path, so it only
// appends into the backing buffer (amortized growth is the one allocation the
// hot path allows).
func (h *memHandle) Write(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return 0, errMemClosed
	}
	f := h.fs.files[h.name]
	f.buf = append(f.buf, p...)
	return len(p), nil
}

// Sync implements File: everything written so far survives a Crash.
func (h *memHandle) Sync() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return errMemClosed
	}
	f := h.fs.files[h.name]
	f.synced = len(f.buf)
	return nil
}

// Close implements File. Closing syncs, like the OS eventually flushing a
// cleanly closed file; a crash loses only what Sync never covered.
func (h *memHandle) Close() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	h.closed = true
	return nil
}

// Create implements FS.
func (fs *MemFS) Create(name string) (File, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.files[name] = &memFile{}
	return &memHandle{fs: fs, name: name}, nil
}

// Open implements FS.
func (fs *MemFS) Open(name string) (io.ReadCloser, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.files[name]
	if !ok {
		return nil, &os.PathError{Op: "open", Path: name, Err: os.ErrNotExist}
	}
	cp := append([]byte(nil), f.buf...)
	return io.NopCloser(strings.NewReader(string(cp))), nil
}

// List implements FS.
func (fs *MemFS) List() ([]string, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	names := make([]string, 0, len(fs.files))
	for n := range fs.files {
		names = append(names, n)
	}
	sort.Strings(names)
	return names, nil
}

// Remove implements FS.
func (fs *MemFS) Remove(name string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	delete(fs.files, name)
	return nil
}

// Rename implements FS.
func (fs *MemFS) Rename(oldname, newname string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.files[oldname]
	if !ok {
		return &os.PathError{Op: "rename", Path: oldname, Err: os.ErrNotExist}
	}
	fs.files[newname] = f
	delete(fs.files, oldname)
	return nil
}

// Truncate implements FS.
func (fs *MemFS) Truncate(name string, size int64) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.files[name]
	if !ok {
		return &os.PathError{Op: "truncate", Path: name, Err: os.ErrNotExist}
	}
	if size < 0 || size > int64(len(f.buf)) {
		return fmt.Errorf("durable: truncate %s to %d outside [0, %d]", name, size, len(f.buf))
	}
	f.buf = f.buf[:size]
	if f.synced > int(size) {
		f.synced = int(size)
	}
	return nil
}

// Size implements FS.
func (fs *MemFS) Size(name string) (int64, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.files[name]
	if !ok {
		return 0, &os.PathError{Op: "size", Path: name, Err: os.ErrNotExist}
	}
	return int64(len(f.buf)), nil
}

// Crash simulates a hard process + host stop: every file rolls back to its
// last synced length. Open handles keep writing into the rolled-back buffers,
// so callers should abandon the old Manager and re-Open.
func (fs *MemFS) Crash() {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	for _, f := range fs.files {
		f.buf = f.buf[:f.synced]
	}
}

// Corrupt flips every bit of the byte at off in name — the bit-rot injection
// the recovery tests aim at checkpoint and WAL records.
func (fs *MemFS) Corrupt(name string, off int64) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.files[name]
	if !ok {
		return &os.PathError{Op: "corrupt", Path: name, Err: os.ErrNotExist}
	}
	if off < 0 || off >= int64(len(f.buf)) {
		return fmt.Errorf("durable: corrupt offset %d outside %s (%d bytes)", off, name, len(f.buf))
	}
	f.buf[off] ^= 0xFF
	if f.synced < len(f.buf) {
		f.synced = len(f.buf) // bit rot strikes durable bytes, not the cache
	}
	return nil
}

// UnsyncedBytes reports how many bytes of name a Crash would lose right now —
// the measured ingredient of the per-policy data-loss bound.
func (fs *MemFS) UnsyncedBytes(name string) int64 {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.files[name]
	if !ok {
		return 0
	}
	return int64(len(f.buf) - f.synced)
}

package durable

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"

	"darnet/internal/tsdb"
)

func openTest(t *testing.T, fs FS, db *tsdb.DB, policy Policy) (*Manager, *Recovery) {
	t.Helper()
	m, rec, err := Open(db, Options{FS: fs, Policy: policy, CheckpointEvery: -1, Logf: t.Logf})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return m, rec
}

// storeBatch plays one agent batch through the same sequence the controller
// uses: inserts under the (logged) store, the commit mark, then the pre-ack
// group commit.
func storeBatch(t *testing.T, db *tsdb.DB, m *Manager, agent string, seq uint64, ts int64, vals ...float64) error {
	t.Helper()
	for i, v := range vals {
		db.Insert(fmt.Sprintf("%s/acc[%d]", agent, i), tsdb.Point{TimestampMillis: ts, Value: v})
	}
	if err := m.AppendCommit(agent, seq); err != nil {
		return err
	}
	return m.SyncCommits()
}

func TestRecoveryRoundTrip(t *testing.T) {
	fs := NewMemFS()
	db := tsdb.New()
	m, rec := openTest(t, fs, db, PolicyAlways)
	if rec.ReplayedRecords != 0 || rec.Checkpoint != "" {
		t.Fatalf("fresh dir should recover nothing, got %+v", rec)
	}
	for seq := uint64(1); seq <= 5; seq++ {
		if err := storeBatch(t, db, m, "car-1", seq, int64(seq*100), float64(seq), -float64(seq)); err != nil {
			t.Fatalf("batch %d: %v", seq, err)
		}
	}
	if err := m.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	db2 := tsdb.New()
	_, rec2 := openTest(t, fs, db2, PolicyAlways)
	// Clean shutdown wrote a checkpoint: everything comes from it, nothing
	// needs replay.
	if rec2.Checkpoint == "" || rec2.ReplayedRecords != 0 {
		t.Fatalf("clean restart should load checkpoint only, got %+v", rec2)
	}
	if got := db2.Len("car-1/acc[0]"); got != 5 {
		t.Fatalf("acc[0] after restart: got %d points, want 5", got)
	}
	if len(rec2.Sessions) != 1 || rec2.Sessions[0].LastSeq != 5 {
		t.Fatalf("sessions after restart: %+v", rec2.Sessions)
	}
	pts := db2.Range("car-1/acc[1]", 0, 1<<60)
	for i, p := range pts {
		if p.Value != -float64(i+1) {
			t.Fatalf("acc[1][%d] = %v, want %v", i, p.Value, -float64(i+1))
		}
	}
}

func TestCrashReplaysWAL(t *testing.T) {
	fs := NewMemFS()
	db := tsdb.New()
	m, _ := openTest(t, fs, db, PolicyAlways)
	for seq := uint64(1); seq <= 3; seq++ {
		if err := storeBatch(t, db, m, "car-1", seq, int64(seq*100), float64(seq)); err != nil {
			t.Fatalf("batch %d: %v", seq, err)
		}
	}
	fs.Crash() // hard stop: no Close, no shutdown checkpoint

	db2 := tsdb.New()
	_, rec := openTest(t, fs, db2, PolicyAlways)
	if rec.ReplayedInserts != 3 {
		t.Fatalf("replayed %d inserts, want 3 (recovery: %+v)", rec.ReplayedInserts, rec)
	}
	if got := db2.Len("car-1/acc[0]"); got != 3 {
		t.Fatalf("after crash recovery: %d points, want 3", got)
	}
	if len(rec.Sessions) != 1 || rec.Sessions[0].LastSeq != 3 {
		t.Fatalf("dedupe high-water mark lost: %+v", rec.Sessions)
	}
}

func TestUncommittedInsertsDiscarded(t *testing.T) {
	fs := NewMemFS()
	db := tsdb.New()
	m, _ := openTest(t, fs, db, PolicyAlways)
	if err := storeBatch(t, db, m, "car-1", 1, 100, 1.0); err != nil {
		t.Fatal(err)
	}
	// Batch 2's inserts hit the log but the crash beats the commit mark.
	db.Insert("car-1/acc[0]", tsdb.Point{TimestampMillis: 200, Value: 2.0})
	if err := m.w.sync(); err != nil { // the inserts themselves are durable
		t.Fatal(err)
	}
	fs.Crash()

	db2 := tsdb.New()
	m2, rec := openTest(t, fs, db2, PolicyAlways)
	if rec.DiscardedInserts != 1 {
		t.Fatalf("discarded %d inserts, want 1", rec.DiscardedInserts)
	}
	if got := db2.Len("car-1/acc[0]"); got != 1 {
		t.Fatalf("uncommitted insert leaked into the store: %d points, want 1", got)
	}
	// The agent never saw an ack for batch 2, so it retransmits — and the
	// rows land exactly once.
	if err := storeBatch(t, db2, m2, "car-1", 2, 200, 2.0); err != nil {
		t.Fatal(err)
	}
	if got := db2.Len("car-1/acc[0]"); got != 2 {
		t.Fatalf("after retransmit: %d points, want 2", got)
	}
}

func TestTornTailTruncated(t *testing.T) {
	fs := NewMemFS()
	db := tsdb.New()
	m, _ := openTest(t, fs, db, PolicyAlways)
	for seq := uint64(1); seq <= 3; seq++ {
		if err := storeBatch(t, db, m, "car-1", seq, int64(seq*100), float64(seq)); err != nil {
			t.Fatal(err)
		}
	}
	// Tear the active generation mid-record: the crash interrupted an append.
	name := walName(m.w.gen)
	size, err := fs.Size(name)
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Truncate(name, size-5); err != nil {
		t.Fatal(err)
	}

	db2 := tsdb.New()
	_, rec := openTest(t, fs, db2, PolicyAlways)
	if rec.TornBytes == 0 {
		t.Fatalf("expected torn bytes, got %+v", rec)
	}
	// The torn record was batch 3's commit mark or part of its insert; the
	// first two batches survive intact and nothing duplicates.
	if got := db2.Len("car-1/acc[0]"); got != 2 {
		t.Fatalf("after torn-tail recovery: %d points, want 2", got)
	}
	if rec.Degraded {
		t.Fatalf("a clean torn tail is the normal crash artifact, not degradation: %+v", rec)
	}
}

func TestCorruptRecordStopsReplay(t *testing.T) {
	fs := NewMemFS()
	db := tsdb.New()
	m, _ := openTest(t, fs, db, PolicyAlways)
	for seq := uint64(1); seq <= 3; seq++ {
		if err := storeBatch(t, db, m, "car-1", seq, int64(seq*100), float64(seq)); err != nil {
			t.Fatal(err)
		}
	}
	// Flip a byte inside the FIRST batch's insert record (just past the file
	// header): everything after it is untrustworthy.
	if err := fs.Corrupt(walName(m.w.gen), walHeaderLen+recHeaderLen+4); err != nil {
		t.Fatal(err)
	}

	db2 := tsdb.New()
	_, rec := openTest(t, fs, db2, PolicyAlways)
	if !rec.Degraded || rec.LostBytes == 0 {
		t.Fatalf("corruption must degrade recovery and count lost bytes: %+v", rec)
	}
	if got := db2.Len("car-1/acc[0]"); got != 0 {
		t.Fatalf("replay past a corrupt record: %d points stored", got)
	}
}

func TestCheckpointFallback(t *testing.T) {
	fs := NewMemFS()
	db := tsdb.New()
	m, _ := openTest(t, fs, db, PolicyAlways)
	if err := storeBatch(t, db, m, "car-1", 1, 100, 1.0); err != nil {
		t.Fatal(err)
	}
	if err := m.Checkpoint(); err != nil { // second checkpoint (Open wrote the first)
		t.Fatal(err)
	}
	if err := storeBatch(t, db, m, "car-1", 2, 200, 2.0); err != nil {
		t.Fatal(err)
	}
	if err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	newest := ckptName(m.Stats().CheckpointGen)
	if err := fs.Corrupt(newest, 20); err != nil {
		t.Fatal(err)
	}
	fs.Crash()

	db2 := tsdb.New()
	_, rec := openTest(t, fs, db2, PolicyAlways)
	if !rec.UsedFallback {
		t.Fatalf("expected fallback to the previous checkpoint: %+v", rec)
	}
	// The fallback base predates batch 2, but batch 2's WAL generation was
	// kept by gc (everything >= the fallback checkpoint survives), so replay
	// restores it: falling back loses no data.
	if got := db2.Len("car-1/acc[0]"); got != 2 {
		t.Fatalf("after fallback recovery: %d points, want 2", got)
	}
	if len(rec.Sessions) != 1 || rec.Sessions[0].LastSeq != 2 {
		t.Fatalf("sessions after fallback: %+v", rec.Sessions)
	}
}

func TestAllCheckpointsCorruptStartsEmpty(t *testing.T) {
	fs := NewMemFS()
	db := tsdb.New()
	m, _ := openTest(t, fs, db, PolicyAlways)
	if err := storeBatch(t, db, m, "car-1", 1, 100, 1.0); err != nil {
		t.Fatal(err)
	}
	if err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	names, err := fs.List()
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range names {
		if strings.HasSuffix(n, ".ckpt") {
			if err := fs.Corrupt(n, 16); err != nil {
				t.Fatal(err)
			}
		}
	}
	fs.Crash()

	db2 := tsdb.New()
	_, rec := openTest(t, fs, db2, PolicyAlways)
	if !rec.StartedEmpty || !rec.Degraded {
		t.Fatalf("want degraded empty start, got %+v", rec)
	}
	if rec.LostBytes == 0 || !strings.Contains(rec.Note, "started empty") {
		t.Fatalf("empty start must report its loss bound: %+v", rec)
	}
	if got := len(db2.Series()); got != 0 {
		t.Fatalf("empty start stored %d series", got)
	}
}

func TestGCBoundsFiles(t *testing.T) {
	fs := NewMemFS()
	db := tsdb.New()
	m, _ := openTest(t, fs, db, PolicyAlways)
	for i := 0; i < 6; i++ {
		if err := storeBatch(t, db, m, "car-1", uint64(i+1), int64(i*100), 1.0); err != nil {
			t.Fatal(err)
		}
		if err := m.Checkpoint(); err != nil {
			t.Fatal(err)
		}
	}
	names, err := fs.List()
	if err != nil {
		t.Fatal(err)
	}
	ckpts, wals := 0, 0
	for _, n := range names {
		if strings.HasSuffix(n, ".ckpt") {
			ckpts++
		}
		if strings.HasSuffix(n, ".wal") {
			wals++
		}
	}
	if ckpts != 2 {
		t.Fatalf("gc kept %d checkpoints, want 2 (%v)", ckpts, names)
	}
	if wals > 3 {
		t.Fatalf("gc kept %d WAL generations, want <= 3 (%v)", wals, names)
	}
}

func TestGroupCommitCoalesces(t *testing.T) {
	fs := NewMemFS()
	db := tsdb.New()
	m, _ := openTest(t, fs, db, PolicyAlways)
	before := mWALSyncs.Value()
	const n = 64
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(seq uint64) {
			defer wg.Done()
			if err := m.AppendCommit("car-1", seq); err != nil {
				t.Errorf("commit %d: %v", seq, err)
				return
			}
			if err := m.SyncCommits(); err != nil {
				t.Errorf("sync %d: %v", seq, err)
			}
		}(uint64(i + 1))
	}
	wg.Wait()
	syncs := mWALSyncs.Value() - before
	if syncs > n {
		t.Fatalf("group commit issued %d fsyncs for %d commits", syncs, n)
	}
	t.Logf("group commit: %d commits -> %d fsyncs", n, syncs)
}

// TestCrashMatrix is the seeded crash-injection matrix of the acceptance
// criteria: for every fsync policy, crash after every prefix of a batch
// stream, recover, let the "agent" retransmit everything it never saw acked
// durable, and assert (a) zero duplicate rows, (b) replay idempotence against
// the restored dedupe marks, and (c) measured loss within the policy's bound.
func TestCrashMatrix(t *testing.T) {
	const batches = 12
	policies := []Policy{PolicyAlways, PolicyInterval, PolicyNever}
	for _, pol := range policies {
		for crashAfter := 0; crashAfter <= batches; crashAfter++ {
			t.Run(fmt.Sprintf("%s/crash_after_%d", pol, crashAfter), func(t *testing.T) {
				fs := NewMemFS()
				db := tsdb.New()
				m, _ := openTest(t, fs, db, pol)
				// Under the interval policy the loop is driven manually so the
				// last-synced point is exact: a sync after every 4th batch.
				synced := 0
				for seq := 1; seq <= crashAfter; seq++ {
					if err := storeBatch(t, db, m, "car-1", uint64(seq), int64(seq*10), float64(seq)); err != nil {
						t.Fatalf("batch %d: %v", seq, err)
					}
					if pol == PolicyInterval && seq%4 == 0 {
						if err := m.w.sync(); err != nil {
							t.Fatal(err)
						}
						synced = seq
					}
				}
				fs.Crash()

				db2 := tsdb.New()
				m2, rec := openTest(t, fs, db2, pol)
				restored := uint64(0)
				if len(rec.Sessions) == 1 {
					restored = rec.Sessions[0].LastSeq
				}
				// Loss bound per policy. always: every committed batch is
				// durable. interval: at most the batches since the last sync.
				// never: anything might be gone, but recovery must still be
				// self-consistent.
				switch pol {
				case PolicyAlways:
					if restored != uint64(crashAfter) {
						t.Fatalf("always-policy lost committed batches: restored seq %d, want %d", restored, crashAfter)
					}
				case PolicyInterval:
					if restored < uint64(synced) {
						t.Fatalf("interval policy lost synced batches: restored seq %d, last sync at %d", restored, synced)
					}
				}
				// The agent retransmits every batch above the restored mark —
				// exactly its at-least-once behaviour, since acks at or below
				// the mark were durable. Batches at or below it would be
				// deduped by the controller, so storing only the tail models
				// the full protocol.
				for seq := int(restored) + 1; seq <= batches; seq++ {
					if err := storeBatch(t, db2, m2, "car-1", uint64(seq), int64(seq*10), float64(seq)); err != nil {
						t.Fatalf("retransmit %d: %v", seq, err)
					}
				}
				pts := db2.Range("car-1/acc[0]", 0, 1<<60)
				if len(pts) != batches {
					t.Fatalf("store holds %d rows, want %d (duplicates or loss)", len(pts), batches)
				}
				seen := make(map[int64]bool)
				for _, p := range pts {
					if seen[p.TimestampMillis] {
						t.Fatalf("duplicate row at ts %d", p.TimestampMillis)
					}
					seen[p.TimestampMillis] = true
					if p.Value != float64(p.TimestampMillis)/10 {
						t.Fatalf("row ts=%d has value %v, want %v", p.TimestampMillis, p.Value, float64(p.TimestampMillis)/10)
					}
				}
			})
		}
	}
}

// TestCrashDuringCheckpoint crashes between the WAL rotation and the
// checkpoint publish: the previous checkpoint plus the kept generations must
// reconstruct everything.
func TestCrashDuringCheckpoint(t *testing.T) {
	fs := NewMemFS()
	db := tsdb.New()
	m, _ := openTest(t, fs, db, PolicyAlways)
	for seq := uint64(1); seq <= 4; seq++ {
		if err := storeBatch(t, db, m, "car-1", seq, int64(seq*100), float64(seq)); err != nil {
			t.Fatal(err)
		}
	}
	// Rotate as Checkpoint would, then "crash" before writeCheckpoint runs:
	// the tmp+rename door means no half-written checkpoint is visible.
	if _, _, err := m.w.rotate(fs); err != nil {
		t.Fatal(err)
	}
	fs.Crash()

	db2 := tsdb.New()
	_, rec := openTest(t, fs, db2, PolicyAlways)
	if got := db2.Len("car-1/acc[0]"); got != 4 {
		t.Fatalf("after mid-checkpoint crash: %d points, want 4 (recovery %+v)", got, rec)
	}
	if len(rec.Sessions) != 1 || rec.Sessions[0].LastSeq != 4 {
		t.Fatalf("sessions after mid-checkpoint crash: %+v", rec.Sessions)
	}
}

func TestDegradedAfterSyncError(t *testing.T) {
	fs := NewMemFS()
	db := tsdb.New()
	m, _ := openTest(t, fs, db, PolicyAlways)
	// Sever the log out from under the manager: every sync now fails.
	if err := m.w.close(); err != nil {
		t.Fatal(err)
	}
	if err := m.AppendCommit("car-1", 1); err == nil {
		t.Fatal("commit against a dead log should error")
	}
	if !m.degraded.Load() {
		t.Fatal("first failure must latch degradation")
	}
	h := m.Health()
	if !strings.Contains(h.Status, "degraded: durability") || !h.OK {
		t.Fatalf("degraded health = %+v, want degraded-but-serving", h)
	}
	// The store stays available: inserts keep working, appends are skipped.
	db.Insert("car-1/acc[0]", tsdb.Point{TimestampMillis: 1, Value: 1})
	if got := db.Len("car-1/acc[0]"); got != 1 {
		t.Fatalf("degraded store dropped an insert: %d", got)
	}
	if err := m.AppendCommit("car-1", 2); err != ErrDegraded {
		t.Fatalf("commit while degraded = %v, want ErrDegraded", err)
	}
}

func TestPolicyParse(t *testing.T) {
	for _, s := range []string{"always", "interval", "never"} {
		p, err := ParsePolicy(s)
		if err != nil || p.String() != s {
			t.Fatalf("ParsePolicy(%q) = %v, %v", s, p, err)
		}
	}
	if _, err := ParsePolicy("sometimes"); err == nil {
		t.Fatal("ParsePolicy should reject unknown spellings")
	}
}

func TestMemFSCrashSemantics(t *testing.T) {
	fs := NewMemFS()
	f, err := fs.Create("x")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("durable")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("-volatile")); err != nil {
		t.Fatal(err)
	}
	if got := fs.UnsyncedBytes("x"); got != 9 {
		t.Fatalf("UnsyncedBytes = %d, want 9", got)
	}
	fs.Crash()
	sz, err := fs.Size("x")
	if err != nil || sz != 7 {
		t.Fatalf("after crash size = %d, %v; want 7", sz, err)
	}
}

// discardFS backs the allocation test: Write accepts everything and goes
// nowhere, so the measurement sees only the encoder's own behaviour.
type discardFS struct{ MemFS }

type discardFile struct{}

func (discardFile) Write(p []byte) (int, error) { return len(p), nil }
func (discardFile) Sync() error                 { return nil }
func (discardFile) Close() error                { return nil }

func (d *discardFS) Create(name string) (File, error) { return discardFile{}, nil }

// TestAppendAllocFree proves the satellite claim: once the scratch buffer is
// warm, logging an insert from the tsdb hot path allocates nothing.
func TestAppendAllocFree(t *testing.T) {
	w, err := newWAL(&discardFS{}, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	m := &Manager{w: w, policy: PolicyNever, logf: func(string, ...any) {}}
	series := "car-1/acc[0]"
	p := tsdb.Point{TimestampMillis: 12345, Value: math.Pi}
	m.LogInsert(series, p) // warm the scratch buffer
	avg := testing.AllocsPerRun(1000, func() {
		p.TimestampMillis++
		m.LogInsert(series, p)
	})
	if avg != 0 {
		t.Fatalf("steady-state WAL append allocates %.2f times per insert, want 0", avg)
	}
}

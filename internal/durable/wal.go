package durable

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"strconv"
	"strings"
	"sync"
)

// WAL file layout. Every generation starts with a 16-byte header (magic +
// big-endian generation number) followed by length-prefixed records:
//
//	[u32 payload len][u32 crc32c(payload)][payload]
//
// payloads:
//
//	insert: 0x01 [u16 series len][series][i64 unix-millis][u64 float64 bits]
//	commit: 0x02 [u16 agent len][agent][u64 batch seq]
//	frame:  0x03 [u16 agent len][agent][i64 unix-millis][u32 npix][npix x u64 float64 bits]
//
// The length prefix bounds framing, the checksum catches bit rot, and the
// record kinds carry exactly the events recovery needs: a point entering the
// store, a camera frame entering the frame store, and a batch becoming
// eligible for dedupe. Frames must be logged like scalars because the commit
// mark dedupes the whole batch: if an acked batch's frames were not
// replayable, the retransmission suppression would turn a crash into silent
// frame loss.
const (
	walMagic     = "DARWAL01"
	walHeaderLen = 16
	recHeaderLen = 8

	recInsert = 0x01
	recCommit = 0x02
	recFrame  = 0x03

	// maxRecord bounds a single payload; anything larger in a length prefix
	// is framing corruption, not a real record (series names are short, the
	// scalar payload kinds are fixed-size past the name, and frames are
	// capped well below this by the protocol's pixel budget).
	maxRecord = 1 << 20
)

// walName returns the file name of one WAL generation; zero-padded hex keeps
// lexical order equal to numeric order for FS.List.
func walName(gen uint64) string {
	return fmt.Sprintf("wal-%016x.wal", gen)
}

// ckptName returns the file name of one checkpoint generation.
func ckptName(gen uint64) string {
	return fmt.Sprintf("checkpoint-%016x.ckpt", gen)
}

// parseGen extracts the generation from a wal-/checkpoint- file name,
// reporting ok=false for foreign files (temp files, strays).
func parseGen(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	hexa := name[len(prefix) : len(name)-len(suffix)]
	if len(hexa) != 16 {
		return 0, false
	}
	gen, err := strconv.ParseUint(hexa, 16, 64)
	if err != nil {
		return 0, false
	}
	return gen, true
}

// wal is the append side of the log. Lock order across the package is
// db.mu < w.syncMu < w.mu: appends (called under db.mu) take only w.mu;
// group commit takes syncMu then briefly w.mu; rotation (called under db.mu
// from the checkpoint path) takes syncMu then w.mu for the whole swap so no
// record can land in the outgoing generation after its final fsync.
type wal struct {
	// syncMu serializes fsyncs and guards synced. It is held across f.Sync
	// so concurrent committers coalesce onto one fsync (group commit).
	syncMu sync.Mutex
	synced uint64 // monotone bytes known durable, across generations

	mu      sync.Mutex
	f       File
	gen     uint64
	total   uint64 // monotone bytes appended, across generations
	scratch []byte // per-wal encode buffer; appends stay alloc-free after warm-up
}

// newWAL opens a fresh generation and writes its header. startTotal seeds the
// monotone byte counter (recovery passes the bytes already consumed by prior
// generations so LSNs never move backwards).
func newWAL(fs FS, gen, startTotal uint64) (*wal, error) {
	w := &wal{gen: gen, total: startTotal, synced: startTotal}
	if err := w.openGen(fs, gen); err != nil {
		return nil, err
	}
	return w, nil
}

// openGen creates the file for gen and writes its header. Callers hold every
// lock they need (or own w exclusively, as newWAL does).
func (w *wal) openGen(fs FS, gen uint64) error {
	f, err := fs.Create(walName(gen))
	if err != nil {
		return fmt.Errorf("durable: create WAL generation %d: %w", gen, err)
	}
	var hdr [walHeaderLen]byte
	copy(hdr[:8], walMagic)
	binary.BigEndian.PutUint64(hdr[8:], gen)
	if _, err := f.Write(hdr[:]); err != nil {
		//lint:ignore errdrop the write error is authoritative; the close is cleanup on a dead handle
		f.Close()
		return fmt.Errorf("durable: write WAL header %d: %w", gen, err)
	}
	w.f = f
	w.gen = gen
	w.total += walHeaderLen
	return nil
}

// appendInsert logs one point ahead of the in-memory mutation. It is reached
// from the tsdb.DB.Insert hot path (//lint:hotpath), so the encoding reuses
// the wal's scratch buffer and the errors are package vars — no allocation
// in steady state.
func (w *wal) appendInsert(series string, tsMillis int64, valueBits uint64) (uint64, error) {
	if len(series) > 0xFFFF {
		return 0, errSeriesName
	}
	w.mu.Lock()
	b := w.scratch[:0]
	b = append(b, 0, 0, 0, 0, 0, 0, 0, 0) // length + crc, patched below
	b = append(b, recInsert, byte(len(series)>>8), byte(len(series)))
	b = append(b, series...)
	b = binary.BigEndian.AppendUint64(b, uint64(tsMillis))
	b = binary.BigEndian.AppendUint64(b, valueBits)
	lsn, err := w.appendLocked(b)
	w.mu.Unlock()
	return lsn, err
}

// appendCommit logs a batch commit mark: agent's batch seq is stored and may
// now dedupe retransmits. The returned LSN is the target a group commit under
// PolicyAlways syncs to before the batch is acked.
func (w *wal) appendCommit(agentID string, seq uint64) (uint64, error) {
	if len(agentID) > 0xFFFF {
		return 0, errSeriesName
	}
	w.mu.Lock()
	b := w.scratch[:0]
	b = append(b, 0, 0, 0, 0, 0, 0, 0, 0)
	b = append(b, recCommit, byte(len(agentID)>>8), byte(len(agentID)))
	b = append(b, agentID...)
	b = binary.BigEndian.AppendUint64(b, seq)
	lsn, err := w.appendLocked(b)
	w.mu.Unlock()
	return lsn, err
}

// appendFrame logs one camera frame ahead of the frame-store insert. Frames
// arrive at camera rate (tens of Hz), not scalar rate, so this path may
// allocate; it still reuses scratch for the common small-frame case. A frame
// whose encoding would exceed maxRecord is rejected up front — appending it
// would make the file unreadable to replay, which classifies oversized
// length prefixes as corruption.
func (w *wal) appendFrame(agentID string, tsMillis int64, pix []float64) (uint64, error) {
	if len(agentID) > 0xFFFF {
		return 0, errSeriesName
	}
	if recHeaderLen+3+len(agentID)+12+8*len(pix) > maxRecord {
		return 0, errFrameSize
	}
	w.mu.Lock()
	b := w.scratch[:0]
	b = append(b, 0, 0, 0, 0, 0, 0, 0, 0)
	b = append(b, recFrame, byte(len(agentID)>>8), byte(len(agentID)))
	b = append(b, agentID...)
	b = binary.BigEndian.AppendUint64(b, uint64(tsMillis))
	b = binary.BigEndian.AppendUint32(b, uint32(len(pix)))
	for _, v := range pix {
		b = binary.BigEndian.AppendUint64(b, math.Float64bits(v))
	}
	lsn, err := w.appendLocked(b)
	w.mu.Unlock()
	return lsn, err
}

// appendLocked patches the record header into b (whose first recHeaderLen
// bytes are reserved), writes it, and advances the LSN. Callers hold w.mu.
func (w *wal) appendLocked(b []byte) (uint64, error) {
	w.scratch = b // keep the grown buffer
	if w.f == nil {
		return 0, ErrClosed
	}
	payload := b[recHeaderLen:]
	binary.BigEndian.PutUint32(b[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(b[4:8], crc32.Checksum(payload, castagnoli))
	n, err := w.f.Write(b)
	w.total += uint64(n)
	if err == nil && n < len(b) {
		err = errShortWrite
	}
	if err != nil {
		return w.total, err
	}
	mWALRecords.Inc()
	mWALBytes.Add(int64(len(b)))
	return w.total, nil
}

// lsn returns the current monotone append position.
func (w *wal) lsn() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.total
}

// syncTo group-commits: it returns once every byte up to target is durable.
// Concurrent callers coalesce — whoever wins syncMu syncs to the log's
// current end, and the losers find their target already covered.
func (w *wal) syncTo(target uint64) error {
	w.syncMu.Lock()
	defer w.syncMu.Unlock()
	if w.synced >= target {
		return nil
	}
	w.mu.Lock()
	goal := w.total
	f := w.f
	w.mu.Unlock()
	if f == nil {
		return ErrClosed
	}
	if err := f.Sync(); err != nil {
		return err
	}
	mWALSyncs.Inc()
	if goal > w.synced {
		w.synced = goal
	}
	return nil
}

// sync flushes everything appended so far (the interval loop and shutdown).
func (w *wal) sync() error {
	return w.syncTo(w.lsn())
}

// rotate fsyncs and retires the current generation and opens gen+1. It is
// called with the store's db.mu held (inside DB.Snapshot) so no insert can
// straddle the boundary; holding w.mu across the sync+swap closes the same
// window for commit marks — nothing lands in the old generation after its
// final fsync. Returns the new generation and the LSN at the boundary.
func (w *wal) rotate(fs FS) (gen, lsn uint64, err error) {
	w.syncMu.Lock()
	defer w.syncMu.Unlock()
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return 0, 0, ErrClosed
	}
	if err := w.f.Sync(); err != nil {
		return 0, 0, fmt.Errorf("durable: sync retiring WAL generation %d: %w", w.gen, err)
	}
	mWALSyncs.Inc()
	boundary := w.total
	old := w.f
	w.f = nil
	if err := w.openGen(fs, w.gen+1); err != nil {
		// The old generation stays the active one; the checkpoint aborts.
		w.f = old
		return 0, 0, err
	}
	//lint:ignore errdrop the retiring generation was just fsynced; close is release-only
	old.Close()
	w.synced = boundary // the new header is the only unsynced byte range
	return w.gen, boundary, nil
}

// close fsyncs and closes the active generation.
func (w *wal) close() error {
	w.syncMu.Lock()
	defer w.syncMu.Unlock()
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	syncErr := w.f.Sync()
	closeErr := w.f.Close()
	w.f = nil
	if syncErr != nil {
		return syncErr
	}
	return closeErr
}

// walRecord is one decoded record during replay.
type walRecord struct {
	kind byte
	// insert fields
	series    string
	tsMillis  int64
	valueBits uint64
	// commit fields
	agentID string
	seq     uint64
	// frame fields (agentID and tsMillis shared with the above)
	pix []float64
}

// Tail classification for one replayed WAL file. The decision table:
// a record cut off by end-of-file is a torn write (the crash interrupted
// an append) — truncate it away and continue with a clean log; a complete
// record whose checksum fails, or an insane length prefix, is corruption —
// framing downstream cannot be trusted, so replay stops at the last good
// record and everything after counts as lost.
const (
	tailClean = iota
	tailTorn
	tailCorrupt
)

// readWALFile streams the records of one generation into fn, returning the
// generation from the header, the offset just past the last good record,
// the file's total size, and the tail classification. fn errors abort the
// scan (and surface as err). wantGen is the generation the file NAME claims:
// a header that disagrees means the file's content belongs to some other
// log, and the whole file is classified corrupt before fn sees a single
// record — applying data and then deciding the file was untrustworthy would
// poison the store. Pass wantGen 0 to skip the check (no generation is 0).
func readWALFile(fs FS, name string, wantGen uint64, fn func(walRecord) error) (gen uint64, goodEnd, size int64, tail int, err error) {
	size, err = fs.Size(name)
	if err != nil {
		return 0, 0, 0, tailCorrupt, err
	}
	rc, err := fs.Open(name)
	if err != nil {
		return 0, 0, size, tailCorrupt, err
	}
	defer rc.Close()
	r := bufio.NewReaderSize(rc, 1<<16)

	var hdr [walHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		// A header cut short is a torn first write: the generation holds no
		// records at all.
		return 0, 0, size, tailTorn, nil
	}
	if string(hdr[:8]) != walMagic {
		return 0, 0, size, tailCorrupt, nil
	}
	gen = binary.BigEndian.Uint64(hdr[8:])
	if wantGen != 0 && gen != wantGen {
		return gen, walHeaderLen, size, tailCorrupt, nil
	}
	goodEnd = walHeaderLen

	var rec [recHeaderLen]byte
	payload := make([]byte, 0, 256)
	for {
		if _, err := io.ReadFull(r, rec[:]); err != nil {
			if err == io.EOF {
				return gen, goodEnd, size, tailClean, nil
			}
			return gen, goodEnd, size, tailTorn, nil
		}
		plen := binary.BigEndian.Uint32(rec[0:4])
		want := binary.BigEndian.Uint32(rec[4:8])
		if plen == 0 || plen > maxRecord {
			return gen, goodEnd, size, tailCorrupt, nil
		}
		if cap(payload) < int(plen) {
			payload = make([]byte, plen)
		}
		payload = payload[:plen]
		if _, err := io.ReadFull(r, payload); err != nil {
			return gen, goodEnd, size, tailTorn, nil
		}
		if crc32.Checksum(payload, castagnoli) != want {
			// A bad checksum on the final record is indistinguishable from a
			// write torn mid-payload; give it the benign reading. Mid-file it
			// is bit rot.
			if _, err := r.Peek(1); err == io.EOF {
				return gen, goodEnd, size, tailTorn, nil
			}
			return gen, goodEnd, size, tailCorrupt, nil
		}
		wr, ok := decodeRecord(payload)
		if !ok {
			return gen, goodEnd, size, tailCorrupt, nil
		}
		if err := fn(wr); err != nil {
			return gen, goodEnd, size, tailClean, err
		}
		goodEnd += int64(recHeaderLen) + int64(plen)
	}
}

// decodeRecord parses one checksum-verified payload.
func decodeRecord(p []byte) (walRecord, bool) {
	if len(p) < 3 {
		return walRecord{}, false
	}
	kind := p[0]
	nameLen := int(p[1])<<8 | int(p[2])
	rest := p[3:]
	if len(rest) < nameLen {
		return walRecord{}, false
	}
	name := string(rest[:nameLen])
	rest = rest[nameLen:]
	switch kind {
	case recInsert:
		if len(rest) != 16 {
			return walRecord{}, false
		}
		return walRecord{
			kind:      recInsert,
			series:    name,
			tsMillis:  int64(binary.BigEndian.Uint64(rest[:8])),
			valueBits: binary.BigEndian.Uint64(rest[8:]),
		}, true
	case recCommit:
		if len(rest) != 8 {
			return walRecord{}, false
		}
		return walRecord{
			kind:    recCommit,
			agentID: name,
			seq:     binary.BigEndian.Uint64(rest),
		}, true
	case recFrame:
		if len(rest) < 12 {
			return walRecord{}, false
		}
		ts := int64(binary.BigEndian.Uint64(rest[:8]))
		npix := binary.BigEndian.Uint32(rest[8:12])
		rest = rest[12:]
		if uint64(len(rest)) != 8*uint64(npix) {
			return walRecord{}, false
		}
		pix := make([]float64, npix)
		for i := range pix {
			pix[i] = math.Float64frombits(binary.BigEndian.Uint64(rest[8*i:]))
		}
		return walRecord{
			kind:     recFrame,
			agentID:  name,
			tsMillis: ts,
			pix:      pix,
		}, true
	default:
		return walRecord{}, false
	}
}

package svm

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"darnet/internal/tensor"
)

func blobs(rng *rand.Rand, perClass int, centers [][2]float64, spread float64) (*tensor.Tensor, []int) {
	n := perClass * len(centers)
	x := tensor.New(n, 2)
	labels := make([]int, n)
	for c, ctr := range centers {
		for i := 0; i < perClass; i++ {
			idx := c*perClass + i
			x.Set(ctr[0]+rng.NormFloat64()*spread, idx, 0)
			x.Set(ctr[1]+rng.NormFloat64()*spread, idx, 1)
			labels[idx] = c
		}
	}
	return x, labels
}

func TestScalerStandardizes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := tensor.Randn(rng, 3, 200, 4).Apply(func(v float64) float64 { return v + 7 })
	s, err := FitScaler(x)
	if err != nil {
		t.Fatal(err)
	}
	xs, err := s.Transform(x)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 4; j++ {
		mean, variance := 0.0, 0.0
		for i := 0; i < 200; i++ {
			mean += xs.At(i, j)
		}
		mean /= 200
		for i := 0; i < 200; i++ {
			d := xs.At(i, j) - mean
			variance += d * d
		}
		variance /= 200
		if math.Abs(mean) > 1e-9 || math.Abs(variance-1) > 1e-9 {
			t.Fatalf("feature %d: mean %g var %g after scaling", j, mean, variance)
		}
	}
}

func TestScalerZeroVarianceFeature(t *testing.T) {
	x := tensor.MustFromSlice([]float64{5, 1, 5, 2, 5, 3}, 3, 2)
	s, err := FitScaler(x)
	if err != nil {
		t.Fatal(err)
	}
	xs, err := s.Transform(x)
	if err != nil {
		t.Fatal(err)
	}
	// Constant feature must map to zero, not NaN/Inf.
	for i := 0; i < 3; i++ {
		if v := xs.At(i, 0); v != 0 || math.IsNaN(v) {
			t.Fatalf("constant feature scaled to %g", v)
		}
	}
}

func TestScalerValidation(t *testing.T) {
	if _, err := FitScaler(tensor.New(3)); err == nil {
		t.Fatal("expected 2-D requirement error")
	}
	if _, err := FitScaler(tensor.New(0, 3)); err == nil {
		t.Fatal("expected empty matrix error")
	}
	s, err := FitScaler(tensor.New(2, 3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Transform(tensor.New(2, 4)); err == nil {
		t.Fatal("expected width mismatch error")
	}
}

func TestSVMLearnsSeparableBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x, labels := blobs(rng, 80, [][2]float64{{0, 0}, {6, 0}, {3, 6}}, 0.6)
	c, err := Train(rng, x, labels, 3, TrainConfig{Epochs: 30, LR: 0.05, Lambda: 1e-4})
	if err != nil {
		t.Fatal(err)
	}
	acc, err := c.Evaluate(x, labels)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.97 {
		t.Fatalf("separable blob accuracy = %g, want >= 0.97", acc)
	}
}

func TestSVMBinary(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x, labels := blobs(rng, 60, [][2]float64{{-3, 0}, {3, 0}}, 0.5)
	c, err := Train(rng, x, labels, 2, TrainConfig{Epochs: 20, LR: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	acc, err := c.Evaluate(x, labels)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.99 {
		t.Fatalf("binary accuracy = %g", acc)
	}
}

func TestSVMProbsAreDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x, labels := blobs(rng, 40, [][2]float64{{0, 0}, {5, 5}, {-5, 5}}, 0.7)
	c, err := Train(rng, x, labels, 3, TrainConfig{Epochs: 10, LR: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	f := func(a, b float64) bool {
		probs, err := c.PredictProbs([]float64{a, b})
		if err != nil {
			return false
		}
		sum := 0.0
		for _, p := range probs {
			if p < 0 || p > 1 || math.IsNaN(p) {
				return false
			}
			sum += p
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSVMValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x := tensor.New(4, 2)
	if _, err := Train(rng, x, []int{0, 1}, 2, TrainConfig{}); err == nil {
		t.Fatal("expected label-count error")
	}
	if _, err := Train(rng, x, []int{0, 1, 0, 1}, 1, TrainConfig{}); err == nil {
		t.Fatal("expected class-count error")
	}
	if _, err := Train(rng, x, []int{0, 1, 0, 5}, 2, TrainConfig{}); err == nil {
		t.Fatal("expected label-range error")
	}
	if _, err := Train(rng, x, []int{0, 1, 0, 1}, 2, TrainConfig{Lambda: -1}); err == nil {
		t.Fatal("expected negative-lambda error")
	}
	c, err := Train(rng, x, []int{0, 1, 0, 1}, 2, TrainConfig{Epochs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Predict([]float64{1}); err == nil {
		t.Fatal("expected feature-width error")
	}
	if _, err := c.Evaluate(x, []int{0}); err == nil {
		t.Fatal("expected evaluate-count error")
	}
}

func TestSVMDeterministicGivenSeed(t *testing.T) {
	x, labels := blobs(rand.New(rand.NewSource(6)), 30, [][2]float64{{0, 0}, {4, 4}}, 0.5)
	a, err := Train(rand.New(rand.NewSource(7)), x, labels, 2, TrainConfig{Epochs: 5, LR: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Train(rand.New(rand.NewSource(7)), x, labels, 2, TrainConfig{Epochs: 5, LR: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.w.Data() {
		if a.w.Data()[i] != b.w.Data()[i] {
			t.Fatal("training is not deterministic for a fixed seed")
		}
	}
}

// Package svm implements the paper's baseline IMU-sequence classifier: a
// multiclass linear support vector machine trained with stochastic
// sub-gradient descent on the one-vs-rest hinge loss with L2 regularization,
// operating on flattened, standardized feature vectors.
package svm

import (
	"fmt"
	"math"
	"math/rand"

	"darnet/internal/tensor"
)

// Scaler standardizes features to zero mean and unit variance, fit on
// training data and applied to both splits.
type Scaler struct {
	mean []float64
	std  []float64
}

// FitScaler computes per-feature mean and standard deviation over the rows
// of x. Features with zero variance get a standard deviation of 1 so they
// pass through unchanged.
func FitScaler(x *tensor.Tensor) (*Scaler, error) {
	if x.Dims() != 2 {
		return nil, fmt.Errorf("svm: scaler requires a 2-D design matrix, got %d-D", x.Dims())
	}
	n, d := x.Dim(0), x.Dim(1)
	if n == 0 {
		return nil, fmt.Errorf("svm: cannot fit scaler on empty matrix")
	}
	s := &Scaler{mean: make([]float64, d), std: make([]float64, d)}
	for i := 0; i < n; i++ {
		for j, v := range x.Row(i) {
			s.mean[j] += v
		}
	}
	for j := range s.mean {
		s.mean[j] /= float64(n)
	}
	for i := 0; i < n; i++ {
		for j, v := range x.Row(i) {
			dlt := v - s.mean[j]
			s.std[j] += dlt * dlt
		}
	}
	for j := range s.std {
		s.std[j] = math.Sqrt(s.std[j] / float64(n))
		if s.std[j] < 1e-12 {
			s.std[j] = 1
		}
	}
	return s, nil
}

// Transform returns a standardized copy of x.
func (s *Scaler) Transform(x *tensor.Tensor) (*tensor.Tensor, error) {
	if x.Dims() != 2 || x.Dim(1) != len(s.mean) {
		return nil, fmt.Errorf("svm: transform width %d does not match scaler width %d", x.Dim(x.Dims()-1), len(s.mean))
	}
	out := x.Clone()
	n := out.Dim(0)
	for i := 0; i < n; i++ {
		row := out.Row(i)
		for j := range row {
			row[j] = (row[j] - s.mean[j]) / s.std[j]
		}
	}
	return out, nil
}

// Classifier is a one-vs-rest multiclass linear SVM: per-class weight vectors
// w_c and biases b_c, predicting argmax_c (w_c·x + b_c).
type Classifier struct {
	classes int
	dim     int
	w       *tensor.Tensor // (classes, dim)
	b       []float64
	scaler  *Scaler
}

// TrainConfig controls SVM training.
type TrainConfig struct {
	Epochs int
	LR     float64 // initial learning rate (decayed 1/(1+epoch))
	Lambda float64 // L2 regularization strength
}

// Train fits a one-vs-rest linear SVM on (x, labels) with classes classes.
// Features are standardized internally; the fitted scaler is stored in the
// classifier and applied automatically at prediction time.
func Train(rng *rand.Rand, x *tensor.Tensor, labels []int, classes int, cfg TrainConfig) (*Classifier, error) {
	if x.Dims() != 2 {
		return nil, fmt.Errorf("svm: train requires 2-D design matrix, got %d-D", x.Dims())
	}
	n, d := x.Dim(0), x.Dim(1)
	if len(labels) != n {
		return nil, fmt.Errorf("svm: %d labels for %d samples", len(labels), n)
	}
	if classes < 2 {
		return nil, fmt.Errorf("svm: need at least 2 classes, got %d", classes)
	}
	for i, y := range labels {
		if y < 0 || y >= classes {
			return nil, fmt.Errorf("svm: label %d of sample %d out of range [0,%d)", y, i, classes)
		}
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 20
	}
	if cfg.LR <= 0 {
		cfg.LR = 0.01
	}
	if cfg.Lambda < 0 {
		return nil, fmt.Errorf("svm: negative regularization %g", cfg.Lambda)
	}

	scaler, err := FitScaler(x)
	if err != nil {
		return nil, err
	}
	xs, err := scaler.Transform(x)
	if err != nil {
		return nil, err
	}

	c := &Classifier{
		classes: classes,
		dim:     d,
		w:       tensor.New(classes, d),
		b:       make([]float64, classes),
		scaler:  scaler,
	}

	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		lr := cfg.LR / (1 + 0.1*float64(epoch))
		rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
		for _, idx := range order {
			row := xs.Row(idx)
			y := labels[idx]
			for cl := 0; cl < classes; cl++ {
				wrow := c.w.Row(cl)
				score := c.b[cl]
				for j, v := range row {
					score += wrow[j] * v
				}
				t := -1.0
				if cl == y {
					t = 1.0
				}
				// Hinge sub-gradient with L2 shrinkage.
				if t*score < 1 {
					for j, v := range row {
						wrow[j] += lr * (t*v - cfg.Lambda*wrow[j])
					}
					c.b[cl] += lr * t
				} else if cfg.Lambda > 0 {
					for j := range wrow {
						wrow[j] -= lr * cfg.Lambda * wrow[j]
					}
				}
			}
		}
	}
	return c, nil
}

// Classes returns the number of classes.
func (c *Classifier) Classes() int { return c.classes }

// Scores returns the raw per-class decision values for one feature vector.
func (c *Classifier) Scores(x []float64) ([]float64, error) {
	if len(x) != c.dim {
		return nil, fmt.Errorf("svm: feature width %d does not match model width %d", len(x), c.dim)
	}
	scaled := make([]float64, c.dim)
	for j, v := range x {
		scaled[j] = (v - c.scaler.mean[j]) / c.scaler.std[j]
	}
	scores := make([]float64, c.classes)
	for cl := 0; cl < c.classes; cl++ {
		wrow := c.w.Row(cl)
		s := c.b[cl]
		for j, v := range scaled {
			s += wrow[j] * v
		}
		scores[cl] = s
	}
	return scores, nil
}

// PredictProbs converts decision values into a probability distribution with
// a softmax over scores, so SVM output can feed the same ensemble combiner
// as the RNN.
func (c *Classifier) PredictProbs(x []float64) ([]float64, error) {
	scores, err := c.Scores(x)
	if err != nil {
		return nil, err
	}
	m := scores[0]
	for _, s := range scores[1:] {
		if s > m {
			m = s
		}
	}
	sum := 0.0
	probs := make([]float64, len(scores))
	for i, s := range scores {
		probs[i] = math.Exp(s - m)
		sum += probs[i]
	}
	for i := range probs {
		probs[i] /= sum
	}
	return probs, nil
}

// Predict returns the arg-max class for one feature vector.
func (c *Classifier) Predict(x []float64) (int, error) {
	scores, err := c.Scores(x)
	if err != nil {
		return 0, err
	}
	best, bi := scores[0], 0
	for i, s := range scores[1:] {
		if s > best {
			best, bi = s, i+1
		}
	}
	return bi, nil
}

// Evaluate returns Top-1 accuracy over rows of x.
func (c *Classifier) Evaluate(x *tensor.Tensor, labels []int) (float64, error) {
	if x.Dims() != 2 {
		return 0, fmt.Errorf("svm: evaluate requires 2-D matrix")
	}
	n := x.Dim(0)
	if len(labels) != n {
		return 0, fmt.Errorf("svm: %d labels for %d samples", len(labels), n)
	}
	if n == 0 {
		return 0, nil
	}
	hits := 0
	for i := 0; i < n; i++ {
		p, err := c.Predict(x.Row(i))
		if err != nil {
			return 0, err
		}
		if p == labels[i] {
			hits++
		}
	}
	return float64(hits) / float64(n), nil
}

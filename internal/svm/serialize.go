package svm

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"darnet/internal/tensor"
)

// classifierBlob is the gob wire form of a trained classifier.
type classifierBlob struct {
	Classes int
	Dim     int
	W       []float64
	B       []float64
	Mean    []float64
	Std     []float64
}

// MarshalBinary implements encoding.BinaryMarshaler for trained classifiers.
func (c *Classifier) MarshalBinary() ([]byte, error) {
	if c.scaler == nil {
		return nil, fmt.Errorf("svm: cannot marshal an untrained classifier")
	}
	blob := classifierBlob{
		Classes: c.classes,
		Dim:     c.dim,
		W:       append([]float64(nil), c.w.Data()...),
		B:       append([]float64(nil), c.b...),
		Mean:    append([]float64(nil), c.scaler.mean...),
		Std:     append([]float64(nil), c.scaler.std...),
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(blob); err != nil {
		return nil, fmt.Errorf("svm: encode: %w", err)
	}
	return buf.Bytes(), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (c *Classifier) UnmarshalBinary(data []byte) error {
	var blob classifierBlob
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&blob); err != nil {
		return fmt.Errorf("svm: decode: %w", err)
	}
	if blob.Classes < 2 || blob.Dim <= 0 {
		return fmt.Errorf("svm: snapshot has invalid dims classes=%d dim=%d", blob.Classes, blob.Dim)
	}
	if len(blob.W) != blob.Classes*blob.Dim || len(blob.B) != blob.Classes ||
		len(blob.Mean) != blob.Dim || len(blob.Std) != blob.Dim {
		return fmt.Errorf("svm: snapshot field sizes inconsistent")
	}
	w, err := tensor.FromSlice(blob.W, blob.Classes, blob.Dim)
	if err != nil {
		return err
	}
	c.classes = blob.Classes
	c.dim = blob.Dim
	c.w = w
	c.b = append([]float64(nil), blob.B...)
	c.scaler = &Scaler{
		mean: append([]float64(nil), blob.Mean...),
		std:  append([]float64(nil), blob.Std...),
	}
	return nil
}

package rnn

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"darnet/internal/tensor"
)

// randWindow fills a (T, in) tensor with N(0,1) samples, zeroing a few
// entries so the sparse-skip branch in preact is exercised too.
func randWindow(rng *rand.Rand, T, in int) *tensor.Tensor {
	w := tensor.New(T, in)
	d := w.Data()
	for i := range d {
		if rng.Intn(8) == 0 {
			continue // leave exact zero
		}
		d[i] = rng.NormFloat64()
	}
	return w
}

// TestStreamMatchesBatchBitForBit is the incremental-state property test: over
// randomized seeded scripts of consecutive tumbling windows, pushing samples
// one at a time through a Stream must reproduce the full-window PredictProbs
// recompute bit-for-bit (math.Float64bits equality, not a tolerance) — for
// unidirectional stacks via the incremental path and for bidirectional stacks
// via the buffered fallback.
func TestStreamMatchesBatchBitForBit(t *testing.T) {
	for _, uni := range []bool{true, false} {
		uni := uni
		t.Run(fmt.Sprintf("unidirectional=%v", uni), func(t *testing.T) {
			rng := rand.New(rand.NewSource(7))
			for trial := 0; trial < 12; trial++ {
				window := 3 + rng.Intn(6)
				in := 2 + rng.Intn(4)
				hidden := 3 + rng.Intn(5)
				layers := 1 + rng.Intn(2)
				classes := 2 + rng.Intn(3)
				c, err := NewClassifier("s", rng, Config{
					Input: in, Hidden: hidden, Layers: layers,
					Classes: classes, Unidirectional: uni,
				})
				if err != nil {
					t.Fatalf("trial %d: NewClassifier: %v", trial, err)
				}
				st, err := c.NewStream(window)
				if err != nil {
					t.Fatalf("trial %d: NewStream: %v", trial, err)
				}
				if st.Incremental() != uni {
					t.Fatalf("trial %d: Incremental() = %v for unidirectional=%v", trial, st.Incremental(), uni)
				}
				// Several consecutive windows through the SAME stream: window
				// k+1 must not be polluted by window k's state.
				for win := 0; win < 3; win++ {
					seq := randWindow(rng, window, in)
					for s := 0; s < window; s++ {
						ready, err := st.Push(seq.Row(s))
						if err != nil {
							t.Fatalf("trial %d window %d push %d: %v", trial, win, s, err)
						}
						if ready != (s == window-1) {
							t.Fatalf("trial %d window %d push %d: ready = %v", trial, win, s, ready)
						}
					}
					got, err := st.Classify()
					if err != nil {
						t.Fatalf("trial %d window %d: Classify: %v", trial, win, err)
					}
					want, err := c.PredictProbs(seq)
					if err != nil {
						t.Fatalf("trial %d window %d: PredictProbs: %v", trial, win, err)
					}
					if len(got) != len(want) {
						t.Fatalf("trial %d window %d: %d probs, want %d", trial, win, len(got), len(want))
					}
					for j := range got {
						if math.Float64bits(got[j]) != math.Float64bits(want[j]) {
							t.Fatalf("trial %d window %d class %d: stream %v != batch %v (bits %x vs %x)",
								trial, win, j, got[j], want[j], math.Float64bits(got[j]), math.Float64bits(want[j]))
						}
					}
				}
			}
		})
	}
}

func TestStreamErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c, err := NewClassifier("s", rng, Config{Input: 3, Hidden: 4, Layers: 1, Classes: 2, Unidirectional: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.NewStream(0); err == nil {
		t.Fatal("NewStream(0) should fail")
	}
	st, err := c.NewStream(2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Classify(); err == nil {
		t.Fatal("Classify on a partial window should fail")
	}
	if _, err := st.Push([]float64{1}); err == nil {
		t.Fatal("Push with wrong width should fail")
	}
	if _, err := st.Push([]float64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if ready, err := st.Push([]float64{4, 5, 6}); err != nil || !ready {
		t.Fatalf("second push: ready=%v err=%v", ready, err)
	}
	if _, err := st.Push([]float64{7, 8, 9}); err == nil {
		t.Fatal("Push past a full window should fail")
	}
	st.Reset()
	if st.Len() != 0 {
		t.Fatalf("Len after Reset = %d", st.Len())
	}
}

package rnn

import (
	"fmt"

	"darnet/internal/nn"
	"darnet/internal/tensor"
)

// Stream evaluates a Classifier incrementally over a live sample feed. Each
// Push advances the recurrent state by one step, so the per-tick cost is one
// cell step per layer instead of a full window recompute; when the window
// completes, Classify only has to mean-pool the buffered top-layer outputs
// and run the softmax head.
//
// The windows produced by collect's assembler are tumbling (they advance by a
// full window, never overlapping), so the incremental state resets to zero at
// each window boundary — exactly the zero initial state Forward uses — and
// the streamed result is bit-for-bit identical to the batch recompute. The
// fast path requires a unidirectional stack: a bidirectional layer needs the
// whole window before its backward-time direction can run, so bidirectional
// classifiers fall back to buffering the window and running the batch
// forward, behind the same API.
type Stream struct {
	c      *Classifier
	window int
	n      int // samples pushed into the current window

	// Incremental path (all-unidirectional stacks): per-layer carried state.
	cells []*LSTMCell
	h     [][]float64
	cs    [][]float64
	z     []float64      // packed-gate scratch sized for the widest layer
	top   *tensor.Tensor // (window, top width) top-layer outputs, chronological

	// Buffered fallback (bidirectional stacks).
	buf *tensor.Tensor // (window, in)
	in  int
}

// NewStream returns a Stream over windows of the given length.
func (c *Classifier) NewStream(window int) (*Stream, error) {
	if window <= 0 {
		return nil, fmt.Errorf("rnn: stream window must be positive, got %d", window)
	}
	if len(c.layers) == 0 {
		return nil, fmt.Errorf("rnn: %s has no layers", c.name)
	}
	s := &Stream{c: c, window: window}
	switch l := c.layers[0].(type) {
	case *UniLSTM:
		s.in = l.cell.in
	case *BiLSTM:
		s.in = l.In()
	default:
		return nil, fmt.Errorf("rnn: %s: unsupported first layer %T", c.name, l)
	}
	cells := make([]*LSTMCell, 0, len(c.layers))
	for _, l := range c.layers {
		u, ok := l.(*UniLSTM)
		if !ok {
			cells = nil
			break
		}
		cells = append(cells, u.cell)
	}
	if cells == nil {
		s.buf = tensor.New(window, s.in)
		return s, nil
	}
	s.cells = cells
	s.h = make([][]float64, len(cells))
	s.cs = make([][]float64, len(cells))
	maxH := 0
	for i, cell := range cells {
		s.h[i] = make([]float64, cell.hidden)
		s.cs[i] = make([]float64, cell.hidden)
		if cell.hidden > maxH {
			maxH = cell.hidden
		}
	}
	s.z = make([]float64, 4*maxH)
	s.top = tensor.New(window, cells[len(cells)-1].hidden)
	return s, nil
}

// Incremental reports whether the stream advances state per sample (true for
// unidirectional stacks) or buffers the window for a batch recompute.
func (s *Stream) Incremental() bool { return s.cells != nil }

// Window returns the configured window length; Len the samples pushed so far.
func (s *Stream) Window() int { return s.window }

// Len returns the number of samples in the current partial window.
func (s *Stream) Len() int { return s.n }

// Push feeds one sample (already normalized, length = classifier input width)
// and reports whether the window is now complete and Classify may be called.
func (s *Stream) Push(features []float64) (ready bool, err error) {
	if len(features) != s.in {
		return false, fmt.Errorf("rnn: stream sample has %d features, want %d", len(features), s.in)
	}
	if s.n >= s.window {
		return false, fmt.Errorf("rnn: stream window full (%d samples); call Classify or Reset", s.window)
	}
	if s.cells == nil {
		copy(s.buf.Row(s.n), features)
		s.n++
		return s.n == s.window, nil
	}
	x := features
	for i, cell := range s.cells {
		cell.stepInfer(x, s.h[i], s.cs[i], s.z[:4*cell.hidden])
		x = s.h[i]
	}
	copy(s.top.Row(s.n), x)
	s.n++
	return s.n == s.window, nil
}

// Classify finishes the completed window — mean-pool over time, softmax head
// — returns the class distribution, and resets the stream for the next
// window. It errors if the window is not yet complete.
func (s *Stream) Classify() ([]float64, error) {
	if s.n != s.window {
		return nil, fmt.Errorf("rnn: stream window has %d of %d samples", s.n, s.window)
	}
	if s.cells == nil {
		probs, err := s.c.PredictProbs(s.buf)
		if err != nil {
			return nil, err
		}
		s.Reset()
		return probs, nil
	}
	// Pool exactly as Classifier.forward does: accumulate rows in time order,
	// then scale once — a rolling mean would change the addition order and
	// break bit-for-bit equality with the batch path.
	W := s.top.Dim(1)
	pooled := tensor.New(1, W)
	prow := pooled.Row(0)
	for t := 0; t < s.window; t++ {
		row := s.top.Row(t)
		for j, v := range row {
			prow[j] += v
		}
	}
	inv := 1.0 / float64(s.window)
	for j := range prow {
		prow[j] *= inv
	}
	logits, err := s.c.head.Forward(pooled, false)
	if err != nil {
		return nil, err
	}
	probs, err := nn.Softmax(logits)
	if err != nil {
		return nil, err
	}
	out := append([]float64(nil), probs.Row(0)...)
	s.Reset()
	return out, nil
}

// Reset discards the current partial window and zeroes the recurrent state,
// matching the zero initial state of a fresh batch forward.
func (s *Stream) Reset() {
	s.n = 0
	for i := range s.h {
		for j := range s.h[i] {
			s.h[i][j] = 0
			s.cs[i][j] = 0
		}
	}
}

package rnn

import (
	"fmt"
	"math/rand"

	"darnet/internal/nn"
	"darnet/internal/tensor"
)

// BiLSTM runs a forward-time and a backward-time LSTM cell over the same
// sequence and concatenates their per-step hidden states, producing a
// (T, 2*hidden) output — "each LSTM cell propagating its output forward and
// backward through time" (paper §4.2).
type BiLSTM struct {
	name string
	fwd  *LSTMCell
	bwd  *LSTMCell
}

// biCache holds both directions' caches for one sequence.
type biCache struct {
	fwd *cellCache
	bwd *cellCache
	T   int
}

// NewBiLSTM returns a bidirectional LSTM layer mapping (T, in) to (T, 2*hidden).
func NewBiLSTM(name string, rng *rand.Rand, in, hidden int) *BiLSTM {
	return &BiLSTM{
		name: name,
		fwd:  NewLSTMCell(name+".fwd", rng, in, hidden),
		bwd:  NewLSTMCell(name+".bwd", rng, in, hidden),
	}
}

// Name returns the layer's name.
func (b *BiLSTM) Name() string { return b.name }

// In returns the input feature width.
func (b *BiLSTM) In() int { return b.fwd.in }

// OutWidth returns the per-step output width (2 × hidden).
func (b *BiLSTM) OutWidth() int { return 2 * b.fwd.hidden }

// Params returns both directions' parameters.
func (b *BiLSTM) Params() []*nn.Param {
	return append(b.fwd.Params(), b.bwd.Params()...)
}

// reverseRows returns x with its rows in reverse time order.
func reverseRows(x *tensor.Tensor) *tensor.Tensor {
	T := x.Dim(0)
	out := tensor.New(x.Shape()...)
	for t := 0; t < T; t++ {
		copy(out.Row(T-1-t), x.Row(t))
	}
	return out
}

// Forward runs both directions and concatenates per-step outputs.
func (b *BiLSTM) Forward(x *tensor.Tensor) (*tensor.Tensor, *biCache, error) {
	hf, cf, err := b.fwd.Forward(x)
	if err != nil {
		return nil, nil, fmt.Errorf("%s forward direction: %w", b.name, err)
	}
	hbRev, cb, err := b.bwd.Forward(reverseRows(x))
	if err != nil {
		return nil, nil, fmt.Errorf("%s backward direction: %w", b.name, err)
	}
	hb := reverseRows(hbRev)

	T, H := x.Dim(0), b.fwd.hidden
	out := tensor.New(T, 2*H)
	for t := 0; t < T; t++ {
		row := out.Row(t)
		copy(row[:H], hf.Row(t))
		copy(row[H:], hb.Row(t))
	}
	return out, &biCache{fwd: cf, bwd: cb, T: T}, nil
}

// Backward splits the (T, 2*hidden) gradient into direction halves,
// backpropagates each, and returns the summed (T, in) input gradient.
func (b *BiLSTM) Backward(cache *biCache, grad *tensor.Tensor) (*tensor.Tensor, error) {
	T, H := cache.T, b.fwd.hidden
	if grad.Dim(0) != T || grad.Dim(1) != 2*H {
		return nil, fmt.Errorf("rnn: %s backward expects (%d, %d) grad, got %v", b.name, T, 2*H, grad.Shape())
	}
	gf := tensor.New(T, H)
	gbRev := tensor.New(T, H)
	for t := 0; t < T; t++ {
		row := grad.Row(t)
		copy(gf.Row(t), row[:H])
		copy(gbRev.Row(T-1-t), row[H:]) // backward direction saw reversed time
	}
	dxf, err := b.fwd.Backward(cache.fwd, gf)
	if err != nil {
		return nil, err
	}
	dxbRev, err := b.bwd.Backward(cache.bwd, gbRev)
	if err != nil {
		return nil, err
	}
	dxb := reverseRows(dxbRev)
	return dxf.AddInPlace(dxb), nil
}

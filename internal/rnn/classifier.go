package rnn

import (
	"fmt"
	"math/rand"

	"darnet/internal/metrics"
	"darnet/internal/nn"
	"darnet/internal/tensor"
)

// seqLayer is one recurrent stage mapping a (T, in) sequence to a (T, out)
// sequence. Implementations return an opaque cache consumed by backward.
type seqLayer interface {
	Name() string
	Params() []*nn.Param
	OutWidth() int
	forwardSeq(x *tensor.Tensor) (*tensor.Tensor, any, error)
	backwardSeq(cache any, grad *tensor.Tensor) (*tensor.Tensor, error)
}

// BiLSTM as a seqLayer.
func (b *BiLSTM) forwardSeq(x *tensor.Tensor) (*tensor.Tensor, any, error) {
	y, c, err := b.Forward(x)
	return y, c, err
}

func (b *BiLSTM) backwardSeq(cache any, grad *tensor.Tensor) (*tensor.Tensor, error) {
	bc, ok := cache.(*biCache)
	if !ok {
		return nil, fmt.Errorf("rnn: %s received foreign cache", b.name)
	}
	return b.Backward(bc, grad)
}

var _ seqLayer = (*BiLSTM)(nil)

// UniLSTM is a forward-time-only LSTM stage, used by the ablation comparing
// bidirectional against unidirectional stacks.
type UniLSTM struct {
	name string
	cell *LSTMCell
}

// NewUniLSTM returns a unidirectional LSTM layer mapping (T, in) to (T, hidden).
func NewUniLSTM(name string, rng *rand.Rand, in, hidden int) *UniLSTM {
	return &UniLSTM{name: name, cell: NewLSTMCell(name+".cell", rng, in, hidden)}
}

// Name returns the layer's name.
func (u *UniLSTM) Name() string { return u.name }

// Params returns the layer's trainable parameters.
func (u *UniLSTM) Params() []*nn.Param { return u.cell.Params() }

// OutWidth returns the per-step output width.
func (u *UniLSTM) OutWidth() int { return u.cell.hidden }

func (u *UniLSTM) forwardSeq(x *tensor.Tensor) (*tensor.Tensor, any, error) {
	y, c, err := u.cell.Forward(x)
	return y, c, err
}

func (u *UniLSTM) backwardSeq(cache any, grad *tensor.Tensor) (*tensor.Tensor, error) {
	cc, ok := cache.(*cellCache)
	if !ok {
		return nil, fmt.Errorf("rnn: %s received foreign cache", u.name)
	}
	return u.cell.Backward(cc, grad)
}

var _ seqLayer = (*UniLSTM)(nil)

// Classifier is the paper's IMU-sequence architecture: a stack of
// bidirectional LSTM layers ("deep": each layer's output feeds the next)
// followed by mean pooling over time and a softmax classification head.
type Classifier struct {
	name    string
	layers  []seqLayer
	head    *nn.Dense
	classes int
}

// Config describes a deep (Bi)LSTM classifier.
type Config struct {
	Input   int // per-step feature width
	Hidden  int // hidden units per direction (paper: 64)
	Layers  int // stacked recurrent layers (paper: 2)
	Classes int
	// Unidirectional uses forward-time-only cells (ablation); the default
	// (false) is the paper's bidirectional configuration.
	Unidirectional bool
}

// NewClassifier constructs the deep (Bi)LSTM classifier.
func NewClassifier(name string, rng *rand.Rand, cfg Config) (*Classifier, error) {
	if cfg.Input <= 0 || cfg.Hidden <= 0 || cfg.Layers <= 0 || cfg.Classes <= 1 {
		return nil, fmt.Errorf("rnn: invalid classifier config %+v", cfg)
	}
	c := &Classifier{name: name, classes: cfg.Classes}
	in := cfg.Input
	for i := 0; i < cfg.Layers; i++ {
		var l seqLayer
		if cfg.Unidirectional {
			l = NewUniLSTM(fmt.Sprintf("%s.lstm%d", name, i), rng, in, cfg.Hidden)
		} else {
			l = NewBiLSTM(fmt.Sprintf("%s.bilstm%d", name, i), rng, in, cfg.Hidden)
		}
		c.layers = append(c.layers, l)
		in = l.OutWidth()
	}
	c.head = nn.NewDense(name+".head", rng, in, cfg.Classes)
	return c, nil
}

// Name returns the classifier's name.
func (c *Classifier) Name() string { return c.name }

// Classes returns the number of output classes.
func (c *Classifier) Classes() int { return c.classes }

// Params returns all trainable parameters.
func (c *Classifier) Params() []*nn.Param {
	var ps []*nn.Param
	for _, l := range c.layers {
		ps = append(ps, l.Params()...)
	}
	return append(ps, c.head.Params()...)
}

// NumParams returns the total scalar parameter count.
func (c *Classifier) NumParams() int {
	n := 0
	for _, p := range c.Params() {
		n += p.Value.Size()
	}
	return n
}

// ZeroGrad clears all parameter gradients.
func (c *Classifier) ZeroGrad() {
	for _, p := range c.Params() {
		p.ZeroGrad()
	}
}

// seqCache holds everything needed to backpropagate one sequence.
type seqCache struct {
	layerCaches []any
	steps       int
}

// forward computes logits (1, classes) for one (T, input) sequence.
func (c *Classifier) forward(seq *tensor.Tensor, train bool) (*tensor.Tensor, *seqCache, error) {
	x := seq
	cache := &seqCache{steps: seq.Dim(0)}
	for _, l := range c.layers {
		y, lc, err := l.forwardSeq(x)
		if err != nil {
			return nil, nil, err
		}
		cache.layerCaches = append(cache.layerCaches, lc)
		x = y
	}
	// Mean-pool over time so variable-length sequences are supported and
	// every step contributes to the gradient.
	T, W := x.Dim(0), x.Dim(1)
	pooled := tensor.New(1, W)
	prow := pooled.Row(0)
	for t := 0; t < T; t++ {
		row := x.Row(t)
		for j, v := range row {
			prow[j] += v
		}
	}
	inv := 1.0 / float64(T)
	for j := range prow {
		prow[j] *= inv
	}
	logits, err := c.head.Forward(pooled, train)
	if err != nil {
		return nil, nil, err
	}
	return logits, cache, nil
}

// backward pushes dL/dLogits (1, classes) through the cached forward pass,
// accumulating parameter gradients.
func (c *Classifier) backward(cache *seqCache, grad *tensor.Tensor) error {
	dPooled, err := c.head.Backward(grad)
	if err != nil {
		return err
	}
	// Un-pool: every step receives grad/T.
	T := cache.steps
	W := dPooled.Dim(1)
	g := tensor.New(T, W)
	inv := 1.0 / float64(T)
	src := dPooled.Row(0)
	for t := 0; t < T; t++ {
		row := g.Row(t)
		for j, v := range src {
			row[j] = v * inv
		}
	}
	for i := len(c.layers) - 1; i >= 0; i-- {
		g, err = c.layers[i].backwardSeq(cache.layerCaches[i], g)
		if err != nil {
			return err
		}
	}
	return nil
}

// Logits returns inference-mode logits for one sequence.
func (c *Classifier) Logits(seq *tensor.Tensor) (*tensor.Tensor, error) {
	logits, _, err := c.forward(seq, false)
	return logits, err
}

// PredictProbs returns softmax class probabilities for one sequence as a
// length-classes slice.
func (c *Classifier) PredictProbs(seq *tensor.Tensor) ([]float64, error) {
	logits, err := c.Logits(seq)
	if err != nil {
		return nil, err
	}
	probs, err := nn.Softmax(logits)
	if err != nil {
		return nil, err
	}
	return append([]float64(nil), probs.Row(0)...), nil
}

// Predict returns the arg-max class for one sequence.
func (c *Classifier) Predict(seq *tensor.Tensor) (int, error) {
	logits, err := c.Logits(seq)
	if err != nil {
		return 0, err
	}
	return logits.ArgMax(), nil
}

// TrainConfig controls sequence-classifier training.
type TrainConfig struct {
	Epochs    int
	BatchSize int     // sequences per gradient step
	ClipNorm  float64 // 0 disables clipping
	OnEpoch   func(epoch int, loss float64) bool
}

// Train runs mini-batch training over sequences (each (T, input)) with
// integer labels, accumulating gradients across each batch before stepping.
// It returns per-epoch mean losses.
func (c *Classifier) Train(opt nn.Optimizer, rng *rand.Rand, seqs []*tensor.Tensor, labels []int, cfg TrainConfig) ([]float64, error) {
	if len(seqs) != len(labels) {
		return nil, fmt.Errorf("rnn: %d sequences for %d labels", len(seqs), len(labels))
	}
	if len(seqs) == 0 {
		return nil, fmt.Errorf("rnn: no training sequences")
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 16
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 1
	}
	n := len(seqs)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	var losses []float64
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
		total, count := 0.0, 0
		for start := 0; start < n; start += cfg.BatchSize {
			end := min(start+cfg.BatchSize, n)
			c.ZeroGrad()
			batchLoss := 0.0
			for _, idx := range order[start:end] {
				logits, cache, err := c.forward(seqs[idx], true)
				if err != nil {
					return losses, fmt.Errorf("rnn: train forward: %w", err)
				}
				loss, _, grad, err := nn.CrossEntropy(logits, []int{labels[idx]})
				if err != nil {
					return losses, fmt.Errorf("rnn: train loss: %w", err)
				}
				if err := c.backward(cache, grad); err != nil {
					return losses, fmt.Errorf("rnn: train backward: %w", err)
				}
				batchLoss += loss
			}
			bs := end - start
			// Average accumulated gradients over the batch.
			scale := 1.0 / float64(bs)
			for _, p := range c.Params() {
				p.Grad.ScaleInPlace(scale)
			}
			if cfg.ClipNorm > 0 {
				if _, err := nn.ClipGradNorm(c.Params(), cfg.ClipNorm); err != nil {
					return losses, err
				}
			}
			opt.Step(c.Params())
			total += batchLoss / float64(bs)
			count++
		}
		mean := total / float64(count)
		losses = append(losses, mean)
		if cfg.OnEpoch != nil && !cfg.OnEpoch(epoch, mean) {
			break
		}
	}
	return losses, nil
}

// Evaluate returns Top-1 accuracy over a labelled sequence set.
func (c *Classifier) Evaluate(seqs []*tensor.Tensor, labels []int) (float64, error) {
	if len(seqs) != len(labels) {
		return 0, fmt.Errorf("rnn: %d sequences for %d labels", len(seqs), len(labels))
	}
	if len(seqs) == 0 {
		return 0, nil
	}
	hits := 0
	for i, s := range seqs {
		p, err := c.Predict(s)
		if err != nil {
			return 0, err
		}
		if p == labels[i] {
			hits++
		}
	}
	return float64(hits) / float64(len(seqs)), nil
}

// EvaluateConfusion runs the classifier over a labelled sequence set and
// returns the confusion matrix (rows = true classes).
func (c *Classifier) EvaluateConfusion(seqs []*tensor.Tensor, labels []int, classNames []string) (*metrics.ConfusionMatrix, error) {
	if len(seqs) != len(labels) {
		return nil, fmt.Errorf("rnn: %d sequences for %d labels", len(seqs), len(labels))
	}
	if len(classNames) != c.classes {
		return nil, fmt.Errorf("rnn: %d class names for %d classes", len(classNames), c.classes)
	}
	cm, err := metrics.NewConfusionMatrix(classNames)
	if err != nil {
		return nil, err
	}
	for i, s := range seqs {
		pred, err := c.Predict(s)
		if err != nil {
			return nil, err
		}
		if err := cm.Observe(labels[i], pred); err != nil {
			return nil, err
		}
	}
	return cm, nil
}

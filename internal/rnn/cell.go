// Package rnn implements recurrent networks for IMU time-series
// classification: an LSTM cell with full backpropagation through time,
// bidirectional layers, deep stacks, and a softmax sequence classifier —
// the paper's "2 bidirectional LSTM cells containing 64 hidden units"
// IMU-sequence architecture.
package rnn

import (
	"fmt"
	"math"
	"math/rand"

	"darnet/internal/nn"
	"darnet/internal/tensor"
)

// LSTMCell holds the parameters of one LSTM direction: input projection Wx
// (in, 4H), recurrent projection Wh (H, 4H) and bias b (4H). Gate order in
// the packed 4H axis is input, forget, cell (candidate), output.
type LSTMCell struct {
	name   string
	in     int
	hidden int

	wx *nn.Param
	wh *nn.Param
	b  *nn.Param
}

// NewLSTMCell returns an LSTM cell with Xavier-initialized projections and a
// forget-gate bias of 1 (the standard trick that eases gradient flow early in
// training).
func NewLSTMCell(name string, rng *rand.Rand, in, hidden int) *LSTMCell {
	c := &LSTMCell{
		name:   name,
		in:     in,
		hidden: hidden,
		wx:     nn.NewParam(name+".wx", nn.XavierInit(rng, in, hidden, in, 4*hidden)),
		wh:     nn.NewParam(name+".wh", nn.XavierInit(rng, hidden, hidden, hidden, 4*hidden)),
		b:      nn.NewParam(name+".b", tensor.New(4*hidden)),
	}
	for j := hidden; j < 2*hidden; j++ {
		c.b.Value.Data()[j] = 1 // forget gate bias
	}
	return c
}

// Name returns the cell's name.
func (c *LSTMCell) Name() string { return c.name }

// In returns the input feature width.
func (c *LSTMCell) In() int { return c.in }

// Hidden returns the hidden-state width.
func (c *LSTMCell) Hidden() int { return c.hidden }

// Params returns the cell's trainable parameters.
func (c *LSTMCell) Params() []*nn.Param { return []*nn.Param{c.wx, c.wh, c.b} }

// cellCache stores per-step activations needed by BPTT.
type cellCache struct {
	x     *tensor.Tensor // (T, in) input sequence
	steps int
	// Per step t (length T each, width hidden):
	i, f, g, o [][]float64
	cPrev      [][]float64 // c_{t-1}
	c          [][]float64 // c_t
	hPrev      [][]float64 // h_{t-1}
	tanhC      [][]float64
}

// Forward runs the cell over a (T, in) sequence with zero initial state and
// returns the (T, hidden) hidden-state sequence plus the cache required by
// Backward.
func (c *LSTMCell) Forward(x *tensor.Tensor) (*tensor.Tensor, *cellCache, error) {
	if x.Dims() != 2 || x.Dim(1) != c.in {
		return nil, nil, fmt.Errorf("rnn: %s expects (T, %d) input, got %v", c.name, c.in, x.Shape())
	}
	T := x.Dim(0)
	H := c.hidden
	out := tensor.New(T, H)
	cache := &cellCache{
		x: x, steps: T,
		i: make([][]float64, T), f: make([][]float64, T),
		g: make([][]float64, T), o: make([][]float64, T),
		cPrev: make([][]float64, T), c: make([][]float64, T),
		hPrev: make([][]float64, T), tanhC: make([][]float64, T),
	}

	h := make([]float64, H)
	cs := make([]float64, H)
	z := make([]float64, 4*H)

	for t := 0; t < T; t++ {
		xt := x.Row(t)
		c.preact(xt, h, z)

		it := make([]float64, H)
		ft := make([]float64, H)
		gt := make([]float64, H)
		ot := make([]float64, H)
		cPrev := append([]float64(nil), cs...)
		hPrev := append([]float64(nil), h...)
		ct := make([]float64, H)
		tc := make([]float64, H)
		hrow := out.Row(t)
		for j := 0; j < H; j++ {
			it[j] = sigmoid(z[j])
			ft[j] = sigmoid(z[H+j])
			gt[j] = math.Tanh(z[2*H+j])
			ot[j] = sigmoid(z[3*H+j])
			ct[j] = ft[j]*cs[j] + it[j]*gt[j]
			tc[j] = math.Tanh(ct[j])
			hrow[j] = ot[j] * tc[j]
		}
		copy(cs, ct)
		copy(h, hrow)
		cache.i[t], cache.f[t], cache.g[t], cache.o[t] = it, ft, gt, ot
		cache.cPrev[t], cache.c[t] = cPrev, ct
		cache.hPrev[t], cache.tanhC[t] = hPrev, tc
	}
	return out, cache, nil
}

// preact computes the packed gate pre-activations z = b + x·Wx + h·Wh for one
// step. Both the batch Forward pass and the streaming stepInfer go through
// this single implementation so that an incrementally advanced stream is
// bit-for-bit identical to a full-window recompute: floating-point addition is
// not associative, so sharing the accumulation order is what makes the
// equality exact rather than approximate.
func (c *LSTMCell) preact(xt, h, z []float64) {
	H := c.hidden
	copy(z, c.b.Value.Data())
	wxd := c.wx.Value.Data()
	for k, xv := range xt {
		if xv == 0 {
			continue
		}
		wrow := wxd[k*4*H : (k+1)*4*H]
		for j, wv := range wrow {
			z[j] += xv * wv
		}
	}
	whd := c.wh.Value.Data()
	for k, hv := range h {
		if hv == 0 {
			continue
		}
		wrow := whd[k*4*H : (k+1)*4*H]
		for j, wv := range wrow {
			z[j] += hv * wv
		}
	}
}

// stepInfer advances one inference step in place: h and cs (each length
// hidden) are the carried state, z is a 4*hidden scratch. The gate expressions
// mirror Forward's exactly — see preact for why that matters.
func (c *LSTMCell) stepInfer(xt, h, cs, z []float64) {
	c.preact(xt, h, z)
	H := c.hidden
	for j := 0; j < H; j++ {
		it := sigmoid(z[j])
		ft := sigmoid(z[H+j])
		gt := math.Tanh(z[2*H+j])
		ot := sigmoid(z[3*H+j])
		ct := ft*cs[j] + it*gt
		cs[j] = ct
		h[j] = ot * math.Tanh(ct)
	}
}

// Backward backpropagates dL/dH (shape (T, hidden)) through the cached
// forward pass, accumulating parameter gradients, and returns dL/dX of shape
// (T, in).
func (c *LSTMCell) Backward(cache *cellCache, dh *tensor.Tensor) (*tensor.Tensor, error) {
	T, H := cache.steps, c.hidden
	if dh.Dims() != 2 || dh.Dim(0) != T || dh.Dim(1) != H {
		return nil, fmt.Errorf("rnn: %s backward expects (%d, %d) grad, got %v", c.name, T, H, dh.Shape())
	}
	dx := tensor.New(T, c.in)
	wxd := c.wx.Value.Data()
	whd := c.wh.Value.Data()
	wxg := c.wx.Grad.Data()
	whg := c.wh.Grad.Data()
	bg := c.b.Grad.Data()

	dhNext := make([]float64, H) // gradient flowing into h_t from step t+1
	dcNext := make([]float64, H)
	dz := make([]float64, 4*H)

	for t := T - 1; t >= 0; t-- {
		it, ft, gt, ot := cache.i[t], cache.f[t], cache.g[t], cache.o[t]
		tc := cache.tanhC[t]
		cPrev := cache.cPrev[t]
		hPrev := cache.hPrev[t]
		dhRow := dh.Row(t)

		for j := 0; j < H; j++ {
			dht := dhRow[j] + dhNext[j]
			dot := dht * tc[j]
			dct := dcNext[j] + dht*ot[j]*(1-tc[j]*tc[j])
			dit := dct * gt[j]
			dft := dct * cPrev[j]
			dgt := dct * it[j]
			dcNext[j] = dct * ft[j]

			dz[j] = dit * it[j] * (1 - it[j])
			dz[H+j] = dft * ft[j] * (1 - ft[j])
			dz[2*H+j] = dgt * (1 - gt[j]*gt[j])
			dz[3*H+j] = dot * ot[j] * (1 - ot[j])
		}

		xt := cache.x.Row(t)
		for k, xv := range xt {
			grow := wxg[k*4*H : (k+1)*4*H]
			if xv != 0 {
				for j, d := range dz {
					grow[j] += xv * d
				}
			}
		}
		for k, hv := range hPrev {
			grow := whg[k*4*H : (k+1)*4*H]
			if hv != 0 {
				for j, d := range dz {
					grow[j] += hv * d
				}
			}
		}
		for j, d := range dz {
			bg[j] += d
		}

		dxRow := dx.Row(t)
		for k := range dxRow {
			wrow := wxd[k*4*H : (k+1)*4*H]
			s := 0.0
			for j, d := range dz {
				s += wrow[j] * d
			}
			dxRow[k] = s
		}
		for k := 0; k < H; k++ {
			wrow := whd[k*4*H : (k+1)*4*H]
			s := 0.0
			for j, d := range dz {
				s += wrow[j] * d
			}
			dhNext[k] = s
		}
	}
	return dx, nil
}

func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }
